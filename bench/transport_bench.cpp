// Transport/backend benchmark (PR 5): what does moving LP behind the
// WorkerBackend seam cost, and what does a REAL remote join look like next
// to the simulated provision delay the repo used until now?
//
// Emits one JSON object on stdout (consumed by bench/run_bench.sh into
// BENCH_PR<N>.json):
//   * provision: measured fork->Hello join latencies of the subprocess
//     backend (a pool growing 1 -> N) vs the configured simulated delay of
//     the thread backend;
//   * per-task transport bracket: tasks/sec through one worker with and
//     without a live subprocess session (the submit/complete round trip);
//   * fig5 scenario (goal without initialization) under --backend thread and
//     --backend subprocess: same LP decision kinds, wct, goal, peak busy —
//     the "same decisions end-to-end" acceptance check;
//   * tcp (PR 10): the same bracket churn over a real loopback TCP socket at
//     lease_batch 1 and 16, connect->Hello join latency, and the named-muscle
//     (kSubmitNamed/kResultNamed) echo round trip.
//
// Usage: transport_bench [--smoke] [--scale X] [--tweets N]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "runtime/subprocess_backend.hpp"
#include "runtime/tcp_transport.hpp"
#include "runtime/thread_pool.hpp"
#include "util/csv.hpp"
#include "workload/wordcount.hpp"

using namespace askel;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool wait_effective(ResizableThreadPool& pool, int lp, double timeout_s) {
  const double deadline = now_s() + timeout_s;
  while (pool.effective_lp() != lp) {
    if (now_s() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

struct ProvisionNumbers {
  double grow_wall_ms = 0.0;       // set_target_lp(1 -> n) to effective
  std::vector<double> join_us;     // per-worker fork->Hello (subprocess)
};

ProvisionNumbers measure_subprocess_provision(int workers) {
  ProvisionNumbers out;
  SubprocessBackendConfig cfg;
  cfg.max_workers = workers;
  SubprocessBackend backend(cfg);
  {
    ResizableThreadPool pool(1, workers);
    pool.set_backend(&backend);
    const double t0 = now_s();
    pool.set_target_lp(workers);
    wait_effective(pool, workers, 30.0);
    out.grow_wall_ms = (now_s() - t0) * 1000.0;
    pool.set_backend(nullptr);
  }
  out.join_us = backend.transport_factory().join_latencies_us();
  return out;
}

double measure_simulated_provision(int workers, double delay_s) {
  ResizableThreadPool pool(1, workers);
  pool.set_provision_delay(delay_s);
  const double t0 = now_s();
  pool.set_target_lp(workers);
  wait_effective(pool, workers, 30.0);
  return (now_s() - t0) * 1000.0;
}

/// Tasks/sec through a 1-worker pool: the per-task bracket cost shows up as
/// the delta between the thread backend and a live subprocess session.
double measure_churn(ResizableThreadPool& pool, int tasks) {
  std::atomic<int> done{0};
  const double t0 = now_s();
  for (int k = 0; k < tasks; ++k) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  const double dt = now_s() - t0;
  return done.load() == tasks && dt > 0.0 ? tasks / dt : 0.0;
}

// TCP loopback (PR 10): the same 1-worker bracket churn over a real TCP
// socket (K=1 and K=16), connect->Hello join latency next to the
// fork->Hello number, and the named-muscle round trip (the dialect the
// subprocess transport cannot execute).
struct TcpNumbers {
  bool available = false;        // host failed to bind -> section omitted
  double join_mean_us = 0.0;     // connect -> Hello, mean over sessions
  double tps_k1 = 0.0;           // submit/complete brackets per sec, K=1
  double tps_k16 = 0.0;          // ... with 16 brackets per lease
  double named_rt_us = 0.0;      // mean echo-muscle call round trip
};

TcpNumbers measure_tcp(int churn_tasks, int named_calls) {
  TcpNumbers out;
  MuscleTable table;
  const WireMuscleId echo_id =
      table.register_muscle("bench.echo", [](const PodValue& v) { return v; });
  TcpWorkerHost host(table);
  if (!host.listening()) return out;
  std::vector<double> joins;
  for (const int k_batch : {1, 16}) {
    TcpBackendConfig cfg;
    cfg.port = host.port();
    cfg.max_workers = 1;
    cfg.lease_batch = k_batch;
    TcpBackend backend(cfg);
    ResizableThreadPool pool(1, 1);
    pool.set_backend(&backend);
    const double deadline = now_s() + 10.0;
    while (backend.live_sessions() < 1 && now_s() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const double tps = measure_churn(pool, churn_tasks);
    if (k_batch == 1) {
      out.tps_k1 = tps;
      // Named round trips through the now-idle K=1 session.
      const double t0 = now_s();
      int ok = 0;
      for (int k = 0; k < named_calls; ++k) {
        const NamedCallResult r =
            backend.call_named(0, echo_id, PodValue::of_i64(k));
        if (r.transported && r.status == NamedStatus::kOk) ++ok;
      }
      const double dt = now_s() - t0;
      if (ok == named_calls && named_calls > 0 && dt > 0.0) {
        out.named_rt_us = dt * 1e6 / named_calls;
      }
    } else {
      out.tps_k16 = tps;
    }
    const std::vector<double> j = backend.transport_factory().join_latencies_us();
    joins.insert(joins.end(), j.begin(), j.end());
    pool.set_backend(nullptr);
  }
  if (!joins.empty()) {
    out.join_mean_us = std::accumulate(joins.begin(), joins.end(), 0.0) /
                       static_cast<double>(joins.size());
  }
  out.available = true;
  return out;
}

struct FigNumbers {
  ScenarioResult res;
  long increase_decisions = 0;
  long decrease_decisions = 0;
  long provision_failures = 0;
};

FigNumbers run_fig5(ScenarioBackend backend, double scale, std::size_t tweets) {
  ScenarioConfig cfg;
  cfg.wct_goal = 9.5;
  cfg.timings.scale = scale;
  cfg.corpus.num_tweets = tweets;
  cfg.max_lp = 24;
  cfg.backend = backend;
  FigNumbers out;
  out.res = run_wordcount_scenario(cfg);
  for (const auto& a : out.res.actions) {
    switch (a.reason) {
      case DecisionReason::kIncreaseToGoal:
      case DecisionReason::kIncreaseSaturated:
      case DecisionReason::kUnachievableRamp:
        ++out.increase_decisions;
        break;
      case DecisionReason::kDecreaseHalf:
        ++out.decrease_decisions;
        break;
      case DecisionReason::kProvisionFailed:
        ++out.provision_failures;
        break;
      default:
        break;
    }
  }
  return out;
}

void print_fig(const char* key, const FigNumbers& f) {
  std::cout << "  \"" << key << "\": {\n";
  std::cout << "    \"wct_s\": " << fmt(f.res.wct, 4) << ",\n";
  std::cout << "    \"goal_s\": " << fmt(f.res.goal, 4) << ",\n";
  std::cout << "    \"goal_met\": " << (f.res.goal_met ? "true" : "false")
            << ",\n";
  std::cout << "    \"peak_busy\": " << f.res.peak_busy << ",\n";
  std::cout << "    \"final_lp\": " << f.res.final_lp << ",\n";
  std::cout << "    \"lp_decisions\": " << f.res.actions.size() << ",\n";
  std::cout << "    \"increase_decisions\": " << f.increase_decisions << ",\n";
  std::cout << "    \"decrease_decisions\": " << f.decrease_decisions << ",\n";
  std::cout << "    \"provision_failures\": " << f.provision_failures << ",\n";
  std::cout << "    \"result_ok\": "
            << (f.res.counts == f.res.expected ? "true" : "false") << "\n";
  std::cout << "  }";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double scale = 0.08;
  std::size_t tweets = 3000;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[k], "--scale") == 0 && k + 1 < argc)
      scale = std::atof(argv[k + 1]);
    if (std::strcmp(argv[k], "--tweets") == 0 && k + 1 < argc)
      tweets = static_cast<std::size_t>(std::atol(argv[k + 1]));
  }
  if (smoke) {
    scale = std::min(scale, 0.04);
    tweets = std::min<std::size_t>(tweets, 1200);
  }

  const int provision_workers = smoke ? 4 : 8;
  const double sim_delay = 0.05;
  const ProvisionNumbers sub = measure_subprocess_provision(provision_workers);
  const double sim_ms = measure_simulated_provision(provision_workers, sim_delay);

  const int churn_tasks = smoke ? 2000 : 20000;
  double thread_tps = 0.0;
  double subprocess_tps = 0.0;
  {
    ResizableThreadPool pool(1, 1);
    thread_tps = measure_churn(pool, churn_tasks);
  }
  {
    SubprocessBackendConfig cfg;
    cfg.max_workers = 1;
    SubprocessBackend backend(cfg);
    ResizableThreadPool pool(1, 1);
    pool.set_backend(&backend);
    // Wait for the session so every task really pays the round trip.
    const double deadline = now_s() + 10.0;
    while (backend.live_sessions() < 1 && now_s() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    subprocess_tps = measure_churn(pool, churn_tasks);
    pool.set_backend(nullptr);
  }

  // Lease-batching sweep (PR 6): the same 1-worker bracket churn with up to
  // K task brackets coalesced per Submit/Complete round trip. K=1 is the
  // legacy protocol; the curve shows how much of the bracket cost amortizes.
  const std::vector<int> batch_ks = {1, 4, 16, 64};
  std::vector<double> batch_tps;
  for (const int k_batch : batch_ks) {
    SubprocessBackendConfig cfg;
    cfg.max_workers = 1;
    cfg.lease_batch = k_batch;
    SubprocessBackend backend(cfg);
    ResizableThreadPool pool(1, 1);
    pool.set_backend(&backend);
    const double deadline = now_s() + 10.0;
    while (backend.live_sessions() < 1 && now_s() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    batch_tps.push_back(measure_churn(pool, churn_tasks));
    pool.set_backend(nullptr);
  }

  const TcpNumbers tcp =
      measure_tcp(churn_tasks, /*named_calls=*/smoke ? 200 : 2000);

  const FigNumbers fig_thread = run_fig5(ScenarioBackend::kThread, scale, tweets);
  const FigNumbers fig_sub =
      run_fig5(ScenarioBackend::kSubprocess, scale, tweets);

  const double join_mean =
      sub.join_us.empty()
          ? 0.0
          : std::accumulate(sub.join_us.begin(), sub.join_us.end(), 0.0) /
                static_cast<double>(sub.join_us.size());
  const double join_max =
      sub.join_us.empty()
          ? 0.0
          : *std::max_element(sub.join_us.begin(), sub.join_us.end());

  std::cout << "{\n";
  std::cout << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  std::cout << "  \"provision\": {\n";
  std::cout << "    \"workers\": " << provision_workers << ",\n";
  std::cout << "    \"subprocess_grow_wall_ms\": " << fmt(sub.grow_wall_ms, 2)
            << ",\n";
  std::cout << "    \"subprocess_join_mean_us\": " << fmt(join_mean, 1) << ",\n";
  std::cout << "    \"subprocess_join_max_us\": " << fmt(join_max, 1) << ",\n";
  std::cout << "    \"simulated_delay_ms\": " << fmt(sim_delay * 1000.0, 1)
            << ",\n";
  std::cout << "    \"simulated_grow_wall_ms\": " << fmt(sim_ms, 2) << "\n";
  std::cout << "  },\n";
  std::cout << "  \"task_bracket\": {\n";
  std::cout << "    \"thread_tasks_per_sec\": " << fmt(thread_tps, 0) << ",\n";
  std::cout << "    \"subprocess_tasks_per_sec\": " << fmt(subprocess_tps, 0)
            << "\n";
  std::cout << "  },\n";
  std::cout << "  \"lease_batching\": [\n";
  for (std::size_t k = 0; k < batch_ks.size(); ++k) {
    std::cout << "    {\"lease_batch\": " << batch_ks[k]
              << ", \"subprocess_tasks_per_sec\": " << fmt(batch_tps[k], 0)
              << ", \"speedup_vs_k1\": "
              << fmt(batch_tps[0] > 0.0 ? batch_tps[k] / batch_tps[0] : 0.0, 3)
              << "}" << (k + 1 < batch_ks.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n";
  std::cout << "  \"tcp\": {\n";
  std::cout << "    \"available\": " << (tcp.available ? "true" : "false")
            << ",\n";
  std::cout << "    \"join_mean_us\": " << fmt(tcp.join_mean_us, 1) << ",\n";
  std::cout << "    \"tasks_per_sec_k1\": " << fmt(tcp.tps_k1, 0) << ",\n";
  std::cout << "    \"tasks_per_sec_k16\": " << fmt(tcp.tps_k16, 0) << ",\n";
  std::cout << "    \"speedup_k16_vs_k1\": "
            << fmt(tcp.tps_k1 > 0.0 ? tcp.tps_k16 / tcp.tps_k1 : 0.0, 3)
            << ",\n";
  std::cout << "    \"named_round_trip_us\": " << fmt(tcp.named_rt_us, 1)
            << ",\n";
  std::cout << "    \"tcp_vs_subprocess_k1\": "
            << fmt(subprocess_tps > 0.0 ? tcp.tps_k1 / subprocess_tps : 0.0, 3)
            << "\n";
  std::cout << "  },\n";
  print_fig("fig5_thread", fig_thread);
  std::cout << ",\n";
  print_fig("fig5_subprocess", fig_sub);
  std::cout << "\n}\n";

  // Sanity gates (always): both runs computed the right counts; the
  // subprocess run reached the same KIND of trajectory — the controller
  // adapted (grew past 1) under both backends. Timing-sensitive equality is
  // the bench JSON's business, not an assertion.
  const bool ok = fig_thread.res.counts == fig_thread.res.expected &&
                  fig_sub.res.counts == fig_sub.res.expected &&
                  fig_thread.res.peak_busy > 1 && fig_sub.res.peak_busy > 1 &&
                  fig_sub.provision_failures == 0 && tcp.available &&
                  tcp.tps_k1 > 0.0 && tcp.named_rt_us > 0.0;
  return ok ? 0 : 1;
}
