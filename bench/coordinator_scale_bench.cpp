// Coordinator scale benchmark: arbitration latency must be flat in
// REGISTRATIONS and scale only with the ARMED set (the PR 7 active-set
// index). Two configurations run back to back with an identical armed
// population:
//
//  * small: registered == armed (the PR 6 world, nothing cold);
//  * large: registered >> armed (default 1M registered, 10K armed — the
//    million-tenant shape from ROADMAP.md).
//
// The per-arbitration latency ratio large/small is the headline metric
// ("arbitration_flatness_ratio"); a coordinator that scans the registry on
// the hot path fails the <= 2x bound immediately (100x registrations would
// show up as ~100x latency). Registration throughput is also reported — it
// exercises the sharded registry, not the arbitration lock.
//
// The bench also replays the seeded policy-quality trace (autonomic/
// policy_quality.hpp) through the static and adaptive policy family and
// reports the deterministic ranking, so BENCH_PR7.json records whether the
// adaptive policy actually earns its keep on goal-miss rate.
//
// Emits one JSON object on stdout (consumed by bench/run_bench.sh into
// BENCH_PR<N>.json).
//
// Usage: coordinator_scale_bench [--smoke] [--registered N] [--armed K]
//                                [--samples M]

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "autonomic/coordinator.hpp"
#include "autonomic/policy_quality.hpp"
#include "runtime/thread_pool.hpp"
#include "util/csv.hpp"

using namespace askel;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScaleResult {
  int registered = 0;
  int armed = 0;
  double register_us_per_tenant = 0.0;
  double arbitration_us = 0.0;  // mean request() latency over the samples
};

/// Register `registered` tenants, arm every (registered/armed)-th one, then
/// time `samples` request() calls round-robin over the armed set with
/// deterministic varying desired/pressure (so arbitration actually moves
/// grants instead of degenerating to a no-op table).
ScaleResult run_config(int registered, int armed, int samples) {
  ScaleResult out;
  out.registered = registered;
  out.armed = armed;

  ResizableThreadPool pool(1, 16);
  LpBudgetCoordinator coord(pool, 16);

  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(registered));
  const double reg_t0 = now_s();
  for (int k = 0; k < registered; ++k) ids.push_back(coord.register_tenant());
  const double reg_t1 = now_s();
  out.register_us_per_tenant = (reg_t1 - reg_t0) * 1e6 / registered;

  const int stride = registered / armed;
  std::vector<int> armed_ids;
  armed_ids.reserve(static_cast<std::size_t>(armed));
  for (int k = 0; k < armed; ++k) {
    const int id = ids[static_cast<std::size_t>(k) * stride];
    coord.arm_tenant(id);
    armed_ids.push_back(id);
  }

  // Warm one pass so every armed tenant has a desired/pressure on record.
  for (std::size_t k = 0; k < armed_ids.size(); ++k) {
    coord.request(armed_ids[k], 1 + static_cast<int>(k % 4),
                  0.1 * static_cast<double>(k % 7));
  }

  const double t0 = now_s();
  for (int s = 0; s < samples; ++s) {
    const int id = armed_ids[static_cast<std::size_t>(s) % armed_ids.size()];
    coord.request(id, 1 + (s % 4), 0.1 * static_cast<double>((s * 3) % 7));
  }
  const double t1 = now_s();
  out.arbitration_us = (t1 - t0) * 1e6 / samples;

  for (int id : armed_ids) coord.release(id);
  return out;
}

void print_scale(const char* key, const ScaleResult& r, bool last) {
  std::cout << "  \"" << key << "\": {\"registered\": " << r.registered
            << ", \"armed\": " << r.armed << ", \"register_us_per_tenant\": "
            << fmt(r.register_us_per_tenant, 3)
            << ", \"arbitration_us\": " << fmt(r.arbitration_us, 2) << "}"
            << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int registered = 1'000'000;
  int armed = 10'000;
  int samples = 200;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[k], "--registered") == 0 && k + 1 < argc) {
      registered = std::atoi(argv[++k]);
    } else if (std::strcmp(argv[k], "--armed") == 0 && k + 1 < argc) {
      armed = std::atoi(argv[++k]);
    } else if (std::strcmp(argv[k], "--samples") == 0 && k + 1 < argc) {
      samples = std::atoi(argv[++k]);
    }
  }
  if (smoke) {
    registered = std::min(registered, 50'000);
    armed = std::min(armed, 1'000);
    samples = std::min(samples, 50);
  }
  if (armed < 1) armed = 1;
  if (registered < armed) registered = armed;
  if (samples < 1) samples = 1;

  const ScaleResult small = run_config(armed, armed, samples);
  const ScaleResult large = run_config(registered, armed, samples);
  const double flatness =
      large.arbitration_us / std::max(1e-9, small.arbitration_us);
  const bool flat = flatness <= 2.0;

  // Deterministic policy grading: the same seeded trace through the whole
  // family. The adaptive policy must beat its static inner policy
  // (weighted-share) on miss rate — that is what "learning from goal-miss
  // history" buys.
  const std::vector<DemandRound> trace =
      demand_trace(/*seed=*/42, /*tenants=*/6, /*rounds=*/200, /*budget=*/16);
  DeadlinePressurePolicy pressure;
  WeightedSharePolicy weighted;
  GroupedArbitrationPolicy grouped;
  AdaptiveWeightPolicy adaptive;
  const std::vector<PolicyQuality> ranked =
      rank_policies({&pressure, &weighted, &grouped, &adaptive}, 16, trace);
  double adaptive_miss = 1.0, weighted_miss = 1.0;
  for (const PolicyQuality& q : ranked) {
    if (q.policy == "adaptive-weight") adaptive_miss = q.miss_rate;
    if (q.policy == "weighted-share") weighted_miss = q.miss_rate;
  }
  const bool adaptive_wins = adaptive_miss <= weighted_miss;

  std::cout << "{\n";
  std::cout << "  \"bench\": \"coordinator_scale\",\n";
  std::cout << "  \"smoke\": " << json_bool(smoke) << ",\n";
  std::cout << "  \"samples\": " << samples << ",\n";
  print_scale("small", small, false);
  print_scale("large", large, false);
  std::cout << "  \"arbitration_flatness_ratio\": " << fmt(flatness, 3)
            << ",\n";
  std::cout << "  \"flat_in_registrations\": " << json_bool(flat) << ",\n";
  std::cout << "  \"policy_quality\": [\n";
  for (std::size_t k = 0; k < ranked.size(); ++k) {
    const PolicyQuality& q = ranked[k];
    std::cout << "    {\"policy\": \"" << q.policy
              << "\", \"miss_rate\": " << fmt(q.miss_rate, 4)
              << ", \"mean_shortfall\": " << fmt(q.mean_shortfall, 3)
              << ", \"churn\": " << fmt(q.churn, 3) << "}"
              << (k + 1 < ranked.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n";
  std::cout << "  \"adaptive_beats_static\": " << json_bool(adaptive_wins)
            << "\n";
  std::cout << "}\n";

  // The ranking is seeded and deterministic — assert it even in smoke. The
  // flatness bound is wall-clock, so like the other benches it only gates
  // the full (non-smoke) run.
  if (!adaptive_wins) return 1;
  if (!smoke && !flat) return 1;
  return 0;
}
