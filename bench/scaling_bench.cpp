// Raw-speed scaling benchmark (PR 6): the numbers behind docs/perf.md's
// scaling curve and the injection-queue before/after comparison.
//
// Sections (one JSON object on stdout, merged into BENCH_PR<N>.json):
//   * injection_queue: the retired mutex+deque injection design (replicated
//     here verbatim as a local struct) vs the lock-free Vyukov MPSC queue,
//     P producers pushing concurrently with one draining consumer — the
//     apples-to-apples contention comparison on the SAME commit;
//   * pool_injection: external-submitter tasks/sec through the real pool at
//     P producers (the end-to-end path: MPSC push -> drain claim -> deque);
//   * scaling: tasks/sec (fan-out churn) and estimate-snapshot latency under
//     concurrent writers, per LP — the multicore scaling curve. num_cpus is
//     reported so a 1-core CI box's flat curve reads as what it is.
//
// Usage: scaling_bench [--smoke]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "est/registry.hpp"
#include "runtime/mpsc_queue.hpp"
#include "runtime/thread_pool.hpp"
#include "util/csv.hpp"

using namespace askel;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The pre-PR-6 injection queue, verbatim shape: producers, the workers'
// emptiness probes and the consumer all serialize on one mutex, and the
// consumer takes one task per probe (newest first).
struct MutexInjectQueue {
  std::mutex mu;
  std::deque<Task> q;
  void push(Task t) {
    std::lock_guard lock(mu);
    q.push_back(std::move(t));
  }
  bool pop(Task& out) {
    std::lock_guard lock(mu);
    if (q.empty()) return false;
    out = std::move(q.back());
    q.pop_back();
    return true;
  }
  bool maybe_nonempty() {
    std::lock_guard lock(mu);
    return !q.empty();
  }
};

struct QueueOps {
  double push_ops = 0.0;   // producer phase: P threads pushing concurrently
  double drain_ops = 0.0;  // consumer phase: single-threaded pop-until-empty
};

void benchmark_probe(MutexInjectQueue& q) { (void)q.maybe_nonempty(); }
void benchmark_probe(const MpscTaskQueue& q) { (void)q.maybe_nonempty(); }

/// P producers push `per_producer` no-op tasks concurrently (timed), then one
/// consumer drains the whole backlog (timed separately). During the push
/// phase two "idle worker" threads hammer the emptiness probe, exactly like
/// the pool's try_get_task loop does: under the old design that probe took
/// the same global mutex as every submit, under the MPSC it is a lock-free
/// pointer compare. Separating the drain phase keeps a 1-core box from
/// charging the consumer's timeslice against the producers.
template <class Queue>
QueueOps queue_contention_ops(int producers, long per_producer) {
  Queue q;
  const long total = producers * per_producer;
  QueueOps out;
  {
    std::atomic<bool> stop{false};
    std::vector<std::thread> probers;
    for (int w = 0; w < 2; ++w) {
      probers.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          benchmark_probe(q);
        }
      });
    }
    std::vector<std::thread> prods;
    const double t0 = now_s();
    for (int p = 0; p < producers; ++p) {
      prods.emplace_back([&] {
        for (long k = 0; k < per_producer; ++k) q.push([] {});
      });
    }
    for (auto& t : prods) t.join();
    const double dt = now_s() - t0;
    stop.store(true, std::memory_order_release);
    for (auto& t : probers) t.join();
    out.push_ops = dt > 0.0 ? total / dt : 0.0;
  }
  {
    Task t;
    long got = 0;
    const double t0 = now_s();
    while (got < total) {
      if (q.pop(t)) ++got;
    }
    const double dt = now_s() - t0;
    out.drain_ops = got == total && dt > 0.0 ? total / dt : 0.0;
  }
  return out;
}

/// External submitters through the real pool: P threads submit `per_producer`
/// tasks each; tasks/sec includes the drain and execution.
double pool_injection_tps(int producers, long per_producer) {
  ResizableThreadPool pool(2, 2);
  std::atomic<long> done{0};
  const double t0 = now_s();
  std::vector<std::thread> prods;
  for (int p = 0; p < producers; ++p) {
    prods.emplace_back([&] {
      for (long k = 0; k < per_producer; ++k) {
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : prods) t.join();
  pool.wait_idle();
  const double dt = now_s() - t0;
  const long total = producers * per_producer;
  return done.load() == total && dt > 0.0 ? total / dt : 0.0;
}

struct ScalePoint {
  int lp = 0;
  double churn_tps = 0.0;
  double snap_dirty_ns = 0.0;
  double snap_clean_ns = 0.0;
};

/// Fan-out churn tasks/sec at a fixed LP (the BM_PoolChurn shape) plus the
/// registry snapshot cost while `lp` writer threads stream observations in —
/// the controller's actual decision-loop cost at that concurrency.
ScalePoint measure_scale_point(int lp, int rounds, int snap_iters) {
  ScalePoint out;
  out.lp = lp;
  {
    ResizableThreadPool pool(lp, lp);
    constexpr int kRoots = 16;
    constexpr int kChildren = 64;
    const double t0 = now_s();
    for (int r = 0; r < rounds; ++r) {
      for (int root = 0; root < kRoots; ++root) {
        pool.submit([&pool] {
          for (int c = 0; c < kChildren; ++c) pool.submit([] {});
        });
      }
      pool.wait_idle();
    }
    const double dt = now_s() - t0;
    out.churn_tps =
        dt > 0.0 ? rounds * kRoots * (kChildren + 1) / dt : 0.0;
  }
  {
    EstimateRegistry reg(0.5);
    for (int m = 0; m < 128; ++m) reg.observe_duration(m, 1.0);
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < lp; ++w) {
      writers.emplace_back([&reg, &stop, w] {
        long k = 0;
        while (!stop.load(std::memory_order_acquire)) {
          reg.observe_duration(w * 8 + static_cast<int>(k % 8), 1.0);
          ++k;
        }
      });
    }
    double acc = 0.0;
    for (int k = 0; k < snap_iters; ++k) {
      const double t0 = now_s();
      const auto snap = reg.snapshot();
      acc += now_s() - t0;
      if (snap.size() == 0) break;  // keep the snapshot observable
    }
    out.snap_dirty_ns = acc / snap_iters * 1e9;
    stop.store(true, std::memory_order_release);
    for (auto& t : writers) t.join();
    // Writers quiesced: back-to-back snapshots answer from the clean cache.
    (void)reg.snapshot();
    double acc2 = 0.0;
    for (int k = 0; k < snap_iters; ++k) {
      const double t0 = now_s();
      const auto snap = reg.snapshot();
      acc2 += now_s() - t0;
      if (snap.size() == 0) break;
    }
    out.snap_clean_ns = acc2 / snap_iters * 1e9;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--smoke") == 0) smoke = true;
  }
  const long per_producer = smoke ? 5000 : 50000;
  const int churn_rounds = smoke ? 4 : 24;
  const int snap_iters = smoke ? 200 : 2000;

  const std::vector<int> producer_counts = {1, 4, 8};
  const std::vector<int> lps = {1, 2, 4, 8};

  std::cout << "{\n";
  std::cout << "  \"smoke\": " << json_bool(smoke) << ",\n";
  std::cout << "  \"num_cpus\": " << std::thread::hardware_concurrency()
            << ",\n";

  // Median-of-5 per configuration, symmetrically for both queues: on a
  // small CI box the scheduler's timeslice placement dominates single runs,
  // and the median neither hides the mutex's convoy pathology (as a best-of
  // would) nor charges either queue for one unlucky run.
  const int reps = smoke ? 1 : 5;
  const auto median_of = [reps](auto&& measure) {
    std::vector<double> push, drain;
    for (int rep = 0; rep < reps; ++rep) {
      const QueueOps r = measure();
      push.push_back(r.push_ops);
      drain.push_back(r.drain_ops);
    }
    std::sort(push.begin(), push.end());
    std::sort(drain.begin(), drain.end());
    return QueueOps{push[push.size() / 2], drain[drain.size() / 2]};
  };

  std::cout << "  \"injection_queue\": [\n";
  for (std::size_t i = 0; i < producer_counts.size(); ++i) {
    const int p = producer_counts[i];
    const QueueOps mutex_ops = median_of([&] {
      return queue_contention_ops<MutexInjectQueue>(p, per_producer);
    });
    const QueueOps mpsc_ops = median_of([&] {
      return queue_contention_ops<MpscTaskQueue>(p, per_producer);
    });
    std::cout << "    {\"producers\": " << p
              << ", \"mutex_push_ops_per_sec\": " << fmt(mutex_ops.push_ops, 0)
              << ", \"mpsc_push_ops_per_sec\": " << fmt(mpsc_ops.push_ops, 0)
              << ", \"push_speedup\": "
              << fmt(mutex_ops.push_ops > 0.0
                         ? mpsc_ops.push_ops / mutex_ops.push_ops
                         : 0.0,
                     3)
              << ", \"mutex_drain_ops_per_sec\": "
              << fmt(mutex_ops.drain_ops, 0)
              << ", \"mpsc_drain_ops_per_sec\": " << fmt(mpsc_ops.drain_ops, 0)
              << "}" << (i + 1 < producer_counts.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n";

  std::cout << "  \"pool_injection\": [\n";
  for (std::size_t i = 0; i < producer_counts.size(); ++i) {
    const int p = producer_counts[i];
    std::cout << "    {\"producers\": " << p << ", \"tasks_per_sec\": "
              << fmt(pool_injection_tps(p, per_producer / 2), 0) << "}"
              << (i + 1 < producer_counts.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n";

  std::cout << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < lps.size(); ++i) {
    const ScalePoint s = measure_scale_point(lps[i], churn_rounds, snap_iters);
    std::cout << "    {\"lp\": " << s.lp
              << ", \"churn_tasks_per_sec\": " << fmt(s.churn_tps, 0)
              << ", \"snapshot_dirty_ns\": " << fmt(s.snap_dirty_ns, 1)
              << ", \"snapshot_clean_ns\": " << fmt(s.snap_clean_ns, 1) << "}"
              << (i + 1 < lps.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n";
  std::cout << "}\n";
  return 0;
}
