// Latency-SLO service benchmark: an open-loop request stream with a p99
// goal, served next to a flooding batch aggressor, coordinated vs baseline.
//
// Tenant 0 is the SLO tenant (Zipf rank 0 — the hot tenant — with a tail
// goal and SLA weight 3); tenant 1 is best-effort background traffic; the
// aggressor floods tagged submits for the whole stream. The SAME seeded
// stream replays twice:
//
//  * coordinated: weighted dispatch + WeightedSharePolicy coordinator + an
//    SLO controller whose P² tail tracker drives grants (arm_slo);
//  * baseline: FIFO dispatch, no coordinator, LP pinned at max — identical
//    capacity, no isolation and no tail-driven grants.
//
// Emits one JSON object on stdout (folded into BENCH_PR<N>.json by
// bench/run_bench.sh); check_regression.py gates on attainment_ratio.
//
// Usage: service_bench [--smoke] [--duration S] [--rate HZ] [--max-lp N]
//                      [--seed N]

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "workload/service.hpp"

using namespace askel;

namespace {

void print_tenant(const ServiceTenantResult& t, bool last) {
  std::cout << "    {\"tenant\": " << t.tenant
            << ", \"tail_goal_s\": " << fmt(t.tail_goal, 4)
            << ", \"requests\": " << t.requests
            << ", \"exact_p99_s\": " << fmt(t.exact_tail, 4)
            << ", \"exact_p50_s\": " << fmt(t.exact_median, 4)
            << ", \"est_p99_s\": " << fmt(t.est_tail, 4)
            << ", \"attainment\": " << fmt(t.attainment, 4)
            << ", \"peak_grant\": " << t.peak_grant
            << ", \"attainment_curve\": [";
  for (std::size_t i = 0; i < t.attainment_curve.size(); ++i) {
    const Sample& s = t.attainment_curve[i];
    std::cout << "[" << fmt(s.t, 3) << ", " << fmt(s.value, 3) << "]"
              << (i + 1 < t.attainment_curve.size() ? ", " : "");
  }
  std::cout << "]}" << (last ? "" : ",") << "\n";
}

void print_run(const char* key, const ServiceScenarioResult& r, bool last) {
  std::cout << "  \"" << key << "\": {\n";
  std::cout << "    \"duration_s\": " << fmt(r.duration, 3) << ",\n";
  std::cout << "    \"total_requests\": " << r.total_requests << ",\n";
  std::cout << "    \"aggressor_tasks\": " << r.aggressor_tasks << ",\n";
  std::cout << "    \"peak_total_granted\": " << r.peak_total_granted << ",\n";
  std::cout << "    \"budget_held\": " << json_bool(r.budget_held) << ",\n";
  std::cout << "    \"per_tenant\": [\n";
  for (std::size_t k = 0; k < r.tenants.size(); ++k) {
    print_tenant(r.tenants[k], k + 1 == r.tenants.size());
  }
  std::cout << "  ]}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double duration = 4.0;
  double rate = 150.0;
  int max_lp = 8;
  std::uint64_t seed = 42;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[k], "--duration") == 0 && k + 1 < argc) {
      duration = std::atof(argv[++k]);
    } else if (std::strcmp(argv[k], "--rate") == 0 && k + 1 < argc) {
      rate = std::atof(argv[++k]);
    } else if (std::strcmp(argv[k], "--max-lp") == 0 && k + 1 < argc) {
      max_lp = std::atoi(argv[++k]);
    } else if (std::strcmp(argv[k], "--seed") == 0 && k + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++k]));
    }
  }
  if (duration <= 0.0) duration = 4.0;
  if (rate <= 0.0) rate = 150.0;
  if (max_lp < 2) max_lp = 2;
  if (smoke) {
    duration = std::min(duration, 1.5);
    rate = std::min(rate, 80.0);
  }

  ServiceScenarioConfig cfg;
  cfg.stream.seed = seed;
  cfg.stream.tenants = 2;
  cfg.stream.duration_s = duration;
  cfg.stream.total_rate_hz = rate;
  cfg.stream.zipf_skew = 1.0;
  cfg.stream.mean_service_s = 0.004;
  cfg.stream.diurnal_amplitude = 0.4;
  cfg.stream.diurnal_period_s = duration;  // one full swing over the run
  cfg.stream.bursty = true;
  cfg.specs = {ServiceTenantSpec{/*tail_goal_s=*/0.05, /*weight=*/3},
               ServiceTenantSpec{}};
  cfg.max_lp = max_lp;
  cfg.aggressor = true;
  cfg.aggressor_work_s = 0.01;

  cfg.coordinated = true;
  const ServiceScenarioResult coordinated = run_service_scenario(cfg);
  cfg.coordinated = false;
  const ServiceScenarioResult baseline = run_service_scenario(cfg);

  const double att_coord = coordinated.tenants[0].attainment;
  const double att_fifo = baseline.tenants[0].attainment;
  // The gated metric: >1 means tail-driven grants + weighted dispatch beat
  // raw FIFO capacity at holding the p99 goal. The epsilon floor keeps the
  // ratio finite when the baseline collapses to 0 attainment.
  const double ratio = att_coord / std::max(1e-3, att_fifo);
  const bool win = att_coord > att_fifo;

  std::cout << "{\n";
  std::cout << "  \"scenario\": \"service_slo\",\n";
  std::cout << "  \"seed\": " << seed << ",\n";
  std::cout << "  \"duration_s\": " << fmt(duration, 2) << ",\n";
  std::cout << "  \"rate_hz\": " << fmt(rate, 1) << ",\n";
  std::cout << "  \"max_lp\": " << max_lp << ",\n";
  std::cout << "  \"smoke\": " << json_bool(smoke) << ",\n";
  print_run("coordinated", coordinated, false);
  print_run("fifo_baseline", baseline, false);
  std::cout << "  \"attainment_coordinated\": " << fmt(att_coord, 4) << ",\n";
  std::cout << "  \"attainment_fifo\": " << fmt(att_fifo, 4) << ",\n";
  std::cout << "  \"attainment_ratio\": " << fmt(ratio, 4) << ",\n";
  std::cout << "  \"slo_win\": " << json_bool(win) << "\n";
  std::cout << "}\n";

  if (!coordinated.budget_held) return 1;
  // Timing assertion only outside smoke (the aggressor makes the FIFO
  // baseline dramatically worse, so the comparison is robust even on a
  // loaded 1-core CI box).
  if (!smoke && !win) return 1;
  return 0;
}
