// The paper's §6 future work: "analyses of different WCT estimation
// algorithms comparing its overhead costs". Compares, on the paper's §4
// worked example and on random DAGs of growing size:
//   * greedy list scheduling (the paper's algorithm; most accurate),
//   * the Graham bound max(CP, W/p) (O(V+E), optimistic).
// Reports estimate values, relative deviation, and per-call cost.

#include <chrono>
#include <iostream>
#include <random>

#include "adg/bounds.hpp"
#include "adg/limited_lp.hpp"
#include "util/csv.hpp"
#include "workload/paper_example.hpp"

using namespace askel;

namespace {

AdgSnapshot random_dag(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dur(0.1, 5.0);
  std::uniform_int_distribution<int> npreds(0, 3);
  AdgSnapshot g;
  g.now = 0.0;
  for (int k = 0; k < n; ++k) {
    std::vector<int> preds;
    if (k > 0) {
      std::uniform_int_distribution<int> pick(0, k - 1);
      for (int j = npreds(rng); j > 0; --j) preds.push_back(pick(rng));
      std::sort(preds.begin(), preds.end());
      preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    }
    g.add(make_pending(0, "x", dur(rng), std::move(preds)));
  }
  return g;
}

template <class F>
double time_ns(F&& fn, int iters) {
  const auto t0 = std::chrono::steady_clock::now();
  double sink = 0.0;
  for (int k = 0; k < iters; ++k) sink += fn();
  const auto t1 = std::chrono::steady_clock::now();
  (void)sink;
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

}  // namespace

int main() {
  std::cout << "=== WCT estimation algorithms: accuracy and overhead ===\n\n";

  // Accuracy on the paper's worked example at LP 2 (list schedule = 115).
  PaperExampleReplay replay;
  replay.replay_until(70.0);
  const AdgSnapshot paper = replay.snapshot(70.0);
  std::cout << "paper example @70, LP=2: list=" << limited_lp(paper, 2).wct
            << "  graham_bound=" << graham_bound(paper, 2)
            << "  graham_upper=" << graham_upper(paper, 2) << "\n\n";

  Table table({"n", "lp", "list_wct", "graham_wct", "deviation_%", "list_ns",
               "graham_ns"});
  for (const int n : {16, 64, 256, 1024}) {
    const AdgSnapshot g = random_dag(17, n);
    for (const int lp : {2, 8}) {
      const double list = limited_lp(g, lp).wct;
      const double bound = graham_bound(g, lp);
      const int iters = n <= 256 ? 200 : 20;
      const double tl = time_ns([&] { return limited_lp(g, lp).wct; }, iters);
      const double tb = time_ns([&] { return graham_bound(g, lp); }, iters);
      table.add_row({std::to_string(n), std::to_string(lp), fmt(list, 2),
                     fmt(bound, 2), fmt(100.0 * (list - bound) / list, 1),
                     fmt(tl, 0), fmt(tb, 0)});
    }
  }
  std::cout << table.to_text();
  std::cout << "\n(graham_bound is a valid lower bound: using it in the "
               "controller risks under-allocation when dependencies, not "
               "work, dominate — the deviation column quantifies that)\n";
  return 0;
}
