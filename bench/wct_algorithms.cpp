// The paper's §6 future work: "analyses of different WCT estimation
// algorithms comparing its overhead costs". Two comparisons live here:
//
//  * default mode — scheduling algorithms: greedy list scheduling (the
//    paper's; most accurate) vs the Graham bound max(CP, W/p) (O(V+E),
//    optimistic), on the §4 worked example and random DAGs of growing size.
//    Reports estimate values, relative deviation, and per-call cost.
//
//  * --estimators mode — the PR 4 estimator family A/B: replays the
//    Figure 5/6/7 scenarios under each estimator (EWMA / window mean /
//    window median / P² quantile) and reports adaptation quality side by
//    side (goal-miss width, decision churn, per-muscle estimate error),
//    plus the deterministic bursty-stream one-step-ahead accuracy ranking
//    from est/quality.hpp. Emits one JSON object on stdout (consumed by
//    bench/run_bench.sh into BENCH_PR<N>.json).
//
// Usage: wct_algorithms [--estimators [--smoke] [--scale X] [--tweets N]]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <optional>
#include <random>
#include <string>

#include "adg/bounds.hpp"
#include "adg/limited_lp.hpp"
#include "est/quality.hpp"
#include "util/csv.hpp"
#include "workload/paper_example.hpp"
#include "workload/wordcount.hpp"

using namespace askel;

namespace {

AdgSnapshot random_dag(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dur(0.1, 5.0);
  std::uniform_int_distribution<int> npreds(0, 3);
  AdgSnapshot g;
  g.now = 0.0;
  for (int k = 0; k < n; ++k) {
    std::vector<int> preds;
    if (k > 0) {
      std::uniform_int_distribution<int> pick(0, k - 1);
      for (int j = npreds(rng); j > 0; --j) preds.push_back(pick(rng));
      std::sort(preds.begin(), preds.end());
      preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    }
    g.add(make_pending(0, "x", dur(rng), std::move(preds)));
  }
  return g;
}

template <class F>
double time_ns(F&& fn, int iters) {
  const auto t0 = std::chrono::steady_clock::now();
  double sink = 0.0;
  for (int k = 0; k < iters; ++k) sink += fn();
  const auto t1 = std::chrono::steady_clock::now();
  (void)sink;
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

int run_scheduling_comparison() {
  std::cout << "=== WCT estimation algorithms: accuracy and overhead ===\n\n";

  // Accuracy on the paper's worked example at LP 2 (list schedule = 115).
  PaperExampleReplay replay;
  replay.replay_until(70.0);
  const AdgSnapshot paper = replay.snapshot(70.0);
  std::cout << "paper example @70, LP=2: list=" << limited_lp(paper, 2).wct
            << "  graham_bound=" << graham_bound(paper, 2)
            << "  graham_upper=" << graham_upper(paper, 2) << "\n\n";

  Table table({"n", "lp", "list_wct", "graham_wct", "deviation_%", "list_ns",
               "graham_ns"});
  for (const int n : {16, 64, 256, 1024}) {
    const AdgSnapshot g = random_dag(17, n);
    for (const int lp : {2, 8}) {
      const double list = limited_lp(g, lp).wct;
      const double bound = graham_bound(g, lp);
      const int iters = n <= 256 ? 200 : 20;
      const double tl = time_ns([&] { return limited_lp(g, lp).wct; }, iters);
      const double tb = time_ns([&] { return graham_bound(g, lp); }, iters);
      table.add_row({std::to_string(n), std::to_string(lp), fmt(list, 2),
                     fmt(bound, 2), fmt(100.0 * (list - bound) / list, 1),
                     fmt(tl, 0), fmt(tb, 0)});
    }
  }
  std::cout << table.to_text();
  std::cout << "\n(graham_bound is a valid lower bound: using it in the "
               "controller risks under-allocation when dependencies, not "
               "work, dominate — the deviation column quantifies that)\n";
  return 0;
}

// ------------------------------------------------------- estimator A/B --

/// Adaptation-quality digest of one scenario run.
struct ScenarioQuality {
  double wct = 0.0;
  double goal = 0.0;
  bool goal_met = false;
  double goal_miss_pct = 0.0;  // max(0, wct - goal) / goal * 100
  int decisions = 0;           // applied LP changes
  int lp_churn = 0;            // sum |ΔLP| over those changes
  long evaluations = 0;
  /// Final t(fe) vs the calibrated truth; empty when the run produced no fe
  /// duration estimate (reported as JSON null, not as a perfect 0).
  std::optional<double> fe_est_err_pct;
  bool correct = false;
};

ScenarioQuality digest(const ScenarioConfig& cfg, const ScenarioResult& res) {
  ScenarioQuality q;
  q.wct = res.wct;
  q.goal = res.goal;
  q.goal_met = res.goal_met;
  q.goal_miss_pct = 100.0 * std::max(0.0, res.wct - res.goal) / res.goal;
  q.decisions = static_cast<int>(res.actions.size());
  for (const auto& a : res.actions) q.lp_churn += std::abs(a.to_lp - a.from_lp);
  q.evaluations = res.controller_evaluations;
  const auto it = res.final_estimates.find("fe");
  const double truth = cfg.timings.scaled_execute();
  if (it != res.final_estimates.end() && it->second.t && truth > 0.0) {
    q.fe_est_err_pct = 100.0 * std::abs(*it->second.t - truth) / truth;
  }
  q.correct = res.counts == res.expected;
  return q;
}

void print_quality_json(const ScenarioQuality& q, const EstimatorConfig& cfg,
                        bool last) {
  std::cout << "      {\"estimator\": \"" << to_string(cfg.kind) << "\""
            << ", \"wct_s\": " << fmt(q.wct, 3) << ", \"goal_s\": "
            << fmt(q.goal, 3) << ", \"goal_met\": " << json_bool(q.goal_met)
            << ", \"goal_miss_pct\": " << fmt(q.goal_miss_pct, 2)
            << ", \"decisions\": " << q.decisions
            << ", \"lp_churn\": " << q.lp_churn
            << ", \"evaluations\": " << q.evaluations
            << ", \"fe_est_err_pct\": "
            << (q.fe_est_err_pct ? fmt(*q.fe_est_err_pct, 2)
                                 : std::string("null"))
            << ", \"results_correct\": " << json_bool(q.correct) << "}"
            << (last ? "" : ",") << "\n";
}

int run_estimator_ab(int argc, char** argv) {
  bool smoke = false;
  double scale = 0.15;
  std::size_t tweets = 5000;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[k], "--scale") == 0 && k + 1 < argc) {
      const double v = std::atof(argv[++k]);
      if (v > 0.0) scale = v;  // atof's 0.0-on-garbage must not zero timings
    } else if (std::strcmp(argv[k], "--tweets") == 0 && k + 1 < argc) {
      const long v = std::atol(argv[++k]);
      if (v > 0) tweets = static_cast<std::size_t>(v);
    }
  }
  if (smoke) {
    scale = std::min(scale, 0.05);
    tweets = std::min<std::size_t>(tweets, 2000);
  }

  const std::vector<EstimatorConfig> family = default_estimator_family();

  // Deterministic part first: one-step-ahead accuracy on the seeded bursty
  // stream (the estimator-quality ranking the regression test also checks).
  constexpr std::uint64_t kStreamSeed = 42;
  constexpr int kStreamLen = 400;
  const std::vector<double> stream = bursty_stream(kStreamSeed, kStreamLen);
  const std::vector<StreamQuality> ranked = rank_estimators(family, stream);

  std::cout << "{\n";
  std::cout << "  \"mode\": \"estimator_ab\",\n";
  std::cout << "  \"smoke\": " << json_bool(smoke) << ",\n";
  std::cout << "  \"scale\": " << fmt(scale, 4) << ",\n";
  std::cout << "  \"tweets\": " << tweets << ",\n";
  std::cout << "  \"stream_quality\": {\n";
  std::cout << "    \"seed\": " << kStreamSeed << ", \"samples\": " << kStreamLen
            << ",\n";
  std::cout << "    \"ranking_by_rms\": [";
  for (std::size_t k = 0; k < ranked.size(); ++k) {
    std::cout << "\"" << to_string(ranked[k].config.kind) << "\""
              << (k + 1 < ranked.size() ? ", " : "");
  }
  std::cout << "],\n";
  std::cout << "    \"per_estimator\": [\n";
  for (std::size_t k = 0; k < ranked.size(); ++k) {
    const StreamQuality& s = ranked[k];
    std::cout << "      {\"estimator\": \"" << to_string(s.config.kind) << "\""
              << ", \"rms_error\": " << fmt(s.rms_error, 4)
              << ", \"mean_abs_error\": " << fmt(s.mean_abs_error, 4)
              << ", \"max_abs_error\": " << fmt(s.max_abs_error, 4)
              << ", \"bias\": " << fmt(s.bias, 4) << "}"
              << (k + 1 < ranked.size() ? "," : "") << "\n";
  }
  std::cout << "    ]\n  },\n";

  // End-to-end: the Figure 5/6/7 scenarios under each estimator. fig6 runs
  // its own warmup per estimator (the initialization values must come from
  // the estimator under test, as in the paper's scenario 2).
  std::cout << "  \"scenarios\": {\n";
  const struct {
    const char* name;
    double goal;
    bool with_init;
  } scenarios[] = {
      {"fig5_goal_no_init", 9.5, false},
      {"fig6_goal_with_init", 9.5, true},
      {"fig7_goal_105", 10.5, false},
  };
  for (std::size_t s = 0; s < std::size(scenarios); ++s) {
    std::cout << "    \"" << scenarios[s].name << "\": [\n";
    for (std::size_t k = 0; k < family.size(); ++k) {
      ScenarioConfig cfg;
      cfg.wct_goal = scenarios[s].goal;
      cfg.timings.scale = scale;
      cfg.corpus.num_tweets = tweets;
      cfg.max_lp = 24;
      cfg.estimator = family[k].kind;
      cfg.estimator_window = family[k].window;
      cfg.estimator_quantile = family[k].quantile;
      cfg.rho = family[k].rho;
      ScenarioResult res;
      if (scenarios[s].with_init) {
        const ScenarioResult warmup = run_wordcount_scenario(cfg);
        res = run_wordcount_scenario(cfg, &warmup.final_estimates);
      } else {
        res = run_wordcount_scenario(cfg);
      }
      print_quality_json(digest(cfg, res), family[k], k + 1 == family.size());
    }
    std::cout << "    ]" << (s + 1 < std::size(scenarios) ? "," : "") << "\n";
  }
  std::cout << "  }\n}\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--estimators") == 0) {
      return run_estimator_ab(argc, argv);
    }
  }
  return run_scheduling_comparison();
}
