// google-benchmark microbenchmarks of the framework's moving parts: event
// dispatch overhead, skeleton interpretation overhead, scheduler costs on
// growing ADGs, estimator updates, and pool resize latency.
//
// These quantify the "very high level of adaptability" claim: per-event
// monitoring is only viable if event dispatch and re-estimation are cheap
// relative to muscle work.

#include <benchmark/benchmark.h>

#include <numeric>

#include "adg/best_effort.hpp"
#include "adg/limited_lp.hpp"
#include "adg/timeline.hpp"
#include "autonomic/decision.hpp"
#include "est/registry.hpp"
#include "skel/typed.hpp"
#include "sm/tracker_set.hpp"
#include "workload/paper_example.hpp"

namespace askel {
namespace {

// ------------------------------------------------------------ event layer --

void BM_EventDispatch_NoListeners(benchmark::State& state) {
  EventBus bus;
  Event ev;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.dispatch(std::any(1), ev));
  }
}
BENCHMARK(BM_EventDispatch_NoListeners);

void BM_EventDispatch_Listeners(benchmark::State& state) {
  EventBus bus;
  for (int k = 0; k < state.range(0); ++k) {
    bus.add_listener(std::make_shared<ObserverListener>([](const Event&) {}));
  }
  Event ev;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.dispatch(std::any(1), ev));
  }
}
BENCHMARK(BM_EventDispatch_Listeners)->Arg(1)->Arg(4)->Arg(16);

// Contended dispatch: every worker thread of a skeleton fires Before/After
// events, so dispatch must not serialize the pool. The seed design took a
// mutex and heap-copied the listener list per event; the RCU design reads an
// atomic snapshot pointer.
void BM_EventDispatch_Contended(benchmark::State& state) {
  static EventBus* bus = nullptr;
  if (state.thread_index() == 0) {
    bus = new EventBus;
    for (int k = 0; k < 4; ++k) {
      bus->add_listener(std::make_shared<ObserverListener>([](const Event&) {}));
    }
  }
  Event ev;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus->dispatch(std::any(1), ev));
  }
  if (state.thread_index() == 0) {
    delete bus;
    bus = nullptr;
  }
}
BENCHMARK(BM_EventDispatch_Contended)->Threads(4)->UseRealTime();

// --------------------------------------------------------- skeleton layer --

void BM_SkeletonOverhead_SeqNoop(benchmark::State& state) {
  ResizableThreadPool pool(1, 1);
  EventBus bus;
  Engine engine(pool, bus);
  auto fe = execute_muscle<int, int>("noop", [](int x) { return x; });
  auto skel = Seq(fe);
  for (auto _ : state) {
    benchmark::DoNotOptimize(skel.input(1, engine).get());
  }
}
BENCHMARK(BM_SkeletonOverhead_SeqNoop);

void BM_SkeletonOverhead_MapNoop(benchmark::State& state) {
  ResizableThreadPool pool(2, 2);
  EventBus bus;
  Engine engine(pool, bus);
  const int n = static_cast<int>(state.range(0));
  auto fs = split_muscle<int, int>("fs", [n](int) {
    return std::vector<int>(static_cast<std::size_t>(n), 1);
  });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int> v) {
    return std::accumulate(v.begin(), v.end(), 0);
  });
  auto skel = Map(fs, Seq(fe), fm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(skel.input(0, engine).get());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SkeletonOverhead_MapNoop)->Arg(4)->Arg(32)->Arg(256);

void BM_SkeletonOverhead_WithTrackingListeners(benchmark::State& state) {
  ResizableThreadPool pool(2, 2);
  EventBus bus;
  EstimateRegistry reg(0.5);
  TrackerSet trackers(reg);
  bus.add_listener(trackers.as_listener());
  Engine engine(pool, bus);
  auto fs = split_muscle<int, int>("fs", [](int) {
    return std::vector<int>(32, 1);
  });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int> v) {
    return static_cast<int>(v.size());
  });
  auto skel = Map(fs, Seq(fe), fm);
  for (auto _ : state) {
    trackers.reset();
    benchmark::DoNotOptimize(skel.input(0, engine).get());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_SkeletonOverhead_WithTrackingListeners);

// -------------------------------------------------------- analytic layers --

AdgSnapshot wide_dag(int width) {
  AdgSnapshot g;
  g.now = 0.0;
  const int split = g.add(make_pending(0, "fs", 1.0, {}));
  std::vector<int> fes;
  for (int k = 0; k < width; ++k) fes.push_back(g.add(make_pending(1, "fe", 1.0, {split})));
  g.add(make_pending(2, "fm", 1.0, fes));
  return g;
}

void BM_BestEffort(benchmark::State& state) {
  const AdgSnapshot g = wide_dag(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(best_effort(g).wct);
  }
}
BENCHMARK(BM_BestEffort)->Arg(32)->Arg(256)->Arg(2048);

void BM_LimitedLp(benchmark::State& state) {
  const AdgSnapshot g = wide_dag(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(limited_lp(g, 8).wct);
  }
}
BENCHMARK(BM_LimitedLp)->Arg(32)->Arg(256)->Arg(1024);

void BM_Decide(benchmark::State& state) {
  const AdgSnapshot g = wide_dag(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decide(g, 2.0, 4, 24));
  }
}
BENCHMARK(BM_Decide)->Arg(32)->Arg(256);

void BM_TrackerSnapshot_PaperExample(benchmark::State& state) {
  PaperExampleReplay replay;
  replay.replay_until(70.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay.snapshot(70.0).size());
  }
}
BENCHMARK(BM_TrackerSnapshot_PaperExample);

void BM_EstimatorObserve(benchmark::State& state) {
  EstimateRegistry reg(0.5);
  long k = 0;
  for (auto _ : state) {
    reg.observe_duration(static_cast<int>(k % 8), 1.0);
    ++k;
  }
}
BENCHMARK(BM_EstimatorObserve);

// Contended observes: state machines on different workers record different
// muscles into ONE shared registry — the case the muscle-id-sharded locks
// target (the seed serialized all of them on a single mutex).
void BM_EstimatorObserve_Contended(benchmark::State& state) {
  static EstimateRegistry* reg = nullptr;
  if (state.thread_index() == 0) reg = new EstimateRegistry(0.5);
  long k = 0;
  const int base = state.thread_index() * 4;
  for (auto _ : state) {
    reg->observe_duration(base + static_cast<int>(k % 4), 1.0);
    ++k;
  }
  if (state.thread_index() == 0) {
    delete reg;
    reg = nullptr;
  }
}
BENCHMARK(BM_EstimatorObserve_Contended)->Threads(4)->UseRealTime();

// Controller decision loop cost: back-to-back snapshots with no intervening
// writes. The versioned registry must answer from its cached snapshot (O(1));
// the seed deep-copied the whole stats map every call.
void BM_EstimateSnapshot_Clean(benchmark::State& state) {
  EstimateRegistry reg(0.5, EstimationScope::kPerDepth);
  for (int m = 0; m < static_cast<int>(state.range(0)); ++m) {
    reg.observe_duration(m, /*depth=*/0, 1.0);
    reg.observe_cardinality(m, /*depth=*/0, 4.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.snapshot().size());
  }
}
BENCHMARK(BM_EstimateSnapshot_Clean)->Arg(16)->Arg(128)->Arg(1024);

// Write-then-snapshot with ONE dirty muscle: under the sharded registry the
// rebuild touches only that muscle's fragment and splices the other
// kEstimateFragments-1 by shared_ptr bump — O(dirty), not O(muscles).
void BM_EstimateSnapshot_Dirty(benchmark::State& state) {
  EstimateRegistry reg(0.5);
  for (int m = 0; m < static_cast<int>(state.range(0)); ++m) {
    reg.observe_duration(m, 1.0);
  }
  for (auto _ : state) {
    reg.observe_duration(0, 1.0);
    benchmark::DoNotOptimize(reg.snapshot().size());
  }
}
BENCHMARK(BM_EstimateSnapshot_Dirty)->Arg(16)->Arg(128);

// Every shard dirty between snapshots (one write per fragment): the honest
// full-rebuild bound the incremental path degrades to when everything moved.
void BM_EstimateSnapshot_DirtyAll(benchmark::State& state) {
  EstimateRegistry reg(0.5);
  const int muscles = static_cast<int>(state.range(0));
  for (int m = 0; m < muscles; ++m) reg.observe_duration(m, 1.0);
  for (auto _ : state) {
    // Muscle id m lands in fragment m % kEstimateFragments, so ids
    // 0..kEstimateFragments-1 dirty every shard.
    for (int m = 0; m < static_cast<int>(kEstimateFragments); ++m) {
      reg.observe_duration(m, 1.0);
    }
    benchmark::DoNotOptimize(reg.snapshot().size());
  }
}
BENCHMARK(BM_EstimateSnapshot_DirtyAll)->Arg(128);

// ---------------------------------------------------------------- runtime --

void BM_PoolResize(benchmark::State& state) {
  ResizableThreadPool pool(1, 16);
  int lp = 1;
  for (auto _ : state) {
    lp = lp == 1 ? 16 : 1;
    benchmark::DoNotOptimize(pool.set_target_lp(lp));
  }
}
BENCHMARK(BM_PoolResize);

void BM_PoolSubmitDrain(benchmark::State& state) {
  ResizableThreadPool pool(2, 2);
  for (auto _ : state) {
    for (int k = 0; k < 64; ++k) pool.submit([] {});
    pool.wait_idle();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PoolSubmitDrain);

// External injection under multi-producer contention: 4 threads push batches
// through the lock-free MPSC injection path and wait for the drain. The
// previous design serialized every external submit (and every worker's drain
// probe) on one inject mutex, so producers convoyed exactly here.
void BM_PoolInjectDrain_Contended(benchmark::State& state) {
  static ResizableThreadPool* pool = nullptr;
  if (state.thread_index() == 0) pool = new ResizableThreadPool(2, 2);
  for (auto _ : state) {
    for (int k = 0; k < 16; ++k) pool->submit([] {});
    pool->wait_idle();
  }
  state.SetItemsProcessed(state.iterations() * 16);
  if (state.thread_index() == 0) {
    delete pool;
    pool = nullptr;
  }
}
BENCHMARK(BM_PoolInjectDrain_Contended)->Threads(4)->UseRealTime();

// Task churn at a given LP: roots fan out children from inside worker
// threads, the shape of a Map/DaC expansion. With a single global mutex every
// push/pop serializes, so adding workers adds contention instead of
// throughput; per-worker deques + stealing keep the hot path local.
void BM_PoolChurn(benchmark::State& state) {
  const int lp = static_cast<int>(state.range(0));
  ResizableThreadPool pool(lp, lp);
  constexpr int kRoots = 16;
  constexpr int kChildren = 64;
  for (auto _ : state) {
    std::atomic<int> done{0};
    for (int r = 0; r < kRoots; ++r) {
      pool.submit([&pool, &done] {
        for (int c = 0; c < kChildren; ++c) {
          pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    pool.wait_idle();
    benchmark::DoNotOptimize(done.load());
  }
  state.SetItemsProcessed(state.iterations() * kRoots * (kChildren + 1));
}
BENCHMARK(BM_PoolChurn)->Arg(1)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace askel
