// google-benchmark microbenchmarks of the framework's moving parts: event
// dispatch overhead, skeleton interpretation overhead, scheduler costs on
// growing ADGs, estimator updates, and pool resize latency.
//
// These quantify the "very high level of adaptability" claim: per-event
// monitoring is only viable if event dispatch and re-estimation are cheap
// relative to muscle work.

#include <benchmark/benchmark.h>

#include <numeric>

#include "adg/best_effort.hpp"
#include "adg/limited_lp.hpp"
#include "adg/timeline.hpp"
#include "autonomic/decision.hpp"
#include "est/registry.hpp"
#include "skel/typed.hpp"
#include "sm/tracker_set.hpp"
#include "workload/paper_example.hpp"

namespace askel {
namespace {

// ------------------------------------------------------------ event layer --

void BM_EventDispatch_NoListeners(benchmark::State& state) {
  EventBus bus;
  Event ev;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.dispatch(std::any(1), ev));
  }
}
BENCHMARK(BM_EventDispatch_NoListeners);

void BM_EventDispatch_Listeners(benchmark::State& state) {
  EventBus bus;
  for (int k = 0; k < state.range(0); ++k) {
    bus.add_listener(std::make_shared<ObserverListener>([](const Event&) {}));
  }
  Event ev;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.dispatch(std::any(1), ev));
  }
}
BENCHMARK(BM_EventDispatch_Listeners)->Arg(1)->Arg(4)->Arg(16);

// --------------------------------------------------------- skeleton layer --

void BM_SkeletonOverhead_SeqNoop(benchmark::State& state) {
  ResizableThreadPool pool(1, 1);
  EventBus bus;
  Engine engine(pool, bus);
  auto fe = execute_muscle<int, int>("noop", [](int x) { return x; });
  auto skel = Seq(fe);
  for (auto _ : state) {
    benchmark::DoNotOptimize(skel.input(1, engine).get());
  }
}
BENCHMARK(BM_SkeletonOverhead_SeqNoop);

void BM_SkeletonOverhead_MapNoop(benchmark::State& state) {
  ResizableThreadPool pool(2, 2);
  EventBus bus;
  Engine engine(pool, bus);
  const int n = static_cast<int>(state.range(0));
  auto fs = split_muscle<int, int>("fs", [n](int) {
    return std::vector<int>(static_cast<std::size_t>(n), 1);
  });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int> v) {
    return std::accumulate(v.begin(), v.end(), 0);
  });
  auto skel = Map(fs, Seq(fe), fm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(skel.input(0, engine).get());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SkeletonOverhead_MapNoop)->Arg(4)->Arg(32)->Arg(256);

void BM_SkeletonOverhead_WithTrackingListeners(benchmark::State& state) {
  ResizableThreadPool pool(2, 2);
  EventBus bus;
  EstimateRegistry reg(0.5);
  TrackerSet trackers(reg);
  bus.add_listener(trackers.as_listener());
  Engine engine(pool, bus);
  auto fs = split_muscle<int, int>("fs", [](int) {
    return std::vector<int>(32, 1);
  });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int> v) {
    return static_cast<int>(v.size());
  });
  auto skel = Map(fs, Seq(fe), fm);
  for (auto _ : state) {
    trackers.reset();
    benchmark::DoNotOptimize(skel.input(0, engine).get());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_SkeletonOverhead_WithTrackingListeners);

// -------------------------------------------------------- analytic layers --

AdgSnapshot wide_dag(int width) {
  AdgSnapshot g;
  g.now = 0.0;
  const int split = g.add(make_pending(0, "fs", 1.0, {}));
  std::vector<int> fes;
  for (int k = 0; k < width; ++k) fes.push_back(g.add(make_pending(1, "fe", 1.0, {split})));
  g.add(make_pending(2, "fm", 1.0, fes));
  return g;
}

void BM_BestEffort(benchmark::State& state) {
  const AdgSnapshot g = wide_dag(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(best_effort(g).wct);
  }
}
BENCHMARK(BM_BestEffort)->Arg(32)->Arg(256)->Arg(2048);

void BM_LimitedLp(benchmark::State& state) {
  const AdgSnapshot g = wide_dag(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(limited_lp(g, 8).wct);
  }
}
BENCHMARK(BM_LimitedLp)->Arg(32)->Arg(256)->Arg(1024);

void BM_Decide(benchmark::State& state) {
  const AdgSnapshot g = wide_dag(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decide(g, 2.0, 4, 24));
  }
}
BENCHMARK(BM_Decide)->Arg(32)->Arg(256);

void BM_TrackerSnapshot_PaperExample(benchmark::State& state) {
  PaperExampleReplay replay;
  replay.replay_until(70.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay.snapshot(70.0).size());
  }
}
BENCHMARK(BM_TrackerSnapshot_PaperExample);

void BM_EstimatorObserve(benchmark::State& state) {
  EstimateRegistry reg(0.5);
  long k = 0;
  for (auto _ : state) {
    reg.observe_duration(static_cast<int>(k % 8), 1.0);
    ++k;
  }
}
BENCHMARK(BM_EstimatorObserve);

// ---------------------------------------------------------------- runtime --

void BM_PoolResize(benchmark::State& state) {
  ResizableThreadPool pool(1, 16);
  int lp = 1;
  for (auto _ : state) {
    lp = lp == 1 ? 16 : 1;
    benchmark::DoNotOptimize(pool.set_target_lp(lp));
  }
}
BENCHMARK(BM_PoolResize);

void BM_PoolSubmitDrain(benchmark::State& state) {
  ResizableThreadPool pool(2, 2);
  for (auto _ : state) {
    for (int k = 0; k < 64; ++k) pool.submit([] {});
    pool.wait_idle();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PoolSubmitDrain);

}  // namespace
}  // namespace askel
