// Ablation: context-sensitive estimation (this repo's implementation of the
// paper's §6 future work on "different WCT estimation algorithms").
//
// The §5 workload shares one split muscle across both map levels (Listing 1),
// so the paper's per-muscle t(fs) conflates the 6.4 s outer file read with
// the 0.91 s inner splits — after one of each, t(fs) ≈ 3.66 s, a ~4×
// overestimate of the remaining inner splits that pushes the controller onto
// the unachievable-ramp path. Per-depth estimation keys t(m) by dynamic
// nesting depth and removes the conflation: the controller can then compute
// exact minimal allocations (increase-to-goal) instead of ramping.

#include <iostream>

#include "util/csv.hpp"
#include "workload/wordcount.hpp"

using namespace askel;

int main(int argc, char** argv) {
  ScenarioConfig cfg;
  cfg.wct_goal = 9.5;
  cfg.timings.scale = argc > 1 ? std::atof(argv[1]) : 0.08;
  cfg.corpus.num_tweets = 2000;

  std::cout << "=== Ablation: estimation scope (goal 9.5, scale "
            << cfg.timings.scale << ") ===\n\n";
  Table table({"scope", "wct_s", "goal_met", "peak_busy", "ramp_decisions",
               "exact_decisions"});
  for (const EstimationScope scope :
       {EstimationScope::kAggregate, EstimationScope::kPerDepth}) {
    cfg.scope = scope;
    const ScenarioResult res = run_wordcount_scenario(cfg);
    int ramps = 0, exact = 0;
    for (const auto& a : res.actions) {
      ramps += a.reason == DecisionReason::kUnachievableRamp;
      exact += a.reason == DecisionReason::kIncreaseToGoal;
    }
    table.add_row({scope == EstimationScope::kAggregate ? "aggregate (paper)"
                                                        : "per-depth (ext)",
                   fmt(res.wct, 3), res.goal_met ? "yes" : "no",
                   std::to_string(res.peak_busy), std::to_string(ramps),
                   std::to_string(exact)});
    if (res.counts != res.expected) {
      std::cerr << "result mismatch\n";
      return 1;
    }
  }
  std::cout << table.to_text();
  std::cout << "\n(per-depth estimation separates the outer 6.4 s file read "
               "from the 0.91 s inner splits, replacing blind ramping with "
               "exact minimal allocations)\n";
  return 0;
}
