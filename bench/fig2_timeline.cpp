// Figure 2 harness: the LP timeline of the paper's worked example — number
// of active threads over wall-clock time for the best-effort schedule and
// for the limited-LP(2) schedule, from the ADG observed at WCT 70.
//
// Paper reference values (Figure 2):
//   best-effort peaks at 3 threads in [75, 90)  → optimal LP = 3;
//   limited LP never exceeds 2; total WCT 115.

#include <iostream>

#include "adg/best_effort.hpp"
#include "adg/limited_lp.hpp"
#include "adg/timeline.hpp"
#include "util/csv.hpp"
#include "workload/paper_example.hpp"

using namespace askel;

namespace {

void print_profile(const char* name, const std::vector<Sample>& profile) {
  std::cout << name << " (wct, active_threads):\n";
  std::cout << to_csv(profile, "wct", "threads");
}

}  // namespace

int main() {
  PaperExampleReplay replay;
  replay.replay_until(PaperExampleReplay::kObservationTime);
  const AdgSnapshot g = replay.snapshot(PaperExampleReplay::kObservationTime);

  const Schedule be = best_effort(g);
  const Schedule lp2 = limited_lp(g, 2);
  const auto be_profile = concurrency_profile(be);
  const auto lp2_profile = concurrency_profile(lp2);

  std::cout << "=== Figure 2: timeline used to estimate total WCT and optimal LP ===\n\n";
  print_profile("best-effort", be_profile);
  std::cout << "\n";
  print_profile("limited-LP(2)", lp2_profile);

  const int opt = peak_concurrency(be_profile);
  const int lp2_peak = peak_concurrency(lp2_profile);
  std::cout << "\noptimal LP (best-effort peak) = " << opt << "   (paper: 3)\n";
  std::cout << "limited-LP(2) peak            = " << lp2_peak << "   (paper: <= 2)\n";
  std::cout << "limited-LP(2) total WCT       = " << lp2.wct << " (paper: 115)\n";
  std::cout << "best-effort total WCT         = " << be.wct << " (paper: 100)\n";

  // The paper's closing check of §4: a goal of 100 needs LP 3.
  std::cout << "\nWCT goal 100 => minimal LP meeting it: ";
  int k = 1;
  while (limited_lp(g, k).wct > 100.0 && k < 24) ++k;
  std::cout << k << "   (paper: 3)\n";

  const bool ok = opt == 3 && lp2_peak <= 2 && lp2.wct == 115.0 && k == 3;
  std::cout << (ok ? "\n[REPRODUCED]\n" : "\n[MISMATCH]\n");
  return ok ? 0 : 1;
}
