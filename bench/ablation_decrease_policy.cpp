// Ablation: the LP-decrease policy. The paper decreases by halving only
// ("Skandium does not reduce the LP as fast as it increases it"), which makes
// scenario 2 finish 1.1 s early. This bench compares:
//   halving (paper)  vs  no-decrease  vs  jump-ramp (ramp_factor=1).
//
// Uses a generous goal after a steep over-allocation so the decrease path is
// actually exercised.

#include <iostream>

#include "util/csv.hpp"
#include "workload/wordcount.hpp"

using namespace askel;

namespace {

ScenarioResult run_with(ScenarioConfig cfg, bool allow_decrease, int ramp_factor,
                        const NamedEstimates* init) {
  // run_wordcount_scenario owns the controller; thread the policy through a
  // dedicated run since the config struct carries only scenario knobs.
  // We reproduce its plumbing here with the policy applied.
  auto tweets =
      std::make_shared<const std::vector<std::string>>(generate_tweets(cfg.corpus));
  WordcountSkeleton ws = make_wordcount_skeleton(cfg.timings, cfg.jitter_seed);
  ResizableThreadPool pool(cfg.initial_lp, cfg.max_lp);
  EventBus bus;
  EstimateRegistry reg(cfg.rho);
  TrackerSet trackers(reg);
  bus.add_listener(trackers.as_listener());
  ControllerConfig ccfg;
  ccfg.min_interval = std::max(0.0, cfg.controller_min_interval * cfg.timings.scale);
  ccfg.decision.allow_decrease = allow_decrease;
  ccfg.decision.ramp_factor = ramp_factor;
  AutonomicController controller(pool, trackers, &default_clock(), ccfg);
  bus.add_listener(controller.as_listener());
  if (init != nullptr) init_named_estimates(reg, *ws.skeleton.node(), *init);
  Engine engine(pool, bus);
  TweetDoc doc{tweets, 0, tweets->size(), 0, 1.0};

  ScenarioResult res;
  res.goal = cfg.wct_goal * cfg.timings.scale;
  const TimePoint t0 = default_clock().now();
  controller.arm(res.goal, cfg.max_lp);
  const CountsPart out = ws.skeleton.input(doc, engine).get();
  res.wct = default_clock().now() - t0;
  controller.disarm();
  res.goal_met = res.wct <= res.goal;
  res.peak_busy = pool.gauge().peak();
  res.final_lp = pool.target_lp();
  res.actions = controller.actions();
  res.counts = out.counts;
  res.expected = count_tokens(doc);
  res.final_estimates = export_named_estimates(reg, *ws.skeleton.node());
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioConfig cfg;
  cfg.wct_goal = 10.5;
  cfg.timings.scale = argc > 1 ? std::atof(argv[1]) : 0.08;
  cfg.corpus.num_tweets = 2000;

  // Warm-up for initialization so all variants adapt from the first split.
  const ScenarioResult warm = run_with(cfg, true, 2, nullptr);

  std::cout << "=== Ablation: LP decrease / ramp policy (goal 10.5, scale "
            << cfg.timings.scale << ", initialized) ===\n\n";
  Table table({"policy", "wct_s", "goal_met", "peak_busy", "final_lp", "decreases"});
  struct Variant {
    const char* name;
    bool allow_decrease;
    int ramp;
  };
  for (const Variant v : {Variant{"halving (paper)", true, 2},
                          Variant{"never-decrease", false, 2},
                          Variant{"jump-to-optimal", true, 1}}) {
    const ScenarioResult res =
        run_with(cfg, v.allow_decrease, v.ramp, &warm.final_estimates);
    int decreases = 0;
    for (const auto& a : res.actions) decreases += a.to_lp < a.from_lp;
    table.add_row({v.name, fmt(res.wct, 3), res.goal_met ? "yes" : "no",
                   std::to_string(res.peak_busy), std::to_string(res.final_lp),
                   std::to_string(decreases)});
    if (res.counts != res.expected) {
      std::cerr << "result mismatch for " << v.name << "\n";
      return 1;
    }
  }
  std::cout << table.to_text();
  std::cout << "\n(paper: halving keeps threads longer than strictly needed, "
               "finishing early rather than riskily trimming)\n";
  return 0;
}
