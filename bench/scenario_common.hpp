#pragma once
// Shared harness for the Figure 5/6/7 autonomic-execution scenarios.
//
// Each figure in the paper plots "Number of Active Threads" against "Wall
// Clock Time (ms)" for one autonomic run of the §5 tweet-count workload.
// These binaries print the same series as CSV plus the shape summary that
// EXPERIMENTS.md compares against the paper. `--scale X` reruns at another
// time scale (1.0 = the paper's full 12.5 s profile); default 0.15.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/zipf.hpp"
#include "workload/wordcount.hpp"

namespace askel::benchharness {

/// Per-tenant traffic weights from a Zipf popularity distribution: tenant k
/// (rank k) gets weight proportional to 1/(k+1)^skew, normalised so the mean
/// weight is 1.0 (total traffic is preserved, only its spread changes).
/// skew <= 0 returns all-ones — the uniform traffic the contended benches
/// used before this knob existed. Deterministic: built from the exact pmf,
/// no sampling, so bench JSON is reproducible run to run.
inline std::vector<double> tenant_popularity_weights(std::size_t tenants,
                                                     double skew) {
  std::vector<double> w(tenants, 1.0);
  if (skew <= 0.0 || tenants < 2) return w;
  const ZipfDistribution dist(tenants, skew);
  for (std::size_t k = 0; k < tenants; ++k)
    w[k] = dist.pmf(k) * static_cast<double>(tenants);
  return w;
}

inline ScenarioConfig parse_config(int argc, char** argv, double goal) {
  ScenarioConfig cfg;
  cfg.wct_goal = goal;
  cfg.timings.scale = 0.15;
  cfg.corpus.num_tweets = 5000;
  cfg.max_lp = 24;
  for (int k = 1; k + 1 < argc; ++k) {
    if (std::strcmp(argv[k], "--scale") == 0) cfg.timings.scale = std::atof(argv[k + 1]);
    if (std::strcmp(argv[k], "--tweets") == 0)
      cfg.corpus.num_tweets = static_cast<std::size_t>(std::atol(argv[k + 1]));
    if (std::strcmp(argv[k], "--max-lp") == 0) cfg.max_lp = std::atoi(argv[k + 1]);
    if (std::strcmp(argv[k], "--backend") == 0)
      cfg.backend = std::strcmp(argv[k + 1], "subprocess") == 0
                        ? ScenarioBackend::kSubprocess
                        : ScenarioBackend::kThread;
  }
  return cfg;
}

/// Time-weighted mean of the busy-thread step function over the whole run.
inline double mean_busy(const ScenarioResult& r) {
  if (r.busy_series.empty() || r.wct <= 0.0) return 0.0;
  double acc = 0.0, prev_t = 0.0, cur = 0.0;
  for (const Sample& s : r.busy_series) {
    acc += cur * (s.t - prev_t);
    prev_t = s.t;
    cur = s.value;
  }
  acc += cur * (r.wct - prev_t);
  return acc / r.wct;
}

inline void print_scenario(const char* title, const ScenarioConfig& cfg,
                           const ScenarioResult& res,
                           const char* paper_summary) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "scale " << cfg.timings.scale << "  goal " << fmt(res.goal, 3)
            << " s (" << cfg.wct_goal << " paper-seconds)  sequential "
            << fmt(cfg.timings.sequential_wct(), 3) << " s  max LP " << cfg.max_lp
            << "  backend "
            << (cfg.backend == ScenarioBackend::kSubprocess ? "subprocess"
                                                            : "thread")
            << "\n";
  std::cout << "paper: " << paper_summary << "\n\n";

  std::cout << "active-thread series (wct_ms, threads):\n";
  std::cout << "wct_ms,threads\n";
  for (const Sample& s : res.busy_series)
    std::cout << fmt(s.t * 1000.0, 1) << ',' << s.value << '\n';

  std::cout << "\nLP decisions:\n";
  for (const auto& a : res.actions) {
    std::cout << "  t=" << fmt(a.t * 1000.0, 1) << "ms  LP " << a.from_lp << " -> "
              << a.to_lp << "  (" << to_string(a.reason)
              << ", be_wct=" << fmt(a.best_effort_wct, 3)
              << ", cur_wct=" << fmt(a.current_lp_wct, 3) << ")\n";
  }
  if (res.actions.empty()) std::cout << "  (none)\n";

  std::cout << "\nsummary: wct=" << fmt(res.wct, 3) << " s  goal "
            << (res.goal_met ? "MET" : "MISSED") << "  peak_busy=" << res.peak_busy
            << "  mean_busy=" << fmt(mean_busy(res), 2)
            << "  final_lp=" << res.final_lp
            << "  evaluations=" << res.controller_evaluations
            << "  result_ok=" << (res.counts == res.expected ? "yes" : "NO")
            << "\n";
}

}  // namespace askel::benchharness
