#!/usr/bin/env python3
"""Bench regression gate: diff a fresh bench JSON against the checked-in
baseline and fail on a >25% regression of the snapshot / injection metrics.

Usage: bench/check_regression.py BASELINE.json CURRENT.json [--tolerance 0.25]

The compared quantities are dimensionless within-run ratios, not absolute
ns/ops numbers: CI runners and dev boxes differ in clock speed by far more
than any real regression, but (for example) "incremental snapshot with one
dirty shard vs full rebuild on the same machine in the same run" is
machine-independent. A metric missing from either file (e.g. micro_bench
unavailable) is reported and skipped, not failed — the bench-smoke job's
purpose is catching real regressions, not flaking on environment gaps.
"""

import argparse
import json
import sys


def get(d, *path):
    for p in path:
        if d is None:
            return None
        if isinstance(p, int):
            d = d[p] if isinstance(d, list) and len(d) > p else None
        else:
            d = d.get(p) if isinstance(d, dict) else None
    return d


def num(x):
    """A JSON leaf is only usable as a metric if it is a real number.
    Strings, nulls, objects and booleans (json's `true` IS a Python int!)
    all collapse to None so the caller skips instead of raising TypeError
    in a comparison."""
    return x if isinstance(x, (int, float)) and not isinstance(x, bool) else None


def ratio(a, b):
    a, b = num(a), num(b)
    if a is None or b is None or b == 0:
        return None
    return a / b


def snapshot_incremental(d):
    """One dirty shard of 128 muscles vs all shards dirty. Lower is better."""
    return ratio(get(d, "estimate_snapshot_ns", "dirty_128"),
                 get(d, "estimate_snapshot_ns", "dirty_all_128"))


def snapshot_clean(d):
    """Clean (cached) snapshot vs the one-dirty-shard rebuild. Lower is better."""
    return ratio(get(d, "estimate_snapshot_ns", "clean_128"),
                 get(d, "estimate_snapshot_ns", "dirty_128"))


def lease_batch_speedup(d):
    """Batched (K=16) remote bracket throughput vs K=1. Higher is better."""
    rows = get(d, "transport", "lease_batching")
    if not isinstance(rows, list):
        return None  # section absent or malformed (e.g. an error object)
    for row in rows:
        if isinstance(row, dict) and row.get("lease_batch") == 16:
            return num(row.get("speedup_vs_k1"))
    return None


def tcp_batching_speedup(d):
    """TCP-loopback bracket throughput at lease_batch 16 vs 1 (PR 10).
    The TCP twin of lease_batching_k16_speedup: a within-run ratio on the
    same socket, so machine speed cancels. Higher is better."""
    return ratio(get(d, "transport", "tcp", "tasks_per_sec_k16"),
                 get(d, "transport", "tcp", "tasks_per_sec_k1"))


def inject_contended(d):
    """4-producer contended injection vs single-submitter drain. Higher is better."""
    return ratio(get(d, "pool_tasks_per_sec", "inject_contended_4"),
                 get(d, "pool_tasks_per_sec", "submit_drain_lp2"))


def arbitration_flatness(d):
    """Per-arbitration latency with a 100x larger cold registry vs the same
    armed set alone (PR 7 active-set index). Already a within-run ratio;
    ~1.0 when arbitration is flat in registrations. Lower is better."""
    return get(d, "coordinator_scale", "arbitration_flatness_ratio")


def slo_attainment_ratio(d):
    """SLO tenant's p99 attainment under the coordinator vs the FIFO
    baseline on the same seeded stream (PR 9 service scenario). A
    within-run A/B ratio, so machine speed cancels; > 1 means tail-driven
    grants + weighted dispatch beat raw capacity. Higher is better."""
    return get(d, "service", "attainment_ratio")


# (name, extractor, higher_is_better, tolerance_override)
# tolerance_override (None = use --tolerance): the CI gate compares a
# FULL-mode checked-in baseline against a --smoke current run; most
# metrics are within-run ratios that survive that, but the smoke service
# scenario replays a structurally shorter/slower stream (1.5 s @ 80 Hz vs
# 4 s @ 150 Hz), which alone shifts the attainment A/B by ~25% — the PR 9
# gate passed with a 0.2% margin. 0.5 keeps real breakage (the ratio
# collapsing toward 1.0 = "no better than FIFO") failing loudly without
# flaking on the known full-vs-smoke offset.
METRICS = [
    ("snapshot_incremental_vs_full", snapshot_incremental, False, None),
    ("snapshot_clean_vs_dirty", snapshot_clean, False, None),
    ("lease_batching_k16_speedup", lease_batch_speedup, True, None),
    ("tcp_batching_k16_speedup", tcp_batching_speedup, True, None),
    ("inject_contended_vs_single", inject_contended, True, None),
    ("arbitration_flatness_ratio", arbitration_flatness, False, None),
    ("slo_attainment_ratio", slo_attainment_ratio, True, 0.5),
]


def load_json(path, role):
    """Read a bench JSON with an actionable message instead of a traceback:
    a missing baseline usually means the PR renamed BENCH_PR<N>.json without
    updating the CI gate (or forgot to check the new baseline in)."""
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(f"error: {role} file '{path}' not found.\n"
                 f"Hint: the {role} path comes from the CI bench gate; when a "
                 "PR moves to a new BENCH_PR<N>.json, check the new baseline "
                 "in and point the workflow at it.")
    except json.JSONDecodeError as e:
        sys.exit(f"error: {role} file '{path}' is not valid JSON: {e}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional regression (default 0.25)")
    args = ap.parse_args()

    base = load_json(args.baseline, "baseline")
    cur = load_json(args.current, "current")

    failures = []
    compared = 0
    for name, extract, higher_better, tol_override in METRICS:
        # Extractors are defensive (get()/ratio()/num() absorb missing
        # sections and wrong-typed leaves), but a future bench-JSON shape
        # change must surface as a named metric error, not a traceback.
        try:
            b, c = num(extract(base)), num(extract(cur))
        except Exception as e:  # pragma: no cover - belt and braces
            sys.exit(f"error: metric '{name}' could not be read "
                     f"({type(e).__name__}: {e}).\n"
                     "Hint: the bench JSON layout changed; update the "
                     "extractor in bench/check_regression.py to match.")
        if b is None or c is None:
            print(f"SKIP {name}: baseline={b} current={c} "
                  "(metric missing from one side — environment gap, "
                  "not a regression)")
            continue
        if b <= 0:
            print(f"SKIP {name}: baseline={b} is not positive — a zero "
                  "baseline has no meaningful 'percent change'; re-generate "
                  "the checked-in baseline on a working machine")
            continue
        compared += 1
        tolerance = args.tolerance if tol_override is None else tol_override
        change = (c - b) / b
        if higher_better:
            regressed = change < -tolerance
        else:
            regressed = change > tolerance
        verdict = "FAIL" if regressed else "ok"
        print(f"{verdict:4} {name}: baseline={b:.4f} current={c:.4f} "
              f"change={change:+.1%} (tolerance ±{tolerance:.0%}, "
              f"{'higher' if higher_better else 'lower'} is better)")
        if regressed:
            failures.append(name)

    if failures:
        print(f"\nregressions beyond tolerance: {', '.join(failures)}")
        return 1
    if compared == 0:
        print("\nerror: no metric was comparable between baseline and "
              "current — the files do not overlap on any tracked quantity "
              "(wrong baseline for this PR?)")
        return 1
    print(f"\nno regressions beyond tolerance ({compared} metrics compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
