#!/usr/bin/env python3
"""Bench regression gate: diff a fresh bench JSON against the checked-in
baseline and fail on a >25% regression of the snapshot / injection metrics.

Usage: bench/check_regression.py BASELINE.json CURRENT.json [--tolerance 0.25]

The compared quantities are dimensionless within-run ratios, not absolute
ns/ops numbers: CI runners and dev boxes differ in clock speed by far more
than any real regression, but (for example) "incremental snapshot with one
dirty shard vs full rebuild on the same machine in the same run" is
machine-independent. A metric missing from either file (e.g. micro_bench
unavailable) is reported and skipped, not failed — the bench-smoke job's
purpose is catching real regressions, not flaking on environment gaps.
"""

import argparse
import json
import sys


def get(d, *path):
    for p in path:
        if d is None:
            return None
        if isinstance(p, int):
            d = d[p] if isinstance(d, list) and len(d) > p else None
        else:
            d = d.get(p) if isinstance(d, dict) else None
    return d


def ratio(num, den):
    if num is None or den is None or not den:
        return None
    return num / den


def snapshot_incremental(d):
    """One dirty shard of 128 muscles vs all shards dirty. Lower is better."""
    return ratio(get(d, "estimate_snapshot_ns", "dirty_128"),
                 get(d, "estimate_snapshot_ns", "dirty_all_128"))


def snapshot_clean(d):
    """Clean (cached) snapshot vs the one-dirty-shard rebuild. Lower is better."""
    return ratio(get(d, "estimate_snapshot_ns", "clean_128"),
                 get(d, "estimate_snapshot_ns", "dirty_128"))


def lease_batch_speedup(d):
    """Batched (K=16) remote bracket throughput vs K=1. Higher is better."""
    for row in get(d, "transport", "lease_batching") or []:
        if row.get("lease_batch") == 16:
            return row.get("speedup_vs_k1")
    return None


def inject_contended(d):
    """4-producer contended injection vs single-submitter drain. Higher is better."""
    return ratio(get(d, "pool_tasks_per_sec", "inject_contended_4"),
                 get(d, "pool_tasks_per_sec", "submit_drain_lp2"))


# (name, extractor, higher_is_better)
METRICS = [
    ("snapshot_incremental_vs_full", snapshot_incremental, False),
    ("snapshot_clean_vs_dirty", snapshot_clean, False),
    ("lease_batching_k16_speedup", lease_batch_speedup, True),
    ("inject_contended_vs_single", inject_contended, True),
]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional regression (default 0.25)")
    args = ap.parse_args()

    base = json.load(open(args.baseline))
    cur = json.load(open(args.current))

    failures = []
    for name, extract, higher_better in METRICS:
        b, c = extract(base), extract(cur)
        if b is None or c is None or b <= 0:
            print(f"SKIP {name}: baseline={b} current={c}")
            continue
        change = (c - b) / b
        if higher_better:
            regressed = change < -args.tolerance
        else:
            regressed = change > args.tolerance
        verdict = "FAIL" if regressed else "ok"
        print(f"{verdict:4} {name}: baseline={b:.4f} current={c:.4f} "
              f"change={change:+.1%} (tolerance ±{args.tolerance:.0%}, "
              f"{'higher' if higher_better else 'lower'} is better)")
        if regressed:
            failures.append(name)

    if failures:
        print(f"\nregressions beyond tolerance: {', '.join(failures)}")
        return 1
    print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
