// Figure 6: "Goal with initialization" — same 9.5 s goal, but t(m) and |m|
// are initialized with the final values of a previous execution.
//
// Paper shape: the controller reacts already at 6.4 s (the end of the first
// split — no need to wait for a merge), peaks at 19 threads at 7.6 s, and
// finishes at 8.4 s: earlier than scenario 1, and 1.1 s before the goal
// because the LP decrease path is deliberately slow.

#include "scenario_common.hpp"

using namespace askel;

int main(int argc, char** argv) {
  ScenarioConfig cfg = benchharness::parse_config(argc, argv, /*goal=*/9.5);

  // Previous execution (scenario 1) provides the initialization values.
  const ScenarioResult warmup = run_wordcount_scenario(cfg);
  const ScenarioResult res = run_wordcount_scenario(cfg, &warmup.final_estimates);

  benchharness::print_scenario(
      "Figure 6: Goal (9.5 s) with initialization", cfg, res,
      "adapts at 6.4 s (end of first split), peak 19 threads, ends 8.4 s "
      "(1.1 s early: slow decrease)");

  // Shape checks: the initialized run adapts earlier than the cold run and
  // no later than just after the outer split; it finishes no later.
  const bool earlier =
      !res.actions.empty() && !warmup.actions.empty() &&
      res.actions.front().t < warmup.actions.front().t;
  const bool at_split_end =
      !res.actions.empty() &&
      res.actions.front().t < cfg.timings.scaled_outer_split() * 1.5;
  const bool faster = res.wct <= warmup.wct * 1.1;
  const bool ok = earlier && at_split_end && faster && res.counts == res.expected;
  std::cout << "cold-run first adaptation   : "
            << fmt(warmup.actions.empty() ? -1 : warmup.actions.front().t * 1000, 1)
            << " ms, wct " << fmt(warmup.wct, 3) << " s\n";
  std::cout << (ok ? "[SHAPE OK]\n" : "[SHAPE MISMATCH]\n");
  return ok ? 0 : 1;
}
