// Figure 1 harness: regenerates the paper's Activity Dependency Graph table
// for map(fs, map(fs, seq(fe), fm), fm) with t(fs)=10, t(fe)=15, t(fm)=5,
// |fs|=3, executed at LP=2 and observed at WCT 70.
//
// Paper reference values (Figure 1):
//   merge2 estimated 70..75 (both strategies),  split3 running 65..75,
//   map3 executes: best-effort 3×[75,90], limited-LP(2) [75,90],[75,90],
//   [90,105]; merge3 90..95 / 105..110; outer merge 95..100 / 110..115.
//   Best-effort WCT 100; limited-LP(2) WCT 115.

#include <iostream>

#include "adg/best_effort.hpp"
#include "adg/limited_lp.hpp"
#include "adg/timeline.hpp"
#include "util/csv.hpp"
#include "workload/paper_example.hpp"

using namespace askel;

int main() {
  PaperExampleReplay replay;
  replay.replay_until(PaperExampleReplay::kObservationTime);
  const AdgSnapshot g = replay.snapshot(PaperExampleReplay::kObservationTime);

  const Schedule be = best_effort(g);
  const Schedule lp2 = limited_lp(g, 2);

  std::cout << "=== Figure 1: Activity Dependency Graph at WCT "
            << PaperExampleReplay::kObservationTime << " (LP=2) ===\n";
  std::cout << "estimates: t(fs)=" << *replay.registry().t(replay.skel().fs_id)
            << " t(fe)=" << *replay.registry().t(replay.skel().fe_id)
            << " t(fm)=" << *replay.registry().t(replay.skel().fm_id)
            << " |fs|=" << *replay.registry().cardinality(replay.skel().fs_id)
            << "\n\n";

  Table table({"act", "muscle", "state", "best-effort ti", "best-effort tf",
               "limited(2) ti", "limited(2) tf", "preds"});
  for (const Activity& a : g.activities) {
    std::string preds;
    for (const int p : a.preds) preds += (preds.empty() ? "" : ",") + std::to_string(p);
    table.add_row({std::to_string(a.id), a.label, to_string(a.state),
                   fmt(be.entries[a.id].start, 0), fmt(be.entries[a.id].end, 0),
                   fmt(lp2.entries[a.id].start, 0), fmt(lp2.entries[a.id].end, 0),
                   preds});
  }
  std::cout << table.to_text() << "\n";

  std::cout << "best-effort WCT  = " << be.wct << "   (paper: 100)\n";
  std::cout << "limited-LP(2) WCT = " << lp2.wct << "  (paper: 115)\n";
  std::cout << "optimal LP        = " << optimal_lp(g) << "    (paper: 3)\n";

  const bool ok = be.wct == 100.0 && lp2.wct == 115.0 && optimal_lp(g) == 3;
  std::cout << (ok ? "\n[REPRODUCED]\n" : "\n[MISMATCH]\n");
  return ok ? 0 : 1;
}
