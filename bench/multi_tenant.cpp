// Multi-tenant benchmark: K=4 concurrent wordcount skeletons — each with its
// own controller, goal and arrival time — sharing one pool through the
// LpBudgetCoordinator (budget 8 of a 16-thread pool).
//
// Tenants 1-3 have goals feasible at fair-share LP (budget/K = 2); tenant 4's
// goal is only reachable with more than its fair share, so it exercises the
// deadline-pressure arbitration. Emits one JSON object on stdout (consumed by
// bench/run_bench.sh into BENCH_PR<N>.json) and enforces:
//   * sum of granted LP never exceeds the budget (always),
//   * every fair-share-feasible tenant meets its goal (skipped in --smoke,
//     which runs tiny inputs and makes no timing assertions).
//
// Usage: multi_tenant [--smoke] [--scale X] [--budget N]

#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "autonomic/coordinator.hpp"
#include "util/csv.hpp"
#include "workload/wordcount.hpp"

using namespace askel;

namespace {

struct TenantSpec {
  double goal = 0.0;  // paper-scale seconds
  bool feasible_at_fair_share = false;
};

/// Graham-bound WCT (paper-scale seconds) of the wordcount profile at a fixed
/// LP — the analytic yardstick for "feasible at fair-share LP". Structure:
/// serial outer split, then outer_chunks independent chains (inner split ->
/// inner_chunks executes -> inner merge) whose makespan on `lp` workers is at
/// least max(total_work / lp, critical_path), then the outer merge. Feasible
/// goals carry >= 25% slack over this bound to absorb the list-scheduling gap.
double wct_at_lp(const PaperTimings& t, int lp) {
  const double chunk_work =
      t.inner_split + t.inner_chunks * t.execute + t.inner_merge;
  const double total_work = t.outer_chunks * chunk_work;
  const double critical_path = t.inner_split + t.execute + t.inner_merge;
  const double middle = std::max(total_work / lp, critical_path);
  return t.outer_split + middle + t.outer_merge;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double scale = 0.05;
  int budget = 8;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[k], "--scale") == 0 && k + 1 < argc) {
      scale = std::atof(argv[++k]);
    } else if (std::strcmp(argv[k], "--budget") == 0 && k + 1 < argc) {
      budget = std::atoi(argv[++k]);
    }
  }
  if (scale <= 0.0) scale = 0.05;   // atof garbage => defaults, not div-by-0
  if (budget < 1) budget = 8;       // atoi garbage => default, not a 0 cap
  if (smoke) scale = std::min(scale, 0.012);

  PaperTimings timings;
  timings.scale = scale;
  constexpr int kTenants = 4;
  const int fair_share = std::max(1, budget / kTenants);
  const double fair_wct_paper = wct_at_lp(timings, fair_share);

  // Goals in paper-scale seconds. 1-3 clear the fair-share bound with >=25%
  // slack; tenant 4 is deliberately under it (needs extra LP => pressure).
  std::vector<TenantSpec> specs(kTenants);
  specs[0] = TenantSpec{fair_wct_paper * 1.45, true};
  specs[1] = TenantSpec{fair_wct_paper * 1.35, true};
  specs[2] = TenantSpec{fair_wct_paper * 1.25, true};
  specs[3] = TenantSpec{fair_wct_paper * 0.85, false};

  ResizableThreadPool pool(1, 16);
  LpBudgetCoordinator coord(pool, budget);

  std::vector<ScenarioResult> results(kTenants);
  std::vector<std::thread> runners;
  const double stagger = 0.75 * scale;  // arrival spacing, seconds
  for (int k = 0; k < kTenants; ++k) {
    runners.emplace_back([&, k] {
      std::this_thread::sleep_for(std::chrono::duration<double>(stagger * k));
      ScenarioConfig cfg;
      cfg.timings = timings;
      cfg.corpus.num_tweets = smoke ? 200 : 800;
      cfg.wct_goal = specs[static_cast<std::size_t>(k)].goal;
      cfg.max_lp = 16;
      cfg.shared_pool = &pool;
      cfg.coordinator = &coord;
      results[static_cast<std::size_t>(k)] = run_wordcount_scenario(cfg);
    });
  }
  for (std::thread& t : runners) t.join();

  const int peak_total = coord.peak_total_granted();
  const bool budget_held = peak_total <= budget;
  bool correct = true, feasible_met = true;
  for (int k = 0; k < kTenants; ++k) {
    const ScenarioResult& r = results[static_cast<std::size_t>(k)];
    correct = correct && r.counts == r.expected;
    if (specs[static_cast<std::size_t>(k)].feasible_at_fair_share) {
      feasible_met = feasible_met && r.goal_met;
    }
  }

  std::cout << "{\n";
  std::cout << "  \"tenants\": " << kTenants << ",\n";
  std::cout << "  \"budget\": " << budget << ",\n";
  std::cout << "  \"fair_share_lp\": " << fair_share << ",\n";
  std::cout << "  \"fair_share_wct_paper_s\": " << fmt(fair_wct_paper, 3) << ",\n";
  std::cout << "  \"scale\": " << fmt(scale, 4) << ",\n";
  std::cout << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  std::cout << "  \"peak_total_granted\": " << peak_total << ",\n";
  std::cout << "  \"budget_held\": " << (budget_held ? "true" : "false") << ",\n";
  std::cout << "  \"results_correct\": " << (correct ? "true" : "false") << ",\n";
  std::cout << "  \"feasible_goals_met\": " << (feasible_met ? "true" : "false")
            << ",\n";
  std::cout << "  \"per_tenant\": [\n";
  for (int k = 0; k < kTenants; ++k) {
    const ScenarioResult& r = results[static_cast<std::size_t>(k)];
    const TenantSpec& s = specs[static_cast<std::size_t>(k)];
    std::cout << "    {\"goal_s\": " << fmt(r.goal, 3)
              << ", \"wct_s\": " << fmt(r.wct, 3)
              << ", \"goal_met\": " << (r.goal_met ? "true" : "false")
              << ", \"feasible_at_fair_share\": "
              << (s.feasible_at_fair_share ? "true" : "false")
              << ", \"evaluations\": " << r.controller_evaluations << "}"
              << (k + 1 < kTenants ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n";

  if (!budget_held || !correct) return 1;
  if (!smoke && !feasible_met) return 1;
  return 0;
}
