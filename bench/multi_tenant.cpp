// Multi-tenant benchmark: concurrent wordcount skeletons sharing one pool
// through the LpBudgetCoordinator, under a selectable arbitration policy.
//
// Scenarios:
//  * staggered (default): K=4 tenants with staggered arrivals and goals
//    (budget 8 of a 16-thread pool); tenants 1-3 have goals feasible at
//    fair-share LP, tenant 4 deliberately needs more than its fair share.
//    Asserts the budget invariant, result correctness and (outside --smoke)
//    that every fair-share-feasible goal is met.
//  * aggressor: one victim wordcount run (SLA weight 3) against an
//    aggressor tenant that lies about its pressure and floods tagged
//    submits. Runs the SAME setup twice — weighted dispatch + weighted
//    policy vs the PR 2 baseline (FIFO dispatch + pressure policy) — and
//    reports both, so the JSON shows whether grants are real isolation.
//    Outside --smoke, asserts the isolated victim beats the baseline one.
//
// Emits one JSON object on stdout (consumed by bench/run_bench.sh into
// BENCH_PR<N>.json).
//
// Usage: multi_tenant [--smoke] [--scale X] [--budget N]
//                     [--policy pressure|weighted] [--scenario staggered|aggressor]
//                     [--zipf-skew S]
//
// --zipf-skew S > 0 skews per-tenant traffic volume by Zipf popularity rank
// (tenant 0 hottest) instead of the uniform split; 0 (default) keeps the
// historical uniform traffic. See benchharness::tenant_popularity_weights.

#include <atomic>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "autonomic/coordinator.hpp"
#include "scenario_common.hpp"
#include "util/csv.hpp"
#include "workload/wordcount.hpp"

using namespace askel;

namespace {

struct TenantSpec {
  double goal = 0.0;  // paper-scale seconds
  bool feasible_at_fair_share = false;
};

/// Graham-bound WCT (paper-scale seconds) of the wordcount profile at a fixed
/// LP — the analytic yardstick for "feasible at fair-share LP". Structure:
/// serial outer split, then outer_chunks independent chains (inner split ->
/// inner_chunks executes -> inner merge) whose makespan on `lp` workers is at
/// least max(total_work / lp, critical_path), then the outer merge. Feasible
/// goals carry >= 25% slack over this bound to absorb the list-scheduling gap.
double wct_at_lp(const PaperTimings& t, int lp) {
  const double chunk_work =
      t.inner_split + t.inner_chunks * t.execute + t.inner_merge;
  const double total_work = t.outer_chunks * chunk_work;
  const double critical_path = t.inner_split + t.execute + t.inner_merge;
  const double middle = std::max(total_work / lp, critical_path);
  return t.outer_split + middle + t.outer_merge;
}

std::unique_ptr<ArbitrationPolicy> make_policy(const std::string& name) {
  if (name == "weighted") return std::make_unique<WeightedSharePolicy>();
  return std::make_unique<DeadlinePressurePolicy>();
}

// ------------------------------------------------------------- staggered --

int run_staggered(bool smoke, double scale, int budget,
                  const std::string& policy, double zipf_skew) {
  PaperTimings timings;
  timings.scale = scale;
  constexpr int kTenants = 4;
  const int fair_share = std::max(1, budget / kTenants);
  const double fair_wct_paper = wct_at_lp(timings, fair_share);
  // Tenant-popularity skew: hot tenants carry proportionally more corpus
  // (traffic volume); the simulated muscle timings — and therefore the
  // goal-feasibility bound above — are unchanged.
  const std::vector<double> popularity =
      benchharness::tenant_popularity_weights(kTenants, zipf_skew);

  // Goals in paper-scale seconds. 1-3 clear the fair-share bound with >=25%
  // slack; tenant 4 is deliberately under it (needs extra LP => pressure).
  std::vector<TenantSpec> specs(kTenants);
  specs[0] = TenantSpec{fair_wct_paper * 1.45, true};
  specs[1] = TenantSpec{fair_wct_paper * 1.35, true};
  specs[2] = TenantSpec{fair_wct_paper * 1.25, true};
  specs[3] = TenantSpec{fair_wct_paper * 0.85, false};

  ResizableThreadPool pool(1, 16);
  LpBudgetCoordinator coord(pool, budget);
  coord.set_policy(make_policy(policy));

  std::vector<ScenarioResult> results(kTenants);
  std::vector<std::thread> runners;
  const double stagger = 0.75 * scale;  // arrival spacing, seconds
  for (int k = 0; k < kTenants; ++k) {
    runners.emplace_back([&, k] {
      std::this_thread::sleep_for(std::chrono::duration<double>(stagger * k));
      ScenarioConfig cfg;
      cfg.timings = timings;
      const double base_tweets = smoke ? 200.0 : 800.0;
      cfg.corpus.num_tweets = static_cast<std::size_t>(std::max(
          1.0, base_tweets * popularity[static_cast<std::size_t>(k)]));
      cfg.wct_goal = specs[static_cast<std::size_t>(k)].goal;
      cfg.max_lp = 16;
      cfg.shared_pool = &pool;
      cfg.coordinator = &coord;
      results[static_cast<std::size_t>(k)] = run_wordcount_scenario(cfg);
    });
  }
  for (std::thread& t : runners) t.join();

  const int peak_total = coord.peak_total_granted();
  const bool budget_held = peak_total <= budget;
  bool correct = true, feasible_met = true;
  for (int k = 0; k < kTenants; ++k) {
    const ScenarioResult& r = results[static_cast<std::size_t>(k)];
    correct = correct && r.counts == r.expected;
    if (specs[static_cast<std::size_t>(k)].feasible_at_fair_share) {
      feasible_met = feasible_met && r.goal_met;
    }
  }

  std::cout << "{\n";
  std::cout << "  \"scenario\": \"staggered\",\n";
  std::cout << "  \"policy\": \"" << coord.policy_name() << "\",\n";
  std::cout << "  \"tenants\": " << kTenants << ",\n";
  std::cout << "  \"budget\": " << budget << ",\n";
  std::cout << "  \"fair_share_lp\": " << fair_share << ",\n";
  std::cout << "  \"fair_share_wct_paper_s\": " << fmt(fair_wct_paper, 3) << ",\n";
  std::cout << "  \"scale\": " << fmt(scale, 4) << ",\n";
  std::cout << "  \"zipf_skew\": " << fmt(zipf_skew, 2) << ",\n";
  std::cout << "  \"smoke\": " << json_bool(smoke) << ",\n";
  std::cout << "  \"peak_total_granted\": " << peak_total << ",\n";
  std::cout << "  \"budget_held\": " << json_bool(budget_held) << ",\n";
  std::cout << "  \"results_correct\": " << json_bool(correct) << ",\n";
  std::cout << "  \"feasible_goals_met\": " << json_bool(feasible_met) << ",\n";
  std::cout << "  \"per_tenant\": [\n";
  for (int k = 0; k < kTenants; ++k) {
    const ScenarioResult& r = results[static_cast<std::size_t>(k)];
    const TenantSpec& s = specs[static_cast<std::size_t>(k)];
    std::cout << "    {\"goal_s\": " << fmt(r.goal, 3)
              << ", \"wct_s\": " << fmt(r.wct, 3)
              << ", \"popularity\": "
              << fmt(popularity[static_cast<std::size_t>(k)], 3)
              << ", \"goal_met\": " << json_bool(r.goal_met)
              << ", \"feasible_at_fair_share\": "
              << json_bool(s.feasible_at_fair_share)
              << ", \"evaluations\": " << r.controller_evaluations << "}"
              << (k + 1 < kTenants ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n";

  if (!budget_held || !correct) return 1;
  if (!smoke && !feasible_met) return 1;
  return 0;
}

// ------------------------------------------------------------- aggressor --

struct AggressorOutcome {
  double victim_goal = 0.0;
  double victim_wct = 0.0;
  bool victim_goal_met = false;
  bool correct = false;
  bool budget_held = false;
  long aggressor_tasks = 0;
  int victim_peak_grant = 0;
};

/// One victim wordcount run against a flooding aggressor. `isolated` selects
/// weighted dispatch + weighted arbitration; otherwise the PR 2 baseline
/// (FIFO dispatch + deadline-pressure arbitration, where the aggressor's
/// lying pressure and flood go unpunished).
AggressorOutcome run_aggressor_once(bool smoke, double scale, int budget,
                                    bool isolated) {
  PaperTimings timings;
  timings.scale = scale;

  ResizableThreadPool pool(1, 16);
  if (!isolated) pool.set_tenant_dispatch(TenantDispatch::kFifo);
  LpBudgetCoordinator coord(pool, budget);
  coord.set_policy(make_policy(isolated ? "weighted" : "pressure"));
  coord.set_preemption_hold(0.25 * scale);  // don't thrash fresh ramps

  // The aggressor claims maximal urgency and floods tagged submits for the
  // whole run, bounded to a standing backlog so memory stays flat.
  const int aggr = coord.register_tenant("aggressor");
  coord.arm_tenant(aggr);
  coord.request(aggr, budget, /*pressure=*/25.0);  // lies about its miss
  std::atomic<bool> stop_flood{false};
  std::atomic<long> flood_done{0};
  std::atomic<int> flood_outstanding{0};
  const double flood_task_s = 0.05 * scale;  // sleep-calibrated, like muscles
  // Hard deadline on the flood: under the FIFO baseline the victim's root
  // task sits in the LIFO injection queue BEHIND the flood's ever-newer
  // tasks, and on a box with a spare core for the flooder that is a
  // livelock with no natural end (the flood only stops when the victim
  // finishes, which the flood prevents). Long enough to outlive the whole
  // victim run in the measured configurations, so the numbers are
  // unaffected; on a pathological run the baseline degrades to a huge —
  // finite — miss instead of hanging CI.
  const double victim_goal_paper =
      wct_at_lp(timings, std::max(1, budget * 3 / 4)) * 1.35;
  const double victim_goal_s = victim_goal_paper * scale;
  const auto flood_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(2.0, 10.0 * victim_goal_s)));
  std::thread flooder([&] {
    while (!stop_flood.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < flood_deadline) {
      if (flood_outstanding.load(std::memory_order_relaxed) < 512) {
        flood_outstanding.fetch_add(1, std::memory_order_relaxed);
        pool.submit(
            [&, flood_task_s] {
              simulate_work(flood_task_s);
              flood_done.fetch_add(1, std::memory_order_relaxed);
              flood_outstanding.fetch_sub(1, std::memory_order_relaxed);
            },
            aggr);
      } else {
        std::this_thread::yield();
      }
    }
  });

  // Victim: goal feasible at its weighted share (weight 3 of 4 => grant 3
  // of budget 4), with slack for the flood's dispatch latency.
  ScenarioConfig cfg;
  cfg.timings = timings;
  cfg.corpus.num_tweets = smoke ? 200 : 800;
  cfg.wct_goal = victim_goal_paper;
  cfg.max_lp = 16;
  cfg.coordinator = &coord;
  cfg.sla_weight = 3;
  const ScenarioResult r = run_wordcount_scenario(cfg);

  stop_flood.store(true, std::memory_order_release);
  flooder.join();
  const int peak_total = coord.peak_total_granted();
  int victim_peak_grant = 0;
  // The victim registered after the aggressor, so its id is the highest
  // grant history entry that is not the aggressor's.
  for (const auto& a : coord.history()) {
    if (a.tenant != aggr) victim_peak_grant = std::max(victim_peak_grant, a.to_grant);
  }
  coord.release(aggr);
  coord.unregister_tenant(aggr);
  pool.wait_idle();

  AggressorOutcome out;
  out.victim_goal = r.goal;
  out.victim_wct = r.wct;
  out.victim_goal_met = r.goal_met;
  out.correct = r.counts == r.expected;
  out.budget_held = peak_total <= budget;
  out.aggressor_tasks = flood_done.load();
  out.victim_peak_grant = victim_peak_grant;
  return out;
}

void print_aggressor_outcome(const char* key, const AggressorOutcome& o,
                             bool last) {
  std::cout << "  \"" << key << "\": {\"victim_goal_s\": " << fmt(o.victim_goal, 3)
            << ", \"victim_wct_s\": " << fmt(o.victim_wct, 3)
            << ", \"victim_goal_met\": " << json_bool(o.victim_goal_met)
            << ", \"victim_peak_grant\": " << o.victim_peak_grant
            << ", \"aggressor_tasks\": " << o.aggressor_tasks
            << ", \"budget_held\": " << json_bool(o.budget_held)
            << ", \"results_correct\": " << json_bool(o.correct) << "}"
            << (last ? "" : ",") << "\n";
}

int run_aggressor(bool smoke, double scale, int budget) {
  const AggressorOutcome isolated =
      run_aggressor_once(smoke, scale, budget, /*isolated=*/true);
  const AggressorOutcome baseline =
      run_aggressor_once(smoke, scale, budget, /*isolated=*/false);

  const bool invariants = isolated.budget_held && baseline.budget_held &&
                          isolated.correct && baseline.correct;
  const bool isolation_win = isolated.victim_wct < baseline.victim_wct;
  std::cout << "{\n";
  std::cout << "  \"scenario\": \"aggressor\",\n";
  std::cout << "  \"budget\": " << budget << ",\n";
  std::cout << "  \"scale\": " << fmt(scale, 4) << ",\n";
  std::cout << "  \"smoke\": " << json_bool(smoke) << ",\n";
  print_aggressor_outcome("weighted_isolation", isolated, false);
  print_aggressor_outcome("fifo_baseline", baseline, false);
  std::cout << "  \"victim_miss_ratio_weighted\": "
            << fmt(isolated.victim_wct / std::max(1e-9, isolated.victim_goal), 3)
            << ",\n";
  std::cout << "  \"victim_miss_ratio_fifo\": "
            << fmt(baseline.victim_wct / std::max(1e-9, baseline.victim_goal), 3)
            << ",\n";
  std::cout << "  \"isolation_win\": " << json_bool(isolation_win) << "\n";
  std::cout << "}\n";

  if (!invariants) return 1;
  // Timing assertion only outside smoke: the isolated victim must beat the
  // FIFO baseline (the flood makes the baseline dramatically worse, so the
  // comparison is robust even on a loaded 1-core CI box).
  if (!smoke && !isolation_win) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double scale = 0.05;
  double zipf_skew = 0.0;
  int budget = -1;
  std::string policy = "pressure";
  std::string scenario = "staggered";
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[k], "--scale") == 0 && k + 1 < argc) {
      scale = std::atof(argv[++k]);
    } else if (std::strcmp(argv[k], "--budget") == 0 && k + 1 < argc) {
      budget = std::atoi(argv[++k]);
    } else if (std::strcmp(argv[k], "--policy") == 0 && k + 1 < argc) {
      policy = argv[++k];
    } else if (std::strcmp(argv[k], "--scenario") == 0 && k + 1 < argc) {
      scenario = argv[++k];
    } else if (std::strcmp(argv[k], "--zipf-skew") == 0 && k + 1 < argc) {
      zipf_skew = std::atof(argv[++k]);
    }
  }
  if (scale <= 0.0) scale = 0.05;  // atof garbage => defaults, not div-by-0
  if (smoke) scale = std::min(scale, 0.012);

  if (scenario == "aggressor") {
    if (budget < 1) budget = 4;
    return run_aggressor(smoke, scale, budget);
  }
  if (budget < 1) budget = 8;
  return run_staggered(smoke, scale, budget, policy, zipf_skew);
}
