#!/usr/bin/env bash
# Perf-trajectory runner: builds Release, runs the hot-path microbenchmarks,
# the WCT-algorithm comparison and the multi-tenant coordinator scenarios, and
# distills the numbers every perf PR tracks into BENCH_PR<N>.json:
#   * EventBus dispatch ns/op (0/1/4/16 listeners, 4-thread contended),
#   * pool churn tasks/sec at LP in {1, 4, 8},
#   * EstimateRegistry snapshot cost, clean (cached) vs dirty (rebuild),
#   * multi-tenant staggered: K=4 controllers on one budget, run under BOTH
#     arbitration policies (deadline-pressure and weighted-share),
#   * multi-tenant aggressor: victim vs flooding aggressor, weighted
#     isolation vs the FIFO dispatch baseline,
#   * estimator A/B (PR 4): fig5/6/7 scenarios under each estimator family
#     member (EWMA / window mean / window median / P^2 quantile) plus the
#     deterministic bursty-stream accuracy ranking,
#   * transport/backend comparison (PR 5): real subprocess-worker join
#     latency vs the simulated provision delay, the per-task transport
#     bracket cost, and fig5 under --backend thread vs subprocess,
#   * raw-speed pass (PR 6): incremental-snapshot cost (one dirty shard vs
#     all shards dirty), the lease-batching sweep (K in {1,4,16,64}), the
#     injection-queue comparison (retired mutex+deque vs lock-free MPSC)
#     and the per-LP scaling curve. Multi-tenant staggered traffic is now
#     Zipf-skewed (--zipf-skew 1.1) instead of uniform,
#   * coordinator scale (PR 7): per-arbitration latency at 1M registered /
#     10K armed vs 10K/10K (the active-set flatness ratio, must stay <= 2x),
#     sharded-registry registration throughput, and the deterministic
#     policy-quality ranking (adaptive vs static arbitration policies),
#   * latency-SLO service (PR 9): the seeded open-loop request stream with a
#     p99 goal against a flooding aggressor, coordinated (tail-driven grants
#     + weighted dispatch) vs the FIFO baseline — per-tenant attainment
#     curves and the attainment ratio the regression gate tracks,
#   * TCP transport (PR 10): the bracket churn over a real loopback socket at
#     lease_batch 1 and 16, connect->Hello join latency and the named-muscle
#     echo round trip (rides inside <out>.transport.json's "tcp" section).
# The per-scenario raw JSONs are kept next to the output
# (<out>.pressure.json / <out>.weighted.json / <out>.aggressor.json /
# <out>.estimators.json / <out>.transport.json / <out>.scaling.json /
# <out>.service.json) so CI can upload each artifact individually.
#
# Usage: bench/run_bench.sh [--smoke] [output.json]
#   --smoke: CI smoke mode — tiny iteration counts, no timing assertions;
#            proves the bench pipeline runs and uploads an inspectable JSON.
#   default output: BENCH_PR10.json in cwd.

set -euo pipefail

smoke=0
out_json=""
for arg in "$@"; do
  case "${arg}" in
    --smoke) smoke=1 ;;
    *) out_json="${arg}" ;;
  esac
done
out_json="${out_json:-BENCH_PR10.json}"

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release \
      -DASKEL_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${build_dir}" -j"$(nproc)" --target wct_algorithms multi_tenant \
      transport_bench scaling_bench coordinator_scale_bench service_bench \
      >/dev/null

micro_ok=1
if [[ ! -x "${build_dir}/micro_bench" ]]; then
  if ! cmake --build "${build_dir}" -j"$(nproc)" --target micro_bench \
       >/dev/null 2>&1; then
    echo "google-benchmark not available: skipping micro_bench" >&2
    micro_ok=0
  fi
fi

raw_json="$(mktemp)"
mt_pressure_json="${out_json%.json}.pressure.json"
mt_weighted_json="${out_json%.json}.weighted.json"
mt_aggressor_json="${out_json%.json}.aggressor.json"
est_ab_json="${out_json%.json}.estimators.json"
transport_json="${out_json%.json}.transport.json"
scaling_json="${out_json%.json}.scaling.json"
coord_scale_json="${out_json%.json}.coordinator.json"
service_json="${out_json%.json}.service.json"
trap 'rm -f "${raw_json}"' EXIT

min_time=0.2
[[ ${smoke} -eq 1 ]] && min_time=0.01

if [[ ${micro_ok} -eq 1 ]]; then
  "${build_dir}/micro_bench" \
    --benchmark_filter='BM_EventDispatch|BM_PoolChurn|BM_PoolSubmitDrain|BM_PoolInjectDrain|BM_EstimateSnapshot' \
    --benchmark_min_time="${min_time}" \
    --benchmark_format=json > "${raw_json}"
else
  echo '{"benchmarks": [], "context": {"error": "micro_bench unavailable"}}' \
    > "${raw_json}"
fi

# Multi-tenant coordinator scenarios (budget invariant asserted always; goal
# and isolation assertions only outside --smoke). The staggered scenario runs
# under both arbitration policies for the A/B trajectory; the aggressor
# scenario compares weighted isolation against the FIFO dispatch baseline.
mt_args=()
[[ ${smoke} -eq 1 ]] && mt_args+=(--smoke)
"${build_dir}/multi_tenant" "${mt_args[@]+"${mt_args[@]}"}" \
  --policy pressure --zipf-skew 1.1 > "${mt_pressure_json}"
"${build_dir}/multi_tenant" "${mt_args[@]+"${mt_args[@]}"}" \
  --policy weighted --zipf-skew 1.1 > "${mt_weighted_json}"
"${build_dir}/multi_tenant" "${mt_args[@]+"${mt_args[@]}"}" \
  --scenario aggressor > "${mt_aggressor_json}"

# Estimator family A/B (PR 4): fig5/6/7 under each estimator + the
# deterministic stream-accuracy ranking. Smoke mode shrinks the scale.
est_args=(--estimators)
[[ ${smoke} -eq 1 ]] && est_args+=(--smoke)
"${build_dir}/wct_algorithms" "${est_args[@]}" > "${est_ab_json}"

# Transport/backend comparison (PR 5) + lease-batching sweep (PR 6):
# subprocess vs thread backend, and tasks/sec at lease_batch K in {1,4,16,64}.
tb_args=()
[[ ${smoke} -eq 1 ]] && tb_args+=(--smoke)
"${build_dir}/transport_bench" "${tb_args[@]+"${tb_args[@]}"}" \
  > "${transport_json}"

# Raw-speed scaling numbers (PR 6): injection-queue before/after and the
# per-LP scaling curve behind docs/perf.md.
sc_args=()
[[ ${smoke} -eq 1 ]] && sc_args+=(--smoke)
"${build_dir}/scaling_bench" "${sc_args[@]+"${sc_args[@]}"}" \
  > "${scaling_json}"

# Coordinator scale (PR 7): arbitration-flatness ratio (1M registered / 10K
# armed vs 10K/10K) and the deterministic policy-quality ranking. Smoke mode
# shrinks to 50K/1K and skips the wall-clock flatness assertion.
cs_args=()
[[ ${smoke} -eq 1 ]] && cs_args+=(--smoke)
"${build_dir}/coordinator_scale_bench" "${cs_args[@]+"${cs_args[@]}"}" \
  > "${coord_scale_json}"

# Latency-SLO service scenario (PR 9): the same seeded open-loop stream
# replayed coordinated vs FIFO baseline; the SLO-win assertion only fires
# outside smoke.
svc_args=()
[[ ${smoke} -eq 1 ]] && svc_args+=(--smoke)
"${build_dir}/service_bench" "${svc_args[@]+"${svc_args[@]}"}" \
  > "${service_json}"

# WCT algorithm comparison rides along for the scheduling-cost trajectory
# (skipped in smoke mode: it is the slowest piece and purely informational).
if [[ ${smoke} -eq 0 ]]; then
  "${build_dir}/wct_algorithms" > "${build_dir}/wct_algorithms.csv" || true
fi

python3 - "${raw_json}" "${mt_pressure_json}" "${mt_weighted_json}" \
  "${mt_aggressor_json}" "${out_json}" "${smoke}" "${est_ab_json}" \
  "${transport_json}" "${scaling_json}" "${coord_scale_json}" \
  "${service_json}" <<'EOF'
import json, sys

raw = json.load(open(sys.argv[1]))
mt_pressure = json.load(open(sys.argv[2]))
mt_weighted = json.load(open(sys.argv[3]))
mt_aggressor = json.load(open(sys.argv[4]))
estimator_ab = json.load(open(sys.argv[7]))
transport = json.load(open(sys.argv[8]))
scaling = json.load(open(sys.argv[9]))
coordinator = json.load(open(sys.argv[10]))
service = json.load(open(sys.argv[11]))
by_name = {b["name"]: b for b in raw.get("benchmarks", [])}

def ns(name):
    b = by_name.get(name)
    return round(b["real_time"], 2) if b else None

def items_per_sec(name):
    b = by_name.get(name)
    return round(b["items_per_second"]) if b and "items_per_second" in b else None

out = {
    "pr": 10,
    "smoke": sys.argv[6] == "1",
    "context": raw.get("context", {}),
    "event_dispatch_ns": {
        "no_listeners": ns("BM_EventDispatch_NoListeners"),
        "listeners_1": ns("BM_EventDispatch_Listeners/1"),
        "listeners_4": ns("BM_EventDispatch_Listeners/4"),
        "listeners_16": ns("BM_EventDispatch_Listeners/16"),
        "contended_4_threads": ns("BM_EventDispatch_Contended/real_time/threads:4"),
    },
    "pool_tasks_per_sec": {
        "submit_drain_lp2": items_per_sec("BM_PoolSubmitDrain"),
        "inject_contended_4": items_per_sec(
            "BM_PoolInjectDrain_Contended/real_time/threads:4"),
        "churn_lp1": items_per_sec("BM_PoolChurn/1/real_time"),
        "churn_lp4": items_per_sec("BM_PoolChurn/4/real_time"),
        "churn_lp8": items_per_sec("BM_PoolChurn/8/real_time"),
    },
    "estimate_snapshot_ns": {
        "clean_16": ns("BM_EstimateSnapshot_Clean/16"),
        "clean_128": ns("BM_EstimateSnapshot_Clean/128"),
        "clean_1024": ns("BM_EstimateSnapshot_Clean/1024"),
        "dirty_16": ns("BM_EstimateSnapshot_Dirty/16"),
        "dirty_128": ns("BM_EstimateSnapshot_Dirty/128"),
        "dirty_all_128": ns("BM_EstimateSnapshot_DirtyAll/128"),
    },
    "multi_tenant": {
        "staggered_pressure": mt_pressure,
        "staggered_weighted": mt_weighted,
        "aggressor": mt_aggressor,
    },
    "estimator_ab": estimator_ab,
    "transport": transport,
    "scaling": scaling,
    "coordinator_scale": coordinator,
    "service": service,
}
json.dump(out, open(sys.argv[5], "w"), indent=2)
print(f"wrote {sys.argv[5]}")
EOF
