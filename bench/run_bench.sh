#!/usr/bin/env bash
# Perf-trajectory runner: builds Release, runs the hot-path microbenchmarks
# and the WCT-algorithm comparison, and distills the numbers every perf PR
# tracks into BENCH_PR1.json:
#   * EventBus dispatch ns/op (0/1/4/16 listeners, 4-thread contended),
#   * pool churn tasks/sec at LP in {1, 4, 8},
#   * EstimateRegistry snapshot cost, clean (cached) vs dirty (rebuild).
#
# Usage: bench/run_bench.sh [output.json]   (default: BENCH_PR1.json in cwd)

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
out_json="${1:-BENCH_PR1.json}"
build_dir="${repo_root}/build-bench"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release \
      -DASKEL_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${build_dir}" -j"$(nproc)" --target wct_algorithms >/dev/null

if [[ ! -x "${build_dir}/micro_bench" ]]; then
  if ! cmake --build "${build_dir}" -j"$(nproc)" --target micro_bench \
       >/dev/null 2>&1; then
    echo "google-benchmark not available: skipping micro_bench" >&2
    echo '{"error": "micro_bench unavailable"}' > "${out_json}"
    exit 0
  fi
fi

raw_json="$(mktemp)"
trap 'rm -f "${raw_json}"' EXIT

"${build_dir}/micro_bench" \
  --benchmark_filter='BM_EventDispatch|BM_PoolChurn|BM_PoolSubmitDrain|BM_EstimateSnapshot' \
  --benchmark_min_time=0.2 \
  --benchmark_format=json > "${raw_json}"

# WCT algorithm comparison rides along for the scheduling-cost trajectory.
"${build_dir}/wct_algorithms" > "${build_dir}/wct_algorithms.csv" || true

python3 - "${raw_json}" "${out_json}" <<'EOF'
import json, sys

raw = json.load(open(sys.argv[1]))
by_name = {b["name"]: b for b in raw.get("benchmarks", [])}

def ns(name):
    b = by_name.get(name)
    return round(b["real_time"], 2) if b else None

def items_per_sec(name):
    b = by_name.get(name)
    return round(b["items_per_second"]) if b and "items_per_second" in b else None

out = {
    "pr": 1,
    "context": raw.get("context", {}),
    "event_dispatch_ns": {
        "no_listeners": ns("BM_EventDispatch_NoListeners"),
        "listeners_1": ns("BM_EventDispatch_Listeners/1"),
        "listeners_4": ns("BM_EventDispatch_Listeners/4"),
        "listeners_16": ns("BM_EventDispatch_Listeners/16"),
        "contended_4_threads": ns("BM_EventDispatch_Contended/real_time/threads:4"),
    },
    "pool_tasks_per_sec": {
        "submit_drain_lp2": items_per_sec("BM_PoolSubmitDrain"),
        "churn_lp1": items_per_sec("BM_PoolChurn/1/real_time"),
        "churn_lp4": items_per_sec("BM_PoolChurn/4/real_time"),
        "churn_lp8": items_per_sec("BM_PoolChurn/8/real_time"),
    },
    "estimate_snapshot_ns": {
        "clean_16": ns("BM_EstimateSnapshot_Clean/16"),
        "clean_128": ns("BM_EstimateSnapshot_Clean/128"),
        "clean_1024": ns("BM_EstimateSnapshot_Clean/1024"),
        "dirty_16": ns("BM_EstimateSnapshot_Dirty/16"),
        "dirty_128": ns("BM_EstimateSnapshot_Dirty/128"),
    },
}
json.dump(out, open(sys.argv[2], "w"), indent=2)
print(f"wrote {sys.argv[2]}")
EOF
