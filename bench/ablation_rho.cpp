// Ablation: sensitivity of the estimator to the smoothing parameter ρ
// (paper §4 discusses ρ ∈ [0,1]; default 0.5). The wordcount muscles have
// level-dependent durations for the SHARED fs (6.4 s outer vs 0.91 s inner
// at paper scale), so the EWMA genuinely has to track a regime change — the
// regime where ρ matters.
//
// Prints, per ρ: measured WCT, goal met, peak LP, controller evaluations and
// the number of LP changes.

#include <iostream>

#include "util/csv.hpp"
#include "workload/wordcount.hpp"

using namespace askel;

int main(int argc, char** argv) {
  ScenarioConfig cfg;
  cfg.wct_goal = 9.5;
  cfg.timings.scale = argc > 1 ? std::atof(argv[1]) : 0.08;
  cfg.corpus.num_tweets = 2000;

  std::cout << "=== Ablation: estimator smoothing rho (goal 9.5, scale "
            << cfg.timings.scale << ") ===\n\n";
  Table table({"rho", "wct_s", "goal_met", "peak_busy", "lp_changes", "evals"});
  for (const double rho : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    cfg.rho = rho;
    const ScenarioResult res = run_wordcount_scenario(cfg);
    table.add_row({fmt(rho, 2), fmt(res.wct, 3), res.goal_met ? "yes" : "no",
                   std::to_string(res.peak_busy),
                   std::to_string(res.actions.size()),
                   std::to_string(res.controller_evaluations)});
    if (res.counts != res.expected) {
      std::cerr << "result mismatch at rho=" << rho << "\n";
      return 1;
    }
  }
  std::cout << table.to_text();
  std::cout << "\n(paper default rho=0.5: 'the estimated time is the average "
               "between the length of the previous execution, and the previous "
               "estimation')\n";
  return 0;
}
