// Figure 7: "WCT Goal of 10.5 secs" — a looser goal than Figures 5/6.
//
// Paper shape: the controller has more clearance, so it raises the LP later
// (8.7 s) and to a lower peak (10 active threads) than the 9.5 s scenarios;
// the run ends at 10.6 s, just around the goal.

#include "scenario_common.hpp"

using namespace askel;

int main(int argc, char** argv) {
  ScenarioConfig loose_cfg = benchharness::parse_config(argc, argv, /*goal=*/10.5);
  const ScenarioResult loose = run_wordcount_scenario(loose_cfg);

  // Reference: the tight-goal scenario 1 at identical settings.
  ScenarioConfig tight_cfg = loose_cfg;
  tight_cfg.wct_goal = 9.5;
  const ScenarioResult tight = run_wordcount_scenario(tight_cfg);

  benchharness::print_scenario(
      "Figure 7: WCT goal of 10.5 s", loose_cfg, loose,
      "adapts later (8.7 s) and peaks lower (10 threads) than the 9.5 s goal; "
      "ends 10.6 s");

  std::cout << "\ntight-goal (9.5 s): peak_busy=" << tight.peak_busy
            << " mean_busy=" << fmt(benchharness::mean_busy(tight), 2)
            << "  |  loose-goal (10.5 s): peak_busy=" << loose.peak_busy
            << " mean_busy=" << fmt(benchharness::mean_busy(loose), 2) << "\n";

  // Shape checks: the looser goal consumes less parallelism on average (the
  // paper's 10- vs 17-thread peaks) and still beats sequential.
  const bool lower_alloc = benchharness::mean_busy(loose) <=
                           benchharness::mean_busy(tight) * 1.15 + 0.25;
  const bool beat_sequential = loose.wct < loose_cfg.timings.sequential_wct();
  const bool ok = lower_alloc && beat_sequential && loose.counts == loose.expected;
  std::cout << (ok ? "[SHAPE OK]\n" : "[SHAPE MISMATCH]\n");
  return ok ? 0 : 1;
}
