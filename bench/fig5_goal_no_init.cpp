// Figure 5: "Goal without initialization" — autonomic execution with a WCT
// QoS of 9.5 s (paper scale) and NO pre-seeded estimates.
//
// Paper shape: nothing can happen until the first inner merge completes
// (7.6 s paper-scale — only then has every muscle run once); the controller
// then ramps the LP (paper peaks at 17 active threads at 8.6 s) and the run
// finishes at 9.3 s, inside the goal.

#include "scenario_common.hpp"

using namespace askel;

int main(int argc, char** argv) {
  ScenarioConfig cfg = benchharness::parse_config(argc, argv, /*goal=*/9.5);
  const ScenarioResult res = run_wordcount_scenario(cfg);
  benchharness::print_scenario(
      "Figure 5: Goal (9.5 s) without initialization", cfg, res,
      "first adaptation at 7.6 s (first merge), peak 17 threads, ends 9.3 s < goal");

  // Shape checks (scaled): adaptation strictly after the outer split; LP grew;
  // finished faster than sequential.
  const bool adapted_after_first_merge =
      !res.actions.empty() &&
      res.actions.front().t > cfg.timings.scaled_outer_split();
  const bool grew = res.peak_busy > 1;
  const bool beat_sequential = res.wct < cfg.timings.sequential_wct();
  const bool ok = adapted_after_first_merge && grew && beat_sequential &&
                  res.counts == res.expected;
  std::cout << (ok ? "[SHAPE OK]\n" : "[SHAPE MISMATCH]\n");
  return ok ? 0 : 1;
}
