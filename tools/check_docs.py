#!/usr/bin/env python3
"""Documentation lint, run by the CI docs job (and freely on a dev box):

1. Link check — every relative markdown link in README.md and docs/*.md must
   resolve to a file or directory that exists in the repo. External links
   (http/https/mailto) are not fetched: this gate is about repo-internal
   drift (a renamed doc or source file breaking the doc map), not network
   weather.

2. Doc-drift lint — every subsystem directory under src/ must be mentioned
   in docs/architecture.md. When a PR adds src/<new-subsystem>/ without
   documenting it, this fails the build instead of relying on review memory.

Usage: tools/check_docs.py [repo_root]   (default: the repo containing this
script). Exits nonzero with one line per problem.
"""

import os
import re
import sys

# Matches [text](target) but not images ![..](..); target split from an
# optional '#fragment' / 'title' suffix.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def md_files(root):
    files = [os.path.join(root, "README.md")]
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return [f for f in files if os.path.isfile(f)]


def check_links(root):
    problems = []
    checked = 0
    for path in md_files(root):
        base = os.path.dirname(path)
        text = open(path, encoding="utf-8").read()
        # Fenced code blocks routinely contain (a)[b] lookalikes; strip them.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for m in LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(os.path.join(base, target))
            if not resolved.startswith(root + os.sep) and resolved != root:
                # Climbs out of the repo: a GitHub site-relative URL (badge
                # targets and the like), not a repo file reference.
                continue
            checked += 1
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, root)
                problems.append(f"{rel}: broken link '{m.group(1)}' "
                                f"(resolved to {os.path.relpath(resolved, root)})")
    return checked, problems


def check_architecture_coverage(root):
    problems = []
    arch_path = os.path.join(root, "docs", "architecture.md")
    if not os.path.isfile(arch_path):
        return ["docs/architecture.md missing"]
    arch = open(arch_path, encoding="utf-8").read()
    src = os.path.join(root, "src")
    subsystems = sorted(
        d for d in os.listdir(src) if os.path.isdir(os.path.join(src, d)))
    for sub in subsystems:
        # A mention is 'src/<sub>' or '<sub>/' — loose on purpose: the lint
        # exists to catch a subsystem with NO documentation, not to dictate
        # phrasing.
        if f"src/{sub}" not in arch and f"{sub}/" not in arch:
            problems.append(
                f"docs/architecture.md: subsystem src/{sub}/ is never "
                "mentioned — document it (one paragraph is enough)")
    return problems


def main():
    root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), ".."))
    checked, problems = check_links(root)
    problems += check_architecture_coverage(root)
    if problems:
        for p in problems:
            print(f"FAIL {p}")
        return 1
    print(f"ok: {checked} relative links resolve; every src/* subsystem is "
          "covered by docs/architecture.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
