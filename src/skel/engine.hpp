#pragma once
// Execution engine: binds a skeleton tree, a thread pool, an event bus and a
// clock, and runs inputs through the tree.

#include <memory>

#include "events/event_bus.hpp"
#include "runtime/thread_pool.hpp"
#include "skel/future.hpp"
#include "skel/node.hpp"

namespace askel {

class Engine {
 public:
  Engine(ResizableThreadPool& pool, EventBus& bus,
         const Clock* clock = &default_clock());

  /// Launch one execution of `root` on `input`. Returns immediately; the
  /// computation proceeds on the pool. The returned future completes with
  /// the result or the first muscle exception.
  FuturePtr run(NodePtr root, Any input);

  /// Context of the most recently launched run (null before the first run).
  /// Exposed for the autonomic controller, which anchors its WCT goal at the
  /// run's start time.
  const CtxPtr& last_context() const { return last_ctx_; }

  /// Multi-tenant wiring: tag every task this engine launches with a
  /// coordinator tenant id. The shared pool attributes submissions to this
  /// skeleton instance AND routes them to the tenant's run queue, where the
  /// grant-weighted dispatch serves them in proportion to the coordinator's
  /// grant (real scheduling isolation, not just accounting). Takes effect
  /// for subsequent run() calls. 0 = none (untagged fast path).
  void set_tenant(int tenant) { tenant_ = tenant; }
  int tenant() const { return tenant_; }

  ResizableThreadPool& pool() { return pool_; }
  EventBus& bus() { return bus_; }
  const Clock& clock() const { return *clock_; }

 private:
  ResizableThreadPool& pool_;
  EventBus& bus_;
  const Clock* clock_;
  int tenant_ = 0;
  CtxPtr last_ctx_;
};

}  // namespace askel
