#pragma once
// Execution engine: binds a skeleton tree, a thread pool, an event bus and a
// clock, and runs inputs through the tree.

#include <memory>

#include "events/event_bus.hpp"
#include "runtime/thread_pool.hpp"
#include "skel/future.hpp"
#include "skel/node.hpp"

namespace askel {

class Engine {
 public:
  Engine(ResizableThreadPool& pool, EventBus& bus,
         const Clock* clock = &default_clock());

  /// Launch one execution of `root` on `input`. Returns immediately; the
  /// computation proceeds on the pool. The returned future completes with
  /// the result or the first muscle exception.
  FuturePtr run(NodePtr root, Any input);

  /// Context of the most recently launched run (null before the first run).
  /// Exposed for the autonomic controller, which anchors its WCT goal at the
  /// run's start time.
  const CtxPtr& last_context() const { return last_ctx_; }

  ResizableThreadPool& pool() { return pool_; }
  EventBus& bus() { return bus_; }
  const Clock& clock() const { return *clock_; }

 private:
  ResizableThreadPool& pool_;
  EventBus& bus_;
  const Clock* clock_;
  CtxPtr last_ctx_;
};

}  // namespace askel
