#pragma once
// Skeleton AST node base + execution context.
//
// The skeleton syntax of the paper (§3):
//   ∆ ::= seq(fe) | farm(∆) | pipe(∆1,∆2) | while(fc,∆) | if(fc,∆t,∆f)
//       | for(n,∆) | map(fs,∆,fm) | fork(fs,{∆},fm) | d&C(fc,fs,∆,fm)
//
// A SkelNode tree is immutable once built and can be executed concurrently by
// many inputs; all dynamic state lives in the per-run ExecContext and in the
// closures the interpreter creates.
//
// Execution is continuation-passing: `exec` never blocks on child results, it
// schedules children on the pool and finishes by invoking `cont` with the
// result. Hence a pool with LP=1 still completes arbitrarily nested skeletons
// (no worker ever waits on a future).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "events/event_bus.hpp"
#include "runtime/thread_pool.hpp"
#include "skel/muscle.hpp"
#include "util/clock.hpp"

namespace askel {

class SkelNode;

enum class SkelKind : int {
  kSeq, kFarm, kPipe, kWhile, kFor, kIf, kMap, kFork, kDaC,
};

std::string to_string(SkelKind k);

/// Continuation receiving the result of a (sub-)skeleton execution.
using Cont = std::function<void(Any)>;

/// Dynamic frame of one skeleton-instance execution: its trace and ids.
struct Frame {
  Trace trace;                       // root .. current node
  std::int64_t exec_id = -1;         // this instance (the paper's i)
  std::int64_t parent_exec_id = -1;  // enclosing instance, -1 at root
};

class ExecContext;
using CtxPtr = std::shared_ptr<ExecContext>;

/// Per-run mutable state shared by all tasks of one `Engine::run`.
class ExecContext {
 public:
  ExecContext(ResizableThreadPool& pool, EventBus& bus, const Clock& clock,
              int tenant = 0);

  /// Globally unique (process-wide) so trackers can key dynamic instances
  /// across consecutive runs without collisions.
  std::int64_t new_exec_id();

  /// Emit an event through the bus; returns the possibly rewritten partial
  /// solution. Runs synchronously on the calling (worker) thread.
  Any emit(Any param, const Frame& f, When when, Where where, int muscle_id,
           int cardinality = -1, bool condition_result = false,
           int child_index = -1);

  /// Record a failure; the first failure wins and completes the run
  /// exceptionally. Subsequent tasks short-circuit via `failed()`.
  void fail(std::exception_ptr e);
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  void spawn(Task t) { pool_.submit(std::move(t), tenant_); }

  ResizableThreadPool& pool() { return pool_; }
  EventBus& bus() { return bus_; }
  /// Coordinator tenant id this run's tasks are accounted under (0 = none).
  int tenant() const { return tenant_; }
  const Clock& clock() const { return clock_; }
  TimePoint now() const { return clock_.now(); }
  /// Wall-clock time at which Engine::run was called (goal anchoring).
  TimePoint start_time() const { return start_time_; }

  /// Completion hooks installed by the engine.
  std::function<void(Any)> complete;
  std::function<void(std::exception_ptr)> complete_error;

 private:
  ResizableThreadPool& pool_;
  EventBus& bus_;
  const Clock& clock_;
  int tenant_;
  TimePoint start_time_;
  std::atomic<bool> failed_{false};
  std::atomic<bool> error_delivered_{false};
};

class SkelNode {
 public:
  explicit SkelNode(SkelKind kind);
  virtual ~SkelNode() = default;
  SkelNode(const SkelNode&) = delete;
  SkelNode& operator=(const SkelNode&) = delete;

  SkelKind kind() const { return kind_; }
  /// Process-wide unique id of the static node.
  int id() const { return id_; }
  virtual std::string name() const { return to_string(kind_); }

  /// Execute one input. `parent` is the frame of the enclosing instance
  /// (empty-trace frame with exec_id -1 at the root).
  virtual void exec(const CtxPtr& ctx, const Frame& parent, Any input,
                    Cont cont) const = 0;

  /// Static children, in structural order.
  virtual std::vector<const SkelNode*> children() const = 0;
  /// Muscles referenced directly by this node.
  virtual std::vector<const Muscle*> muscles() const = 0;

  /// Open a frame for a new dynamic instance of this node.
  Frame open_frame(const CtxPtr& ctx, const Frame& parent) const;

 private:
  SkelKind kind_;
  int id_;
};

using NodePtr = std::shared_ptr<const SkelNode>;

/// Total number of static nodes in the tree rooted at `root` (incl. root).
std::size_t tree_size(const SkelNode& root);
/// All distinct muscles referenced anywhere in the tree.
std::vector<const Muscle*> tree_muscles(const SkelNode& root);

/// Guard a muscle invocation: runs `body()`, routes exceptions to ctx.fail.
/// Returns true on success.
template <class F>
bool guarded(const CtxPtr& ctx, F&& body) {
  try {
    body();
    return true;
  } catch (...) {
    ctx->fail(std::current_exception());
    return false;
  }
}

}  // namespace askel
