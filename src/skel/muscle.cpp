#include "skel/muscle.hpp"

#include <atomic>

namespace askel {
namespace {

int next_muscle_id() {
  static std::atomic<int> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::string to_string(MuscleKind k) {
  switch (k) {
    case MuscleKind::kExecute: return "execute";
    case MuscleKind::kSplit: return "split";
    case MuscleKind::kMerge: return "merge";
    case MuscleKind::kCondition: return "condition";
  }
  return "?";
}

Muscle::Muscle(MuscleKind kind, std::string name)
    : kind_(kind), id_(next_muscle_id()), name_(std::move(name)) {}

}  // namespace askel
