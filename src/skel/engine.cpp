#include "skel/engine.hpp"

namespace askel {

Engine::Engine(ResizableThreadPool& pool, EventBus& bus, const Clock* clock)
    : pool_(pool), bus_(bus), clock_(clock) {}

FuturePtr Engine::run(NodePtr root, Any input) {
  auto state = std::make_shared<FutureState>();
  auto ctx = std::make_shared<ExecContext>(pool_, bus_, *clock_, tenant_);
  ctx->complete = [state](Any r) { state->set_value(std::move(r)); };
  ctx->complete_error = [state](std::exception_ptr e) { state->set_error(e); };
  last_ctx_ = ctx;

  // The final continuation captures `root`, keeping the whole immutable tree
  // alive for as long as any in-flight task can still reach it.
  Cont done = [ctx, root](Any r) { ctx->complete(std::move(r)); };
  ctx->spawn([ctx, root, input = std::move(input), done = std::move(done)]() mutable {
    const Frame top;  // empty trace, exec_id -1: the root's parent frame
    root->exec(ctx, top, std::move(input), std::move(done));
  });
  return state;
}

}  // namespace askel
