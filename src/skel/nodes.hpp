#pragma once
// Concrete skeleton nodes, one per production of the paper's grammar.
//
// Event protocol (paper §3): every node emits (Before, kSkeleton) when an
// instance starts and (After, kSkeleton) when it delivers its result. Muscle
// invocations are bracketed by (Before/After, kSplit|kMerge|kCondition|
// kExecute) events, and nested-skeleton elements by (Before/After, kNested)
// with the element index — for Map this yields exactly the eight events the
// paper lists.

#include <memory>
#include <vector>

#include "skel/node.hpp"

namespace askel {

using ExecPtr = std::shared_ptr<const ExecuteMuscle>;
using SplitPtr = std::shared_ptr<const SplitMuscle>;
using MergePtr = std::shared_ptr<const MergeMuscle>;
using CondPtr = std::shared_ptr<const ConditionMuscle>;

/// seq(fe) — wraps one execution muscle.
class SeqNode final : public SkelNode {
 public:
  explicit SeqNode(ExecPtr fe);
  void exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const override;
  std::vector<const SkelNode*> children() const override { return {}; }
  std::vector<const Muscle*> muscles() const override { return {fe_.get()}; }
  const ExecuteMuscle& fe() const { return *fe_; }

 private:
  ExecPtr fe_;
};

/// farm(∆) — task replication; each input flows through the nested skeleton
/// independently (replication happens naturally across concurrent inputs).
class FarmNode final : public SkelNode {
 public:
  explicit FarmNode(NodePtr inner);
  void exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const override;
  std::vector<const SkelNode*> children() const override { return {inner_.get()}; }
  std::vector<const Muscle*> muscles() const override { return {}; }

 private:
  NodePtr inner_;
};

/// pipe(∆1, ∆2) — staged computation.
class PipeNode final : public SkelNode {
 public:
  PipeNode(NodePtr stage1, NodePtr stage2);
  void exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const override;
  std::vector<const SkelNode*> children() const override {
    return {stage1_.get(), stage2_.get()};
  }
  std::vector<const Muscle*> muscles() const override { return {}; }

 private:
  NodePtr stage1_;
  NodePtr stage2_;
};

/// while(fc, ∆) — iterate ∆ while fc holds.
class WhileNode final : public SkelNode {
 public:
  WhileNode(CondPtr fc, NodePtr body);
  void exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const override;
  std::vector<const SkelNode*> children() const override { return {body_.get()}; }
  std::vector<const Muscle*> muscles() const override { return {fc_.get()}; }
  const ConditionMuscle& fc() const { return *fc_; }

 private:
  void iterate(const CtxPtr& ctx, Frame f, Any value, Cont cont) const;
  CondPtr fc_;
  NodePtr body_;
};

/// for(n, ∆) — iterate ∆ exactly n times.
class ForNode final : public SkelNode {
 public:
  ForNode(int n, NodePtr body);
  void exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const override;
  std::vector<const SkelNode*> children() const override { return {body_.get()}; }
  std::vector<const Muscle*> muscles() const override { return {}; }
  int iterations() const { return n_; }

 private:
  void iterate(const CtxPtr& ctx, Frame f, int remaining, Any value, Cont cont) const;
  int n_;
  NodePtr body_;
};

/// if(fc, ∆true, ∆false) — conditional branching.
class IfNode final : public SkelNode {
 public:
  IfNode(CondPtr fc, NodePtr on_true, NodePtr on_false);
  void exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const override;
  std::vector<const SkelNode*> children() const override {
    return {on_true_.get(), on_false_.get()};
  }
  std::vector<const Muscle*> muscles() const override { return {fc_.get()}; }
  const SkelNode* true_branch() const { return on_true_.get(); }
  const SkelNode* false_branch() const { return on_false_.get(); }

 private:
  CondPtr fc_;
  NodePtr on_true_;
  NodePtr on_false_;
};

/// map(fs, ∆, fm) — split, apply ∆ to every element in parallel, merge.
class MapNode final : public SkelNode {
 public:
  MapNode(SplitPtr fs, NodePtr inner, MergePtr fm);
  void exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const override;
  std::vector<const SkelNode*> children() const override { return {inner_.get()}; }
  std::vector<const Muscle*> muscles() const override {
    return {fs_.get(), fm_.get()};
  }
  const SplitMuscle& fs() const { return *fs_; }
  const MergeMuscle& fm() const { return *fm_; }

 private:
  SplitPtr fs_;
  NodePtr inner_;
  MergePtr fm_;
};

/// fork(fs, {∆}, fm) — like map but element j runs skeleton ∆_{j mod |{∆}|}.
class ForkNode final : public SkelNode {
 public:
  ForkNode(SplitPtr fs, std::vector<NodePtr> branches, MergePtr fm);
  void exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const override;
  std::vector<const SkelNode*> children() const override;
  std::vector<const Muscle*> muscles() const override {
    return {fs_.get(), fm_.get()};
  }
  std::size_t branch_count() const { return branches_.size(); }

 private:
  SplitPtr fs_;
  std::vector<NodePtr> branches_;
  MergePtr fm_;
};

/// d&C(fc, fs, ∆, fm) — divide while fc holds, run ∆ at the leaves, merge up.
class DacNode final : public SkelNode {
 public:
  DacNode(CondPtr fc, SplitPtr fs, NodePtr leaf, MergePtr fm);
  void exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const override;
  std::vector<const SkelNode*> children() const override { return {leaf_.get()}; }
  std::vector<const Muscle*> muscles() const override {
    return {fc_.get(), fs_.get(), fm_.get()};
  }
  const ConditionMuscle& fc() const { return *fc_; }
  const SplitMuscle& fs() const { return *fs_; }
  const MergeMuscle& fm() const { return *fm_; }

 private:
  SplitPtr fs_;
  CondPtr fc_;
  NodePtr leaf_;
  MergePtr fm_;
};

}  // namespace askel
