#pragma once
// Future returned by Skeleton::input (the paper's Listing 1:
// `Future<R> future = mainSkeleton.input(new P(...)); ... future.get();`).
//
// Only the external caller ever blocks on a future — pool workers never do
// (the engine is continuation-passing), so futures cannot deadlock the pool.

#include <any>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

#include "util/clock.hpp"

namespace askel {

/// Untyped shared completion state.
class FutureState {
 public:
  /// First completion wins; later calls are ignored (a failed execution may
  /// race a concurrent success on another branch).
  void set_value(std::any v);
  void set_error(std::exception_ptr e);

  /// Block until completed; rethrows on error.
  std::any get();
  /// Wait up to `seconds`; true iff completed.
  bool wait_for(Duration seconds);
  bool ready() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::any value_;
  std::exception_ptr error_;
};

using FuturePtr = std::shared_ptr<FutureState>;

/// Typed view over a FutureState.
template <class R>
class Future {
 public:
  Future() = default;
  explicit Future(FuturePtr state) : state_(std::move(state)) {}

  /// Block for the result. Rethrows the muscle's exception on failure and
  /// std::bad_any_cast if the skeleton produced a different type.
  R get() { return std::any_cast<R>(state_->get()); }
  bool wait_for(Duration seconds) { return state_->wait_for(seconds); }
  bool ready() const { return state_ && state_->ready(); }
  const FuturePtr& state() const { return state_; }

 private:
  FuturePtr state_;
};

inline void FutureState::set_value(std::any v) {
  {
    std::lock_guard lock(mu_);
    if (done_) return;
    value_ = std::move(v);
    done_ = true;
  }
  cv_.notify_all();
}

inline void FutureState::set_error(std::exception_ptr e) {
  {
    std::lock_guard lock(mu_);
    if (done_) return;
    error_ = e;
    done_ = true;
  }
  cv_.notify_all();
}

inline std::any FutureState::get() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return done_; });
  if (error_) std::rethrow_exception(error_);
  return value_;
}

inline bool FutureState::wait_for(Duration seconds) {
  std::unique_lock lock(mu_);
  return cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                      [&] { return done_; });
}

inline bool FutureState::ready() const {
  std::lock_guard lock(mu_);
  return done_;
}

}  // namespace askel
