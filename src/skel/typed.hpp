#pragma once
// Typed public API, mirroring Skandium's generics (paper Listing 1):
//
//   auto fs = askel::split_muscle<P, P>("fs", [](P p) { ... });
//   auto fe = askel::execute_muscle<P, R>("fe", [](P p) { ... });
//   auto fm = askel::merge_muscle<R, R>("fm", [](std::vector<R> v) { ... });
//   auto nested = askel::Map(fs, askel::Seq(fe), fm);
//   auto main_skel = askel::Map(fs, nested, fm);
//   askel::Future<R> fut = main_skel.input(P{...}, engine);
//   R result = fut.get();
//
// Muscle wrappers perform the any-casts at the boundary; the engine below is
// fully type-erased. Sharing one muscle wrapper across several skeletons
// shares its estimation history (exactly like sharing the Java object).

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "skel/engine.hpp"
#include "skel/nodes.hpp"

namespace askel {

template <class P, class R>
struct ExecuteM {
  ExecPtr m;
};
template <class P, class I>
struct SplitM {
  SplitPtr m;
};
template <class O, class R>
struct MergeM {
  MergePtr m;
};
template <class P>
struct CondM {
  CondPtr m;
};

/// fe : P → R
template <class P, class R, class F>
ExecuteM<P, R> execute_muscle(std::string name, F fn) {
  auto wrapped = [fn = std::move(fn)](Any p) -> Any {
    return Any(fn(std::any_cast<P>(std::move(p))));
  };
  return {std::make_shared<const ExecuteMuscle>(std::move(name), std::move(wrapped))};
}

/// fs : P → {I}
template <class P, class I, class F>
SplitM<P, I> split_muscle(std::string name, F fn) {
  auto wrapped = [fn = std::move(fn)](Any p) -> AnyVec {
    std::vector<I> parts = fn(std::any_cast<P>(std::move(p)));
    AnyVec out;
    out.reserve(parts.size());
    for (I& x : parts) out.emplace_back(std::move(x));
    return out;
  };
  return {std::make_shared<const SplitMuscle>(std::move(name), std::move(wrapped))};
}

/// fm : {O} → R
template <class O, class R, class F>
MergeM<O, R> merge_muscle(std::string name, F fn) {
  auto wrapped = [fn = std::move(fn)](AnyVec v) -> Any {
    std::vector<O> parts;
    parts.reserve(v.size());
    for (Any& x : v) parts.push_back(std::any_cast<O>(std::move(x)));
    return Any(fn(std::move(parts)));
  };
  return {std::make_shared<const MergeMuscle>(std::move(name), std::move(wrapped))};
}

/// fc : P → bool
template <class P, class F>
CondM<P> condition_muscle(std::string name, F fn) {
  auto wrapped = [fn = std::move(fn)](const Any& p) -> bool {
    return fn(std::any_cast<const P&>(p));
  };
  return {std::make_shared<const ConditionMuscle>(std::move(name), std::move(wrapped))};
}

/// Typed handle over an immutable skeleton tree; cheap to copy.
template <class P, class R>
class Skel {
 public:
  explicit Skel(NodePtr node) : node_(std::move(node)) {}

  const NodePtr& node() const { return node_; }

  /// Launch one execution (Skandium's `skeleton.input(p)`).
  Future<R> input(P p, Engine& engine) const {
    return Future<R>(engine.run(node_, Any(std::move(p))));
  }

 private:
  NodePtr node_;
};

template <class P, class R>
Skel<P, R> Seq(ExecuteM<P, R> fe) {
  return Skel<P, R>(std::make_shared<const SeqNode>(std::move(fe.m)));
}

template <class P, class R>
Skel<P, R> Farm(Skel<P, R> inner) {
  return Skel<P, R>(std::make_shared<const FarmNode>(inner.node()));
}

template <class P, class X, class R>
Skel<P, R> Pipe(Skel<P, X> stage1, Skel<X, R> stage2) {
  return Skel<P, R>(
      std::make_shared<const PipeNode>(stage1.node(), stage2.node()));
}

template <class P>
Skel<P, P> While(CondM<P> fc, Skel<P, P> body) {
  return Skel<P, P>(std::make_shared<const WhileNode>(std::move(fc.m), body.node()));
}

template <class P>
Skel<P, P> For(int n, Skel<P, P> body) {
  return Skel<P, P>(std::make_shared<const ForNode>(n, body.node()));
}

template <class P, class R>
Skel<P, R> If(CondM<P> fc, Skel<P, R> on_true, Skel<P, R> on_false) {
  return Skel<P, R>(std::make_shared<const IfNode>(std::move(fc.m), on_true.node(),
                                                   on_false.node()));
}

template <class P, class I, class O, class R>
Skel<P, R> Map(SplitM<P, I> fs, Skel<I, O> inner, MergeM<O, R> fm) {
  return Skel<P, R>(std::make_shared<const MapNode>(std::move(fs.m), inner.node(),
                                                    std::move(fm.m)));
}

template <class P, class I, class O, class R>
Skel<P, R> Fork(SplitM<P, I> fs, std::vector<Skel<I, O>> branches, MergeM<O, R> fm) {
  std::vector<NodePtr> nodes;
  nodes.reserve(branches.size());
  for (const Skel<I, O>& b : branches) nodes.push_back(b.node());
  return Skel<P, R>(std::make_shared<const ForkNode>(std::move(fs.m), std::move(nodes),
                                                     std::move(fm.m)));
}

template <class P, class R>
Skel<P, R> DaC(CondM<P> fc, SplitM<P, P> fs, Skel<P, R> leaf, MergeM<R, R> fm) {
  return Skel<P, R>(std::make_shared<const DacNode>(std::move(fc.m), std::move(fs.m),
                                                    leaf.node(), std::move(fm.m)));
}

}  // namespace askel
