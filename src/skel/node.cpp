#include "skel/node.hpp"

#include <unordered_set>

#include "skel/trace.hpp"

namespace askel {
namespace {

int next_node_id() {
  static std::atomic<int> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::string to_string(SkelKind k) {
  switch (k) {
    case SkelKind::kSeq: return "seq";
    case SkelKind::kFarm: return "farm";
    case SkelKind::kPipe: return "pipe";
    case SkelKind::kWhile: return "while";
    case SkelKind::kFor: return "for";
    case SkelKind::kIf: return "if";
    case SkelKind::kMap: return "map";
    case SkelKind::kFork: return "fork";
    case SkelKind::kDaC: return "dac";
  }
  return "?";
}

std::string to_string(const Trace& trace) {
  std::string out;
  for (const SkelNode* n : trace) {
    if (!out.empty()) out += '/';
    out += n ? n->name() : std::string("?");
  }
  return out;
}

ExecContext::ExecContext(ResizableThreadPool& pool, EventBus& bus,
                         const Clock& clock, int tenant)
    : pool_(pool), bus_(bus), clock_(clock), tenant_(tenant),
      start_time_(clock.now()) {}

std::int64_t ExecContext::new_exec_id() {
  static std::atomic<std::int64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Any ExecContext::emit(Any param, const Frame& f, When when, Where where,
                      int muscle_id, int cardinality, bool condition_result,
                      int child_index) {
  Event ev;
  ev.when = when;
  ev.where = where;
  ev.exec_id = f.exec_id;
  ev.parent_exec_id = f.parent_exec_id;
  ev.node = f.trace.empty() ? nullptr : f.trace.back();
  ev.muscle_id = muscle_id;
  ev.timestamp = clock_.now();
  ev.trace = f.trace;
  ev.cardinality = cardinality;
  ev.condition_result = condition_result;
  ev.child_index = child_index;
  return bus_.dispatch(std::move(param), ev);
}

void ExecContext::fail(std::exception_ptr e) {
  failed_.store(true, std::memory_order_release);
  if (!error_delivered_.exchange(true, std::memory_order_acq_rel)) {
    if (complete_error) complete_error(e);
  }
}

SkelNode::SkelNode(SkelKind kind) : kind_(kind), id_(next_node_id()) {}

Frame SkelNode::open_frame(const CtxPtr& ctx, const Frame& parent) const {
  Frame f;
  f.trace = parent.trace;
  f.trace.push_back(this);
  f.exec_id = ctx->new_exec_id();
  f.parent_exec_id = parent.exec_id;
  return f;
}

std::size_t tree_size(const SkelNode& root) {
  std::size_t n = 1;
  for (const SkelNode* c : root.children()) n += tree_size(*c);
  return n;
}

std::vector<const Muscle*> tree_muscles(const SkelNode& root) {
  std::vector<const Muscle*> out;
  std::unordered_set<int> seen;
  const std::function<void(const SkelNode&)> walk = [&](const SkelNode& n) {
    for (const Muscle* m : n.muscles()) {
      if (seen.insert(m->id()).second) out.push_back(m);
    }
    for (const SkelNode* c : n.children()) walk(*c);
  };
  walk(root);
  return out;
}

}  // namespace askel
