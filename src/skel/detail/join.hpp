#pragma once
// Shared fan-out/fan-in machinery for map, fork and d&c.
//
// Each child writes its result into its own slot (no lock needed: slots are
// disjoint and the atomic decrement orders the final read); the LAST child to
// finish runs the merge muscle on its own thread, which is what makes the
// paper's "handler runs on the muscle's thread" guarantee hold for merge
// events too.

#include <atomic>
#include <memory>
#include <vector>

#include "skel/node.hpp"

namespace askel::detail {

struct JoinState {
  explicit JoinState(std::size_t n) : remaining(static_cast<int>(n)), results(n) {}
  std::atomic<int> remaining;
  AnyVec results;
};

using JoinPtr = std::shared_ptr<JoinState>;

/// Deposit `value` in slot `index`; returns true iff this was the last child.
inline bool arrive(const JoinPtr& join, std::size_t index, Any value) {
  join->results[index] = std::move(value);
  return join->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1;
}

}  // namespace askel::detail
