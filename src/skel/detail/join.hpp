#pragma once
// Shared fan-out/fan-in machinery for map, fork and d&c.
//
// Each child writes its result into its own slot (no lock needed: slots are
// disjoint and the atomic decrement orders the final read); the LAST child to
// finish runs the merge muscle on its own thread, which is what makes the
// paper's "handler runs on the muscle's thread" guarantee hold for merge
// events too.

#include <atomic>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "skel/node.hpp"

namespace askel::detail {

struct JoinState {
  explicit JoinState(std::size_t n) : remaining(checked_count(n)), results(n) {}
  std::atomic<int> remaining;
  AnyVec results;

 private:
  /// An empty fan-out has no child to ever call arrive(), so a JoinState for
  /// it would wait forever — the fan-out nodes run their merge inline when
  /// the split produces zero parts and must never construct one. The check
  /// turns a silent hang into an immediate error if a future caller forgets.
  /// The upper guard keeps the size_t -> int narrowing honest.
  static int checked_count(std::size_t n) {
    if (n == 0)
      throw std::logic_error(
          "JoinState: empty fan-out — run the merge inline instead of joining");
    if (n > static_cast<std::size_t>(std::numeric_limits<int>::max()))
      throw std::length_error("JoinState: fan-out exceeds INT_MAX children");
    return static_cast<int>(n);
  }
};

using JoinPtr = std::shared_ptr<JoinState>;

/// Deposit `value` in slot `index`; returns true iff this was the last child.
inline bool arrive(const JoinPtr& join, std::size_t index, Any value) {
  join->results[index] = std::move(value);
  return join->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1;
}

}  // namespace askel::detail
