#pragma once
// Helpers for rendering dynamic skeleton traces (the `st` array of the
// paper's Listing 2 logger).

#include <string>

#include "events/event.hpp"

namespace askel {

/// "map/map/seq"-style rendering of a trace.
std::string to_string(const Trace& trace);

}  // namespace askel
