#pragma once
// Muscles: the sequential blocks of business logic (paper §3).
//
// "Muscles come in four flavors: Execution fe : P → R; Split fs : P → {R};
//  Merge fm : {P} → R; Condition fc : P → boolean."
//
// Internally data flows as std::any; the typed front-end in skel/typed.hpp
// wraps user lambdas with the casts. Every muscle instance has a process-wide
// unique id — the estimation registry (est/) keys t(m) and |m| by that id,
// which is also why sharing one muscle object across nesting levels (as the
// paper's Listing 1 does with fs and fm) shares its estimate.

#include <any>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace askel {

using Any = std::any;
using AnyVec = std::vector<std::any>;

enum class MuscleKind : int { kExecute, kSplit, kMerge, kCondition };

std::string to_string(MuscleKind k);

class Muscle {
 public:
  virtual ~Muscle() = default;

  MuscleKind kind() const { return kind_; }
  /// Process-wide unique id (estimation registry key).
  int id() const { return id_; }
  /// Human-readable label, e.g. "fs", used when printing ADG tables.
  const std::string& name() const { return name_; }

 protected:
  Muscle(MuscleKind kind, std::string name);

 private:
  MuscleKind kind_;
  int id_;
  std::string name_;
};

class ExecuteMuscle final : public Muscle {
 public:
  using Fn = std::function<Any(Any)>;
  ExecuteMuscle(std::string name, Fn fn)
      : Muscle(MuscleKind::kExecute, std::move(name)), fn_(std::move(fn)) {}
  Any invoke(Any p) const { return fn_(std::move(p)); }

 private:
  Fn fn_;
};

class SplitMuscle final : public Muscle {
 public:
  using Fn = std::function<AnyVec(Any)>;
  SplitMuscle(std::string name, Fn fn)
      : Muscle(MuscleKind::kSplit, std::move(name)), fn_(std::move(fn)) {}
  AnyVec invoke(Any p) const { return fn_(std::move(p)); }

 private:
  Fn fn_;
};

class MergeMuscle final : public Muscle {
 public:
  using Fn = std::function<Any(AnyVec)>;
  MergeMuscle(std::string name, Fn fn)
      : Muscle(MuscleKind::kMerge, std::move(name)), fn_(std::move(fn)) {}
  Any invoke(AnyVec p) const { return fn_(std::move(p)); }

 private:
  Fn fn_;
};

class ConditionMuscle final : public Muscle {
 public:
  using Fn = std::function<bool(const Any&)>;
  ConditionMuscle(std::string name, Fn fn)
      : Muscle(MuscleKind::kCondition, std::move(name)), fn_(std::move(fn)) {}
  bool invoke(const Any& p) const { return fn_(p); }

 private:
  Fn fn_;
};

}  // namespace askel
