#include "skel/trace.hpp"

// to_string(const Trace&) is implemented in node.cpp (needs SkelNode::name).
// This translation unit exists so the target layout matches the module map.
