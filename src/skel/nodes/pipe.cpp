#include "skel/nodes.hpp"

namespace askel {

PipeNode::PipeNode(NodePtr stage1, NodePtr stage2)
    : SkelNode(SkelKind::kPipe), stage1_(std::move(stage1)), stage2_(std::move(stage2)) {}

void PipeNode::exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const {
  if (ctx->failed()) return;
  const Frame f = open_frame(ctx, parent);
  Any p = ctx->emit(std::move(input), f, When::kBefore, Where::kSkeleton, -1);
  p = ctx->emit(std::move(p), f, When::kBefore, Where::kNested, -1, -1, false, 0);
  stage1_->exec(ctx, f, std::move(p),
                [this, ctx, f, cont = std::move(cont)](Any mid) {
    if (ctx->failed()) return;
    mid = ctx->emit(std::move(mid), f, When::kAfter, Where::kNested, -1, -1, false, 0);
    mid = ctx->emit(std::move(mid), f, When::kBefore, Where::kNested, -1, -1, false, 1);
    stage2_->exec(ctx, f, std::move(mid), [ctx, f, cont](Any r) {
      if (ctx->failed()) return;
      r = ctx->emit(std::move(r), f, When::kAfter, Where::kNested, -1, -1, false, 1);
      r = ctx->emit(std::move(r), f, When::kAfter, Where::kSkeleton, -1);
      cont(std::move(r));
    });
  });
}

}  // namespace askel
