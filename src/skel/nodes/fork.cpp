#include <stdexcept>

#include "skel/detail/join.hpp"
#include "skel/nodes.hpp"

namespace askel {

ForkNode::ForkNode(SplitPtr fs, std::vector<NodePtr> branches, MergePtr fm)
    : SkelNode(SkelKind::kFork),
      fs_(std::move(fs)),
      branches_(std::move(branches)),
      fm_(std::move(fm)) {
  if (branches_.empty())
    throw std::invalid_argument("fork(fs, {∆}, fm): needs at least one skeleton");
}

std::vector<const SkelNode*> ForkNode::children() const {
  std::vector<const SkelNode*> out;
  out.reserve(branches_.size());
  for (const NodePtr& b : branches_) out.push_back(b.get());
  return out;
}

void ForkNode::exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const {
  if (ctx->failed()) return;
  const Frame f = open_frame(ctx, parent);
  Any p = ctx->emit(std::move(input), f, When::kBefore, Where::kSkeleton, -1);
  p = ctx->emit(std::move(p), f, When::kBefore, Where::kSplit, fs_->id());
  AnyVec parts;
  if (!guarded(ctx, [&] { parts = fs_->invoke(std::move(p)); })) return;
  const int card = static_cast<int>(parts.size());
  Any pv = ctx->emit(Any(std::move(parts)), f, When::kAfter, Where::kSplit,
                     fs_->id(), card);
  if (!guarded(ctx, [&] { parts = std::any_cast<AnyVec>(std::move(pv)); })) return;

  auto merge_step = [this, ctx, f, cont = std::move(cont)](AnyVec results) {
    Any mv = ctx->emit(Any(std::move(results)), f, When::kBefore, Where::kMerge,
                       fm_->id());
    AnyVec rv;
    if (!guarded(ctx, [&] { rv = std::any_cast<AnyVec>(std::move(mv)); })) return;
    Any r;
    if (!guarded(ctx, [&] { r = fm_->invoke(std::move(rv)); })) return;
    r = ctx->emit(std::move(r), f, When::kAfter, Where::kMerge, fm_->id());
    r = ctx->emit(std::move(r), f, When::kAfter, Where::kSkeleton, -1);
    cont(std::move(r));
  };

  if (parts.empty()) {
    merge_step(AnyVec{});
    return;
  }

  auto join = std::make_shared<detail::JoinState>(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    // Element j runs skeleton ∆_{j mod |{∆}|}: Skandium's fork applies
    // "multiple instructions to multiple data"; cycling keeps the node total
    // when the split produces more elements than there are skeletons.
    const SkelNode* branch = branches_[i % branches_.size()].get();
    ctx->spawn([branch, ctx, f, join, i, part = std::move(parts[i]),
                merge_step]() mutable {
      if (ctx->failed()) return;
      Any q = ctx->emit(std::move(part), f, When::kBefore, Where::kNested, -1, -1,
                        false, static_cast<int>(i));
      branch->exec(ctx, f, std::move(q), [ctx, f, join, i, merge_step](Any r) {
        if (ctx->failed()) return;
        r = ctx->emit(std::move(r), f, When::kAfter, Where::kNested, -1, -1, false,
                      static_cast<int>(i));
        if (detail::arrive(join, i, std::move(r))) {
          merge_step(std::move(join->results));
        }
      });
    });
  }
}

}  // namespace askel
