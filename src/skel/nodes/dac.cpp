#include "skel/detail/join.hpp"
#include "skel/nodes.hpp"

namespace askel {

DacNode::DacNode(CondPtr fc, SplitPtr fs, NodePtr leaf, MergePtr fm)
    : SkelNode(SkelKind::kDaC),
      fs_(std::move(fs)),
      fc_(std::move(fc)),
      leaf_(std::move(leaf)),
      fm_(std::move(fm)) {}

void DacNode::exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const {
  if (ctx->failed()) return;
  // Every recursion level opens a fresh dynamic instance; the depth of that
  // dynamic chain is what the paper estimates as |fc| for d&C.
  const Frame f = open_frame(ctx, parent);
  Any p = ctx->emit(std::move(input), f, When::kBefore, Where::kSkeleton, -1);
  p = ctx->emit(std::move(p), f, When::kBefore, Where::kCondition, fc_->id());
  bool divide = false;
  if (!guarded(ctx, [&] { divide = fc_->invoke(p); })) return;
  p = ctx->emit(std::move(p), f, When::kAfter, Where::kCondition, fc_->id(), -1, divide);

  if (!divide) {
    // Leaf: run ∆ on this element.
    p = ctx->emit(std::move(p), f, When::kBefore, Where::kNested, -1, -1, false, 0);
    leaf_->exec(ctx, f, std::move(p), [ctx, f, cont = std::move(cont)](Any r) {
      if (ctx->failed()) return;
      r = ctx->emit(std::move(r), f, When::kAfter, Where::kNested, -1, -1, false, 0);
      r = ctx->emit(std::move(r), f, When::kAfter, Where::kSkeleton, -1);
      cont(std::move(r));
    });
    return;
  }

  p = ctx->emit(std::move(p), f, When::kBefore, Where::kSplit, fs_->id());
  AnyVec parts;
  if (!guarded(ctx, [&] { parts = fs_->invoke(std::move(p)); })) return;
  const int card = static_cast<int>(parts.size());
  Any pv = ctx->emit(Any(std::move(parts)), f, When::kAfter, Where::kSplit,
                     fs_->id(), card);
  if (!guarded(ctx, [&] { parts = std::any_cast<AnyVec>(std::move(pv)); })) return;

  auto merge_step = [this, ctx, f, cont = std::move(cont)](AnyVec results) {
    Any mv = ctx->emit(Any(std::move(results)), f, When::kBefore, Where::kMerge,
                       fm_->id());
    AnyVec rv;
    if (!guarded(ctx, [&] { rv = std::any_cast<AnyVec>(std::move(mv)); })) return;
    Any r;
    if (!guarded(ctx, [&] { r = fm_->invoke(std::move(rv)); })) return;
    r = ctx->emit(std::move(r), f, When::kAfter, Where::kMerge, fm_->id());
    r = ctx->emit(std::move(r), f, When::kAfter, Where::kSkeleton, -1);
    cont(std::move(r));
  };

  if (parts.empty()) {
    merge_step(AnyVec{});
    return;
  }

  auto join = std::make_shared<detail::JoinState>(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    ctx->spawn([this, ctx, f, join, i, part = std::move(parts[i]),
                merge_step]() mutable {
      if (ctx->failed()) return;
      Any q = ctx->emit(std::move(part), f, When::kBefore, Where::kNested, -1, -1,
                        false, static_cast<int>(i));
      // Recurse on this same node: d&C(fc, fs, ∆, fm) applied to the part.
      this->exec(ctx, f, std::move(q), [ctx, f, join, i, merge_step](Any r) {
        if (ctx->failed()) return;
        r = ctx->emit(std::move(r), f, When::kAfter, Where::kNested, -1, -1, false,
                      static_cast<int>(i));
        if (detail::arrive(join, i, std::move(r))) {
          merge_step(std::move(join->results));
        }
      });
    });
  }
}

}  // namespace askel
