#include "skel/nodes.hpp"

#include <stdexcept>

namespace askel {

ForNode::ForNode(int n, NodePtr body)
    : SkelNode(SkelKind::kFor), n_(n), body_(std::move(body)) {
  if (n < 0) throw std::invalid_argument("for(n, ∆): n must be >= 0");
}

void ForNode::exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const {
  if (ctx->failed()) return;
  const Frame f = open_frame(ctx, parent);
  Any p = ctx->emit(std::move(input), f, When::kBefore, Where::kSkeleton, -1);
  iterate(ctx, f, n_, std::move(p), std::move(cont));
}

void ForNode::iterate(const CtxPtr& ctx, Frame f, int remaining, Any value,
                      Cont cont) const {
  if (ctx->failed()) return;
  if (remaining == 0) {
    value = ctx->emit(std::move(value), f, When::kAfter, Where::kSkeleton, -1);
    cont(std::move(value));
    return;
  }
  const int child_index = n_ - remaining;
  Any p = ctx->emit(std::move(value), f, When::kBefore, Where::kNested, -1, -1, false,
                    child_index);
  body_->exec(ctx, f, std::move(p),
              [this, ctx, f, remaining, child_index, cont = std::move(cont)](Any r) {
    if (ctx->failed()) return;
    r = ctx->emit(std::move(r), f, When::kAfter, Where::kNested, -1, -1, false,
                  child_index);
    iterate(ctx, f, remaining - 1, std::move(r), cont);
  });
}

}  // namespace askel
