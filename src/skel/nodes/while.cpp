#include "skel/nodes.hpp"

namespace askel {

WhileNode::WhileNode(CondPtr fc, NodePtr body)
    : SkelNode(SkelKind::kWhile), fc_(std::move(fc)), body_(std::move(body)) {}

void WhileNode::exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const {
  if (ctx->failed()) return;
  const Frame f = open_frame(ctx, parent);
  Any p = ctx->emit(std::move(input), f, When::kBefore, Where::kSkeleton, -1);
  iterate(ctx, f, std::move(p), std::move(cont));
}

void WhileNode::iterate(const CtxPtr& ctx, Frame f, Any value, Cont cont) const {
  if (ctx->failed()) return;
  Any p = ctx->emit(std::move(value), f, When::kBefore, Where::kCondition, fc_->id());
  bool go = false;
  if (!guarded(ctx, [&] { go = fc_->invoke(p); })) return;
  p = ctx->emit(std::move(p), f, When::kAfter, Where::kCondition, fc_->id(), -1, go);
  if (!go) {
    p = ctx->emit(std::move(p), f, When::kAfter, Where::kSkeleton, -1);
    cont(std::move(p));
    return;
  }
  p = ctx->emit(std::move(p), f, When::kBefore, Where::kNested, -1, -1, false, 0);
  body_->exec(ctx, f, std::move(p),
              [this, ctx, f, cont = std::move(cont)](Any r) {
    if (ctx->failed()) return;
    r = ctx->emit(std::move(r), f, When::kAfter, Where::kNested, -1, -1, false, 0);
    iterate(ctx, f, std::move(r), cont);
  });
}

}  // namespace askel
