#include "skel/nodes.hpp"

namespace askel {

SeqNode::SeqNode(ExecPtr fe) : SkelNode(SkelKind::kSeq), fe_(std::move(fe)) {}

void SeqNode::exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const {
  if (ctx->failed()) return;
  const Frame f = open_frame(ctx, parent);
  // seq(fe)@b(i): the two events of Figure 3.
  Any p = ctx->emit(std::move(input), f, When::kBefore, Where::kExecute, fe_->id());
  Any r;
  if (!guarded(ctx, [&] { r = fe_->invoke(std::move(p)); })) return;
  r = ctx->emit(std::move(r), f, When::kAfter, Where::kExecute, fe_->id());
  cont(std::move(r));
}

}  // namespace askel
