#include "skel/nodes.hpp"

namespace askel {

FarmNode::FarmNode(NodePtr inner) : SkelNode(SkelKind::kFarm), inner_(std::move(inner)) {}

void FarmNode::exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const {
  if (ctx->failed()) return;
  const Frame f = open_frame(ctx, parent);
  Any p = ctx->emit(std::move(input), f, When::kBefore, Where::kSkeleton, -1);
  p = ctx->emit(std::move(p), f, When::kBefore, Where::kNested, -1, -1, false, 0);
  inner_->exec(ctx, f, std::move(p), [ctx, f, cont = std::move(cont)](Any r) {
    if (ctx->failed()) return;
    r = ctx->emit(std::move(r), f, When::kAfter, Where::kNested, -1, -1, false, 0);
    r = ctx->emit(std::move(r), f, When::kAfter, Where::kSkeleton, -1);
    cont(std::move(r));
  });
}

}  // namespace askel
