#include "skel/nodes.hpp"

namespace askel {

IfNode::IfNode(CondPtr fc, NodePtr on_true, NodePtr on_false)
    : SkelNode(SkelKind::kIf),
      fc_(std::move(fc)),
      on_true_(std::move(on_true)),
      on_false_(std::move(on_false)) {}

void IfNode::exec(const CtxPtr& ctx, const Frame& parent, Any input, Cont cont) const {
  if (ctx->failed()) return;
  const Frame f = open_frame(ctx, parent);
  Any p = ctx->emit(std::move(input), f, When::kBefore, Where::kSkeleton, -1);
  p = ctx->emit(std::move(p), f, When::kBefore, Where::kCondition, fc_->id());
  bool branch = false;
  if (!guarded(ctx, [&] { branch = fc_->invoke(p); })) return;
  p = ctx->emit(std::move(p), f, When::kAfter, Where::kCondition, fc_->id(), -1, branch);
  const SkelNode* chosen = branch ? on_true_.get() : on_false_.get();
  const int child_index = branch ? 0 : 1;
  p = ctx->emit(std::move(p), f, When::kBefore, Where::kNested, -1, -1, false, child_index);
  chosen->exec(ctx, f, std::move(p),
               [ctx, f, child_index, cont = std::move(cont)](Any r) {
    if (ctx->failed()) return;
    r = ctx->emit(std::move(r), f, When::kAfter, Where::kNested, -1, -1, false, child_index);
    r = ctx->emit(std::move(r), f, When::kAfter, Where::kSkeleton, -1);
    cont(std::move(r));
  });
}

}  // namespace askel
