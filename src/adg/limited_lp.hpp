#pragma once
// Limited-LP WCT estimation (paper §4): "Limited LP strategy is used to
// calculate the total WCT under a limit of LP. In this case LP is not
// infinite, therefore the ti calculation has an extra constraint: at any
// point of time LP should not be over the limit."
//
// Finding the true minimum-makespan schedule under a processor bound is
// NP-complete (the paper says so); like Skandium we use deterministic greedy
// list scheduling: among ready activities, the earliest-ready one (ties by
// id) is placed on the earliest-free worker.

#include "adg/best_effort.hpp"

namespace askel {

/// Greedy list schedule of the snapshot's running+pending activities on `lp`
/// workers. Done activities keep their actual times and hold no worker;
/// running activities each hold a worker until their estimated end (they are
/// physically occupying threads and are never migrated).
Schedule limited_lp(const AdgSnapshot& g, int lp);

}  // namespace askel
