#pragma once
// Expected-future expansion: append to a snapshot the activities that a
// not-yet-started (sub-)skeleton is *expected* to perform, using the current
// |m| estimates for fan-out/iteration counts and t(m) for durations.
//
// The tracker layer uses this for map children that exist only as a count in
// fsCard, for future While/For iterations, and for the unexplored part of a
// d&C recursion tree.

#include "adg/snapshot.hpp"
#include "est/registry.hpp"
#include "skel/nodes.hpp"

namespace askel {

struct ExpandLimits {
  /// Hard cap on snapshot size; hitting it sets snapshot.truncated and stops
  /// expanding (a d&C with badly over-estimated fan-out could explode).
  std::size_t max_activities = 100000;
  /// Recursion depth guard.
  int max_depth = 64;
};

/// Expand one expected execution of `node` whose inputs become ready when all
/// of `preds` finish. Returns the ids of the terminal activities the node's
/// result depends on (used to wire the consumer's preds).
///
/// Estimation gaps: a muscle without t(m) contributes a 0-duration activity
/// and clears snapshot.complete_estimates; a Split/Condition without |m|
/// falls back to cardinality 1 and also clears the flag.
///
/// `est_depth` is the dynamic nesting depth at which `node`'s instance would
/// run (0 = root); nested children sit one deeper. Only relevant when the
/// estimate snapshot uses EstimationScope::kPerDepth.
std::vector<int> expand_expected(const SkelNode& node, const Estimates& est,
                                 AdgSnapshot& g, const std::vector<int>& preds,
                                 const ExpandLimits& lim = {}, int est_depth = 0);

/// Expected expansion of a d&C instance sitting at recursion level `level`
/// (the root call is level 0): condition, then leaf or split/children/merge
/// depending on the estimated recursion depth |fc|.
std::vector<int> expand_expected_dac(const DacNode& node, const Estimates& est,
                                     AdgSnapshot& g, const std::vector<int>& preds,
                                     long level, const ExpandLimits& lim = {},
                                     int est_depth = 0);

/// Same, but for an instance whose condition has already executed: only what
/// follows the condition. `divided` is the condition's (known or assumed)
/// result.
std::vector<int> expand_dac_body(const DacNode& node, const Estimates& est,
                                 AdgSnapshot& g, const std::vector<int>& preds,
                                 long level, bool divided,
                                 const ExpandLimits& lim = {}, int est_depth = 0);

/// Append one pending activity for `m` using t(m) from `est` (0 + incomplete
/// flag when unknown). Returns the new activity id.
int add_pending_muscle(AdgSnapshot& g, const Estimates& est, const Muscle& m,
                       std::vector<int> preds, int est_depth = kAnyDepth);

/// Cardinality estimate rounded to a usable count (>= 0).
long rounded_cardinality(const Estimates& est, int muscle_id, long fallback,
                         bool* known = nullptr, int est_depth = kAnyDepth);

}  // namespace askel
