#include "adg/bounds.hpp"

#include <algorithm>

#include "adg/limited_lp.hpp"

namespace askel {

double remaining_work(const AdgSnapshot& g) {
  double w = 0.0;
  for (const Activity& a : g.activities) {
    switch (a.state) {
      case ActivityState::kDone:
        break;
      case ActivityState::kRunning: {
        const double end = std::max(a.start + a.est_duration, g.now);
        w += end - g.now;
        break;
      }
      case ActivityState::kPending:
        w += a.est_duration;
        break;
    }
  }
  return w;
}

TimePoint work_bound(const AdgSnapshot& g, int lp) {
  return g.now + remaining_work(g) / std::max(1, lp);
}

TimePoint graham_bound(const AdgSnapshot& g, int lp) {
  return std::max(best_effort(g).wct, work_bound(g, lp));
}

TimePoint graham_upper(const AdgSnapshot& g, int lp) {
  // best_effort(g).wct is now + CP_tail (done activities never exceed now);
  // adding W/p yields the classic CP + W/p guarantee anchored at now.
  return best_effort(g).wct + remaining_work(g) / std::max(1, lp);
}

TimePoint estimate_wct(const AdgSnapshot& g, int lp, WctAlgorithm algo) {
  switch (algo) {
    case WctAlgorithm::kListSchedule:
      return limited_lp(g, lp).wct;
    case WctAlgorithm::kGrahamBound:
      return graham_bound(g, lp);
  }
  return 0.0;  // unreachable
}

}  // namespace askel
