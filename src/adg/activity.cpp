#include "adg/activity.hpp"

namespace askel {

std::string to_string(ActivityState s) {
  switch (s) {
    case ActivityState::kDone: return "done";
    case ActivityState::kRunning: return "running";
    case ActivityState::kPending: return "pending";
  }
  return "?";
}

Activity make_done(int muscle_id, std::string label, TimePoint start, TimePoint end,
                   std::vector<int> preds) {
  Activity a;
  a.muscle_id = muscle_id;
  a.label = std::move(label);
  a.state = ActivityState::kDone;
  a.start = start;
  a.end = end;
  a.est_duration = end - start;
  a.preds = std::move(preds);
  return a;
}

Activity make_running(int muscle_id, std::string label, TimePoint start,
                      Duration est_duration, std::vector<int> preds) {
  Activity a;
  a.muscle_id = muscle_id;
  a.label = std::move(label);
  a.state = ActivityState::kRunning;
  a.start = start;
  a.est_duration = est_duration;
  a.preds = std::move(preds);
  return a;
}

Activity make_pending(int muscle_id, std::string label, Duration est_duration,
                      std::vector<int> preds, bool has_estimate) {
  Activity a;
  a.muscle_id = muscle_id;
  a.label = std::move(label);
  a.state = ActivityState::kPending;
  a.est_duration = est_duration;
  a.has_estimate = has_estimate;
  a.preds = std::move(preds);
  return a;
}

}  // namespace askel
