#include "adg/best_effort.hpp"

#include <algorithm>

namespace askel {

Schedule best_effort(const AdgSnapshot& g) {
  Schedule s;
  s.entries.resize(g.activities.size());
  for (const Activity& a : g.activities) {
    ScheduleEntry& e = s.entries[a.id];
    switch (a.state) {
      case ActivityState::kDone:
        e.start = a.start;
        e.end = a.end;
        break;
      case ActivityState::kRunning: {
        e.start = a.start;
        // tf = ti + t(m), "but if ti + t(m) is in the past, tf = currentTime".
        e.end = std::max(a.start + a.est_duration, g.now);
        break;
      }
      case ActivityState::kPending: {
        TimePoint ready = g.now;
        for (const int p : a.preds) ready = std::max(ready, s.entries[p].end);
        // "If max(preds' tf) is in the past, ti = currentTime" — the max with
        // g.now above implements exactly that clamp.
        e.start = ready;
        e.end = std::max(ready + a.est_duration, g.now);
        break;
      }
    }
    s.wct = std::max(s.wct, e.end);
  }
  return s;
}

}  // namespace askel
