#pragma once
// AdgSnapshot: a point-in-time Activity Dependency Graph.
//
// The tracker layer (sm/) rebuilds a snapshot on demand from the live state
// machines: done activities carry actual times, running ones their actual
// start, and the not-yet-executed remainder of the skeleton is expanded from
// the current estimates (adg/expand.*). The schedulers below then answer
// "when will this finish?" under different LP assumptions.

#include <vector>

#include "adg/activity.hpp"

namespace askel {

struct AdgSnapshot {
  /// The observation instant (the "black box" moment of Figure 1).
  TimePoint now = 0.0;
  /// Topologically ordered: every activity's preds have smaller ids.
  std::vector<Activity> activities;
  /// True iff every running/pending activity had a t(m) estimate. The
  /// controller refuses to act on incomplete snapshots — the paper: "the
  /// system has to wait until all muscles have been executed at least once".
  bool complete_estimates = true;
  /// True when the expected-future expansion hit its size guard.
  bool truncated = false;

  /// Append an activity, assigning its id. Predecessor ids must already be
  /// present. Returns the new id.
  int add(Activity a);

  std::size_t size() const { return activities.size(); }
  std::size_t count(ActivityState s) const;

  /// Structural checks (topological pred order, state/time consistency).
  /// Returns an empty string when valid, else a description of the problem.
  std::string validate() const;
};

}  // namespace askel
