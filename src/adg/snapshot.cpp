#include "adg/snapshot.hpp"

#include <sstream>
#include <stdexcept>

namespace askel {

int AdgSnapshot::add(Activity a) {
  a.id = static_cast<int>(activities.size());
  for (const int p : a.preds) {
    if (p < 0 || p >= a.id)
      throw std::invalid_argument("AdgSnapshot::add: predecessor id out of order");
  }
  if (!a.has_estimate && a.state != ActivityState::kDone) complete_estimates = false;
  activities.push_back(std::move(a));
  return static_cast<int>(activities.size()) - 1;
}

std::size_t AdgSnapshot::count(ActivityState s) const {
  std::size_t n = 0;
  for (const Activity& a : activities) n += (a.state == s);
  return n;
}

std::string AdgSnapshot::validate() const {
  std::ostringstream err;
  for (std::size_t i = 0; i < activities.size(); ++i) {
    const Activity& a = activities[i];
    if (a.id != static_cast<int>(i)) {
      err << "activity " << i << ": id mismatch";
      return err.str();
    }
    for (const int p : a.preds) {
      if (p < 0 || p >= a.id) {
        err << "activity " << i << ": bad pred " << p;
        return err.str();
      }
    }
    switch (a.state) {
      case ActivityState::kDone:
        if (a.end < a.start) {
          err << "activity " << i << ": done with end < start";
          return err.str();
        }
        if (a.end > now) {
          err << "activity " << i << ": done in the future";
          return err.str();
        }
        break;
      case ActivityState::kRunning:
        if (a.start > now) {
          err << "activity " << i << ": running but started in the future";
          return err.str();
        }
        break;
      case ActivityState::kPending:
        if (a.est_duration < 0) {
          err << "activity " << i << ": negative estimate";
          return err.str();
        }
        break;
    }
  }
  return {};
}

}  // namespace askel
