#include "adg/expand.hpp"

#include <algorithm>
#include <cmath>

namespace askel {
namespace {

class Expander {
 public:
  Expander(const Estimates& est, AdgSnapshot& g, const ExpandLimits& lim)
      : est_(est), g_(g), lim_(lim) {}

  // `depth` is the recursion guard; `ed` the estimation (dynamic nesting)
  // depth used for per-depth estimate lookups.
  std::vector<int> expand(const SkelNode& node, std::vector<int> preds, int depth,
                          int ed) {
    if (depth > lim_.max_depth || g_.size() >= lim_.max_activities) {
      g_.truncated = true;
      return preds;
    }
    switch (node.kind()) {
      case SkelKind::kSeq: {
        const auto& n = static_cast<const SeqNode&>(node);
        return {add_muscle(n.fe(), std::move(preds), ed)};
      }
      case SkelKind::kFarm: {
        const auto& n = static_cast<const FarmNode&>(node);
        return expand(*n.children()[0], std::move(preds), depth + 1, ed + 1);
      }
      case SkelKind::kPipe: {
        const auto& n = static_cast<const PipeNode&>(node);
        const auto kids = n.children();
        std::vector<int> mid = expand(*kids[0], std::move(preds), depth + 1, ed + 1);
        return expand(*kids[1], std::move(mid), depth + 1, ed + 1);
      }
      case SkelKind::kWhile: {
        const auto& n = static_cast<const WhileNode&>(node);
        // |fc| = expected number of `true` results; the condition itself runs
        // iters+1 times (the last one returns false).
        bool known = false;
        const long iters = rounded_cardinality(est_, n.fc().id(), 1, &known, ed);
        if (!known) g_.complete_estimates = false;
        std::vector<int> cur = std::move(preds);
        for (long k = 0; k < iters; ++k) {
          if (g_.size() >= lim_.max_activities) {
            g_.truncated = true;
            return cur;
          }
          cur = {add_muscle(n.fc(), std::move(cur), ed)};
          cur = expand(*n.children()[0], std::move(cur), depth + 1, ed + 1);
        }
        return {add_muscle(n.fc(), std::move(cur), ed)};
      }
      case SkelKind::kFor: {
        const auto& n = static_cast<const ForNode&>(node);
        std::vector<int> cur = std::move(preds);
        for (int k = 0; k < n.iterations(); ++k) {
          if (g_.size() >= lim_.max_activities) {
            g_.truncated = true;
            return cur;
          }
          cur = expand(*n.children()[0], std::move(cur), depth + 1, ed + 1);
        }
        return cur;
      }
      case SkelKind::kIf: {
        // The paper's v1.1b1 leaves If unsupported ("produces a duplication
        // of the whole ADG"). We track it conservatively by expanding the
        // true branch after the condition — documented deviation.
        const auto& n = static_cast<const IfNode&>(node);
        std::vector<int> c = {
            add_muscle(*static_cast<const ConditionMuscle*>(n.muscles()[0]),
                       std::move(preds), ed)};
        return expand(*n.true_branch(), std::move(c), depth + 1, ed + 1);
      }
      case SkelKind::kMap: {
        const auto& n = static_cast<const MapNode&>(node);
        bool known = false;
        const long card = rounded_cardinality(est_, n.fs().id(), 1, &known, ed);
        if (!known) g_.complete_estimates = false;
        const int split_id = add_muscle(n.fs(), std::move(preds), ed);
        std::vector<int> merge_preds;
        // Each branch typically contributes one terminal; reserving the
        // known cardinality avoids O(log card) grow-and-copy cycles on
        // large-ADG expansion. Capped by the activity limit: the loop stops
        // there anyway, and an estimate gone wild must not allocate
        // gigabytes up front.
        merge_preds.reserve(reserve_hint(card));
        for (long k = 0; k < card; ++k) {
          if (g_.size() >= lim_.max_activities) {
            g_.truncated = true;
            break;
          }
          std::vector<int> t = expand(*n.children()[0], {split_id}, depth + 1, ed + 1);
          merge_preds.insert(merge_preds.end(), t.begin(), t.end());
        }
        if (merge_preds.empty()) merge_preds = {split_id};
        return {add_muscle(n.fm(), std::move(merge_preds), ed)};
      }
      case SkelKind::kFork: {
        const auto& n = static_cast<const ForkNode&>(node);
        const auto* fs = static_cast<const SplitMuscle*>(n.muscles()[0]);
        const auto* fm = static_cast<const MergeMuscle*>(n.muscles()[1]);
        bool known = false;
        const long card = rounded_cardinality(
            est_, fs->id(), static_cast<long>(n.branch_count()), &known, ed);
        if (!known) g_.complete_estimates = false;
        const int split_id = add_muscle(*fs, std::move(preds), ed);
        const auto kids = n.children();
        std::vector<int> merge_preds;
        merge_preds.reserve(reserve_hint(card));
        for (long k = 0; k < card; ++k) {
          if (g_.size() >= lim_.max_activities) {
            g_.truncated = true;
            break;
          }
          const SkelNode& branch = *kids[static_cast<std::size_t>(k) % kids.size()];
          std::vector<int> t = expand(branch, {split_id}, depth + 1, ed + 1);
          merge_preds.insert(merge_preds.end(), t.begin(), t.end());
        }
        if (merge_preds.empty()) merge_preds = {split_id};
        return {add_muscle(*fm, std::move(merge_preds), ed)};
      }
      case SkelKind::kDaC: {
        const auto& n = static_cast<const DacNode&>(node);
        return expand_dac(n, std::move(preds), 0, estimated_depth(n, ed), depth, ed);
      }
    }
    return preds;  // unreachable
  }

  long estimated_depth(const DacNode& n, int ed) {
    bool depth_known = false;
    const long rec_depth =
        rounded_cardinality(est_, n.fc().id(), 0, &depth_known, ed);
    if (!depth_known) g_.complete_estimates = false;
    return rec_depth;
  }

  /// One level of an expected d&C tree: condition, then its body.
  std::vector<int> expand_dac(const DacNode& n, std::vector<int> preds, long level,
                              long rec_depth, int depth, int ed) {
    if (depth > lim_.max_depth || g_.size() >= lim_.max_activities) {
      g_.truncated = true;
      return preds;
    }
    const int cond_id = add_muscle(n.fc(), std::move(preds), ed);
    return dac_body(n, {cond_id}, level, rec_depth, level < rec_depth, depth, ed);
  }

  /// What follows a d&C condition: the leaf skeleton when not dividing, else
  /// split / `branching` recursive children / merge.
  std::vector<int> dac_body(const DacNode& n, std::vector<int> preds, long level,
                            long rec_depth, bool divided, int depth, int ed) {
    if (depth > lim_.max_depth || g_.size() >= lim_.max_activities) {
      g_.truncated = true;
      return preds;
    }
    if (!divided) {
      return expand(*n.children()[0], std::move(preds), depth + 1, ed + 1);
    }
    bool known = false;
    const long branching = rounded_cardinality(est_, n.fs().id(), 1, &known, ed);
    if (!known) g_.complete_estimates = false;
    const int split_id = add_muscle(n.fs(), std::move(preds), ed);
    std::vector<int> merge_preds;
    merge_preds.reserve(reserve_hint(branching));
    for (long k = 0; k < branching; ++k) {
      if (g_.size() >= lim_.max_activities) {
        g_.truncated = true;
        break;
      }
      std::vector<int> t =
          expand_dac(n, {split_id}, level + 1, rec_depth, depth + 1, ed + 1);
      merge_preds.insert(merge_preds.end(), t.begin(), t.end());
    }
    if (merge_preds.empty()) merge_preds = {split_id};
    return {add_muscle(n.fm(), std::move(merge_preds), ed)};
  }

 private:
  int add_muscle(const Muscle& m, std::vector<int> preds, int ed) {
    return add_pending_muscle(g_, est_, m, std::move(preds), ed);
  }

  std::size_t reserve_hint(long cardinality) const {
    // Clamp in size_t (max_activities may legitimately be SIZE_MAX, "no
    // cap") to the *remaining* activity budget — the merge loop truncates
    // there anyway — and to a sane constant so a wild cardinality estimate
    // never turns an optimization hint into a huge allocation.
    constexpr std::size_t kMaxHint = 1 << 16;
    const std::size_t want =
        cardinality > 0 ? static_cast<std::size_t>(cardinality) : 0;
    const std::size_t remaining =
        lim_.max_activities > g_.size() ? lim_.max_activities - g_.size() : 0;
    return std::min({want, remaining, kMaxHint});
  }

  const Estimates& est_;
  AdgSnapshot& g_;
  const ExpandLimits& lim_;
};

}  // namespace

long rounded_cardinality(const Estimates& est, int muscle_id, long fallback,
                         bool* known, int est_depth) {
  const auto c = est.cardinality(muscle_id, est_depth);
  if (known) *known = c.has_value();
  if (!c) return fallback;
  return std::max<long>(0, std::lround(*c));
}

std::vector<int> expand_expected(const SkelNode& node, const Estimates& est,
                                 AdgSnapshot& g, const std::vector<int>& preds,
                                 const ExpandLimits& lim, int est_depth) {
  Expander e(est, g, lim);
  return e.expand(node, preds, 0, est_depth);
}

std::vector<int> expand_expected_dac(const DacNode& node, const Estimates& est,
                                     AdgSnapshot& g, const std::vector<int>& preds,
                                     long level, const ExpandLimits& lim,
                                     int est_depth) {
  Expander e(est, g, lim);
  return e.expand_dac(node, preds, level, e.estimated_depth(node, est_depth), 0,
                      est_depth);
}

std::vector<int> expand_dac_body(const DacNode& node, const Estimates& est,
                                 AdgSnapshot& g, const std::vector<int>& preds,
                                 long level, bool divided, const ExpandLimits& lim,
                                 int est_depth) {
  Expander e(est, g, lim);
  return e.dac_body(node, preds, level, e.estimated_depth(node, est_depth), divided,
                    0, est_depth);
}

int add_pending_muscle(AdgSnapshot& g, const Estimates& est, const Muscle& m,
                       std::vector<int> preds, int est_depth) {
  const auto t = est.t(m.id(), est_depth);
  return g.add(make_pending(m.id(), m.name(), t.value_or(0.0), std::move(preds),
                            t.has_value()));
}

}  // namespace askel
