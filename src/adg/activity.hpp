#pragma once
// Activities: nodes of the Activity Dependency Graph (paper §4, Figure 1).
//
// "Each activity corresponds to a muscle execution. The first and third
//  columns represent the start and end time respectively. They could be an
//  actual time (already passed); or a best effort estimated time; or a
//  limited LP estimated time."
//
// An Activity here carries the *actual* facts (state, actual start/end) plus
// the duration estimate t(m); the estimated start/end columns are produced by
// the schedulers in best_effort.* and limited_lp.*.

#include <string>
#include <vector>

#include "util/clock.hpp"

namespace askel {

enum class ActivityState : int {
  kDone,     // muscle finished: start and end are actual times
  kRunning,  // muscle started: start is actual, end is to be estimated
  kPending,  // muscle not started: both are to be estimated
};

std::string to_string(ActivityState s);

struct Activity {
  /// Snapshot-local id; equals the activity's index in the snapshot and is
  /// strictly greater than every predecessor's id (topological order).
  int id = -1;
  /// Muscle whose execution this activity models (-1 for synthetic nodes).
  int muscle_id = -1;
  /// Display label for figure tables, e.g. "fs", "fe", "fm".
  std::string label;
  ActivityState state = ActivityState::kPending;
  /// Actual start (done/running only).
  TimePoint start = 0.0;
  /// Actual end (done only).
  TimePoint end = 0.0;
  /// t(m) estimate used for running/pending activities.
  Duration est_duration = 0.0;
  /// False when t(m) had never been observed nor initialized; the expansion
  /// then uses 0 and flags the snapshot as incomplete.
  bool has_estimate = true;
  /// Ids of activities that must finish before this one can start.
  std::vector<int> preds;
};

Activity make_done(int muscle_id, std::string label, TimePoint start, TimePoint end,
                   std::vector<int> preds);
Activity make_running(int muscle_id, std::string label, TimePoint start,
                      Duration est_duration, std::vector<int> preds);
Activity make_pending(int muscle_id, std::string label, Duration est_duration,
                      std::vector<int> preds, bool has_estimate = true);

}  // namespace askel
