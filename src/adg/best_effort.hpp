#pragma once
// Best-effort WCT estimation (paper §4): assume infinite LP.
//
//   ti = max over predecessors a of a.tf   (or currentTime if in the past)
//   tf = ti + t(m)                         (or currentTime if in the past)
//
// The best-effort WCT is the end time of the last activity; the peak of its
// concurrency profile is the paper's "optimal LP" (Figure 2: 3 threads).

#include "adg/snapshot.hpp"

namespace askel {

struct ScheduleEntry {
  TimePoint start = 0.0;
  TimePoint end = 0.0;
};

struct Schedule {
  /// Per-activity start/end, indexed by activity id.
  std::vector<ScheduleEntry> entries;
  /// Max end over all activities (absolute time, same epoch as snapshot.now).
  TimePoint wct = 0.0;
};

/// Best-effort schedule of a snapshot (infinite LP).
Schedule best_effort(const AdgSnapshot& g);

}  // namespace askel
