#pragma once
// Analytic WCT bounds — cheaper alternatives to the limited-LP list-schedule
// simulation (the paper's §6 names "analyses of different WCT estimation
// algorithms comparing its overhead costs" as future work; this implements
// the classic candidates).
//
// For a snapshot with remaining work W (sum of running-remainders and pending
// durations), critical path CP (the best-effort WCT) and LP p:
//   * work_bound(g, p)   = now + W / p            (machine-capacity bound)
//   * graham_bound(g, p) = max(CP, work_bound)    (valid lower bound on any
//                                                  p-processor schedule)
//   * graham_upper(g, p) = CP + (W − CP_work)/p   rearranged classic Graham
//     list-scheduling guarantee; here exposed as now-anchored upper bound
//     CP + W/p (slightly loose but O(V+E) to compute).
//
// The greedy list schedule (limited_lp) always lands between graham_bound and
// graham_upper — asserted by property tests.

#include "adg/best_effort.hpp"

namespace askel {

/// Sum of remaining work at `g.now`: pending durations plus the part of
/// running activities that is still ahead of `now`.
double remaining_work(const AdgSnapshot& g);

/// now + W/p.
TimePoint work_bound(const AdgSnapshot& g, int lp);

/// max(best-effort WCT, work bound): a lower bound on the achievable WCT
/// with `lp` workers.
TimePoint graham_bound(const AdgSnapshot& g, int lp);

/// Loose upper bound CP_tail + W/p on what greedy list scheduling can do:
/// best_effort.wct + remaining_work/lp.
TimePoint graham_upper(const AdgSnapshot& g, int lp);

/// Which algorithm the controller uses to evaluate limited-LP completion.
enum class WctAlgorithm : int {
  kListSchedule,  // the paper's greedy simulation (most accurate, O(n² log n))
  kGrahamBound,   // analytic bound (optimistic, O(V+E))
};

/// Dispatch: estimated completion time of `g` under `lp` workers.
TimePoint estimate_wct(const AdgSnapshot& g, int lp, WctAlgorithm algo);

}  // namespace askel
