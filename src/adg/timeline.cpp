#include "adg/timeline.hpp"

#include <algorithm>
#include <map>

#include "adg/best_effort.hpp"

namespace askel {

std::vector<Sample> concurrency_profile(const Schedule& s) {
  // Sum +1/-1 deltas per time point; ends cancel starts at the same instant,
  // which also erases zero-duration activities.
  std::map<TimePoint, int> delta;
  for (const ScheduleEntry& e : s.entries) {
    if (e.end <= e.start) continue;
    delta[e.start] += 1;
    delta[e.end] -= 1;
  }
  std::vector<Sample> profile;
  int level = 0;
  for (const auto& [t, d] : delta) {
    if (d == 0) continue;
    level += d;
    profile.push_back(Sample{t, static_cast<double>(level)});
  }
  return profile;
}

int peak_concurrency(const std::vector<Sample>& profile) {
  double peak = 0.0;
  for (const Sample& s : profile) peak = std::max(peak, s.value);
  return static_cast<int>(peak);
}

int optimal_lp(const AdgSnapshot& g) {
  return peak_concurrency(concurrency_profile(best_effort(g)));
}

}  // namespace askel
