#pragma once
// Concurrency timelines over schedules (paper §4, Figure 2).
//
// "Optimal LP is calculated using a time-line... It shows a maximum
//  requirement of 3 active threads during the interval [75, 90). Therefore
//  the optimal LP for this example is 3 threads."

#include "adg/best_effort.hpp"
#include "util/time_series.hpp"

namespace askel {

/// Step function: number of simultaneously executing activities over time.
/// One sample per change point; zero-duration activities contribute nothing.
std::vector<Sample> concurrency_profile(const Schedule& s);

/// Peak of a concurrency profile (0 for an empty profile).
int peak_concurrency(const std::vector<Sample>& profile);

/// The paper's optimal LP: peak concurrency of the best-effort schedule.
int optimal_lp(const AdgSnapshot& g);

}  // namespace askel
