#include "adg/limited_lp.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>
#include <vector>

namespace askel {

Schedule limited_lp(const AdgSnapshot& g, int lp) {
  if (lp < 1) throw std::invalid_argument("limited_lp: lp must be >= 1");
  const std::size_t n = g.activities.size();
  Schedule s;
  s.entries.resize(n);

  // Pass 1: fix done and running activities; collect running end times.
  std::vector<TimePoint> running_ends;
  std::vector<char> scheduled(n, 0);
  for (const Activity& a : g.activities) {
    if (a.state == ActivityState::kDone) {
      s.entries[a.id] = {a.start, a.end};
      scheduled[a.id] = 1;
      s.wct = std::max(s.wct, a.end);
    } else if (a.state == ActivityState::kRunning) {
      const TimePoint end = std::max(a.start + a.est_duration, g.now);
      s.entries[a.id] = {a.start, end};
      scheduled[a.id] = 1;
      running_ends.push_back(end);
      s.wct = std::max(s.wct, end);
    }
  }

  // Worker availability. Running activities physically occupy threads; if
  // more are running than `lp` (the controller just shrank the pool), the
  // surplus threads park when they finish, so only the `lp`
  // earliest-finishing slots rejoin the pool.
  std::sort(running_ends.begin(), running_ends.end());
  std::multiset<TimePoint> avail;
  const std::size_t reuse = std::min<std::size_t>(running_ends.size(), lp);
  for (std::size_t k = 0; k < reuse; ++k) avail.insert(running_ends[k]);
  for (int k = static_cast<int>(running_ends.size()); k < lp; ++k)
    avail.insert(g.now);

  // Pass 2: greedy list scheduling of pending activities.
  std::vector<int> pending;
  for (const Activity& a : g.activities)
    if (a.state == ActivityState::kPending) pending.push_back(a.id);

  std::size_t left = pending.size();
  std::vector<char> placed(n, 0);
  while (left > 0) {
    int best = -1;
    TimePoint best_ready = 0.0;
    for (const int id : pending) {
      if (placed[id]) continue;
      const Activity& a = g.activities[id];
      bool ready = true;
      TimePoint ready_t = g.now;
      for (const int p : a.preds) {
        if (!scheduled[p]) {
          ready = false;
          break;
        }
        ready_t = std::max(ready_t, s.entries[p].end);
      }
      if (!ready) continue;
      if (best == -1 || ready_t < best_ready) {
        best = id;
        best_ready = ready_t;
      }
    }
    // Topological snapshot order guarantees at least one ready activity.
    assert(best != -1 && "cycle or dangling predecessor in snapshot");
    const auto it = avail.begin();
    const TimePoint worker_free = *it;
    avail.erase(it);
    const TimePoint start = std::max(best_ready, worker_free);
    const TimePoint end = start + g.activities[best].est_duration;
    avail.insert(end);
    s.entries[best] = {start, end};
    scheduled[best] = 1;
    placed[best] = 1;
    s.wct = std::max(s.wct, end);
    --left;
  }
  return s;
}

}  // namespace askel
