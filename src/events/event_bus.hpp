#pragma once
// Listener registry + synchronous dispatch.
//
// Dispatch happens on whichever worker thread emits the event; listeners are
// invoked in registration order and each may replace the partial solution.
// Registration/removal is safe concurrently with dispatch (dispatch works on
// a snapshot of the listener list).

#include <memory>
#include <mutex>
#include <vector>

#include "events/listener.hpp"

namespace askel {

class EventBus {
 public:
  using ListenerPtr = std::shared_ptr<Listener>;

  /// Register a listener; returns an id usable with remove_listener.
  std::uint64_t add_listener(ListenerPtr listener);
  /// Remove a previously registered listener. Returns false if unknown.
  bool remove_listener(std::uint64_t id);
  std::size_t listener_count() const;

  /// Invoke every accepting listener in registration order, threading the
  /// partial solution through them. Returns the final partial solution.
  std::any dispatch(std::any param, const Event& ev) const;

 private:
  struct Entry {
    std::uint64_t id;
    ListenerPtr listener;
  };
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::uint64_t next_id_ = 1;
};

}  // namespace askel
