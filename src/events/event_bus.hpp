#pragma once
// Listener registry + synchronous dispatch.
//
// Dispatch happens on whichever worker thread emits the event; listeners are
// invoked in registration order and each may replace the partial solution.
// Registration/removal is safe concurrently with dispatch.
//
// Dispatch is the per-event hot path of the whole framework (every muscle
// fires Before/After events from pool workers), so it is RCU-style
// read-lock-free. The listener list is an immutable vector published
// through an atomic pointer; writers build a fresh vector under a
// writer-side mutex and retire the old one. Readers pin with a guard
// counter *before* loading the pointer, so a retired vector is only freed
// at a later write once no reader can still be inside it:
//
//   reader:  pin slot++  →  snap = current  →  ...  →  pin slot--
//   writer:  publish next  →  if every pin slot reads 0, free retired
//
// (all seq_cst). If the writer reads a pin slot as 0, every reader pinned
// in that slot that loaded the old pointer has finished; any reader
// pinning later loads `current` after the publish and gets the new vector
// — per slot, so the check holds across all slots. Pin counters are
// striped across cacheline-padded per-thread slots, so concurrent
// dispatchers on different cores don't ping-pong one counter line.
// Readers never block, never allocate, and never touch a mutex; an
// in-flight dispatch simply keeps running against the list as it was when
// the event fired. Retired vectors pile up only while dispatches overlap
// writes, and are swept by the next write (or the destructor). A listener
// may add/remove listeners from inside handle(): the writer path never
// waits on readers, so re-entrant mutation cannot deadlock.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "events/listener.hpp"

namespace askel {

class EventBus {
 public:
  using ListenerPtr = std::shared_ptr<Listener>;

  EventBus() = default;
  /// Callers must ensure no dispatch is in flight at destruction (same
  /// contract as destroying any object while a method runs).
  ~EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Register a listener; returns an id usable with remove_listener.
  std::uint64_t add_listener(ListenerPtr listener);
  /// Remove a previously registered listener. Returns false if unknown.
  bool remove_listener(std::uint64_t id);
  std::size_t listener_count() const;

  /// Invoke every accepting listener in registration order, threading the
  /// partial solution through them. Returns the final partial solution.
  /// Steady-state cost: two guard-counter bumps and one atomic pointer
  /// load; zero locks, zero allocations.
  std::any dispatch(std::any param, const Event& ev) const;

 private:
  struct Entry {
    std::uint64_t id;
    ListenerPtr listener;
  };
  using EntryVec = std::vector<Entry>;

  // One pin-counter stripe per group of threads; padded so dispatchers on
  // different cores touch different cache lines.
  static constexpr std::size_t kReaderSlots = 8;
  struct alignas(64) PinSlot {
    std::atomic<std::int64_t> pins{0};
  };
  /// Stable per-thread stripe index (round-robin assigned).
  static std::size_t reader_slot();

  /// RAII read-side pin: guarantees the vector loaded from current_ stays
  /// allocated until destruction (exception-safe unpin).
  class ReadPin {
   public:
    explicit ReadPin(const EventBus& bus)
        : slot_(bus.readers_[reader_slot()]) {
      slot_.pins.fetch_add(1, std::memory_order_seq_cst);
      snap_ = bus.current_.load(std::memory_order_seq_cst);
    }
    ~ReadPin() { slot_.pins.fetch_sub(1, std::memory_order_seq_cst); }
    ReadPin(const ReadPin&) = delete;
    ReadPin& operator=(const ReadPin&) = delete;
    const EntryVec* get() const { return snap_; }

   private:
    PinSlot& slot_;
    const EntryVec* snap_;
  };

  bool readers_quiescent() const;

  /// Publish `next` as the current list and sweep retired vectors if no
  /// reader is pinned. Caller holds write_mu_.
  void publish_locked(std::unique_ptr<const EntryVec> next);

  std::mutex write_mu_;  // serializes add/remove; never taken by dispatch
  std::atomic<const EntryVec*> current_{nullptr};
  mutable std::array<PinSlot, kReaderSlots> readers_;
  // Every still-allocated snapshot, oldest first; back() is the published
  // one. Guarded by write_mu_.
  std::vector<std::unique_ptr<const EntryVec>> snapshots_;
  std::uint64_t next_id_ = 1;  // guarded by write_mu_
};

}  // namespace askel
