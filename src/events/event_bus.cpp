#include "events/event_bus.hpp"

#include <algorithm>

namespace askel {

std::uint64_t EventBus::add_listener(ListenerPtr listener) {
  std::lock_guard lock(mu_);
  const std::uint64_t id = next_id_++;
  entries_.push_back(Entry{id, std::move(listener)});
  return id;
}

bool EventBus::remove_listener(std::uint64_t id) {
  std::lock_guard lock(mu_);
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [id](const Entry& e) { return e.id == id; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

std::size_t EventBus::listener_count() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

std::any EventBus::dispatch(std::any param, const Event& ev) const {
  std::vector<ListenerPtr> snapshot;
  {
    std::lock_guard lock(mu_);
    snapshot.reserve(entries_.size());
    for (const Entry& e : entries_) snapshot.push_back(e.listener);
  }
  for (const ListenerPtr& l : snapshot) {
    if (l->accepts(ev)) param = l->handle(std::move(param), ev);
  }
  return param;
}

}  // namespace askel
