#include "events/event_bus.hpp"

#include <algorithm>

namespace askel {

std::size_t EventBus::reader_slot() {
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kReaderSlots;
  return slot;
}

bool EventBus::readers_quiescent() const {
  for (const PinSlot& s : readers_) {
    if (s.pins.load(std::memory_order_seq_cst) != 0) return false;
  }
  return true;
}

void EventBus::publish_locked(std::unique_ptr<const EntryVec> next) {
  // Ownership first, publication second: if push_back throws (bad_alloc on
  // reallocation), current_ still points at the previous snapshot and the
  // new vector unwinds cleanly — never the other way around.
  snapshots_.push_back(std::move(next));
  current_.store(snapshots_.back().get(), std::memory_order_seq_cst);
  // Sweep: if no reader is pinned right now, every reader that could have
  // loaded an older snapshot has finished (it pinned before loading), and
  // later readers will load the vector just published — so everything but
  // the published snapshot can go. If readers are in flight we simply keep
  // the retired vectors for a later write's sweep (or the destructor).
  if (snapshots_.size() > 1 && readers_quiescent()) {
    snapshots_.erase(snapshots_.begin(), snapshots_.end() - 1);
  }
}

std::uint64_t EventBus::add_listener(ListenerPtr listener) {
  std::lock_guard lock(write_mu_);
  const std::uint64_t id = next_id_++;
  const EntryVec* cur = snapshots_.empty() ? nullptr : snapshots_.back().get();
  auto next = std::make_unique<EntryVec>();
  next->reserve((cur ? cur->size() : 0) + 1);
  if (cur) *next = *cur;
  next->push_back(Entry{id, std::move(listener)});
  publish_locked(std::move(next));
  return id;
}

bool EventBus::remove_listener(std::uint64_t id) {
  std::lock_guard lock(write_mu_);
  const EntryVec* cur = snapshots_.empty() ? nullptr : snapshots_.back().get();
  if (!cur) return false;
  const auto it = std::find_if(cur->begin(), cur->end(),
                               [id](const Entry& e) { return e.id == id; });
  if (it == cur->end()) return false;  // unknown id: no copy, keep `cur`
  auto next = std::make_unique<EntryVec>();
  next->reserve(cur->size() - 1);
  next->insert(next->end(), cur->begin(), it);
  next->insert(next->end(), it + 1, cur->end());
  publish_locked(std::move(next));
  return true;
}

std::size_t EventBus::listener_count() const {
  const ReadPin pin(*this);
  return pin.get() ? pin.get()->size() : 0;
}

std::any EventBus::dispatch(std::any param, const Event& ev) const {
  const ReadPin pin(*this);
  const EntryVec* snap = pin.get();
  if (!snap) return param;
  for (const Entry& e : *snap) {
    if (e.listener->accepts(ev)) param = e.listener->handle(std::move(param), ev);
  }
  return param;
}

}  // namespace askel
