#include "events/event.hpp"

namespace askel {

std::string to_string(When w) {
  switch (w) {
    case When::kBefore: return "BEFORE";
    case When::kAfter: return "AFTER";
  }
  return "?";
}

std::string to_string(Where w) {
  switch (w) {
    case Where::kSkeleton: return "SKELETON";
    case Where::kSplit: return "SPLIT";
    case Where::kMerge: return "MERGE";
    case Where::kCondition: return "CONDITION";
    case Where::kNested: return "NESTED";
    case Where::kExecute: return "EXECUTE";
  }
  return "?";
}

}  // namespace askel
