#pragma once
// Listener interfaces (paper §3, Listing 2).
//
// A listener receives the partial solution by value and returns it (possibly
// replaced) — this is what lets non-functional code rewrite data in flight
// ("which could be very useful on non-functional concerns like encryption
// during communication").

#include <any>
#include <functional>

#include "events/event.hpp"

namespace askel {

class Listener {
 public:
  virtual ~Listener() = default;

  /// Cheap filter evaluated before `handle`; return false to skip.
  virtual bool accepts(const Event&) const { return true; }

  /// Observe the event; return the (possibly replaced) partial solution.
  virtual std::any handle(std::any param, const Event& ev) = 0;
};

/// Listener from a plain function — the "generic listener" of Listing 2.
class GenericListener final : public Listener {
 public:
  using Fn = std::function<std::any(std::any, const Event&)>;
  explicit GenericListener(Fn fn) : fn_(std::move(fn)) {}
  std::any handle(std::any param, const Event& ev) override {
    return fn_(std::move(param), ev);
  }

 private:
  Fn fn_;
};

/// Listener filtered to one (when, where) pair.
class FilteredListener final : public Listener {
 public:
  using Fn = std::function<std::any(std::any, const Event&)>;
  FilteredListener(When when, Where where, Fn fn)
      : when_(when), where_(where), fn_(std::move(fn)) {}
  bool accepts(const Event& ev) const override {
    return ev.when == when_ && ev.where == where_;
  }
  std::any handle(std::any param, const Event& ev) override {
    return fn_(std::move(param), ev);
  }

 private:
  When when_;
  Where where_;
  Fn fn_;
};

/// Observe-only listener (never touches the partial solution).
class ObserverListener final : public Listener {
 public:
  using Fn = std::function<void(const Event&)>;
  explicit ObserverListener(Fn fn) : fn_(std::move(fn)) {}
  std::any handle(std::any param, const Event& ev) override {
    fn_(ev);
    return param;
  }

 private:
  Fn fn_;
};

}  // namespace askel
