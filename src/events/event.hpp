#pragma once
// Event vocabulary of the skeleton framework (paper §3).
//
// Events are emitted synchronously by the execution engine around every
// muscle invocation, ON THE SAME THREAD as the muscle ("it is guaranteed that
// the handler is executed on the same thread than the related muscle").
// The notation in the paper is `∆@when(info)`, e.g. `map(fs,∆,fm)@as(i,
// fsCard)` = Map After Split with the instance index i and the observed split
// cardinality.
//
// Every dynamic skeleton instance gets a unique index `i` (exec_id here); all
// events of one instance share it, which is how Before/After pairs and state
// machines correlate (the `[idx == i]` guards of Figures 3 and 4).

#include <any>
#include <cstdint>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace askel {

class SkelNode;  // defined in skel/node.hpp; events never dereference it

/// Before or after the thing named by `Where`.
enum class When : std::uint8_t { kBefore, kAfter };

/// Which part of the skeleton the event surrounds.
enum class Where : std::uint8_t {
  kSkeleton,   // whole-skeleton begin/end
  kSplit,      // split muscle fs
  kMerge,      // merge muscle fm
  kCondition,  // condition muscle fc
  kNested,     // a nested skeleton element (map/fork child, pipe stage, ...)
  kExecute,    // execution muscle fe (seq)
};

std::string to_string(When w);
std::string to_string(Where w);

/// Dynamic call-stack of skeleton nodes from the root to the current one
/// (the `Skeleton[] st` parameter of Skandium's generic listener).
using Trace = std::vector<const SkelNode*>;

/// One event occurrence. Copied into listeners; the partial solution travels
/// separately (by value) so listeners can replace it.
struct Event {
  When when = When::kBefore;
  Where where = Where::kSkeleton;
  /// Unique id of the dynamic skeleton instance this event belongs to
  /// (the paper's `i`).
  std::int64_t exec_id = -1;
  /// exec_id of the enclosing dynamic instance, or -1 at the root. This is
  /// how the tracker layer reconstructs the dynamic nesting tree.
  std::int64_t parent_exec_id = -1;
  /// Static node emitting the event.
  const SkelNode* node = nullptr;
  /// Id of the muscle about to run / having run, or -1 for kSkeleton/kNested.
  int muscle_id = -1;
  /// Engine-clock timestamp.
  TimePoint timestamp = 0.0;
  /// Dynamic trace root→current.
  Trace trace;

  // --- event-specific extras -------------------------------------------
  /// kSplit/kAfter: number of sub-problems produced (the paper's fsCard).
  int cardinality = -1;
  /// kCondition/kAfter: the condition muscle's result.
  bool condition_result = false;
  /// kNested: zero-based index of the child element within its parent.
  int child_index = -1;
};

}  // namespace askel
