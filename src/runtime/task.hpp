#pragma once
// Task type executed by the pool: a move-only thunk.

#include <functional>

namespace askel {

using Task = std::function<void()>;

}  // namespace askel
