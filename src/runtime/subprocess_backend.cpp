#include "runtime/subprocess_backend.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <thread>

namespace askel {
namespace {

// ---- raw fd helpers, shared with the fork child (async-signal-safe) -------

bool write_full(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t at = 0;
  while (at < size) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process.
    const ssize_t n = ::send(fd, data + at, size - at, MSG_NOSIGNAL);
    if (n > 0) {
      at += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool read_full(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t at = 0;
  while (at < size) {
    const ssize_t n = ::read(fd, data + at, size - at);
    if (n > 0) {
      at += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error
  }
  return true;
}

// ---- the worker child ------------------------------------------------------

/// Fork-without-exec body. The parent is multi-threaded, so everything here
/// must be async-signal-safe: raw read/write on fixed stack buffers, _exit.
/// encode/decode are heap-free by design (transport.hpp).
[[noreturn]] void worker_child_loop(int fd, int worker, int crash_after) {
  const WireFrameBytes hello =
      encode_frame(WireFrame{WireFrameType::kHello, static_cast<std::uint32_t>(worker),
                         0, static_cast<std::uint64_t>(::getpid()), 0});
  if (!write_full(fd, hello.data(), hello.size())) _exit(1);
  std::uint8_t buf[kWireFrameSize];
  int tasks = 0;
  for (;;) {
    if (!read_full(fd, buf, kWireFrameSize)) _exit(0);  // pool went away
    WireFrame f;
    if (!decode_frame(buf, kWireFrameSize, f)) _exit(2);
    switch (f.type) {
      case WireFrameType::kSubmit: {
        ++tasks;
        if (crash_after > 0 && tasks >= crash_after) _exit(17);  // test hook
        const WireFrameBytes c = encode_frame(
            WireFrame{WireFrameType::kComplete, static_cast<std::uint32_t>(worker),
                  f.seq, 0, 0});
        if (!write_full(fd, c.data(), c.size())) _exit(0);
        break;
      }
      case WireFrameType::kHeartbeat: {
        const WireFrameBytes a = encode_frame(
            WireFrame{WireFrameType::kHeartbeatAck, static_cast<std::uint32_t>(worker),
                  f.seq, 0, 0});
        if (!write_full(fd, a.data(), a.size())) _exit(0);
        break;
      }
      case WireFrameType::kRetire: {
        const WireFrameBytes r = encode_frame(
            WireFrame{WireFrameType::kRetired, static_cast<std::uint32_t>(worker),
                  f.seq, 0, 0});
        write_full(fd, r.data(), r.size());  // best effort
        _exit(0);
      }
      case WireFrameType::kStealHint:
      default:
        break;  // advisory / unknown: ignore
    }
  }
}

// ---- the parent-side transport ---------------------------------------------

class PipeTransport final : public Transport {
 public:
  PipeTransport(int fd, pid_t pid, SubprocessTransportFactory* factory)
      : fd_(fd), pid_(pid), factory_(factory) {}
  ~PipeTransport() override { close(); }

  bool send(const WireFrame& f) override {
    std::lock_guard lock(mu_);
    if (fd_ < 0) return false;
    const WireFrameBytes bytes = encode_frame(f);
    if (!write_full(fd_, bytes.data(), bytes.size())) {
      alive_.store(false, std::memory_order_release);
      return false;
    }
    return true;
  }

  bool recv(WireFrame& out, Duration timeout) override {
    if (fd_ < 0) return false;
    // Deadline-honoring frame read: poll before EVERY read, never a
    // blocking read_full — a child stalled mid-frame (descheduled after a
    // partial write) must not wedge the caller past `timeout`; the lease
    // recovery in task_end depends on recv actually returning.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(std::max(0.0, timeout));
    std::uint8_t buf[kWireFrameSize];
    std::size_t at = 0;
    while (at < kWireFrameSize) {
      const double remaining_s =
          std::chrono::duration<double>(deadline -
                                        std::chrono::steady_clock::now())
              .count();
      if (remaining_s <= 0.0) {
        // Plain timeout with nothing read is just "no frame"; a timeout
        // MID-frame means the byte stream is desynced for good — poison
        // the link so the session is recovered instead of re-waiting.
        if (at != 0) alive_.store(false, std::memory_order_release);
        return false;
      }
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      int r;
      do {
        r = ::poll(&pfd, 1,
                   static_cast<int>(std::ceil(remaining_s * 1000.0)));
      } while (r < 0 && errno == EINTR);
      if (r <= 0) continue;  // loop re-checks the deadline
      const ssize_t n = ::read(fd_, buf + at, kWireFrameSize - at);
      if (n > 0) {
        at += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      alive_.store(false, std::memory_order_release);  // EOF: the child died
      return false;
    }
    if (!decode_frame(buf, kWireFrameSize, out)) {
      alive_.store(false, std::memory_order_release);  // garbage on the wire
      return false;
    }
    return true;
  }

  bool alive() const override { return alive_.load(std::memory_order_acquire); }

  void close() override {
    // Pure teardown: the Retire frame (when one is due) is the session
    // layer's business (RemoteWorkerBackend::release); here the fd close
    // delivers EOF, which the child also treats as "retire now".
    std::lock_guard lock(mu_);
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      if (factory_ != nullptr) factory_->forget_parent_fd(fd_);
      fd_ = -1;
    }
    alive_.store(false, std::memory_order_release);
    reap_locked();
  }

 private:
  void reap_locked() {
    if (pid_ <= 0) return;
    // close() can run under the pool's control mutex (shrink path), so the
    // grace period must stay tiny: a healthy child exits on Retire/EOF in
    // well under a millisecond, and after SIGKILL waitpid returns
    // immediately even for a wedged (e.g. stopped) child.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
    for (;;) {
      const pid_t r = ::waitpid(pid_, nullptr, WNOHANG);
      if (r == pid_ || (r < 0 && errno == ECHILD)) {
        pid_ = -1;
        return;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(pid_, SIGKILL);
        ::waitpid(pid_, nullptr, 0);
        pid_ = -1;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  int fd_ = -1;
  pid_t pid_ = -1;
  std::atomic<bool> alive_{true};
  SubprocessTransportFactory* factory_ = nullptr;  // outlives every session
  std::mutex mu_;  // send/close vs each other (recv stays lease-owner-only)
};

}  // namespace

SubprocessTransportFactory::SubprocessTransportFactory(
    SubprocessBackendConfig cfg)
    : cfg_(cfg) {}

TransportFactory::Connect SubprocessTransportFactory::try_connect(int worker) {
  if (worker >= cfg_.max_workers) return Connect{nullptr, true};
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    return Connect{nullptr, true};
  }
  std::vector<int> inherited;
  {
    std::lock_guard lock(mu_);
    inherited = parent_fds_;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return Connect{nullptr, true};
  }
  if (pid == 0) {
    // Drop every inherited sibling-session fd (reading the vector and
    // close() are async-signal-safe); keep only our own socket.
    for (const int fd : inherited) {
      if (fd != sv[1]) ::close(fd);
    }
    ::close(sv[0]);
    worker_child_loop(sv[1], worker, cfg_.crash_after_tasks);
  }
  ::close(sv[1]);
  {
    std::lock_guard lock(mu_);
    parent_fds_.push_back(sv[0]);
  }
  auto transport = std::make_unique<PipeTransport>(sv[0], pid, this);
  WireFrame hello;
  if (!transport->recv(hello, cfg_.hello_timeout) ||
      hello.type != WireFrameType::kHello) {
    return Connect{nullptr, true};  // transport dtor retires + reaps the child
  }
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  {
    std::lock_guard lock(mu_);
    join_us_.push_back(us);
  }
  return Connect{std::move(transport), false};
}

std::vector<double> SubprocessTransportFactory::join_latencies_us() const {
  std::lock_guard lock(mu_);
  return join_us_;
}

void SubprocessTransportFactory::forget_parent_fd(int fd) {
  std::lock_guard lock(mu_);
  std::erase(parent_fds_, fd);
}

}  // namespace askel
