#include "runtime/subprocess_backend.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>

#include "runtime/frame_io.hpp"

namespace askel {
namespace {

// ---- the worker child ------------------------------------------------------

/// Fork-without-exec body. The parent is multi-threaded, so everything here
/// must be async-signal-safe: raw read/write on fixed stack buffers, _exit.
/// encode/decode and frame_io::{read,write}_full are heap-free by design.
[[noreturn]] void worker_child_loop(int fd, int worker, int crash_after) {
  const WireFrameBytes hello =
      encode_frame(WireFrame{WireFrameType::kHello, static_cast<std::uint32_t>(worker),
                         0, static_cast<std::uint64_t>(::getpid()), 0});
  if (!frame_io::write_full(fd, hello.data(), hello.size())) _exit(1);
  std::uint8_t buf[kWireFrameSize];
  int tasks = 0;
  for (;;) {
    if (!frame_io::read_full(fd, buf, kWireFrameSize)) _exit(0);  // pool went away
    WireFrame f;
    if (!decode_frame(buf, kWireFrameSize, f)) _exit(2);
    switch (f.type) {
      case WireFrameType::kSubmit: {
        ++tasks;
        if (crash_after > 0 && tasks >= crash_after) _exit(17);  // test hook
        const WireFrameBytes c = encode_frame(
            WireFrame{WireFrameType::kComplete, static_cast<std::uint32_t>(worker),
                  f.seq, 0, 0});
        if (!frame_io::write_full(fd, c.data(), c.size())) _exit(0);
        break;
      }
      case WireFrameType::kHeartbeat: {
        const WireFrameBytes a = encode_frame(
            WireFrame{WireFrameType::kHeartbeatAck, static_cast<std::uint32_t>(worker),
                  f.seq, 0, 0});
        if (!frame_io::write_full(fd, a.data(), a.size())) _exit(0);
        break;
      }
      case WireFrameType::kSubmitNamed: {
        // The fork child cannot safely run a muscle table (std::function in
        // a post-fork address space that may hold foreign locks). Consume
        // the argument payload chunk-wise on the stack to keep the stream
        // in sync, then answer kUnsupported — heap-free, never a torn link.
        if (f.b > kMaxNamedPayload) _exit(2);  // poisoned stream
        std::uint8_t sink[256];
        std::uint64_t left = f.b;
        while (left > 0) {
          const std::size_t chunk =
              left < sizeof(sink) ? static_cast<std::size_t>(left) : sizeof(sink);
          if (!frame_io::read_full(fd, sink, chunk)) _exit(0);
          left -= chunk;
        }
        const WireFrameBytes r = encode_frame(WireFrame{
            WireFrameType::kResultNamed, static_cast<std::uint32_t>(worker),
            f.seq,
            static_cast<std::uint64_t>(NamedStatus::kUnsupported), 0});
        if (!frame_io::write_full(fd, r.data(), r.size())) _exit(0);
        break;
      }
      case WireFrameType::kRetire: {
        const WireFrameBytes r = encode_frame(
            WireFrame{WireFrameType::kRetired, static_cast<std::uint32_t>(worker),
                  f.seq, 0, 0});
        frame_io::write_full(fd, r.data(), r.size());  // best effort
        _exit(0);
      }
      case WireFrameType::kStealHint:
      default:
        break;  // advisory / unknown: ignore
    }
  }
}

// ---- the parent-side transport ---------------------------------------------

/// The shared FdTransport (frame_io.hpp) plus subprocess teardown: when the
/// fd closes, un-register it from the factory's inherit list and reap the
/// child. The frame I/O itself — MSG_NOSIGNAL sends, the anchored-deadline
/// recv — is the one audited copy in frame_io.cpp, identical to TCP's.
class PipeTransport final : public FdTransport {
 public:
  PipeTransport(int fd, pid_t pid, SubprocessTransportFactory* factory)
      : FdTransport(fd), pid_(pid), factory_(factory) {}
  // Close from the most-derived dtor so on_close_locked still sees a whole
  // PipeTransport (the base dtor's backstop close would not).
  ~PipeTransport() override { close(); }

 protected:
  void on_close_locked(int fd) override {
    // Pure teardown: the Retire frame (when one is due) is the session
    // layer's business (RemoteWorkerBackend::release); the fd close
    // delivers EOF, which the child also treats as "retire now".
    if (factory_ != nullptr) factory_->forget_parent_fd(fd);
    reap();
  }

 private:
  void reap() {
    if (pid_ <= 0) return;
    // close() can run under the pool's control mutex (shrink path), so the
    // grace period must stay tiny: a healthy child exits on Retire/EOF in
    // well under a millisecond, and after SIGKILL waitpid returns
    // immediately even for a wedged (e.g. stopped) child.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
    for (;;) {
      const pid_t r = ::waitpid(pid_, nullptr, WNOHANG);
      if (r == pid_ || (r < 0 && errno == ECHILD)) {
        pid_ = -1;
        return;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(pid_, SIGKILL);
        ::waitpid(pid_, nullptr, 0);
        pid_ = -1;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  pid_t pid_ = -1;
  SubprocessTransportFactory* factory_ = nullptr;  // outlives every session
};

}  // namespace

SubprocessTransportFactory::SubprocessTransportFactory(
    SubprocessBackendConfig cfg)
    : cfg_(cfg) {}

TransportFactory::Connect SubprocessTransportFactory::try_connect(int worker) {
  if (worker >= cfg_.max_workers) return Connect{nullptr, true};
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    return Connect{nullptr, true};
  }
  std::vector<int> inherited;
  {
    std::lock_guard lock(mu_);
    inherited = parent_fds_;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return Connect{nullptr, true};
  }
  if (pid == 0) {
    // Drop every inherited sibling-session fd (reading the vector and
    // close() are async-signal-safe); keep only our own socket.
    for (const int fd : inherited) {
      if (fd != sv[1]) ::close(fd);
    }
    ::close(sv[0]);
    worker_child_loop(sv[1], worker, cfg_.crash_after_tasks);
  }
  ::close(sv[1]);
  {
    std::lock_guard lock(mu_);
    parent_fds_.push_back(sv[0]);
  }
  auto transport = std::make_unique<PipeTransport>(sv[0], pid, this);
  WireFrame hello;
  if (!transport->recv(hello, cfg_.hello_timeout) ||
      hello.type != WireFrameType::kHello) {
    return Connect{nullptr, true};  // transport dtor retires + reaps the child
  }
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  {
    std::lock_guard lock(mu_);
    join_us_.push_back(us);
  }
  return Connect{std::move(transport), false};
}

std::vector<double> SubprocessTransportFactory::join_latencies_us() const {
  std::lock_guard lock(mu_);
  return join_us_;
}

void SubprocessTransportFactory::forget_parent_fd(int fd) {
  std::lock_guard lock(mu_);
  std::erase(parent_fds_, fd);
}

}  // namespace askel
