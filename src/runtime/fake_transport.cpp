#include "runtime/fake_transport.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <thread>

namespace askel {

namespace {

/// SplitMix64: tiny, seedable, identical on every platform.
std::uint64_t next_rng(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::int64_t to_us(Duration d) {
  return static_cast<std::int64_t>(std::llround(d * 1e6));
}

}  // namespace

class FakeWorkerTransport;

struct FakeTransportFactory::State {
  mutable std::mutex mu;
  FakeFaultPlan plan;
  const Clock* clock = nullptr;
  std::uint64_t rng = 0;
  int fail_left = 0;
  int connects = 0;
  std::uint64_t next_order = 0;  // delivery tie-break, totally ordered
  std::vector<std::string> trace;
  std::map<int, std::int64_t> ready_at_us;  // pending joins

  std::int64_t now_us() const { return to_us(clock->now()); }

  bool in_partition(std::int64_t t_us) const {
    for (const auto& [from, to] : plan.partitions) {
      if (t_us >= to_us(from) && t_us < to_us(to)) return true;
    }
    return false;
  }

  void log(std::int64_t t_us, int worker, std::string what) {
    trace.push_back("t=" + std::to_string(t_us) + " w" +
                    std::to_string(worker) + " " + std::move(what));
  }
};

/// One fake remote worker. All state lives under the factory mutex so the
/// trace is a total order across workers.
class FakeWorkerTransport final : public Transport {
 public:
  FakeWorkerTransport(FakeTransportFactory::State& st, int worker)
      : st_(st), worker_(worker) {}

  bool send(const WireFrame& f) override {
    std::lock_guard lock(st_.mu);
    const std::int64_t now = st_.now_us();
    if (!alive_) {
      st_.log(now, worker_, std::string("send ") + to_string(f.type) +
                                " -> dead link");
      return false;
    }
    switch (f.type) {
      case WireFrameType::kSubmit: {
        ++submits_;
        // Batched leases (b = bracket count) trace the count; the legacy
        // b == 0 line is byte-identical to before, so unbatched golden
        // hashes are unaffected.
        st_.log(now, worker_,
                "submit seq=" + std::to_string(f.seq) +
                    " hint=" + std::to_string(f.a) +
                    (f.b > 0 ? " n=" + std::to_string(f.b) : std::string{}));
        if (worker_ == st_.plan.crash_worker &&
            st_.plan.crash_on_nth_task > 0 &&
            submits_ >= st_.plan.crash_on_nth_task) {
          // The write made it out; the worker died executing the lease, so
          // no completion ever comes back and the link reads as dead.
          alive_ = false;
          st_.log(now, worker_, "crash on task " + std::to_string(submits_));
          return true;
        }
        if (st_.in_partition(now)) {
          st_.log(now, worker_,
                  "submit seq=" + std::to_string(f.seq) + " lost in partition");
          return true;  // the local write "succeeded"; the remote never saw it
        }
        schedule_completion_locked(now, f.seq);
        return true;
      }
      case WireFrameType::kHeartbeat: {
        st_.log(now, worker_, "heartbeat seq=" + std::to_string(f.seq));
        if (st_.in_partition(now)) {
          st_.log(now, worker_, "heartbeat seq=" + std::to_string(f.seq) +
                                    " lost in partition");
          return true;
        }
        deliver_later_locked(
            WireFrame{WireFrameType::kHeartbeatAck, static_cast<std::uint32_t>(worker_),
                  f.seq, 0, 0},
            now + to_us(st_.plan.heartbeat_latency));
        return true;
      }
      case WireFrameType::kStealHint:
        st_.log(now, worker_, "steal-hint depth=" + std::to_string(f.a));
        return true;
      case WireFrameType::kRetire:
        st_.log(now, worker_, "retired");
        alive_ = false;  // graceful exit: the fake worker just leaves
        return true;
      default:
        st_.log(now, worker_, std::string("send ") + to_string(f.type));
        return true;
    }
  }

  bool send(const WireFrame& f, const std::uint8_t* payload,
            std::size_t size) override {
    if (!frame_has_payload(f.type)) return size == 0 ? send(f) : false;
    std::lock_guard lock(st_.mu);
    const std::int64_t now = st_.now_us();
    if (!alive_) {
      st_.log(now, worker_, std::string("send ") + to_string(f.type) +
                                " -> dead link");
      return false;
    }
    // Named submits share the per-worker submit counter, so a crash-on-Nth
    // plan fires identically whichever dialect the Nth submission used.
    ++submits_;
    st_.log(now, worker_,
            "submit-named seq=" + std::to_string(f.seq) + " id=" +
                std::to_string(f.a) + " len=" + std::to_string(size));
    if (worker_ == st_.plan.crash_worker && st_.plan.crash_on_nth_task > 0 &&
        submits_ >= st_.plan.crash_on_nth_task) {
      alive_ = false;
      st_.log(now, worker_, "crash on task " + std::to_string(submits_));
      return true;
    }
    if (st_.in_partition(now)) {
      st_.log(now, worker_, "submit-named seq=" + std::to_string(f.seq) +
                                " lost in partition");
      return true;
    }
    // The fake worker "executes" by echoing the argument back as the
    // result: deterministic, and round-trips the codec end to end.
    Msg m{now + to_us(st_.plan.complete_latency), st_.next_order++,
          WireFrame{WireFrameType::kResultNamed,
                    static_cast<std::uint32_t>(worker_), f.seq,
                    static_cast<std::uint64_t>(NamedStatus::kOk),
                    static_cast<std::uint64_t>(size)},
          std::vector<std::uint8_t>(payload, payload + size)};
    st_.log(now, worker_, "result-named seq=" + std::to_string(f.seq) +
                              " due t=" + std::to_string(m.due_us));
    inbox_.push_back(std::move(m));
    return true;
  }

  bool recv(WireFrame& out, Duration timeout) override {
    return recv_impl(out, nullptr, timeout);
  }

  bool recv(WireFrame& out, std::vector<std::uint8_t>& payload,
            Duration timeout) override {
    return recv_impl(out, &payload, timeout);
  }

  bool alive() const override {
    std::lock_guard lock(st_.mu);
    return alive_;
  }

  void close() override {
    std::lock_guard lock(st_.mu);
    if (alive_) st_.log(st_.now_us(), worker_, "closed");
    alive_ = false;
  }

 private:
  struct Msg {
    std::int64_t due_us;
    std::uint64_t order;
    WireFrame frame;
    std::vector<std::uint8_t> payload;  // kResultNamed only
  };

  bool recv_impl(WireFrame& out, std::vector<std::uint8_t>* payload,
                 Duration timeout) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(std::max(0.0, timeout));
    for (;;) {
      {
        std::lock_guard lock(st_.mu);
        const std::int64_t now = st_.now_us();
        if (pop_due_locked(now, out, payload)) return true;
        if (!alive_) return false;
      }
      // Virtual time never waits: nothing is due at this instant and only
      // the test can advance the clock. Real time polls until the deadline.
      if (st_.plan.virtual_time) return false;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  void deliver_later_locked(const WireFrame& f, std::int64_t due_us) {
    inbox_.push_back(Msg{due_us, st_.next_order++, f, {}});
  }

  void schedule_completion_locked(std::int64_t now, std::uint64_t seq) {
    ++completions_;
    std::int64_t service = to_us(st_.plan.complete_latency);
    if (st_.plan.complete_jitter > 0.0) {
      const std::int64_t range = std::max<std::int64_t>(
          1, to_us(st_.plan.complete_jitter));
      service += static_cast<std::int64_t>(next_rng(st_.rng) %
                                           static_cast<std::uint64_t>(range));
    }
    const std::int64_t due = now + service;
    const WireFrame c{WireFrameType::kComplete, static_cast<std::uint32_t>(worker_),
                  seq, 0, 0};
    const auto hits = [&](int every) {
      return every > 0 && completions_ % every == 0;
    };
    if (hits(st_.plan.drop_complete_every)) {
      st_.log(now, worker_, "complete seq=" + std::to_string(seq) + " dropped");
      return;
    }
    if (hits(st_.plan.reorder_complete_every)) {
      st_.log(now, worker_,
              "complete seq=" + std::to_string(seq) + " held for reorder");
      held_ = Msg{due, st_.next_order++, c, {}};
      return;
    }
    deliver_later_locked(c, due);
    st_.log(now, worker_, "complete seq=" + std::to_string(seq) + " due t=" +
                              std::to_string(due));
    if (hits(st_.plan.dup_complete_every)) {
      deliver_later_locked(c, due + 1);
      st_.log(now, worker_,
              "complete seq=" + std::to_string(seq) + " duplicated");
    }
    if (held_) {
      // The held (reordered) completion is released only after this newer
      // one, so it arrives stale.
      Msg released = std::move(*held_);
      held_.reset();
      released.due_us = due + 2;
      released.order = st_.next_order++;
      st_.log(now, worker_,
              "complete seq=" + std::to_string(released.frame.seq) +
                  " released after seq=" + std::to_string(seq));
      inbox_.push_back(std::move(released));
    }
  }

  bool pop_due_locked(std::int64_t now, WireFrame& out,
                      std::vector<std::uint8_t>* payload) {
    for (;;) {
      std::size_t best = inbox_.size();
      for (std::size_t k = 0; k < inbox_.size(); ++k) {
        if (inbox_[k].due_us > now) continue;
        if (best == inbox_.size() ||
            inbox_[k].due_us < inbox_[best].due_us ||
            (inbox_[k].due_us == inbox_[best].due_us &&
             inbox_[k].order < inbox_[best].order)) {
          best = k;
        }
      }
      if (best == inbox_.size()) return false;
      Msg m = std::move(inbox_[best]);
      inbox_.erase(inbox_.begin() + static_cast<std::ptrdiff_t>(best));
      if (st_.in_partition(m.due_us)) {
        st_.log(now, worker_,
                std::string(to_string(m.frame.type)) + " seq=" +
                    std::to_string(m.frame.seq) + " dropped in partition");
        continue;  // it was in flight during a blackout: lost
      }
      st_.log(now, worker_, std::string("deliver ") +
                                to_string(m.frame.type) + " seq=" +
                                std::to_string(m.frame.seq));
      out = m.frame;
      if (payload != nullptr) {
        *payload = std::move(m.payload);
      }
      return true;
    }
  }

  FakeTransportFactory::State& st_;
  const int worker_;
  bool alive_ = true;
  int submits_ = 0;
  int completions_ = 0;
  std::vector<Msg> inbox_;
  std::optional<Msg> held_;
};

FakeTransportFactory::FakeTransportFactory(FakeFaultPlan plan,
                                           const Clock* clock)
    : st_(std::make_unique<State>()) {
  st_->plan = std::move(plan);
  st_->clock = clock;
  st_->rng = st_->plan.seed;
  st_->fail_left = st_->plan.fail_next_provisions;
}

FakeTransportFactory::~FakeTransportFactory() = default;

TransportFactory::Connect FakeTransportFactory::try_connect(int worker) {
  std::lock_guard lock(st_->mu);
  const std::int64_t now = st_->now_us();
  if (st_->fail_left > 0) {
    --st_->fail_left;
    st_->log(now, worker, "provision refused");
    return Connect{nullptr, true};
  }
  auto [it, fresh] = st_->ready_at_us.try_emplace(
      worker, now + to_us(st_->plan.provision_latency));
  if (fresh) {
    st_->log(now, worker, "join requested, ready t=" + std::to_string(it->second));
  }
  if (now < it->second) return Connect{};  // still joining
  st_->ready_at_us.erase(it);
  ++st_->connects;
  st_->log(now, worker, "joined");
  return Connect{std::make_unique<FakeWorkerTransport>(*st_, worker), false};
}

std::vector<std::string> FakeTransportFactory::trace() const {
  std::lock_guard lock(st_->mu);
  return st_->trace;
}

std::uint64_t FakeTransportFactory::trace_hash() const {
  std::lock_guard lock(st_->mu);
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for (const std::string& line : st_->trace) {
    for (const char c : line) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    h ^= static_cast<std::uint8_t>('\n');
    h *= 1099511628211ull;
  }
  return h;
}

int FakeTransportFactory::connects() const {
  std::lock_guard lock(st_->mu);
  return st_->connects;
}

}  // namespace askel
