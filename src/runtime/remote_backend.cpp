#include "runtime/remote_backend.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace askel {

namespace {
// Lease token handed out by the batched task_begin: "this bracket is part of
// the session's open batch window" — no wire sequence exists for it yet.
// Real sequence numbers start at 1 and could only collide after 2^64-1
// leases.
constexpr std::uint64_t kBatchToken = ~std::uint64_t{0};
}  // namespace

RemoteWorkerBackend::RemoteWorkerBackend(TransportFactory& factory,
                                         RemoteBackendConfig cfg)
    : factory_(factory), cfg_(cfg) {
  // All session slots exist up front (stable addresses: worker threads index
  // them with no backend lock; only the per-session mutex is taken).
  sessions_.reserve(static_cast<std::size_t>(std::max(1, cfg_.max_workers)));
  for (int k = 0; k < std::max(1, cfg_.max_workers); ++k) {
    sessions_.push_back(std::make_unique<Session>());
  }
}

RemoteWorkerBackend::~RemoteWorkerBackend() {
  cancel();
  // Transports close in their destructors (sessions own them).
}

void RemoteWorkerBackend::bind(ProvisionResult on_result) {
  std::lock_guard lock(mu_);
  result_ = std::move(on_result);
}

bool RemoteWorkerBackend::session_live(int worker) const {
  if (worker < 0 || worker >= static_cast<int>(sessions_.size())) return false;
  Session& s = *sessions_[static_cast<std::size_t>(worker)];
  // try_lock: a session whose mutex is held is mid-lease, i.e. live enough
  // for provisioning purposes — and blocking here (under the provision
  // mutex, itself under the pool's control mutex) on a lease that may wait
  // out a completion timeout would stall the pool's whole control plane.
  std::unique_lock lock(s.mu, std::try_to_lock);
  if (!lock.owns_lock()) return true;
  return s.transport != nullptr && s.transport->alive();
}

WorkerBackend::Provision RemoteWorkerBackend::provision(int have, int want) {
  (void)have;  // what matters is which sessions are live, not the pool's view
  if (want > static_cast<int>(sessions_.size())) return Provision::kFailed;
  // Growing over a worker cancels any deferred retire still pending on it.
  for (int w = 0; w < want; ++w) {
    sessions_[static_cast<std::size_t>(w)]->retire_requested.store(
        false, std::memory_order_relaxed);
  }
  bool all = true;
  for (int w = 0; w < want && all; ++w) all = session_live(w);
  if (all) {
    // This want is satisfied: any older, larger pending target is stale
    // (the pool's requested LP moved on), so stop chasing it — otherwise
    // the provision thread keeps forking workers nobody asked for and
    // eventually reports a phantom failure.
    std::lock_guard lock(mu_);
    pending_target_ = 0;
    return Provision::kReady;
  }
  std::lock_guard lock(mu_);
  // The connect deadline anchors at the first request for this target: a
  // coordinator re-arbitrating every few hundred ms re-issues the same
  // pool target, and resetting the clock each time would slide the
  // deadline forever — a stuck join would never fail, never surface, and
  // the stranded-grant reclaim would never run.
  if (pending_target_ != want) {
    pending_target_ = want;
    pending_since_ = cfg_.clock->now();
  }
  if (!cfg_.manual_pump && !provision_thread_.joinable()) {
    stop_ = false;
    provision_thread_ =
        std::jthread([this](std::stop_token st) { provision_loop(st); });
  }
  provision_cv_.notify_all();
  return Provision::kPending;
}

bool RemoteWorkerBackend::pump_step(Outcome& out) {
  std::unique_lock lock(mu_);
  const int target = pending_target_;
  if (target == 0) return false;
  std::vector<int> missing;
  for (int w = 0; w < target; ++w) {
    if (!session_live(w)) missing.push_back(w);
  }
  if (missing.empty()) {
    pending_target_ = 0;
    out = Outcome{result_, target, true};
    return true;
  }
  // One join attempt per missing worker, so a batch grow starts every join
  // clock in the same pass. The factory may block (a real fork + hello round
  // trip): never under mu_, or the pool's control plane would stall behind a
  // slow join.
  lock.unlock();
  bool failed = false;
  std::vector<std::pair<int, std::unique_ptr<Transport>>> joined;
  for (const int w : missing) {
    TransportFactory::Connect c = factory_.try_connect(w);
    if (c.failed) {
      failed = true;
      break;
    }
    if (c.transport != nullptr) joined.emplace_back(w, std::move(c.transport));
  }
  lock.lock();
  // Sessions that joined are installed regardless of staleness — remote
  // capacity is additive and a superseding request will want them too.
  for (auto& [w, transport] : joined) {
    Session& s = *sessions_[static_cast<std::size_t>(w)];
    std::lock_guard slock(s.mu);
    s.transport = std::move(transport);
    s.next_seq = 1;
    s.last_accounted = 0;
    s.open_lease = 0;
    s.batch_count = 0;
    s.retire_requested.store(false, std::memory_order_relaxed);
    sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  }
  if (pending_target_ != target) return true;  // superseded; re-evaluate
  if (failed) {
    pending_target_ = 0;
    provision_failures_.fetch_add(1, std::memory_order_relaxed);
    out = Outcome{result_, target, false};
    return true;
  }
  bool all = true;
  for (int w = 0; w < target && all; ++w) all = session_live(w);
  if (all) {
    pending_target_ = 0;
    out = Outcome{result_, target, true};
    return true;
  }
  // Still joining: fail the whole request once the connect deadline passes.
  if (cfg_.clock->now() - pending_since_ >= cfg_.connect_timeout) {
    pending_target_ = 0;
    provision_failures_.fetch_add(1, std::memory_order_relaxed);
    out = Outcome{result_, target, false};
    return true;
  }
  return !joined.empty();
}

void RemoteWorkerBackend::pump() {
  // Manual mode has no heartbeat sweep: the pump is also where stale batch
  // windows flush once the virtual clock passed their deadline.
  if (cfg_.lease_batch > 1) {
    for (int w = 0; w < static_cast<int>(sessions_.size()); ++w) {
      flush_stale_batch(w);
    }
  }
  for (;;) {
    Outcome out;
    const bool progressed = pump_step(out);
    if (out.cb) {
      // No backend lock held: the callback takes the pool mutex and may
      // re-enter provision() (coordinator reclaim -> retry grow).
      out.cb(out.target, out.ok);
      continue;
    }
    if (!progressed) return;
  }
}

void RemoteWorkerBackend::provision_loop(const std::stop_token& st) {
  for (;;) {
    bool have_pending = false;
    {
      std::unique_lock lock(mu_);
      const Duration interval =
          cfg_.heartbeat_interval > 0.0 ? cfg_.heartbeat_interval : 3600.0;
      provision_cv_.wait_for(lock, std::chrono::duration<double>(interval),
                             [&] {
                               return stop_ || st.stop_requested() ||
                                      pending_target_ > 0;
                             });
      if (stop_ || st.stop_requested()) return;
      have_pending = pending_target_ > 0;
    }
    if (!have_pending) {
      // Idle: this is where partitions on quiet sessions get detected —
      // a lease-free live session that stops answering heartbeats is
      // declared lost (and re-provisioned on the next grow).
      heartbeat_sweep();
      continue;
    }
    Outcome out;
    const bool progressed = pump_step(out);
    if (out.cb) out.cb(out.target, out.ok);
    if (!progressed) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void RemoteWorkerBackend::heartbeat_sweep() {
  if (cfg_.heartbeat_interval <= 0.0) return;
  for (int w = 0; w < static_cast<int>(sessions_.size()); ++w) {
    // Probe BEFORE flushing: a stale window on a partitioned worker would
    // otherwise flush into the void and wait out a whole complete_timeout
    // (holding the session mutex, stalling the rest of the sweep) before
    // the probe could run — partition detection mid-batch would take
    // complete_timeout + heartbeat_timeout instead of one heartbeat. The
    // probe tears the dead session down first, so the stale window is
    // dropped — never leased into a partition.
    //
    // session_live's try_lock makes this a cheap scan; probe() itself
    // short-circuits sessions with an open lease (they are answering by
    // definition) and tears down the ones that time out.
    if (session_live(w)) probe(w);
    // A batch window whose owner went quiet must not pend forever: the
    // sweep gives the flush deadline teeth on idle (live) sessions.
    if (cfg_.lease_batch > 1) flush_stale_batch(w);
  }
}

void RemoteWorkerBackend::release(int /*have*/, int want) {
  {
    // A shrink supersedes any pending grow: the pool's requested LP moved
    // below it, so the late join callback would be discarded anyway — stop
    // chasing the stale target.
    std::lock_guard lock(mu_);
    pending_target_ = 0;
  }
  // Everything at index >= want goes — `have` deliberately ignored: an
  // abandoned pending grow may have joined sessions above the effective LP
  // the pool knows about, and those must not linger.
  const int from = std::max(0, want);
  const int to = static_cast<int>(sessions_.size());
  for (int w = from; w < to; ++w) {
    Session& s = *sessions_[static_cast<std::size_t>(w)];
    // try_lock: release() runs under the pool's control mutex, and a
    // session whose lease is waiting out a completion timeout holds its
    // mutex for up to complete_timeout — blocking here would freeze the
    // pool control plane. The lease owner retires the session at its next
    // boundary instead. Same deferral for an OPEN lease whose owner is
    // mid-closure (session mutex free): retiring under it would tear down
    // a healthy round trip and misreport it as a loss.
    std::unique_lock lock(s.mu, std::try_to_lock);
    if (!lock.owns_lock() || s.open_lease != 0 || s.batch_count != 0) {
      // (Without the lock, s.transport may not be read; an over-set flag on
      // an empty session is harmless — the next toucher clears it.) A
      // pending batch window defers too: its owner — a bracket mid-task —
      // flushes and then honors the retire at its next task_end.
      s.retire_requested.store(true, std::memory_order_release);
      continue;
    }
    if (s.transport == nullptr) {
      s.retire_requested.store(false, std::memory_order_relaxed);
      continue;
    }
    retire_session_locked(s, w);
  }
}

void RemoteWorkerBackend::retire_session_locked(Session& s, int worker) {
  s.retire_requested.store(false, std::memory_order_relaxed);
  if (s.transport == nullptr) {
    s.batch_count = 0;
    return;
  }
  // A pending batch window ships fire-and-forget: the transport is about to
  // close, so its Complete could never be read — no lease is opened (the
  // invariant stays exact) but the brackets are still accounted.
  if (s.batch_count > 0) {
    const std::uint64_t count = s.batch_count;
    s.batch_count = 0;
    if (s.transport->send(WireFrame{WireFrameType::kSubmit,
                                    static_cast<std::uint32_t>(worker),
                                    s.next_seq++, s.batch_hint, count})) {
      tasks_batched_.fetch_add(count, std::memory_order_relaxed);
      batch_flushes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  s.transport->send(WireFrame{WireFrameType::kRetire,
                              static_cast<std::uint32_t>(worker), s.next_seq++,
                              0, 0});
  s.transport->close();
  s.transport.reset();
  sessions_retired_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t RemoteWorkerBackend::task_begin(int worker,
                                              std::uint64_t queued_hint) {
  if (worker < 0 || worker >= static_cast<int>(sessions_.size())) return 0;
  Session& s = *sessions_[static_cast<std::size_t>(worker)];
  std::lock_guard lock(s.mu);
  if (s.retire_requested.load(std::memory_order_acquire)) {
    retire_session_locked(s, worker);  // honor a deferred release() now
    return 0;
  }
  if (s.transport == nullptr || !s.transport->alive()) return 0;
  if (cfg_.lease_batch > 1) {
    // Batched mode: no wire traffic here. Open the window on its first
    // bracket (anchoring the flush deadline and capturing the backlog hint
    // the eventual Submit will piggyback); task_end counts and flushes.
    if (s.batch_count == 0) {
      s.batch_since = cfg_.clock->now();
      s.batch_hint = queued_hint;
    }
    return kBatchToken;
  }
  const std::uint64_t seq = s.next_seq++;
  if (!s.transport->send(WireFrame{WireFrameType::kSubmit,
                               static_cast<std::uint32_t>(worker), seq,
                               queued_hint, 0})) {
    drop_session_locked(s);
    return 0;  // no lease opened: the task runs purely locally
  }
  leases_.fetch_add(1, std::memory_order_relaxed);
  s.open_lease = seq;
  return seq;
}

void RemoteWorkerBackend::task_end(int worker, std::uint64_t lease) {
  if (lease == 0) return;
  Session& s = *sessions_[static_cast<std::size_t>(worker)];
  std::lock_guard lock(s.mu);
  // A release() that arrived mid-lease deferred to us: honor it once the
  // lease is resolved (destroyed before the lock guard releases s.mu).
  struct DeferredRetire {
    RemoteWorkerBackend* backend;
    Session& s;
    int worker;
    ~DeferredRetire() {
      if (s.retire_requested.load(std::memory_order_acquire)) {
        backend->retire_session_locked(s, worker);
      }
    }
  } deferred{this, s, worker};
  if (lease == kBatchToken) {
    if (s.transport == nullptr || !s.transport->alive()) {
      // The session died inside the window: nothing was ever shipped for
      // these brackets (no lease opened), and the tasks themselves already
      // ran in-process — drop the window.
      s.batch_count = 0;
      return;
    }
    ++s.batch_count;
    const bool full =
        s.batch_count >= static_cast<std::uint64_t>(cfg_.lease_batch);
    const bool stale =
        cfg_.clock->now() - s.batch_since >= cfg_.batch_flush;
    if (full || stale || s.retire_requested.load(std::memory_order_acquire)) {
      flush_batch_locked(s, worker);
    }
    return;
  }
  s.open_lease = 0;  // resolving now, one way or the other
  if (s.transport == nullptr) {
    // The session vanished under an open lease (should not happen: the
    // lease owner is the only lease-plane writer) — account it as lost.
    losses_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  await_complete_locked(s, lease);
}

void RemoteWorkerBackend::await_complete_locked(Session& s,
                                                std::uint64_t lease) {
  s.open_lease = 0;
  const TimePoint deadline = cfg_.clock->now() + cfg_.complete_timeout;
  for (;;) {
    WireFrame f;
    const Duration wait = std::max(0.0, deadline - cfg_.clock->now());
    if (s.transport->recv(f, wait)) {
      if (f.type == WireFrameType::kComplete) {
        if (f.seq == lease) {
          s.last_accounted = lease;
          completes_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        // Duplicate of an already-closed lease, or the stale completion of
        // a lease recovered earlier (reorder): count and ignore — never
        // double-close.
        ignored_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (f.type == WireFrameType::kHeartbeatAck) {
        hb_acked_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      continue;  // kRetired etc.: nothing to do
    }
    if (!s.transport->alive()) {
      // Crash: the completion can never arrive; the task itself already ran
      // in-process, so only the lease is recovered — never the work.
      s.last_accounted = std::max(s.last_accounted, lease);
      losses_.fetch_add(1, std::memory_order_relaxed);
      drop_session_locked(s);
      return;
    }
    // recv yielded nothing on a live link. Under a virtual clock that is
    // terminal — only the test can advance time, so either the deadline
    // passed (a dropped/held completion) or the test under-advanced; both
    // resolve deterministically as a recovered lease. Real time keeps
    // waiting until the deadline.
    if (cfg_.manual_pump || cfg_.clock->now() >= deadline) {
      s.last_accounted = std::max(s.last_accounted, lease);
      losses_.fetch_add(1, std::memory_order_relaxed);
      return;  // link stays up: a late completion is ignored on arrival
    }
  }
}

void RemoteWorkerBackend::flush_batch_locked(Session& s, int worker) {
  if (s.batch_count == 0) return;
  const std::uint64_t count = s.batch_count;
  s.batch_count = 0;
  const std::uint64_t seq = s.next_seq++;
  if (!s.transport->send(WireFrame{WireFrameType::kSubmit,
                                   static_cast<std::uint32_t>(worker), seq,
                                   s.batch_hint, count})) {
    drop_session_locked(s);
    return;  // never leased: the window's tasks already ran locally
  }
  leases_.fetch_add(1, std::memory_order_relaxed);
  tasks_batched_.fetch_add(count, std::memory_order_relaxed);
  batch_flushes_.fetch_add(1, std::memory_order_relaxed);
  s.open_lease = seq;
  await_complete_locked(s, seq);
}

void RemoteWorkerBackend::flush_stale_batch(int worker) {
  Session& s = *sessions_[static_cast<std::size_t>(worker)];
  // try_lock: a held mutex means a bracket or flush is in progress — it
  // will handle the window itself.
  std::unique_lock lock(s.mu, std::try_to_lock);
  if (!lock.owns_lock()) return;
  if (s.transport == nullptr || !s.transport->alive() || s.batch_count == 0) {
    return;
  }
  if (cfg_.clock->now() - s.batch_since < cfg_.batch_flush) return;
  flush_batch_locked(s, worker);
}

bool RemoteWorkerBackend::probe(int worker) {
  if (worker < 0 || worker >= static_cast<int>(sessions_.size())) return false;
  Session& s = *sessions_[static_cast<std::size_t>(worker)];
  // try_lock, same rationale as session_live: a held mutex means a lease or
  // flush is mid-flight — the session is answering by definition, and
  // blocking here would chain the sweep behind a completion timeout.
  std::unique_lock lock(s.mu, std::try_to_lock);
  if (!lock.owns_lock()) return true;
  if (s.transport == nullptr || !s.transport->alive()) return false;
  // A lease is in flight (the owner is between task_begin and task_end, so
  // the session mutex was free but the inbox belongs to the lease): pulling
  // frames here would eat the lease's completion and convert a healthy
  // round trip into a recovered loss. An actively leasing session is
  // answering by definition — report it alive without probing.
  if (s.open_lease != 0) return true;
  const std::uint64_t seq = s.next_seq++;
  if (!s.transport->send(WireFrame{WireFrameType::kHeartbeat,
                               static_cast<std::uint32_t>(worker), seq, 0, 0})) {
    drop_session_locked(s);
    return false;
  }
  const TimePoint deadline = cfg_.clock->now() + cfg_.heartbeat_timeout;
  for (;;) {
    WireFrame f;
    const Duration wait = std::max(0.0, deadline - cfg_.clock->now());
    if (s.transport->recv(f, wait)) {
      if (f.type == WireFrameType::kHeartbeatAck && f.seq == seq) {
        hb_acked_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (f.type == WireFrameType::kComplete) {
        ignored_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (!s.transport->alive() || cfg_.manual_pump ||
        cfg_.clock->now() >= deadline) {
      // Partitioned or dead: declare the worker lost; the next grow
      // re-provisions it.
      drop_session_locked(s);
      return false;
    }
  }
}

NamedCallResult RemoteWorkerBackend::call_named(int worker, WireMuscleId id,
                                                const PodValue& arg) {
  NamedCallResult r;
  if (worker < 0 || worker >= static_cast<int>(sessions_.size())) return r;
  Session& s = *sessions_[static_cast<std::size_t>(worker)];
  std::lock_guard lock(s.mu);
  if (s.transport == nullptr || !s.transport->alive()) return r;
  // The inbox is strictly ordered per session: an open batch window's
  // Complete must not interleave with our Result, so flush it first.
  if (s.batch_count > 0) {
    flush_batch_locked(s, worker);
    if (s.transport == nullptr || !s.transport->alive()) return r;
  }
  const std::vector<std::uint8_t> payload = encode_pod(arg);
  if (payload.size() > kMaxNamedPayload) {
    // Never ships: an oversized argument is the caller's bug, reported the
    // same way the worker host reports one — without touching the link (no
    // lease opened, so it appears in no counter).
    r.transported = true;
    r.status = NamedStatus::kBadArgument;
    return r;
  }
  const std::uint64_t seq = s.next_seq++;
  if (!s.transport->send(
          WireFrame{WireFrameType::kSubmitNamed,
                    static_cast<std::uint32_t>(worker), seq, id,
                    static_cast<std::uint64_t>(payload.size())},
          payload.data(), payload.size())) {
    drop_session_locked(s);
    return r;
  }
  leases_.fetch_add(1, std::memory_order_relaxed);
  named_calls_.fetch_add(1, std::memory_order_relaxed);
  s.open_lease = seq;
  const TimePoint deadline = cfg_.clock->now() + cfg_.complete_timeout;
  std::vector<std::uint8_t> result_payload;
  for (;;) {
    WireFrame f;
    const Duration wait = std::max(0.0, deadline - cfg_.clock->now());
    if (s.transport->recv(f, result_payload, wait)) {
      if (f.type == WireFrameType::kResultNamed && f.seq == seq) {
        s.open_lease = 0;
        s.last_accounted = seq;
        completes_.fetch_add(1, std::memory_order_relaxed);
        r.transported = true;
        r.status = f.a <= static_cast<std::uint64_t>(NamedStatus::kUnsupported)
                       ? static_cast<NamedStatus>(f.a)
                       : NamedStatus::kUnsupported;
        if (r.status == NamedStatus::kOk &&
            !decode_pod(result_payload.data(), result_payload.size(),
                        r.value)) {
          r.status = NamedStatus::kBadArgument;  // malformed result payload
        }
        if (r.status != NamedStatus::kOk) {
          named_errors_.fetch_add(1, std::memory_order_relaxed);
        }
        return r;
      }
      if (f.type == WireFrameType::kComplete ||
          f.type == WireFrameType::kResultNamed) {
        // Stale delivery of an earlier-recovered lease: count and ignore.
        ignored_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (f.type == WireFrameType::kHeartbeatAck) {
        hb_acked_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      continue;
    }
    if (!s.transport->alive()) {
      s.open_lease = 0;
      s.last_accounted = std::max(s.last_accounted, seq);
      losses_.fetch_add(1, std::memory_order_relaxed);
      drop_session_locked(s);
      return r;  // transported stays false: the call never resolved
    }
    if (cfg_.manual_pump || cfg_.clock->now() >= deadline) {
      s.open_lease = 0;
      s.last_accounted = std::max(s.last_accounted, seq);
      losses_.fetch_add(1, std::memory_order_relaxed);
      return r;  // link stays up: a late result is ignored on arrival
    }
  }
}

void RemoteWorkerBackend::drop_session_locked(Session& s) {
  if (s.transport != nullptr) {
    s.transport->close();
    s.transport.reset();
  }
  sessions_lost_.fetch_add(1, std::memory_order_relaxed);
}

void RemoteWorkerBackend::cancel() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
    pending_target_ = 0;
  }
  provision_cv_.notify_all();
  if (provision_thread_.joinable()) {
    provision_thread_.request_stop();
    provision_thread_.join();
    provision_thread_ = std::jthread();
  }
  std::lock_guard lock(mu_);
  stop_ = false;  // a later provision() may restart the loop
}

int RemoteWorkerBackend::live_sessions() const {
  int live = 0;
  for (int w = 0; w < static_cast<int>(sessions_.size()); ++w) {
    if (session_live(w)) ++live;
  }
  return live;
}

RemoteBackendStats RemoteWorkerBackend::stats() const {
  RemoteBackendStats s;
  s.leases = leases_.load(std::memory_order_relaxed);
  s.completes = completes_.load(std::memory_order_relaxed);
  s.losses_recovered = losses_.load(std::memory_order_relaxed);
  s.ignored_completes = ignored_.load(std::memory_order_relaxed);
  s.tasks_batched = tasks_batched_.load(std::memory_order_relaxed);
  s.batch_flushes = batch_flushes_.load(std::memory_order_relaxed);
  s.named_calls = named_calls_.load(std::memory_order_relaxed);
  s.named_errors = named_errors_.load(std::memory_order_relaxed);
  s.heartbeats_acked = hb_acked_.load(std::memory_order_relaxed);
  s.provision_failures = provision_failures_.load(std::memory_order_relaxed);
  s.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  s.sessions_lost = sessions_lost_.load(std::memory_order_relaxed);
  s.sessions_retired = sessions_retired_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace askel
