#pragma once
// The remote-worker wire protocol and the Transport seam underneath
// RemoteWorkerBackend.
//
// Every message is one fixed-size, length-prefixed frame:
//
//   [u32 payload_len = 29][u8 type][u32 worker][u64 seq][u64 a][u64 b]
//
// all fields little-endian regardless of host order, so traces and golden
// tests are byte-identical across platforms. The frame vocabulary is the
// protocol the paper's §6 sketch needs and nothing more:
//
//   kHello        worker -> pool   "I joined" (a = pid); ends provisioning
//   kSubmit       pool -> worker   lease `seq` opens (a = pool backlog, the
//                                  piggybacked steal hint; b = number of
//                                  task brackets the lease covers in batched
//                                  mode, 0 on the unbatched legacy path)
//   kComplete     worker -> pool   lease `seq` closes
//   kHeartbeat    pool -> worker   liveness probe `seq`
//   kHeartbeatAck worker -> pool   probe reply
//   kStealHint    pool -> worker   advisory: backlog exists (a = depth)
//   kRetire       pool -> worker   clean shutdown request
//   kRetired      worker -> pool   shutdown acknowledged
//   kSubmitNamed  pool -> worker   execute REGISTERED muscle `a` remotely;
//                                  b = byte length of the encoded argument
//                                  payload that follows the frame
//   kResultNamed  worker -> pool   named call `seq` resolved (a = status,
//                                  see NamedStatus; b = result payload len)
//
// The named frames are the one variable-length part of the dialect: the
// fixed 33-byte frame is a header and exactly `b` payload bytes follow it
// (bounded by kMaxNamedPayload — a larger advertised length poisons the
// link rather than driving an allocation). Everything else stays the
// fixed-size protocol PR 5 shipped, byte-identical.
//
// A Transport is one worker's duplex channel. Implementations:
//   * PipeTransport (subprocess_backend.cpp): a socketpair to a fork()ed
//     worker process — real fds, real EOF-on-crash, real join latency;
//   * TcpTransport (tcp_transport.cpp): a real socket to a TcpWorkerHost on
//     another host — the first transport whose remote side executes
//     registered muscles instead of echoing brackets;
//   * FakeWorkerTransport (fake_transport.cpp): a seeded, virtual-clock
//     double that injects every failure mode deterministically.
//
// encode/decode are freestanding and heap-free so the fork()ed worker child
// (which may only use async-signal-safe operations) can share them.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace askel {

/// Wire values — never renumber.
enum class WireFrameType : std::uint8_t {
  kHello = 1,
  kSubmit = 2,
  kComplete = 3,
  kHeartbeat = 4,
  kHeartbeatAck = 5,
  kStealHint = 6,
  kRetire = 7,
  kRetired = 8,
  kSubmitNamed = 9,
  kResultNamed = 10,
};

const char* to_string(WireFrameType t);

/// True for the frame types followed by `b` payload bytes on the wire.
bool frame_has_payload(WireFrameType t);

/// Outcome of a named-muscle execution, carried in kResultNamed's `a`.
enum class NamedStatus : std::uint8_t {
  kOk = 0,             // result payload is the encoded return value
  kUnknownMuscle = 1,  // the wire id is not registered on the worker host
  kBadArgument = 2,    // the argument payload did not decode
  kUnsupported = 3,    // the remote side has no muscle table (subprocess echo)
};

/// Hard ceiling on a named frame's payload: a frame advertising more is
/// treated as a poisoned link, never as an allocation request.
inline constexpr std::uint64_t kMaxNamedPayload = 64 * 1024;

struct WireFrame {
  WireFrameType type = WireFrameType::kHello;
  std::uint32_t worker = 0;  // worker index the frame concerns
  std::uint64_t seq = 0;     // lease / probe sequence number (per worker)
  std::uint64_t a = 0;       // kHello: pid; kSubmit/kStealHint: backlog depth
  std::uint64_t b = 0;       // kSubmit: batched-lease bracket count (0 = unbatched)

  bool operator==(const WireFrame&) const = default;
};

inline constexpr std::size_t kWireFramePayloadSize = 1 + 4 + 8 + 8 + 8;
inline constexpr std::size_t kWireFrameSize = 4 + kWireFramePayloadSize;
using WireFrameBytes = std::array<std::uint8_t, kWireFrameSize>;

/// Serialize (length prefix included). Pure, heap-free, async-signal-safe.
WireFrameBytes encode_frame(const WireFrame& f);

/// Parse one whole frame (length prefix included). False on a short buffer,
/// a wrong length prefix, or an unknown type — the caller treats any of
/// those as a poisoned link.
bool decode_frame(const std::uint8_t* wire, std::size_t size, WireFrame& out);

/// One remote worker's duplex channel.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Ship a frame. False = link down (the caller recovers the session).
  virtual bool send(const WireFrame& f) = 0;
  /// Ship a frame plus its variable payload (named dialect; `f.b` must
  /// already equal `size`). Default: payload-less frames forward to send();
  /// a transport that predates the dialect refuses real payloads.
  virtual bool send(const WireFrame& f, const std::uint8_t* /*payload*/,
                    std::size_t size) {
    return size == 0 ? send(f) : false;
  }
  /// Next inbound frame, waiting up to `timeout` seconds (0 = only what is
  /// already deliverable; virtual-time transports never wait). False =
  /// nothing arrived — check alive() to tell timeout from a dead link.
  /// A payload frame read through this overload stays in sync (the payload
  /// bytes are consumed) but the payload itself is discarded.
  virtual bool recv(WireFrame& out, Duration timeout) = 0;
  /// Payload-aware recv: `payload` is cleared, then filled for named
  /// frames. Default forwards to the frame-only recv (transports without
  /// the dialect never produce payload frames).
  virtual bool recv(WireFrame& out, std::vector<std::uint8_t>& payload,
                    Duration timeout) {
    payload.clear();
    return recv(out, timeout);
  }
  virtual bool alive() const = 0;
  /// Best-effort retire + teardown. Idempotent.
  virtual void close() = 0;
};

/// Provisions transports, one join attempt per call.
class TransportFactory {
 public:
  struct Connect {
    std::unique_ptr<Transport> transport;  // non-null: the worker joined
    bool failed = false;                   // true: provisioning it failed
    // neither: still joining — poll again (after advancing virtual time,
    // or after a real-time backoff).
  };

  virtual ~TransportFactory() = default;
  virtual Connect try_connect(int worker) = 0;
};

}  // namespace askel
