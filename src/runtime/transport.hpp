#pragma once
// The remote-worker wire protocol and the Transport seam underneath
// RemoteWorkerBackend.
//
// Every message is one fixed-size, length-prefixed frame:
//
//   [u32 payload_len = 29][u8 type][u32 worker][u64 seq][u64 a][u64 b]
//
// all fields little-endian regardless of host order, so traces and golden
// tests are byte-identical across platforms. The frame vocabulary is the
// protocol the paper's §6 sketch needs and nothing more:
//
//   kHello        worker -> pool   "I joined" (a = pid); ends provisioning
//   kSubmit       pool -> worker   lease `seq` opens (a = pool backlog, the
//                                  piggybacked steal hint; b = number of
//                                  task brackets the lease covers in batched
//                                  mode, 0 on the unbatched legacy path)
//   kComplete     worker -> pool   lease `seq` closes
//   kHeartbeat    pool -> worker   liveness probe `seq`
//   kHeartbeatAck worker -> pool   probe reply
//   kStealHint    pool -> worker   advisory: backlog exists (a = depth)
//   kRetire       pool -> worker   clean shutdown request
//   kRetired      worker -> pool   shutdown acknowledged
//
// A Transport is one worker's duplex channel. Implementations:
//   * PipeTransport (subprocess_backend.cpp): a socketpair to a fork()ed
//     worker process — real fds, real EOF-on-crash, real join latency;
//   * FakeWorkerTransport (fake_transport.cpp): a seeded, virtual-clock
//     double that injects every failure mode deterministically.
//
// encode/decode are freestanding and heap-free so the fork()ed worker child
// (which may only use async-signal-safe operations) can share them.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/clock.hpp"

namespace askel {

/// Wire values — never renumber.
enum class WireFrameType : std::uint8_t {
  kHello = 1,
  kSubmit = 2,
  kComplete = 3,
  kHeartbeat = 4,
  kHeartbeatAck = 5,
  kStealHint = 6,
  kRetire = 7,
  kRetired = 8,
};

const char* to_string(WireFrameType t);

struct WireFrame {
  WireFrameType type = WireFrameType::kHello;
  std::uint32_t worker = 0;  // worker index the frame concerns
  std::uint64_t seq = 0;     // lease / probe sequence number (per worker)
  std::uint64_t a = 0;       // kHello: pid; kSubmit/kStealHint: backlog depth
  std::uint64_t b = 0;       // kSubmit: batched-lease bracket count (0 = unbatched)

  bool operator==(const WireFrame&) const = default;
};

inline constexpr std::size_t kWireFramePayloadSize = 1 + 4 + 8 + 8 + 8;
inline constexpr std::size_t kWireFrameSize = 4 + kWireFramePayloadSize;
using WireFrameBytes = std::array<std::uint8_t, kWireFrameSize>;

/// Serialize (length prefix included). Pure, heap-free, async-signal-safe.
WireFrameBytes encode_frame(const WireFrame& f);

/// Parse one whole frame (length prefix included). False on a short buffer,
/// a wrong length prefix, or an unknown type — the caller treats any of
/// those as a poisoned link.
bool decode_frame(const std::uint8_t* wire, std::size_t size, WireFrame& out);

/// One remote worker's duplex channel.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Ship a frame. False = link down (the caller recovers the session).
  virtual bool send(const WireFrame& f) = 0;
  /// Next inbound frame, waiting up to `timeout` seconds (0 = only what is
  /// already deliverable; virtual-time transports never wait). False =
  /// nothing arrived — check alive() to tell timeout from a dead link.
  virtual bool recv(WireFrame& out, Duration timeout) = 0;
  virtual bool alive() const = 0;
  /// Best-effort retire + teardown. Idempotent.
  virtual void close() = 0;
};

/// Provisions transports, one join attempt per call.
class TransportFactory {
 public:
  struct Connect {
    std::unique_ptr<Transport> transport;  // non-null: the worker joined
    bool failed = false;                   // true: provisioning it failed
    // neither: still joining — poll again (after advancing virtual time,
    // or after a real-time backoff).
  };

  virtual ~TransportFactory() = default;
  virtual Connect try_connect(int worker) = 0;
};

}  // namespace askel
