#include "runtime/lp_gauge.hpp"

namespace askel {

LpGauge::LpGauge(const Clock* clock) : clock_(clock) {}

void LpGauge::task_started() {
  const int now_busy = busy_.fetch_add(1, std::memory_order_acq_rel) + 1;
  int prev_peak = peak_.load(std::memory_order_relaxed);
  while (now_busy > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now_busy, std::memory_order_acq_rel)) {
  }
  series_.record(clock_->now(), now_busy);
}

void LpGauge::task_finished() {
  const int now_busy = busy_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  series_.record(clock_->now(), now_busy);
}

void LpGauge::reset() {
  busy_.store(0, std::memory_order_release);
  peak_.store(0, std::memory_order_release);
  series_.clear();
}

}  // namespace askel
