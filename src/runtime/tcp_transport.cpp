#include "runtime/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "runtime/frame_io.hpp"

namespace askel {

namespace {

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

bool send_frame(int fd, const WireFrame& f) {
  const WireFrameBytes bytes = encode_frame(f);
  return frame_io::write_full(fd, bytes.data(), bytes.size());
}

bool send_frame(int fd, const WireFrame& f, const std::uint8_t* payload,
                std::size_t size) {
  return send_frame(fd, f) &&
         (size == 0 || frame_io::write_full(fd, payload, size));
}

/// The pool-side transport is the shared FdTransport verbatim — TCP adds no
/// teardown of its own (no child to reap); the alias exists for on-wire
/// clarity in stack traces and docs.
class TcpTransport final : public FdTransport {
 public:
  using FdTransport::FdTransport;
  ~TcpTransport() override { close(); }
};

}  // namespace

// ---- worker-host side -------------------------------------------------------

TcpWorkerHost::TcpWorkerHost(MuscleTable& table, TcpWorkerHostConfig cfg)
    : table_(table), cfg_(cfg) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  acceptor_ = std::thread([this] { accept_loop(); });
}

TcpWorkerHost::~TcpWorkerHost() { stop(); }

void TcpWorkerHost::stop() {
  if (stop_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    // shutdown is not defined for listeners everywhere; close() alone wakes
    // the acceptor's poll with POLLNVAL/err and it checks stop_.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  {
    // Kick every live session out of its poll: shutdown delivers EOF; the
    // serve loop owns the close() itself.
    std::lock_guard lock(mu_);
    for (const int fd : session_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> sessions;
  {
    std::lock_guard lock(mu_);
    sessions.swap(sessions_);
  }
  for (auto& t : sessions) {
    if (t.joinable()) t.join();
  }
  listen_fd_ = -1;
}

void TcpWorkerHost::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int r;
    do {
      r = ::poll(&pfd, 1, 50);
    } while (r < 0 && errno == EINTR);
    if (stop_.load(std::memory_order_acquire)) return;
    if (r <= 0) continue;
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) return;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener gone
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(mu_);
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    ++accepted_;
    session_fds_.push_back(fd);
    sessions_.emplace_back([this, fd] { serve(fd); });
  }
}

void TcpWorkerHost::serve(int fd) {
  const auto forget_fd = [this, fd] {
    std::lock_guard lock(mu_);
    std::erase(session_fds_, fd);
  };
  // Hello first — the factory's try_connect waits for it before declaring
  // the join complete, same contract as the subprocess child.
  if (!send_frame(fd, WireFrame{WireFrameType::kHello, 0, 0,
                                static_cast<std::uint64_t>(::getpid()), 0})) {
    forget_fd();
    ::close(fd);
    return;
  }
  std::vector<std::uint8_t> payload;
  int tasks = 0;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) break;
    WireFrame f;
    // Short poll so stop() never waits long; the deadline semantics under
    // test live pool-side in FdTransport, not here.
    const auto res = frame_io::read_frame(fd, 0.1, f, &payload);
    if (res == frame_io::ReadResult::kTimeout) continue;
    if (res != frame_io::ReadResult::kFrame) break;  // EOF / desync / garbage
    switch (f.type) {
      case WireFrameType::kSubmit: {
        ++tasks;
        if (cfg_.crash_after_tasks > 0 && tasks >= cfg_.crash_after_tasks) {
          // Crash hook: die BETWEEN Submit and Complete — the pool holds an
          // open lease and must recover it off the EOF.
          forget_fd();
          ::close(fd);
          return;
        }
        if (!send_frame(fd, WireFrame{WireFrameType::kComplete, f.worker,
                                      f.seq, 0, 0})) {
          goto done;
        }
        break;
      }
      case WireFrameType::kHeartbeat:
        if (!send_frame(fd, WireFrame{WireFrameType::kHeartbeatAck, f.worker,
                                      f.seq, 0, 0})) {
          goto done;
        }
        break;
      case WireFrameType::kSubmitNamed: {
        PodValue arg, result;
        NamedStatus status = NamedStatus::kOk;
        if (!decode_pod(payload.data(), payload.size(), arg)) {
          status = NamedStatus::kBadArgument;
        } else if (!table_.invoke(static_cast<WireMuscleId>(f.a), arg,
                                  result)) {
          status = NamedStatus::kUnknownMuscle;
        }
        std::vector<std::uint8_t> reply;
        if (status == NamedStatus::kOk) {
          reply = encode_pod(result);
          if (reply.size() > kMaxNamedPayload) {
            // A result too large for the wire is the muscle's bug; answer
            // it as a protocol error rather than poisoning the link.
            status = NamedStatus::kBadArgument;
            reply.clear();
          }
        }
        {
          std::lock_guard lock(mu_);
          ++named_calls_;
          if (status != NamedStatus::kOk) ++named_errors_;
        }
        if (!send_frame(fd,
                        WireFrame{WireFrameType::kResultNamed, f.worker, f.seq,
                                  static_cast<std::uint64_t>(status),
                                  static_cast<std::uint64_t>(reply.size())},
                        reply.data(), reply.size())) {
          goto done;
        }
        break;
      }
      case WireFrameType::kRetire:
        send_frame(fd, WireFrame{WireFrameType::kRetired, f.worker, f.seq, 0,
                                 0});  // best effort
        goto done;
      case WireFrameType::kStealHint:
      default:
        break;  // advisory / unknown: ignore
    }
  }
done:
  forget_fd();
  ::close(fd);
}

std::uint64_t TcpWorkerHost::sessions_accepted() const {
  std::lock_guard lock(mu_);
  return accepted_;
}

std::uint64_t TcpWorkerHost::named_calls() const {
  std::lock_guard lock(mu_);
  return named_calls_;
}

std::uint64_t TcpWorkerHost::named_errors() const {
  std::lock_guard lock(mu_);
  return named_errors_;
}

// ---- pool side --------------------------------------------------------------

TcpTransportFactory::TcpTransportFactory(TcpBackendConfig cfg)
    : cfg_(std::move(cfg)) {}

TransportFactory::Connect TcpTransportFactory::try_connect(int worker) {
  if (worker >= cfg_.max_workers) return Connect{nullptr, true};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    return Connect{nullptr, true};
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Connect{nullptr, true};
  // One deadline, anchored HERE, covers the nonblocking connect and the
  // hello wait — the same shape as the subprocess fork + hello join.
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration<double>(std::max(0.0, cfg_.connect_timeout));
  if (!set_nonblocking(fd, true)) {
    ::close(fd);
    return Connect{nullptr, true};
  }
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    ::close(fd);
    return Connect{nullptr, true};
  }
  if (rc != 0) {
    for (;;) {
      const double remaining_s =
          std::chrono::duration<double>(deadline -
                                        std::chrono::steady_clock::now())
              .count();
      if (remaining_s <= 0.0) {
        ::close(fd);
        return Connect{nullptr, true};
      }
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      int r;
      do {
        r = ::poll(&pfd, 1,
                   static_cast<int>(std::ceil(remaining_s * 1000.0)));
      } while (r < 0 && errno == EINTR);
      if (r > 0) break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Connect{nullptr, true};
    }
  }
  if (!set_nonblocking(fd, false)) {
    ::close(fd);
    return Connect{nullptr, true};
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto transport = std::make_unique<TcpTransport>(fd);
  const double hello_wait =
      std::chrono::duration<double>(deadline - std::chrono::steady_clock::now())
          .count();
  WireFrame hello;
  if (!transport->recv(hello, std::max(0.0, hello_wait)) ||
      hello.type != WireFrameType::kHello) {
    return Connect{nullptr, true};  // transport dtor closes the socket
  }
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  {
    std::lock_guard lock(mu_);
    join_us_.push_back(us);
  }
  return Connect{std::move(transport), false};
}

std::vector<double> TcpTransportFactory::join_latencies_us() const {
  std::lock_guard lock(mu_);
  return join_us_;
}

}  // namespace askel
