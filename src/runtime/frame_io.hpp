#pragma once
// Shared fd-level frame I/O — the one copy of the short-write / short-read /
// EINTR / deadline logic every real (fd-backed) transport uses.
//
// Before this header existed, PipeTransport (subprocess_backend.cpp) carried
// a private write_full/read loop; growing a second fd transport (TCP) would
// have meant a second copy of exactly the code whose edge cases — a short
// write resumed after EINTR, send() returning 0, a peer stalling mid-frame —
// are the ones that only bite under real network load. The helpers here are
// that audit, factored once:
//
//   * write_full: send() with MSG_NOSIGNAL (a dead peer must surface as
//     EPIPE, never SIGPIPE), resumes after EINTR *without losing the partial
//     progress*, and treats n == 0 as a hard error (a blocking stream send
//     never legitimately writes nothing — looping on it would spin forever);
//   * read_full: the blocking mirror, used by the fork()ed subprocess child
//     (async-signal-safe: no locks, no allocation, fixed caller buffers);
//   * read_frame: the deadline-honoring parent-side read. Every poll uses
//     the REMAINING time to the deadline computed once at entry — the
//     timeout is never re-armed after a partial read, so a peer trickling
//     one byte per poll cannot extend the total wait past `timeout`
//     (tests/tcp_transport_test.cpp pins total wait <= timeout + epsilon).
//     The result distinguishes a clean timeout (nothing consumed, the
//     stream is still in sync) from a mid-frame stall (the stream is
//     desynced for good — the caller poisons the link).
//
// FdTransport wraps the helpers into the Transport contract over any
// connected stream fd; PipeTransport (socketpair to a fork child) and
// TcpTransport (socket to a worker host) derive from it and only add their
// teardown hooks.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "runtime/transport.hpp"
#include "util/clock.hpp"

namespace askel {
namespace frame_io {

/// Write exactly `size` bytes to a connected stream fd. MSG_NOSIGNAL on
/// every send; EINTR resumes with the partial progress kept; n == 0 and
/// every other error return false. Async-signal-safe.
bool write_full(int fd, const std::uint8_t* data, std::size_t size);

/// Blocking read of exactly `size` bytes (EINTR-resumed, EOF = false).
/// Async-signal-safe — this is the fork()ed worker child's read loop.
bool read_full(int fd, std::uint8_t* data, std::size_t size);

enum class ReadResult {
  kFrame,         // one whole frame (and its payload, if any) decoded
  kTimeout,       // deadline passed with NOTHING consumed: stream in sync
  kMidFrameStall, // deadline passed mid-frame: stream desynced — poison it
  kClosed,        // EOF or hard error
  kGarbage,       // bytes arrived but did not decode / payload oversized
};

/// Deadline-honoring frame read: poll before EVERY read with the remaining
/// time to the deadline anchored at entry, never a blocking read. A named
/// frame's payload (`out.b` bytes, bounded by kMaxNamedPayload) is read
/// under the same deadline; `payload` may be null, in which case the bytes
/// are consumed (keeping the stream in sync) and discarded.
ReadResult read_frame(int fd, Duration timeout, WireFrame& out,
                      std::vector<std::uint8_t>* payload);

}  // namespace frame_io

/// Transport over one connected stream fd — the shared body of
/// PipeTransport (socketpair to a fork child) and TcpTransport (socket to a
/// remote worker host). Locking: `mu_` serializes send/close against each
/// other; recv stays lease-owner-only (the session machine's contract), so
/// it reads the fd without the mutex — close() shuts the socket down before
/// closing so a concurrent recv wakes with EOF instead of touching a
/// recycled fd number.
class FdTransport : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override;

  bool send(const WireFrame& f) override;
  bool send(const WireFrame& f, const std::uint8_t* payload,
            std::size_t size) override;
  bool recv(WireFrame& out, Duration timeout) override;
  bool recv(WireFrame& out, std::vector<std::uint8_t>& payload,
            Duration timeout) override;
  bool alive() const override;
  void close() override;

 protected:
  /// Teardown hook, called once under mu_ with the fd already shut down and
  /// closed: PipeTransport reaps its child and un-registers the parent fd.
  virtual void on_close_locked(int fd) { (void)fd; }

 private:
  bool recv_impl(WireFrame& out, std::vector<std::uint8_t>* payload,
                 Duration timeout);

  int fd_ = -1;
  std::atomic<bool> alive_{true};
  std::mutex mu_;  // send/close vs each other
};

}  // namespace askel
