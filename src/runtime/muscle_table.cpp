#include "runtime/muscle_table.hpp"

#include <cstring>

namespace askel {

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int k = 0; k < 8; ++k) p[k] = static_cast<std::uint8_t>(v >> (8 * k));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int k = 0; k < 8; ++k) v |= static_cast<std::uint64_t>(p[k]) << (8 * k);
  return v;
}

}  // namespace

const char* to_string(PodTag t) {
  switch (t) {
    case PodTag::kVoid: return "void";
    case PodTag::kI64: return "i64";
    case PodTag::kU64: return "u64";
    case PodTag::kF64: return "f64";
    case PodTag::kBytes: return "bytes";
  }
  return "unknown";
}

PodValue PodValue::of_i64(std::int64_t v) {
  PodValue p;
  p.tag_ = PodTag::kI64;
  p.i_ = v;
  return p;
}

PodValue PodValue::of_u64(std::uint64_t v) {
  PodValue p;
  p.tag_ = PodTag::kU64;
  p.u_ = v;
  return p;
}

PodValue PodValue::of_f64(double v) {
  PodValue p;
  p.tag_ = PodTag::kF64;
  p.f_ = v;
  return p;
}

PodValue PodValue::of_bytes(std::string v) {
  PodValue p;
  p.tag_ = PodTag::kBytes;
  p.b_ = std::move(v);
  return p;
}

std::vector<std::uint8_t> encode_pod(const PodValue& v) {
  std::size_t body_len = 0;
  switch (v.tag()) {
    case PodTag::kVoid: body_len = 0; break;
    case PodTag::kI64:
    case PodTag::kU64:
    case PodTag::kF64: body_len = 8; break;
    case PodTag::kBytes: body_len = v.as_bytes().size(); break;
  }
  std::vector<std::uint8_t> out(kPodHeaderSize + body_len, 0);
  out[0] = kPodCodecVersion;
  out[1] = static_cast<std::uint8_t>(v.tag());
  // out[2..3] reserved, already zero
  put_u32(out.data() + 4, static_cast<std::uint32_t>(body_len));
  std::uint8_t* body = out.data() + kPodHeaderSize;
  switch (v.tag()) {
    case PodTag::kVoid:
      break;
    case PodTag::kI64:
      put_u64(body, static_cast<std::uint64_t>(v.as_i64()));
      break;
    case PodTag::kU64:
      put_u64(body, v.as_u64());
      break;
    case PodTag::kF64: {
      const double d = v.as_f64();
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(double));
      std::memcpy(&bits, &d, sizeof(bits));
      put_u64(body, bits);
      break;
    }
    case PodTag::kBytes:
      if (body_len > 0) std::memcpy(body, v.as_bytes().data(), body_len);
      break;
  }
  return out;
}

bool decode_pod(const std::uint8_t* wire, std::size_t size, PodValue& out) {
  if (wire == nullptr || size < kPodHeaderSize) return false;
  if (wire[0] != kPodCodecVersion) return false;
  const std::uint8_t raw_tag = wire[1];
  if (raw_tag > static_cast<std::uint8_t>(PodTag::kBytes)) return false;
  if (wire[2] != 0 || wire[3] != 0) return false;
  const std::uint32_t body_len = get_u32(wire + 4);
  // Exact framing: a value is the WHOLE buffer, no trailing bytes.
  if (size != kPodHeaderSize + static_cast<std::size_t>(body_len)) return false;
  const std::uint8_t* body = wire + kPodHeaderSize;
  switch (static_cast<PodTag>(raw_tag)) {
    case PodTag::kVoid:
      if (body_len != 0) return false;
      out = PodValue::of_void();
      return true;
    case PodTag::kI64:
      if (body_len != 8) return false;
      out = PodValue::of_i64(static_cast<std::int64_t>(get_u64(body)));
      return true;
    case PodTag::kU64:
      if (body_len != 8) return false;
      out = PodValue::of_u64(get_u64(body));
      return true;
    case PodTag::kF64: {
      if (body_len != 8) return false;
      const std::uint64_t bits = get_u64(body);
      double d = 0.0;
      std::memcpy(&d, &bits, sizeof(d));
      out = PodValue::of_f64(d);
      return true;
    }
    case PodTag::kBytes:
      out = PodValue::of_bytes(
          std::string(reinterpret_cast<const char*>(body), body_len));
      return true;
  }
  return false;
}

WireMuscleId MuscleTable::register_muscle(std::string name, Fn fn) {
  std::lock_guard lock(mu_);
  for (std::size_t k = 0; k < entries_.size(); ++k) {
    if (entries_[k].name == name) {
      entries_[k].fn = std::make_shared<Fn>(std::move(fn));
      return static_cast<WireMuscleId>(k + 1);
    }
  }
  entries_.push_back(Entry{std::move(name), std::make_shared<Fn>(std::move(fn))});
  return static_cast<WireMuscleId>(entries_.size());
}

std::optional<WireMuscleId> MuscleTable::id_of(std::string_view name) const {
  std::lock_guard lock(mu_);
  for (std::size_t k = 0; k < entries_.size(); ++k) {
    if (entries_[k].name == name) return static_cast<WireMuscleId>(k + 1);
  }
  return std::nullopt;
}

std::optional<std::string> MuscleTable::name_of(WireMuscleId id) const {
  std::lock_guard lock(mu_);
  if (id == 0 || id > entries_.size()) return std::nullopt;
  return entries_[id - 1].name;
}

std::size_t MuscleTable::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

bool MuscleTable::invoke(WireMuscleId id, const PodValue& arg,
                         PodValue& result) const {
  std::shared_ptr<Fn> fn;
  {
    std::lock_guard lock(mu_);
    if (id == 0 || id > entries_.size()) return false;
    fn = entries_[id - 1].fn;
  }
  // Run outside the lock: the muscle may be slow or register more muscles.
  result = (*fn)(arg);
  return true;
}

MuscleTable& default_muscle_table() {
  static MuscleTable* table = new MuscleTable();  // never destroyed
  return *table;
}

}  // namespace askel
