#pragma once
// Gauge of concurrently busy worker threads.
//
// "Number of Active Threads" on the y-axis of the paper's Figures 2, 5, 6
// and 7 is exactly this gauge: how many pool workers are executing a task at
// a given wall-clock instant. Every change is recorded into a TimeSeries so a
// finished run can be rendered as the paper's step plots.

#include <atomic>

#include "util/clock.hpp"
#include "util/time_series.hpp"

namespace askel {

class LpGauge {
 public:
  explicit LpGauge(const Clock* clock = &default_clock());

  /// A worker started executing a task.
  void task_started();
  /// A worker finished executing a task.
  void task_finished();

  /// Currently busy workers.
  int busy() const { return busy_.load(std::memory_order_acquire); }
  /// Highest concurrency observed since construction/reset.
  int peak() const { return peak_.load(std::memory_order_acquire); }

  /// Full (time, busy) history. Time is in the gauge clock's epoch.
  const TimeSeries& series() const { return series_; }

  void reset();

 private:
  const Clock* clock_;
  std::atomic<int> busy_{0};
  std::atomic<int> peak_{0};
  TimeSeries series_;
};

/// RAII helper marking the enclosing scope as a busy interval on the gauge.
class BusyScope {
 public:
  explicit BusyScope(LpGauge& gauge) : gauge_(gauge) { gauge_.task_started(); }
  ~BusyScope() { gauge_.task_finished(); }
  BusyScope(const BusyScope&) = delete;
  BusyScope& operator=(const BusyScope&) = delete;

 private:
  LpGauge& gauge_;
};

}  // namespace askel
