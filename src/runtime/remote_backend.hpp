#pragma once
// RemoteWorkerBackend: the session state machine behind every remote
// WorkerBackend — SubprocessBackend runs it over fork()ed processes and
// socketpairs, the fault-injection tests run the *same* machine over
// FakeTransportFactory, so the deterministic suite exercises exactly the
// code the real transport uses.
//
// Model: one session per pool-worker index. The session is a *transport
// proxy*, not a second scheduler — the task's closure always executes
// in-process (skeleton muscles are closures over shared memory; shipping
// computation needs serializable muscles, a future PR). What the session
// makes real is everything the paper's §6 distribution sketch worries
// about: join latency, join failure, crash, message loss, duplication,
// reordering and partitions — i.e. the control plane of "adding workers
// like adding threads".
//
// Lease protocol (per session, sequential — one outstanding lease, owned by
// the pool worker thread that opened it):
//   task_begin: Submit{seq} ships; the lease is open.
//   task_end:   consume frames until Complete{seq} arrives (completed), the
//               link dies or the completion deadline passes (recovered).
//   Every non-zero lease ends in exactly one of those two states:
//               leases == completes + losses_recovered, always — the
//               fault suite pins this on every plan, so a dropped or
//               reordered completion can never lose a task.
//   A Complete with seq <= last accounted is a duplicate/stale delivery and
//   is counted + ignored, so a duplicated completion can never double-close.
//
// Batched leases (cfg.lease_batch K > 1): task_begin/task_end stop round-
// tripping per task. Brackets accumulate in a per-session window; the K-th
// bracket (or a bracket finding the window older than cfg.batch_flush, or a
// deferred retire) flushes the window as ONE Submit whose `b` field carries
// the bracket count, then awaits its single Complete — the same recovery
// loop, so leases == completes + losses_recovered still holds with one
// lease per window. The heartbeat sweep (and pump(), in manual mode)
// flushes a stale window when no further bracket arrives.
//
// Failure taxonomy -> behavior:
//   slow provision    provision() returns kPending; the join lands through
//                     the pool's ProvisionResult callback when the factory
//                     yields the transport (virtual latency or real fork).
//   failed provision  the factory refuses or the connect deadline passes:
//                     ProvisionResult(target, false) — the pool abandons the
//                     request, the coordinator claws the LP back.
//   crash mid-task    the link reads dead in task_end: the lease is
//                     recovered, the session is torn down, the next
//                     provision() re-forks it.
//   dropped/reordered the completion deadline passes with the link alive:
//   completion        the lease is recovered but the session survives; the
//                     late frame is ignored on arrival.
//   partition         heartbeats vanish: probe() times out, declares the
//                     session lost and recovers it.
//
// Locking: backend mutex (provision plane) and one mutex per session (lease
// plane) are leaves under the pool's control mutex; ProvisionResult runs
// with no backend lock held. factory.try_connect is called unlocked — a
// slow fork never stalls the pool's control plane.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/muscle_table.hpp"
#include "runtime/transport.hpp"
#include "runtime/worker_backend.hpp"
#include "util/clock.hpp"

namespace askel {

struct RemoteBackendConfig {
  /// Hard capacity: provisioning past this fails (kFailed) — the test hook
  /// for "the cluster is full" and the subprocess fan-out bound.
  int max_workers = 256;
  /// Provision deadline: a pending join older than this fails.
  Duration connect_timeout = 5.0;
  /// Lease deadline: a completion not seen within this is recovered.
  Duration complete_timeout = 1.0;
  /// probe() deadline: no heartbeat-ack within this = partitioned/lost.
  Duration heartbeat_timeout = 0.25;
  /// While provisioning is idle, the backend's provisioning thread probes
  /// every live, lease-free session at roughly this cadence, so a
  /// partitioned idle worker is detected without waiting for its next
  /// lease. 0 disables the sweep (manual_pump mode never sweeps — tests
  /// call probe() themselves).
  Duration heartbeat_interval = 1.0;
  /// true: no provision thread — the test drives joins via pump() against a
  /// virtual clock. false: a background thread polls the factory.
  bool manual_pump = false;
  /// Per-lease task batching: coalesce up to this many task brackets into
  /// one Submit/Complete round trip (the Submit's `b` field carries the
  /// count), amortizing the measured ~4.6 µs round trip across the window.
  /// 1 (default) keeps the unbatched protocol byte-identical to before.
  int lease_batch = 1;
  /// Flush deadline for a partially filled batch: a window older than this
  /// flushes at the next task boundary (or the next heartbeat sweep / pump),
  /// bounding how long a task bracket stays unaccounted on the wire.
  Duration batch_flush = 0.005;
  const Clock* clock = &default_clock();
  const char* name = "remote";
};

/// Monotonic counters; every lease is accounted exactly once:
/// leases == completes + losses_recovered at every quiescent point.
struct RemoteBackendStats {
  std::uint64_t leases = 0;
  std::uint64_t completes = 0;
  std::uint64_t losses_recovered = 0;
  std::uint64_t ignored_completes = 0;  // duplicate or stale deliveries
  std::uint64_t heartbeats_acked = 0;
  std::uint64_t provision_failures = 0;
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_lost = 0;
  std::uint64_t sessions_retired = 0;
  /// Batched mode only: task brackets shipped inside flushed windows, and
  /// the Submit round trips that carried them. tasks_batched / batch_flushes
  /// is the achieved amortization factor.
  std::uint64_t tasks_batched = 0;
  std::uint64_t batch_flushes = 0;
  /// Named-muscle calls shipped (each is also a lease, so the invariant
  /// above covers them), and the subset that resolved with a non-kOk status.
  std::uint64_t named_calls = 0;
  std::uint64_t named_errors = 0;
};

/// Outcome of RemoteWorkerBackend::call_named. `transported` is false when
/// the call never resolved remotely — no live session, the link died, or
/// the result deadline passed (the lease is recovered either way); `status`
/// is only meaningful when it is true.
struct NamedCallResult {
  bool transported = false;
  NamedStatus status = NamedStatus::kUnsupported;
  PodValue value;  // decoded result, kOk only
};

class RemoteWorkerBackend : public WorkerBackend {
 public:
  explicit RemoteWorkerBackend(TransportFactory& factory,
                               RemoteBackendConfig cfg = {});
  ~RemoteWorkerBackend() override;

  const char* name() const override { return cfg_.name; }
  bool remote() const override { return true; }
  void bind(ProvisionResult on_result) override;
  Provision provision(int have, int want) override;
  void release(int have, int want) override;
  std::uint64_t task_begin(int worker, std::uint64_t queued_hint) override;
  void task_end(int worker, std::uint64_t lease) override;
  void cancel() override;

  /// Deterministic mode: advance the provisioning state machine as far as it
  /// goes at the current (virtual) time — connect ready workers, report
  /// failures. Reentrant-safe: the ProvisionResult callback may provision
  /// again from inside (the coordinator reclaim path does).
  void pump();

  /// Liveness probe: heartbeat round trip within heartbeat_timeout. false
  /// marks the session lost (torn down; re-provisioned on the next grow) —
  /// this is how a partition becomes a detected failure. Never blocks on a
  /// busy session: one mid-lease (mutex held) is answering by definition
  /// and reports true without wire traffic.
  bool probe(int worker);

  /// One idle-cadence pass over every session: probe liveness FIRST, then
  /// flush stale batch windows. The order is load-bearing — flushing into a
  /// partitioned worker burns a complete_timeout on a lease that is already
  /// doomed, holding the session mutex and delaying detection past the
  /// heartbeat cadence; probing first tears the dead session down so the
  /// stale window is dropped instead of leased. Public so manual-pump tests
  /// can drive exactly one sweep against a virtual clock (the provisioning
  /// thread calls it on its own cadence in real-time mode).
  void heartbeat_sweep();

  /// Execute registered muscle `id` remotely on `worker`'s session with the
  /// encoded `arg` (kSubmitNamed -> kResultNamed round trip). The call is a
  /// lease: it resolves as a complete or a recovered loss under the same
  /// invariant as task brackets. Any open batch window flushes first so the
  /// session's inbox stays strictly ordered.
  NamedCallResult call_named(int worker, WireMuscleId id, const PodValue& arg);

  /// Sessions with a live transport right now.
  int live_sessions() const;
  RemoteBackendStats stats() const;

 private:
  struct Session {
    std::mutex mu;  // lease plane: transport use + seq bookkeeping
    std::unique_ptr<Transport> transport;
    std::uint64_t next_seq = 1;
    std::uint64_t last_accounted = 0;  // highest seq completed OR recovered
    std::uint64_t open_lease = 0;      // lease in flight (under mu)
    // Batched-lease window (lease_batch > 1, all under mu): brackets
    // accumulated since the last flush, the queued hint of the first, and
    // when the window opened (anchor of the flush deadline).
    std::uint64_t batch_count = 0;
    std::uint64_t batch_hint = 0;
    TimePoint batch_since = 0.0;
    /// Deferred retire: release() must not block on a session whose lease
    /// is mid-flight (its mutex may be held for a whole completion
    /// timeout, and release() runs under the pool's control mutex). The
    /// flag asks the lease owner to retire the session at its next
    /// boundary; a re-grow (provision covering this worker) cancels it.
    std::atomic<bool> retire_requested{false};
  };
  struct Outcome {
    ProvisionResult cb;
    int target = 0;
    bool ok = false;
  };

  /// One provisioning step. Returns true when it made progress (connected a
  /// worker, resolved the pending target); fills `out` when a result must be
  /// reported (call it with no lock held).
  bool pump_step(Outcome& out);
  void provision_loop(const std::stop_token& st);
  bool session_live(int worker) const;
  /// session.mu held: tear the transport down and count the loss.
  void drop_session_locked(Session& s);
  /// session.mu held: clean retire — Retire frame, close, count. A pending
  /// batch window flushes fire-and-forget first (no lease opened: the
  /// completion can never be read once the transport closes).
  void retire_session_locked(Session& s, int worker);
  /// session.mu held, live transport, open lease `lease`: consume frames
  /// until Complete{lease} (completed), the link dies or the completion
  /// deadline passes (recovered). Resolves the lease exactly once.
  void await_complete_locked(Session& s, std::uint64_t lease);
  /// session.mu held, live transport: ship the pending batch window as one
  /// Submit{b = count} lease and await its completion. No-op when empty.
  void flush_batch_locked(Session& s, int worker);
  /// Flush a batch window whose deadline passed with no further bracket
  /// arriving (heartbeat sweep / pump). try_lock: never stalls on a lease.
  void flush_stale_batch(int worker);

  TransportFactory& factory_;
  const RemoteBackendConfig cfg_;
  std::vector<std::unique_ptr<Session>> sessions_;  // max_workers, fixed

  mutable std::mutex mu_;  // provision plane
  std::condition_variable provision_cv_;
  ProvisionResult result_;
  int pending_target_ = 0;
  TimePoint pending_since_ = 0.0;
  bool stop_ = false;
  std::jthread provision_thread_;

  // Stats are atomics so the lease plane never takes the provision mutex.
  std::atomic<std::uint64_t> leases_{0};
  std::atomic<std::uint64_t> completes_{0};
  std::atomic<std::uint64_t> losses_{0};
  std::atomic<std::uint64_t> ignored_{0};
  std::atomic<std::uint64_t> hb_acked_{0};
  std::atomic<std::uint64_t> provision_failures_{0};
  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> sessions_lost_{0};
  std::atomic<std::uint64_t> sessions_retired_{0};
  std::atomic<std::uint64_t> tasks_batched_{0};
  std::atomic<std::uint64_t> batch_flushes_{0};
  std::atomic<std::uint64_t> named_calls_{0};
  std::atomic<std::uint64_t> named_errors_{0};
};

}  // namespace askel
