#pragma once
// FakeTransportFactory: a seeded, virtual-clock transport double that makes
// every remote failure mode a reproducible unit test.
//
// The fake models one remote worker per transport. Submitting a lease
// schedules its Complete at a virtual delivery time; the fault plan then
// perturbs delivery deterministically:
//
//   * slow provision   — try_connect reports "still joining" until the
//                        virtual clock passes join-request + latency;
//   * failed provision — the next N join attempts are refused outright;
//   * crash-on-Nth     — a chosen worker's link dies on its Nth submit
//                        (the completion is never produced, recv reports a
//                        dead link);
//   * drop             — every k-th completion is discarded;
//   * duplicate        — every k-th completion is delivered twice;
//   * reorder          — every k-th completion is held back and released
//                        only after the NEXT completion, so it arrives
//                        stale (an older seq after a newer one);
//   * partition        — inside [from, to) windows sends are swallowed and
//                        due deliveries are discarded at delivery time
//                        (heartbeat probes time out: partition detection).
//
// Determinism: all times are integer virtual microseconds derived from the
// injected clock; jitter comes from a SplitMix64 stream seeded by the plan.
// Every action appends one line to a trace whose FNV-1a hash is
// platform-stable — the golden seed-determinism test pins it.
//
// Threading: one factory-wide mutex guards everything (plan counters, the
// trace, every per-worker inbox). This is a test double — simplicity and a
// totally ordered trace beat scalability.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/transport.hpp"
#include "util/clock.hpp"

namespace askel {

struct FakeFaultPlan {
  std::uint64_t seed = 1;

  // Provisioning.
  Duration provision_latency = 0.0;  // virtual join time per worker
  int fail_next_provisions = 0;      // refuse the next N try_connect calls

  // Service model.
  Duration complete_latency = 0.0;   // base virtual service time per lease
  Duration complete_jitter = 0.0;    // + seeded jitter in [0, jitter)
  Duration heartbeat_latency = 0.0;  // probe round-trip time

  // Faults (per-worker counters; 0 = never, k = every k-th occurrence).
  int crash_worker = -1;     // this worker's link dies...
  int crash_on_nth_task = 0; // ...on its Nth submit (0 = never)
  int drop_complete_every = 0;
  int dup_complete_every = 0;
  int reorder_complete_every = 0;

  // Global connectivity blackouts, [from, to) in virtual seconds.
  std::vector<std::pair<Duration, Duration>> partitions;

  // true: deliveries keyed to a ManualClock the test advances (recv never
  // waits). false: recv polls the real clock like a production transport.
  bool virtual_time = true;
};

class FakeTransportFactory final : public TransportFactory {
 public:
  explicit FakeTransportFactory(FakeFaultPlan plan,
                                const Clock* clock = &default_clock());
  ~FakeTransportFactory() override;

  Connect try_connect(int worker) override;

  /// Totally ordered log of every transport action (copy: the factory lock
  /// guards the underlying vector).
  std::vector<std::string> trace() const;
  /// FNV-1a 64 over the newline-joined trace — the golden-determinism pin.
  std::uint64_t trace_hash() const;
  /// Joins granted so far (observability for tests).
  int connects() const;

 private:
  friend class FakeWorkerTransport;
  struct State;
  std::unique_ptr<State> st_;
};

}  // namespace askel
