#include "runtime/frame_io.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>

namespace askel {
namespace frame_io {

bool write_full(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t at = 0;
  while (at < size) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process.
    const ssize_t n = ::send(fd, data + at, size - at, MSG_NOSIGNAL);
    if (n > 0) {
      at += static_cast<std::size_t>(n);
      continue;
    }
    // EINTR after a partial write resumes at `at` — progress is never lost.
    if (n < 0 && errno == EINTR) continue;
    // n == 0: a blocking stream send never legitimately writes nothing;
    // treating it as retryable would spin forever on a broken socket.
    return false;
  }
  return true;
}

bool read_full(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t at = 0;
  while (at < size) {
    const ssize_t n = ::read(fd, data + at, size - at);
    if (n > 0) {
      at += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error
  }
  return true;
}

namespace {

/// Read exactly `size` bytes before `deadline`, polling with the REMAINING
/// time each iteration (the deadline never re-arms — a trickling peer
/// cannot extend the total wait). `*consumed` counts bytes read so the
/// caller can tell a clean timeout from a mid-frame stall.
enum class FillResult { kDone, kTimeout, kClosed };

FillResult read_until_deadline(
    int fd, std::uint8_t* data, std::size_t size,
    std::chrono::steady_clock::time_point deadline, std::size_t* consumed) {
  std::size_t at = 0;
  while (at < size) {
    const double remaining_s =
        std::chrono::duration<double>(deadline -
                                      std::chrono::steady_clock::now())
            .count();
    if (remaining_s <= 0.0) {
      *consumed += at;
      return FillResult::kTimeout;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int r;
    do {
      r = ::poll(&pfd, 1, static_cast<int>(std::ceil(remaining_s * 1000.0)));
    } while (r < 0 && errno == EINTR);
    if (r <= 0) continue;  // loop re-checks the ORIGINAL deadline
    const ssize_t n = ::read(fd, data + at, size - at);
    if (n > 0) {
      at += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    *consumed += at;
    return FillResult::kClosed;  // EOF: the peer went away
  }
  *consumed += at;
  return FillResult::kDone;
}

}  // namespace

ReadResult read_frame(int fd, Duration timeout, WireFrame& out,
                      std::vector<std::uint8_t>* payload) {
  if (fd < 0) return ReadResult::kClosed;
  // The deadline anchors HERE, once: the header read, the decode and the
  // payload read all spend from the same budget.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(0.0, timeout)));
  std::uint8_t buf[kWireFrameSize];
  std::size_t consumed = 0;
  switch (read_until_deadline(fd, buf, kWireFrameSize, deadline, &consumed)) {
    case FillResult::kDone:
      break;
    case FillResult::kTimeout:
      // Nothing consumed is just "no frame"; a timeout MID-frame means the
      // byte stream is desynced for good.
      return consumed == 0 ? ReadResult::kTimeout : ReadResult::kMidFrameStall;
    case FillResult::kClosed:
      return ReadResult::kClosed;
  }
  if (!decode_frame(buf, kWireFrameSize, out)) return ReadResult::kGarbage;
  if (!frame_has_payload(out.type)) {
    if (payload != nullptr) payload->clear();
    return ReadResult::kFrame;
  }
  // Variable payload: `b` carries the byte count. An advertised length past
  // the protocol ceiling is a poisoned link, never an allocation request.
  if (out.b > kMaxNamedPayload) return ReadResult::kGarbage;
  std::vector<std::uint8_t> scratch;
  std::vector<std::uint8_t>* dst = payload != nullptr ? payload : &scratch;
  dst->assign(static_cast<std::size_t>(out.b), 0);
  if (out.b == 0) return ReadResult::kFrame;
  consumed = 0;
  switch (read_until_deadline(fd, dst->data(), dst->size(), deadline,
                              &consumed)) {
    case FillResult::kDone:
      return ReadResult::kFrame;
    case FillResult::kTimeout:
      return ReadResult::kMidFrameStall;  // header without payload = desync
    case FillResult::kClosed:
      return ReadResult::kClosed;
  }
  return ReadResult::kClosed;
}

}  // namespace frame_io

FdTransport::~FdTransport() {
  // Derived destructors normally call close() themselves (so their
  // on_close_locked hook runs while the derived object is still whole);
  // this is the backstop for the plain-FdTransport case.
  FdTransport::close();
}

bool FdTransport::send(const WireFrame& f) { return send(f, nullptr, 0); }

bool FdTransport::send(const WireFrame& f, const std::uint8_t* payload,
                       std::size_t size) {
  std::lock_guard lock(mu_);
  if (fd_ < 0) return false;
  const WireFrameBytes bytes = encode_frame(f);
  if (!frame_io::write_full(fd_, bytes.data(), bytes.size()) ||
      (size > 0 && !frame_io::write_full(fd_, payload, size))) {
    alive_.store(false, std::memory_order_release);
    return false;
  }
  return true;
}

bool FdTransport::recv(WireFrame& out, Duration timeout) {
  return recv_impl(out, nullptr, timeout);
}

bool FdTransport::recv(WireFrame& out, std::vector<std::uint8_t>& payload,
                       Duration timeout) {
  return recv_impl(out, &payload, timeout);
}

bool FdTransport::recv_impl(WireFrame& out,
                            std::vector<std::uint8_t>* payload,
                            Duration timeout) {
  if (fd_ < 0) return false;
  switch (frame_io::read_frame(fd_, timeout, out, payload)) {
    case frame_io::ReadResult::kFrame:
      return true;
    case frame_io::ReadResult::kTimeout:
      return false;  // stream still in sync; the link stays up
    case frame_io::ReadResult::kMidFrameStall:
    case frame_io::ReadResult::kGarbage:
    case frame_io::ReadResult::kClosed:
      alive_.store(false, std::memory_order_release);
      return false;
  }
  return false;
}

bool FdTransport::alive() const {
  return alive_.load(std::memory_order_acquire);
}

void FdTransport::close() {
  std::lock_guard lock(mu_);
  if (fd_ >= 0) {
    // shutdown first: a recv blocked in poll() on another thread wakes with
    // EOF instead of racing a recycled fd number.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    const int fd = fd_;
    fd_ = -1;
    alive_.store(false, std::memory_order_release);
    on_close_locked(fd);
    return;
  }
  alive_.store(false, std::memory_order_release);
}

}  // namespace askel
