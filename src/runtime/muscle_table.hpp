#pragma once
// MuscleTable + POD argument codec: the wire-serializable muscle
// representation that lets work actually cross a host boundary.
//
// A skeleton muscle is a closure over shared memory — it cannot be shipped.
// What CAN be shipped is a *name*: both hosts register the same function
// under the same name, registration hands back a stable wire id, and a
// kSubmitNamed frame carries {wire id, encoded argument} instead of a
// closure. The worker host looks the id up in ITS table and executes its
// own copy of the function (tcp_transport.hpp's serve loop); only POD-ish
// argument/result values travel.
//
// The codec is deliberately tiny and fixed-layout — one tagged value per
// call, versioned so the layout can evolve without silently misreading old
// peers:
//
//   [u8 version = 1][u8 tag][u16 reserved = 0][u32 body_len][body bytes]
//
//   tag kVoid   body_len 0
//   tag kI64    body_len 8, little-endian two's complement
//   tag kU64    body_len 8, little-endian
//   tag kF64    body_len 8, IEEE-754 bits little-endian
//   tag kBytes  body_len N, opaque bytes (strings, user pre-serialization)
//
// decode_pod rejects unknown versions and tags, truncated or oversized
// bodies and trailing bytes — a malformed payload is a protocol error
// (NamedStatus::kBadArgument), never a partially-read value.
//
// Wire-id stability: ids are assigned densely in registration order and
// never reused, so two hosts that register the same muscles in the same
// order agree on ids implicitly; hosts that cannot guarantee order agree
// by exchanging names once and using id_of(). (A name-exchange handshake
// frame is future work; every current deployment constructs both tables
// from the same registration code.)

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace askel {

enum class PodTag : std::uint8_t {
  kVoid = 0,
  kI64 = 1,
  kU64 = 2,
  kF64 = 3,
  kBytes = 4,
};

const char* to_string(PodTag t);

/// One wire-serializable value: the argument or result of a named call.
class PodValue {
 public:
  PodValue() = default;
  static PodValue of_void() { return PodValue{}; }
  static PodValue of_i64(std::int64_t v);
  static PodValue of_u64(std::uint64_t v);
  static PodValue of_f64(double v);
  static PodValue of_bytes(std::string v);

  PodTag tag() const { return tag_; }
  /// Typed accessors; reading the wrong flavor returns the type's zero —
  /// callers that care check tag() first (mirrors the engine's std::any
  /// discipline without exceptions on the wire path).
  std::int64_t as_i64() const { return tag_ == PodTag::kI64 ? i_ : 0; }
  std::uint64_t as_u64() const { return tag_ == PodTag::kU64 ? u_ : 0; }
  double as_f64() const { return tag_ == PodTag::kF64 ? f_ : 0.0; }
  const std::string& as_bytes() const { return b_; }

  bool operator==(const PodValue&) const = default;

 private:
  PodTag tag_ = PodTag::kVoid;
  std::int64_t i_ = 0;
  std::uint64_t u_ = 0;
  double f_ = 0.0;
  std::string b_;
};

inline constexpr std::uint8_t kPodCodecVersion = 1;
inline constexpr std::size_t kPodHeaderSize = 1 + 1 + 2 + 4;

/// Serialize header + body. The result is bounded by kMaxNamedPayload for
/// every scalar tag; only kBytes can exceed it, and the transport refuses
/// such frames before they reach the wire.
std::vector<std::uint8_t> encode_pod(const PodValue& v);

/// Parse exactly one value. False on unknown version/tag, a body length
/// that disagrees with the tag, truncation, or trailing bytes.
bool decode_pod(const std::uint8_t* wire, std::size_t size, PodValue& out);

/// Stable wire identity of a registered muscle. 0 is never assigned.
using WireMuscleId = std::uint32_t;

/// Thread-safe name -> id -> function registry. Shared by the pool side
/// (naming the muscle in kSubmitNamed frames) and the worker-host side
/// (executing it in the serve loop).
class MuscleTable {
 public:
  using Fn = std::function<PodValue(const PodValue&)>;

  /// Register `fn` under `name`. A fresh name gets the next dense id; an
  /// existing name keeps its id (the wire id is STABLE) and the function is
  /// replaced — re-registration is how a host hot-swaps an implementation
  /// without renumbering the protocol.
  WireMuscleId register_muscle(std::string name, Fn fn);

  std::optional<WireMuscleId> id_of(std::string_view name) const;
  std::optional<std::string> name_of(WireMuscleId id) const;
  std::size_t size() const;

  /// Execute muscle `id` on `arg`. False when the id is unknown. The
  /// function runs OUTSIDE the table lock (it may be arbitrarily slow and
  /// may itself register muscles).
  bool invoke(WireMuscleId id, const PodValue& arg, PodValue& result) const;

 private:
  struct Entry {
    std::string name;
    std::shared_ptr<Fn> fn;
  };
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // index = id - 1
};

/// Process-wide default table (what TcpWorkerHost serves when no explicit
/// table is injected). Lazily constructed, never destroyed before exit.
MuscleTable& default_muscle_table();

}  // namespace askel
