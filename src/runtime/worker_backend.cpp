#include "runtime/worker_backend.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace askel {

ThreadBackend::~ThreadBackend() { cancel(); }

void ThreadBackend::bind(ProvisionResult on_result) {
  std::lock_guard lock(mu_);
  result_ = std::move(on_result);
}

WorkerBackend::Provision ThreadBackend::provision(int have, int want) {
  std::lock_guard lock(mu_);
  if (want <= have || delay_ <= 0.0) return Provision::kReady;
  // Simulated remote-worker join (the PR 1 provision timer, relocated): the
  // effective LP catches up with the requested one only after the delay.
  // Finished timers are reaped here so the vector stays bounded.
  reap_finished_locked();
  auto done = std::make_shared<std::atomic<bool>>(false);
  // Copy the callback: the timer body must not touch backend state (it only
  // reports into the pool, whose handler re-validates against the latest
  // request — a stale join never exceeds it, never shrinks a larger value).
  ProvisionResult result = result_;
  std::jthread timer(
      [result, want, delay = delay_, done](std::stop_token st) {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::duration<double>(delay);
        while (std::chrono::steady_clock::now() < deadline) {
          if (st.stop_requested()) {
            done->store(true, std::memory_order_release);
            return;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (result) result(want, true);
        done->store(true, std::memory_order_release);
      });
  timers_.push_back(Timer{std::move(done), std::move(timer)});
  return Provision::kPending;
}

void ThreadBackend::cancel() {
  std::vector<Timer> timers;
  {
    std::lock_guard lock(mu_);
    timers.swap(timers_);
  }
  // Joined outside mu_: a timer past its sleep may be inside the pool's
  // result handler, which never takes this backend's mutex — but the pool
  // may call cancel() while holding its own, so no lock may be held here.
  timers.clear();
}

void ThreadBackend::reap_finished_locked() {
  std::erase_if(timers_, [](const Timer& t) {
    // `done` is the thread body's final act, so joining here (jthread dtor)
    // is immediate and never waits on a thread still inside the callback.
    return t.done->load(std::memory_order_acquire);
  });
}

void ThreadBackend::set_provision_delay(Duration d) {
  std::lock_guard lock(mu_);
  delay_ = std::max(0.0, d);
}

Duration ThreadBackend::provision_delay() const {
  std::lock_guard lock(mu_);
  return delay_;
}

}  // namespace askel
