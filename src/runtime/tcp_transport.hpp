#pragma once
// TcpBackend: RemoteWorkerBackend over real TCP sockets — the first backend
// whose remote side can EXECUTE work (registered muscles, muscle_table.hpp)
// instead of merely echoing lease brackets.
//
// Two halves, deliberately startable in different processes / on different
// hosts:
//
//   * TcpWorkerHost — the worker-host side. Binds a listener (port 0 =
//     ephemeral, port() reports the choice), accepts one connection per
//     pool-worker session and runs a serve loop per connection: sends
//     kHello first (mirroring the subprocess child, so try_connect's "wait
//     for hello" contract is transport-independent), then answers
//       kSubmit      -> kComplete          (batch-transparent: one Complete
//                                           per Submit regardless of `b`)
//       kHeartbeat   -> kHeartbeatAck
//       kSubmitNamed -> kResultNamed       (decode argument, look the wire
//                                           id up in the muscle table,
//                                           execute, encode the result)
//       kRetire      -> kRetired + close
//     A malformed argument answers kBadArgument, an unregistered id
//     kUnknownMuscle — protocol errors are *replies*, never torn links.
//     The crash_after_tasks hook closes the connection after the Nth
//     Submit WITHOUT completing it — a deterministic "peer died between
//     Submit and Complete" for the crash-recovery conformance tests.
//
//   * TcpTransportFactory / TcpBackend — the pool side. try_connect does a
//     nonblocking connect with the deadline anchored once at entry
//     (covering connect AND the hello wait, exactly the subprocess join
//     contract), sets TCP_NODELAY (frames are 33 bytes; Nagle would add
//     40 ms to every lease round trip), and hands back an FdTransport —
//     the same deadline-honoring frame I/O the subprocess transport uses
//     (frame_io.hpp), which is the point: one audited wire layer.
//
// Loopback is the tested configuration (conformance + bench); nothing here
// assumes it — the host field takes any IPv4 address.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/muscle_table.hpp"
#include "runtime/remote_backend.hpp"
#include "runtime/transport.hpp"

namespace askel {

struct TcpWorkerHostConfig {
  /// 0 = ephemeral (the OS picks; read it back via port()).
  std::uint16_t port = 0;
  /// Test hook mirroring SubprocessBackendConfig::crash_after_tasks: the
  /// serve loop closes its connection after reading the Nth Submit and
  /// BEFORE writing its Complete (0 = never) — a real peer death inside
  /// the lease window, detected pool-side as EOF.
  int crash_after_tasks = 0;
};

/// The worker-host side: listener + one serve thread per accepted session.
/// Lifecycle: constructor binds and starts accepting (listening() false =
/// bind failed); stop() (or the destructor) closes the listener, shuts down
/// every live session socket and joins all threads.
class TcpWorkerHost {
 public:
  explicit TcpWorkerHost(MuscleTable& table = default_muscle_table(),
                         TcpWorkerHostConfig cfg = {});
  ~TcpWorkerHost();

  TcpWorkerHost(const TcpWorkerHost&) = delete;
  TcpWorkerHost& operator=(const TcpWorkerHost&) = delete;

  bool listening() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }
  void stop();

  std::uint64_t sessions_accepted() const;
  std::uint64_t named_calls() const;
  /// Named calls that answered a non-kOk status (bad argument / unknown id).
  std::uint64_t named_errors() const;

 private:
  void accept_loop();
  void serve(int fd);

  MuscleTable& table_;
  const TcpWorkerHostConfig cfg_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread acceptor_;
  mutable std::mutex mu_;  // sessions_ / session_fds_ / stats
  std::vector<std::thread> sessions_;
  std::vector<int> session_fds_;
  std::uint64_t accepted_ = 0;
  std::uint64_t named_calls_ = 0;
  std::uint64_t named_errors_ = 0;
};

struct TcpBackendConfig {
  /// The worker host to dial. Loopback default matches the in-process
  /// TcpWorkerHost arrangement the tests and bench use.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int max_workers = 64;
  /// One try_connect deadline covering the nonblocking connect AND the
  /// hello wait, anchored once at entry.
  Duration connect_timeout = 5.0;
  Duration complete_timeout = 2.0;
  Duration heartbeat_timeout = 1.0;
  /// Per-lease task batching (RemoteBackendConfig::lease_batch).
  int lease_batch = 1;
  Duration batch_flush = 0.005;
};

class TcpTransportFactory final : public TransportFactory {
 public:
  explicit TcpTransportFactory(TcpBackendConfig cfg = {});
  Connect try_connect(int worker) override;

  /// Observed connect -> Hello latencies (microseconds), in join order —
  /// the transport bench reports these next to the subprocess fork+hello
  /// numbers.
  std::vector<double> join_latencies_us() const;

 private:
  const TcpBackendConfig cfg_;
  mutable std::mutex mu_;
  std::vector<double> join_us_;
};

namespace detail {
/// Base-from-member: the factory must outlive (construct before) the
/// RemoteWorkerBackend base that references it.
struct TcpFactoryHolder {
  explicit TcpFactoryHolder(const TcpBackendConfig& cfg) : factory(cfg) {}
  TcpTransportFactory factory;
};
}  // namespace detail

class TcpBackend : private detail::TcpFactoryHolder,
                   public RemoteWorkerBackend {
 public:
  explicit TcpBackend(TcpBackendConfig cfg = {})
      : detail::TcpFactoryHolder(cfg),
        RemoteWorkerBackend(factory, remote_config(cfg)) {}

  TcpTransportFactory& transport_factory() { return factory; }

 private:
  static RemoteBackendConfig remote_config(const TcpBackendConfig& cfg) {
    RemoteBackendConfig r;
    r.max_workers = cfg.max_workers;
    r.connect_timeout = cfg.connect_timeout + 1.0;
    r.complete_timeout = cfg.complete_timeout;
    r.heartbeat_timeout = cfg.heartbeat_timeout;
    r.lease_batch = cfg.lease_batch;
    r.batch_flush = cfg.batch_flush;
    r.name = "tcp";
    return r;
  }
};

}  // namespace askel
