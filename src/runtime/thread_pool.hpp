#pragma once
// Resizable work-stealing worker pool: the "Level of Parallelism" (LP)
// actuator.
//
// Skandium's autonomic layer adjusts the number of threads allocated to a
// skeleton while it runs. This pool supports that: `set_target_lp(n)` takes
// effect immediately for idle workers and at the next task boundary for busy
// ones (a running muscle is never interrupted — same semantics as the Java
// original, where a thread is only parked between tasks).
//
// Scheduling structure (contention-free hot path):
//  * every worker owns a LIFO deque (`WorkDeque`); tasks submitted from
//    inside a task go to the submitting worker's own deque, so in steady
//    state submit/pop touch one uncontended lock and the pool-wide mutex is
//    never taken;
//  * tasks submitted from outside the pool land in a lock-free MPSC
//    injection queue (Vyukov-style: wait-free producer push; the one worker
//    that claims the drain batch-moves everything into its own deque);
//  * tenant-tagged tasks (multi-tenant mode) land in per-tenant run queues
//    and are dispatched by a grant-weighted policy (see "Tenant-aware
//    dispatch" below), turning the coordinator's LP grants into actual
//    scheduling isolation;
//  * a worker that runs dry drains the injection queue, then the tenant
//    queues, then steals the oldest task from a sibling's deque (parked
//    siblings included, so no work ever strands on a parked worker);
//  * the pool-wide mutex `mu_` is control-plane only: LP changes, parking,
//    sleeping and shutdown.
//
// Tenant-aware dispatch (grant vector -> steal weights):
//  * the LP-budget coordinator installs its grant vector via
//    `set_tenant_grant`; each tenant's queue carries two relaxed gauges,
//    `queued` (tasks waiting) and `running` (workers executing that tenant
//    right now);
//  * a worker picking its next tenant queue scores every non-empty queue:
//    tenants *below* their grant score `1 + (grant - running)` (most-starved
//    first, so a tenant holding G threads of grant converges to ~G threads
//    of service), tenants *at or above* their grant score
//    `1 / (2 + running - grant)` — always < 1, so deficit tenants strictly
//    outrank surplus ones, while idle capacity still falls through to any
//    ready tenant (work conservation; a zero-grant tenant is never starved
//    forever, merely deprioritized);
//  * the weights are advisory reads of relaxed atomics: a reclaimed grant
//    may be observed one dispatch late, bounding a victim's overshoot to
//    one task per worker, never accumulating.
//
// Worker backends (PR 5): the pool schedules; the attached WorkerBackend
// (worker_backend.hpp) owns where the capacity behind the workers comes
// from. Growth routes through backend.provision() — instant for in-process
// threads, asynchronous (and fallible) for remote workers — and remote
// backends bracket every executed task with a transport lease. The default
// ThreadBackend reproduces the pre-seam behavior byte-identically.
//
// Invariants:
//  * at most `target_lp()` workers execute tasks concurrently;
//  * workers are spawned lazily, up to `max_lp`, and parked (not destroyed)
//    when the target shrinks, so growing again is cheap;
//  * tasks submitted from within tasks are allowed (the skeleton engine is
//    continuation-passing and never blocks a worker on a future, so a pool
//    with LP=1 still makes progress on arbitrarily nested skeletons).

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/lp_gauge.hpp"
#include "runtime/mpsc_queue.hpp"
#include "runtime/task.hpp"
#include "runtime/work_queue.hpp"
#include "util/clock.hpp"

namespace askel {

class WorkerBackend;
class ThreadBackend;

/// Where tenant-tagged submits go. kWeighted (default) routes them to
/// per-tenant run queues served by the grant-weighted pick; kFifo routes
/// them exactly like untagged tasks (PR 2 behavior: accounting only, no
/// isolation) — the A/B baseline for bench/multi_tenant. Switching modes
/// never strands work: queues filled under kWeighted are drained regardless
/// of the current mode.
enum class TenantDispatch : int { kFifo = 0, kWeighted = 1 };

/// Per-tenant run-queue service order. kLifo (default) pops the newest task
/// first — depth-first for nested skeletons, the original behavior. kFifo
/// serves the oldest first — fair-arrival order for tenants whose tasks are
/// independent requests rather than a task tree.
enum class TenantOrdering : int { kLifo = 0, kFifo = 1 };

class ResizableThreadPool {
 public:
  /// Creates the pool with `initial_lp` runnable workers; `max_lp` bounds how
  /// far the autonomic layer may ever grow it (the paper's "maximum LP" that
  /// avoids overloading the system).
  ResizableThreadPool(int initial_lp, int max_lp,
                      const Clock* clock = &default_clock());
  ~ResizableThreadPool();

  ResizableThreadPool(const ResizableThreadPool&) = delete;
  ResizableThreadPool& operator=(const ResizableThreadPool&) = delete;

  /// Enqueue a task. From a worker thread of this pool the task goes to that
  /// worker's own LIFO deque (depth-first for nested skeletons, no global
  /// lock); from any other thread it goes to the injection queue.
  void submit(Task task);

  /// Tenant-tagged submit: the task goes to `tenant`'s run queue (kWeighted
  /// mode) where the grant-weighted dispatch serves it, plus per-tenant
  /// accounting. Tenant ids are positive integers handed out by the
  /// LP-budget coordinator; each live id owns one of kTenantSlots direct
  /// accounting slots, claimed by CAS — two ids hashing to the same slot no
  /// longer merge silently, the loser falls back to an exact (mutex-guarded)
  /// side map. Untagged submits (tenant <= 0 — the default overload, and
  /// every run without multi-tenant wiring) skip all of this: the
  /// single-tenant hot path PR 1 decontended pays one predictable branch.
  void submit(Task task, int tenant);

  /// Tasks ever submitted under exactly `tenant` (0 for ids <= 0, which are
  /// never counted). Exact even when ids collide on an accounting slot.
  std::uint64_t tenant_submitted(int tenant) const;

  /// Install one entry of the coordinator's grant vector (the tenant's
  /// current LP grant, >= 0). Relaxedly read by the dispatch weights; a
  /// worker mid-pick may use a grant one update stale, which bounds any
  /// tenant's overshoot to one task per worker.
  void set_tenant_grant(int tenant, int grant);
  /// Install many grant-vector entries in one call. Direct-slot hits store
  /// lock-free exactly like set_tenant_grant; every side-map miss is
  /// resolved under ONE overflow_mu_ acquisition instead of one per tenant.
  /// This is the coordinator's arbitration path: a grouped arbitration at
  /// scale re-grants thousands of side-map tenants per pass, and the batch
  /// keeps that one lock round trip.
  void set_tenant_grants(const std::vector<std::pair<int, int>>& grants);
  int tenant_grant(int tenant) const;
  /// Tasks waiting in `tenant`'s run queue right now.
  int tenant_queued(int tenant) const;
  /// Workers executing `tenant`'s tasks right now.
  int tenant_running(int tenant) const;

  /// Select where tenant-tagged submits are routed (default kWeighted).
  void set_tenant_dispatch(TenantDispatch mode);
  TenantDispatch tenant_dispatch() const;

  /// Per-tenant service order of the tenant's run queue (default kLifo).
  /// Takes effect on the next dispatch pick; tasks already queued are served
  /// under the new order. Reset to kLifo when the tenant is retired.
  void set_tenant_ordering(int tenant, TenantOrdering ordering);
  TenantOrdering tenant_ordering(int tenant) const;

  /// Retire a long-dead tenant id: drop its accounting/dispatch state so the
  /// exact side map stays O(peak live tenants) instead of O(distinct ids
  /// ever). Succeeds only when the tenant's per-tenant gauges show no queued
  /// task and no task running (returns false otherwise — call again once the
  /// tenant drained). Under kFifo dispatch tagged tasks bypass the tenant
  /// queues and are NOT tracked by those gauges, so there the caller must
  /// itself ensure the tenant's work completed (the coordinator unregisters
  /// only after a run's future resolved, which satisfies this).
  /// The caller guarantees the id is dead: no further submits, grants or
  /// stat queries under it (the LP-budget coordinator calls this from
  /// unregister_tenant, whose contract already forbids touching the id
  /// afterwards). A retired direct slot becomes claimable by the next id
  /// hashing to it; a retired side-map state moves to an internal free pool
  /// for reuse — never deallocated mid-run, so a worker still holding a
  /// stale pointer from a racing dispatch scan stays safe.
  bool retire_tenant(int tenant);
  /// Live entries in the exact accounting side map (monitoring/tests).
  std::size_t tenant_overflow_size() const;

  /// Change the level of parallelism. Clamped to [1, min(max_lp, lp_limit)].
  /// Growing spawns or unparks workers; shrinking parks surplus workers at
  /// their next task boundary. Returns the clamped value actually applied
  /// (for a delayed grow, the value that will eventually apply).
  int set_target_lp(int n);

  /// Pool-wide LP budget cap, owned by the LP-budget coordinator when one is
  /// attached. Every set_target_lp is clamped against it, so the cap holds
  /// regardless of who requests growth. Clamped to [1, max_lp]; shrinking the
  /// cap below the current target shrinks the target too. Returns the applied
  /// cap.
  int set_lp_limit(int n);
  int lp_limit() const;

  /// Attach a worker backend — "where LP lives" (see worker_backend.hpp).
  /// nullptr restores the built-in ThreadBackend. Call before arming
  /// controllers / submitting work: workers read the backend pointer with no
  /// lock on their task path. The backend must outlive the pool (the pool
  /// cancels its pending provisions on destruction). Growth requested while
  /// the previous backend was attached resolves under the old backend's
  /// callbacks; quiesce first.
  void set_backend(WorkerBackend* backend);
  WorkerBackend* backend() const;

  /// Provisions that failed (backend refused or could not join workers).
  /// Each failure also abandoned its pending request: target_lp() falls back
  /// to effective_lp(), so failed growth never wedges the pool. The
  /// controller diffs this counter to surface DecisionReason::kProvisionFailed.
  std::uint64_t provision_failures() const;

  /// Invoked (on a backend or caller thread, with no pool lock held) after a
  /// provision failure: `failed_target` is the LP that could not be reached,
  /// `effective` the LP actually running. The LP-budget coordinator installs
  /// a handler to claw the unprovisionable LP back into its budget.
  using ProvisionFailureHandler =
      std::function<void(int failed_target, int effective)>;
  void set_provision_failure_handler(ProvisionFailureHandler handler);

  /// Simulated worker-provisioning delay (paper §6 future work: a
  /// distributed backend adds workers "like adding threads", but a remote
  /// worker takes time to join). With a non-zero delay, LP increases take
  /// effect only after `d` seconds; decreases stay immediate (parking is
  /// local). 0 (default) restores plain multicore semantics. Forwarded to
  /// the attached backend; real remote backends ignore it (their join
  /// latency is measured, not configured).
  void set_provision_delay(Duration d);
  Duration provision_delay() const;

  /// Requested LP: what the last set_target_lp asked for. This is what the
  /// controller reasons against (its own pending requests included).
  int target_lp() const;
  /// Effective LP: how many workers are runnable right now. Equal to
  /// target_lp() except during a provisioning window.
  int effective_lp() const;
  int max_lp() const { return max_lp_; }
  /// Number of OS threads created so far (parked workers included).
  int spawned_workers() const;
  /// Tasks waiting in any queue (injection + all worker deques) right now.
  std::size_t queued() const;
  /// Number of successful cross-worker steals since construction. A load
  /// observability stat: steals measure how often workers ran dry and
  /// migrated work, i.e. how unbalanced the task tree was.
  std::uint64_t steals() const;

  /// Busy-worker gauge; feeds the Figures 5-7 "active threads" series.
  LpGauge& gauge() { return gauge_; }
  const LpGauge& gauge() const { return gauge_; }

  /// Record of every LP target change: (time, new target). Useful in tests
  /// and to overlay controller decisions on the thread-activity plots.
  const TimeSeries& lp_history() const { return lp_history_; }

  /// Block until every queue is empty and no worker is busy. Intended for
  /// tests and examples; the skeleton engine uses per-execution futures.
  void wait_idle();

 private:
  /// One tenant's scheduling state: run queue + accounting + dispatch
  /// gauges. Lives either in a direct slot of `tenant_slots_` (claimed by
  /// CAS on `id`) or, on slot collision, in the exact side map. One cache
  /// line per slot: concurrent tenants must not false-share on submit.
  struct alignas(64) TenantState {
    std::atomic<int> id{0};       // owning tenant id; 0 = slot unclaimed
    std::atomic<int> grant{0};    // coordinator grant vector entry
    std::atomic<int> running{0};  // workers executing this tenant now
    std::atomic<int> queued{0};   // tasks in `tasks` (advisory, for scans)
    std::atomic<int> ordering{0}; // TenantOrdering (kLifo default)
    std::atomic<std::uint64_t> submitted{0};
    std::mutex mu;                // guards `tasks` only
    std::deque<Task> tasks;       // run queue (newest popped first by default)
  };

  void worker_loop(int index);
  void spawn_locked(int count);
  /// Locked core of set_target_lp/set_lp_limit: clamps against max_lp and
  /// lp_limit, installs the request, and either applies it (`applied`, with
  /// `grew` saying parked workers need waking) or registers a provision
  /// timer for a delayed grow. Returns the clamped value.
  int request_target_locked(int n, bool& grew, bool& applied);
  int apply_target_locked(int n);
  /// `from_tenant` is set when the task came from a tenant run queue (its
  /// `running` gauge was incremented and must be decremented after the
  /// task); null for every other source.
  bool try_get_task(int index, Task& out, TenantState*& from_tenant);
  /// Grant-weighted pick over non-empty tenant queues (see file header);
  /// `rot` rotates the scan start so ties round-robin across workers.
  TenantState* pick_tenant_queue(unsigned rot) const;
  /// The state owning exactly `tenant`, or nullptr. Never creates.
  TenantState* find_tenant_state(int tenant) const;
  /// The state owning exactly `tenant`, created (slot CAS-claim, else exact
  /// side map) if missing.
  TenantState& get_tenant_state(int tenant);
  /// Miss-path core of get_tenant_state: requires overflow_mu_ held, so a
  /// batch caller (set_tenant_grants) resolves many misses under one
  /// acquisition.
  TenantState& resolve_tenant_state_locked(int tenant);
  void maybe_wake_one();
  /// Backend provision-outcome sink (bound at attach): applies joined
  /// targets with the same stale-join guards the PR 1 timer used, or
  /// abandons failed requests and surfaces the failure.
  void on_provision_result(int target, bool ok);
  void notify_provision_failure(int failed_target);

  const Clock* clock_;
  const int max_lp_;
  LpGauge gauge_;
  TimeSeries lp_history_;

  // ---- data plane: per-worker deques + injection queue, no global mutex ----
  std::vector<std::unique_ptr<WorkDeque>> deques_;  // max_lp_ slots, fixed
  // External submits push lock-free (one atomic exchange per producer); the
  // worker that wins the `inject_draining_` claim batch-drains the whole
  // queue into its own deque, where siblings can steal it. Replaces the old
  // inject_mu_/std::deque pair, whose single mutex serialized every
  // cross-thread submit against every injection poll.
  MpscTaskQueue injected_;
  std::atomic<bool> inject_draining_{false};
  std::atomic<std::size_t> queued_{0};     // tasks waiting in any queue
  std::atomic<std::int64_t> inflight_{0};  // queued + currently running
  std::atomic<int> idle_sleepers_{0};      // runnable workers asleep on work_cv_
  std::atomic<int> searching_{0};          // thieves between wake-up and find
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<int> requested_lp_{1};
  std::atomic<int> target_lp_{1};  // effective: what the worker predicate enforces
  std::atomic<int> lp_limit_;      // budget cap; initialized to max_lp_
  std::atomic<bool> stopping_{false};

  // ---- tenant plane: per-tenant run queues + grant-weighted dispatch ------
  // Direct slots for the common case (<= kTenantSlots live ids, no
  // collision): submit-side lookup is one relaxed load. Colliding or
  // overflowing ids live in the exact side map behind `overflow_mu_`;
  // `overflow_states_` lets the dispatch scan skip the map (and its lock)
  // entirely while it is empty. `tenant_tasks_` is the sum of all tenant
  // `queued` gauges: the untagged dispatch path pays a single relaxed load
  // to skip the whole tenant plane when no tagged work exists.
  static constexpr int kTenantSlots = 64;
  mutable std::array<TenantState, kTenantSlots> tenant_slots_{};
  mutable std::mutex overflow_mu_;
  mutable std::unordered_map<int, std::unique_ptr<TenantState>> overflow_;
  // States of retired side-map tenants, kept for reuse by later overflow
  // ids (bounds the map at O(peak live overflow tenants) while keeping
  // stale TenantState pointers — a worker between dispatch scan and queue
  // lock — valid for the pool's whole lifetime).
  std::vector<std::unique_ptr<TenantState>> retired_states_;
  std::atomic<int> overflow_states_{0};
  // Highest claimed slot index + 1 (a monotonic max: retiring a slot clears
  // its id but never lowers the mark, so the dispatch scan may visit a few
  // empty slots after churn but never misses a claimed one): the pick scans
  // only [0, hwm) instead of all 64 cache-line-aligned slots.
  std::atomic<int> tenant_slot_hwm_{0};
  std::atomic<int> tenant_tasks_{0};
  std::atomic<int> tenant_dispatch_{static_cast<int>(TenantDispatch::kWeighted)};

  // ---- backend plane: where worker capacity comes from ---------------------
  // The default is the built-in ThreadBackend (instant in-process workers;
  // provision delay simulated). `backend_remote_` gates the per-task
  // transport bracket in one relaxed load, so the thread-backend hot path
  // is exactly the PR 1 loop. `sync_failed_target_` carries a synchronous
  // provision failure from request_target_locked (under mu_) to the caller,
  // which invokes the failure handler after dropping mu_ (the handler takes
  // the coordinator's mutex, which sits ABOVE the pool's in the lock order).
  std::unique_ptr<ThreadBackend> default_backend_;
  std::atomic<WorkerBackend*> backend_{nullptr};
  std::atomic<bool> backend_remote_{false};
  std::atomic<std::uint64_t> provision_failures_{0};
  int sync_failed_target_ = 0;  // under mu_
  std::mutex handler_mu_;       // leaf: guards the failure handler slot
  std::condition_variable handler_cv_;  // uninstall waits out invocations
  int handler_inflight_ = 0;            // under handler_mu_
  ProvisionFailureHandler provision_failure_handler_;

  // ---- control plane: LP changes, parking, sleeping, shutdown --------------
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // runnable workers wait for tasks here
  std::condition_variable park_cv_;  // surplus workers wait for LP growth here
  std::condition_variable idle_cv_;  // wait_idle()
  std::vector<std::thread> workers_;
};

}  // namespace askel
