#pragma once
// Resizable worker pool: the "Level of Parallelism" (LP) actuator.
//
// Skandium's autonomic layer adjusts the number of threads allocated to a
// skeleton while it runs. This pool supports that: `set_target_lp(n)` takes
// effect immediately for idle workers and at the next task boundary for busy
// ones (a running muscle is never interrupted — same semantics as the Java
// original, where a thread is only parked between tasks).
//
// Invariants:
//  * at most `target_lp()` workers execute tasks concurrently;
//  * workers are spawned lazily, up to `max_lp`, and parked (not destroyed)
//    when the target shrinks, so growing again is cheap;
//  * tasks submitted from within tasks are allowed (the skeleton engine is
//    continuation-passing and never blocks a worker on a future, so a pool
//    with LP=1 still makes progress on arbitrarily nested skeletons).

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/lp_gauge.hpp"
#include "runtime/task.hpp"
#include "util/clock.hpp"

namespace askel {

class ResizableThreadPool {
 public:
  /// Creates the pool with `initial_lp` runnable workers; `max_lp` bounds how
  /// far the autonomic layer may ever grow it (the paper's "maximum LP" that
  /// avoids overloading the system).
  ResizableThreadPool(int initial_lp, int max_lp,
                      const Clock* clock = &default_clock());
  ~ResizableThreadPool();

  ResizableThreadPool(const ResizableThreadPool&) = delete;
  ResizableThreadPool& operator=(const ResizableThreadPool&) = delete;

  /// Enqueue a task (executed in LIFO order: depth-first for nested
  /// skeletons). Safe from any thread, including workers.
  void submit(Task task);

  /// Change the level of parallelism. Clamped to [1, max_lp]. Growing spawns
  /// or unparks workers; shrinking parks surplus workers at their next task
  /// boundary. Returns the clamped value actually applied (for a delayed
  /// grow, the value that will eventually apply).
  int set_target_lp(int n);

  /// Simulated worker-provisioning delay (paper §6 future work: a
  /// distributed backend adds workers "like adding threads", but a remote
  /// worker takes time to join). With a non-zero delay, LP increases take
  /// effect only after `d` seconds; decreases stay immediate (parking is
  /// local). 0 (default) restores plain multicore semantics.
  void set_provision_delay(Duration d);
  Duration provision_delay() const;

  /// Requested LP: what the last set_target_lp asked for. This is what the
  /// controller reasons against (its own pending requests included).
  int target_lp() const;
  /// Effective LP: how many workers are runnable right now. Equal to
  /// target_lp() except during a provisioning window.
  int effective_lp() const;
  int max_lp() const { return max_lp_; }
  /// Number of OS threads created so far (parked workers included).
  int spawned_workers() const;
  /// Tasks waiting in the queue right now.
  std::size_t queued() const;

  /// Busy-worker gauge; feeds the Figures 5-7 "active threads" series.
  LpGauge& gauge() { return gauge_; }
  const LpGauge& gauge() const { return gauge_; }

  /// Record of every LP target change: (time, new target). Useful in tests
  /// and to overlay controller decisions on the thread-activity plots.
  const TimeSeries& lp_history() const { return lp_history_; }

  /// Block until the queue is empty and no worker is busy. Intended for
  /// tests and examples; the skeleton engine uses per-execution futures.
  void wait_idle();

 private:
  void worker_loop(int index);
  void spawn_locked(int count);
  int apply_target_locked(int n);

  const Clock* clock_;
  const int max_lp_;
  LpGauge gauge_;
  TimeSeries lp_history_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // workers wait for tasks / unpark
  std::condition_variable idle_cv_;   // wait_idle()
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  std::vector<std::jthread> provision_timers_;
  Duration provision_delay_ = 0.0;
  int requested_lp_ = 1;
  int target_lp_ = 1;  // effective: what the worker predicate enforces
  int running_ = 0;  // workers currently executing a task
  bool stopping_ = false;
};

}  // namespace askel
