#pragma once
// Resizable work-stealing worker pool: the "Level of Parallelism" (LP)
// actuator.
//
// Skandium's autonomic layer adjusts the number of threads allocated to a
// skeleton while it runs. This pool supports that: `set_target_lp(n)` takes
// effect immediately for idle workers and at the next task boundary for busy
// ones (a running muscle is never interrupted — same semantics as the Java
// original, where a thread is only parked between tasks).
//
// Scheduling structure (contention-free hot path):
//  * every worker owns a LIFO deque (`WorkDeque`); tasks submitted from
//    inside a task go to the submitting worker's own deque, so in steady
//    state submit/pop touch one uncontended lock and the pool-wide mutex is
//    never taken;
//  * tasks submitted from outside the pool land in a global injection queue;
//  * a worker that runs dry drains the injection queue, then steals the
//    oldest task from a sibling's deque (parked siblings included, so no
//    work ever strands on a parked worker);
//  * the pool-wide mutex `mu_` is control-plane only: LP changes, parking,
//    sleeping and shutdown.
//
// Invariants:
//  * at most `target_lp()` workers execute tasks concurrently;
//  * workers are spawned lazily, up to `max_lp`, and parked (not destroyed)
//    when the target shrinks, so growing again is cheap;
//  * tasks submitted from within tasks are allowed (the skeleton engine is
//    continuation-passing and never blocks a worker on a future, so a pool
//    with LP=1 still makes progress on arbitrarily nested skeletons).

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/lp_gauge.hpp"
#include "runtime/task.hpp"
#include "runtime/work_queue.hpp"
#include "util/clock.hpp"

namespace askel {

class ResizableThreadPool {
 public:
  /// Creates the pool with `initial_lp` runnable workers; `max_lp` bounds how
  /// far the autonomic layer may ever grow it (the paper's "maximum LP" that
  /// avoids overloading the system).
  ResizableThreadPool(int initial_lp, int max_lp,
                      const Clock* clock = &default_clock());
  ~ResizableThreadPool();

  ResizableThreadPool(const ResizableThreadPool&) = delete;
  ResizableThreadPool& operator=(const ResizableThreadPool&) = delete;

  /// Enqueue a task. From a worker thread of this pool the task goes to that
  /// worker's own LIFO deque (depth-first for nested skeletons, no global
  /// lock); from any other thread it goes to the injection queue.
  void submit(Task task);

  /// Tenant-tagged submit: identical scheduling, plus per-tenant accounting
  /// (one relaxed increment of a cacheline-private counter). Tenant ids are
  /// positive integers handed out by the LP-budget coordinator, hashed over
  /// kTenantSlots accounting slots. Untagged submits (tenant <= 0 — the
  /// default overload, and every run without multi-tenant wiring) skip the
  /// accounting entirely: the single-tenant hot path PR 1 decontended pays
  /// nothing for this hook.
  void submit(Task task, int tenant);

  /// Tasks ever submitted under `tenant`'s accounting slot (0 for ids <= 0,
  /// which are never counted).
  std::uint64_t tenant_submitted(int tenant) const;

  /// Change the level of parallelism. Clamped to [1, min(max_lp, lp_limit)].
  /// Growing spawns or unparks workers; shrinking parks surplus workers at
  /// their next task boundary. Returns the clamped value actually applied
  /// (for a delayed grow, the value that will eventually apply).
  int set_target_lp(int n);

  /// Pool-wide LP budget cap, owned by the LP-budget coordinator when one is
  /// attached. Every set_target_lp is clamped against it, so the cap holds
  /// regardless of who requests growth. Clamped to [1, max_lp]; shrinking the
  /// cap below the current target shrinks the target too. Returns the applied
  /// cap.
  int set_lp_limit(int n);
  int lp_limit() const;

  /// Simulated worker-provisioning delay (paper §6 future work: a
  /// distributed backend adds workers "like adding threads", but a remote
  /// worker takes time to join). With a non-zero delay, LP increases take
  /// effect only after `d` seconds; decreases stay immediate (parking is
  /// local). 0 (default) restores plain multicore semantics.
  void set_provision_delay(Duration d);
  Duration provision_delay() const;

  /// Requested LP: what the last set_target_lp asked for. This is what the
  /// controller reasons against (its own pending requests included).
  int target_lp() const;
  /// Effective LP: how many workers are runnable right now. Equal to
  /// target_lp() except during a provisioning window.
  int effective_lp() const;
  int max_lp() const { return max_lp_; }
  /// Number of OS threads created so far (parked workers included).
  int spawned_workers() const;
  /// Tasks waiting in any queue (injection + all worker deques) right now.
  std::size_t queued() const;
  /// Number of successful cross-worker steals since construction. A load
  /// observability stat: steals measure how often workers ran dry and
  /// migrated work, i.e. how unbalanced the task tree was.
  std::uint64_t steals() const;

  /// Busy-worker gauge; feeds the Figures 5-7 "active threads" series.
  LpGauge& gauge() { return gauge_; }
  const LpGauge& gauge() const { return gauge_; }

  /// Record of every LP target change: (time, new target). Useful in tests
  /// and to overlay controller decisions on the thread-activity plots.
  const TimeSeries& lp_history() const { return lp_history_; }

  /// Block until every queue is empty and no worker is busy. Intended for
  /// tests and examples; the skeleton engine uses per-execution futures.
  void wait_idle();

 private:
  void worker_loop(int index);
  void spawn_locked(int count);
  /// Locked core of set_target_lp/set_lp_limit: clamps against max_lp and
  /// lp_limit, installs the request, and either applies it (`applied`, with
  /// `grew` saying parked workers need waking) or registers a provision
  /// timer for a delayed grow. Returns the clamped value.
  int request_target_locked(int n, bool& grew, bool& applied);
  int apply_target_locked(int n);
  bool try_get_task(int index, Task& out);
  void maybe_wake_one();
  void reap_finished_timers_locked();

  const Clock* clock_;
  const int max_lp_;
  LpGauge gauge_;
  TimeSeries lp_history_;

  // ---- data plane: per-worker deques + injection queue, no global mutex ----
  std::vector<std::unique_ptr<WorkDeque>> deques_;  // max_lp_ slots, fixed
  std::mutex inject_mu_;
  std::deque<Task> injected_;
  std::atomic<std::size_t> queued_{0};     // tasks waiting in any queue
  std::atomic<std::int64_t> inflight_{0};  // queued + currently running
  std::atomic<int> idle_sleepers_{0};      // runnable workers asleep on work_cv_
  std::atomic<int> searching_{0};          // thieves between wake-up and find
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<int> requested_lp_{1};
  std::atomic<int> target_lp_{1};  // effective: what the worker predicate enforces
  std::atomic<int> lp_limit_;      // budget cap; initialized to max_lp_
  std::atomic<bool> stopping_{false};

  // Per-tenant submit accounting (multi-tenant observability; relaxed, the
  // counters order nothing). One cache line per slot: concurrent tenants
  // must not false-share on the submit path.
  static constexpr int kTenantSlots = 64;
  struct alignas(64) TenantCounter {
    std::atomic<std::uint64_t> n{0};
  };
  std::array<TenantCounter, kTenantSlots> tenant_submitted_{};

  // ---- control plane: LP changes, parking, sleeping, shutdown --------------
  struct ProvisionTimer {
    std::shared_ptr<std::atomic<bool>> done;  // set as the thread's last act
    std::jthread thread;                      // destroyed first: stop + join
  };
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // runnable workers wait for tasks here
  std::condition_variable park_cv_;  // surplus workers wait for LP growth here
  std::condition_variable idle_cv_;  // wait_idle()
  std::vector<std::thread> workers_;
  std::vector<ProvisionTimer> provision_timers_;
  Duration provision_delay_ = 0.0;
};

}  // namespace askel
