#pragma once
// SubprocessBackend: RemoteWorkerBackend over real worker processes.
//
// try_connect forks a worker child per pool-worker index and speaks the
// length-prefixed frame protocol (transport.hpp) over a socketpair. The
// child is fork-without-exec and may therefore only use async-signal-safe
// operations (raw read/write/_exit on fixed stack buffers — the parent is
// multi-threaded, so the child address space holds locks it must never
// touch). It answers Submit with Complete, Heartbeat with HeartbeatAck,
// exits on Retire or EOF, and — as a test hook — can _exit after N tasks to
// exercise the crash-recovery path with a real dead process.
//
// What is real here: fork/join latency (measured, not simulated), join
// failure (capacity cap, fork/socketpair errors), crash detection (EOF on
// the socket), retire round trips, and the full framing. What is proxied:
// the task's closure still executes in the pool worker (see
// remote_backend.hpp) — the lease round trip brackets it.

#include <memory>
#include <mutex>
#include <vector>

#include "runtime/remote_backend.hpp"
#include "runtime/transport.hpp"

namespace askel {

struct SubprocessBackendConfig {
  /// Provisioning past this many worker processes fails.
  int max_workers = 64;
  /// How long try_connect waits for the child's Hello before declaring the
  /// join failed.
  Duration hello_timeout = 5.0;
  Duration complete_timeout = 2.0;
  Duration heartbeat_timeout = 1.0;
  /// Test hook: every worker process _exits after completing this many
  /// tasks (0 = never) — a real crash, detected as EOF. Counted in Submit
  /// frames, so under lease batching one batch window counts once.
  int crash_after_tasks = 0;
  /// Per-lease task batching (see RemoteBackendConfig::lease_batch): 1 =
  /// one Submit/Complete round trip per task (the legacy protocol), K > 1 =
  /// one per window of up to K tasks. The worker child is batch-transparent
  /// — it answers every Submit with one Complete regardless of `b`.
  int lease_batch = 1;
  /// Flush deadline for a partially filled batch window.
  Duration batch_flush = 0.005;
};

class SubprocessTransportFactory final : public TransportFactory {
 public:
  explicit SubprocessTransportFactory(SubprocessBackendConfig cfg = {});
  Connect try_connect(int worker) override;

  /// Observed fork -> Hello latencies (microseconds), in join order — the
  /// transport bench reports these against the simulated provision delay.
  std::vector<double> join_latencies_us() const;

  /// A session released its parent-side fd: stop telling future fork
  /// children to close it (the number may be reused for anything next).
  void forget_parent_fd(int fd);

 private:
  const SubprocessBackendConfig cfg_;
  mutable std::mutex mu_;
  std::vector<double> join_us_;
  /// Parent-side fds of the LIVE sessions. A fork child inherits them all;
  /// it closes this snapshot (minus its own socket) first thing, so
  /// per-child fd tables stay O(1) and an orphaned worker's EOF never
  /// depends on sibling children exiting first. PipeTransport::close()
  /// prunes its entry (forget_parent_fd), keeping the list bounded by live
  /// sessions under crash/re-provision churn.
  std::vector<int> parent_fds_;
};

namespace detail {
/// Base-from-member: the factory must outlive (construct before) the
/// RemoteWorkerBackend base that references it.
struct SubprocessFactoryHolder {
  explicit SubprocessFactoryHolder(const SubprocessBackendConfig& cfg)
      : factory(cfg) {}
  SubprocessTransportFactory factory;
};
}  // namespace detail

class SubprocessBackend : private detail::SubprocessFactoryHolder,
                          public RemoteWorkerBackend {
 public:
  explicit SubprocessBackend(SubprocessBackendConfig cfg = {})
      : detail::SubprocessFactoryHolder(cfg),
        RemoteWorkerBackend(factory, remote_config(cfg)) {}

  SubprocessTransportFactory& transport_factory() { return factory; }

 private:
  static RemoteBackendConfig remote_config(const SubprocessBackendConfig& cfg) {
    RemoteBackendConfig r;
    r.max_workers = cfg.max_workers;
    r.connect_timeout = cfg.hello_timeout + 1.0;
    r.complete_timeout = cfg.complete_timeout;
    r.heartbeat_timeout = cfg.heartbeat_timeout;
    r.lease_batch = cfg.lease_batch;
    r.batch_flush = cfg.batch_flush;
    r.name = "subprocess";
    return r;
  }
};

}  // namespace askel
