#pragma once
// Lock-free multi-producer single-consumer task queue (Vyukov-style) for the
// pool's external injection path.
//
// Producers (submit() from non-worker threads) push with one atomic exchange
// — wait-free, no CAS loop, no lock. The single consumer is whichever worker
// wins the `inject_draining_` claim in try_get_task; it batch-drains into its
// own deque, so the cross-thread handoff cost is paid once per drain, not
// once per task.
//
// Layout: an intrusive singly-linked list with a stub node. `head_` is the
// producer side (most recently pushed node); `tail_` is the consumer side
// (the stub / already-consumed node whose `next` is the oldest unconsumed
// task). Push: exchange head_ to the new node, then link prev->next. Between
// those two steps the list is momentarily disconnected — pop() observes
// `tail_->next == nullptr` while `head_ != tail_` and reports "transiently
// inconsistent" by returning false. That is safe here: the pool's queued_
// counter was already incremented by the producer, so the sleeper predicate
// keeps the consumer awake and it simply retries (the same busy-retry shape
// the tenant-queue race already uses).

#include <atomic>
#include <utility>

#include "runtime/task.hpp"

namespace askel {

class MpscTaskQueue {
 public:
  MpscTaskQueue() {
    Node* stub = new Node;
    head_.store(stub, std::memory_order_relaxed);
    tail_.store(stub, std::memory_order_relaxed);
  }

  MpscTaskQueue(const MpscTaskQueue&) = delete;
  MpscTaskQueue& operator=(const MpscTaskQueue&) = delete;

  ~MpscTaskQueue() {
    // Single-threaded at destruction (the pool joins workers first): walk
    // and free whatever was never consumed, including the stub.
    Node* n = tail_.load(std::memory_order_relaxed);
    while (n) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Wait-free producer push (any thread).
  void push(Task task) {
    Node* n = new Node;
    n->task = std::move(task);
    Node* prev = head_.exchange(n, std::memory_order_acq_rel);
    // Publishes the node's payload to the consumer (release pairs with the
    // acquire load of `next` in pop()).
    prev->next.store(n, std::memory_order_release);
  }

  /// Single-consumer pop of the OLDEST task. Returns false when empty — or
  /// when a producer is mid-push (transient; the caller retries). Must only
  /// be called by one thread at a time (the drain claim enforces this).
  bool pop(Task& out) {
    Node* t = tail_.load(std::memory_order_relaxed);
    Node* next = t->next.load(std::memory_order_acquire);
    if (!next) return false;
    out = std::move(next->task);
    next->task = Task{};  // drop captures eagerly; next lives on as the stub
    tail_.store(next, std::memory_order_relaxed);
    delete t;
    return true;
  }

  /// Emptiness hint, safe from ANY thread (pure pointer comparison — never
  /// dereferences, so a concurrent pop freeing the old tail is harmless).
  /// head_ != tail_ exactly when at least one push has not been consumed;
  /// racy by nature, used only to decide whether claiming a drain is worth
  /// it.
  bool maybe_nonempty() const {
    return head_.load(std::memory_order_acquire) !=
           tail_.load(std::memory_order_acquire);
  }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    Task task;
  };

  // Producers hammer head_; the consumer owns tail_ (atomic only so the
  // maybe_nonempty hint can read it from other threads). Separate cache
  // lines.
  alignas(64) std::atomic<Node*> head_;
  alignas(64) std::atomic<Node*> tail_;
};

}  // namespace askel
