#pragma once
// WorkerBackend: the seam that abstracts "where LP lives".
//
// The paper's §6 future work sketches a distributed backend: "adding or
// removing workers like adding or removing threads in a centralised manner".
// The pool's LP actuator therefore splits into two halves:
//
//  * the POOL keeps everything that is scheduling: deques, tenant queues,
//    grant-weighted dispatch, parking, wait_idle. A worker is always a local
//    thread — the unit the skeleton engine's closures can run on;
//  * the BACKEND owns where the *capacity* behind those workers comes from:
//    in-process threads that are ready instantly (ThreadBackend, the
//    original behavior), or remote workers that take time to join, can
//    refuse to join, and can die (RemoteWorkerBackend over a Transport —
//    fork/exec'd processes for SubprocessBackend, a seeded in-memory fault
//    injector for tests).
//
// Contract (the transport conformance suite in
// tests/backend_conformance_test.cpp runs these against every backend):
//  * provision(have, want) is called by the pool, under the pool's control
//    mutex, whenever the effective LP must grow. kReady means the capacity
//    exists now and the pool applies the target inline; kPending means the
//    backend will report through the bound ProvisionResult callback when the
//    workers joined (or could not); kFailed refuses immediately;
//  * the ProvisionResult callback may run on any backend thread and takes
//    the pool's control mutex — a backend must never invoke it while holding
//    a lock it also takes inside provision()/release()/cancel() (lock order:
//    pool.mu_ -> backend internals, callbacks lock-free on the backend side);
//  * release(have, want) is a shrink notification (parking is local and
//    immediate in every backend); it must not fail and must not block on
//    remote round-trips longer than a best-effort retire;
//  * task_begin/task_end bracket every task a pool worker executes, but only
//    when remote() is true — the thread backend's hot path stays exactly the
//    PR 1 contention-free loop (one relaxed flag load, no virtual call);
//  * cancel() aborts pending provisions and joins backend threads; after it
//    returns, no callback runs. The pool calls it on shutdown and when a
//    different backend is attached.
//
// A failed provision is NOT silent: the pool abandons the pending request
// (so target and requested LP agree again), bumps provision_failures(), and
// invokes the provision-failure handler — the LP-budget coordinator installs
// one to claw ungrantable LP back into the budget, and the controller
// surfaces the episode as DecisionReason::kProvisionFailed.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/clock.hpp"

namespace askel {

class WorkerBackend {
 public:
  /// Outcome callback for kPending provisions: `target` is the requested
  /// effective LP, `ok` false means the workers cannot join. May be invoked
  /// from any backend thread; the pool's handler takes the pool mutex.
  using ProvisionResult = std::function<void(int target, bool ok)>;

  enum class Provision {
    kReady,    // capacity exists now: the pool applies the target inline
    kPending,  // workers are joining: the ProvisionResult callback decides
    kFailed,   // refused outright (capacity exhausted, transport down)
  };

  virtual ~WorkerBackend() = default;

  virtual const char* name() const = 0;
  /// Remote backends pay the per-task transport bracket; the thread backend
  /// keeps the PR 1 hot path untouched.
  virtual bool remote() const { return false; }

  /// Install the provision-outcome callback (the pool binds itself here when
  /// the backend is attached). Must be called before the first provision().
  virtual void bind(ProvisionResult on_result) = 0;

  /// The pool wants effective capacity `want`; `have` is what is effective
  /// now. Called under the pool's control mutex — implementations must not
  /// call back into the pool from inside.
  virtual Provision provision(int have, int want) = 0;

  /// Effective capacity shrank from `have` to `want`: release remote workers
  /// whose index is >= want. Best-effort, never fails.
  virtual void release(int /*have*/, int /*want*/) {}

  /// Transport bracket around one task executed by pool worker `worker`
  /// (only invoked when remote()). `queued_hint` is the pool's current
  /// backlog, forwarded to the remote side as a steal hint. Returns a lease
  /// id (0 = no remote session: the task runs purely locally).
  virtual std::uint64_t task_begin(int /*worker*/, std::uint64_t /*queued_hint*/) {
    return 0;
  }
  /// Close the lease opened by task_begin. Must account for every non-zero
  /// lease exactly once (completed or recovered) — the fault-injection suite
  /// asserts leases == completes + losses on every plan.
  virtual void task_end(int /*worker*/, std::uint64_t /*lease*/) {}

  /// Abort pending provisions and join backend threads. No ProvisionResult
  /// callback runs after cancel() returns.
  virtual void cancel() {}

  /// Simulated provisioning latency knob (paper §6). Honored by backends
  /// whose joins are models (thread, fake); real transports ignore it —
  /// their join latency is measured, not configured.
  virtual void set_provision_delay(Duration /*d*/) {}
  virtual Duration provision_delay() const { return 0.0; }
};

/// The original in-process backend: workers are plain threads, capacity is
/// always available, and the only distributed effect is the *simulated*
/// provisioning delay (LP increases land `delay` seconds late; decreases
/// stay immediate). With delay 0 — the default — provision() is kReady and
/// the pool behaves byte-identically to the pre-seam code.
class ThreadBackend final : public WorkerBackend {
 public:
  ThreadBackend() = default;
  ~ThreadBackend() override;

  const char* name() const override { return "thread"; }
  void bind(ProvisionResult on_result) override;
  Provision provision(int have, int want) override;
  void cancel() override;
  void set_provision_delay(Duration d) override;
  Duration provision_delay() const override;

 private:
  struct Timer {
    std::shared_ptr<std::atomic<bool>> done;  // set as the thread's last act
    std::jthread thread;                      // destroyed first: stop + join
  };
  void reap_finished_locked();

  mutable std::mutex mu_;
  ProvisionResult result_;
  Duration delay_ = 0.0;
  std::vector<Timer> timers_;
};

}  // namespace askel
