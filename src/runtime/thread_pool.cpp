#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "runtime/worker_backend.hpp"

namespace askel {

namespace {

// Identifies the pool worker running on this thread (if any) so submit() can
// route nested tasks to the worker's own deque without any global lock.
// `rot` rotates the tenant-queue scan start per pick, so equal-scored
// tenants round-robin instead of always favoring low slots.
struct WorkerTls {
  ResizableThreadPool* pool = nullptr;
  int index = -1;
  unsigned rot = 0;
};
thread_local WorkerTls tls_worker;

}  // namespace

ResizableThreadPool::ResizableThreadPool(int initial_lp, int max_lp, const Clock* clock)
    : clock_(clock), max_lp_(std::max(1, max_lp)), gauge_(clock), lp_limit_(max_lp_),
      default_backend_(std::make_unique<ThreadBackend>()) {
  default_backend_->bind(
      [this](int target, bool ok) { on_provision_result(target, ok); });
  backend_.store(default_backend_.get(), std::memory_order_release);
  // All deque slots exist up front (stable addresses; stealers may scan any
  // slot without synchronizing with worker spawns).
  deques_.reserve(static_cast<std::size_t>(max_lp_));
  for (int k = 0; k < max_lp_; ++k) deques_.push_back(std::make_unique<WorkDeque>());
  std::lock_guard lock(mu_);
  const int lp = std::clamp(initial_lp, 1, max_lp_);
  target_lp_.store(lp, std::memory_order_release);
  requested_lp_.store(lp, std::memory_order_release);
  lp_history_.record(clock_->now(), lp);
  spawn_locked(lp);
}

ResizableThreadPool::~ResizableThreadPool() {
  // Cancel pending provisioning first (joins backend timers/threads); no
  // lock held — in-flight provision callbacks take mu_ themselves and
  // complete before cancel() returns.
  backend_.load(std::memory_order_acquire)->cancel();
  {
    std::lock_guard lock(mu_);
    stopping_.store(true, std::memory_order_release);
  }
  work_cv_.notify_all();
  park_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ResizableThreadPool::set_backend(WorkerBackend* backend) {
  WorkerBackend* old = nullptr;
  {
    std::lock_guard lock(mu_);
    WorkerBackend* next = backend != nullptr ? backend : default_backend_.get();
    WorkerBackend* cur = backend_.load(std::memory_order_relaxed);
    if (cur == next) return;
    next->bind([this](int target, bool ok) { on_provision_result(target, ok); });
    backend_.store(next, std::memory_order_release);
    backend_remote_.store(next->remote(), std::memory_order_release);
    // Bring the new backend up to the current effective capacity (remote
    // sessions for already-running workers). A kPending join lands through
    // the callback as a no-op (target == effective); a failure here is not a
    // grow failure — absent sessions just mean tasks run purely locally.
    (void)next->provision(0, target_lp_.load(std::memory_order_relaxed));
    old = cur;
  }
  // Outside mu_: cancel joins backend threads whose callbacks take mu_.
  if (old != nullptr) old->cancel();
}

WorkerBackend* ResizableThreadPool::backend() const {
  return backend_.load(std::memory_order_acquire);
}

std::uint64_t ResizableThreadPool::provision_failures() const {
  return provision_failures_.load(std::memory_order_acquire);
}

void ResizableThreadPool::set_provision_failure_handler(
    ProvisionFailureHandler handler) {
  std::unique_lock lock(handler_mu_);
  provision_failure_handler_ = std::move(handler);
  // Don't return while an invocation of the OLD handler is still running on
  // a backend thread: the coordinator uninstalls its handler from its
  // destructor, and returning early would leave that thread calling into a
  // dying object. (The waiter never deadlocks a self-notifying thread: the
  // handler itself runs with handler_mu_ released.)
  handler_cv_.wait(lock, [&] { return handler_inflight_ == 0; });
}

void ResizableThreadPool::notify_provision_failure(int failed_target) {
  ProvisionFailureHandler handler;
  {
    std::lock_guard lock(handler_mu_);
    handler = provision_failure_handler_;
    if (handler) ++handler_inflight_;
  }
  if (handler) {
    handler(failed_target, effective_lp());
    {
      std::lock_guard lock(handler_mu_);
      --handler_inflight_;
    }
    handler_cv_.notify_all();
  }
}

void ResizableThreadPool::on_provision_result(int target, bool ok) {
  bool joined = false;
  int failed_target = 0;
  {
    std::lock_guard lock(mu_);
    if (!stopping_.load(std::memory_order_relaxed)) {
      if (ok) {
        // Same stale-join guards as the PR 1 provision timer: a late join
        // must not exceed the latest request nor shrink a larger effective
        // value.
        if (target > target_lp_.load(std::memory_order_relaxed) &&
            target <= requested_lp_.load(std::memory_order_relaxed)) {
          apply_target_locked(target);
          joined = true;
        }
      } else if (target == requested_lp_.load(std::memory_order_relaxed) &&
                 target > target_lp_.load(std::memory_order_relaxed)) {
        // The live pending grow cannot materialize: abandon it so target and
        // requested agree again (a stale failure — a newer request is already
        // pending — is simply ignored; the newer outcome governs).
        requested_lp_.store(target_lp_.load(std::memory_order_relaxed),
                            std::memory_order_release);
        provision_failures_.fetch_add(1, std::memory_order_acq_rel);
        failed_target = target;
      }
    }
  }
  if (joined) {
    work_cv_.notify_all();
    park_cv_.notify_all();
  }
  if (failed_target != 0) notify_provision_failure(failed_target);
}

void ResizableThreadPool::submit(Task task) { submit(std::move(task), 0); }

void ResizableThreadPool::submit(Task task, int tenant) {
  assert(!stopping_.load(std::memory_order_relaxed) && "submit after shutdown");
  // Tagged submits only: the untagged hot path pays one predictable branch.
  if (tenant > 0) {
    if (tenant_dispatch_.load(std::memory_order_relaxed) ==
        static_cast<int>(TenantDispatch::kWeighted)) {
      inflight_.fetch_add(1, std::memory_order_acq_rel);
      tenant_tasks_.fetch_add(1, std::memory_order_relaxed);
      queued_.fetch_add(1, std::memory_order_seq_cst);
      for (;;) {
        TenantState& ts = get_tenant_state(tenant);
        std::lock_guard lock(ts.mu);
        // Ownership recheck under ts.mu (where every retirement happens): a
        // retire_tenant racing between the lookup and this lock must not
        // receive the task into an orphaned state the dispatch scan would
        // never serve — re-resolve instead (recreates or reclaims a state).
        if (ts.id.load(std::memory_order_relaxed) != tenant) continue;
        ts.submitted.fetch_add(1, std::memory_order_relaxed);
        // The queued gauge is bumped before the push (both under ts.mu):
        // scanners may transiently see a count without a task — they
        // re-check under ts.mu — but never a task without a count, so the
        // queued_ sleep/wake protocol stays exact.
        ts.queued.fetch_add(1, std::memory_order_relaxed);
        ts.tasks.push_back(std::move(task));
        break;
      }
      maybe_wake_one();
      return;
    }
    // kFifo: accounting only, but still under the ownership check — a
    // retire racing this bump must not land the count on a reused state.
    for (;;) {
      TenantState& ts = get_tenant_state(tenant);
      std::lock_guard lock(ts.mu);
      if (ts.id.load(std::memory_order_relaxed) != tenant) continue;
      ts.submitted.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  // Counted before the push so queued_ can never underflow when a worker
  // takes the task (and decrements) between push and count. seq_cst pairs
  // with the sleeper's `idle_sleepers_++; read queued_` sequence: either we
  // see the sleeper (and notify), or the sleeper's predicate sees our
  // increment (and does not sleep).
  queued_.fetch_add(1, std::memory_order_seq_cst);
  if (tls_worker.pool == this) {
    deques_[static_cast<std::size_t>(tls_worker.index)]->push(std::move(task));
  } else {
    injected_.push(std::move(task));  // wait-free: one atomic exchange
  }
  maybe_wake_one();
}

ResizableThreadPool::TenantState* ResizableThreadPool::find_tenant_state(
    int tenant) const {
  if (tenant <= 0) return nullptr;
  TenantState& slot =
      tenant_slots_[static_cast<std::size_t>((tenant - 1) % kTenantSlots)];
  if (slot.id.load(std::memory_order_acquire) == tenant) return &slot;
  if (overflow_states_.load(std::memory_order_acquire) == 0) return nullptr;
  std::lock_guard lock(overflow_mu_);
  const auto it = overflow_.find(tenant);
  return it == overflow_.end() ? nullptr : it->second.get();
}

ResizableThreadPool::TenantState& ResizableThreadPool::get_tenant_state(
    int tenant) {
  TenantState& slot =
      tenant_slots_[static_cast<std::size_t>((tenant - 1) % kTenantSlots)];
  if (slot.id.load(std::memory_order_acquire) == tenant) return slot;
  // Miss path (first touch of this id, or an id living in the side map),
  // serialized under overflow_mu_. An existing side-map entry must win over
  // claiming a freed slot: a tenant that overflowed while a collider held
  // the slot would otherwise fork its state — grant and counts split across
  // two TenantStates — the moment the collider retires and frees the slot.
  // Invariant: a tenant has a slot OR a side-map entry, never both.
  std::lock_guard lock(overflow_mu_);
  return resolve_tenant_state_locked(tenant);
}

ResizableThreadPool::TenantState& ResizableThreadPool::resolve_tenant_state_locked(
    int tenant) {
  const int slot_index = (tenant - 1) % kTenantSlots;
  TenantState& slot = tenant_slots_[static_cast<std::size_t>(slot_index)];
  if (slot.id.load(std::memory_order_acquire) == tenant) return slot;
  if (overflow_states_.load(std::memory_order_acquire) > 0) {
    const auto it = overflow_.find(tenant);
    if (it != overflow_.end()) return *it->second;
  }
  int cur = 0;
  if (slot.id.compare_exchange_strong(cur, tenant, std::memory_order_acq_rel)) {
    // Publish the claim to the dispatch scan (monotonic max; retire_tenant
    // may later clear the slot, so after churn the mark can over-count —
    // the scan skips id == 0 slots — but it never under-counts).
    int hwm = tenant_slot_hwm_.load(std::memory_order_relaxed);
    while (hwm < slot_index + 1 &&
           !tenant_slot_hwm_.compare_exchange_weak(hwm, slot_index + 1,
                                                   std::memory_order_acq_rel)) {
    }
    return slot;
  }
  if (cur == tenant) return slot;  // lost the CAS to a same-tenant claim
  // Slot collision (or > kTenantSlots live ids): exact side map, so two live
  // tenants never merge counts or dispatch weights. retire_tenant moves dead
  // entries to the reuse pool, keeping the map O(peak live overflow ids)
  // rather than O(distinct ids ever).
  std::unique_ptr<TenantState>& state = overflow_[tenant];
  if (state == nullptr) {
    if (!retired_states_.empty()) {
      state = std::move(retired_states_.back());
      retired_states_.pop_back();
      state->id.store(tenant, std::memory_order_relaxed);
    } else {
      state = std::make_unique<TenantState>();
      state->id.store(tenant, std::memory_order_relaxed);
    }
    overflow_states_.fetch_add(1, std::memory_order_release);
  }
  return *state;
}

bool ResizableThreadPool::retire_tenant(int tenant) {
  if (tenant <= 0) return false;
  TenantState& slot =
      tenant_slots_[static_cast<std::size_t>((tenant - 1) % kTenantSlots)];
  if (slot.id.load(std::memory_order_acquire) == tenant) {
    std::lock_guard qlock(slot.mu);
    // Recheck under the lock: every id-clearing transition holds slot.mu,
    // so a concurrent retire of the same id (or a retire + fresh claim by a
    // new id) can no longer slip between our check and our reset and have
    // us wipe a live tenant's state.
    if (slot.id.load(std::memory_order_relaxed) != tenant) return false;
    // queued != 0 with an empty deque means a claimed task's gauge decrement
    // is still in flight — running covers that window too, but check both.
    if (!slot.tasks.empty() || slot.queued.load(std::memory_order_relaxed) != 0 ||
        slot.running.load(std::memory_order_acquire) != 0) {
      return false;  // still draining; the state must stay addressable
    }
    slot.grant.store(0, std::memory_order_relaxed);
    slot.submitted.store(0, std::memory_order_relaxed);
    slot.ordering.store(0, std::memory_order_relaxed);
    // Publish last: a find_tenant_state racing with this sees either the
    // full old state or an unclaimed slot, never a half-reset claim.
    slot.id.store(0, std::memory_order_release);
    return true;
  }
  if (overflow_states_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard lock(overflow_mu_);
  const auto it = overflow_.find(tenant);
  if (it == overflow_.end()) return false;
  TenantState& ts = *it->second;
  {
    std::lock_guard qlock(ts.mu);
    if (!ts.tasks.empty() || ts.queued.load(std::memory_order_relaxed) != 0 ||
        ts.running.load(std::memory_order_acquire) != 0) {
      return false;
    }
    ts.grant.store(0, std::memory_order_relaxed);
    ts.submitted.store(0, std::memory_order_relaxed);
    ts.ordering.store(0, std::memory_order_relaxed);
    ts.id.store(0, std::memory_order_relaxed);
  }
  // Into the reuse pool, not freed: a worker that grabbed the pointer from a
  // concurrent dispatch scan may still lock ts.mu, find the queue empty and
  // move on — valid memory either way.
  retired_states_.push_back(std::move(it->second));
  overflow_.erase(it);
  overflow_states_.fetch_sub(1, std::memory_order_release);
  return true;
}

std::size_t ResizableThreadPool::tenant_overflow_size() const {
  std::lock_guard lock(overflow_mu_);
  return overflow_.size();
}

void ResizableThreadPool::set_tenant_grant(int tenant, int grant) {
  if (tenant <= 0) return;
  get_tenant_state(tenant).grant.store(std::max(0, grant),
                                       std::memory_order_relaxed);
}

void ResizableThreadPool::set_tenant_grants(
    const std::vector<std::pair<int, int>>& grants) {
  // Pass 1: direct-slot hits store lock-free; side-map (or first-touch)
  // misses are deferred.
  std::vector<std::pair<int, int>> misses;
  for (const auto& [tenant, grant] : grants) {
    if (tenant <= 0) continue;
    TenantState& slot =
        tenant_slots_[static_cast<std::size_t>((tenant - 1) % kTenantSlots)];
    if (slot.id.load(std::memory_order_acquire) == tenant) {
      slot.grant.store(std::max(0, grant), std::memory_order_relaxed);
    } else {
      misses.push_back({tenant, grant});
    }
  }
  if (misses.empty()) return;
  // Pass 2: every miss resolved under one overflow_mu_ round trip.
  std::lock_guard lock(overflow_mu_);
  for (const auto& [tenant, grant] : misses) {
    resolve_tenant_state_locked(tenant).grant.store(
        std::max(0, grant), std::memory_order_relaxed);
  }
}

int ResizableThreadPool::tenant_grant(int tenant) const {
  const TenantState* ts = find_tenant_state(tenant);
  return ts == nullptr ? 0 : ts->grant.load(std::memory_order_relaxed);
}

int ResizableThreadPool::tenant_queued(int tenant) const {
  const TenantState* ts = find_tenant_state(tenant);
  return ts == nullptr ? 0 : ts->queued.load(std::memory_order_relaxed);
}

int ResizableThreadPool::tenant_running(int tenant) const {
  const TenantState* ts = find_tenant_state(tenant);
  return ts == nullptr ? 0 : ts->running.load(std::memory_order_relaxed);
}

void ResizableThreadPool::set_tenant_dispatch(TenantDispatch mode) {
  tenant_dispatch_.store(static_cast<int>(mode), std::memory_order_relaxed);
}

TenantDispatch ResizableThreadPool::tenant_dispatch() const {
  return static_cast<TenantDispatch>(
      tenant_dispatch_.load(std::memory_order_relaxed));
}

void ResizableThreadPool::set_tenant_ordering(int tenant,
                                              TenantOrdering ordering) {
  if (tenant <= 0) return;
  get_tenant_state(tenant).ordering.store(static_cast<int>(ordering),
                                          std::memory_order_relaxed);
}

TenantOrdering ResizableThreadPool::tenant_ordering(int tenant) const {
  const TenantState* ts = find_tenant_state(tenant);
  return ts == nullptr ? TenantOrdering::kLifo
                       : static_cast<TenantOrdering>(
                             ts->ordering.load(std::memory_order_relaxed));
}

ResizableThreadPool::TenantState* ResizableThreadPool::pick_tenant_queue(
    unsigned rot) const {
  TenantState* best = nullptr;
  double best_score = 0.0;
  const auto consider = [&](TenantState& ts) {
    if (ts.queued.load(std::memory_order_relaxed) <= 0) return;
    const int grant = ts.grant.load(std::memory_order_relaxed);
    const int running = ts.running.load(std::memory_order_relaxed);
    // Deficit tier (scores >= 2): a tenant below its grant, most-starved
    // first — restores each grant to ~grant threads of service. Surplus
    // tier (scores <= 0.5): at/above grant, least-over first — spare
    // capacity is shared instead of compounding one tenant's lead, and a
    // zero-grant tenant is served whenever no deficit exists.
    const double score = running < grant
                             ? 1.0 + static_cast<double>(grant - running)
                             : 1.0 / (2.0 + static_cast<double>(running - grant));
    if (best == nullptr || score > best_score) {
      best = &ts;
      best_score = score;
    }
  };
  // Only claimed slots are worth touching: bound the scan by the claim
  // high-water mark so two live tenants cost 2 cache lines, not 64.
  const int hwm = tenant_slot_hwm_.load(std::memory_order_acquire);
  for (int k = 0; k < hwm; ++k) {
    TenantState& ts = tenant_slots_[(rot + static_cast<unsigned>(k)) %
                                    static_cast<unsigned>(hwm)];
    if (ts.id.load(std::memory_order_relaxed) == 0) continue;
    consider(ts);
  }
  if (overflow_states_.load(std::memory_order_acquire) > 0) {
    std::lock_guard lock(overflow_mu_);
    for (auto& [id, state] : overflow_) consider(*state);
  }
  return best;
}

void ResizableThreadPool::maybe_wake_one() {
  // Wake throttle: rouse a sleeping worker only when no thief is already
  // between wake-up and first find. Without this, a worker fanning out N
  // children pays one futex wake (and, on a loaded machine, one context
  // switch) per child; with it, wakes chain one at a time as each woken
  // thief finds work. Liveness is unaffected: a runnable worker never goes
  // to sleep while queued_ > 0 (the work_cv_ predicate re-checks), and a
  // thief that gives up decrements searching_ before that re-check.
  if (idle_sleepers_.load(std::memory_order_seq_cst) > 0 &&
      searching_.load(std::memory_order_seq_cst) == 0) {
    std::lock_guard lock(mu_);
    work_cv_.notify_one();
  }
}

bool ResizableThreadPool::try_get_task(int index, Task& out,
                                       TenantState*& from_tenant) {
  from_tenant = nullptr;
  // 1. Own deque, newest first: depth-first for nested skeletons — one map
  //    chunk completes (and its merge runs) before the next chunk starts when
  //    capacity is scarce. This matches the paper's §5 trace, where the first
  //    inner merge lands right after the first chunk (7.6 s), not after all
  //    splits.
  if (deques_[static_cast<std::size_t>(index)]->pop(out)) {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }
  // 2. Injection queue. One worker at a time claims the drain and batch-
  //    moves EVERYTHING into its own deque, so the cross-thread handoff is
  //    paid once per drain, not once per task; siblings steal from the deque
  //    as usual. Drain order (oldest first) + deque pop (newest first)
  //    reproduce the newest-first service order the old global deque gave
  //    externally submitted tasks. A pop may transiently miss a task whose
  //    producer is mid-push; queued_ > 0 keeps this worker from sleeping, so
  //    it simply comes back (same busy-retry shape as the tenant-queue
  //    race below).
  if (injected_.maybe_nonempty() &&
      !inject_draining_.exchange(true, std::memory_order_acq_rel)) {
    WorkDeque& own = *deques_[static_cast<std::size_t>(index)];
    std::size_t drained = 0;
    Task t;
    while (injected_.pop(t)) {
      own.push(std::move(t));
      ++drained;
    }
    inject_draining_.store(false, std::memory_order_release);
    // queued_ is untouched by the drain itself: the tasks merely moved
    // queues, and the decrement below happens only for the task actually
    // claimed — the accounting stays exact for queued()/wait_idle().
    if (drained > 0 && own.pop(out)) {
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  // 3. Tenant run queues, grant-weighted pick (skipped in one relaxed load
  //    when no tagged work exists, so untagged workloads pay nothing). The
  //    scored pick can lose a race to a sibling taking the same queue's last
  //    task; one re-pick covers the common case and a final miss just falls
  //    through — queued_ > 0 keeps the worker from sleeping, so it retries.
  if (tenant_tasks_.load(std::memory_order_relaxed) > 0) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      TenantState* ts = pick_tenant_queue(tls_worker.rot++);
      if (ts == nullptr) break;
      std::unique_lock qlock(ts->mu);
      if (ts->tasks.empty()) continue;
      // Service order is the tenant's knob: LIFO (default, newest first —
      // depth-first per tenant) or FIFO (oldest first — arrival order).
      if (ts->ordering.load(std::memory_order_relaxed) ==
          static_cast<int>(TenantOrdering::kFifo)) {
        out = std::move(ts->tasks.front());
        ts->tasks.pop_front();
      } else {
        out = std::move(ts->tasks.back());
        ts->tasks.pop_back();
      }
      // `running` goes up under ts->mu, before the pop is visible as an
      // empty queue: retire_tenant (which checks emptiness and running
      // under the same lock) can therefore never observe a moment where a
      // claimed task is in neither gauge.
      ts->running.fetch_add(1, std::memory_order_relaxed);
      qlock.unlock();
      ts->queued.fetch_sub(1, std::memory_order_relaxed);
      tenant_tasks_.fetch_sub(1, std::memory_order_relaxed);
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      from_tenant = ts;
      return true;
    }
  }
  // 4. Steal from a sibling — parked siblings included, so work never
  //    strands on a deque whose owner got parked mid-expansion. Batch steal:
  //    take the oldest task plus up to half of the victim's remainder, so
  //    the wake-up that got us here is amortized over several tasks. The
  //    batch is re-pushed to our own deque outside the victim's lock (no
  //    two-deque lock nesting).
  const int n = static_cast<int>(deques_.size());
  std::vector<Task> batch;
  for (int k = 1; k < n; ++k) {
    const int victim = (index + k) % n;
    if (deques_[static_cast<std::size_t>(victim)]->steal_batch(out, batch)) {
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      steals_.fetch_add(1, std::memory_order_relaxed);
      if (!batch.empty()) {
        deques_[static_cast<std::size_t>(index)]->push_batch(batch);
      }
      return true;
    }
  }
  return false;
}

void ResizableThreadPool::worker_loop(int index) {
  tls_worker = WorkerTls{this, index};
  bool searching = false;  // between work_cv_ wake-up and first find
  // Busy-interval coalescing: back-to-back tasks are one busy interval on
  // the gauge, and their inflight_ decrements are batched. A worker going
  // busy→idle→busy within nanoseconds between consecutive tasks is a
  // measurement artifact — the "Number of Active Threads" series of Figures
  // 2/5/6/7 is a step function over wall-clock time, and coalescing keeps
  // exactly those steps while removing two clock reads, two gauge records
  // and one contended counter RMW per task. wait_idle() still can't return
  // while any worker is busy: the batched decrement lands only after the
  // gauge interval is closed.
  bool busy_open = false;
  std::int64_t completed = 0;
  const auto flush_idle = [&] {
    if (busy_open) {
      busy_open = false;
      gauge_.task_finished();
    }
    if (completed != 0) {
      const std::int64_t n = completed;
      completed = 0;
      if (inflight_.fetch_sub(n, std::memory_order_acq_rel) == n) {
        std::lock_guard lock(mu_);
        idle_cv_.notify_all();
      }
    }
  };
  const auto stop_searching = [&] {
    if (searching) {
      searching = false;
      searching_.fetch_sub(1, std::memory_order_seq_cst);
    }
  };
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) {
      flush_idle();
      return;
    }
    // Fast path: no pool-wide lock. A worker is runnable when its index is
    // below the current target; the lowest-indexed workers always win, so
    // shrink parks the newest ones.
    if (index < target_lp_.load(std::memory_order_acquire)) {
      Task task;
      TenantState* from_tenant = nullptr;
      if (try_get_task(index, task, from_tenant)) {
        // Chain the wake: a *woken* thief that found work rouses the next
        // sleeper if work remains (one at a time, not a thundering herd).
        // Ordinary local pops don't wake anyone — submits already did.
        const bool was_searching = searching;
        stop_searching();
        if (was_searching && queued_.load(std::memory_order_relaxed) > 0) {
          maybe_wake_one();
        }
        if (!busy_open) {
          busy_open = true;
          gauge_.task_started();
        }
        // Remote backends bracket the task with a transport lease (submit /
        // complete round trip + loss recovery); the thread backend pays one
        // relaxed load and nothing else — the PR 1 hot path is untouched.
        if (backend_remote_.load(std::memory_order_relaxed)) {
          WorkerBackend* backend = backend_.load(std::memory_order_acquire);
          const std::uint64_t lease = backend->task_begin(
              index, queued_.load(std::memory_order_relaxed));
          task();
          backend->task_end(index, lease);
        } else {
          task();
        }
        if (from_tenant != nullptr) {
          // Release: this is the worker's last touch of the tenant state; a
          // retire_tenant that acquires running == 0 afterwards may hand the
          // state to a new id knowing no late write can land.
          from_tenant->running.fetch_sub(1, std::memory_order_release);
        }
        ++completed;
        continue;
      }
    }
    // Slow path: park (surplus worker) or sleep until work arrives. The
    // searching token is released *before* the predicate re-reads queued_,
    // so a submit that skipped its wake because we were searching is always
    // seen here.
    stop_searching();
    flush_idle();
    std::unique_lock lock(mu_);
    if (index >= target_lp_.load(std::memory_order_relaxed)) {
      // Hand off before parking: we may have just released the searching
      // token (suppressing a submit's wake), or consumed a work_cv_ notify
      // meant for an in-range sleeper while our index fell out of range.
      // Either way, if work is queued, re-issue the wake so it reaches a
      // runnable worker. seq_cst pairs with submit's queued_++ / searching_
      // read: one side always sees the other.
      if (queued_.load(std::memory_order_seq_cst) > 0) work_cv_.notify_one();
      park_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_relaxed) ||
               index < target_lp_.load(std::memory_order_relaxed);
      });
    } else {
      idle_sleepers_.fetch_add(1, std::memory_order_seq_cst);
      work_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_relaxed) ||
               index >= target_lp_.load(std::memory_order_relaxed) ||
               queued_.load(std::memory_order_seq_cst) > 0;
      });
      idle_sleepers_.fetch_sub(1, std::memory_order_relaxed);
      // Claim the searching token only when runnable: a worker woken
      // because its index fell out of range is headed for park_cv_, and
      // holding the token there would suppress submits' wakes for work it
      // will never take.
      if (!stopping_.load(std::memory_order_relaxed) &&
          index < target_lp_.load(std::memory_order_relaxed)) {
        searching = true;
        searching_.fetch_add(1, std::memory_order_seq_cst);
      }
    }
    if (stopping_.load(std::memory_order_relaxed)) return;
  }
}

std::uint64_t ResizableThreadPool::tenant_submitted(int tenant) const {
  const TenantState* ts = find_tenant_state(tenant);
  return ts == nullptr ? 0 : ts->submitted.load(std::memory_order_relaxed);
}

int ResizableThreadPool::set_target_lp(int n) {
  int clamped = 0;
  int failed_target = 0;
  bool grew = false;
  bool applied = false;
  {
    std::lock_guard lock(mu_);
    clamped = request_target_locked(n, grew, applied);
    failed_target = std::exchange(sync_failed_target_, 0);
  }
  // Wake parked workers on growth; wake idle sleepers whenever a change
  // applied so workers whose index fell out of range re-park promptly. (A
  // pending backend join notifies from on_provision_result instead.)
  if (grew) park_cv_.notify_all();
  if (applied) work_cv_.notify_all();
  if (failed_target != 0) notify_provision_failure(failed_target);
  return clamped;
}

int ResizableThreadPool::request_target_locked(int n, bool& grew, bool& applied) {
  grew = false;
  applied = false;
  // Clamp under mu_, where set_lp_limit also writes: a target computed
  // against a stale cap can then never be installed after the cap shrank.
  const int clamped =
      std::clamp(n, 1, std::min(max_lp_, lp_limit_.load(std::memory_order_relaxed)));
  if (stopping_.load(std::memory_order_relaxed)) return clamped;
  if (clamped == requested_lp_.load(std::memory_order_relaxed) &&
      clamped == target_lp_.load(std::memory_order_relaxed)) {
    return clamped;
  }
  requested_lp_.store(clamped, std::memory_order_release);
  const int effective = target_lp_.load(std::memory_order_relaxed);
  if (clamped > effective) {
    // Growth is the backend's business: instant for in-process threads
    // (kReady — apply inline, the original behavior), a delayed join for the
    // simulated or real remote paths (kPending — on_provision_result
    // finishes the job with the stale-join guards), or a refusal.
    switch (backend_.load(std::memory_order_relaxed)->provision(effective,
                                                                clamped)) {
      case WorkerBackend::Provision::kReady:
        break;
      case WorkerBackend::Provision::kPending:
        return clamped;  // the backend notifies when the join lands
      case WorkerBackend::Provision::kFailed:
        // Abandon the request — target and requested agree again, so failed
        // growth never wedges the pool — and surface the failure (the
        // caller invokes the handler once mu_ is dropped).
        requested_lp_.store(effective, std::memory_order_release);
        provision_failures_.fetch_add(1, std::memory_order_acq_rel);
        sync_failed_target_ = clamped;
        return clamped;
    }
    grew = true;
  } else {
    // Re-target at or below the effective LP: parking is local and
    // immediate; remote backends retire surplus sessions best-effort. The
    // equal case matters too — it cancels a still-pending larger grow
    // (requested_lp_ moved back down), or the backend would keep chasing
    // and then retain workers nobody asked for.
    backend_.load(std::memory_order_relaxed)->release(effective, clamped);
  }
  apply_target_locked(clamped);
  applied = true;
  return clamped;
}

int ResizableThreadPool::apply_target_locked(int n) {
  target_lp_.store(n, std::memory_order_release);
  lp_history_.record(clock_->now(), n);
  const int want = n - static_cast<int>(workers_.size());
  if (want > 0) spawn_locked(want);
  return n;
}

int ResizableThreadPool::set_lp_limit(int n) {
  const int cap = std::clamp(n, 1, max_lp_);
  int failed_target = 0;
  bool grew = false;
  bool applied = false;
  {
    std::lock_guard lock(mu_);
    lp_limit_.store(cap, std::memory_order_release);
    if (stopping_.load(std::memory_order_relaxed)) return cap;
    // Re-issue the pending request at the cap, under the same mu_ hold that
    // published it (no window for a concurrent set_target_lp holding the
    // stale cap). Shrinks apply immediately (surplus workers park at their
    // next boundary); a provisioned grow that was pending above the cap is
    // re-targeted at the cap itself — the old join self-cancels against the
    // lowered requested_lp_, and request_target_locked provisions anew.
    if (requested_lp_.load(std::memory_order_relaxed) > cap) {
      request_target_locked(cap, grew, applied);
      failed_target = std::exchange(sync_failed_target_, 0);
    }
  }
  if (grew) park_cv_.notify_all();
  if (applied) work_cv_.notify_all();
  if (failed_target != 0) notify_provision_failure(failed_target);
  return cap;
}

int ResizableThreadPool::lp_limit() const {
  return lp_limit_.load(std::memory_order_acquire);
}

void ResizableThreadPool::set_provision_delay(Duration d) {
  backend_.load(std::memory_order_acquire)->set_provision_delay(std::max(0.0, d));
}

Duration ResizableThreadPool::provision_delay() const {
  return backend_.load(std::memory_order_acquire)->provision_delay();
}

int ResizableThreadPool::target_lp() const {
  return requested_lp_.load(std::memory_order_acquire);
}

int ResizableThreadPool::effective_lp() const {
  return target_lp_.load(std::memory_order_acquire);
}

int ResizableThreadPool::spawned_workers() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(workers_.size());
}

std::size_t ResizableThreadPool::queued() const {
  return queued_.load(std::memory_order_acquire);
}

std::uint64_t ResizableThreadPool::steals() const {
  return steals_.load(std::memory_order_relaxed);
}

void ResizableThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [&] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

void ResizableThreadPool::spawn_locked(int count) {
  for (int k = 0; k < count && static_cast<int>(workers_.size()) < max_lp_; ++k) {
    const int index = static_cast<int>(workers_.size());
    workers_.emplace_back([this, index] { worker_loop(index); });
  }
}

}  // namespace askel
