#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cassert>

namespace askel {

ResizableThreadPool::ResizableThreadPool(int initial_lp, int max_lp, const Clock* clock)
    : clock_(clock), max_lp_(std::max(1, max_lp)), gauge_(clock) {
  std::lock_guard lock(mu_);
  target_lp_ = std::clamp(initial_lp, 1, max_lp_);
  requested_lp_ = target_lp_;
  lp_history_.record(clock_->now(), target_lp_);
  spawn_locked(target_lp_);
}

ResizableThreadPool::~ResizableThreadPool() {
  // Cancel pending provisioning first (jthread dtor requests stop + joins).
  provision_timers_.clear();
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ResizableThreadPool::submit(Task task) {
  {
    std::lock_guard lock(mu_);
    assert(!stopping_ && "submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

int ResizableThreadPool::set_target_lp(int n) {
  const int clamped = std::clamp(n, 1, max_lp_);
  Duration delay = 0.0;
  {
    std::lock_guard lock(mu_);
    if (clamped == requested_lp_ && clamped == target_lp_) return clamped;
    requested_lp_ = clamped;
    if (provision_delay_ > 0.0 && clamped > target_lp_) {
      delay = provision_delay_;
    } else {
      apply_target_locked(clamped);
    }
  }
  if (delay > 0.0) {
    // Simulated remote-worker join: the effective LP catches up with the
    // requested one only after `delay`.
    std::lock_guard lock(mu_);
    if (stopping_) return clamped;
    provision_timers_.emplace_back([this, clamped, delay](std::stop_token st) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::duration<double>(delay);
      while (std::chrono::steady_clock::now() < deadline) {
        if (st.stop_requested()) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      {
        std::lock_guard lock(mu_);
        // A stale join must not exceed the latest request nor shrink a
        // larger effective value.
        if (stopping_ || clamped <= target_lp_ || clamped > requested_lp_) return;
        apply_target_locked(clamped);
      }
      cv_.notify_all();
    });
    return clamped;
  }
  cv_.notify_all();
  return clamped;
}

int ResizableThreadPool::apply_target_locked(int n) {
  target_lp_ = n;
  lp_history_.record(clock_->now(), n);
  const int want = n - static_cast<int>(workers_.size());
  if (want > 0) spawn_locked(want);
  return n;
}

void ResizableThreadPool::set_provision_delay(Duration d) {
  std::lock_guard lock(mu_);
  provision_delay_ = std::max(0.0, d);
}

Duration ResizableThreadPool::provision_delay() const {
  std::lock_guard lock(mu_);
  return provision_delay_;
}

int ResizableThreadPool::target_lp() const {
  std::lock_guard lock(mu_);
  return requested_lp_;
}

int ResizableThreadPool::effective_lp() const {
  std::lock_guard lock(mu_);
  return target_lp_;
}

int ResizableThreadPool::spawned_workers() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(workers_.size());
}

std::size_t ResizableThreadPool::queued() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

void ResizableThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

void ResizableThreadPool::spawn_locked(int count) {
  for (int k = 0; k < count; ++k) {
    const int index = static_cast<int>(workers_.size());
    workers_.emplace_back([this, index] { worker_loop(index); });
  }
}

void ResizableThreadPool::worker_loop(int index) {
  std::unique_lock lock(mu_);
  for (;;) {
    // A worker is runnable when its index is below the current target; the
    // lowest-indexed workers always win, so shrink parks the newest ones.
    cv_.wait(lock, [&] {
      return stopping_ || (index < target_lp_ && !queue_.empty());
    });
    if (stopping_) return;
    // LIFO: newest task first. Skeleton children enqueue sub-tasks as they
    // run, so LIFO yields depth-first execution — one map chunk completes
    // (and its merge runs) before the next chunk starts when capacity is
    // scarce. This matches the paper's §5 trace, where the first inner merge
    // lands right after the first chunk (7.6 s), not after all splits.
    Task task = std::move(queue_.back());
    queue_.pop_back();
    ++running_;
    lock.unlock();
    {
      BusyScope busy(gauge_);
      task();
    }
    lock.lock();
    --running_;
    if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace askel
