#include "runtime/transport.hpp"

namespace askel {

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int k = 0; k < 8; ++k) p[k] = static_cast<std::uint8_t>(v >> (8 * k));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int k = 0; k < 8; ++k) v |= static_cast<std::uint64_t>(p[k]) << (8 * k);
  return v;
}

}  // namespace

const char* to_string(WireFrameType t) {
  switch (t) {
    case WireFrameType::kHello: return "hello";
    case WireFrameType::kSubmit: return "submit";
    case WireFrameType::kComplete: return "complete";
    case WireFrameType::kHeartbeat: return "heartbeat";
    case WireFrameType::kHeartbeatAck: return "heartbeat-ack";
    case WireFrameType::kStealHint: return "steal-hint";
    case WireFrameType::kRetire: return "retire";
    case WireFrameType::kRetired: return "retired";
    case WireFrameType::kSubmitNamed: return "submit-named";
    case WireFrameType::kResultNamed: return "result-named";
  }
  return "unknown";
}

bool frame_has_payload(WireFrameType t) {
  return t == WireFrameType::kSubmitNamed || t == WireFrameType::kResultNamed;
}

WireFrameBytes encode_frame(const WireFrame& f) {
  WireFrameBytes out{};
  put_u32(out.data(), static_cast<std::uint32_t>(kWireFramePayloadSize));
  out[4] = static_cast<std::uint8_t>(f.type);
  put_u32(out.data() + 5, f.worker);
  put_u64(out.data() + 9, f.seq);
  put_u64(out.data() + 17, f.a);
  put_u64(out.data() + 25, f.b);
  return out;
}

bool decode_frame(const std::uint8_t* wire, std::size_t size, WireFrame& out) {
  if (wire == nullptr || size != kWireFrameSize) return false;
  if (get_u32(wire) != kWireFramePayloadSize) return false;
  const std::uint8_t type = wire[4];
  if (type < static_cast<std::uint8_t>(WireFrameType::kHello) ||
      type > static_cast<std::uint8_t>(WireFrameType::kResultNamed)) {
    return false;
  }
  out.type = static_cast<WireFrameType>(type);
  out.worker = get_u32(wire + 5);
  out.seq = get_u64(wire + 9);
  out.a = get_u64(wire + 17);
  out.b = get_u64(wire + 25);
  return true;
}

}  // namespace askel
