#pragma once
// Per-worker task deque for the work-stealing pool.
//
// The owner pushes and pops at the back (LIFO: newest first, so nested
// skeletons run depth-first exactly as with the old single global deque).
// Thieves steal from the front (oldest first), which hands a stealer the
// root of the largest remaining subtree and leaves the owner's cache-hot
// tail alone.
//
// Each deque carries its own lock. In steady state a worker only ever takes
// its own — uncontended — lock, so the cross-worker contention of the old
// single-mutex pool is confined to actual steals, which happen only when a
// worker runs dry.

#include <algorithm>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "runtime/task.hpp"

namespace askel {

class alignas(64) WorkDeque {
 public:
  void push(Task task) {
    std::lock_guard lock(mu_);
    tasks_.push_back(std::move(task));
  }

  /// Owner-side pop: newest task (depth-first execution order).
  bool pop(Task& out) {
    std::lock_guard lock(mu_);
    if (tasks_.empty()) return false;
    out = std::move(tasks_.back());
    tasks_.pop_back();
    return true;
  }

  /// Thief-side batch pop: the oldest task into `out`, plus up to half of
  /// the remainder (capped) into `extra`. Stealing a batch amortizes the
  /// wake-up + steal cost over several tasks instead of paying it per task.
  /// `extra` is filled oldest-first; the caller re-pushes it into its own
  /// deque and must NOT hold any deque lock (two-deque lock nesting would
  /// deadlock against a symmetric thief).
  bool steal_batch(Task& out, std::vector<Task>& extra, std::size_t cap = 32) {
    std::lock_guard lock(mu_);
    if (tasks_.empty()) return false;
    out = std::move(tasks_.front());
    tasks_.pop_front();
    std::size_t take = std::min(cap, tasks_.size() / 2);
    for (; take > 0; --take) {
      extra.push_back(std::move(tasks_.front()));
      tasks_.pop_front();
    }
    return true;
  }

  void push_batch(std::vector<Task>& batch) {
    std::lock_guard lock(mu_);
    for (Task& t : batch) tasks_.push_back(std::move(t));
    batch.clear();
  }

 private:
  mutable std::mutex mu_;
  std::deque<Task> tasks_;
};

}  // namespace askel
