#pragma once
// Thread-safe registry of muscle estimates, keyed by muscle id.
//
// Writers are the state machines (on After events, from worker threads);
// readers are the ADG expansion and the autonomic controller. Readers take a
// consistent `Estimates` snapshot so a whole scheduling computation sees one
// coherent set of values.
//
// Two estimation scopes are supported:
//  * kAggregate (the paper's Skandium v1.1b1): one t(m)/|m| per muscle
//    object. Sharing a muscle across nesting levels (Listing 1 shares fs and
//    fm) deliberately shares — and conflates — its estimate.
//  * kPerDepth (this repo's implementation of the paper's §6 future work on
//    "different WCT estimation algorithms"): estimates are additionally kept
//    per dynamic nesting depth, and lookups prefer the depth-specific value.
//    This eliminates the outer-vs-inner split conflation of the §5 workload.
//
// Observations always record BOTH layers, so the scope can be chosen at
// lookup time and snapshots carry everything.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "est/muscle_stats.hpp"

namespace askel {

enum class EstimationScope : int {
  kAggregate,  // per-muscle (the paper's implementation)
  kPerDepth,   // per (muscle, nesting depth), falling back to aggregate
};

/// Depth value representing the aggregate (depth-less) layer.
inline constexpr int kAnyDepth = -1;

/// Composite key: (muscle id, depth). Depth kAnyDepth = aggregate layer.
std::int64_t estimate_key(int muscle_id, int depth);
/// Inverse of estimate_key.
int estimate_key_muscle(std::int64_t key);
int estimate_key_depth(std::int64_t key);

/// Immutable value snapshot of the registry.
class Estimates {
 public:
  struct Entry {
    std::optional<double> t;
    std::optional<double> card;
  };

  /// Aggregate lookups (depth-less).
  std::optional<double> t(int muscle_id) const;
  std::optional<double> cardinality(int muscle_id) const;
  double t_or(int muscle_id, double fallback) const;
  double cardinality_or(int muscle_id, double fallback) const;
  bool has_t(int muscle_id) const { return t(muscle_id).has_value(); }

  /// Depth-aware lookups: per-depth value when the snapshot's scope is
  /// kPerDepth and one exists, else the aggregate value.
  std::optional<double> t(int muscle_id, int depth) const;
  std::optional<double> cardinality(int muscle_id, int depth) const;

  /// Store an aggregate entry (tests and hand-built estimate sets).
  void set(int muscle_id, Entry e);
  /// Store a depth-specific entry.
  void set(int muscle_id, int depth, Entry e);

  EstimationScope scope() const { return scope_; }
  void set_scope(EstimationScope s) { scope_ = s; }

  std::size_t size() const { return entries_.size(); }
  const std::unordered_map<std::int64_t, Entry>& entries() const { return entries_; }

 private:
  EstimationScope scope_ = EstimationScope::kAggregate;
  std::unordered_map<std::int64_t, Entry> entries_;
};

class EstimateRegistry {
 public:
  /// `rho` is the smoothing parameter applied to every muscle's EWMAs.
  explicit EstimateRegistry(double rho = 0.5,
                            EstimationScope scope = EstimationScope::kAggregate);

  /// Record an observation at a known nesting depth (both layers updated).
  void observe_duration(int muscle_id, int depth, double seconds);
  void observe_cardinality(int muscle_id, int depth, double card);
  /// Depth-less convenience (updates only the aggregate layer).
  void observe_duration(int muscle_id, double seconds);
  void observe_cardinality(int muscle_id, double card);

  /// Paper scenario 2 ("Goal with initialization"): seed estimates, e.g.
  /// from a previous run exported with `snapshot()`.
  void init_duration(int muscle_id, double seconds);
  void init_cardinality(int muscle_id, double card);
  void init_duration(int muscle_id, int depth, double seconds);
  void init_cardinality(int muscle_id, int depth, double card);
  /// Seed every estimate present in `previous` (both layers).
  void init_from(const Estimates& previous);

  std::optional<double> t(int muscle_id) const;
  std::optional<double> cardinality(int muscle_id) const;
  std::optional<double> t(int muscle_id, int depth) const;
  std::optional<double> cardinality(int muscle_id, int depth) const;

  Estimates snapshot() const;
  double rho() const { return rho_; }
  EstimationScope scope() const { return scope_; }
  void clear();

 private:
  MuscleStats& stats_locked(std::int64_t key);
  std::optional<double> t_locked(std::int64_t key) const;
  std::optional<double> card_locked(std::int64_t key) const;

  double rho_;
  EstimationScope scope_;
  mutable std::mutex mu_;
  std::unordered_map<std::int64_t, MuscleStats> stats_;
};

}  // namespace askel
