#pragma once
// Thread-safe registry of muscle estimates, keyed by muscle id.
//
// Writers are the state machines (on After events, from worker threads);
// readers are the ADG expansion and the autonomic controller. Readers take a
// consistent `Estimates` snapshot so a whole scheduling computation sees one
// coherent set of values.
//
// Two estimation scopes are supported:
//  * kAggregate (the paper's Skandium v1.1b1): one t(m)/|m| per muscle
//    object. Sharing a muscle across nesting levels (Listing 1 shares fs and
//    fm) deliberately shares — and conflates — its estimate.
//  * kPerDepth (this repo's implementation of the paper's §6 future work on
//    "different WCT estimation algorithms"): estimates are additionally kept
//    per dynamic nesting depth, and lookups prefer the depth-specific value.
//    This eliminates the outer-vs-inner split conflation of the §5 workload.
//
// Observations always record BOTH layers, so the scope can be chosen at
// lookup time and snapshots carry everything.
//
// Concurrency layout (contention-free hot paths):
//  * writes and point lookups lock only one of kShards muscle-id-sharded
//    mutexes (both layers of a muscle live in the same shard), so state
//    machines on different workers updating different muscles never contend;
//  * every write bumps an atomic version counter;
//  * snapshot() caches the last built `Estimates` and, while the version is
//    unchanged, returns it again without touching the shards — O(1), no
//    copy. `Estimates` itself is copy-on-write, so handing the cached
//    snapshot out by value is one shared_ptr bump.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "est/estimator.hpp"
#include "est/muscle_stats.hpp"

namespace askel {

enum class EstimationScope : int {
  kAggregate,  // per-muscle (the paper's implementation)
  kPerDepth,   // per (muscle, nesting depth), falling back to aggregate
};

/// Depth value representing the aggregate (depth-less) layer.
inline constexpr int kAnyDepth = -1;

/// Composite key: (muscle id, depth). Depth kAnyDepth = aggregate layer.
std::int64_t estimate_key(int muscle_id, int depth);
/// Inverse of estimate_key.
int estimate_key_muscle(std::int64_t key);
int estimate_key_depth(std::int64_t key);

/// Immutable value snapshot of the registry.
///
/// Copy-on-write: copies share the underlying entry map (copying an
/// Estimates is one shared_ptr bump), and a mutation on a shared instance
/// clones the map first. This keeps snapshot() value-semantic — callers may
/// still hold or mutate their copy freely — while making the clean-snapshot
/// fast path O(1). Mutating one instance concurrently with copying that same
/// instance is not supported (value semantics, same as any standard
/// container).
class Estimates {
 public:
  struct Entry {
    std::optional<double> t;
    std::optional<double> card;
  };
  using Map = std::unordered_map<std::int64_t, Entry>;

  /// Aggregate lookups (depth-less).
  std::optional<double> t(int muscle_id) const;
  std::optional<double> cardinality(int muscle_id) const;
  double t_or(int muscle_id, double fallback) const;
  double cardinality_or(int muscle_id, double fallback) const;
  bool has_t(int muscle_id) const { return t(muscle_id).has_value(); }

  /// Depth-aware lookups: per-depth value when the snapshot's scope is
  /// kPerDepth and one exists, else the aggregate value.
  std::optional<double> t(int muscle_id, int depth) const;
  std::optional<double> cardinality(int muscle_id, int depth) const;

  /// Store an aggregate entry (tests and hand-built estimate sets).
  void set(int muscle_id, Entry e);
  /// Store a depth-specific entry.
  void set(int muscle_id, int depth, Entry e);
  /// Pre-size the map for `n` entries before a bulk build.
  void reserve(std::size_t n);

  EstimationScope scope() const { return scope_; }
  void set_scope(EstimationScope s) { scope_ = s; }

  std::size_t size() const { return map().size(); }
  const Map& entries() const { return map(); }

 private:
  const Map& map() const;
  Map& mutable_map();

  EstimationScope scope_ = EstimationScope::kAggregate;
  std::shared_ptr<Map> entries_;  // null = empty; cloned on shared write
};

class EstimateRegistry {
 public:
  /// Legacy constructor: the paper's EWMA at `rho` for every muscle.
  explicit EstimateRegistry(double rho = 0.5,
                            EstimationScope scope = EstimationScope::kAggregate);

  /// Estimator-family constructor (per-scope factory): every muscle entry in
  /// this registry — both layers, duration and cardinality — is estimated by
  /// a fresh clone of the configured estimator. The versioned/COW snapshot
  /// semantics are estimator-agnostic: snapshots carry values, not
  /// estimator state.
  explicit EstimateRegistry(const EstimatorConfig& estimator,
                            EstimationScope scope = EstimationScope::kAggregate);

  /// Record an observation at a known nesting depth (both layers updated).
  void observe_duration(int muscle_id, int depth, double seconds);
  void observe_cardinality(int muscle_id, int depth, double card);
  /// Depth-less convenience (updates only the aggregate layer).
  void observe_duration(int muscle_id, double seconds);
  void observe_cardinality(int muscle_id, double card);

  /// Paper scenario 2 ("Goal with initialization"): seed estimates, e.g.
  /// from a previous run exported with `snapshot()`.
  void init_duration(int muscle_id, double seconds);
  void init_cardinality(int muscle_id, double card);
  void init_duration(int muscle_id, int depth, double seconds);
  void init_cardinality(int muscle_id, int depth, double card);
  /// Seed every estimate present in `previous` (both layers).
  void init_from(const Estimates& previous);

  std::optional<double> t(int muscle_id) const;
  std::optional<double> cardinality(int muscle_id) const;
  std::optional<double> t(int muscle_id, int depth) const;
  std::optional<double> cardinality(int muscle_id, int depth) const;

  /// Consistent snapshot of everything. O(1) when nothing was written since
  /// the previous call (the controller's back-to-back decision case);
  /// O(muscles) rebuild otherwise.
  Estimates snapshot() const;
  /// Monotonic write counter; bumped by every observe/init/clear. Exposed
  /// for tests and monitoring ("did anything change since I last looked?").
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  /// Smoothing of the configured estimator (meaningful for kEwma; kept for
  /// the pre-estimator-family API).
  double rho() const { return est_cfg_.rho; }
  /// The per-muscle estimator factory this registry clones from.
  const EstimatorConfig& estimator_config() const { return est_cfg_; }
  EstimationScope scope() const { return scope_; }
  void clear();

 private:
  // One shard per group of muscle ids; both layers (aggregate + per-depth)
  // of a muscle live in its shard, so point lookups with depth fallback
  // still take a single lock.
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::int64_t, MuscleStats> stats;
  };
  Shard& shard_for(int muscle_id) const;
  /// Lock every shard (fixed index order; excludes all writers at once).
  std::vector<std::unique_lock<std::mutex>> lock_all_shards() const;
  MuscleStats& stats_locked(Shard& s, std::int64_t key);
  static std::optional<double> t_locked(const Shard& s, std::int64_t key);
  static std::optional<double> card_locked(const Shard& s, std::int64_t key);
  void bump_version();

  EstimatorConfig est_cfg_;
  EstimationScope scope_;
  mutable std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> version_{0};

  // Clean-snapshot cache, guarded by snap_mu_ (never taken by writers).
  mutable std::mutex snap_mu_;
  mutable Estimates cached_snapshot_;
  mutable std::uint64_t cached_version_ = 0;
  mutable bool cache_valid_ = false;
};

}  // namespace askel
