#pragma once
// Thread-safe registry of muscle estimates, keyed by muscle id.
//
// Writers are the state machines (on After events, from worker threads);
// readers are the ADG expansion and the autonomic controller. Readers take a
// consistent `Estimates` snapshot so a whole scheduling computation sees one
// coherent set of values.
//
// Two estimation scopes are supported:
//  * kAggregate (the paper's Skandium v1.1b1): one t(m)/|m| per muscle
//    object. Sharing a muscle across nesting levels (Listing 1 shares fs and
//    fm) deliberately shares — and conflates — its estimate.
//  * kPerDepth (this repo's implementation of the paper's §6 future work on
//    "different WCT estimation algorithms"): estimates are additionally kept
//    per dynamic nesting depth, and lookups prefer the depth-specific value.
//    This eliminates the outer-vs-inner split conflation of the §5 workload.
//
// Observations always record BOTH layers, so the scope can be chosen at
// lookup time and snapshots carry everything.
//
// Concurrency layout (hot paths scale with work done, not state size):
//  * writes and point lookups lock only one of kEstimateFragments
//    muscle-id-sharded mutexes (both layers of a muscle live in the same
//    shard), so state machines on different workers updating different
//    muscles never contend;
//  * every write bumps its shard's version (under the shard lock) and a
//    global atomic version counter;
//  * `Estimates` is fragmented along the same muscle-id sharding. snapshot()
//    keeps a per-shard fragment cache: a rebuild copies only the shards
//    written since the previous snapshot and splices every clean shard in by
//    shared_ptr bump — O(dirty shards), not O(muscles);
//  * the clean path (no writes at all since the last snapshot) is lock-free:
//    one atomic version load plus a cached shared_ptr bump.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "est/estimator.hpp"
#include "est/muscle_stats.hpp"

namespace askel {

enum class EstimationScope : int {
  kAggregate,  // per-muscle (the paper's implementation)
  kPerDepth,   // per (muscle, nesting depth), falling back to aggregate
};

/// Depth value representing the aggregate (depth-less) layer.
inline constexpr int kAnyDepth = -1;

/// Shard fan-out shared by EstimateRegistry and Estimates. The two MUST use
/// the same muscle-id -> shard mapping so a registry shard rebuilds exactly
/// one snapshot fragment.
inline constexpr std::size_t kEstimateFragments = 16;

/// Composite key: (muscle id, depth). Depth kAnyDepth = aggregate layer.
std::int64_t estimate_key(int muscle_id, int depth);
/// Inverse of estimate_key.
int estimate_key_muscle(std::int64_t key);
int estimate_key_depth(std::int64_t key);

/// Immutable value snapshot of the registry.
///
/// Internally fragmented along the registry's muscle-id sharding: each of
/// kEstimateFragments fragments is an independently shared map, and the
/// fragment-pointer array itself sits behind one more shared_ptr. Copying an
/// Estimates is therefore a SINGLE refcount bump (the controller's
/// back-to-back clean-snapshot case — atomic refcounts are lock-prefixed RMWs
/// once the process is multithreaded, so one bump vs sixteen is measurable);
/// a mutation copy-on-shared-writes the pointer array once and then only the
/// one fragment the touched muscle lives in. This keeps snapshot()
/// value-semantic — callers may still hold or mutate their copy freely —
/// while letting the registry splice unchanged fragments between successive
/// snapshots without copying them. Mutating one instance concurrently with
/// copying that same instance is not supported (value semantics, same as any
/// standard container).
class Estimates {
 public:
  struct Entry {
    std::optional<double> t;
    std::optional<double> card;
  };
  using Map = std::unordered_map<std::int64_t, Entry>;

  static constexpr std::size_t kFragments = kEstimateFragments;
  /// Fragment a muscle's entries live in (same mapping as the registry's
  /// shard_for — keep the casts identical).
  static std::size_t fragment_of(int muscle_id) {
    return static_cast<std::size_t>(muscle_id) % kFragments;
  }

  /// Aggregate lookups (depth-less).
  std::optional<double> t(int muscle_id) const;
  std::optional<double> cardinality(int muscle_id) const;
  double t_or(int muscle_id, double fallback) const;
  double cardinality_or(int muscle_id, double fallback) const;
  bool has_t(int muscle_id) const { return t(muscle_id).has_value(); }

  /// Depth-aware lookups: per-depth value when the snapshot's scope is
  /// kPerDepth and one exists, else the aggregate value.
  std::optional<double> t(int muscle_id, int depth) const;
  std::optional<double> cardinality(int muscle_id, int depth) const;

  /// Store an aggregate entry (tests and hand-built estimate sets).
  void set(int muscle_id, Entry e);
  /// Store a depth-specific entry.
  void set(int muscle_id, int depth, Entry e);

  EstimationScope scope() const { return scope_; }
  void set_scope(EstimationScope s) { scope_ = s; }

  std::size_t size() const;

  /// Visit every (composite key, entry) pair across all fragments.
  /// Iteration order is unspecified (it was never specified for the old
  /// single-map layout either).
  template <class F>
  void for_each(F&& f) const {
    if (!frags_) return;
    for (const auto& frag : *frags_) {
      if (!frag) continue;
      for (const auto& [key, entry] : *frag) f(key, entry);
    }
  }

  /// The shared fragment map at index `i` (null = empty). Exposed so tests
  /// can verify storage sharing/splicing and so the registry can splice
  /// clean fragments directly.
  std::shared_ptr<const Map> fragment(std::size_t i) const {
    return frags_ ? (*frags_)[i] : nullptr;
  }
  /// Registry-side splice: install a prebuilt fragment.
  void set_fragment(std::size_t i, std::shared_ptr<const Map> frag) {
    mutable_frags()[i] = std::move(frag);
  }

 private:
  using FragArray = std::array<std::shared_ptr<const Map>, kFragments>;

  const Map* frag_for(int muscle_id) const {
    return frags_ ? (*frags_)[fragment_of(muscle_id)].get() : nullptr;
  }
  FragArray& mutable_frags();
  Map& mutable_fragment(std::size_t i);

  EstimationScope scope_ = EstimationScope::kAggregate;
  // const FragArray of const Maps: both levels are immutable once shared; a
  // write clones the array (and the touched fragment) first. Null = empty.
  std::shared_ptr<const FragArray> frags_{};
};

class EstimateRegistry {
 public:
  /// Legacy constructor: the paper's EWMA at `rho` for every muscle.
  explicit EstimateRegistry(double rho = 0.5,
                            EstimationScope scope = EstimationScope::kAggregate);

  /// Estimator-family constructor (per-scope factory): every muscle entry in
  /// this registry — both layers, duration and cardinality — is estimated by
  /// a fresh clone of the configured estimator. The versioned/COW snapshot
  /// semantics are estimator-agnostic: snapshots carry values, not
  /// estimator state.
  explicit EstimateRegistry(const EstimatorConfig& estimator,
                            EstimationScope scope = EstimationScope::kAggregate);

  /// Record an observation at a known nesting depth (both layers updated).
  void observe_duration(int muscle_id, int depth, double seconds);
  void observe_cardinality(int muscle_id, int depth, double card);
  /// Depth-less convenience (updates only the aggregate layer).
  void observe_duration(int muscle_id, double seconds);
  void observe_cardinality(int muscle_id, double card);

  /// Paper scenario 2 ("Goal with initialization"): seed estimates, e.g.
  /// from a previous run exported with `snapshot()`.
  void init_duration(int muscle_id, double seconds);
  void init_cardinality(int muscle_id, double card);
  void init_duration(int muscle_id, int depth, double seconds);
  void init_cardinality(int muscle_id, int depth, double card);
  /// Seed every estimate present in `previous` (both layers).
  void init_from(const Estimates& previous);

  std::optional<double> t(int muscle_id) const;
  std::optional<double> cardinality(int muscle_id) const;
  std::optional<double> t(int muscle_id, int depth) const;
  std::optional<double> cardinality(int muscle_id, int depth) const;

  /// Consistent snapshot of everything. Lock-free when nothing was written
  /// since the previous call (the controller's back-to-back decision case):
  /// one version load + a cached shared_ptr bump. Otherwise rebuilds ONLY
  /// the shards written since the last snapshot — locking only those shards
  /// — and splices the rest in by shared_ptr bump: O(dirty shards), not
  /// O(muscles). A global-version recheck (bounded retry, then a lock-all
  /// fallback) keeps the result a coherent cut even though clean shards are
  /// spliced without their locks.
  Estimates snapshot() const;
  /// Monotonic write counter; bumped by every observe/init/clear. Exposed
  /// for tests and monitoring ("did anything change since I last looked?").
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  /// Smoothing of the configured estimator (meaningful for kEwma; kept for
  /// the pre-estimator-family API).
  double rho() const { return est_cfg_.rho; }
  /// The per-muscle estimator factory this registry clones from.
  const EstimatorConfig& estimator_config() const { return est_cfg_; }
  EstimationScope scope() const { return scope_; }
  void clear();

 private:
  // One shard per group of muscle ids; both layers (aggregate + per-depth)
  // of a muscle live in its shard, so point lookups with depth fallback
  // still take a single lock. Shard index == Estimates fragment index.
  static constexpr std::size_t kShards = kEstimateFragments;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::int64_t, MuscleStats> stats;
    // Bumped (store-release) under mu by every write to this shard. Atomic
    // so the snapshot's per-shard clean check can read it WITHOUT taking mu
    // — a rebuild locks only the shards whose version moved; reading a stale
    // value is caught by the rebuild's global-version recheck.
    std::atomic<std::uint64_t> version{0};
    // Fragment cache: the Estimates fragment built from `stats` at
    // `frag_version`. Guarded by snap_mu_, NOT by mu — only snapshot()
    // (which serializes on snap_mu_) ever touches it; writers never look.
    std::shared_ptr<const Estimates::Map> frag;
    std::uint64_t frag_version = 0;
  };
  Shard& shard_for(int muscle_id) const;
  /// Lock every shard (fixed index order; excludes all writers at once).
  std::vector<std::unique_lock<std::mutex>> lock_all_shards() const;
  MuscleStats& stats_locked(Shard& s, std::int64_t key);
  static std::optional<double> t_locked(const Shard& s, std::int64_t key);
  static std::optional<double> card_locked(const Shard& s, std::int64_t key);
  void bump_version();

  EstimatorConfig est_cfg_;
  EstimationScope scope_;
  mutable std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> version_{0};

  // Whole-snapshot cache for the lock-free clean path: the last snapshot
  // built, tagged with the global version it was built at. Readers load it
  // with one atomic shared_ptr load; rebuilds publish a fresh node.
  struct CleanSnap {
    std::uint64_t version;
    Estimates snap;
  };
  mutable std::atomic<std::shared_ptr<const CleanSnap>> clean_cache_{};
  // Serializes rebuilds only (never taken by writers or the clean path).
  mutable std::mutex snap_mu_;
};

}  // namespace askel
