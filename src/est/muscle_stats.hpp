#pragma once
// Per-muscle estimation state: t(m) for every muscle, |m| for Split and
// Condition muscles (paper §4: the cardinality of a Split is the size of the
// sub-problem set it returns; the cardinality of a Condition is the number of
// `true` results over a While run, or the recursion depth for d&C).

#include <optional>

#include "est/ewma.hpp"

namespace askel {

class MuscleStats {
 public:
  explicit MuscleStats(double rho = 0.5) : t_(rho), card_(rho) {}

  void observe_duration(double seconds) { t_.observe(seconds); }
  void observe_cardinality(double card) { card_.observe(card); }
  void init_duration(double seconds) { t_.init(seconds); }
  void init_cardinality(double card) { card_.init(card); }

  std::optional<double> t() const {
    return t_.has_value() ? std::optional<double>(t_.value()) : std::nullopt;
  }
  std::optional<double> cardinality() const {
    return card_.has_value() ? std::optional<double>(card_.value()) : std::nullopt;
  }

  long duration_observations() const { return t_.observations(); }
  long cardinality_observations() const { return card_.observations(); }

 private:
  Ewma t_;
  Ewma card_;
};

}  // namespace askel
