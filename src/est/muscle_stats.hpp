#pragma once
// Per-muscle estimation state: t(m) for every muscle, |m| for Split and
// Condition muscles (paper §4: the cardinality of a Split is the size of the
// sub-problem set it returns; the cardinality of a Condition is the number of
// `true` results over a While run, or the recursion depth for d&C).
//
// Both statistics run through the pluggable Estimator interface; the default
// (and the legacy double-rho constructor) is the paper's EWMA, bit-identical
// to the pre-interface code path.

#include <memory>
#include <optional>

#include "est/estimator.hpp"

namespace askel {

class MuscleStats {
 public:
  /// Legacy constructor: the paper's EWMA at `rho` for both statistics.
  explicit MuscleStats(double rho = 0.5)
      : MuscleStats(EstimatorConfig{.kind = EstimatorKind::kEwma, .rho = rho}) {}

  /// Estimator-family constructor: one fresh estimator per statistic, built
  /// from the registry's per-scope config.
  explicit MuscleStats(const EstimatorConfig& cfg)
      : t_(make_estimator(cfg)), card_(make_estimator(cfg)) {}

  MuscleStats(MuscleStats&&) = default;
  MuscleStats& operator=(MuscleStats&&) = default;

  void observe_duration(double seconds) { t_->observe(seconds); }
  void observe_cardinality(double card) { card_->observe(card); }
  void init_duration(double seconds) { t_->init(seconds); }
  void init_cardinality(double card) { card_->init(card); }

  std::optional<double> t() const {
    return t_->has_value() ? std::optional<double>(t_->value()) : std::nullopt;
  }
  std::optional<double> cardinality() const {
    return card_->has_value() ? std::optional<double>(card_->value())
                              : std::nullopt;
  }

  long duration_observations() const { return t_->observations(); }
  long cardinality_observations() const { return card_->observations(); }

  EstimatorKind estimator_kind() const { return t_->kind(); }

 private:
  std::unique_ptr<Estimator> t_;
  std::unique_ptr<Estimator> card_;
};

}  // namespace askel
