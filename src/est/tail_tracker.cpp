#include "est/tail_tracker.hpp"

namespace askel {
namespace {

std::unique_ptr<Estimator> p2(double q) {
  EstimatorConfig cfg;
  cfg.kind = EstimatorKind::kP2Quantile;
  cfg.quantile = q;
  return make_estimator(cfg);
}

}  // namespace

TailTracker::TailTracker(double quantile, Duration target)
    : quantile_(quantile),
      target_(target),
      tail_est_(p2(quantile)),
      median_est_(p2(0.5)) {}

void TailTracker::record(Duration latency) {
  std::lock_guard lock(mu_);
  tail_est_->observe(latency);
  median_est_->observe(latency);
  if (target_ > 0.0 && latency <= target_) ++met_;
}

TailSnapshot TailTracker::snapshot() const {
  std::lock_guard lock(mu_);
  TailSnapshot s;
  s.observations = tail_est_->observations();
  s.met = met_;
  if (tail_est_->has_value()) s.tail = tail_est_->value();
  if (median_est_->has_value()) s.median = median_est_->value();
  return s;
}

double TailTracker::attainment() const {
  const TailSnapshot s = snapshot();
  if (s.observations == 0) return 1.0;
  return static_cast<double>(s.met) / static_cast<double>(s.observations);
}

void TailTracker::reset() {
  std::lock_guard lock(mu_);
  tail_est_ = tail_est_->clone_fresh();
  median_est_ = median_est_->clone_fresh();
  met_ = 0;
}

}  // namespace askel
