#include "est/registry.hpp"

namespace askel {

std::int64_t estimate_key(int muscle_id, int depth) {
  // Depths are small (trace length); bias by 1 so kAnyDepth maps to 0.
  return (static_cast<std::int64_t>(muscle_id) << 20) |
         static_cast<std::int64_t>(depth + 1);
}

int estimate_key_muscle(std::int64_t key) { return static_cast<int>(key >> 20); }

int estimate_key_depth(std::int64_t key) {
  return static_cast<int>(key & 0xFFFFF) - 1;
}

// -------------------------------------------------------------- Estimates --

Estimates::FragArray& Estimates::mutable_frags() {
  if (!frags_) {
    auto fresh = std::make_shared<FragArray>();
    FragArray& ref = *fresh;
    frags_ = std::move(fresh);
    return ref;
  }
  if (frags_.use_count() > 1) {
    auto clone = std::make_shared<FragArray>(*frags_);  // copy-on-shared-write
    FragArray& ref = *clone;
    frags_ = std::move(clone);
    return ref;
  }
  // Sole owner: mutate in place (same reasoning as mutable_fragment below).
  return const_cast<FragArray&>(*frags_);
}

Estimates::Map& Estimates::mutable_fragment(std::size_t i) {
  std::shared_ptr<const Map>& frag = mutable_frags()[i];
  if (!frag) {
    auto fresh = std::make_shared<Map>();
    Map& ref = *fresh;
    frag = std::move(fresh);
    return ref;
  }
  if (frag.use_count() > 1) {
    auto clone = std::make_shared<Map>(*frag);  // copy-on-shared-write
    Map& ref = *clone;
    frag = std::move(clone);
    return ref;
  }
  // Sole owner: mutate in place. The const in the shared_ptr type documents
  // "immutable once shared"; with use_count()==1 nobody else can observe it.
  return const_cast<Map&>(*frag);
}

std::optional<double> Estimates::t(int muscle_id) const {
  const Map* m = frag_for(muscle_id);
  if (!m) return std::nullopt;
  const auto it = m->find(estimate_key(muscle_id, kAnyDepth));
  return it == m->end() ? std::nullopt : it->second.t;
}

std::optional<double> Estimates::cardinality(int muscle_id) const {
  const Map* m = frag_for(muscle_id);
  if (!m) return std::nullopt;
  const auto it = m->find(estimate_key(muscle_id, kAnyDepth));
  return it == m->end() ? std::nullopt : it->second.card;
}

double Estimates::t_or(int muscle_id, double fallback) const {
  return t(muscle_id).value_or(fallback);
}

double Estimates::cardinality_or(int muscle_id, double fallback) const {
  return cardinality(muscle_id).value_or(fallback);
}

std::optional<double> Estimates::t(int muscle_id, int depth) const {
  if (scope_ == EstimationScope::kPerDepth) {
    if (const Map* m = frag_for(muscle_id)) {
      const auto it = m->find(estimate_key(muscle_id, depth));
      if (it != m->end() && it->second.t) return it->second.t;
    }
  }
  return t(muscle_id);
}

std::optional<double> Estimates::cardinality(int muscle_id, int depth) const {
  if (scope_ == EstimationScope::kPerDepth) {
    if (const Map* m = frag_for(muscle_id)) {
      const auto it = m->find(estimate_key(muscle_id, depth));
      if (it != m->end() && it->second.card) return it->second.card;
    }
  }
  return cardinality(muscle_id);
}

void Estimates::set(int muscle_id, Entry e) {
  mutable_fragment(fragment_of(muscle_id))[estimate_key(muscle_id, kAnyDepth)] =
      e;
}

void Estimates::set(int muscle_id, int depth, Entry e) {
  mutable_fragment(fragment_of(muscle_id))[estimate_key(muscle_id, depth)] = e;
}

std::size_t Estimates::size() const {
  std::size_t n = 0;
  if (!frags_) return n;
  for (const auto& frag : *frags_) {
    if (frag) n += frag->size();
  }
  return n;
}

// ------------------------------------------------------- EstimateRegistry --

EstimateRegistry::EstimateRegistry(double rho, EstimationScope scope)
    : EstimateRegistry(EstimatorConfig{.kind = EstimatorKind::kEwma, .rho = rho},
                       scope) {}

EstimateRegistry::EstimateRegistry(const EstimatorConfig& estimator,
                                   EstimationScope scope)
    : est_cfg_(estimator), scope_(scope) {
  // Validate eagerly: a bad config must throw here, not on the first
  // observation from a worker thread.
  (void)make_estimator(est_cfg_);
}

EstimateRegistry::Shard& EstimateRegistry::shard_for(int muscle_id) const {
  return shards_[static_cast<std::size_t>(muscle_id) % kShards];
}

MuscleStats& EstimateRegistry::stats_locked(Shard& s, std::int64_t key) {
  return s.stats.try_emplace(key, est_cfg_).first->second;
}

void EstimateRegistry::bump_version() {
  version_.fetch_add(1, std::memory_order_release);
}

void EstimateRegistry::observe_duration(int muscle_id, int depth, double seconds) {
  Shard& s = shard_for(muscle_id);
  {
    std::lock_guard lock(s.mu);
    stats_locked(s, estimate_key(muscle_id, kAnyDepth)).observe_duration(seconds);
    if (depth != kAnyDepth)
      stats_locked(s, estimate_key(muscle_id, depth)).observe_duration(seconds);
    s.version.store(s.version.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  }
  bump_version();
}

void EstimateRegistry::observe_cardinality(int muscle_id, int depth, double card) {
  Shard& s = shard_for(muscle_id);
  {
    std::lock_guard lock(s.mu);
    stats_locked(s, estimate_key(muscle_id, kAnyDepth)).observe_cardinality(card);
    if (depth != kAnyDepth)
      stats_locked(s, estimate_key(muscle_id, depth)).observe_cardinality(card);
    s.version.store(s.version.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  }
  bump_version();
}

void EstimateRegistry::observe_duration(int muscle_id, double seconds) {
  observe_duration(muscle_id, kAnyDepth, seconds);
}

void EstimateRegistry::observe_cardinality(int muscle_id, double card) {
  observe_cardinality(muscle_id, kAnyDepth, card);
}

void EstimateRegistry::init_duration(int muscle_id, double seconds) {
  init_duration(muscle_id, kAnyDepth, seconds);
}

void EstimateRegistry::init_cardinality(int muscle_id, double card) {
  init_cardinality(muscle_id, kAnyDepth, card);
}

void EstimateRegistry::init_duration(int muscle_id, int depth, double seconds) {
  Shard& s = shard_for(muscle_id);
  {
    std::lock_guard lock(s.mu);
    stats_locked(s, estimate_key(muscle_id, depth)).init_duration(seconds);
    s.version.store(s.version.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  }
  bump_version();
}

void EstimateRegistry::init_cardinality(int muscle_id, int depth, double card) {
  Shard& s = shard_for(muscle_id);
  {
    std::lock_guard lock(s.mu);
    stats_locked(s, estimate_key(muscle_id, depth)).init_cardinality(card);
    s.version.store(s.version.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  }
  bump_version();
}

void EstimateRegistry::init_from(const Estimates& previous) {
  // All shards at once: readers must see the whole seeding or none of it,
  // same atomicity the old single-mutex registry gave.
  std::vector<std::unique_lock<std::mutex>> locks = lock_all_shards();
  previous.for_each([&](std::int64_t key, const Estimates::Entry& entry) {
    Shard& s = shard_for(estimate_key_muscle(key));
    MuscleStats& st = stats_locked(s, key);
    if (entry.t) st.init_duration(*entry.t);
    if (entry.card) st.init_cardinality(*entry.card);
    s.version.store(s.version.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  });
  bump_version();
}

std::vector<std::unique_lock<std::mutex>> EstimateRegistry::lock_all_shards() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kShards);
  for (Shard& s : shards_) locks.emplace_back(s.mu);
  return locks;
}

std::optional<double> EstimateRegistry::t_locked(const Shard& s, std::int64_t key) {
  const auto it = s.stats.find(key);
  return it == s.stats.end() ? std::nullopt : it->second.t();
}

std::optional<double> EstimateRegistry::card_locked(const Shard& s, std::int64_t key) {
  const auto it = s.stats.find(key);
  return it == s.stats.end() ? std::nullopt : it->second.cardinality();
}

std::optional<double> EstimateRegistry::t(int muscle_id) const {
  const Shard& s = shard_for(muscle_id);
  std::lock_guard lock(s.mu);
  return t_locked(s, estimate_key(muscle_id, kAnyDepth));
}

std::optional<double> EstimateRegistry::cardinality(int muscle_id) const {
  const Shard& s = shard_for(muscle_id);
  std::lock_guard lock(s.mu);
  return card_locked(s, estimate_key(muscle_id, kAnyDepth));
}

std::optional<double> EstimateRegistry::t(int muscle_id, int depth) const {
  const Shard& s = shard_for(muscle_id);
  std::lock_guard lock(s.mu);
  if (scope_ == EstimationScope::kPerDepth) {
    if (const auto v = t_locked(s, estimate_key(muscle_id, depth))) return v;
  }
  return t_locked(s, estimate_key(muscle_id, kAnyDepth));
}

std::optional<double> EstimateRegistry::cardinality(int muscle_id, int depth) const {
  const Shard& s = shard_for(muscle_id);
  std::lock_guard lock(s.mu);
  if (scope_ == EstimationScope::kPerDepth) {
    if (const auto v = card_locked(s, estimate_key(muscle_id, depth))) return v;
  }
  return card_locked(s, estimate_key(muscle_id, kAnyDepth));
}

Estimates EstimateRegistry::snapshot() const {
  // Clean fast path — lock-free: nothing written since the cached snapshot
  // was built, so return it again. One acquire load of the version, one
  // atomic shared_ptr load, and the Estimates copy (a single refcount bump:
  // the fragment array sits behind one shared_ptr).
  {
    const std::uint64_t v = version_.load(std::memory_order_acquire);
    const std::shared_ptr<const CleanSnap> c =
        clean_cache_.load(std::memory_order_acquire);
    if (c && c->version == v) return c->snap;
  }

  // Rebuild path. snap_mu_ serializes rebuilders only, and it is all the
  // protection the per-shard fragment caches need (writers never touch
  // them). Shard mutexes are taken ONLY for the shards whose version moved —
  // the common 1-dirty-shard rebuild pays one shard lock, not kShards.
  //
  // Coherence: splicing a clean shard's cached fragment without its lock
  // risks a torn cut only if a write lands in some shard mid-build. Any such
  // write we *observe* (by locking its shard's mutex, or by an acquire load
  // of its bumped shard version) makes the writer's earlier global-version
  // bumps visible too, so re-reading the global version after the build
  // detects the overlap and retries; shards rebuilt on a discarded attempt
  // stay cached, so the retry only splices. Two overlap retries mean
  // sustained writer traffic — fall back to locking all shards at once,
  // which excludes writers outright (the pre-PR 6 behavior, and the same
  // all-or-nothing cut init_from/clear rely on).
  std::lock_guard snap_lock(snap_mu_);
  for (int attempt = 0;; ++attempt) {
    const bool lock_all = attempt >= 2;
    // RAII locks: a bad_alloc during the build must not leave shards locked.
    std::vector<std::unique_lock<std::mutex>> all_locks;
    if (lock_all) all_locks = lock_all_shards();
    const std::uint64_t v0 = version_.load(std::memory_order_acquire);
    Estimates out;
    out.set_scope(scope_);
    for (std::size_t i = 0; i < kShards; ++i) {
      Shard& s = shards_[i];
      if (!s.frag ||
          s.frag_version != s.version.load(std::memory_order_acquire)) {
        // Dirty (or never built): rebuild this shard's fragment from
        // scratch, under its lock unless every shard is already held.
        std::unique_lock<std::mutex> lk;
        if (!lock_all) lk = std::unique_lock(s.mu);
        auto frag = std::make_shared<Estimates::Map>();
        frag->reserve(s.stats.size());
        for (const auto& [key, st] : s.stats) {
          (*frag)[key] = Estimates::Entry{st.t(), st.cardinality()};
        }
        s.frag = std::move(frag);
        // Exact under mu: writers bump the shard version before unlocking.
        s.frag_version = s.version.load(std::memory_order_relaxed);
      }
      // Clean shards splice straight in: one shared_ptr bump, zero copying.
      out.set_fragment(i, s.frag);
    }
    const std::uint64_t v1 = version_.load(std::memory_order_acquire);
    if (v1 != v0 && !lock_all) continue;  // a write overlapped the build
    clean_cache_.store(
        std::make_shared<const CleanSnap>(CleanSnap{lock_all ? v1 : v0, out}),
        std::memory_order_release);
    return out;
  }
}

void EstimateRegistry::clear() {
  // All shards at once: a concurrent snapshot must never see half a clear.
  std::vector<std::unique_lock<std::mutex>> locks = lock_all_shards();
  for (Shard& s : shards_) {
    s.stats.clear();
    s.version.store(s.version.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  }
  bump_version();
}

}  // namespace askel
