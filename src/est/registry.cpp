#include "est/registry.hpp"

namespace askel {

std::int64_t estimate_key(int muscle_id, int depth) {
  // Depths are small (trace length); bias by 1 so kAnyDepth maps to 0.
  return (static_cast<std::int64_t>(muscle_id) << 20) |
         static_cast<std::int64_t>(depth + 1);
}

int estimate_key_muscle(std::int64_t key) { return static_cast<int>(key >> 20); }

int estimate_key_depth(std::int64_t key) {
  return static_cast<int>(key & 0xFFFFF) - 1;
}

// -------------------------------------------------------------- Estimates --

const Estimates::Map& Estimates::map() const {
  static const Map kEmpty;
  return entries_ ? *entries_ : kEmpty;
}

Estimates::Map& Estimates::mutable_map() {
  if (!entries_) {
    entries_ = std::make_shared<Map>();
  } else if (entries_.use_count() > 1) {
    entries_ = std::make_shared<Map>(*entries_);  // copy-on-shared-write
  }
  return *entries_;
}

std::optional<double> Estimates::t(int muscle_id) const {
  const Map& m = map();
  const auto it = m.find(estimate_key(muscle_id, kAnyDepth));
  return it == m.end() ? std::nullopt : it->second.t;
}

std::optional<double> Estimates::cardinality(int muscle_id) const {
  const Map& m = map();
  const auto it = m.find(estimate_key(muscle_id, kAnyDepth));
  return it == m.end() ? std::nullopt : it->second.card;
}

double Estimates::t_or(int muscle_id, double fallback) const {
  return t(muscle_id).value_or(fallback);
}

double Estimates::cardinality_or(int muscle_id, double fallback) const {
  return cardinality(muscle_id).value_or(fallback);
}

std::optional<double> Estimates::t(int muscle_id, int depth) const {
  if (scope_ == EstimationScope::kPerDepth) {
    const Map& m = map();
    const auto it = m.find(estimate_key(muscle_id, depth));
    if (it != m.end() && it->second.t) return it->second.t;
  }
  return t(muscle_id);
}

std::optional<double> Estimates::cardinality(int muscle_id, int depth) const {
  if (scope_ == EstimationScope::kPerDepth) {
    const Map& m = map();
    const auto it = m.find(estimate_key(muscle_id, depth));
    if (it != m.end() && it->second.card) return it->second.card;
  }
  return cardinality(muscle_id);
}

void Estimates::set(int muscle_id, Entry e) {
  mutable_map()[estimate_key(muscle_id, kAnyDepth)] = e;
}

void Estimates::set(int muscle_id, int depth, Entry e) {
  mutable_map()[estimate_key(muscle_id, depth)] = e;
}

void Estimates::reserve(std::size_t n) { mutable_map().reserve(n); }

// ------------------------------------------------------- EstimateRegistry --

EstimateRegistry::EstimateRegistry(double rho, EstimationScope scope)
    : EstimateRegistry(EstimatorConfig{.kind = EstimatorKind::kEwma, .rho = rho},
                       scope) {}

EstimateRegistry::EstimateRegistry(const EstimatorConfig& estimator,
                                   EstimationScope scope)
    : est_cfg_(estimator), scope_(scope) {
  // Validate eagerly: a bad config must throw here, not on the first
  // observation from a worker thread.
  (void)make_estimator(est_cfg_);
}

EstimateRegistry::Shard& EstimateRegistry::shard_for(int muscle_id) const {
  return shards_[static_cast<std::size_t>(muscle_id) % kShards];
}

MuscleStats& EstimateRegistry::stats_locked(Shard& s, std::int64_t key) {
  return s.stats.try_emplace(key, est_cfg_).first->second;
}

void EstimateRegistry::bump_version() {
  version_.fetch_add(1, std::memory_order_release);
}

void EstimateRegistry::observe_duration(int muscle_id, int depth, double seconds) {
  Shard& s = shard_for(muscle_id);
  {
    std::lock_guard lock(s.mu);
    stats_locked(s, estimate_key(muscle_id, kAnyDepth)).observe_duration(seconds);
    if (depth != kAnyDepth)
      stats_locked(s, estimate_key(muscle_id, depth)).observe_duration(seconds);
  }
  bump_version();
}

void EstimateRegistry::observe_cardinality(int muscle_id, int depth, double card) {
  Shard& s = shard_for(muscle_id);
  {
    std::lock_guard lock(s.mu);
    stats_locked(s, estimate_key(muscle_id, kAnyDepth)).observe_cardinality(card);
    if (depth != kAnyDepth)
      stats_locked(s, estimate_key(muscle_id, depth)).observe_cardinality(card);
  }
  bump_version();
}

void EstimateRegistry::observe_duration(int muscle_id, double seconds) {
  observe_duration(muscle_id, kAnyDepth, seconds);
}

void EstimateRegistry::observe_cardinality(int muscle_id, double card) {
  observe_cardinality(muscle_id, kAnyDepth, card);
}

void EstimateRegistry::init_duration(int muscle_id, double seconds) {
  init_duration(muscle_id, kAnyDepth, seconds);
}

void EstimateRegistry::init_cardinality(int muscle_id, double card) {
  init_cardinality(muscle_id, kAnyDepth, card);
}

void EstimateRegistry::init_duration(int muscle_id, int depth, double seconds) {
  Shard& s = shard_for(muscle_id);
  {
    std::lock_guard lock(s.mu);
    stats_locked(s, estimate_key(muscle_id, depth)).init_duration(seconds);
  }
  bump_version();
}

void EstimateRegistry::init_cardinality(int muscle_id, int depth, double card) {
  Shard& s = shard_for(muscle_id);
  {
    std::lock_guard lock(s.mu);
    stats_locked(s, estimate_key(muscle_id, depth)).init_cardinality(card);
  }
  bump_version();
}

void EstimateRegistry::init_from(const Estimates& previous) {
  // All shards at once: readers must see the whole seeding or none of it,
  // same atomicity the old single-mutex registry gave.
  std::vector<std::unique_lock<std::mutex>> locks = lock_all_shards();
  for (const auto& [key, entry] : previous.entries()) {
    Shard& s = shard_for(estimate_key_muscle(key));
    MuscleStats& st = stats_locked(s, key);
    if (entry.t) st.init_duration(*entry.t);
    if (entry.card) st.init_cardinality(*entry.card);
  }
  bump_version();
}

std::vector<std::unique_lock<std::mutex>> EstimateRegistry::lock_all_shards() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kShards);
  for (Shard& s : shards_) locks.emplace_back(s.mu);
  return locks;
}

std::optional<double> EstimateRegistry::t_locked(const Shard& s, std::int64_t key) {
  const auto it = s.stats.find(key);
  return it == s.stats.end() ? std::nullopt : it->second.t();
}

std::optional<double> EstimateRegistry::card_locked(const Shard& s, std::int64_t key) {
  const auto it = s.stats.find(key);
  return it == s.stats.end() ? std::nullopt : it->second.cardinality();
}

std::optional<double> EstimateRegistry::t(int muscle_id) const {
  const Shard& s = shard_for(muscle_id);
  std::lock_guard lock(s.mu);
  return t_locked(s, estimate_key(muscle_id, kAnyDepth));
}

std::optional<double> EstimateRegistry::cardinality(int muscle_id) const {
  const Shard& s = shard_for(muscle_id);
  std::lock_guard lock(s.mu);
  return card_locked(s, estimate_key(muscle_id, kAnyDepth));
}

std::optional<double> EstimateRegistry::t(int muscle_id, int depth) const {
  const Shard& s = shard_for(muscle_id);
  std::lock_guard lock(s.mu);
  if (scope_ == EstimationScope::kPerDepth) {
    if (const auto v = t_locked(s, estimate_key(muscle_id, depth))) return v;
  }
  return t_locked(s, estimate_key(muscle_id, kAnyDepth));
}

std::optional<double> EstimateRegistry::cardinality(int muscle_id, int depth) const {
  const Shard& s = shard_for(muscle_id);
  std::lock_guard lock(s.mu);
  if (scope_ == EstimationScope::kPerDepth) {
    if (const auto v = card_locked(s, estimate_key(muscle_id, depth))) return v;
  }
  return card_locked(s, estimate_key(muscle_id, kAnyDepth));
}

Estimates EstimateRegistry::snapshot() const {
  std::lock_guard snap_lock(snap_mu_);
  // Clean fast path: nothing written since the cache was built — return the
  // cached snapshot unchanged (one shared_ptr bump, no shard locks).
  if (cache_valid_ && cached_version_ == version_.load(std::memory_order_acquire)) {
    return cached_snapshot_;
  }
  // Rebuild: hold every shard lock so the snapshot is one coherent cut
  // across muscles (writers are fully excluded while we read the version).
  // RAII locks: a bad_alloc during the build must not leave shards locked.
  std::vector<std::unique_lock<std::mutex>> shard_locks = lock_all_shards();
  const std::uint64_t v = version_.load(std::memory_order_acquire);
  Estimates out;
  out.set_scope(scope_);
  std::size_t total = 0;
  for (const Shard& s : shards_) total += s.stats.size();
  out.reserve(total);
  for (const Shard& s : shards_) {
    for (const auto& [key, st] : s.stats) {
      // Reconstruct (id, depth) from the composite key.
      const int id = estimate_key_muscle(key);
      const int depth = estimate_key_depth(key);
      if (depth == kAnyDepth) {
        out.set(id, Estimates::Entry{st.t(), st.cardinality()});
      } else {
        out.set(id, depth, Estimates::Entry{st.t(), st.cardinality()});
      }
    }
  }
  shard_locks.clear();
  cached_snapshot_ = out;
  cached_version_ = v;
  cache_valid_ = true;
  return out;
}

void EstimateRegistry::clear() {
  // All shards at once: a concurrent snapshot must never see half a clear.
  std::vector<std::unique_lock<std::mutex>> locks = lock_all_shards();
  for (Shard& s : shards_) s.stats.clear();
  bump_version();
}

}  // namespace askel
