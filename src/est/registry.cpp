#include "est/registry.hpp"

namespace askel {

std::int64_t estimate_key(int muscle_id, int depth) {
  // Depths are small (trace length); bias by 1 so kAnyDepth maps to 0.
  return (static_cast<std::int64_t>(muscle_id) << 20) |
         static_cast<std::int64_t>(depth + 1);
}

int estimate_key_muscle(std::int64_t key) { return static_cast<int>(key >> 20); }

int estimate_key_depth(std::int64_t key) {
  return static_cast<int>(key & 0xFFFFF) - 1;
}

// -------------------------------------------------------------- Estimates --

std::optional<double> Estimates::t(int muscle_id) const {
  const auto it = entries_.find(estimate_key(muscle_id, kAnyDepth));
  return it == entries_.end() ? std::nullopt : it->second.t;
}

std::optional<double> Estimates::cardinality(int muscle_id) const {
  const auto it = entries_.find(estimate_key(muscle_id, kAnyDepth));
  return it == entries_.end() ? std::nullopt : it->second.card;
}

double Estimates::t_or(int muscle_id, double fallback) const {
  return t(muscle_id).value_or(fallback);
}

double Estimates::cardinality_or(int muscle_id, double fallback) const {
  return cardinality(muscle_id).value_or(fallback);
}

std::optional<double> Estimates::t(int muscle_id, int depth) const {
  if (scope_ == EstimationScope::kPerDepth) {
    const auto it = entries_.find(estimate_key(muscle_id, depth));
    if (it != entries_.end() && it->second.t) return it->second.t;
  }
  return t(muscle_id);
}

std::optional<double> Estimates::cardinality(int muscle_id, int depth) const {
  if (scope_ == EstimationScope::kPerDepth) {
    const auto it = entries_.find(estimate_key(muscle_id, depth));
    if (it != entries_.end() && it->second.card) return it->second.card;
  }
  return cardinality(muscle_id);
}

void Estimates::set(int muscle_id, Entry e) {
  entries_[estimate_key(muscle_id, kAnyDepth)] = e;
}

void Estimates::set(int muscle_id, int depth, Entry e) {
  entries_[estimate_key(muscle_id, depth)] = e;
}

// ------------------------------------------------------- EstimateRegistry --

EstimateRegistry::EstimateRegistry(double rho, EstimationScope scope)
    : rho_(rho), scope_(scope) {}

MuscleStats& EstimateRegistry::stats_locked(std::int64_t key) {
  return stats_.try_emplace(key, rho_).first->second;
}

void EstimateRegistry::observe_duration(int muscle_id, int depth, double seconds) {
  std::lock_guard lock(mu_);
  stats_locked(estimate_key(muscle_id, kAnyDepth)).observe_duration(seconds);
  if (depth != kAnyDepth)
    stats_locked(estimate_key(muscle_id, depth)).observe_duration(seconds);
}

void EstimateRegistry::observe_cardinality(int muscle_id, int depth, double card) {
  std::lock_guard lock(mu_);
  stats_locked(estimate_key(muscle_id, kAnyDepth)).observe_cardinality(card);
  if (depth != kAnyDepth)
    stats_locked(estimate_key(muscle_id, depth)).observe_cardinality(card);
}

void EstimateRegistry::observe_duration(int muscle_id, double seconds) {
  observe_duration(muscle_id, kAnyDepth, seconds);
}

void EstimateRegistry::observe_cardinality(int muscle_id, double card) {
  observe_cardinality(muscle_id, kAnyDepth, card);
}

void EstimateRegistry::init_duration(int muscle_id, double seconds) {
  init_duration(muscle_id, kAnyDepth, seconds);
}

void EstimateRegistry::init_cardinality(int muscle_id, double card) {
  init_cardinality(muscle_id, kAnyDepth, card);
}

void EstimateRegistry::init_duration(int muscle_id, int depth, double seconds) {
  std::lock_guard lock(mu_);
  stats_locked(estimate_key(muscle_id, depth)).init_duration(seconds);
}

void EstimateRegistry::init_cardinality(int muscle_id, int depth, double card) {
  std::lock_guard lock(mu_);
  stats_locked(estimate_key(muscle_id, depth)).init_cardinality(card);
}

void EstimateRegistry::init_from(const Estimates& previous) {
  std::lock_guard lock(mu_);
  for (const auto& [key, entry] : previous.entries()) {
    MuscleStats& s = stats_locked(key);
    if (entry.t) s.init_duration(*entry.t);
    if (entry.card) s.init_cardinality(*entry.card);
  }
}

std::optional<double> EstimateRegistry::t_locked(std::int64_t key) const {
  const auto it = stats_.find(key);
  return it == stats_.end() ? std::nullopt : it->second.t();
}

std::optional<double> EstimateRegistry::card_locked(std::int64_t key) const {
  const auto it = stats_.find(key);
  return it == stats_.end() ? std::nullopt : it->second.cardinality();
}

std::optional<double> EstimateRegistry::t(int muscle_id) const {
  std::lock_guard lock(mu_);
  return t_locked(estimate_key(muscle_id, kAnyDepth));
}

std::optional<double> EstimateRegistry::cardinality(int muscle_id) const {
  std::lock_guard lock(mu_);
  return card_locked(estimate_key(muscle_id, kAnyDepth));
}

std::optional<double> EstimateRegistry::t(int muscle_id, int depth) const {
  std::lock_guard lock(mu_);
  if (scope_ == EstimationScope::kPerDepth) {
    if (const auto v = t_locked(estimate_key(muscle_id, depth))) return v;
  }
  return t_locked(estimate_key(muscle_id, kAnyDepth));
}

std::optional<double> EstimateRegistry::cardinality(int muscle_id, int depth) const {
  std::lock_guard lock(mu_);
  if (scope_ == EstimationScope::kPerDepth) {
    if (const auto v = card_locked(estimate_key(muscle_id, depth))) return v;
  }
  return card_locked(estimate_key(muscle_id, kAnyDepth));
}

Estimates EstimateRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  Estimates out;
  out.set_scope(scope_);
  for (const auto& [key, st] : stats_) {
    // Reconstruct (id, depth) from the composite key.
    const int id = estimate_key_muscle(key);
    const int depth = estimate_key_depth(key);
    if (depth == kAnyDepth) {
      out.set(id, Estimates::Entry{st.t(), st.cardinality()});
    } else {
      out.set(id, depth, Estimates::Entry{st.t(), st.cardinality()});
    }
  }
  return out;
}

void EstimateRegistry::clear() {
  std::lock_guard lock(mu_);
  stats_.clear();
}

}  // namespace askel
