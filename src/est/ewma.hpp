#pragma once
// The paper's history-based estimator (§4):
//
//   newEstimatedVal = ρ × lastActualVal + (1 − ρ) × previousEstimatedVal
//
// ρ ∈ [0,1]: 1 → only the last measurement counts; 0 → only the first value
// (or the initialization) counts; default 0.5 averages the last actual with
// the previous estimate.

#include <stdexcept>

namespace askel {

class Ewma {
 public:
  explicit Ewma(double rho = 0.5) : rho_(rho) {
    if (rho < 0.0 || rho > 1.0)
      throw std::invalid_argument("Ewma: rho must be in [0,1]");
  }

  /// Seed the estimate without consuming an observation (the paper's
  /// "initialization of t(m) and |m| functions", used in scenario 2).
  void init(double v) {
    value_ = v;
    has_value_ = true;
  }

  /// Fold in one actual measurement. The very first observation (when not
  /// initialized) becomes the estimate directly.
  void observe(double actual) {
    value_ = has_value_ ? rho_ * actual + (1.0 - rho_) * value_ : actual;
    has_value_ = true;
    ++observations_;
  }

  bool has_value() const { return has_value_; }
  double value() const { return value_; }
  double rho() const { return rho_; }
  /// Number of actual observations folded in (initialization not counted).
  long observations() const { return observations_; }

 private:
  double rho_;
  double value_ = 0.0;
  bool has_value_ = false;
  long observations_ = 0;
};

}  // namespace askel
