#include "est/estimator.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "est/ewma.hpp"

namespace askel {
namespace {

// ------------------------------------------------------------------ EWMA --

/// The paper's estimator behind the interface. Delegates to the legacy
/// `Ewma` so a registry configured with kEwma is bit-identical to the
/// pre-interface code path (asserted by property_test).
class EwmaEstimator final : public Estimator {
 public:
  explicit EwmaEstimator(double rho) : e_(rho) {}

  void init(double v) override { e_.init(v); }
  void observe(double actual) override { e_.observe(actual); }
  bool has_value() const override { return e_.has_value(); }
  double value() const override { return e_.value(); }
  long observations() const override { return e_.observations(); }
  std::unique_ptr<Estimator> clone_fresh() const override {
    return std::make_unique<EwmaEstimator>(e_.rho());
  }
  EstimatorKind kind() const override { return EstimatorKind::kEwma; }

 private:
  Ewma e_;
};

// -------------------------------------------------------- sliding window --

/// The last W samples in chronological order — the estimator's state IS
/// exactly those samples, so two instances fed the same last W observations
/// agree bit for bit regardless of earlier history (property-tested). An
/// init seed occupies one slot (it influences early estimates, like the
/// EWMA's seeded prevEst) but is not counted as an observation and is
/// evicted by the W-th real observation.
class WindowEstimator : public Estimator {
 public:
  explicit WindowEstimator(int window) : window_(window) {
    if (window < 1)
      throw std::invalid_argument("WindowEstimator: window must be >= 1");
    buf_.reserve(static_cast<std::size_t>(window));
  }

  void init(double v) override { push(v); }

  void observe(double actual) override {
    push(actual);
    ++observations_;
  }

  bool has_value() const override { return !buf_.empty(); }
  long observations() const override { return observations_; }
  int window() const { return window_; }

 protected:
  /// Oldest to newest.
  const std::vector<double>& samples() const { return buf_; }

 private:
  void push(double v) {
    if (static_cast<int>(buf_.size()) == window_) {
      buf_.erase(buf_.begin());  // O(W); W is small and observe holds a lock
    }
    buf_.push_back(v);
  }

  int window_;
  std::vector<double> buf_;
  long observations_ = 0;
};

class WindowMeanEstimator final : public WindowEstimator {
 public:
  using WindowEstimator::WindowEstimator;

  double value() const override {
    if (samples().empty()) return 0.0;  // out-of-contract: degrade like Ewma
    double sum = 0.0;
    for (const double v : samples()) sum += v;
    return sum / static_cast<double>(samples().size());
  }
  std::unique_ptr<Estimator> clone_fresh() const override {
    return std::make_unique<WindowMeanEstimator>(window());
  }
  EstimatorKind kind() const override { return EstimatorKind::kWindowMean; }
};

class WindowMedianEstimator final : public WindowEstimator {
 public:
  using WindowEstimator::WindowEstimator;

  double value() const override {
    if (samples().empty()) return 0.0;  // out-of-contract: degrade like Ewma
    std::vector<double> s = samples();
    const std::size_t mid = s.size() / 2;
    std::nth_element(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(mid),
                     s.end());
    const double hi = s[mid];
    if (s.size() % 2 == 1) return hi;
    // Even size: average the two middle ranks.
    const double lo =
        *std::max_element(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(mid));
    return (lo + hi) / 2.0;
  }
  std::unique_ptr<Estimator> clone_fresh() const override {
    return std::make_unique<WindowMedianEstimator>(window());
  }
  EstimatorKind kind() const override { return EstimatorKind::kWindowMedian; }
};

// --------------------------------------------------------- P² (quantile) --

/// Jain & Chlamtac's P² algorithm: a streaming q-quantile from five markers
/// (min, q/2, q, (1+q)/2, max quantile estimates) in O(1) memory and O(1)
/// per observation. Until five samples exist the exact (sorted) quantile is
/// returned. Marker heights stay ordered, so the estimate can never leave
/// the observed [min, max] hull.
class P2QuantileEstimator final : public Estimator {
 public:
  explicit P2QuantileEstimator(double q) : q_(q) {
    if (!(q > 0.0 && q < 1.0))
      throw std::invalid_argument("P2QuantileEstimator: q must be in (0,1)");
  }

  void init(double v) override {
    // One uncounted pseudo-sample, same bootstrap path as a real one.
    ingest(v);
  }

  void observe(double actual) override {
    ingest(actual);
    ++observations_;
  }

  bool has_value() const override { return count_ > 0; }

  double value() const override {
    if (count_ == 0) return 0.0;  // out-of-contract call: degrade like Ewma
    if (count_ >= 5) return h_[2];
    // Exact phase: linearly interpolated quantile of the sorted prefix.
    std::vector<double> s(initial_.begin(), initial_.begin() + count_);
    std::sort(s.begin(), s.end());
    if (s.size() == 1) return s[0];
    const double pos = q_ * static_cast<double>(s.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, s.size() - 1);
    return s[lo] + (pos - static_cast<double>(lo)) * (s[hi] - s[lo]);
  }

  long observations() const override { return observations_; }
  std::unique_ptr<Estimator> clone_fresh() const override {
    return std::make_unique<P2QuantileEstimator>(q_);
  }
  EstimatorKind kind() const override { return EstimatorKind::kP2Quantile; }

 private:
  void ingest(double x) {
    if (count_ < 5) {
      initial_[static_cast<std::size_t>(count_++)] = x;
      if (count_ == 5) {
        std::sort(initial_.begin(), initial_.end());
        for (int k = 0; k < 5; ++k) {
          h_[k] = initial_[static_cast<std::size_t>(k)];
          n_[k] = k + 1;
        }
        np_[0] = 1.0;
        np_[1] = 1.0 + 2.0 * q_;
        np_[2] = 1.0 + 4.0 * q_;
        np_[3] = 3.0 + 2.0 * q_;
        np_[4] = 5.0;
        dn_[0] = 0.0;
        dn_[1] = q_ / 2.0;
        dn_[2] = q_;
        dn_[3] = (1.0 + q_) / 2.0;
        dn_[4] = 1.0;
      }
      return;
    }
    // Find the cell the new sample falls into, stretching the extremes.
    int cell;
    if (x < h_[0]) {
      h_[0] = x;
      cell = 0;
    } else if (x >= h_[4]) {
      h_[4] = x;
      cell = 3;
    } else {
      cell = 0;
      while (cell < 3 && x >= h_[cell + 1]) ++cell;
    }
    for (int k = cell + 1; k < 5; ++k) ++n_[k];
    for (int k = 0; k < 5; ++k) np_[k] += dn_[k];
    // Nudge the three interior markers toward their desired positions.
    for (int k = 1; k <= 3; ++k) {
      const double d = np_[k] - static_cast<double>(n_[k]);
      if ((d >= 1.0 && n_[k + 1] - n_[k] > 1) ||
          (d <= -1.0 && n_[k - 1] - n_[k] < -1)) {
        const int sign = d >= 0.0 ? 1 : -1;
        const double cand = parabolic(k, sign);
        if (h_[k - 1] < cand && cand < h_[k + 1]) {
          h_[k] = cand;
        } else {
          h_[k] = linear(k, sign);
        }
        n_[k] += sign;
      }
    }
  }

  double parabolic(int k, int sign) const {
    const double d = static_cast<double>(sign);
    const double nk = static_cast<double>(n_[k]);
    const double nl = static_cast<double>(n_[k - 1]);
    const double nr = static_cast<double>(n_[k + 1]);
    return h_[k] + d / (nr - nl) *
                       ((nk - nl + d) * (h_[k + 1] - h_[k]) / (nr - nk) +
                        (nr - nk - d) * (h_[k] - h_[k - 1]) / (nk - nl));
  }

  double linear(int k, int sign) const {
    return h_[k] + static_cast<double>(sign) * (h_[k + sign] - h_[k]) /
                       static_cast<double>(n_[k + sign] - n_[k]);
  }

  double q_;
  std::array<double, 5> initial_{};  // bootstrap samples until count_ == 5
  double h_[5] = {};                 // marker heights
  int n_[5] = {};                    // actual marker positions (1-based)
  double np_[5] = {};                // desired marker positions
  double dn_[5] = {};                // desired-position increments
  int count_ = 0;
  long observations_ = 0;
};

}  // namespace

std::unique_ptr<Estimator> make_estimator(const EstimatorConfig& cfg) {
  switch (cfg.kind) {
    case EstimatorKind::kEwma:
      return std::make_unique<EwmaEstimator>(cfg.rho);
    case EstimatorKind::kWindowMean:
      return std::make_unique<WindowMeanEstimator>(cfg.window);
    case EstimatorKind::kWindowMedian:
      return std::make_unique<WindowMedianEstimator>(cfg.window);
    case EstimatorKind::kP2Quantile:
      return std::make_unique<P2QuantileEstimator>(cfg.quantile);
  }
  throw std::invalid_argument("make_estimator: unknown kind");
}

const char* to_string(EstimatorKind k) {
  switch (k) {
    case EstimatorKind::kEwma:
      return "ewma";
    case EstimatorKind::kWindowMean:
      return "window_mean";
    case EstimatorKind::kWindowMedian:
      return "window_median";
    case EstimatorKind::kP2Quantile:
      return "p2";
  }
  return "unknown";
}

std::optional<EstimatorKind> estimator_kind_from_string(std::string_view s) {
  if (s == "ewma") return EstimatorKind::kEwma;
  if (s == "window_mean") return EstimatorKind::kWindowMean;
  if (s == "window_median") return EstimatorKind::kWindowMedian;
  if (s == "p2") return EstimatorKind::kP2Quantile;
  return std::nullopt;
}

}  // namespace askel
