#pragma once
// Pluggable WCT estimator family (paper §6 future work: "analyses of
// different WCT estimation algorithms").
//
// The paper's controller rests on one history-based estimator — the EWMA of
// est/ewma.hpp. This interface makes the estimator a per-registry policy so
// the fig5/6/7 scenarios can be A/B'd across estimation algorithms:
//
//  * kEwma          — the paper's newEst = ρ·actual + (1−ρ)·prevEst
//                     (default; delegates to the legacy `Ewma`, so behavior
//                     is bit-identical when selected);
//  * kWindowMean    — mean of the last W observations: bounded memory of
//                     regime changes, no permanent imprint of startup values;
//  * kWindowMedian  — median of the last W observations: one outlier moves
//                     the estimate by at most one rank, where the EWMA jumps
//                     by ρ·spike;
//  * kP2Quantile    — constant-memory streaming q-quantile (Jain & Chlamtac's
//                     P² algorithm, cf. PAPERS.md): a conservative
//                     over-provisioning estimate (default q = 0.9) that
//                     resists the outlier-chasing a plain EWMA exhibits on
//                     bursty muscle timings.
//
// Contract shared by all implementations (matches the legacy Ewma so the
// registry/controller layers are estimator-agnostic):
//  * init(v) seeds the estimate without counting an observation (paper
//    scenario 2, "Goal with initialization"). Window and quantile
//    estimators ingest the seed as one uncounted pseudo-sample: a window
//    evicts it after W real observations; P² folds it into its 5-sample
//    bootstrap, where it keeps a (diminishing) influence on the markers —
//    the same "seed never fully forgotten" semantics as the EWMA's
//    seeded prevEst;
//  * observe(x) folds in one actual measurement;
//  * value() is only meaningful once has_value();
//  * observations() counts real observations (init excluded).

#include <memory>
#include <optional>
#include <string_view>

namespace askel {

enum class EstimatorKind : int {
  kEwma = 0,
  kWindowMean = 1,
  kWindowMedian = 2,
  kP2Quantile = 3,
};

/// Value-type estimator choice + parameters: the "factory" threaded through
/// MuscleStats -> EstimateRegistry -> ScenarioConfig. Each field applies to
/// the kinds noted; the others ignore it.
struct EstimatorConfig {
  EstimatorKind kind = EstimatorKind::kEwma;
  double rho = 0.5;       // kEwma: smoothing in [0,1]
  int window = 16;        // kWindowMean / kWindowMedian: W >= 1
  double quantile = 0.9;  // kP2Quantile: q in (0,1)
};

class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Seed the estimate without consuming an observation.
  virtual void init(double v) = 0;
  /// Fold in one actual measurement.
  virtual void observe(double actual) = 0;
  virtual bool has_value() const = 0;
  virtual double value() const = 0;
  /// Real observations folded in (initialization not counted).
  virtual long observations() const = 0;
  /// Fresh estimator of the same kind and parameters, no state (the
  /// per-muscle factory the registry clones from).
  virtual std::unique_ptr<Estimator> clone_fresh() const = 0;
  virtual EstimatorKind kind() const = 0;
};

/// Build a fresh estimator from `cfg`. Throws std::invalid_argument on
/// out-of-range parameters (rho outside [0,1], window < 1, q outside (0,1)).
std::unique_ptr<Estimator> make_estimator(const EstimatorConfig& cfg);

/// Stable lowercase name ("ewma", "window_mean", "window_median", "p2").
const char* to_string(EstimatorKind k);
/// Inverse of to_string (bench/test CLI); nullopt on unknown names.
std::optional<EstimatorKind> estimator_kind_from_string(std::string_view s);

}  // namespace askel
