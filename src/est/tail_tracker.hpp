#pragma once
// Streaming per-tenant tail-latency tracker: the SLO controller's sensor.
//
// A service tenant's goal is a latency quantile ("p99 under 50 ms"), so the
// controller needs a constant-memory estimate of that quantile over an
// unbounded request stream. This reuses the PR 4 estimator family's P²
// implementation (Jain & Chlamtac) twice — once at the SLO quantile
// (default q = 0.99) and once at the median — plus exact counters for SLO
// attainment (the fraction of requests that met the target), which needs no
// estimation at all.
//
// Thread safety: record() is called from worker threads as requests
// complete; snapshot()/accessors from the controller's evaluation thread.
// One mutex guards it all — two P² updates are a few dozen flops, far below
// contention relevance at realistic request rates.

#include <memory>
#include <mutex>

#include "est/estimator.hpp"
#include "util/clock.hpp"

namespace askel {

/// One consistent read of the tracker, cheap to copy into a decision.
struct TailSnapshot {
  double tail = 0.0;    // latency-quantile estimate at the SLO quantile (s)
  double median = 0.0;  // streaming median estimate (s)
  long observations = 0;
  long met = 0;         // observations with latency <= target (target > 0)
};

class TailTracker {
 public:
  /// `quantile` in (0,1) (throws otherwise, via make_estimator); `target` is
  /// the SLO latency used for the attainment counters (0 = no target: only
  /// the quantile estimates are maintained).
  explicit TailTracker(double quantile = 0.99, Duration target = 0.0);

  /// Fold in one completed request's latency (seconds).
  void record(Duration latency);

  TailSnapshot snapshot() const;
  double tail() const { return snapshot().tail; }
  double median() const { return snapshot().median; }
  long observations() const { return snapshot().observations; }
  /// Fraction of recorded requests with latency <= target. 1.0 before any
  /// observation (an idle tenant is not missing its SLO).
  double attainment() const;

  double quantile() const { return quantile_; }
  Duration target() const { return target_; }

  /// Forget everything (re-arm with a fresh goal).
  void reset();

 private:
  const double quantile_;
  const Duration target_;
  mutable std::mutex mu_;
  std::unique_ptr<Estimator> tail_est_;
  std::unique_ptr<Estimator> median_est_;
  long met_ = 0;
};

}  // namespace askel
