#include "est/quality.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace askel {

std::vector<double> bursty_stream(std::uint64_t seed, int n) {
  // mt19937_64 with fixed distributions: the C++ standard pins the engine's
  // output sequence, and uniform_real_distribution on a fixed libstdc++/
  // libc++ is stable in practice; the tests additionally only compare runs
  // within one binary, so the determinism the harness needs is structural.
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> base_pick(0.5, 2.0);
  std::uniform_real_distribution<double> jitter(0.85, 1.15);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> spike(4.0, 9.0);
  std::uniform_int_distribution<int> regime_len(25, 55);

  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  double base = base_pick(rng);
  int left = regime_len(rng);
  for (int k = 0; k < n; ++k) {
    if (left-- <= 0) {
      base = base_pick(rng);
      left = regime_len(rng);
    }
    double v = base * jitter(rng);
    if (unit(rng) < 0.05) v = base * spike(rng);  // the outlier tail
    out.push_back(v);
  }
  return out;
}

StreamQuality replay_stream(const EstimatorConfig& cfg,
                            const std::vector<double>& stream) {
  StreamQuality q;
  q.config = cfg;
  const std::unique_ptr<Estimator> est = make_estimator(cfg);
  double sq_sum = 0.0, abs_sum = 0.0, signed_sum = 0.0;
  for (const double actual : stream) {
    if (est->has_value()) {
      const double err = est->value() - actual;
      sq_sum += err * err;
      abs_sum += std::abs(err);
      signed_sum += err;
      q.max_abs_error = std::max(q.max_abs_error, std::abs(err));
      ++q.predictions;
    }
    est->observe(actual);
  }
  if (q.predictions > 0) {
    const double n = static_cast<double>(q.predictions);
    q.rms_error = std::sqrt(sq_sum / n);
    q.mean_abs_error = abs_sum / n;
    q.bias = signed_sum / n;
  }
  return q;
}

std::vector<StreamQuality> rank_estimators(
    const std::vector<EstimatorConfig>& configs,
    const std::vector<double>& stream) {
  std::vector<StreamQuality> out;
  out.reserve(configs.size());
  for (const EstimatorConfig& cfg : configs) {
    out.push_back(replay_stream(cfg, stream));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const StreamQuality& a, const StreamQuality& b) {
                     return a.rms_error < b.rms_error;
                   });
  return out;
}

std::vector<EstimatorConfig> default_estimator_family(double rho, int window,
                                                      double quantile) {
  return {
      EstimatorConfig{.kind = EstimatorKind::kEwma, .rho = rho},
      EstimatorConfig{.kind = EstimatorKind::kWindowMean, .window = window},
      EstimatorConfig{.kind = EstimatorKind::kWindowMedian, .window = window},
      EstimatorConfig{.kind = EstimatorKind::kP2Quantile, .quantile = quantile},
  };
}

}  // namespace askel
