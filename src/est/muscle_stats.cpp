#include "est/muscle_stats.hpp"

// MuscleStats is header-only; this TU anchors the target's object file.
