#pragma once
// Deterministic adaptation-quality harness for the estimator family.
//
// Two complementary measurements feed the PR 4 A/B comparison
// (bench/wct_algorithms --estimators and tests/estimator_ab_test):
//
//  * stream replay (this header): a seeded, fully deterministic duration
//    stream — regime shifts plus occasional outlier spikes, the shape of
//    bursty muscle timings that stresses the fig7 (goal at 105%) scenario —
//    is fed through a fresh estimator, measuring one-step-ahead prediction
//    error (the estimate the controller would have planned with vs. the
//    actual that then occurred). Identical seeds give identical errors and
//    therefore an identical ranking: the regression test anchors on that.
//
//  * end-to-end scenario replay (bench only): the fig5/6/7 wordcount
//    scenarios run under each estimator, reporting goal-miss width and
//    decision churn. Wall-clock based, so it lives in the bench binary, not
//    here.

#include <cstdint>
#include <vector>

#include "est/estimator.hpp"

namespace askel {

/// One estimator's prediction quality over a replayed stream.
struct StreamQuality {
  EstimatorConfig config;
  long predictions = 0;     // observations that had a prior estimate
  double rms_error = 0.0;   // sqrt(mean (estimate - actual)^2)
  double mean_abs_error = 0.0;
  double max_abs_error = 0.0;
  /// Mean signed error (estimate - actual): positive = over-provisioning
  /// bias (conservative), negative = under-provisioning bias.
  double bias = 0.0;
};

/// Deterministic bursty duration stream: piecewise-constant base levels
/// (regime shifts every ~40 samples), multiplicative jitter, and a ~5% rate
/// of outlier spikes at several times the base. Same seed, same stream.
std::vector<double> bursty_stream(std::uint64_t seed, int n);

/// Replay `stream` through a fresh estimator built from `cfg`, measuring
/// one-step-ahead prediction error. The first sample only primes the
/// estimator (no prior estimate to score).
StreamQuality replay_stream(const EstimatorConfig& cfg,
                            const std::vector<double>& stream);

/// Replay the stream under every config and return the qualities sorted by
/// rms_error ascending (ties broken by config order — stable, so the
/// ranking is deterministic for a fixed seed).
std::vector<StreamQuality> rank_estimators(
    const std::vector<EstimatorConfig>& configs,
    const std::vector<double>& stream);

/// The four-member PR 4 comparison family: EWMA(rho), window mean(W),
/// window median(W), P²(q).
std::vector<EstimatorConfig> default_estimator_family(double rho = 0.5,
                                                      int window = 16,
                                                      double quantile = 0.9);

}  // namespace askel
