#pragma once
// Synthetic tweet corpus.
//
// The paper counts hashtags and commented-users over 1.2 M Colombian tweets
// (the raw-data link is dead). We generate a deterministic corpus whose
// hashtag / mention frequencies are Zipf-distributed — the realistic skew for
// social-media tokens — so the split/count/merge path does the same work on
// the same kind of distribution.

#include <cstdint>
#include <string>
#include <vector>

#include "util/zipf.hpp"

namespace askel {

struct TweetCorpusConfig {
  std::size_t num_tweets = 20000;
  std::size_t hashtag_vocab = 500;
  std::size_t user_vocab = 1000;
  std::size_t word_vocab = 5000;
  /// Zipf skew of token frequencies.
  double zipf_s = 1.1;
  /// Mean plain words per tweet.
  int words_per_tweet = 8;
  /// Max hashtags / mentions per tweet (count drawn uniformly in [0, max]).
  int max_hashtags = 3;
  int max_mentions = 2;
  std::uint64_t seed = 42;
};

/// One tweet per string; hashtags are "#tagN", mentions "@userM".
std::vector<std::string> generate_tweets(const TweetCorpusConfig& cfg);

/// Tokens of interest for the paper's count: hashtags and commented-users.
/// Returns every "#..." and "@..." token in `text`.
std::vector<std::string> extract_tags_and_mentions(const std::string& text);

}  // namespace askel
