#pragma once
// Continuous-service workload family: open-loop request streams with
// tail-latency (SLO) goals — the latency-domain counterpart of the batch
// wordcount scenarios.
//
// The paper's evaluation is batch: one skeleton instance, one WCT deadline.
// Long-running services face the transposed problem — an endless stream of
// small requests where the goal is "p99 latency stays under X", and the
// autonomic layer must keep granting enough LP to hold the quantile down as
// the arrival rate moves. This family models that:
//
//  * generate_service_stream: a seeded, fully deterministic open-loop
//    request schedule. The aggregate arrival rate is split across tenants by
//    Zipf popularity (util/zipf.hpp — hot tenants get proportionally more
//    traffic), modulated by a diurnal sine and an optional bursty envelope
//    replayed from the PR 4 stream harness (est/quality.hpp), and realized
//    per tenant as a thinned non-homogeneous Poisson process. Service
//    demands are bounded-Pareto (heavy-tailed, like real request costs).
//    Same seed, same stream — byte for byte.
//
//  * run_service_scenario: replays a stream against a shared pool in real
//    time (open loop: requests are submitted at their scheduled arrival
//    whether or not earlier ones finished, so overload shows up as queueing
//    latency, exactly like a real service). SLO tenants get an
//    AutonomicController armed via arm_slo() — completed requests feed its
//    P² tail tracker and grants respond to tail pressure — while
//    `coordinated` toggles the whole autonomic stack against a
//    FIFO/fixed-LP baseline for A/B attainment comparisons
//    (bench/service_bench.cpp, tests/service_test.cpp).

#include <cstdint>
#include <vector>

#include "util/clock.hpp"
#include "util/time_series.hpp"

namespace askel {

struct ServiceStreamConfig {
  std::uint64_t seed = 1;
  int tenants = 2;
  /// Open-loop horizon, seconds: arrivals are scheduled in [0, duration_s).
  double duration_s = 2.0;
  /// Aggregate arrival rate across all tenants (requests/second), split by
  /// Zipf popularity rank — tenant 0 is the hottest.
  double total_rate_hz = 200.0;
  double zipf_skew = 1.0;
  /// Service-demand distribution: bounded Pareto with this mean and tail
  /// exponent, capped at service_cap_s (heavy-tailed but never unbounded).
  double mean_service_s = 0.004;
  double service_shape = 1.5;
  double service_cap_s = 0.05;
  /// Diurnal modulation: rate(t) *= 1 + amplitude * sin(2*pi*t / period).
  /// 0 disables (amplitude is clamped to [0, 1]).
  double diurnal_amplitude = 0.0;
  double diurnal_period_s = 1.0;
  /// Multiply the rate by a piecewise-constant bursty envelope (regime
  /// shifts + spikes) replayed from est/quality.hpp's bursty_stream,
  /// normalized to mean 1 so the expected request count is unchanged.
  bool bursty = false;
  int rate_buckets = 8;
};

/// One scheduled request of the open-loop stream.
struct ServiceRequest {
  int tenant = 0;        // 0-based index into the stream's tenants
  double arrival = 0.0;  // seconds from stream start
  double work = 0.0;     // service demand (seconds of calibrated work)
};

/// Deterministic request schedule, sorted by arrival time.
std::vector<ServiceRequest> generate_service_stream(
    const ServiceStreamConfig& cfg);

/// Per-tenant goal/weight of a scenario run.
struct ServiceTenantSpec {
  /// Tail-latency SLO in seconds; 0 = best-effort (no controller armed).
  double tail_goal_s = 0.0;
  /// SLA weight forwarded to the coordinator's WeightedSharePolicy.
  int weight = 1;
};

struct ServiceScenarioConfig {
  ServiceStreamConfig stream;
  /// Per-tenant specs; missing entries default to best-effort weight 1.
  std::vector<ServiceTenantSpec> specs;
  double tail_quantile = 0.99;
  int initial_lp = 1;
  int max_lp = 8;
  /// Coordinator budget (0 = max_lp). Both runs of an A/B pair see the same
  /// pool capacity; only the autonomic stack differs.
  int budget = 0;
  /// true: weighted dispatch + WeightedSharePolicy coordinator + one SLO
  /// controller per goal-carrying tenant. false: the baseline — FIFO
  /// dispatch, no coordinator, LP pinned at max_lp (same capacity, no
  /// isolation and no tail-driven grants).
  bool coordinated = true;
  /// Batch aggressor sharing the pool: floods sleep-calibrated tasks under
  /// its own tenant id for the whole stream (bounded standing backlog), and
  /// under the coordinator claims maximal pressure — the antagonist the SLO
  /// tenant must hold its tail against.
  bool aggressor = false;
  double aggressor_work_s = 0.005;
  int aggressor_outstanding = 256;
  /// Controller evaluation throttle, seconds (SLO evaluations are driven by
  /// request completions, which arrive much faster than batch events).
  Duration controller_min_interval = 0.005;
  /// Buckets of the per-tenant attainment-over-time curve.
  int curve_buckets = 8;
};

struct ServiceTenantResult {
  int tenant = 0;          // 0-based stream index
  double tail_goal = 0.0;  // 0 = best-effort
  long requests = 0;
  /// Exact quantiles over the full latency log (sorted), seconds.
  double exact_tail = 0.0;
  double exact_median = 0.0;
  /// The controller's P² estimate at the end of the run (0 when
  /// best-effort/baseline — no tracker ran).
  double est_tail = 0.0;
  /// Fraction of requests with latency <= tail_goal (1.0 when best-effort).
  double attainment = 1.0;
  /// Attainment per arrival-time bucket: (bucket midpoint seconds, fraction
  /// of that bucket's requests meeting the goal). Empty when best-effort.
  std::vector<Sample> attainment_curve;
  /// Highest LP the coordinator ever granted this tenant (0 when baseline).
  int peak_grant = 0;
};

struct ServiceScenarioResult {
  double duration = 0.0;  // wall-clock of the replay, seconds
  long total_requests = 0;
  long aggressor_tasks = 0;
  int peak_total_granted = 0;  // 0 when baseline
  bool budget_held = true;
  std::vector<ServiceTenantResult> tenants;
};

/// Replay the configured stream in real time and measure per-tenant SLO
/// attainment. Deterministic in its schedule; latencies are wall-clock.
ServiceScenarioResult run_service_scenario(const ServiceScenarioConfig& cfg);

}  // namespace askel
