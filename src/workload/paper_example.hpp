#pragma once
// Deterministic replay of the worked example of paper §4 (Figures 1 and 2):
// the skeleton map(fs, map(fs, seq(fe), fm), fm) executed with LP = 2 and
// muscle profile t(fs)=10, t(fe)=15, t(fm)=5, |fs|=3.
//
// The replay feeds the exact event stream the engine emits for that run —
// with virtual timestamps — into a TrackerSet, so the analytic layers can be
// validated against the paper's published numbers:
//   * ADG observed at WCT 70 (Figure 1),
//   * best-effort WCT 100, limited-LP(2) WCT 115,
//   * best-effort concurrency peaks at 3 in [75, 90) → optimal LP 3,
//   * raising LP to 3 meets a WCT goal of 100 (paper's closing remark).

#include <vector>

#include "est/registry.hpp"
#include "events/event.hpp"
#include "skel/typed.hpp"
#include "sm/tracker_set.hpp"

namespace askel {

/// Static pieces of the example skeleton (no-op muscles; only the event
/// stream matters for the analytic layers).
struct PaperExampleSkeleton {
  Skel<int, int> skeleton;  // map(fs, map(fs, seq(fe), fm), fm)
  const SkelNode* outer;
  const SkelNode* inner;
  const SkelNode* seq;
  int fs_id;
  int fe_id;
  int fm_id;
};

PaperExampleSkeleton make_paper_example_skeleton();

class PaperExampleReplay {
 public:
  /// `rho` is the estimator smoothing (all observations are identical in the
  /// example, so any rho yields the paper's values; 0.5 is the default).
  explicit PaperExampleReplay(double rho = 0.5);

  /// Replay against a non-default estimator (PR 4 A/B harness: the same
  /// deterministic event stream scored under each estimator family member).
  explicit PaperExampleReplay(const EstimatorConfig& estimator);

  /// Feed every event with timestamp <= t (monotone; call with increasing t).
  void replay_until(TimePoint t);

  /// Events remaining to be replayed.
  std::size_t remaining() const { return events_.size() - cursor_; }

  /// ADG snapshot at observation time `now` (replay_until(now) first for the
  /// paper's semantics).
  AdgSnapshot snapshot(TimePoint now) const { return trackers_.snapshot(now); }

  const PaperExampleSkeleton& skel() const { return skel_; }
  EstimateRegistry& registry() { return reg_; }
  TrackerSet& trackers() { return trackers_; }

  /// Total WCT of the replayed LP=2 execution (the paper's 115).
  static constexpr TimePoint kTotalWct = 115.0;
  /// The paper's observation instant.
  static constexpr TimePoint kObservationTime = 70.0;

 private:
  struct TimedEvent {
    TimePoint t;
    Event ev;
  };
  void push(TimePoint t, const SkelNode* node, std::int64_t exec,
            std::int64_t parent, When when, Where where, int muscle_id,
            int card = -1, int child_index = -1);
  void build_schedule();

  PaperExampleSkeleton skel_;
  EstimateRegistry reg_;
  TrackerSet trackers_;
  std::vector<TimedEvent> events_;
  std::size_t cursor_ = 0;
};

}  // namespace askel
