#include "workload/tweets.hpp"

#include <random>

namespace askel {

std::vector<std::string> generate_tweets(const TweetCorpusConfig& cfg) {
  std::mt19937_64 rng(cfg.seed);
  const ZipfDistribution tag_dist(cfg.hashtag_vocab, cfg.zipf_s);
  const ZipfDistribution user_dist(cfg.user_vocab, cfg.zipf_s);
  const ZipfDistribution word_dist(cfg.word_vocab, cfg.zipf_s);
  std::uniform_int_distribution<int> n_tags(0, cfg.max_hashtags);
  std::uniform_int_distribution<int> n_mentions(0, cfg.max_mentions);
  std::uniform_int_distribution<int> n_words(1, std::max(1, cfg.words_per_tweet * 2 - 1));

  std::vector<std::string> tweets;
  tweets.reserve(cfg.num_tweets);
  for (std::size_t i = 0; i < cfg.num_tweets; ++i) {
    std::string t;
    const int words = n_words(rng);
    for (int w = 0; w < words; ++w) {
      if (!t.empty()) t += ' ';
      t += "w" + std::to_string(word_dist(rng));
    }
    const int tags = n_tags(rng);
    for (int k = 0; k < tags; ++k) {
      t += " #tag" + std::to_string(tag_dist(rng));
    }
    const int mentions = n_mentions(rng);
    for (int k = 0; k < mentions; ++k) {
      t += " @user" + std::to_string(user_dist(rng));
    }
    tweets.push_back(std::move(t));
  }
  return tweets;
}

std::vector<std::string> extract_tags_and_mentions(const std::string& text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '#' || text[i] == '@') {
      std::size_t j = i + 1;
      while (j < text.size() && text[j] != ' ') ++j;
      if (j > i + 1) out.push_back(text.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

}  // namespace askel
