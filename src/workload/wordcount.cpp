#include "workload/wordcount.hpp"

#include <algorithm>
#include <functional>
#include <optional>

#include "runtime/subprocess_backend.hpp"

namespace askel {
namespace {

/// Deterministic per-slice jitter in [0.6, 1.4] (mean 1.0).
double slice_weight(std::uint64_t seed, std::size_t begin, std::size_t end) {
  if (seed == 0) return 1.0;
  std::uint64_t h = seed ^ (begin * 0x9E3779B97F4A7C15ull) ^ (end * 0xBF58476D1CE4E5B9ull);
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  const double u = static_cast<double>(h % 10000) / 10000.0;
  return 0.6 + 0.8 * u;
}

/// Split [begin, end) into `parts` near-equal sub-ranges.
std::vector<std::pair<std::size_t, std::size_t>> partition(std::size_t begin,
                                                           std::size_t end,
                                                           int parts) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::size_t n = end - begin;
  std::size_t at = begin;
  for (int k = 0; k < parts; ++k) {
    const std::size_t len = n / parts + (static_cast<std::size_t>(k) < n % parts);
    out.emplace_back(at, at + len);
    at += len;
  }
  return out;
}

}  // namespace

Counts count_tokens(const TweetDoc& doc) {
  Counts counts;
  for (std::size_t i = doc.begin; i < doc.end; ++i) {
    for (std::string& token : extract_tags_and_mentions((*doc.tweets)[i])) {
      ++counts[std::move(token)];
    }
  }
  return counts;
}

WordcountSkeleton make_wordcount_skeleton(const PaperTimings& t,
                                          std::uint64_t jitter_seed) {
  // fs: "splits the input file on smaller chunks". Shared between levels; the
  // level-0 call models the 6.4 s single-threaded file read, level-1 calls
  // the ≈7× faster in-memory chunk splits.
  auto fs = split_muscle<TweetDoc, TweetDoc>(
      "fs", [t, jitter_seed](TweetDoc doc) {
        const bool outer = doc.level == 0;
        simulate_work(outer ? t.scaled_outer_split() : t.scaled_inner_split());
        const int parts = outer ? t.outer_chunks : t.inner_chunks;
        std::vector<TweetDoc> chunks;
        chunks.reserve(parts);
        for (const auto& [b, e] : partition(doc.begin, doc.end, parts)) {
          TweetDoc c;
          c.tweets = doc.tweets;
          c.begin = b;
          c.end = e;
          c.level = doc.level + 1;
          c.weight = doc.level + 1 == 2 ? slice_weight(jitter_seed, b, e) : 1.0;
          chunks.push_back(std::move(c));
        }
        return chunks;
      });

  // fe: "produces a hash map of words (hashtags and commented-users) and its
  // corresponding partial count".
  auto fe = execute_muscle<TweetDoc, CountsPart>("fe", [t](TweetDoc doc) {
    simulate_work(t.scaled_execute() * doc.weight);
    return CountsPart{count_tokens(doc), doc.level};
  });

  // fm: "merges partial counts into a global count". Shared between levels.
  auto fm = merge_muscle<CountsPart, CountsPart>(
      "fm", [t](std::vector<CountsPart> parts) {
        int level = 2;
        for (const CountsPart& p : parts) level = std::min(level, p.level);
        simulate_work(level >= 2 ? t.scaled_inner_merge() : t.scaled_outer_merge());
        CountsPart out;
        out.level = std::max(0, level - 1);
        for (CountsPart& p : parts) {
          for (auto& [token, n] : p.counts) out.counts[token] += n;
        }
        return out;
      });

  Skel<TweetDoc, CountsPart> inner = Map(fs, Seq(fe), fm);
  Skel<TweetDoc, CountsPart> outer = Map(fs, inner, fm);
  return WordcountSkeleton{outer, fs.m, fe.m, fm.m};
}

NamedEstimates export_named_estimates(const EstimateRegistry& reg,
                                      const SkelNode& root) {
  std::unordered_map<int, std::string> names;
  for (const Muscle* m : tree_muscles(root)) names[m->id()] = m->name();
  NamedEstimates out;
  const Estimates snap = reg.snapshot();
  snap.for_each([&](std::int64_t key, const Estimates::Entry& entry) {
    const auto it = names.find(estimate_key_muscle(key));
    if (it == names.end()) return;
    const int depth = estimate_key_depth(key);
    // Aggregate entries export under the bare name; per-depth entries under
    // "name@depth" (both are restored by init_named_estimates).
    const std::string k =
        depth == kAnyDepth ? it->second : it->second + "@" + std::to_string(depth);
    out[k] = entry;
  });
  return out;
}

void init_named_estimates(EstimateRegistry& reg, const SkelNode& root,
                          const NamedEstimates& named) {
  std::unordered_map<std::string, int> ids;
  for (const Muscle* m : tree_muscles(root)) ids[m->name()] = m->id();
  for (const auto& [key, entry] : named) {
    const std::size_t at = key.find('@');
    const std::string name = key.substr(0, at);
    const int depth =
        at == std::string::npos ? kAnyDepth : std::stoi(key.substr(at + 1));
    const auto it = ids.find(name);
    if (it == ids.end()) continue;
    if (entry.t) reg.init_duration(it->second, depth, *entry.t);
    if (entry.card) reg.init_cardinality(it->second, depth, *entry.card);
  }
}

ScenarioResult run_wordcount_scenario(const ScenarioConfig& cfg,
                                      const NamedEstimates* init) {
  auto tweets =
      std::make_shared<const std::vector<std::string>>(generate_tweets(cfg.corpus));
  WordcountSkeleton ws = make_wordcount_skeleton(cfg.timings, cfg.jitter_seed);

  // Private pool by default; a multi-tenant caller passes the shared one (and
  // then gauge/lp_history series mix all tenants sharing it). A coordinator
  // always runs on its own pool — grants actuate there, so running anywhere
  // else (including a mismatched shared_pool) would leave the executing pool
  // stuck at initial_lp. The subprocess backend is declared before the pool:
  // the pool's destructor cancels pending provisions against it.
  std::optional<SubprocessBackend> subprocess_backend;
  std::optional<ResizableThreadPool> own_pool;
  ResizableThreadPool* shared =
      cfg.coordinator != nullptr ? &cfg.coordinator->pool() : cfg.shared_pool;
  if (shared == nullptr) {
    own_pool.emplace(cfg.initial_lp, cfg.max_lp);
    if (cfg.backend == ScenarioBackend::kSubprocess) {
      SubprocessBackendConfig sub;
      sub.max_workers = cfg.max_lp;
      subprocess_backend.emplace(sub);
      own_pool->set_backend(&*subprocess_backend);
    }
  }
  ResizableThreadPool& pool = shared != nullptr ? *shared : *own_pool;
  EventBus bus;
  EstimateRegistry reg(cfg.estimator_config(), cfg.scope);
  TrackerSet trackers(reg);
  bus.add_listener(trackers.as_listener());
  ControllerConfig ccfg;
  ccfg.min_interval = std::max(0.0, cfg.controller_min_interval * cfg.timings.scale);
  AutonomicController controller(pool, trackers, &default_clock(), ccfg);
  bus.add_listener(controller.as_listener());
  if (init != nullptr) init_named_estimates(reg, *ws.skeleton.node(), *init);

  int tenant = 0;
  if (cfg.coordinator != nullptr) {
    tenant = cfg.coordinator->register_tenant("wordcount");
    controller.set_sla_weight(cfg.sla_weight);
    controller.bind_coordinator(cfg.coordinator, tenant);
  }
  // A muscle exception propagates out of fut.get() below; the tenant's grant
  // and registration must return to the budget on that path too (disarm and
  // unregister are idempotent, so the normal path may also run them early).
  struct TenantGuard {
    AutonomicController& ctl;
    LpBudgetCoordinator* coord;
    int tenant;
    ~TenantGuard() {
      ctl.disarm();
      if (coord != nullptr) coord->unregister_tenant(tenant);
    }
  } guard{controller, cfg.coordinator, tenant};
  Engine engine(pool, bus);
  engine.set_tenant(tenant);
  TweetDoc doc;
  doc.tweets = tweets;
  doc.begin = 0;
  doc.end = tweets->size();
  doc.level = 0;

  ScenarioResult res;
  res.goal = cfg.wct_goal * cfg.timings.scale;
  const TimePoint t0 = default_clock().now();
  controller.arm(res.goal, cfg.max_lp);
  Future<CountsPart> fut = ws.skeleton.input(doc, engine);
  CountsPart out = fut.get();
  const TimePoint t1 = default_clock().now();
  controller.disarm();

  res.wct = t1 - t0;
  res.goal_met = res.wct <= res.goal;
  res.peak_busy = pool.gauge().peak();
  res.final_lp = pool.target_lp();
  for (const Sample& s : pool.gauge().series().samples()) {
    if (s.t >= t0 && s.t <= t1) res.busy_series.push_back(Sample{s.t - t0, s.value});
  }
  for (const Sample& s : pool.lp_history().samples()) {
    res.lp_series.push_back(Sample{std::max(0.0, s.t - t0), s.value});
  }
  res.actions = controller.actions();
  for (auto& a : res.actions) a.t -= t0;
  res.counts = std::move(out.counts);
  res.expected = count_tokens(doc);
  res.final_estimates = export_named_estimates(reg, *ws.skeleton.node());
  res.controller_evaluations = controller.evaluations();
  return res;  // guard unregisters the tenant
}

}  // namespace askel
