#include "workload/calibrated.hpp"

#include <chrono>
#include <thread>

namespace askel {

void simulate_work(Duration seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

double PaperTimings::sequential_wct() const {
  const double per_chunk =
      scaled_inner_split() + inner_chunks * scaled_execute() + scaled_inner_merge();
  return scaled_outer_split() + outer_chunks * per_chunk + scaled_outer_merge();
}

}  // namespace askel
