#include "workload/paper_example.hpp"

namespace askel {

PaperExampleSkeleton make_paper_example_skeleton() {
  // Muscles are inert: the replay never invokes them; only their identity
  // (shared fs/fm across levels, as in the paper's Listing 1) matters.
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{0, 0, 0}; });
  auto fe = execute_muscle<int, int>("fe", [](int v) { return v; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int>) { return 0; });

  Skel<int, int> inner = Map(fs, Seq(fe), fm);
  Skel<int, int> outer = Map(fs, inner, fm);

  PaperExampleSkeleton s{outer, outer.node().get(), nullptr, nullptr,
                         fs.m->id(), fe.m->id(), fm.m->id()};
  s.inner = s.outer->children()[0];
  s.seq = s.inner->children()[0];
  return s;
}

PaperExampleReplay::PaperExampleReplay(double rho)
    : skel_(make_paper_example_skeleton()), reg_(rho), trackers_(reg_) {
  build_schedule();
}

PaperExampleReplay::PaperExampleReplay(const EstimatorConfig& estimator)
    : skel_(make_paper_example_skeleton()),
      reg_(estimator),
      trackers_(reg_) {
  build_schedule();
}

void PaperExampleReplay::push(TimePoint t, const SkelNode* node, std::int64_t exec,
                              std::int64_t parent, When when, Where where,
                              int muscle_id, int card, int child_index) {
  TimedEvent te;
  te.t = t;
  te.ev.when = when;
  te.ev.where = where;
  te.ev.exec_id = exec;
  te.ev.parent_exec_id = parent;
  te.ev.node = node;
  te.ev.muscle_id = muscle_id;
  te.ev.timestamp = t;
  te.ev.cardinality = card;
  te.ev.child_index = child_index;
  events_.push_back(std::move(te));
}

void PaperExampleReplay::build_schedule() {
  // Dynamic instances: O = the outer map; I1..I3 its three inner maps in
  // start order; Sxy = the y-th seq of inner map x. The timestamps replay
  // the LP=2 execution the paper's Figure 1 depicts (two workers; started
  // inner maps are driven to completion before the third one begins).
  const SkelNode* O = skel_.outer;
  const SkelNode* I = skel_.inner;
  const SkelNode* S = skel_.seq;
  const int fs = skel_.fs_id, fe = skel_.fe_id, fm = skel_.fm_id;
  enum : std::int64_t { o = 0, i1 = 1, i2 = 2, i3 = 3 };
  const std::int64_t s1[3] = {4, 5, 6}, s2[3] = {7, 8, 9}, s3[3] = {10, 11, 12};
  const auto B = When::kBefore, A = When::kAfter;

  // t=0: the outer split starts (single worker busy).
  push(0, O, o, -1, B, Where::kSkeleton, -1);
  push(0, O, o, -1, B, Where::kSplit, fs);
  // t=10: split done (3 chunks); workers pick inner maps 1 and 2.
  push(10, O, o, -1, A, Where::kSplit, fs, 3);
  push(10, O, o, -1, B, Where::kNested, -1, -1, 0);
  push(10, I, i1, o, B, Where::kSkeleton, -1);
  push(10, I, i1, o, B, Where::kSplit, fs);
  push(10, O, o, -1, B, Where::kNested, -1, -1, 1);
  push(10, I, i2, o, B, Where::kSkeleton, -1);
  push(10, I, i2, o, B, Where::kSplit, fs);
  // t=20: both inner splits done; first executes start.
  push(20, I, i1, o, A, Where::kSplit, fs, 3);
  push(20, I, i1, o, B, Where::kNested, -1, -1, 0);
  push(20, S, s1[0], i1, B, Where::kExecute, fe);
  push(20, I, i2, o, A, Where::kSplit, fs, 3);
  push(20, I, i2, o, B, Where::kNested, -1, -1, 0);
  push(20, S, s2[0], i2, B, Where::kExecute, fe);
  // t=35 and t=50: the per-chunk executes proceed two at a time.
  for (int round = 0; round < 2; ++round) {
    const TimePoint t = 35 + 15 * round;
    push(t, S, s1[round], i1, A, Where::kExecute, fe);
    push(t, I, i1, o, A, Where::kNested, -1, -1, round);
    push(t, I, i1, o, B, Where::kNested, -1, -1, round + 1);
    push(t, S, s1[round + 1], i1, B, Where::kExecute, fe);
    push(t, S, s2[round], i2, A, Where::kExecute, fe);
    push(t, I, i2, o, A, Where::kNested, -1, -1, round);
    push(t, I, i2, o, B, Where::kNested, -1, -1, round + 1);
    push(t, S, s2[round + 1], i2, B, Where::kExecute, fe);
  }
  // t=65: last executes finish; worker 1 starts merge 1, worker 2 picks the
  // third inner map (its split runs 65..75).
  push(65, S, s1[2], i1, A, Where::kExecute, fe);
  push(65, I, i1, o, A, Where::kNested, -1, -1, 2);
  push(65, I, i1, o, B, Where::kMerge, fm);
  push(65, S, s2[2], i2, A, Where::kExecute, fe);
  push(65, I, i2, o, A, Where::kNested, -1, -1, 2);
  push(65, O, o, -1, B, Where::kNested, -1, -1, 2);
  push(65, I, i3, o, B, Where::kSkeleton, -1);
  push(65, I, i3, o, B, Where::kSplit, fs);
  // t=70: merge 1 done — the paper's observation instant; merge 2 starts.
  push(70, I, i1, o, A, Where::kMerge, fm);
  push(70, I, i1, o, A, Where::kSkeleton, -1);
  push(70, O, o, -1, A, Where::kNested, -1, -1, 0);
  push(70, I, i2, o, B, Where::kMerge, fm);
  // t=75: merge 2 and split 3 done; two of map 3's executes start.
  push(75, I, i2, o, A, Where::kMerge, fm);
  push(75, I, i2, o, A, Where::kSkeleton, -1);
  push(75, O, o, -1, A, Where::kNested, -1, -1, 1);
  push(75, I, i3, o, A, Where::kSplit, fs, 3);
  push(75, I, i3, o, B, Where::kNested, -1, -1, 0);
  push(75, S, s3[0], i3, B, Where::kExecute, fe);
  push(75, I, i3, o, B, Where::kNested, -1, -1, 1);
  push(75, S, s3[1], i3, B, Where::kExecute, fe);
  // t=90: they finish; the third execute runs alone (only 2 workers).
  push(90, S, s3[0], i3, A, Where::kExecute, fe);
  push(90, I, i3, o, A, Where::kNested, -1, -1, 0);
  push(90, S, s3[1], i3, A, Where::kExecute, fe);
  push(90, I, i3, o, A, Where::kNested, -1, -1, 1);
  push(90, I, i3, o, B, Where::kNested, -1, -1, 2);
  push(90, S, s3[2], i3, B, Where::kExecute, fe);
  // t=105..115: merge 3, then the outer merge.
  push(105, S, s3[2], i3, A, Where::kExecute, fe);
  push(105, I, i3, o, A, Where::kNested, -1, -1, 2);
  push(105, I, i3, o, B, Where::kMerge, fm);
  push(110, I, i3, o, A, Where::kMerge, fm);
  push(110, I, i3, o, A, Where::kSkeleton, -1);
  push(110, O, o, -1, A, Where::kNested, -1, -1, 2);
  push(110, O, o, -1, B, Where::kMerge, fm);
  push(115, O, o, -1, A, Where::kMerge, fm);
  push(115, O, o, -1, A, Where::kSkeleton, -1);
}

void PaperExampleReplay::replay_until(TimePoint t) {
  while (cursor_ < events_.size() && events_[cursor_].t <= t) {
    trackers_.on_event(events_[cursor_].ev);
    ++cursor_;
  }
}

}  // namespace askel
