#pragma once
// Calibrated muscle timings reproducing the paper's §5 execution profile.
//
// Paper testbed facts (reverse-engineered in DESIGN.md §3): sequential WCT
// 12.5 s; outer split 6.4 s (single-threaded I/O); inner splits ≈ 7× faster;
// execute muscles ≈ 0.04 s; first merge observed at 7.6 s. We reproduce that
// profile at a configurable scale with sleep-calibrated muscles: sleeping
// workers park, so N concurrent muscles overlap on wall-clock time even on a
// single-core host — the duration/topology structure the autonomic layer
// reasons about is preserved exactly.

#include "util/clock.hpp"

namespace askel {

/// Block the calling thread for `seconds` (no-op for <= 0).
void simulate_work(Duration seconds);

struct PaperTimings {
  /// Paper-profile durations in seconds, before scaling.
  double outer_split = 6.4;
  double inner_split = 6.4 / 7.0;
  double execute = 0.04;
  double inner_merge = 0.04;
  double outer_merge = 0.10;
  /// Fan-outs: 5 chunks × 6 sub-chunks = 30 execute muscles.
  int outer_chunks = 5;
  int inner_chunks = 6;
  /// Global time scale (1.0 = the paper's 12.5 s sequential profile).
  double scale = 0.15;

  double scaled_outer_split() const { return outer_split * scale; }
  double scaled_inner_split() const { return inner_split * scale; }
  double scaled_execute() const { return execute * scale; }
  double scaled_inner_merge() const { return inner_merge * scale; }
  double scaled_outer_merge() const { return outer_merge * scale; }

  /// Sequential WCT of the whole profile (scaled).
  double sequential_wct() const;
};

}  // namespace askel
