#include "workload/service.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <random>
#include <thread>
#include <utility>

#include "autonomic/controller.hpp"
#include "autonomic/coordinator.hpp"
#include "est/quality.hpp"
#include "util/zipf.hpp"
#include "workload/calibrated.hpp"

namespace askel {
namespace {

/// SplitMix64 finalizer: decorrelates (seed, tenant) into a stream seed so
/// adjacent tenants never share a random sequence.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t h = seed + 0x9E3779B97F4A7C15ull * (salt + 1);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

/// Bounded-Pareto service demand with the configured mean. For shape a > 1
/// the (unbounded) Pareto mean is a*x_m/(a-1), so x_m = mean*(a-1)/a; the cap
/// truncates the far tail, pulling the realized mean slightly under `mean` —
/// acceptable, the tail shape is what the scenario is about.
double sample_work(std::mt19937_64& rng, double mean, double shape,
                   double cap) {
  if (!(mean > 0.0)) return 0.0;
  const double a = std::max(1.05, shape);
  const double x_m = mean * (a - 1.0) / a;
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const double u = std::max(1e-12, 1.0 - u01(rng));  // (0, 1], never 0
  const double x = x_m * std::pow(u, -1.0 / a);
  return std::min(x, std::max(x_m, cap));
}

/// Exact quantile of a sorted sample (nearest-rank).
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  const auto idx = static_cast<std::size_t>(
      std::min(n - 1.0, std::max(0.0, std::ceil(q * n) - 1.0)));
  return sorted[idx];
}

}  // namespace

std::vector<ServiceRequest> generate_service_stream(
    const ServiceStreamConfig& cfg) {
  std::vector<ServiceRequest> out;
  const int tenants = std::max(1, cfg.tenants);
  const double duration = std::max(0.0, cfg.duration_s);
  if (duration <= 0.0 || cfg.total_rate_hz <= 0.0) return out;

  ZipfDistribution zipf(static_cast<std::size_t>(tenants), cfg.zipf_skew);
  const std::vector<double> rates = zipf.rates(cfg.total_rate_hz);

  // Piecewise-constant bursty envelope, shared by every tenant (a traffic
  // burst hits the whole service) and normalized to mean 1.0 so the expected
  // request count matches the nominal rate.
  std::vector<double> envelope(
      static_cast<std::size_t>(std::max(1, cfg.rate_buckets)), 1.0);
  if (cfg.bursty) {
    const std::vector<double> raw =
        bursty_stream(mix_seed(cfg.seed, 0xB00B5), static_cast<int>(envelope.size()));
    const double mean =
        std::accumulate(raw.begin(), raw.end(), 0.0) / static_cast<double>(raw.size());
    for (std::size_t i = 0; i < envelope.size(); ++i) {
      envelope[i] = mean > 0.0 ? raw[i] / mean : 1.0;
    }
  }
  const double env_max = *std::max_element(envelope.begin(), envelope.end());
  const double bucket_len = duration / static_cast<double>(envelope.size());
  const double amp = std::clamp(cfg.diurnal_amplitude, 0.0, 1.0);
  const double period = std::max(1e-9, cfg.diurnal_period_s);

  const auto rate_at = [&](double base, double t) {
    const auto b = std::min(envelope.size() - 1,
                            static_cast<std::size_t>(t / bucket_len));
    const double diurnal = 1.0 + amp * std::sin(2.0 * M_PI * t / period);
    return std::max(0.0, base * diurnal * envelope[b]);
  };

  for (int k = 0; k < tenants; ++k) {
    const double base = rates[static_cast<std::size_t>(k)];
    // Thinning (Lewis & Shedler): candidates at the envelope's peak rate,
    // accepted with probability rate(t)/rate_max — an exact non-homogeneous
    // Poisson process, still one deterministic draw sequence per tenant.
    const double rate_max = base * (1.0 + amp) * env_max;
    if (rate_max <= 0.0) continue;
    std::mt19937_64 rng(mix_seed(cfg.seed, static_cast<std::uint64_t>(k)));
    std::exponential_distribution<double> gap(rate_max);
    std::uniform_real_distribution<double> u01(0.0, 1.0);
    for (double t = gap(rng); t < duration; t += gap(rng)) {
      if (u01(rng) * rate_max > rate_at(base, t)) continue;
      out.push_back(ServiceRequest{
          k, t,
          sample_work(rng, cfg.mean_service_s, cfg.service_shape,
                      cfg.service_cap_s)});
    }
  }
  std::sort(out.begin(), out.end(), [](const ServiceRequest& a,
                                       const ServiceRequest& b) {
    return a.arrival != b.arrival ? a.arrival < b.arrival : a.tenant < b.tenant;
  });
  return out;
}

namespace {

/// Per-tenant latency log: (arrival, latency) pairs, filled concurrently by
/// completing workers.
struct TenantLog {
  std::mutex mu;
  std::vector<std::pair<double, double>> samples;
};

}  // namespace

ServiceScenarioResult run_service_scenario(const ServiceScenarioConfig& cfg) {
  const int tenants = std::max(1, cfg.stream.tenants);
  std::vector<ServiceTenantSpec> specs(static_cast<std::size_t>(tenants));
  for (std::size_t k = 0; k < specs.size() && k < cfg.specs.size(); ++k) {
    specs[k] = cfg.specs[k];
  }
  const std::vector<ServiceRequest> stream = generate_service_stream(cfg.stream);

  ResizableThreadPool pool(std::max(1, cfg.initial_lp), std::max(1, cfg.max_lp));
  std::optional<LpBudgetCoordinator> coord;
  if (cfg.coordinated) {
    coord.emplace(pool, cfg.budget);
    coord->set_policy(std::make_unique<WeightedSharePolicy>());
  } else {
    // Baseline: identical capacity, none of the autonomic stack — FIFO
    // dispatch (tags become pure accounting) and the pool pinned at max LP.
    pool.set_tenant_dispatch(TenantDispatch::kFifo);
    pool.set_target_lp(std::max(1, cfg.max_lp));
  }

  // Tenant ids: coordinator-issued when coordinated, 1-based indices when
  // not (the pool accepts any positive id for accounting/queueing).
  std::vector<int> ids(static_cast<std::size_t>(tenants), 0);
  // Controllers need a TrackerSet by contract even though SLO mode never
  // snapshots it; each tenant gets an (idle) registry + tracker pair.
  std::vector<std::unique_ptr<EstimateRegistry>> regs;
  std::vector<std::unique_ptr<TrackerSet>> tracker_sets;
  std::vector<std::unique_ptr<AutonomicController>> controllers(
      static_cast<std::size_t>(tenants));
  for (int k = 0; k < tenants; ++k) {
    const auto kk = static_cast<std::size_t>(k);
    ids[kk] = coord ? coord->register_tenant("svc-" + std::to_string(k)) : k + 1;
    // Service requests are independent arrivals, not a task tree: serve each
    // tenant's queue oldest-first so queueing delay is FIFO, not LIFO.
    pool.set_tenant_ordering(ids[kk], TenantOrdering::kFifo);
    if (!coord || specs[kk].tail_goal_s <= 0.0) continue;
    regs.push_back(std::make_unique<EstimateRegistry>());
    tracker_sets.push_back(std::make_unique<TrackerSet>(*regs.back()));
    ControllerConfig ccfg;
    ccfg.min_interval = std::max(0.0, cfg.controller_min_interval);
    controllers[kk] = std::make_unique<AutonomicController>(
        pool, *tracker_sets.back(), &default_clock(), ccfg);
    controllers[kk]->set_sla_weight(specs[kk].weight);
    controllers[kk]->bind_coordinator(&*coord, ids[kk]);
    controllers[kk]->arm_slo(specs[kk].tail_goal_s, cfg.max_lp,
                             cfg.tail_quantile);
  }

  // Aggressor: floods its own tenant queue for the whole stream, bounded to
  // a standing backlog; under the coordinator it also claims near-maximal
  // pressure (a lying batch tenant).
  const int aggr_id = coord ? coord->register_tenant("aggressor") : tenants + 1;
  std::atomic<bool> stop_flood{false};
  std::atomic<long> flood_done{0};
  std::atomic<int> flood_outstanding{0};
  std::thread flooder;
  if (cfg.aggressor) {
    if (coord) {
      coord->arm_tenant(aggr_id);
      coord->request(aggr_id, pool.max_lp(), /*pressure=*/25.0);
    }
    flooder = std::thread([&] {
      const double work = std::max(0.0, cfg.aggressor_work_s);
      const int bound = std::max(1, cfg.aggressor_outstanding);
      while (!stop_flood.load(std::memory_order_acquire)) {
        if (flood_outstanding.load(std::memory_order_relaxed) < bound) {
          flood_outstanding.fetch_add(1, std::memory_order_relaxed);
          pool.submit(
              [&, work] {
                simulate_work(work);
                flood_done.fetch_add(1, std::memory_order_relaxed);
                flood_outstanding.fetch_sub(1, std::memory_order_relaxed);
              },
              aggr_id);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<TenantLog> logs(static_cast<std::size_t>(tenants));
  const TimePoint t0 = default_clock().now();

  // Open-loop replay: submit each request at its scheduled arrival, never
  // waiting for earlier completions. Latency is measured from the SCHEDULED
  // arrival, so dispatcher jitter and queueing both count against the SLO —
  // the open-loop methodology that avoids coordinated omission.
  for (const ServiceRequest& req : stream) {
    const TimePoint due = t0 + req.arrival;
    const Duration wait = due - default_clock().now();
    if (wait > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    }
    const auto kk = static_cast<std::size_t>(req.tenant);
    AutonomicController* ctl = controllers[kk].get();
    TenantLog* log = &logs[kk];
    const double arrival = req.arrival;
    const double work = req.work;
    pool.submit(
        [ctl, log, due, arrival, work] {
          simulate_work(work);
          const Duration latency = default_clock().now() - due;
          {
            std::lock_guard lock(log->mu);
            log->samples.emplace_back(arrival, latency);
          }
          if (ctl != nullptr) ctl->record_latency(latency);
        },
        ids[kk]);
  }

  // Stream over: stop the flood, drain everything (bounded backlog + the
  // remaining service requests), then read the logs race-free.
  stop_flood.store(true, std::memory_order_release);
  if (flooder.joinable()) flooder.join();
  pool.wait_idle();
  const TimePoint t1 = default_clock().now();

  ServiceScenarioResult res;
  res.duration = t1 - t0;
  res.aggressor_tasks = flood_done.load();
  if (coord) {
    res.peak_total_granted = coord->peak_total_granted();
    res.budget_held = res.peak_total_granted <= coord->budget();
  }

  const int buckets = std::max(1, cfg.curve_buckets);
  const double horizon = std::max(1e-9, cfg.stream.duration_s);
  for (int k = 0; k < tenants; ++k) {
    const auto kk = static_cast<std::size_t>(k);
    ServiceTenantResult tr;
    tr.tenant = k;
    tr.tail_goal = specs[kk].tail_goal_s;
    std::vector<std::pair<double, double>>& samples = logs[kk].samples;
    tr.requests = static_cast<long>(samples.size());
    res.total_requests += tr.requests;
    std::vector<double> lat;
    lat.reserve(samples.size());
    for (const auto& [arrival, latency] : samples) lat.push_back(latency);
    std::sort(lat.begin(), lat.end());
    tr.exact_tail = sorted_quantile(lat, cfg.tail_quantile);
    tr.exact_median = sorted_quantile(lat, 0.5);
    if (controllers[kk] != nullptr) {
      tr.est_tail = controllers[kk]->tail_snapshot().tail;
    }
    if (tr.tail_goal > 0.0 && !samples.empty()) {
      long met = 0;
      std::vector<long> bucket_total(static_cast<std::size_t>(buckets), 0);
      std::vector<long> bucket_met(static_cast<std::size_t>(buckets), 0);
      for (const auto& [arrival, latency] : samples) {
        const auto b = std::min<std::size_t>(
            static_cast<std::size_t>(buckets) - 1,
            static_cast<std::size_t>(arrival / horizon *
                                     static_cast<double>(buckets)));
        ++bucket_total[b];
        const bool ok = latency <= tr.tail_goal;
        met += ok;
        bucket_met[b] += ok;
      }
      tr.attainment =
          static_cast<double>(met) / static_cast<double>(samples.size());
      for (int b = 0; b < buckets; ++b) {
        const auto bb = static_cast<std::size_t>(b);
        if (bucket_total[bb] == 0) continue;
        tr.attainment_curve.push_back(
            Sample{(b + 0.5) * horizon / buckets,
                   static_cast<double>(bucket_met[bb]) /
                       static_cast<double>(bucket_total[bb])});
      }
    }
    if (coord) {
      for (const auto& a : coord->history(ids[kk])) {
        tr.peak_grant = std::max(tr.peak_grant, a.to_grant);
      }
    }
    res.tenants.push_back(std::move(tr));
  }

  // Teardown in dependency order: controllers release their grants, then the
  // aggressor's, then ids. (The coordinator's destructor would also zero the
  // grants, but being explicit keeps the history readable.)
  for (auto& ctl : controllers) {
    if (ctl != nullptr) ctl->disarm();
  }
  if (coord) {
    if (cfg.aggressor) coord->release(aggr_id);
    coord->unregister_tenant(aggr_id);
    for (const int id : ids) coord->unregister_tenant(id);
  }
  return res;
}

}  // namespace askel
