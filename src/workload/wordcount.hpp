#pragma once
// The paper's §5 evaluation workload: hashtag / commented-user count modelled
// as two nested Map skeletons, map(fs, map(fs, seq(fe), fm), fm), where fs
// splits the input into smaller chunks, fe produces a hash map of tokens with
// partial counts, and fm merges partial counts — with fs and fm SHARED
// between the two nesting levels exactly as in the paper's Listing 1.
//
// `run_wordcount_scenario` is the harness behind Figures 5, 6 and 7: it runs
// one autonomic execution and returns the active-thread series, the LP
// decisions, and the final estimates (usable to initialize the next run).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "autonomic/controller.hpp"
#include "est/estimator.hpp"
#include "skel/typed.hpp"
#include "util/time_series.hpp"
#include "workload/calibrated.hpp"
#include "workload/tweets.hpp"

namespace askel {

/// Token → count. Ordered map so results compare deterministically.
using Counts = std::map<std::string, long>;

/// A slice of the corpus at some nesting level. One type flows through both
/// map levels so the level-0 and level-1 splits can share one muscle.
struct TweetDoc {
  std::shared_ptr<const std::vector<std::string>> tweets;
  std::size_t begin = 0;
  std::size_t end = 0;
  /// 0 = whole input ("the file"), 1 = chunk, 2 = sub-chunk.
  int level = 0;
  /// Relative execute-cost multiplier of this slice (Zipf jitter).
  double weight = 1.0;

  std::size_t size() const { return end - begin; }
};

/// Reference (sequential) count over a document — used to validate results.
Counts count_tokens(const TweetDoc& doc);

/// Partial-count message flowing up the merge tree. It remembers the nesting
/// level it was produced at so the SHARED merge muscle can apply the paper's
/// distinct inner-merge (0.04 s) and outer-merge (0.10 s) costs.
struct CountsPart {
  Counts counts;
  /// Level of the slice these counts summarize (2 = sub-chunk, 1 = chunk,
  /// 0 = whole input).
  int level = 2;
};

/// The skeleton plus the shared muscles (exposed so tests/benches can seed or
/// inspect per-muscle estimates).
struct WordcountSkeleton {
  Skel<TweetDoc, CountsPart> skeleton;
  SplitPtr fs;
  ExecPtr fe;
  MergePtr fm;
};

/// Build map(fs, map(fs, seq(fe), fm), fm) with sleep-calibrated muscles.
/// `jitter_seed` drives the per-sub-chunk weight jitter (0 = no jitter).
WordcountSkeleton make_wordcount_skeleton(const PaperTimings& t,
                                          std::uint64_t jitter_seed = 0);

/// Estimates keyed by muscle NAME rather than id — transferable across runs
/// that rebuild the skeleton (fresh muscle objects get fresh ids). This is
/// the paper's scenario-2 mechanism: "t(m) and |m| are initialized with
/// their corresponding final value of a previous execution".
using NamedEstimates = std::map<std::string, Estimates::Entry>;

/// Export every estimate of the muscles reachable from `root`, by name.
NamedEstimates export_named_estimates(const EstimateRegistry& reg,
                                      const SkelNode& root);

/// Seed `reg` for the muscles reachable from `root` using name-matched
/// entries of `named` (unknown names are ignored).
void init_named_estimates(EstimateRegistry& reg, const SkelNode& root,
                          const NamedEstimates& named);

/// Where the pool's worker capacity lives (paper §6): in-process threads
/// (the default, the paper's multicore testbed) or fork()ed worker processes
/// behind the subprocess transport — real join latency, real crash
/// detection, same LP decisions.
enum class ScenarioBackend : int { kThread = 0, kSubprocess = 1 };

struct ScenarioConfig {
  PaperTimings timings;            // includes the time scale
  TweetCorpusConfig corpus;        // synthetic-corpus shape
  double wct_goal = 9.5;           // paper-scale seconds; scaled internally
  int max_lp = 24;                 // paper testbed: 24 hardware threads
  int initial_lp = 1;
  /// Worker backend of the run's own pool. Ignored when shared_pool or
  /// coordinator is set — a shared pool's backend belongs to its owner.
  ScenarioBackend backend = ScenarioBackend::kThread;
  double rho = 0.5;                // estimator smoothing (EWMA)
  /// Which WCT/cardinality estimator this tenant's registry runs (the PR 4
  /// estimator family; kEwma reproduces the paper, bit-identical). `rho`
  /// above stays the EWMA smoothing knob; `estimator_window` and
  /// `estimator_quantile` parameterize the windowed and P² kinds.
  EstimatorKind estimator = EstimatorKind::kEwma;
  int estimator_window = 16;
  double estimator_quantile = 0.9;
  /// The assembled per-tenant estimator factory.
  EstimatorConfig estimator_config() const {
    return EstimatorConfig{.kind = estimator,
                           .rho = rho,
                           .window = estimator_window,
                           .quantile = estimator_quantile};
  }
  /// kAggregate = the paper's per-muscle estimates (shared fs conflates the
  /// 6.4 s outer and 0.91 s inner splits); kPerDepth = this repo's
  /// context-sensitive extension (see ablation_context bench).
  EstimationScope scope = EstimationScope::kAggregate;
  /// Minimum spacing between controller evaluations, in PAPER seconds
  /// (scaled by timings.scale like everything else). The paper's controller
  /// visibly re-plans at a sub-second cadence (the Figure 5 ramp takes ≈1 s);
  /// evaluating on literally every event would let the unachievable-path
  /// ramp max out before estimates refine. Set <0 to evaluate per event.
  Duration controller_min_interval = 0.1;
  std::uint64_t jitter_seed = 7;
  /// Multi-tenant mode: run on this shared pool instead of a private one
  /// (initial_lp/max_lp are then the shared pool's business) and, when
  /// `coordinator` is also set, register one tenant there and route the
  /// controller's LP through it. A coordinator alone implies its pool (the
  /// run executes where the grants actuate). Both null = the
  /// single-controller original.
  ResizableThreadPool* shared_pool = nullptr;
  LpBudgetCoordinator* coordinator = nullptr;
  /// SLA class weight of this run's tenant (>= 1; only meaningful with a
  /// coordinator running a WeightedSharePolicy).
  int sla_weight = 1;
};

struct ScenarioResult {
  double wct = 0.0;        // measured wall-clock of the run (seconds)
  double goal = 0.0;       // scaled goal actually applied (seconds)
  bool goal_met = false;
  int peak_busy = 0;       // max simultaneously busy workers
  int final_lp = 0;
  /// (t, busy-workers) with t relative to run start — Figures 5-7 series.
  std::vector<Sample> busy_series;
  /// (t, target LP) controller/pool history, t relative to run start.
  std::vector<Sample> lp_series;
  std::vector<AutonomicController::Action> actions;
  Counts counts;           // computed result
  Counts expected;         // sequential reference
  NamedEstimates final_estimates;
  long controller_evaluations = 0;
};

/// Run one autonomic execution. `init` seeds the estimate registry (paper
/// scenario 2, "Goal with initialization"); pass nullptr for scenario 1/3.
ScenarioResult run_wordcount_scenario(const ScenarioConfig& cfg,
                                      const NamedEstimates* init = nullptr);

}  // namespace askel
