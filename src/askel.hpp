#pragma once
// Umbrella header for the askel library: autonomic algorithmic skeletons
// using events (reproduction of Pabón & Henrio, PMAM 2014).

#include "autonomic/controller.hpp"   // IWYU pragma: export
#include "autonomic/goals.hpp"        // IWYU pragma: export
#include "adg/best_effort.hpp"        // IWYU pragma: export
#include "adg/limited_lp.hpp"         // IWYU pragma: export
#include "adg/snapshot.hpp"           // IWYU pragma: export
#include "adg/timeline.hpp"           // IWYU pragma: export
#include "est/registry.hpp"           // IWYU pragma: export
#include "events/event_bus.hpp"       // IWYU pragma: export
#include "events/listener.hpp"        // IWYU pragma: export
#include "runtime/thread_pool.hpp"    // IWYU pragma: export
#include "skel/engine.hpp"            // IWYU pragma: export
#include "skel/typed.hpp"             // IWYU pragma: export
#include "sm/tracker_set.hpp"         // IWYU pragma: export
#include "util/clock.hpp"             // IWYU pragma: export
