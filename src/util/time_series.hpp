#pragma once
// Thread-safe (time, value) series recorder.
//
// Used to log the number of active threads over wall-clock time: the exact
// data behind the paper's Figures 2, 5, 6 and 7 ("Number of Active Threads"
// vs "Wall Clock Time").

#include <mutex>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace askel {

struct Sample {
  TimePoint t = 0.0;
  double value = 0.0;
  friend bool operator==(const Sample&, const Sample&) = default;
};

/// Append-only series of samples. `record` is safe to call concurrently.
class TimeSeries {
 public:
  void record(TimePoint t, double value);
  /// Snapshot of all samples recorded so far, in insertion order.
  std::vector<Sample> samples() const;
  std::size_t size() const;
  void clear();

  /// Maximum value seen (0 if empty).
  double max_value() const;
  /// Value in effect at time `t` under step-function (sample-and-hold)
  /// semantics: the value of the latest sample with sample.t <= t.
  /// Returns `before` if no such sample exists.
  double value_at(TimePoint t, double before = 0.0) const;
  /// Time-weighted average of the step function over [t0, t1].
  double time_weighted_mean(TimePoint t0, TimePoint t1) const;

 private:
  mutable std::mutex mu_;
  std::vector<Sample> samples_;
};

/// Render a series as two-column CSV ("t,value\n" rows) with a header.
std::string to_csv(const std::vector<Sample>& samples, const std::string& t_name,
                   const std::string& v_name);

}  // namespace askel
