#include "util/time_series.hpp"

#include <algorithm>
#include <sstream>

namespace askel {

void TimeSeries::record(TimePoint t, double value) {
  std::lock_guard lock(mu_);
  samples_.push_back(Sample{t, value});
}

std::vector<Sample> TimeSeries::samples() const {
  std::lock_guard lock(mu_);
  return samples_;
}

std::size_t TimeSeries::size() const {
  std::lock_guard lock(mu_);
  return samples_.size();
}

void TimeSeries::clear() {
  std::lock_guard lock(mu_);
  samples_.clear();
}

double TimeSeries::max_value() const {
  std::lock_guard lock(mu_);
  double m = 0.0;
  for (const Sample& s : samples_) m = std::max(m, s.value);
  return m;
}

double TimeSeries::value_at(TimePoint t, double before) const {
  std::lock_guard lock(mu_);
  double v = before;
  for (const Sample& s : samples_) {
    if (s.t > t) break;
    v = s.value;
  }
  return v;
}

double TimeSeries::time_weighted_mean(TimePoint t0, TimePoint t1) const {
  if (t1 <= t0) return 0.0;
  const std::vector<Sample> snap = samples();
  double acc = 0.0;
  double cur = 0.0;
  TimePoint prev = t0;
  for (const Sample& s : snap) {
    if (s.t <= t0) {
      cur = s.value;
      continue;
    }
    const TimePoint upto = std::min(s.t, t1);
    if (upto > prev) {
      acc += cur * (upto - prev);
      prev = upto;
    }
    if (s.t >= t1) break;
    cur = s.value;
  }
  if (prev < t1) acc += cur * (t1 - prev);
  return acc / (t1 - t0);
}

std::string to_csv(const std::vector<Sample>& samples, const std::string& t_name,
                   const std::string& v_name) {
  std::ostringstream out;
  out << t_name << ',' << v_name << '\n';
  for (const Sample& s : samples) out << s.t << ',' << s.value << '\n';
  return out.str();
}

}  // namespace askel
