#include "util/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace askel {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table::add_row: column count mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
      out << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(width[c], '-') << (c + 1 == header_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      out << row[c] << (c + 1 == row.size() ? "\n" : ",");
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

}  // namespace askel
