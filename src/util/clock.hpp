#pragma once
// Clock abstraction used by every layer that reasons about time.
//
// The estimation and scheduling algorithms (est/, adg/, autonomic/) are pure
// functions of timestamps, so they can run either against the real
// steady clock (production) or a manually advanced clock (deterministic
// tests and the virtual-time reproduction of the paper's Figures 1 and 2).
//
// All timestamps are double seconds since an arbitrary epoch chosen at clock
// construction. Sub-microsecond precision is irrelevant at the granularity
// the paper works with (muscles run for milliseconds to seconds).

#include <atomic>
#include <chrono>
#include <memory>

namespace askel {

/// Seconds since a clock-local epoch.
using TimePoint = double;
/// Duration in seconds.
using Duration = double;

/// Interface for time sources. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in seconds since this clock's epoch. Monotone.
  virtual TimePoint now() const = 0;
};

/// Wall clock backed by std::chrono::steady_clock; epoch = construction time.
class SteadyClock final : public Clock {
 public:
  SteadyClock();
  TimePoint now() const override;

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Manually advanced clock for deterministic tests and virtual-time runs.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = 0.0);
  TimePoint now() const override;
  /// Jump to an absolute time. Must not move backwards.
  void set(TimePoint t);
  /// Advance by a non-negative delta.
  void advance(Duration d);

 private:
  std::atomic<double> t_;
};

/// Process-wide default real clock (lazily constructed, never destroyed
/// before exit). Library objects take a `const Clock*` and default to this.
const Clock& default_clock();

}  // namespace askel
