#include "util/zipf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace askel {

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be >= 1");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::operator()(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const double u = uni(rng);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t k) const {
  assert(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace askel
