#include "util/zipf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace askel {

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be >= 1");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::operator()(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  return rank(uni(rng));
}

std::size_t ZipfDistribution::rank(double u) const {
  // lower_bound returns end() when u exceeds every cumulative value. The
  // constructor pins cdf_.back() to exactly 1.0, but accumulated rounding in
  // CALLER arithmetic (and uniform_real_distribution implementations that
  // can emit the closed upper bound) still make u == 1.0 — or a hair above —
  // reachable; clamp instead of indexing one past the last rank.
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t k) const {
  assert(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

std::vector<double> ZipfDistribution::rates(double total) const {
  std::vector<double> out(cdf_.size());
  for (std::size_t k = 0; k < out.size(); ++k) out[k] = total * pmf(k);
  return out;
}

}  // namespace askel
