#pragma once
// Zipf-distributed integer sampler.
//
// The paper's evaluation counts hashtags and commented-users in 1.2 M tweets;
// real social-media token frequencies are Zipfian. The synthetic corpus
// (workload/tweets.*) uses this sampler so per-chunk work has realistic skew.

#include <cstdint>
#include <random>
#include <vector>

namespace askel {

/// Samples k in [0, n) with P(k) proportional to 1 / (k+1)^s.
/// Deterministic given the seed of the generator passed to operator().
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `s` is the skew exponent (s=0 degenerates to uniform).
  ZipfDistribution(std::size_t n, double s);

  std::size_t operator()(std::mt19937_64& rng) const;

  std::size_t n() const { return cdf_.size(); }
  double s() const { return s_; }

  /// Exact probability mass of rank k (for tests).
  double pmf(std::size_t k) const;

 private:
  double s_ = 1.0;
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace askel
