#pragma once
// Zipf-distributed integer sampler.
//
// The paper's evaluation counts hashtags and commented-users in 1.2 M tweets;
// real social-media token frequencies are Zipfian. The synthetic corpus
// (workload/tweets.*) uses this sampler so per-chunk work has realistic skew,
// and the service workload (workload/service.*) splits per-tenant request
// arrival rates by the same law — tenant popularity is Zipfian too.

#include <cstdint>
#include <random>
#include <vector>

namespace askel {

/// Samples k in [0, n) with P(k) proportional to 1 / (k+1)^s.
/// Deterministic given the seed of the generator passed to operator().
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `s` is the skew exponent (s=0 degenerates to uniform).
  ZipfDistribution(std::size_t n, double s);

  std::size_t operator()(std::mt19937_64& rng) const;

  /// Rank for a uniform draw `u`. The cumulative sum is built in floating
  /// point, so the last bin is pinned to exactly 1.0 AND the search result is
  /// clamped: even a draw at (or, through caller arithmetic, fractionally
  /// above) 1.0 maps to the last rank instead of falling past the table.
  std::size_t rank(double u) const;

  std::size_t n() const { return cdf_.size(); }
  double s() const { return s_; }

  /// Exact probability mass of rank k (for tests).
  double pmf(std::size_t k) const;

  /// Per-rank split of an aggregate arrival rate: rate_k = total * pmf(k).
  /// Deterministic (built from the exact pmf, no sampling) — the service
  /// workload uses this to skew per-tenant request rates by popularity.
  std::vector<double> rates(double total) const;

 private:
  double s_ = 1.0;
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace askel
