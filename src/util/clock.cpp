#include "util/clock.hpp"

#include <cassert>

namespace askel {

SteadyClock::SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}

TimePoint SteadyClock::now() const {
  const auto d = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(d).count();
}

ManualClock::ManualClock(TimePoint start) : t_(start) {}

TimePoint ManualClock::now() const { return t_.load(std::memory_order_acquire); }

void ManualClock::set(TimePoint t) {
  assert(t >= t_.load(std::memory_order_relaxed) && "ManualClock must not go backwards");
  t_.store(t, std::memory_order_release);
}

void ManualClock::advance(Duration d) {
  assert(d >= 0.0);
  t_.store(t_.load(std::memory_order_relaxed) + d, std::memory_order_release);
}

const Clock& default_clock() {
  static const SteadyClock clock;
  return clock;
}

}  // namespace askel
