#pragma once
// Minimal CSV/fixed-width table rendering used by the figure harnesses in
// bench/ to print the same rows/series the paper's figures plot.

#include <string>
#include <vector>

namespace askel {

/// A simple table: a header row plus data rows. Cells are pre-formatted.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render as aligned fixed-width text (for human-readable bench output).
  std::string to_text() const;
  /// Render as CSV.
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` digits after the decimal point.
std::string fmt(double v, int prec = 2);

/// JSON boolean literal (shared by the bench binaries that emit JSON).
inline const char* json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace askel
