#include "autonomic/arbitration.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

namespace askel {

void DeadlinePressurePolicy::arbitrate(int budget,
                                       const std::vector<TenantDemand>& demands,
                                       std::vector<int>& grants) const {
  // Pressure order: widest relative goal miss first; ties go to the
  // earlier-registered tenant (demands arrive in registration order, and the
  // sort is stable — identical to the PR 2 in-coordinator sort).
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return demands[a].pressure > demands[b].pressure;
                   });

  // Pass 1 — floor: one thread each, in pressure order, while budget lasts
  // (progress for every tenant the budget can possibly cover). Pass 2 —
  // top-up toward each tenant's desired LP, again in pressure order, so
  // contested LP goes to the widest relative miss.
  int remaining = budget;
  for (const std::size_t i : order) {
    if (remaining == 0) break;
    grants[i] = 1;
    --remaining;
  }
  for (const std::size_t i : order) {
    if (remaining == 0) break;
    const int want = std::min(demands[i].desired, budget) - grants[i];
    const int add = std::min(want, remaining);
    if (add > 0) {
      grants[i] += add;
      remaining -= add;
    }
  }
}

namespace {

/// Shared water-fill core: floors one unit at a time in descending
/// (weight, pressure, order) priority, then repeatedly +1 to the unsatisfied
/// item with the lowest grant/weight ratio (ties toward higher pressure, then
/// earlier order), so steady-state grants are proportional to weight, capped
/// at desired. Returns the unspent remainder.
struct FillItem {
  int desired = 0;
  int weight = 1;
  double pressure = 0.0;
};

int water_fill(int budget, const std::vector<FillItem>& items,
               std::vector<int>& out) {
  out.assign(items.size(), 0);
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (items[a].weight != items[b].weight) {
                       return items[a].weight > items[b].weight;
                     }
                     return items[a].pressure > items[b].pressure;
                   });
  int remaining = budget;
  for (const std::size_t i : order) {
    if (remaining == 0) break;
    if (items[i].desired <= 0) continue;
    out[i] = 1;
    --remaining;
  }
  while (remaining > 0) {
    std::size_t pick = items.size();
    double pick_ratio = 0.0;
    for (const std::size_t i : order) {
      if (out[i] >= std::min(items[i].desired, budget)) continue;
      const double ratio = static_cast<double>(out[i]) /
                           static_cast<double>(std::max(1, items[i].weight));
      if (pick == items.size() || ratio < pick_ratio) {
        pick = i;
        pick_ratio = ratio;
      }
    }
    if (pick == items.size()) break;  // everyone capped at desired
    ++out[pick];
    --remaining;
  }
  return remaining;
}

}  // namespace

void WeightedSharePolicy::arbitrate(int budget,
                                    const std::vector<TenantDemand>& demands,
                                    std::vector<int>& grants) const {
  // Floors in weight order (ties: pressure, then registration order) — when
  // the budget cannot even cover one thread each, the heavier classes win.
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (demands[a].weight != demands[b].weight) {
                       return demands[a].weight > demands[b].weight;
                     }
                     return demands[a].pressure > demands[b].pressure;
                   });
  int remaining = budget;
  for (const std::size_t i : order) {
    if (remaining == 0) break;
    grants[i] = 1;
    --remaining;
  }
  // Water-fill one thread at a time to the unsatisfied tenant with the
  // lowest grant/weight ratio: steady-state grants converge to
  // budget * weight / total_weight, capped at desired (the freed share then
  // flows to the remaining classes). O(budget * tenants) — both are small.
  while (remaining > 0) {
    std::size_t pick = demands.size();
    double pick_ratio = 0.0;
    for (const std::size_t i : order) {
      if (grants[i] >= std::min(demands[i].desired, budget)) continue;
      const double ratio = static_cast<double>(grants[i]) /
                           static_cast<double>(std::max(1, demands[i].weight));
      if (pick == demands.size() || ratio < pick_ratio) {
        pick = i;
        pick_ratio = ratio;
      }
    }
    if (pick == demands.size()) break;  // everyone capped at desired
    ++grants[pick];
    --remaining;
  }
}

void GroupedArbitrationPolicy::arbitrate(
    int budget, const std::vector<TenantDemand>& demands,
    std::vector<int>& grants) const {
  // Level 1 — group the demand rows. A real group (id > 0) aggregates its
  // members; an ungrouped tenant is its own singleton group carrying its
  // tenant weight, so all-ungrouped vectors reduce to WeightedSharePolicy.
  struct Group {
    std::vector<std::size_t> members;
    FillItem item;  // desired = sum of member desired, weight = group weight
  };
  std::vector<Group> groups;
  std::unordered_map<int, std::size_t> by_id;  // group id > 0 -> groups index
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const TenantDemand& d = demands[i];
    std::size_t gi;
    if (d.group > 0) {
      const auto [it, inserted] = by_id.try_emplace(d.group, groups.size());
      gi = it->second;
      if (inserted) {
        groups.push_back(Group{});
        groups[gi].item.weight = std::max(1, d.group_weight);
      }
    } else {
      gi = groups.size();
      groups.push_back(Group{});
      groups[gi].item.weight = std::max(1, d.weight);
    }
    Group& g = groups[gi];
    g.members.push_back(i);
    g.item.desired =
        std::min(budget, g.item.desired + std::min(d.desired, budget));
    g.item.pressure = std::max(g.item.pressure, d.pressure);
  }

  // Level 2 — water-fill the budget across groups by group weight...
  std::vector<FillItem> group_items;
  group_items.reserve(groups.size());
  for (const Group& g : groups) group_items.push_back(g.item);
  std::vector<int> group_budget;
  water_fill(budget, group_items, group_budget);

  // ...then each group's share among its members by member weight.
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const Group& g = groups[gi];
    std::vector<FillItem> members(g.members.size());
    for (std::size_t k = 0; k < g.members.size(); ++k) {
      const TenantDemand& d = demands[g.members[k]];
      members[k] = FillItem{std::min(d.desired, budget), std::max(1, d.weight),
                            d.pressure};
    }
    std::vector<int> member_grants;
    water_fill(group_budget[gi], members, member_grants);
    for (std::size_t k = 0; k < g.members.size(); ++k) {
      grants[g.members[k]] = member_grants[k];
    }
  }
}

AdaptiveWeightPolicy::AdaptiveWeightPolicy()
    : AdaptiveWeightPolicy(Config{}) {}

AdaptiveWeightPolicy::AdaptiveWeightPolicy(
    Config cfg, std::unique_ptr<ArbitrationPolicy> inner)
    : cfg_(cfg),
      inner_(inner != nullptr ? std::move(inner)
                              : std::make_unique<WeightedSharePolicy>()) {}

void AdaptiveWeightPolicy::arbitrate(int budget,
                                     const std::vector<TenantDemand>& demands,
                                     std::vector<int>& grants) const {
  // Update the boost table from this round's reported pressures, rebuilding
  // it from scratch so entries for tenants no longer in the demand vector
  // are dropped — the table stays O(armed) however many ids ever existed.
  std::unordered_map<int, double> next;
  next.reserve(demands.size());
  std::vector<TenantDemand> boosted = demands;
  for (TenantDemand& d : boosted) {
    double b = 1.0;
    if (const auto it = boosts_.find(d.tenant); it != boosts_.end()) {
      b = it->second;
    }
    if (d.pressure > cfg_.miss_threshold) {
      b += cfg_.step * std::min(d.pressure, 2.0);
    } else {
      b -= cfg_.decay;
    }
    b = std::clamp(b, 1.0, std::max(1.0, cfg_.max_boost));
    next.emplace(d.tenant, b);
    d.weight = std::max(1, static_cast<int>(std::lround(d.weight * b)));
    // An ungrouped tenant's group weight IS its tenant weight; grouped
    // tenants keep their group's weight and the boost shifts shares within
    // the group only.
    if (d.group == 0) d.group_weight = d.weight;
  }
  boosts_ = std::move(next);
  inner_->arbitrate(budget, boosted, grants);
}

double AdaptiveWeightPolicy::boost(int tenant) const {
  const auto it = boosts_.find(tenant);
  return it == boosts_.end() ? 1.0 : it->second;
}

}  // namespace askel
