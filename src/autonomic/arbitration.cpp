#include "autonomic/arbitration.hpp"

#include <algorithm>
#include <numeric>

namespace askel {

void DeadlinePressurePolicy::arbitrate(int budget,
                                       const std::vector<TenantDemand>& demands,
                                       std::vector<int>& grants) const {
  // Pressure order: widest relative goal miss first; ties go to the
  // earlier-registered tenant (demands arrive in registration order, and the
  // sort is stable — identical to the PR 2 in-coordinator sort).
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return demands[a].pressure > demands[b].pressure;
                   });

  // Pass 1 — floor: one thread each, in pressure order, while budget lasts
  // (progress for every tenant the budget can possibly cover). Pass 2 —
  // top-up toward each tenant's desired LP, again in pressure order, so
  // contested LP goes to the widest relative miss.
  int remaining = budget;
  for (const std::size_t i : order) {
    if (remaining == 0) break;
    grants[i] = 1;
    --remaining;
  }
  for (const std::size_t i : order) {
    if (remaining == 0) break;
    const int want = std::min(demands[i].desired, budget) - grants[i];
    const int add = std::min(want, remaining);
    if (add > 0) {
      grants[i] += add;
      remaining -= add;
    }
  }
}

void WeightedSharePolicy::arbitrate(int budget,
                                    const std::vector<TenantDemand>& demands,
                                    std::vector<int>& grants) const {
  // Floors in weight order (ties: pressure, then registration order) — when
  // the budget cannot even cover one thread each, the heavier classes win.
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (demands[a].weight != demands[b].weight) {
                       return demands[a].weight > demands[b].weight;
                     }
                     return demands[a].pressure > demands[b].pressure;
                   });
  int remaining = budget;
  for (const std::size_t i : order) {
    if (remaining == 0) break;
    grants[i] = 1;
    --remaining;
  }
  // Water-fill one thread at a time to the unsatisfied tenant with the
  // lowest grant/weight ratio: steady-state grants converge to
  // budget * weight / total_weight, capped at desired (the freed share then
  // flows to the remaining classes). O(budget * tenants) — both are small.
  while (remaining > 0) {
    std::size_t pick = demands.size();
    double pick_ratio = 0.0;
    for (const std::size_t i : order) {
      if (grants[i] >= std::min(demands[i].desired, budget)) continue;
      const double ratio = static_cast<double>(grants[i]) /
                           static_cast<double>(std::max(1, demands[i].weight));
      if (pick == demands.size() || ratio < pick_ratio) {
        pick = i;
        pick_ratio = ratio;
      }
    }
    if (pick == demands.size()) break;  // everyone capped at desired
    ++grants[pick];
    --remaining;
  }
}

}  // namespace askel
