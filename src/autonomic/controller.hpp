#pragma once
// AutonomicController: closes the MAPE loop.
//
// Monitor  — the TrackerSet listener mirrors the execution (events);
// Analyze  — on every After-muscle event the controller snapshots the ADG and
//            estimates best-effort / limited-LP completion times;
// Plan     — decision.cpp picks the LP;
// Execute  — ResizableThreadPool::set_target_lp applies it immediately.
//
// The controller is itself an event listener, so the adaptation targets "the
// currently evaluated instance, and not the next execution of the whole
// problem" (paper §4).
//
// Sharded mode: N controllers — one per skeleton/tenant, each with its own
// TrackerSet and goal — share one pool. Call bind_coordinator() before arm()
// and the Execute step goes through the LpBudgetCoordinator (allocation
// requests) instead of pool.set_target_lp; the controller then plans against
// its granted share rather than the pool-wide target. Unbound, behavior is
// identical to the single-controller original.
//
// Service (SLO) mode: arm_slo() arms with a tail-latency goal instead of a
// deadline. The Monitor step is then record_latency() — completed requests
// feed a per-tenant P² tail tracker — and the Plan step is decide_slo():
// grants respond to tail pressure (relative p99 miss) continuously, for as
// long as the stream runs, instead of once per batch deadline. Skeleton
// events still trigger evaluations while armed in SLO mode, but every
// evaluation plans from the tail tracker, never the ADG.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "autonomic/coordinator.hpp"
#include "autonomic/decision.hpp"
#include "autonomic/goals.hpp"
#include "est/registry.hpp"
#include "events/event_bus.hpp"
#include "runtime/thread_pool.hpp"
#include "sm/tracker_set.hpp"

namespace askel {

struct ControllerConfig {
  DecisionConfig decision;
  /// SLO-mode decision knobs (used only after arm_slo).
  SloDecisionConfig slo;
  /// Minimum wall-clock spacing between evaluations (0 = evaluate on every
  /// qualifying event; matches the paper's per-event reactivity).
  Duration min_interval = 0.0;
};

class AutonomicController {
 public:
  AutonomicController(ResizableThreadPool& pool, TrackerSet& trackers,
                      const Clock* clock = &default_clock(),
                      ControllerConfig cfg = {});

  /// Route LP changes through `coord` as tenant `tenant` (a registered id,
  /// >= 1; an invalid id leaves the controller unbound). Call before arm();
  /// while armed the binding is fixed. Passing nullptr unbinds (back to
  /// direct pool actuation).
  void bind_coordinator(LpBudgetCoordinator* coord, int tenant);

  /// SLA class weight (>= 1, default 1) forwarded to the coordinator's
  /// WeightedSharePolicy; a no-op while unbound (and under policies that
  /// ignore weights). May be called before bind_coordinator — the weight is
  /// forwarded at bind time.
  void set_sla_weight(int weight);

  /// Hierarchical tenant group (>= 1; 0 = ungrouped, the default) forwarded
  /// to the coordinator's GroupedArbitrationPolicy. Same rules as the SLA
  /// weight: a no-op while unbound, forwarded at bind time when set earlier.
  void set_tenant_group(int group);

  /// Arm with a WCT goal anchored at `clock.now()`. `max_lp` 0 = pool max
  /// (or the coordinator budget when bound). When bound, arming claims an
  /// initial allocation from the coordinator. Returns false — and stays
  /// DISARMED, with one kInvalidGoal marker action — when the goal fails
  /// validate_goals (zero/negative/non-finite): a degenerate deadline would
  /// otherwise feed unbounded pressure into shared arbitration and starve
  /// every honest tenant sharing the coordinator.
  bool arm(Duration wct_goal_seconds, int max_lp = 0);
  /// Arm with a tail-latency SLO: "quantile(q) of request latency stays
  /// under tail_goal_seconds". Same validation contract as arm(). A fresh
  /// tail tracker is created per arm (a new goal starts a new measurement);
  /// feed it with record_latency() as requests complete.
  bool arm_slo(Duration tail_goal_seconds, int max_lp = 0, double quantile = 0.99);
  /// Arm with an explicit goal struct (the general form behind both).
  bool arm_goals(const QoSGoals& goals);
  /// Disarm. When bound, releases this tenant's allocation back to the
  /// budget (the coordinator re-arbitrates survivors immediately).
  void disarm();
  bool armed() const;
  TimePoint goal_abs() const;
  /// The armed goal (meaningful while armed; kWct by default).
  QoSGoals goals() const;

  /// SLO mode: fold in one completed request's latency (seconds) and — when
  /// the evaluation throttle allows — re-plan from the updated tail. Safe to
  /// call from any thread (typically the worker completing the request);
  /// a no-op unless armed in SLO mode.
  void record_latency(Duration latency);
  /// SLO mode: consistent view of the tail tracker (zeros when not in SLO
  /// mode or never armed).
  TailSnapshot tail_snapshot() const;
  /// SLO mode: fraction of recorded requests meeting the armed tail goal
  /// (1.0 when none recorded / not in SLO mode).
  double slo_attainment() const;

  /// Listener adapter; register AFTER the TrackerSet listener so the tracker
  /// has ingested an event before the controller evaluates it.
  EventBus::ListenerPtr as_listener();

  /// Feed one event (normally via the bus).
  void on_event(const Event& ev);

  /// Force one evaluation now (used by tests and by callers with their own
  /// triggering policy).
  Decision evaluate_now();

  /// One record per applied LP change.
  struct Action {
    TimePoint t = 0.0;
    int from_lp = 0;
    int to_lp = 0;
    DecisionReason reason = DecisionReason::kNoChange;
    TimePoint best_effort_wct = 0.0;
    TimePoint current_lp_wct = 0.0;
  };
  std::vector<Action> actions() const;
  long evaluations() const;

 private:
  Decision evaluate_locked(TimePoint now);
  int effective_max_lp() const;
  int current_lp_locked() const;

  ResizableThreadPool& pool_;
  TrackerSet& trackers_;
  const Clock* clock_;
  ControllerConfig cfg_;
  LpBudgetCoordinator* coord_ = nullptr;
  int tenant_ = 0;
  int sla_weight_ = 1;
  int group_ = 0;

  mutable std::mutex mu_;
  bool armed_ = false;
  QoSGoals goals_;
  TimePoint goal_abs_ = 0.0;
  int max_lp_goal_ = 0;
  /// SLO-mode sensor; rebuilt on every arm_slo (null in WCT mode). Shared
  /// ptr so record_latency can take a reference without holding mu_ across
  /// the (internally locked) tracker update.
  std::shared_ptr<TailTracker> tail_;
  TimePoint last_eval_ = -1.0;
  /// Pool provision-failure counter at the last evaluation (seeded at arm):
  /// an advance means a grow this controller planned (or shared the pool
  /// with) never materialized — surfaced as one kProvisionFailed action.
  std::uint64_t provision_failures_seen_ = 0;
  DecisionReason last_reason_ = DecisionReason::kEmptySnapshot;
  long evaluations_ = 0;
  std::vector<Action> actions_;
};

}  // namespace askel
