#pragma once
// AutonomicController: closes the MAPE loop.
//
// Monitor  — the TrackerSet listener mirrors the execution (events);
// Analyze  — on every After-muscle event the controller snapshots the ADG and
//            estimates best-effort / limited-LP completion times;
// Plan     — decision.cpp picks the LP;
// Execute  — ResizableThreadPool::set_target_lp applies it immediately.
//
// The controller is itself an event listener, so the adaptation targets "the
// currently evaluated instance, and not the next execution of the whole
// problem" (paper §4).

#include <mutex>
#include <vector>

#include "autonomic/decision.hpp"
#include "autonomic/goals.hpp"
#include "est/registry.hpp"
#include "events/event_bus.hpp"
#include "runtime/thread_pool.hpp"
#include "sm/tracker_set.hpp"

namespace askel {

struct ControllerConfig {
  DecisionConfig decision;
  /// Minimum wall-clock spacing between evaluations (0 = evaluate on every
  /// qualifying event; matches the paper's per-event reactivity).
  Duration min_interval = 0.0;
};

class AutonomicController {
 public:
  AutonomicController(ResizableThreadPool& pool, TrackerSet& trackers,
                      const Clock* clock = &default_clock(),
                      ControllerConfig cfg = {});

  /// Arm with a WCT goal anchored at `clock.now()`. `max_lp` 0 = pool max.
  void arm(Duration wct_goal_seconds, int max_lp = 0);
  void disarm();
  bool armed() const;
  TimePoint goal_abs() const;

  /// Listener adapter; register AFTER the TrackerSet listener so the tracker
  /// has ingested an event before the controller evaluates it.
  EventBus::ListenerPtr as_listener();

  /// Feed one event (normally via the bus).
  void on_event(const Event& ev);

  /// Force one evaluation now (used by tests and by callers with their own
  /// triggering policy).
  Decision evaluate_now();

  /// One record per applied LP change.
  struct Action {
    TimePoint t = 0.0;
    int from_lp = 0;
    int to_lp = 0;
    DecisionReason reason = DecisionReason::kNoChange;
    TimePoint best_effort_wct = 0.0;
    TimePoint current_lp_wct = 0.0;
  };
  std::vector<Action> actions() const;
  long evaluations() const;

 private:
  Decision evaluate_locked(TimePoint now);
  int effective_max_lp() const;

  ResizableThreadPool& pool_;
  TrackerSet& trackers_;
  const Clock* clock_;
  ControllerConfig cfg_;

  mutable std::mutex mu_;
  bool armed_ = false;
  TimePoint goal_abs_ = 0.0;
  int max_lp_goal_ = 0;
  TimePoint last_eval_ = -1.0;
  DecisionReason last_reason_ = DecisionReason::kEmptySnapshot;
  long evaluations_ = 0;
  std::vector<Action> actions_;
};

}  // namespace askel
