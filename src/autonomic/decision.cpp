#include "autonomic/decision.hpp"

#include <algorithm>
#include <cmath>

#include "adg/best_effort.hpp"
#include "adg/limited_lp.hpp"
#include "adg/timeline.hpp"

namespace askel {

std::string to_string(DecisionReason r) {
  switch (r) {
    case DecisionReason::kNoChange: return "no-change";
    case DecisionReason::kIncompleteEstimates: return "incomplete-estimates";
    case DecisionReason::kEmptySnapshot: return "empty-snapshot";
    case DecisionReason::kUnachievableRamp: return "unachievable-ramp";
    case DecisionReason::kIncreaseToGoal: return "increase-to-goal";
    case DecisionReason::kIncreaseSaturated: return "increase-saturated";
    case DecisionReason::kDecreaseHalf: return "decrease-half";
    case DecisionReason::kDisarmed: return "disarmed";
    case DecisionReason::kProvisionFailed: return "provision-failed";
    case DecisionReason::kInvalidGoal: return "invalid-goal";
    case DecisionReason::kSloIncrease: return "slo-increase";
    case DecisionReason::kSloDecrease: return "slo-decrease";
  }
  return "?";
}

Decision decide(const AdgSnapshot& g, TimePoint goal_abs, int current_lp,
                int max_lp, const DecisionConfig& cfg) {
  Decision d;
  d.new_lp = current_lp;
  if (g.activities.empty()) {
    d.reason = DecisionReason::kEmptySnapshot;
    return d;
  }
  if (!g.complete_estimates) {
    // "The system has to wait until all muscles have been executed at least
    // once" (or been initialized) before it can reason about the future.
    d.reason = DecisionReason::kIncompleteEstimates;
    return d;
  }

  const Schedule be = best_effort(g);
  d.best_effort_wct = be.wct;
  d.optimal_lp = std::max(1, peak_concurrency(concurrency_profile(be)));
  d.current_lp_wct = estimate_wct(g, current_lp, cfg.wct_algorithm);

  if (be.wct > goal_abs) {
    // Even infinite parallelism misses the goal: allocate toward the optimal
    // LP (more threads than that cannot help), ramping so that refining
    // estimates keep the allocation honest. The allocation always covers the
    // READY frontier — pending activities that could start right now — since
    // serializing ready work would lengthen the critical path for certain
    // (the paper's §5 discussion of the "extra split execution" worst case).
    int ready_width = 0;
    for (const Activity& a : g.activities) {
      if (a.state == ActivityState::kRunning) {
        ++ready_width;
        continue;
      }
      if (a.state != ActivityState::kPending) continue;
      bool ready = true;
      for (const int p : a.preds) {
        if (g.activities[p].state != ActivityState::kDone) {
          ready = false;
          break;
        }
      }
      ready_width += ready;
    }
    const int target = std::min(d.optimal_lp, max_lp);
    int next = target;
    if (cfg.ramp_factor > 1) {
      next = std::min(target, std::max({current_lp + 1,
                                        current_lp * cfg.ramp_factor,
                                        ready_width}));
    }
    if (next > current_lp) {
      d.new_lp = next;
      d.reason = DecisionReason::kUnachievableRamp;
    } else {
      d.reason = DecisionReason::kNoChange;
    }
    return d;
  }

  if (d.current_lp_wct > goal_abs) {
    // Achievable with more threads: smallest LP that meets the goal.
    // (Limited-LP WCT is non-increasing in LP under the paper's assumption
    // of non-strictly-increasing speedup, so first hit = smallest.)
    for (int k = current_lp + 1; k <= max_lp; ++k) {
      if (estimate_wct(g, k, cfg.wct_algorithm) <= goal_abs) {
        d.new_lp = k;
        d.reason = DecisionReason::kIncreaseToGoal;
        return d;
      }
    }
    d.new_lp = std::max(current_lp, std::min(d.optimal_lp, max_lp));
    d.reason = d.new_lp > current_lp ? DecisionReason::kIncreaseSaturated
                                     : DecisionReason::kNoChange;
    return d;
  }

  if (cfg.allow_decrease && current_lp > 1) {
    const int half = std::max(1, current_lp / 2);
    if (estimate_wct(g, half, cfg.wct_algorithm) <= goal_abs) {
      d.new_lp = half;
      d.reason = DecisionReason::kDecreaseHalf;
      return d;
    }
  }
  d.reason = DecisionReason::kNoChange;
  return d;
}

double goal_pressure(const Decision& d, TimePoint goal_abs, TimePoint now) {
  if (d.current_lp_wct <= 0.0) return 0.0;  // warming up: no estimate yet
  // A goal already in the past compresses the window to epsilon: any
  // remaining work produces very high (but finite) pressure. Clamped so a
  // degenerate window cannot push effectively-infinite pressure into a
  // shared coordinator's arbitration (arm() additionally rejects zero/
  // negative goals outright — this is the defense in depth behind it).
  const double remaining = std::max(goal_abs - now, 1e-9);
  return std::clamp((d.current_lp_wct - goal_abs) / remaining, -kMaxPressure,
                    kMaxPressure);
}

Decision decide_slo(const TailSnapshot& t, Duration tail_goal, int current_lp,
                    int max_lp, const SloDecisionConfig& cfg) {
  Decision d;
  d.new_lp = current_lp;
  // Reused columns: "best effort" carries the median, "current LP" the tail —
  // the two latency estimates the decision was made from.
  d.best_effort_wct = t.median;
  d.current_lp_wct = t.tail;
  if (!(tail_goal > 0.0)) {
    d.reason = DecisionReason::kInvalidGoal;
    return d;
  }
  if (t.observations == 0) {
    d.reason = DecisionReason::kEmptySnapshot;
    return d;
  }
  if (t.observations < cfg.min_observations) {
    d.reason = DecisionReason::kIncompleteEstimates;
    return d;
  }

  if (t.tail > tail_goal) {
    // Missing the SLO: grow proportionally to the relative miss (a tail at
    // 2x the goal wants ~2x the service capacity), at least one thread,
    // capped by the multiplicative ramp and the LP ceiling.
    const double ratio = t.tail / tail_goal;
    const int proportional = static_cast<int>(
        std::ceil(static_cast<double>(current_lp) * std::min(
            ratio, static_cast<double>(std::max(1, cfg.ramp_factor)))));
    const int next = std::min(max_lp, std::max(current_lp + 1, proportional));
    if (next > current_lp) {
      d.new_lp = next;
      d.reason = DecisionReason::kSloIncrease;
    } else {
      d.reason = DecisionReason::kNoChange;  // already at the ceiling
    }
    return d;
  }

  if (current_lp > 1 && t.tail < cfg.decrease_margin * tail_goal) {
    // Comfortably under the SLO: release half, mirroring the paper's
    // deliberately-slower decrease path.
    d.new_lp = std::max(1, current_lp / 2);
    d.reason = DecisionReason::kSloDecrease;
    return d;
  }

  d.reason = DecisionReason::kNoChange;
  return d;
}

double slo_pressure(const TailSnapshot& t, Duration tail_goal) {
  if (!(tail_goal > 0.0) || t.observations == 0) return 0.0;
  return std::clamp((t.tail - tail_goal) / tail_goal, -kMaxPressure,
                    kMaxPressure);
}

}  // namespace askel
