#pragma once
// QoS goals supported by the autonomic layer (paper §4): Wall Clock Time and
// Level of Parallelism. "If the system realizes that it won't target the WCT
// goal with the current LP, but it will do if the LP is increased, it
// autonomically increases the LP... To avoid potential overloading of the
// system, it is possible to define a maximum LP."

#include <optional>

#include "util/clock.hpp"

namespace askel {

struct QoSGoals {
  /// Desired wall-clock time for one skeleton execution, in seconds relative
  /// to the moment the controller is armed.
  Duration wct_goal = 0.0;
  /// Hard LP ceiling. 0 means "use the pool's max_lp".
  int max_lp = 0;
};

}  // namespace askel
