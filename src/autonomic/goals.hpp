#pragma once
// QoS goals supported by the autonomic layer.
//
// Batch goals (paper §4): Wall Clock Time and Level of Parallelism. "If the
// system realizes that it won't target the WCT goal with the current LP, but
// it will do if the LP is increased, it autonomically increases the LP... To
// avoid potential overloading of the system, it is possible to define a
// maximum LP."
//
// Service goals (PR 9): a continuously running tenant serving an open-loop
// request stream has no single completion time to target — its goal is a
// latency SLO, "the q-quantile (default p99) of per-request latency stays
// under T seconds", evaluated by a streaming tail tracker while the stream
// runs. The controller then plans LP from tail pressure instead of a
// deadline (see decide_slo in decision.hpp).

#include <cmath>
#include <optional>

#include "util/clock.hpp"

namespace askel {

enum class GoalKind : int {
  /// One batch execution must finish within wct_goal seconds of arming.
  kWct = 0,
  /// The tail_quantile of per-request latency must stay under tail_goal.
  kTailLatency = 1,
};

struct QoSGoals {
  GoalKind kind = GoalKind::kWct;
  /// Desired wall-clock time for one skeleton execution, in seconds relative
  /// to the moment the controller is armed (kWct).
  Duration wct_goal = 0.0;
  /// Target tail latency in seconds (kTailLatency): the SLO is
  /// "quantile(tail_quantile) of request latency <= tail_goal".
  Duration tail_goal = 0.0;
  /// Which latency quantile the SLO constrains (kTailLatency), in (0,1).
  double tail_quantile = 0.99;
  /// Hard LP ceiling. 0 means "use the pool's max_lp".
  int max_lp = 0;
};

/// nullptr when `g` is a goal the controller can arm with; otherwise a static
/// string naming the defect. A zero/negative (or non-finite) time goal is
/// rejected here rather than clamped downstream: it would otherwise compress
/// the pressure denominator to epsilon and feed effectively unbounded
/// pressure into a shared coordinator's arbitration, starving every honest
/// tenant (see the zero-goal regression tests).
inline const char* validate_goals(const QoSGoals& g) {
  if (g.max_lp < 0) return "max_lp must be >= 0";
  switch (g.kind) {
    case GoalKind::kWct:
      if (!(g.wct_goal > 0.0) || !std::isfinite(g.wct_goal))
        return "wct_goal must be a positive, finite duration";
      return nullptr;
    case GoalKind::kTailLatency:
      if (!(g.tail_goal > 0.0) || !std::isfinite(g.tail_goal))
        return "tail_goal must be a positive, finite duration";
      if (!(g.tail_quantile > 0.0 && g.tail_quantile < 1.0))
        return "tail_quantile must be in (0,1)";
      return nullptr;
  }
  return "unknown goal kind";
}

}  // namespace askel
