#pragma once
// Deterministic arbitration-quality harness for the policy family.
//
// The PR 4 estimator harness (est/quality.hpp) grades estimators by replaying
// a seeded duration stream; this is the same idea one layer up. A seeded
// tenant-demand trace — per-round desired LP and goal pressure for a small
// armed population with drifting load — is replayed through each
// ArbitrationPolicy against a fixed budget, and the resulting grants are
// scored: how often did a pressured tenant come up short, how far short, and
// how much did grants churn round to round. Identical seeds give identical
// traces and therefore an identical score per policy, so tests can anchor on
// the ranking (the adaptive policy must beat its static inner policy on miss
// rate for the default trace) without any tolerance games.
//
// Pressure feedback: a tenant granted less than it desired while pressured
// stays pressured next round (its backlog did not clear); a fully granted
// tenant's pressure decays. That closed loop is what gives an adaptive policy
// something to learn from — under a static policy the same starving tenant
// misses every round.

#include <cstdint>
#include <memory>
#include <vector>

#include "autonomic/arbitration.hpp"

namespace askel {

/// One round of the replay: the demand vector the coordinator would have
/// assembled from its active set.
struct DemandRound {
  std::vector<TenantDemand> demands;
};

/// One policy's arbitration quality over a replayed trace.
struct PolicyQuality {
  std::string policy;
  long rounds = 0;
  long pressured_rows = 0;   // rows arbitrated with pressure > 0
  long misses = 0;           // pressured rows granted less than desired
  double miss_rate = 0.0;    // misses / pressured_rows (0 when none)
  double mean_shortfall = 0.0;  // mean (desired - grant) over misses, in LP
  double churn = 0.0;        // mean |grant - previous grant| per row
};

/// Deterministic demand trace: `tenants` tenants share a budget under
/// piecewise-constant load regimes (shifts every ~16 rounds) with one
/// designated "bursty" tenant whose desired LP spikes several-fold for short
/// windows. Pressure starts proportional to unmet demand and then evolves via
/// the feedback rule in replay_policy. Same seed, same trace.
std::vector<DemandRound> demand_trace(std::uint64_t seed, int tenants,
                                      int rounds, int budget);

/// Replay `trace` through `policy` against `budget`, closing the pressure
/// feedback loop (shortfall sustains pressure, full grants decay it), and
/// score the grants. The policy may be stateful (AdaptiveWeightPolicy) — a
/// fresh instance per replay keeps runs independent.
PolicyQuality replay_policy(ArbitrationPolicy& policy, int budget,
                            const std::vector<DemandRound>& trace);

/// Replay the trace under every policy and return qualities sorted by
/// miss_rate ascending, ties by mean_shortfall then by input order (stable,
/// so the ranking is deterministic for a fixed seed).
std::vector<PolicyQuality> rank_policies(
    const std::vector<ArbitrationPolicy*>& policies, int budget,
    const std::vector<DemandRound>& trace);

}  // namespace askel
