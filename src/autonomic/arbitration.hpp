#pragma once
// ArbitrationPolicy: how the LP-budget coordinator splits a contested budget
// between armed tenants. Pulled out of the coordinator so alternatives can be
// A/B'd on bench/multi_tenant (--policy) without touching the grant
// bookkeeping, history, pool installation or preemption-hold logic — those
// stay in LpBudgetCoordinator, which calls exactly one policy per
// arbitration.
//
// A policy is a deterministic function of the demand vector, unit-testable
// without threads. Four ship:
//  * DeadlinePressurePolicy — PR 2's behavior, verbatim: 1-thread floor in
//    pressure order while the budget lasts, then top-up toward each tenant's
//    desired LP, widest relative goal miss first;
//  * WeightedSharePolicy — SLA classes: floors by weight, then water-fill one
//    thread at a time to the tenant with the lowest grant/weight ratio, so
//    steady-state grants are proportional to weight (capped at desired, with
//    leftovers redistributed). Unlike pressure, a tenant cannot game it by
//    inflating its own reported miss.
//  * GroupedArbitrationPolicy — hierarchical: the budget is water-filled
//    across tenant GROUPS by group weight first, then each group's share is
//    water-filled among its members by member weight (pressure breaks ties).
//    An ungrouped tenant (group 0) is its own singleton group weighted by its
//    tenant weight, so an all-ungrouped demand vector arbitrates exactly like
//    WeightedSharePolicy — the ungrouped path is unchanged by construction.
//  * AdaptiveWeightPolicy — nudges per-tenant effective weights from goal-miss
//    history (pressure > 0 across consecutive arbitrations boosts a tenant's
//    weight, slack decays it back to the configured base) and delegates to an
//    inner policy (default WeightedSharePolicy). Deterministic: the boost
//    table is a pure function of the arbitrate() call sequence. The only
//    stateful member — the coordinator serializes arbitrations under its
//    lock, which is the thread-safety the mutable state relies on.
//
// DeadlinePressure / WeightedShare / Grouped are pure and stateless.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace askel {

/// One armed tenant's demand at arbitration time.
struct TenantDemand {
  int tenant = 0;         // coordinator id (history/debugging only)
  int desired = 1;        // the tenant's requested LP
  double pressure = 0.0;  // relative goal miss (goal_pressure, decision.hpp)
  int weight = 1;         // SLA class weight (>= 1; WeightedSharePolicy)
  int current_grant = 0;  // the grant going into this arbitration
  int group = 0;          // hierarchical group id (0 = ungrouped)
  int group_weight = 1;   // the group's weight (== weight when ungrouped)
};

class ArbitrationPolicy {
 public:
  virtual ~ArbitrationPolicy() = default;
  virtual std::string name() const = 0;
  /// Fill `grants[i]` (>= 0) for `demands[i]`; sum(grants) <= budget. Called
  /// under the coordinator's lock — must not call back into it or the pool.
  virtual void arbitrate(int budget, const std::vector<TenantDemand>& demands,
                         std::vector<int>& grants) const = 0;
};

class DeadlinePressurePolicy final : public ArbitrationPolicy {
 public:
  std::string name() const override { return "deadline-pressure"; }
  void arbitrate(int budget, const std::vector<TenantDemand>& demands,
                 std::vector<int>& grants) const override;
};

class WeightedSharePolicy final : public ArbitrationPolicy {
 public:
  std::string name() const override { return "weighted-share"; }
  void arbitrate(int budget, const std::vector<TenantDemand>& demands,
                 std::vector<int>& grants) const override;
};

/// Two-level water-fill: budget across groups by group weight, then within
/// each group by member weight (ties toward higher pressure, then demand
/// order). Group weights arrive on the demand rows (`group_weight`, filled by
/// the coordinator from its group table); an inconsistent vector — two rows
/// of one group disagreeing — resolves to the first row's value.
class GroupedArbitrationPolicy final : public ArbitrationPolicy {
 public:
  std::string name() const override { return "grouped-weighted"; }
  void arbitrate(int budget, const std::vector<TenantDemand>& demands,
                 std::vector<int>& grants) const override;
};

/// Learns per-tenant weight boosts from goal-miss history and delegates to
/// `inner` (default WeightedSharePolicy) with the boosted weights. A tenant
/// arbitrated with pressure above `miss_threshold` gains `step * pressure`
/// boost (clamped to [1, max_boost]); one arbitration at or below the
/// threshold decays it by `decay` toward 1. Boosts for tenants absent from a
/// demand vector are dropped (state stays O(armed); a disarm→re-arm cycle
/// starts over from the base weight).
class AdaptiveWeightPolicy final : public ArbitrationPolicy {
 public:
  struct Config {
    double step = 0.5;           // boost gained per unit of pressure
    double decay = 0.25;         // boost lost per slack arbitration
    double max_boost = 8.0;      // boost ceiling (multiplier on base weight)
    double miss_threshold = 0.0; // pressure above this counts as a miss
  };

  AdaptiveWeightPolicy();
  explicit AdaptiveWeightPolicy(
      Config cfg, std::unique_ptr<ArbitrationPolicy> inner = nullptr);

  std::string name() const override { return "adaptive-weight"; }
  void arbitrate(int budget, const std::vector<TenantDemand>& demands,
                 std::vector<int>& grants) const override;

  /// Current boost multiplier for `tenant` (1.0 when unknown) — tests and
  /// bench introspection.
  double boost(int tenant) const;

 private:
  Config cfg_;
  std::unique_ptr<ArbitrationPolicy> inner_;
  // Updated inside const arbitrate(): the policy contract runs arbitrations
  // serialized under the coordinator's lock, never concurrently.
  mutable std::unordered_map<int, double> boosts_;
};

}  // namespace askel
