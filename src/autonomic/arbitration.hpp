#pragma once
// ArbitrationPolicy: how the LP-budget coordinator splits a contested budget
// between armed tenants. Pulled out of the coordinator so alternatives can be
// A/B'd on bench/multi_tenant (--policy) without touching the grant
// bookkeeping, history, pool installation or preemption-hold logic — those
// stay in LpBudgetCoordinator, which calls exactly one policy per
// arbitration.
//
// A policy is a pure function of the demand vector: stateless, deterministic,
// unit-testable without threads. Two ship:
//  * DeadlinePressurePolicy — PR 2's behavior, verbatim: 1-thread floor in
//    pressure order while the budget lasts, then top-up toward each tenant's
//    desired LP, widest relative goal miss first;
//  * WeightedSharePolicy — SLA classes: floors by weight, then water-fill one
//    thread at a time to the tenant with the lowest grant/weight ratio, so
//    steady-state grants are proportional to weight (capped at desired, with
//    leftovers redistributed). Unlike pressure, a tenant cannot game it by
//    inflating its own reported miss.

#include <string>
#include <vector>

namespace askel {

/// One armed tenant's demand at arbitration time.
struct TenantDemand {
  int tenant = 0;         // coordinator id (history/debugging only)
  int desired = 1;        // the tenant's requested LP
  double pressure = 0.0;  // relative goal miss (goal_pressure, decision.hpp)
  int weight = 1;         // SLA class weight (>= 1; WeightedSharePolicy)
  int current_grant = 0;  // the grant going into this arbitration
};

class ArbitrationPolicy {
 public:
  virtual ~ArbitrationPolicy() = default;
  virtual std::string name() const = 0;
  /// Fill `grants[i]` (>= 0) for `demands[i]`; sum(grants) <= budget. Called
  /// under the coordinator's lock — must not call back into it or the pool.
  virtual void arbitrate(int budget, const std::vector<TenantDemand>& demands,
                         std::vector<int>& grants) const = 0;
};

class DeadlinePressurePolicy final : public ArbitrationPolicy {
 public:
  std::string name() const override { return "deadline-pressure"; }
  void arbitrate(int budget, const std::vector<TenantDemand>& demands,
                 std::vector<int>& grants) const override;
};

class WeightedSharePolicy final : public ArbitrationPolicy {
 public:
  std::string name() const override { return "weighted-share"; }
  void arbitrate(int budget, const std::vector<TenantDemand>& demands,
                 std::vector<int>& grants) const override;
};

}  // namespace askel
