#pragma once
// LpBudgetCoordinator: arbitrates one pool-wide LP budget between many
// per-skeleton AutonomicControllers (the sharded MAPE loop).
//
// PR 1 made snapshots O(1) and the pool contention-free so that N controllers
// — one per skeleton/tenant, each with its own TrackerSet and goal — can plan
// independently. What they cannot do independently is actuate: the pool has
// one LP, and the paper's "maximum LP [that] avoids overloading the system"
// must hold for the sum of all tenants. The coordinator owns that sum.
//
// Contract:
//  * sum of per-tenant grants <= budget() <= pool.max_lp(), always — the
//    coordinator also installs the budget as the pool's lp_limit, so the cap
//    holds even against direct set_target_lp callers;
//  * contested LP is split by the pluggable ArbitrationPolicy (default:
//    DeadlinePressurePolicy — widest relative goal miss first with a
//    1-thread floor; WeightedSharePolicy splits by SLA-class weight);
//  * every grant change is ALSO installed into the pool's per-tenant grant
//    vector (`set_tenant_grant`), which drives the pool's weighted dispatch
//    — grants are scheduling isolation, not just planning numbers;
//  * preemption-cost awareness: LP a tenant grew within the last
//    `preemption_hold()` window is not reclaimed by other tenants' demands
//    (the requester waits the window out); the tenant's own requested
//    decreases always apply, and the budget stays a hard cap. Hold
//    protection dies with the grant: release/arm reset the grow timestamp,
//    so a disarm→re-arm cycle can never re-install a stale protected grant;
//  * disarm (release) and unregister return a tenant's grant to the pool
//    immediately and re-arbitrate the survivors;
//  * a single armed tenant with budget == pool.max_lp() is always granted
//    exactly what it asks for, so one coordinated controller reproduces the
//    uncoordinated controller's decisions verbatim.
//
// Locking: the coordinator's mutex is taken first, then the pool's control
// mutex (inside set_target_lp / set_lp_limit / set_tenant_grant). Reclaim
// and grant installation are serialized under the coordinator's mutex — an
// Execute step in flight on another controller observes either the full old
// grant vector or the full new one, never a torn mix. Controllers call in
// holding their own lock; the pool never calls back into the coordinator or
// a controller, so the order controller -> coordinator -> pool is acyclic.

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "autonomic/arbitration.hpp"
#include "runtime/thread_pool.hpp"
#include "util/clock.hpp"

namespace askel {

class LpBudgetCoordinator {
 public:
  /// `budget` 0 = use pool.max_lp(); otherwise clamped to [1, pool.max_lp()].
  /// Installs the budget as the pool's lp_limit for the coordinator's
  /// lifetime (restored to pool.max_lp() on destruction, and every tenant
  /// grant is zeroed in the pool — grants die with the coordinator).
  explicit LpBudgetCoordinator(ResizableThreadPool& pool, int budget = 0,
                               const Clock* clock = &default_clock());
  ~LpBudgetCoordinator();

  LpBudgetCoordinator(const LpBudgetCoordinator&) = delete;
  LpBudgetCoordinator& operator=(const LpBudgetCoordinator&) = delete;

  int budget() const;
  /// Re-arbitrates immediately; shrinking may reduce existing grants.
  void set_budget(int b);

  /// Swap the arbitration policy (nullptr restores the default
  /// DeadlinePressurePolicy) and re-arbitrate under the new one.
  void set_policy(std::unique_ptr<ArbitrationPolicy> policy);
  /// Name of the active policy (for logs/bench JSON).
  std::string policy_name() const;

  /// Don't let OTHER tenants reclaim LP a tenant grew within the last `d`
  /// seconds (preemption cost: a fresh ramp-up is warm caches and pending
  /// provisioning; reclaiming it immediately wastes both). 0 (default)
  /// disables the hold. The budget stays hard: when protections cannot fit,
  /// they are stripped lowest-pressure-first.
  void set_preemption_hold(Duration d);
  Duration preemption_hold() const;

  /// The pool whose LP this coordinator owns (grants actuate here).
  ResizableThreadPool& pool() const { return pool_; }

  /// Tenant ids are small positive integers. Ids of unregistered tenants
  /// are REUSED by later registrations (a long-lived coordinator serving a
  /// stream of runs stays O(live tenants)), so callers must not touch an id
  /// after unregistering it. `name` is for the action history only.
  int register_tenant(std::string name = {});
  /// Releases the tenant's grant (if armed), retires the pool's per-tenant
  /// accounting state (when already drained), and recycles the id.
  void unregister_tenant(int tenant);

  /// SLA class weight (>= 1, default 1) used by WeightedSharePolicy;
  /// re-arbitrates immediately. Survives release/re-arm, reset on
  /// unregister (ids are recycled into fresh tenants).
  void set_tenant_weight(int tenant, int weight);
  int tenant_weight(int tenant) const;

  /// Tenant goes live. Its initial desired LP is the pool's current target
  /// (what a freshly armed uncoordinated controller would reason from), so a
  /// single tenant starts exactly where today's controller starts. Returns
  /// the initial grant.
  int arm_tenant(int tenant);

  /// Update the tenant's desired LP and deadline pressure, re-arbitrate, and
  /// return the tenant's (possibly unchanged) grant. The grant may be less
  /// than `desired` under contention, and may later shrink further when a
  /// higher-pressure tenant requests — the tenant re-reads granted() on its
  /// next evaluation.
  int request(int tenant, int desired, double pressure);

  /// Tenant disarmed or completed: its grant returns to the budget (and its
  /// preemption-hold protection is dropped with it).
  void release(int tenant);

  int granted(int tenant) const;
  /// Sum of all grants right now (<= budget, invariant).
  int total_granted() const;
  /// Highest total_granted ever observed (exact, maintained under the lock).
  int peak_total_granted() const;
  int armed_tenants() const;

  /// One record per grant change of any tenant (arbitration outcome), in
  /// time order. Bounded: only the most recent ~kMaxHistory records are
  /// kept (a long-lived coordinator re-arbitrates on every request).
  static constexpr std::size_t kMaxHistory = 4096;
  struct TenantAction {
    TimePoint t = 0.0;
    int tenant = 0;
    int requested = 0;   // the tenant's desired LP at arbitration time
    int from_grant = 0;
    int to_grant = 0;
    double pressure = 0.0;
  };
  std::vector<TenantAction> history() const;
  std::vector<TenantAction> history(int tenant) const;

 private:
  struct Tenant {
    std::string name;
    bool registered = false;
    bool armed = false;
    int desired = 0;
    int grant = 0;
    double pressure = 0.0;
    int weight = 1;
    /// When this tenant's grant last grew; arm/release reset it to the far
    /// past so hold protection can never outlive the arm that earned it.
    TimePoint last_grow = kNeverGrew;
  };
  static constexpr TimePoint kNeverGrew = -1.0e300;

  /// Recompute every armed tenant's grant (policy + preemption hold), record
  /// grant changes, install the grant vector into the pool's weighted
  /// dispatch, and push the aggregate target to the pool.
  void arbitrate_locked();
  /// Pool provision-failure hook (installed at construction): a grow toward
  /// `failed_target` never materialized, so grants above the `effective` LP
  /// are bookkeeping against capacity that does not exist — claw them back
  /// into the budget (ascending pressure, 1-thread floor) instead of
  /// stranding them on the tenant whose provision failed. The tenant's
  /// desired LP is untouched: its next request retries (the backend may have
  /// recovered), and a permanent failure just repeats the reclaim — budget
  /// never leaks either way.
  void on_provision_failed(int failed_target, int effective);
  void push_history_locked(TenantAction action);
  const Tenant* find_locked(int tenant) const;
  Tenant* find_locked(int tenant);

  ResizableThreadPool& pool_;
  const Clock* clock_;

  // Recursive: a backend that refuses a grow SYNCHRONOUSLY makes
  // pool.set_target_lp (called from arbitrate_locked, mu_ held) invoke the
  // provision-failure handler on this same thread before returning —
  // on_provision_failed must be able to re-enter. The re-entry is safe:
  // arbitrate's grant table is fully written before it actuates the pool,
  // so the reclaim always sees a consistent state.
  mutable std::recursive_mutex mu_;
  int budget_;
  int peak_total_ = 0;
  std::unique_ptr<ArbitrationPolicy> policy_;
  Duration preemption_hold_ = 0.0;
  std::vector<Tenant> tenants_;  // index = tenant id - 1
  std::vector<int> free_ids_;    // unregistered slots awaiting reuse
  std::vector<TenantAction> history_;
};

}  // namespace askel
