#pragma once
// LpBudgetCoordinator: arbitrates one pool-wide LP budget between many
// per-skeleton AutonomicControllers (the sharded MAPE loop).
//
// PR 1 made snapshots O(1) and the pool contention-free so that N controllers
// — one per skeleton/tenant, each with its own TrackerSet and goal — can plan
// independently. What they cannot do independently is actuate: the pool has
// one LP, and the paper's "maximum LP [that] avoids overloading the system"
// must hold for the sum of all tenants. The coordinator owns that sum.
//
// Scale shape (PR 7): the coordinator is built for millions of REGISTERED
// tenants of which only thousands are ARMED at any instant. Registration
// state lives in kRegistryShards independently locked shards (id -> shard is
// a fixed modulo, so register/unregister of one tenant never serializes
// behind another shard's traffic — or behind arbitration). Armed tenants are
// indexed in an active set owned by the arbitration lock; every arbitration
// walks ONLY that set, never the registry, so arbitration cost is
// O(active · log active) and flat in registrations (bench/
// coordinator_scale_bench pins 1M registered / 10K armed within 2x of
// 10K / 10K).
//
// Contract:
//  * sum of per-tenant grants <= budget() <= pool.max_lp(), always — the
//    coordinator also installs the budget as the pool's lp_limit, so the cap
//    holds even against direct set_target_lp callers;
//  * contested LP is split by the pluggable ArbitrationPolicy (default:
//    DeadlinePressurePolicy — widest relative goal miss first with a
//    1-thread floor; WeightedSharePolicy splits by SLA-class weight;
//    GroupedArbitrationPolicy adds hierarchical groups — budget across
//    groups by group weight, water-fill within; AdaptiveWeightPolicy nudges
//    weights from goal-miss history);
//  * every grant change is ALSO installed into the pool's per-tenant grant
//    vector (batched through `set_tenant_grants`), which drives the pool's
//    weighted dispatch — grants are scheduling isolation, not just planning
//    numbers;
//  * preemption-cost awareness: LP a tenant grew within the last
//    `preemption_hold()` window is not reclaimed by other tenants' demands
//    (the requester waits the window out); the tenant's own requested
//    decreases always apply, and the budget stays a hard cap. Hold
//    protection dies with the grant: release/arm reset the grow timestamp,
//    so a disarm→re-arm cycle can never re-install a stale protected grant;
//  * disarm (release) and unregister return a tenant's grant to the pool
//    immediately and re-arbitrate the survivors;
//  * a single armed tenant with budget == pool.max_lp() is always granted
//    exactly what it asks for, so one coordinated controller reproduces the
//    uncoordinated controller's decisions verbatim.
//
// Locking (see docs/coordinator.md for the full table): registry shard
// mutexes < arbitration mutex < pool locks, always in that order. Lifecycle
// operations (register/arm/release/unregister/weight/group) take their
// tenant's shard lock, and only the ones that change the armed set take the
// arbitration lock after it. The hot path — request()/granted() from an
// armed controller — takes ONLY the arbitration lock. The pool never calls
// back into the coordinator except the provision-failure handler, which
// takes only the arbitration lock (recursive: a synchronous refusal re-enters
// on the arbitrating thread), so the order is acyclic.

#include <array>
#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "autonomic/arbitration.hpp"
#include "runtime/thread_pool.hpp"
#include "util/clock.hpp"

namespace askel {

class LpBudgetCoordinator {
 public:
  /// Registration state is striped over this many independently locked
  /// shards; tenant id -> shard is (id - 1) % kRegistryShards.
  static constexpr int kRegistryShards = 16;

  /// `budget` 0 = use pool.max_lp(); otherwise clamped to [1, pool.max_lp()].
  /// Installs the budget as the pool's lp_limit for the coordinator's
  /// lifetime (restored to pool.max_lp() on destruction, and every tenant
  /// grant is zeroed in the pool — grants die with the coordinator).
  explicit LpBudgetCoordinator(ResizableThreadPool& pool, int budget = 0,
                               const Clock* clock = &default_clock());
  ~LpBudgetCoordinator();

  LpBudgetCoordinator(const LpBudgetCoordinator&) = delete;
  LpBudgetCoordinator& operator=(const LpBudgetCoordinator&) = delete;

  int budget() const;
  /// Re-arbitrates immediately; shrinking may reduce existing grants.
  void set_budget(int b);

  /// Swap the arbitration policy (nullptr restores the default
  /// DeadlinePressurePolicy) and re-arbitrate under the new one.
  void set_policy(std::unique_ptr<ArbitrationPolicy> policy);
  /// Name of the active policy (for logs/bench JSON).
  std::string policy_name() const;

  /// Don't let OTHER tenants reclaim LP a tenant grew within the last `d`
  /// seconds (preemption cost: a fresh ramp-up is warm caches and pending
  /// provisioning; reclaiming it immediately wastes both). 0 (default)
  /// disables the hold. The budget stays hard: when protections cannot fit,
  /// they are stripped lowest-pressure-first.
  void set_preemption_hold(Duration d);
  Duration preemption_hold() const;

  /// The pool whose LP this coordinator owns (grants actuate here).
  ResizableThreadPool& pool() const { return pool_; }

  /// Tenant ids are small positive integers. Ids of unregistered tenants
  /// are REUSED by later registrations (a long-lived coordinator serving a
  /// stream of runs stays O(live tenants)), so callers must not touch an id
  /// after unregistering it. `name` is for the action history only.
  /// O(1) amortized, touches one registry shard — never the arbitration
  /// lock.
  int register_tenant(std::string name = {});
  /// Releases the tenant's grant (if armed), retires the pool's per-tenant
  /// accounting state (when already drained), and recycles the id. A
  /// never-armed tenant unregisters without touching the arbitration lock.
  void unregister_tenant(int tenant);

  /// SLA class weight (>= 1, default 1) used by WeightedSharePolicy;
  /// re-arbitrates immediately when the tenant is armed. Survives
  /// release/re-arm, reset on unregister (ids are recycled into fresh
  /// tenants).
  void set_tenant_weight(int tenant, int weight);
  int tenant_weight(int tenant) const;

  /// Hierarchical group membership (group >= 1; 0 = ungrouped, the default).
  /// Under GroupedArbitrationPolicy the budget is split across groups by
  /// group weight first, then within the group by tenant weight. Like the
  /// tenant weight: survives release/re-arm, reset on unregister,
  /// re-arbitrates immediately when armed.
  void set_tenant_group(int tenant, int group);
  int tenant_group(int tenant) const;

  /// Weight of a group (>= 1, default 1), used by GroupedArbitrationPolicy
  /// for the cross-group split. Setting it re-arbitrates.
  void set_group_weight(int group, int weight);
  int group_weight(int group) const;

  /// Tenant goes live. Its initial desired LP is the pool's current target
  /// (what a freshly armed uncoordinated controller would reason from), so a
  /// single tenant starts exactly where today's controller starts. Returns
  /// the initial grant.
  int arm_tenant(int tenant);

  /// Update the tenant's desired LP and deadline pressure, re-arbitrate, and
  /// return the tenant's (possibly unchanged) grant. The grant may be less
  /// than `desired` under contention, and may later shrink further when a
  /// higher-pressure tenant requests — the tenant re-reads granted() on its
  /// next evaluation. Takes only the arbitration lock: O(active), not
  /// O(registered).
  int request(int tenant, int desired, double pressure);

  /// Tenant disarmed or completed: its grant returns to the budget (and its
  /// preemption-hold protection is dropped with it).
  void release(int tenant);

  int granted(int tenant) const;
  /// Sum of all grants right now (<= budget, invariant). O(1): maintained
  /// incrementally with the active set.
  int total_granted() const;
  /// Highest total_granted ever observed (exact, maintained under the lock).
  int peak_total_granted() const;
  /// Armed tenants right now — the size of the active-set index. O(1).
  int armed_tenants() const;
  /// Registered tenants right now (sums the per-shard counters).
  int registered_tenants() const;
  /// The active-set index itself: armed tenant ids in ascending order.
  /// Tests pin this against the ground-truth armed set under churn.
  std::vector<int> active_tenants() const;

  /// One record per grant change of any tenant (arbitration outcome), in
  /// time order. Bounded: only the most recent ~kMaxHistory records are
  /// kept (a long-lived coordinator re-arbitrates on every request).
  static constexpr std::size_t kMaxHistory = 4096;
  struct TenantAction {
    TimePoint t = 0.0;
    int tenant = 0;
    int requested = 0;   // the tenant's desired LP at arbitration time
    int from_grant = 0;
    int to_grant = 0;
    double pressure = 0.0;
  };
  std::vector<TenantAction> history() const;
  std::vector<TenantAction> history(int tenant) const;

 private:
  /// Registration record: everything a tenant IS between runs. Owned by its
  /// registry shard's mutex; holds no arbitration state.
  struct Tenant {
    std::string name;
    bool registered = false;
    bool armed = false;
    int weight = 1;
    int group = 0;
  };

  struct RegistryShard {
    mutable std::mutex mu;
    std::vector<Tenant> slots;
    std::vector<int> free_slots;       // slot indices awaiting reuse
    std::atomic<int> free_count{0};    // lock-free "any free?" probe
    std::atomic<int> registered{0};    // live tenants in this shard
  };

  /// Arbitration-side record of one ARMED tenant — the active-set entry.
  /// Owned by arb_mu_; exists exactly while the tenant is armed.
  struct ActiveTenant {
    int desired = 0;
    double pressure = 0.0;
    int weight = 1;
    int group = 0;
    int grant = 0;
    /// When this tenant's grant last grew; arm/release reset it to the far
    /// past so hold protection can never outlive the arm that earned it.
    TimePoint last_grow = kNeverGrew;
  };
  static constexpr TimePoint kNeverGrew = -1.0e300;

  static int shard_of(int id) { return (id - 1) % kRegistryShards; }
  static int slot_of(int id) { return (id - 1) / kRegistryShards; }
  static int id_of(int shard, int slot) {
    return slot * kRegistryShards + shard + 1;
  }

  /// Registry record for `tenant`, or nullptr when out of range /
  /// unregistered. Requires the tenant's shard mutex held.
  Tenant* slot_locked(int tenant);
  const Tenant* slot_locked(int tenant) const;

  /// Recompute every ACTIVE tenant's grant (policy + preemption hold),
  /// record grant changes, install changed grants into the pool's weighted
  /// dispatch in one batch, and push the aggregate target to the pool.
  /// O(active · log active); never touches the registry shards.
  void arbitrate_locked();
  /// Zero `tenant`'s grant (recorded) and remove it from the active set.
  void drop_active_locked(int tenant);
  /// Pool provision-failure hook (installed at construction): a grow toward
  /// `failed_target` never materialized, so grants above the `effective` LP
  /// are bookkeeping against capacity that does not exist — claw them back
  /// into the budget (ascending pressure, 1-thread floor) instead of
  /// stranding them on the tenant whose provision failed. The tenant's
  /// desired LP is untouched: its next request retries (the backend may have
  /// recovered), and a permanent failure just repeats the reclaim — budget
  /// never leaks either way.
  void on_provision_failed(int failed_target, int effective);
  void push_history_locked(TenantAction action);

  ResizableThreadPool& pool_;
  const Clock* clock_;

  /// Registration state, striped so register/unregister of cold tenants
  /// never contend with arbitration (or with each other across shards).
  std::array<RegistryShard, kRegistryShards> shards_;
  std::atomic<unsigned> next_shard_{0};  // round-robin for fresh slots

  // Arbitration state. Recursive: a backend that refuses a grow
  // SYNCHRONOUSLY makes pool.set_target_lp (called from arbitrate_locked,
  // arb_mu_ held) invoke the provision-failure handler on this same thread
  // before returning — on_provision_failed must be able to re-enter. The
  // re-entry is safe: arbitrate's grant table is fully written before it
  // actuates the pool, so the reclaim always sees a consistent state.
  mutable std::recursive_mutex arb_mu_;
  int budget_;
  int total_granted_ = 0;
  int peak_total_ = 0;
  std::unique_ptr<ArbitrationPolicy> policy_;
  Duration preemption_hold_ = 0.0;
  /// The active-set index: id -> armed-tenant record, iterated in id order
  /// (the registration-order tie-break the policies document). Maintained
  /// incrementally by arm/release/unregister; arbitration never scans the
  /// registry.
  std::map<int, ActiveTenant> active_;
  std::map<int, int> group_weights_;  // group id -> weight (>= 1)
  std::vector<TenantAction> history_;
};

}  // namespace askel
