#include "autonomic/policy_quality.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <unordered_map>

namespace askel {

std::vector<DemandRound> demand_trace(std::uint64_t seed, int tenants,
                                      int rounds, int budget) {
  tenants = std::max(1, tenants);
  rounds = std::max(1, rounds);
  std::mt19937_64 rng(seed);
  // Aggregate demand must overrun the budget or every policy scores a
  // vacuous zero-miss: draw bases up to ~half the budget each, so a handful
  // of tenants already oversubscribe it and the burst makes it acute.
  std::uniform_int_distribution<int> base_dist(1, std::max(2, budget / 2));
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Per-tenant piecewise-constant base demand, re-rolled every ~16 rounds.
  std::vector<int> base(static_cast<std::size_t>(tenants));
  for (int& b : base) b = base_dist(rng);
  const int bursty = 1 + static_cast<int>(rng() % tenants);

  std::vector<DemandRound> trace;
  trace.reserve(static_cast<std::size_t>(rounds));
  int burst_left = 0;
  for (int r = 0; r < rounds; ++r) {
    if (r > 0 && r % 16 == 0) {
      for (int& b : base) b = base_dist(rng);
    }
    if (burst_left == 0 && unit(rng) < 0.10) burst_left = 4;
    DemandRound round;
    round.demands.reserve(static_cast<std::size_t>(tenants));
    for (int t = 1; t <= tenants; ++t) {
      TenantDemand d;
      d.tenant = t;
      d.desired = base[static_cast<std::size_t>(t - 1)];
      if (t == bursty && burst_left > 0) d.desired *= 4;
      // Initial pressure reflects a backlog proportional to demand; the
      // replay's feedback loop overrides it from round 1 onward.
      d.pressure = unit(rng) < 0.5 ? 0.0 : 0.5;
      round.demands.push_back(d);
    }
    if (burst_left > 0) --burst_left;
    trace.push_back(std::move(round));
  }
  return trace;
}

PolicyQuality replay_policy(ArbitrationPolicy& policy, int budget,
                            const std::vector<DemandRound>& trace) {
  PolicyQuality q;
  q.policy = policy.name();
  std::unordered_map<int, double> pressure;  // carried across rounds
  std::unordered_map<int, int> prev_grant;
  double shortfall_sum = 0.0;
  double churn_sum = 0.0;
  long rows = 0;

  std::vector<int> grants;
  for (const DemandRound& round : trace) {
    std::vector<TenantDemand> demands = round.demands;
    for (TenantDemand& d : demands) {
      auto it = pressure.find(d.tenant);
      if (it != pressure.end()) d.pressure = it->second;
    }
    grants.assign(demands.size(), 0);  // the policy contract: pre-sized, zeroed
    policy.arbitrate(budget, demands, grants);
    ++q.rounds;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      const TenantDemand& d = demands[i];
      const int g = i < grants.size() ? std::max(0, grants[i]) : 0;
      ++rows;
      if (d.pressure > 0.0) {
        ++q.pressured_rows;
        if (g < d.desired) {
          ++q.misses;
          shortfall_sum += d.desired - g;
        }
      }
      auto pg = prev_grant.find(d.tenant);
      if (pg != prev_grant.end()) churn_sum += std::abs(g - pg->second);
      prev_grant[d.tenant] = g;
      // Feedback: a shortfall sustains (and deepens) pressure — the backlog
      // did not clear; a full grant decays it toward zero.
      double p = d.pressure;
      if (g < d.desired) {
        p = std::min(2.0, p + 0.25 * (1.0 - static_cast<double>(g) /
                                                std::max(1, d.desired)));
      } else {
        p = std::max(0.0, p - 0.5);
      }
      pressure[d.tenant] = p;
    }
  }
  if (q.pressured_rows > 0) {
    q.miss_rate =
        static_cast<double>(q.misses) / static_cast<double>(q.pressured_rows);
  }
  if (q.misses > 0) {
    q.mean_shortfall = shortfall_sum / static_cast<double>(q.misses);
  }
  if (rows > 0) q.churn = churn_sum / static_cast<double>(rows);
  return q;
}

std::vector<PolicyQuality> rank_policies(
    const std::vector<ArbitrationPolicy*>& policies, int budget,
    const std::vector<DemandRound>& trace) {
  std::vector<PolicyQuality> out;
  out.reserve(policies.size());
  for (ArbitrationPolicy* p : policies) {
    if (p != nullptr) out.push_back(replay_policy(*p, budget, trace));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PolicyQuality& a, const PolicyQuality& b) {
                     if (a.miss_rate != b.miss_rate)
                       return a.miss_rate < b.miss_rate;
                     return a.mean_shortfall < b.mean_shortfall;
                   });
  return out;
}

}  // namespace askel
