#include "autonomic/coordinator.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace askel {

LpBudgetCoordinator::LpBudgetCoordinator(ResizableThreadPool& pool, int budget,
                                         const Clock* clock)
    : pool_(pool), clock_(clock),
      policy_(std::make_unique<DeadlinePressurePolicy>()) {
  budget_ = budget > 0 ? std::min(budget, pool_.max_lp()) : pool_.max_lp();
  pool_.set_lp_limit(budget_);
  // Remote backends can refuse a grow; without this hook the refused LP
  // would stay granted forever — budget stranded on a tenant that can never
  // use it. The handler runs with no pool lock held (lock order: coordinator
  // mutex above the pool's).
  pool_.set_provision_failure_handler([this](int failed_target, int effective) {
    on_provision_failed(failed_target, effective);
  });
}

LpBudgetCoordinator::~LpBudgetCoordinator() {
  // Unhook first: a provisioning thread must not call into a dying
  // coordinator (callers quiesce pending grows before destruction).
  pool_.set_provision_failure_handler(nullptr);
  // Give the pool back its full range; grants die with the coordinator —
  // including the per-tenant dispatch weights, so a later coordinator (or
  // none) never schedules against this one's stale grant vector. Nonzero
  // grants live only on active-set entries, so this never scans the
  // registry.
  for (const auto& [id, a] : active_) {
    if (a.grant != 0) pool_.set_tenant_grant(id, 0);
  }
  pool_.set_lp_limit(pool_.max_lp());
}

void LpBudgetCoordinator::on_provision_failed(int failed_target, int effective) {
  (void)failed_target;  // the reclaim is driven by what actually exists
  std::lock_guard lock(arb_mu_);
  const int cap = std::max(1, effective);
  if (total_granted_ <= cap) return;
  // Claw back the LP that never materialized: ascending pressure with a
  // 1-thread floor per armed tenant — the same degradation order arbitration
  // uses when the budget shrinks. The freed grant returns to the budget for
  // whoever requests next (and can actually be provisioned). Only the
  // active set carries grants, so the claw-back is O(active).
  std::vector<std::pair<int, ActiveTenant*>> asc;
  asc.reserve(active_.size());
  for (auto& [id, a] : active_) {
    if (a.grant > 0) asc.emplace_back(id, &a);
  }
  std::stable_sort(asc.begin(), asc.end(), [](const auto& x, const auto& y) {
    return x.second->pressure < y.second->pressure;
  });
  const TimePoint now = clock_->now();
  for (const auto& [id, ap] : asc) {
    if (total_granted_ <= cap) break;
    ActiveTenant& a = *ap;
    const int cut = std::min(a.grant - 1, total_granted_ - cap);
    if (cut <= 0) continue;
    push_history_locked(
        TenantAction{now, id, a.desired, a.grant, a.grant - cut, a.pressure});
    a.grant -= cut;
    total_granted_ -= cut;
    // A phantom grant earns no preemption-hold protection.
    a.last_grow = kNeverGrew;
    pool_.set_tenant_grant(id, a.grant);
  }
}

int LpBudgetCoordinator::budget() const {
  std::lock_guard lock(arb_mu_);
  return budget_;
}

void LpBudgetCoordinator::set_budget(int b) {
  std::lock_guard lock(arb_mu_);
  budget_ = b > 0 ? std::min(b, pool_.max_lp()) : pool_.max_lp();
  pool_.set_lp_limit(budget_);
  arbitrate_locked();
}

void LpBudgetCoordinator::set_policy(std::unique_ptr<ArbitrationPolicy> policy) {
  std::lock_guard lock(arb_mu_);
  policy_ = policy != nullptr ? std::move(policy)
                              : std::make_unique<DeadlinePressurePolicy>();
  arbitrate_locked();
}

std::string LpBudgetCoordinator::policy_name() const {
  std::lock_guard lock(arb_mu_);
  return policy_->name();
}

void LpBudgetCoordinator::set_preemption_hold(Duration d) {
  std::lock_guard lock(arb_mu_);
  preemption_hold_ = std::max(0.0, d);
}

Duration LpBudgetCoordinator::preemption_hold() const {
  std::lock_guard lock(arb_mu_);
  return preemption_hold_;
}

int LpBudgetCoordinator::register_tenant(std::string name) {
  // Recycle a freed id when any shard has one (the lock-free counter probe
  // keeps the common no-free case at 16 relaxed loads); otherwise take a
  // fresh slot from the next round-robin shard. Either way exactly one
  // shard mutex is touched — registration never serializes behind
  // arbitration or behind other shards' traffic.
  for (int s = 0; s < kRegistryShards; ++s) {
    RegistryShard& sh = shards_[static_cast<std::size_t>(s)];
    if (sh.free_count.load(std::memory_order_relaxed) == 0) continue;
    std::lock_guard lock(sh.mu);
    if (sh.free_slots.empty()) continue;
    const int slot = sh.free_slots.back();
    sh.free_slots.pop_back();
    sh.free_count.fetch_sub(1, std::memory_order_relaxed);
    Tenant& t = sh.slots[static_cast<std::size_t>(slot)];
    t = Tenant{};  // grant-free by construction: unregister dropped it
    t.name = std::move(name);
    t.registered = true;
    sh.registered.fetch_add(1, std::memory_order_relaxed);
    return id_of(s, slot);
  }
  const int s = static_cast<int>(next_shard_.fetch_add(
                    1, std::memory_order_relaxed) %
                static_cast<unsigned>(kRegistryShards));
  RegistryShard& sh = shards_[static_cast<std::size_t>(s)];
  std::lock_guard lock(sh.mu);
  const int slot = static_cast<int>(sh.slots.size());
  Tenant t;
  t.name = std::move(name);
  t.registered = true;
  sh.slots.push_back(std::move(t));
  sh.registered.fetch_add(1, std::memory_order_relaxed);
  return id_of(s, slot);
}

void LpBudgetCoordinator::unregister_tenant(int tenant) {
  if (tenant < 1) return;
  RegistryShard& sh = shards_[static_cast<std::size_t>(shard_of(tenant))];
  std::lock_guard slock(sh.mu);
  Tenant* t = slot_locked(tenant);
  if (t == nullptr) return;
  const bool was_armed = t->armed;
  *t = Tenant{};  // registered = false; weight/group reset for the next user
  if (was_armed) {
    // Only an armed tenant owns arbitration state; a cold unregister stays
    // entirely on its shard.
    std::lock_guard alock(arb_mu_);
    drop_active_locked(tenant);
    arbitrate_locked();  // survivors take over the returned grant
  }
  // Drop the pool's accounting/dispatch state for the dead id so the exact
  // side map stays bounded by live tenants. Best-effort: a tenant whose last
  // tasks are still draining keeps its state (the recycled id simply
  // reclaims it on its next use — the pre-retirement behavior).
  pool_.retire_tenant(tenant);
  sh.free_slots.push_back(slot_of(tenant));
  sh.free_count.fetch_add(1, std::memory_order_relaxed);
  sh.registered.fetch_sub(1, std::memory_order_relaxed);
}

void LpBudgetCoordinator::set_tenant_weight(int tenant, int weight) {
  if (tenant < 1) return;
  RegistryShard& sh = shards_[static_cast<std::size_t>(shard_of(tenant))];
  std::lock_guard slock(sh.mu);
  Tenant* t = slot_locked(tenant);
  if (t == nullptr) return;
  t->weight = std::max(1, weight);
  if (!t->armed) return;  // picked up by the next arm
  std::lock_guard alock(arb_mu_);
  const auto it = active_.find(tenant);
  if (it == active_.end()) return;
  it->second.weight = t->weight;
  arbitrate_locked();
}

int LpBudgetCoordinator::tenant_weight(int tenant) const {
  if (tenant < 1) return 0;
  const RegistryShard& sh = shards_[static_cast<std::size_t>(shard_of(tenant))];
  std::lock_guard lock(sh.mu);
  const Tenant* t = slot_locked(tenant);
  return t == nullptr ? 0 : t->weight;
}

void LpBudgetCoordinator::set_tenant_group(int tenant, int group) {
  if (tenant < 1) return;
  RegistryShard& sh = shards_[static_cast<std::size_t>(shard_of(tenant))];
  std::lock_guard slock(sh.mu);
  Tenant* t = slot_locked(tenant);
  if (t == nullptr) return;
  t->group = std::max(0, group);
  if (!t->armed) return;
  std::lock_guard alock(arb_mu_);
  const auto it = active_.find(tenant);
  if (it == active_.end()) return;
  it->second.group = t->group;
  arbitrate_locked();
}

int LpBudgetCoordinator::tenant_group(int tenant) const {
  if (tenant < 1) return 0;
  const RegistryShard& sh = shards_[static_cast<std::size_t>(shard_of(tenant))];
  std::lock_guard lock(sh.mu);
  const Tenant* t = slot_locked(tenant);
  return t == nullptr ? 0 : t->group;
}

void LpBudgetCoordinator::set_group_weight(int group, int weight) {
  if (group < 1) return;
  std::lock_guard lock(arb_mu_);
  if (weight <= 1) {
    group_weights_.erase(group);  // default weight; keep the table sparse
  } else {
    group_weights_[group] = weight;
  }
  arbitrate_locked();
}

int LpBudgetCoordinator::group_weight(int group) const {
  std::lock_guard lock(arb_mu_);
  const auto it = group_weights_.find(group);
  return it == group_weights_.end() ? 1 : it->second;
}

int LpBudgetCoordinator::arm_tenant(int tenant) {
  if (tenant < 1) return 0;
  RegistryShard& sh = shards_[static_cast<std::size_t>(shard_of(tenant))];
  std::lock_guard slock(sh.mu);
  Tenant* t = slot_locked(tenant);
  if (t == nullptr) return 0;
  t->armed = true;
  std::lock_guard alock(arb_mu_);
  ActiveTenant& a = active_.try_emplace(tenant).first->second;
  // Others, not the tenant itself: a solo tenant re-arming (new goal, same
  // run pattern) must keep inheriting the pool target, like a fresh arm.
  const int armed_others = static_cast<int>(active_.size()) - 1;
  a.weight = t->weight;
  a.group = t->group;
  // A solo tenant inherits the pool's current target, so one coordinated
  // controller starts from exactly the state an uncoordinated one reads.
  // Joiners start at the paper's initial LP of 1 until their first decision.
  a.desired = armed_others == 0 ? std::max(1, pool_.target_lp()) : 1;
  a.pressure = 0.0;
  // A fresh arm earns no preemption-hold protection from a previous
  // incarnation's ramp (the disarm→re-arm stale-grant leak).
  a.last_grow = kNeverGrew;
  arbitrate_locked();
  return a.grant;
}

int LpBudgetCoordinator::request(int tenant, int desired, double pressure) {
  // The hot path: armed tenants live on the active-set index, so a request
  // touches only the arbitration lock — never a registry shard — and costs
  // O(active), independent of registrations.
  std::lock_guard lock(arb_mu_);
  const auto it = active_.find(tenant);
  if (it == active_.end()) return 0;
  it->second.desired = std::max(1, desired);
  it->second.pressure = pressure;
  arbitrate_locked();
  return it->second.grant;
}

void LpBudgetCoordinator::release(int tenant) {
  if (tenant < 1) return;
  RegistryShard& sh = shards_[static_cast<std::size_t>(shard_of(tenant))];
  std::lock_guard slock(sh.mu);
  Tenant* t = slot_locked(tenant);
  if (t == nullptr || !t->armed) return;
  t->armed = false;
  std::lock_guard alock(arb_mu_);
  // The protection dies with the grant: the drop zeroes it unconditionally
  // (hold only ever applies to armed tenants), and a later re-arm must not
  // inherit this incarnation's grow timestamp — the entry itself is erased.
  drop_active_locked(tenant);
  arbitrate_locked();
}

int LpBudgetCoordinator::granted(int tenant) const {
  std::lock_guard lock(arb_mu_);
  const auto it = active_.find(tenant);
  return it == active_.end() ? 0 : it->second.grant;
}

int LpBudgetCoordinator::total_granted() const {
  std::lock_guard lock(arb_mu_);
  return total_granted_;
}

int LpBudgetCoordinator::peak_total_granted() const {
  std::lock_guard lock(arb_mu_);
  return peak_total_;
}

int LpBudgetCoordinator::armed_tenants() const {
  std::lock_guard lock(arb_mu_);
  return static_cast<int>(active_.size());
}

int LpBudgetCoordinator::registered_tenants() const {
  int total = 0;
  for (const RegistryShard& sh : shards_) {
    total += sh.registered.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<int> LpBudgetCoordinator::active_tenants() const {
  std::lock_guard lock(arb_mu_);
  std::vector<int> out;
  out.reserve(active_.size());
  for (const auto& [id, a] : active_) out.push_back(id);
  return out;
}

std::vector<LpBudgetCoordinator::TenantAction> LpBudgetCoordinator::history()
    const {
  std::lock_guard lock(arb_mu_);
  return history_;
}

std::vector<LpBudgetCoordinator::TenantAction> LpBudgetCoordinator::history(
    int tenant) const {
  std::lock_guard lock(arb_mu_);
  std::vector<TenantAction> out;
  for (const TenantAction& a : history_) {
    if (a.tenant == tenant) out.push_back(a);
  }
  return out;
}

void LpBudgetCoordinator::drop_active_locked(int tenant) {
  const auto it = active_.find(tenant);
  if (it == active_.end()) return;
  ActiveTenant& a = it->second;
  if (a.grant != 0) {
    push_history_locked(
        TenantAction{clock_->now(), tenant, 0, a.grant, 0, 0.0});
    total_granted_ -= a.grant;
    pool_.set_tenant_grant(tenant, 0);
  }
  active_.erase(it);
}

void LpBudgetCoordinator::arbitrate_locked() {
  const TimePoint now = clock_->now();

  // Demands straight off the active-set index, iterated in id order (the
  // registration-order tie-break the policies document). O(active); the
  // registry shards are never touched, so arbitration cost is flat in
  // registrations.
  const std::size_t n = active_.size();
  std::vector<int> ids;
  std::vector<ActiveTenant*> ents;
  std::vector<TenantDemand> demands;
  ids.reserve(n);
  ents.reserve(n);
  demands.reserve(n);
  for (auto& [id, a] : active_) {
    int gw = a.weight;
    if (a.group > 0) {
      const auto it = group_weights_.find(a.group);
      gw = it == group_weights_.end() ? 1 : it->second;
    }
    ids.push_back(id);
    ents.push_back(&a);
    demands.push_back(
        TenantDemand{id, a.desired, a.pressure, a.weight, a.grant, a.group, gw});
  }

  std::vector<int> grants(n, 0);
  if (n != 0) {
    policy_->arbitrate(budget_, demands, grants);
    // Defensive clamp: a policy must never mint LP; trim from the back so a
    // buggy policy degrades deterministically instead of busting the budget.
    int sum = 0;
    for (int& g : grants) {
      g = std::max(0, g);
      sum += g;
    }
    for (std::size_t k = grants.size(); sum > budget_ && k-- > 0;) {
      const int cut = std::min(grants[k], sum - budget_);
      grants[k] -= cut;
      sum -= cut;
    }

    // Preemption-cost hold: a tenant whose grant the policy shrank, but who
    // grew within the window and still wants the LP, keeps min(current,
    // desired) — reclaiming a fresh ramp-up wastes warm caches and pending
    // provisioning, so the contender waits the window out. Self-requested
    // decreases (desired < current) are never blocked. The budget stays
    // hard: overshoot is clawed back in ascending-pressure order, first
    // from unprotected tenants down to their 1-thread floor, then by
    // stripping protections back to the raw policy grants.
    if (preemption_hold_ > 0.0) {
      const std::vector<int> raw = grants;
      std::vector<char> held(grants.size(), 0);
      int total = sum;
      for (std::size_t k = 0; k < grants.size(); ++k) {
        const ActiveTenant& a = *ents[k];
        const int keep = std::min(a.grant, a.desired);
        if (grants[k] < keep && now - a.last_grow < preemption_hold_) {
          total += keep - grants[k];
          grants[k] = keep;
          held[k] = 1;
        }
      }
      if (total > budget_) {
        std::vector<std::size_t> asc(grants.size());
        std::iota(asc.begin(), asc.end(), std::size_t{0});
        std::stable_sort(asc.begin(), asc.end(),
                         [&](std::size_t a, std::size_t b) {
                           return demands[a].pressure < demands[b].pressure;
                         });
        for (const bool strip_held : {false, true}) {
          for (const std::size_t k : asc) {
            if (total <= budget_) break;
            if (static_cast<bool>(held[k]) != strip_held) continue;
            const int floor = strip_held ? raw[k] : std::min(raw[k], 1);
            const int cut = std::min(grants[k] - floor, total - budget_);
            if (cut > 0) {
              grants[k] -= cut;
              total -= cut;
            }
          }
        }
      }
    }
  }

  // Apply: record changes, stamp grow times, and install the changed grants
  // into the pool in ONE batch so the weighted dispatch schedules against
  // them. All under arb_mu_ — reclaim is serialized with every in-flight
  // grant installation, so the pool never holds a mix of old and new
  // vectors.
  std::vector<std::pair<int, int>> changed;
  for (std::size_t k = 0; k < n; ++k) {
    ActiveTenant& a = *ents[k];
    const int g = grants[k];
    if (g != a.grant) {
      push_history_locked(
          TenantAction{now, ids[k], a.desired, a.grant, g, a.pressure});
      if (g > a.grant) a.last_grow = now;
      total_granted_ += g - a.grant;
      a.grant = g;
      changed.emplace_back(ids[k], g);
    }
  }
  peak_total_ = std::max(peak_total_, total_granted_);
  if (!changed.empty()) pool_.set_tenant_grants(changed);
  // Actuate the aggregate. With no armed tenant the pool keeps its last
  // target — the same "disarm leaves the LP alone" semantics as the
  // uncoordinated controller.
  if (total_granted_ > 0) pool_.set_target_lp(total_granted_);
}

void LpBudgetCoordinator::push_history_locked(TenantAction action) {
  // Bounded history: a long-lived coordinator re-arbitrates on every
  // request, so the log keeps only the most recent ~kMaxHistory actions
  // (dropped in halves to stay amortized O(1)).
  if (history_.size() >= kMaxHistory) {
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<long>(kMaxHistory / 2));
  }
  history_.push_back(action);
}

const LpBudgetCoordinator::Tenant* LpBudgetCoordinator::slot_locked(
    int tenant) const {
  if (tenant < 1) return nullptr;
  const RegistryShard& sh = shards_[static_cast<std::size_t>(shard_of(tenant))];
  const std::size_t slot = static_cast<std::size_t>(slot_of(tenant));
  if (slot >= sh.slots.size()) return nullptr;
  const Tenant& t = sh.slots[slot];
  return t.registered ? &t : nullptr;
}

LpBudgetCoordinator::Tenant* LpBudgetCoordinator::slot_locked(int tenant) {
  return const_cast<Tenant*>(std::as_const(*this).slot_locked(tenant));
}

}  // namespace askel
