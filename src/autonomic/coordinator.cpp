#include "autonomic/coordinator.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace askel {

LpBudgetCoordinator::LpBudgetCoordinator(ResizableThreadPool& pool, int budget,
                                         const Clock* clock)
    : pool_(pool), clock_(clock),
      policy_(std::make_unique<DeadlinePressurePolicy>()) {
  budget_ = budget > 0 ? std::min(budget, pool_.max_lp()) : pool_.max_lp();
  pool_.set_lp_limit(budget_);
  // Remote backends can refuse a grow; without this hook the refused LP
  // would stay granted forever — budget stranded on a tenant that can never
  // use it. The handler runs with no pool lock held (lock order: coordinator
  // mutex above the pool's).
  pool_.set_provision_failure_handler([this](int failed_target, int effective) {
    on_provision_failed(failed_target, effective);
  });
}

LpBudgetCoordinator::~LpBudgetCoordinator() {
  // Unhook first: a provisioning thread must not call into a dying
  // coordinator (callers quiesce pending grows before destruction).
  pool_.set_provision_failure_handler(nullptr);
  // Give the pool back its full range; grants die with the coordinator —
  // including the per-tenant dispatch weights, so a later coordinator (or
  // none) never schedules against this one's stale grant vector.
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].grant != 0) {
      pool_.set_tenant_grant(static_cast<int>(i) + 1, 0);
    }
  }
  pool_.set_lp_limit(pool_.max_lp());
}

void LpBudgetCoordinator::on_provision_failed(int failed_target, int effective) {
  (void)failed_target;  // the reclaim is driven by what actually exists
  std::lock_guard lock(mu_);
  const int cap = std::max(1, effective);
  int total = 0;
  for (const Tenant& t : tenants_) total += t.grant;
  if (total <= cap) return;
  // Claw back the LP that never materialized: ascending pressure with a
  // 1-thread floor per armed tenant — the same degradation order arbitration
  // uses when the budget shrinks. The freed grant returns to the budget for
  // whoever requests next (and can actually be provisioned).
  std::vector<std::size_t> asc;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].registered && tenants_[i].grant > 0) asc.push_back(i);
  }
  std::stable_sort(asc.begin(), asc.end(), [&](std::size_t a, std::size_t b) {
    return tenants_[a].pressure < tenants_[b].pressure;
  });
  const TimePoint now = clock_->now();
  for (const std::size_t i : asc) {
    if (total <= cap) break;
    Tenant& t = tenants_[i];
    const int floor = t.armed ? 1 : 0;
    const int cut = std::min(t.grant - floor, total - cap);
    if (cut <= 0) continue;
    push_history_locked(TenantAction{now, static_cast<int>(i) + 1, t.desired,
                                     t.grant, t.grant - cut, t.pressure});
    t.grant -= cut;
    total -= cut;
    // A phantom grant earns no preemption-hold protection.
    t.last_grow = kNeverGrew;
    pool_.set_tenant_grant(static_cast<int>(i) + 1, t.grant);
  }
}

int LpBudgetCoordinator::budget() const {
  std::lock_guard lock(mu_);
  return budget_;
}

void LpBudgetCoordinator::set_budget(int b) {
  std::lock_guard lock(mu_);
  budget_ = b > 0 ? std::min(b, pool_.max_lp()) : pool_.max_lp();
  pool_.set_lp_limit(budget_);
  arbitrate_locked();
}

void LpBudgetCoordinator::set_policy(std::unique_ptr<ArbitrationPolicy> policy) {
  std::lock_guard lock(mu_);
  policy_ = policy != nullptr ? std::move(policy)
                              : std::make_unique<DeadlinePressurePolicy>();
  arbitrate_locked();
}

std::string LpBudgetCoordinator::policy_name() const {
  std::lock_guard lock(mu_);
  return policy_->name();
}

void LpBudgetCoordinator::set_preemption_hold(Duration d) {
  std::lock_guard lock(mu_);
  preemption_hold_ = std::max(0.0, d);
}

Duration LpBudgetCoordinator::preemption_hold() const {
  std::lock_guard lock(mu_);
  return preemption_hold_;
}

int LpBudgetCoordinator::register_tenant(std::string name) {
  std::lock_guard lock(mu_);
  if (!free_ids_.empty()) {
    const int id = free_ids_.back();
    free_ids_.pop_back();
    Tenant& t = tenants_[static_cast<std::size_t>(id - 1)];
    t = Tenant{};  // grant is already 0: unregister arbitrated it away
    t.name = std::move(name);
    t.registered = true;
    return id;
  }
  Tenant t;
  t.name = std::move(name);
  t.registered = true;
  tenants_.push_back(std::move(t));
  return static_cast<int>(tenants_.size());  // ids start at 1
}

void LpBudgetCoordinator::unregister_tenant(int tenant) {
  std::lock_guard lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr) return;
  t->registered = false;
  t->armed = false;
  t->desired = 0;
  t->pressure = 0.0;
  t->weight = 1;
  t->last_grow = kNeverGrew;
  arbitrate_locked();  // returns the grant to the budget (recorded)
  // Drop the pool's accounting/dispatch state for the dead id so the exact
  // side map stays bounded by live tenants. Best-effort: a tenant whose last
  // tasks are still draining keeps its state (the recycled id simply
  // reclaims it on its next use — the pre-retirement behavior).
  pool_.retire_tenant(tenant);
  free_ids_.push_back(tenant);
}

void LpBudgetCoordinator::set_tenant_weight(int tenant, int weight) {
  std::lock_guard lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr) return;
  t->weight = std::max(1, weight);
  arbitrate_locked();
}

int LpBudgetCoordinator::tenant_weight(int tenant) const {
  std::lock_guard lock(mu_);
  const Tenant* t = find_locked(tenant);
  return t == nullptr ? 0 : t->weight;
}

int LpBudgetCoordinator::arm_tenant(int tenant) {
  std::lock_guard lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr) return 0;
  // Others, not the tenant itself: a solo tenant re-arming (new goal, same
  // run pattern) must keep inheriting the pool target, like a fresh arm.
  const int armed_others = static_cast<int>(
      std::count_if(tenants_.begin(), tenants_.end(),
                    [&](const Tenant& x) { return x.armed && &x != t; }));
  t->armed = true;
  // A solo tenant inherits the pool's current target, so one coordinated
  // controller starts from exactly the state an uncoordinated one reads.
  // Joiners start at the paper's initial LP of 1 until their first decision.
  t->desired = armed_others == 0 ? std::max(1, pool_.target_lp()) : 1;
  t->pressure = 0.0;
  // A fresh arm earns no preemption-hold protection from a previous
  // incarnation's ramp (the disarm→re-arm stale-grant leak).
  t->last_grow = kNeverGrew;
  arbitrate_locked();
  return t->grant;
}

int LpBudgetCoordinator::request(int tenant, int desired, double pressure) {
  std::lock_guard lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr || !t->armed) return 0;
  t->desired = std::max(1, desired);
  t->pressure = pressure;
  arbitrate_locked();
  return t->grant;
}

void LpBudgetCoordinator::release(int tenant) {
  std::lock_guard lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr || !t->armed) return;
  t->armed = false;
  t->desired = 0;
  t->pressure = 0.0;
  // The protection dies with the grant: re-arbitration below zeroes the
  // grant unconditionally (hold only ever applies to armed tenants), and a
  // later re-arm must not inherit this incarnation's grow timestamp.
  t->last_grow = kNeverGrew;
  arbitrate_locked();
}

int LpBudgetCoordinator::granted(int tenant) const {
  std::lock_guard lock(mu_);
  const Tenant* t = find_locked(tenant);
  return t == nullptr ? 0 : t->grant;
}

int LpBudgetCoordinator::total_granted() const {
  std::lock_guard lock(mu_);
  return std::accumulate(
      tenants_.begin(), tenants_.end(), 0,
      [](int acc, const Tenant& t) { return acc + t.grant; });
}

int LpBudgetCoordinator::peak_total_granted() const {
  std::lock_guard lock(mu_);
  return peak_total_;
}

int LpBudgetCoordinator::armed_tenants() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(std::count_if(
      tenants_.begin(), tenants_.end(), [](const Tenant& t) { return t.armed; }));
}

std::vector<LpBudgetCoordinator::TenantAction> LpBudgetCoordinator::history()
    const {
  std::lock_guard lock(mu_);
  return history_;
}

std::vector<LpBudgetCoordinator::TenantAction> LpBudgetCoordinator::history(
    int tenant) const {
  std::lock_guard lock(mu_);
  std::vector<TenantAction> out;
  for (const TenantAction& a : history_) {
    if (a.tenant == tenant) out.push_back(a);
  }
  return out;
}

void LpBudgetCoordinator::arbitrate_locked() {
  const TimePoint now = clock_->now();

  // Collect armed demands in registration order (policies tie-break on it).
  std::vector<std::size_t> idx;
  std::vector<TenantDemand> demands;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& t = tenants_[i];
    if (!t.registered || !t.armed) continue;
    idx.push_back(i);
    demands.push_back(TenantDemand{static_cast<int>(i) + 1, t.desired,
                                   t.pressure, t.weight, t.grant});
  }

  std::vector<int> grants(demands.size(), 0);
  if (!demands.empty()) {
    policy_->arbitrate(budget_, demands, grants);
    // Defensive clamp: a policy must never mint LP; trim from the back so a
    // buggy policy degrades deterministically instead of busting the budget.
    int sum = 0;
    for (int& g : grants) {
      g = std::max(0, g);
      sum += g;
    }
    for (std::size_t k = grants.size(); sum > budget_ && k-- > 0;) {
      const int cut = std::min(grants[k], sum - budget_);
      grants[k] -= cut;
      sum -= cut;
    }

    // Preemption-cost hold: a tenant whose grant the policy shrank, but who
    // grew within the window and still wants the LP, keeps min(current,
    // desired) — reclaiming a fresh ramp-up wastes warm caches and pending
    // provisioning, so the contender waits the window out. Self-requested
    // decreases (desired < current) are never blocked. The budget stays
    // hard: overshoot is clawed back in ascending-pressure order, first
    // from unprotected tenants down to their 1-thread floor, then by
    // stripping protections back to the raw policy grants.
    if (preemption_hold_ > 0.0) {
      const std::vector<int> raw = grants;
      std::vector<char> held(grants.size(), 0);
      int total = sum;
      for (std::size_t k = 0; k < grants.size(); ++k) {
        const Tenant& t = tenants_[idx[k]];
        const int keep = std::min(t.grant, t.desired);
        if (grants[k] < keep && now - t.last_grow < preemption_hold_) {
          total += keep - grants[k];
          grants[k] = keep;
          held[k] = 1;
        }
      }
      if (total > budget_) {
        std::vector<std::size_t> asc(grants.size());
        std::iota(asc.begin(), asc.end(), std::size_t{0});
        std::stable_sort(asc.begin(), asc.end(),
                         [&](std::size_t a, std::size_t b) {
                           return demands[a].pressure < demands[b].pressure;
                         });
        for (const bool strip_held : {false, true}) {
          for (const std::size_t k : asc) {
            if (total <= budget_) break;
            if (static_cast<bool>(held[k]) != strip_held) continue;
            const int floor = strip_held ? raw[k] : std::min(raw[k], 1);
            const int cut = std::min(grants[k] - floor, total - budget_);
            if (cut > 0) {
              grants[k] -= cut;
              total -= cut;
            }
          }
        }
      }
    }
  }

  // Apply: record changes, stamp grow times, and install the grant vector
  // into the pool so the weighted dispatch schedules against it. All under
  // mu_ — reclaim is serialized with every in-flight grant installation, so
  // the pool never holds a mix of old and new vectors.
  int total = 0;
  std::size_t k = 0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& t = tenants_[i];
    int g = 0;
    if (k < idx.size() && idx[k] == i) g = grants[k++];
    if (!t.armed) g = 0;
    if (g != t.grant) {
      push_history_locked(TenantAction{now, static_cast<int>(i) + 1, t.desired,
                                       t.grant, g, t.pressure});
      if (g > t.grant) t.last_grow = now;
      t.grant = g;
      pool_.set_tenant_grant(static_cast<int>(i) + 1, g);
    }
    total += g;
  }
  peak_total_ = std::max(peak_total_, total);
  // Actuate the aggregate. With no armed tenant the pool keeps its last
  // target — the same "disarm leaves the LP alone" semantics as the
  // uncoordinated controller.
  if (total > 0) pool_.set_target_lp(total);
}

void LpBudgetCoordinator::push_history_locked(TenantAction action) {
  // Bounded history: a long-lived coordinator re-arbitrates on every
  // request, so the log keeps only the most recent ~kMaxHistory actions
  // (dropped in halves to stay amortized O(1)).
  if (history_.size() >= kMaxHistory) {
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<long>(kMaxHistory / 2));
  }
  history_.push_back(action);
}

const LpBudgetCoordinator::Tenant* LpBudgetCoordinator::find_locked(
    int tenant) const {
  if (tenant < 1 || tenant > static_cast<int>(tenants_.size())) return nullptr;
  const Tenant& t = tenants_[static_cast<std::size_t>(tenant - 1)];
  return t.registered ? &t : nullptr;
}

LpBudgetCoordinator::Tenant* LpBudgetCoordinator::find_locked(int tenant) {
  return const_cast<Tenant*>(
      std::as_const(*this).find_locked(tenant));
}

}  // namespace askel
