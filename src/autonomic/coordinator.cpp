#include "autonomic/coordinator.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace askel {

LpBudgetCoordinator::LpBudgetCoordinator(ResizableThreadPool& pool, int budget,
                                         const Clock* clock)
    : pool_(pool), clock_(clock) {
  budget_ = budget > 0 ? std::min(budget, pool_.max_lp()) : pool_.max_lp();
  pool_.set_lp_limit(budget_);
}

LpBudgetCoordinator::~LpBudgetCoordinator() {
  // Give the pool back its full range; grants die with the coordinator.
  pool_.set_lp_limit(pool_.max_lp());
}

int LpBudgetCoordinator::budget() const {
  std::lock_guard lock(mu_);
  return budget_;
}

void LpBudgetCoordinator::set_budget(int b) {
  std::lock_guard lock(mu_);
  budget_ = b > 0 ? std::min(b, pool_.max_lp()) : pool_.max_lp();
  pool_.set_lp_limit(budget_);
  arbitrate_locked();
}

int LpBudgetCoordinator::register_tenant(std::string name) {
  std::lock_guard lock(mu_);
  if (!free_ids_.empty()) {
    const int id = free_ids_.back();
    free_ids_.pop_back();
    Tenant& t = tenants_[static_cast<std::size_t>(id - 1)];
    t = Tenant{};  // grant is already 0: unregister arbitrated it away
    t.name = std::move(name);
    t.registered = true;
    return id;
  }
  Tenant t;
  t.name = std::move(name);
  t.registered = true;
  tenants_.push_back(std::move(t));
  return static_cast<int>(tenants_.size());  // ids start at 1
}

void LpBudgetCoordinator::unregister_tenant(int tenant) {
  std::lock_guard lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr) return;
  t->registered = false;
  t->armed = false;
  t->desired = 0;
  t->pressure = 0.0;
  arbitrate_locked();  // returns the grant to the budget (recorded)
  free_ids_.push_back(tenant);
}

int LpBudgetCoordinator::arm_tenant(int tenant) {
  std::lock_guard lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr) return 0;
  // Others, not the tenant itself: a solo tenant re-arming (new goal, same
  // run pattern) must keep inheriting the pool target, like a fresh arm.
  const int armed_others = static_cast<int>(
      std::count_if(tenants_.begin(), tenants_.end(),
                    [&](const Tenant& x) { return x.armed && &x != t; }));
  t->armed = true;
  // A solo tenant inherits the pool's current target, so one coordinated
  // controller starts from exactly the state an uncoordinated one reads.
  // Joiners start at the paper's initial LP of 1 until their first decision.
  t->desired = armed_others == 0 ? std::max(1, pool_.target_lp()) : 1;
  t->pressure = 0.0;
  arbitrate_locked();
  return t->grant;
}

int LpBudgetCoordinator::request(int tenant, int desired, double pressure) {
  std::lock_guard lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr || !t->armed) return 0;
  t->desired = std::max(1, desired);
  t->pressure = pressure;
  arbitrate_locked();
  return t->grant;
}

void LpBudgetCoordinator::release(int tenant) {
  std::lock_guard lock(mu_);
  Tenant* t = find_locked(tenant);
  if (t == nullptr || !t->armed) return;
  t->armed = false;
  t->desired = 0;
  t->pressure = 0.0;
  arbitrate_locked();
}

int LpBudgetCoordinator::granted(int tenant) const {
  std::lock_guard lock(mu_);
  const Tenant* t = find_locked(tenant);
  return t == nullptr ? 0 : t->grant;
}

int LpBudgetCoordinator::total_granted() const {
  std::lock_guard lock(mu_);
  return std::accumulate(
      tenants_.begin(), tenants_.end(), 0,
      [](int acc, const Tenant& t) { return acc + t.grant; });
}

int LpBudgetCoordinator::peak_total_granted() const {
  std::lock_guard lock(mu_);
  return peak_total_;
}

int LpBudgetCoordinator::armed_tenants() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(std::count_if(
      tenants_.begin(), tenants_.end(), [](const Tenant& t) { return t.armed; }));
}

std::vector<LpBudgetCoordinator::TenantAction> LpBudgetCoordinator::history()
    const {
  std::lock_guard lock(mu_);
  return history_;
}

std::vector<LpBudgetCoordinator::TenantAction> LpBudgetCoordinator::history(
    int tenant) const {
  std::lock_guard lock(mu_);
  std::vector<TenantAction> out;
  for (const TenantAction& a : history_) {
    if (a.tenant == tenant) out.push_back(a);
  }
  return out;
}

void LpBudgetCoordinator::arbitrate_locked() {
  // Deadline-pressure order: widest relative goal miss first; ties go to the
  // earlier-registered tenant (deterministic).
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].registered && tenants_[i].armed) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return tenants_[a].pressure > tenants_[b].pressure;
  });

  // Pass 1 — floor: one thread each, in pressure order, while budget lasts
  // (progress for every tenant the budget can possibly cover). Pass 2 —
  // top-up toward each tenant's desired LP, again in pressure order, so
  // contested LP goes to the widest relative miss.
  std::vector<int> next(tenants_.size(), 0);
  int remaining = budget_;
  for (const std::size_t i : order) {
    if (remaining == 0) break;
    next[i] = 1;
    --remaining;
  }
  for (const std::size_t i : order) {
    if (remaining == 0) break;
    const int want = std::min(tenants_[i].desired, budget_) - next[i];
    const int add = std::min(want, remaining);
    if (add > 0) {
      next[i] += add;
      remaining -= add;
    }
  }

  const TimePoint now = clock_->now();
  int total = 0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& t = tenants_[i];
    const int g = t.armed ? next[i] : 0;
    if (g != t.grant) {
      // Bounded history: a long-lived coordinator re-arbitrates on every
      // request, so the log keeps only the most recent ~kMaxHistory actions
      // (dropped in halves to stay amortized O(1)).
      if (history_.size() >= kMaxHistory) {
        history_.erase(history_.begin(),
                       history_.begin() + static_cast<long>(kMaxHistory / 2));
      }
      history_.push_back(TenantAction{now, static_cast<int>(i) + 1, t.desired,
                                      t.grant, g, t.pressure});
      t.grant = g;
    }
    total += g;
  }
  peak_total_ = std::max(peak_total_, total);
  // Actuate the aggregate. With no armed tenant the pool keeps its last
  // target — the same "disarm leaves the LP alone" semantics as the
  // uncoordinated controller.
  if (total > 0) pool_.set_target_lp(total);
}

const LpBudgetCoordinator::Tenant* LpBudgetCoordinator::find_locked(
    int tenant) const {
  if (tenant < 1 || tenant > static_cast<int>(tenants_.size())) return nullptr;
  const Tenant& t = tenants_[static_cast<std::size_t>(tenant - 1)];
  return t.registered ? &t : nullptr;
}

LpBudgetCoordinator::Tenant* LpBudgetCoordinator::find_locked(int tenant) {
  return const_cast<Tenant*>(
      std::as_const(*this).find_locked(tenant));
}

}  // namespace askel
