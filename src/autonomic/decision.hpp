#pragma once
// The LP decision policy, as a pure function of an ADG snapshot — fully
// deterministic and unit-testable without threads.
//
// Paper §4:
//  * increase: "the algorithm to calculate the optimal WCT is a greedy one,
//    while the algorithm to calculate the minimal number of threads to
//    guarantee a WCT goal is NP-Complete" — we greedily search the smallest
//    LP whose limited-LP WCT meets the goal;
//  * when even infinite LP misses the goal, we ramp toward the optimal LP
//    (the best-effort concurrency peak) multiplicatively, which reproduces
//    the paper's gradual thread ramp as estimates refine;
//  * decrease: "first checks if the goal could be targeted using half of the
//    threads; if it can, it decreases the number of threads to the half" —
//    deliberately slower than the increase path.

#include "adg/bounds.hpp"
#include "adg/snapshot.hpp"
#include "est/tail_tracker.hpp"

namespace askel {

enum class DecisionReason : int {
  kNoChange,           // current LP already meets the goal, half would not
  kIncompleteEstimates,// some muscle never observed: wait (paper §4)
  kEmptySnapshot,      // nothing tracked yet
  kUnachievableRamp,   // goal missed even best-effort: ramp toward optimal LP
  kIncreaseToGoal,     // smallest LP meeting the goal
  kIncreaseSaturated,  // no LP <= max meets the goal: use min(optimal, max)
  kDecreaseHalf,       // half the threads still meet the goal
  kDisarmed,           // controller not armed: no goal to plan for, no
                       // Execute step (in particular, no coordinator request
                       // that could race a reclaimed grant back in)
  kProvisionFailed,    // a requested grow never materialized: the worker
                       // backend could not provision (remote join refused or
                       // timed out). The pool already fell back to the
                       // effective LP and the coordinator clawed the grant
                       // back; this action surfaces the episode in the log.
  kInvalidGoal,        // arm() rejected the goal (zero/negative/non-finite
                       // time target — see validate_goals): the controller
                       // stays disarmed rather than feeding a degenerate
                       // deadline's unbounded pressure into arbitration.
  kSloIncrease,        // tail-latency estimate above the SLO: grow LP
  kSloDecrease,        // tail comfortably under the SLO: try half the threads
};

std::string to_string(DecisionReason r);

struct DecisionConfig {
  /// Multiplicative step used on the unachievable path (1 disables ramping
  /// and jumps straight to min(optimal LP, max) — an ablation knob).
  /// 3 matches the paper's observed first step (1 → 3 at 7.6 s in Fig. 5).
  int ramp_factor = 3;
  /// Disable the halving decrease (ablation knob).
  bool allow_decrease = true;
  /// How limited-LP completion times are estimated: the paper's greedy list
  /// schedule, or the O(V+E) Graham bound (optimistic — may under-allocate;
  /// see the wct_algorithms bench for the accuracy/overhead trade-off).
  WctAlgorithm wct_algorithm = WctAlgorithm::kListSchedule;
};

struct Decision {
  int new_lp = 1;
  DecisionReason reason = DecisionReason::kNoChange;
  /// Best-effort (infinite LP) completion estimate, absolute time.
  TimePoint best_effort_wct = 0.0;
  /// Limited-LP completion estimate at the *current* LP, absolute time.
  TimePoint current_lp_wct = 0.0;
  /// Peak concurrency of the best-effort schedule (the paper's optimal LP).
  int optimal_lp = 0;
};

/// Decide the LP for a snapshot given the absolute-time goal.
Decision decide(const AdgSnapshot& g, TimePoint goal_abs, int current_lp,
                int max_lp, const DecisionConfig& cfg = {});

/// Deadline pressure of a decision: how far the limited-LP completion
/// estimate misses the goal, relative to the time still remaining until the
/// deadline. Positive = missing (1.0 means "late by the whole remaining
/// window"), negative = slack, 0 = no estimate yet. The LP-budget coordinator
/// arbitrates contested LP by this value: the widest relative miss wins.
/// Clamped to [-kMaxPressure, kMaxPressure], so even a degenerate window
/// (goal already long past) produces large-but-bounded pressure that
/// arbitration arithmetic can order without overflow.
double goal_pressure(const Decision& d, TimePoint goal_abs, TimePoint now);

/// Ceiling on the magnitude any pressure function reports. Large enough that
/// real contention never saturates it, small enough that sums over a demand
/// vector stay comfortably finite.
inline constexpr double kMaxPressure = 1.0e6;

/// How the SLO controller steers LP from a tail-latency snapshot. The shape
/// mirrors the paper's WCT controller transposed to the latency domain:
/// multiplicative increase proportional to the relative SLO miss (a tail at
/// 2x the goal wants roughly twice the service rate), halving decrease only
/// when the tail sits far enough under the goal that half the threads have
/// headroom to absorb the shift.
struct SloDecisionConfig {
  /// Observations before the tracker is trusted to steer (a P² estimate from
  /// a handful of samples is noise; grants should not chase it).
  long min_observations = 16;
  /// Decrease only when tail < decrease_margin * goal (and LP > 1).
  double decrease_margin = 0.5;
  /// Cap on the multiplicative step of one increase decision.
  int ramp_factor = 2;
};

/// Decide the LP for a service tenant from its tail-latency snapshot and SLO
/// goal (seconds). Pure and deterministic, like decide(). The returned
/// Decision reuses best_effort_wct/current_lp_wct to carry the median/tail
/// estimates (the action log's "what the controller saw" columns).
Decision decide_slo(const TailSnapshot& t, Duration tail_goal, int current_lp,
                    int max_lp, const SloDecisionConfig& cfg = {});

/// SLO pressure: relative tail miss (tail - goal) / goal. Positive = missing
/// the SLO, negative = slack, 0 = warming up or no goal. Same scale and sign
/// convention as goal_pressure, so batch and service tenants arbitrate
/// against each other on one axis; clamped to +-kMaxPressure.
double slo_pressure(const TailSnapshot& t, Duration tail_goal);

}  // namespace askel
