#include "autonomic/controller.hpp"

#include <algorithm>

#include "events/listener.hpp"

namespace askel {

AutonomicController::AutonomicController(ResizableThreadPool& pool,
                                         TrackerSet& trackers, const Clock* clock,
                                         ControllerConfig cfg)
    : pool_(pool), trackers_(trackers), clock_(clock), cfg_(cfg) {}

void AutonomicController::bind_coordinator(LpBudgetCoordinator* coord,
                                           int tenant) {
  std::lock_guard lock(mu_);
  if (armed_) return;  // the binding is fixed while armed
  if (coord != nullptr && tenant < 1) coord = nullptr;  // ids start at 1
  coord_ = coord;
  tenant_ = coord == nullptr ? 0 : tenant;
  if (coord_ != nullptr && sla_weight_ != 1) {
    coord_->set_tenant_weight(tenant_, sla_weight_);
  }
  if (coord_ != nullptr && group_ != 0) {
    coord_->set_tenant_group(tenant_, group_);
  }
}

void AutonomicController::set_sla_weight(int weight) {
  std::lock_guard lock(mu_);
  sla_weight_ = std::max(1, weight);
  if (coord_ != nullptr) coord_->set_tenant_weight(tenant_, sla_weight_);
}

void AutonomicController::set_tenant_group(int group) {
  std::lock_guard lock(mu_);
  group_ = std::max(0, group);
  if (coord_ != nullptr) coord_->set_tenant_group(tenant_, group_);
}

bool AutonomicController::arm(Duration wct_goal_seconds, int max_lp) {
  QoSGoals g;
  g.kind = GoalKind::kWct;
  g.wct_goal = wct_goal_seconds;
  g.max_lp = std::max(0, max_lp);
  return arm_goals(g);
}

bool AutonomicController::arm_slo(Duration tail_goal_seconds, int max_lp,
                                  double quantile) {
  QoSGoals g;
  g.kind = GoalKind::kTailLatency;
  g.tail_goal = tail_goal_seconds;
  g.tail_quantile = quantile;
  g.max_lp = std::max(0, max_lp);
  return arm_goals(g);
}

bool AutonomicController::arm_goals(const QoSGoals& goals) {
  std::lock_guard lock(mu_);
  const TimePoint now = clock_->now();
  if (validate_goals(goals) != nullptr) {
    // Refuse the arm entirely: a zero/negative time goal is a deadline
    // already missed by construction, and the pressure it would report —
    // epsilon-window deadline pressure or division by a zero target — would
    // poison a shared coordinator's arbitration against every honest tenant.
    // One marker action records the episode; the coordinator never hears of
    // this tenant (no arm_tenant), so its water-fill is untouched.
    const int at = current_lp_locked();
    actions_.push_back(
        Action{now, at, at, DecisionReason::kInvalidGoal, 0.0, 0.0});
    armed_ = false;
    return false;
  }
  armed_ = true;
  goals_ = goals;
  goal_abs_ = now + goals.wct_goal;  // meaningful in kWct mode only
  max_lp_goal_ = goals.max_lp;
  tail_ = goals.kind == GoalKind::kTailLatency
              ? std::make_shared<TailTracker>(goals.tail_quantile,
                                              goals.tail_goal)
              : nullptr;
  last_eval_ = -1.0;
  last_reason_ = DecisionReason::kEmptySnapshot;
  evaluations_ = 0;
  actions_.clear();
  // Failures that predate this arm are not this goal's business.
  provision_failures_seen_ = pool_.provision_failures();
  if (coord_ != nullptr) coord_->arm_tenant(tenant_);
  return true;
}

void AutonomicController::disarm() {
  std::lock_guard lock(mu_);
  if (armed_ && coord_ != nullptr) coord_->release(tenant_);
  armed_ = false;
}

bool AutonomicController::armed() const {
  std::lock_guard lock(mu_);
  return armed_;
}

TimePoint AutonomicController::goal_abs() const {
  std::lock_guard lock(mu_);
  return goal_abs_;
}

QoSGoals AutonomicController::goals() const {
  std::lock_guard lock(mu_);
  return goals_;
}

void AutonomicController::record_latency(Duration latency) {
  std::shared_ptr<TailTracker> tracker;
  {
    std::lock_guard lock(mu_);
    if (!armed_ || goals_.kind != GoalKind::kTailLatency) return;
    tracker = tail_;
  }
  if (tracker == nullptr) return;
  tracker->record(latency);
  // Completed requests are the SLO controller's events: re-plan from the
  // updated tail, under the same throttle and try-lock discipline as
  // on_event (a concurrent evaluation already sees fresher tracker state).
  std::unique_lock lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  if (!armed_ || tail_ != tracker) return;  // disarmed or re-armed meanwhile
  const TimePoint now = clock_->now();
  const bool warming = last_reason_ == DecisionReason::kIncompleteEstimates ||
                       last_reason_ == DecisionReason::kEmptySnapshot;
  if (!warming && last_eval_ >= 0.0 && now - last_eval_ < cfg_.min_interval) return;
  evaluate_locked(now);
}

TailSnapshot AutonomicController::tail_snapshot() const {
  std::shared_ptr<TailTracker> tracker;
  {
    std::lock_guard lock(mu_);
    tracker = tail_;
  }
  return tracker == nullptr ? TailSnapshot{} : tracker->snapshot();
}

double AutonomicController::slo_attainment() const {
  std::shared_ptr<TailTracker> tracker;
  {
    std::lock_guard lock(mu_);
    tracker = tail_;
  }
  return tracker == nullptr ? 1.0 : tracker->attainment();
}

int AutonomicController::effective_max_lp() const {
  // Unbound controllers still honor an externally installed pool budget cap
  // (lp_limit == max_lp when none): deciding above it would plan LP the
  // pool will refuse to apply.
  const int hard = coord_ != nullptr ? coord_->budget()
                                     : std::min(pool_.max_lp(), pool_.lp_limit());
  return max_lp_goal_ > 0 ? std::min(max_lp_goal_, hard) : hard;
}

int AutonomicController::current_lp_locked() const {
  // Sharded mode plans against this tenant's granted share; the pool-wide
  // target is the coordinator's aggregate and says nothing about us.
  if (coord_ != nullptr) return std::max(1, coord_->granted(tenant_));
  return pool_.target_lp();
}

EventBus::ListenerPtr AutonomicController::as_listener() {
  return std::make_shared<ObserverListener>([this](const Event& ev) { on_event(ev); });
}

void AutonomicController::on_event(const Event& ev) {
  if (ev.when != When::kAfter) return;
  // Re-estimate when a muscle completes — that is when estimates change.
  switch (ev.where) {
    case Where::kExecute:
    case Where::kSplit:
    case Where::kMerge:
    case Where::kCondition:
      break;
    default:
      return;
  }
  std::unique_lock lock(mu_, std::try_to_lock);
  // Evaluations are serialized; a concurrent one already reflects fresher
  // tracker state than this event, so skipping is safe.
  if (!lock.owns_lock()) return;
  if (!armed_) return;
  const TimePoint now = clock_->now();
  // Throttle only actionable evaluations: while estimates are still warming
  // up, the very next event may be the one that completes them (the first
  // merge in the paper's scenario 1), and it must be evaluated immediately.
  const bool warming = last_reason_ == DecisionReason::kIncompleteEstimates ||
                       last_reason_ == DecisionReason::kEmptySnapshot;
  if (!warming && last_eval_ >= 0.0 && now - last_eval_ < cfg_.min_interval) return;
  evaluate_locked(now);
}

Decision AutonomicController::evaluate_now() {
  std::lock_guard lock(mu_);
  return evaluate_locked(clock_->now());
}

Decision AutonomicController::evaluate_locked(TimePoint now) {
  // A disarmed controller has no goal to plan for, and its Execute step is
  // forbidden: a coordinator request here would land AFTER disarm() released
  // the tenant's grant, re-installing a stale allocation (and logging a
  // phantom action). disarm()/evaluate share mu_, so this check fully
  // serializes reclaim against in-flight evaluations.
  if (!armed_) {
    Decision d;
    d.reason = DecisionReason::kDisarmed;
    d.new_lp = current_lp_locked();
    return d;
  }
  last_eval_ = now;
  ++evaluations_;
  // Surface provisioning failures since the last evaluation: a planned grow
  // the backend could not deliver. The bookkeeping already happened below us
  // (the pool abandoned the request; a bound coordinator clawed the grant
  // back), so this is one marker action — the decision below then re-plans
  // from the LP that actually exists.
  const std::uint64_t failures = pool_.provision_failures();
  if (failures != provision_failures_seen_) {
    provision_failures_seen_ = failures;
    const int at = current_lp_locked();
    actions_.push_back(Action{now, at, at, DecisionReason::kProvisionFailed,
                              0.0, 0.0});
  }
  const int current = current_lp_locked();
  const bool slo_mode = goals_.kind == GoalKind::kTailLatency;
  Decision d;
  double pressure = 0.0;
  if (slo_mode) {
    // Service tenants plan from the latency tail, never the ADG: the stream
    // has no completion time to estimate, only a quantile to hold down.
    const TailSnapshot t =
        tail_ != nullptr ? tail_->snapshot() : TailSnapshot{};
    d = decide_slo(t, goals_.tail_goal, current, effective_max_lp(), cfg_.slo);
    pressure = slo_pressure(t, goals_.tail_goal);
  } else {
    const AdgSnapshot g = trackers_.snapshot(now);
    d = decide(g, goal_abs_, current, effective_max_lp(), cfg_.decision);
    pressure = goal_pressure(d, goal_abs_, now);
  }
  last_reason_ = d.reason;
  int applied = d.new_lp;
  if (coord_ != nullptr) {
    // Request even on no-change decisions: the pressure refresh is what lets
    // the coordinator take LP back from tenants that stopped needing it.
    applied = std::max(1, coord_->request(tenant_, d.new_lp, pressure));
  } else if (d.new_lp != current) {
    // Record what the pool actually installed (identical to d.new_lp unless
    // a budget cap clamped it), so the action log never shows phantom LPs.
    applied = pool_.set_target_lp(d.new_lp);
  }
  if (applied != current) {
    actions_.push_back(Action{now, current, applied, d.reason, d.best_effort_wct,
                              d.current_lp_wct});
  }
  return d;
}

std::vector<AutonomicController::Action> AutonomicController::actions() const {
  std::lock_guard lock(mu_);
  return actions_;
}

long AutonomicController::evaluations() const {
  std::lock_guard lock(mu_);
  return evaluations_;
}

}  // namespace askel
