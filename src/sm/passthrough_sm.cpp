#include "sm/trackers.hpp"

namespace askel {

// ------------------------------------------------------------------- farm --

void FarmTracker::on_event(const Event& ev, EstimateRegistry&) {
  if (ev.where == Where::kSkeleton && ev.when == When::kAfter) mark_finished();
}

std::vector<int> FarmTracker::contribute(SnapshotCtx& c, std::vector<int> preds) const {
  if (!children_.empty()) return children_[0]->contribute(c, std::move(preds));
  return expand_expected(*node_->children()[0], c.est, c.g, preds, c.limits,
                         depth_ + 1);
}

// --------------------------------------------------------------------- if --
//
// The paper's v1.1b1 does not support If ("produces a duplication of the
// whole ADG"); we track the chosen branch once the condition result is known
// and expand the true branch as the expectation before that.

void IfTracker::on_event(const Event& ev, EstimateRegistry& reg) {
  if (ev.where == Where::kCondition) {
    if (ev.when == When::kBefore) {
      cond_ = open_rec(ev, node_->muscles()[0]->name().c_str());
    } else if (cond_ && !cond_->done()) {
      close_rec(*cond_, ev);
      observe_duration_of(reg, *cond_);
    }
  } else if (ev.where == Where::kSkeleton && ev.when == When::kAfter) {
    mark_finished();
  }
}

std::vector<int> IfTracker::contribute(SnapshotCtx& c, std::vector<int> preds) const {
  if (!cond_) return expand_expected(*node_, c.est, c.g, preds, c.limits, depth_);
  const std::vector<int> cur = {add_record(c, *cond_, std::move(preds))};
  if (!children_.empty()) return children_[0]->contribute(c, cur);
  const auto& n = static_cast<const IfNode&>(*node_);
  const SkelNode* branch = cond_->done()
                               ? (cond_->cond_result ? n.true_branch() : n.false_branch())
                               : n.true_branch();
  return expand_expected(*branch, c.est, c.g, cur, c.limits, depth_ + 1);
}

}  // namespace askel
