#include "sm/tracker_set.hpp"

#include "events/listener.hpp"

namespace askel {

// ---------------------------------------------------------------- Tracker --

Tracker::Tracker(const SkelNode* node, std::int64_t exec_id,
                 std::int64_t parent_exec_id)
    : node_(node), exec_id_(exec_id), parent_exec_id_(parent_exec_id) {}

int Tracker::add_record(SnapshotCtx& c, const MuscleRec& rec,
                        std::vector<int> preds) const {
  if (rec.done()) {
    return c.g.add(
        make_done(rec.muscle_id, rec.label, rec.start, *rec.end, std::move(preds)));
  }
  const auto t = c.est.t(rec.muscle_id, depth_);
  Activity a = make_running(rec.muscle_id, rec.label, rec.start, t.value_or(0.0),
                            std::move(preds));
  a.has_estimate = t.has_value();
  return c.g.add(std::move(a));
}

void Tracker::observe_duration_of(EstimateRegistry& reg, const MuscleRec& rec) const {
  reg.observe_duration(rec.muscle_id, depth_, *rec.end - rec.start);
}

MuscleRec Tracker::open_rec(const Event& ev, const char* fallback_label) {
  MuscleRec r;
  r.muscle_id = ev.muscle_id;
  r.label = fallback_label ? fallback_label : "m";
  r.start = ev.timestamp;
  return r;
}

void Tracker::close_rec(MuscleRec& rec, const Event& ev) {
  rec.end = ev.timestamp;
  rec.cond_result = ev.condition_result;
  rec.cardinality = ev.cardinality;
}

TrackerPtr make_tracker(const SkelNode* node, const Event& ev) {
  switch (node->kind()) {
    case SkelKind::kSeq:
      return std::make_shared<SeqTracker>(node, ev.exec_id, ev.parent_exec_id);
    case SkelKind::kFarm:
      return std::make_shared<FarmTracker>(node, ev.exec_id, ev.parent_exec_id);
    case SkelKind::kPipe:
      return std::make_shared<PipeTracker>(node, ev.exec_id, ev.parent_exec_id);
    case SkelKind::kWhile:
      return std::make_shared<WhileTracker>(node, ev.exec_id, ev.parent_exec_id);
    case SkelKind::kFor:
      return std::make_shared<ForTracker>(node, ev.exec_id, ev.parent_exec_id);
    case SkelKind::kIf:
      return std::make_shared<IfTracker>(node, ev.exec_id, ev.parent_exec_id);
    case SkelKind::kMap:
      return std::make_shared<MapTracker>(node, ev.exec_id, ev.parent_exec_id);
    case SkelKind::kFork:
      return std::make_shared<ForkTracker>(node, ev.exec_id, ev.parent_exec_id);
    case SkelKind::kDaC:
      return std::make_shared<DacTracker>(node, ev.exec_id, ev.parent_exec_id);
  }
  return nullptr;  // unreachable
}

// ------------------------------------------------------------- TrackerSet --

TrackerSet::TrackerSet(EstimateRegistry& reg) : reg_(reg) {}

void TrackerSet::on_event(const Event& ev) {
  if (ev.exec_id < 0 || ev.node == nullptr) return;
  std::lock_guard lock(mu_);
  TrackerPtr t;
  const auto it = by_exec_.find(ev.exec_id);
  if (it != by_exec_.end()) {
    t = it->second;
  } else {
    t = make_tracker(ev.node, ev);
    by_exec_.emplace(ev.exec_id, t);
    const auto pit = by_exec_.find(ev.parent_exec_id);
    if (pit != by_exec_.end()) {
      pit->second->attach_child(t);
      t->set_depth(pit->second->depth() + 1);
      // Recursion-level bookkeeping for d&C: a DaC child of a DaC instance of
      // the same static node sits one level deeper.
      auto* child_dac = dynamic_cast<DacTracker*>(t.get());
      auto* parent_dac = dynamic_cast<DacTracker*>(pit->second.get());
      if (child_dac && parent_dac && parent_dac->node() == child_dac->node()) {
        child_dac->set_level(parent_dac->level() + 1);
      }
    } else {
      roots_.push_back(t);
    }
  }
  t->on_event(ev, reg_);
  // The root d&C instance observes |fc| = divide depth when it completes.
  if (t->finished()) {
    if (auto* dac = dynamic_cast<DacTracker*>(t.get()); dac && dac->level() == 0) {
      reg_.observe_cardinality(dac->dac().fc().id(),
                               static_cast<double>(dac->divide_depth()));
    }
  }
}

EventBus::ListenerPtr TrackerSet::as_listener() {
  // One shared adapter for the set's lifetime: repeated registration (e.g. a
  // bus per run sharing one TrackerSet) must not allocate a fresh listener
  // each time. Delivery semantics are unchanged — registering the same
  // adapter twice still yields two registration-order slots.
  std::lock_guard lock(mu_);
  if (!listener_) {
    listener_ = std::make_shared<ObserverListener>(
        [this](const Event& ev) { on_event(ev); });
  }
  return listener_;
}

AdgSnapshot TrackerSet::snapshot(TimePoint now) const {
  std::lock_guard lock(mu_);
  AdgSnapshot g;
  g.now = now;
  if (roots_.empty()) return g;
  const Estimates est = reg_.snapshot();
  SnapshotCtx c{g, est, limits};
  roots_.back()->contribute(c, {});
  return g;
}

TrackerPtr TrackerSet::current_root() const {
  std::lock_guard lock(mu_);
  return roots_.empty() ? nullptr : roots_.back();
}

bool TrackerSet::root_finished() const {
  const TrackerPtr r = current_root();
  return r && r->finished();
}

std::size_t TrackerSet::tracked_instances() const {
  std::lock_guard lock(mu_);
  return by_exec_.size();
}

void TrackerSet::reset() {
  std::lock_guard lock(mu_);
  by_exec_.clear();
  roots_.clear();
}

}  // namespace askel
