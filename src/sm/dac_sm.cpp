#include <algorithm>

#include "sm/trackers.hpp"

namespace askel {

// |fc| for d&C = estimated depth of the recursion tree (paper §4). Each
// dynamic instance is one recursion level; TrackerSet wires `level_` when a
// DaC child of the same static node attaches, and the level-0 instance
// observes divide_depth() into the registry on completion.

void DacTracker::on_event(const Event& ev, EstimateRegistry& reg) {
  switch (ev.where) {
    case Where::kCondition:
      if (ev.when == When::kBefore) {
        cond_ = open_rec(ev, dac().fc().name().c_str());
      } else if (cond_ && !cond_->done()) {
        close_rec(*cond_, ev);
        observe_duration_of(reg, *cond_);
      }
      break;
    case Where::kSplit:
      if (ev.when == When::kBefore) {
        split_ = open_rec(ev, dac().fs().name().c_str());
      } else if (split_ && !split_->done()) {
        close_rec(*split_, ev);
        observe_duration_of(reg, *split_);
        reg.observe_cardinality(split_->muscle_id, depth_,
                                static_cast<double>(split_->cardinality));
      }
      break;
    case Where::kMerge:
      if (ev.when == When::kBefore) {
        merge_ = open_rec(ev, dac().fm().name().c_str());
      } else if (merge_ && !merge_->done()) {
        close_rec(*merge_, ev);
        observe_duration_of(reg, *merge_);
      }
      break;
    case Where::kSkeleton:
      if (ev.when == When::kAfter) mark_finished();
      break;
    default:
      break;
  }
}

long DacTracker::divide_depth() const {
  if (!divided()) return 0;
  long deepest = 0;
  for (const TrackerPtr& child : children_) {
    if (const auto* d = dynamic_cast<const DacTracker*>(child.get())) {
      deepest = std::max(deepest, d->divide_depth());
    }
  }
  return 1 + deepest;
}

std::vector<int> DacTracker::contribute(SnapshotCtx& c, std::vector<int> preds) const {
  if (!cond_) {
    return expand_expected_dac(dac(), c.est, c.g, preds, level_, c.limits, depth_);
  }
  const int cond_id = add_record(c, *cond_, std::move(preds));

  if (!cond_->done()) {
    // Condition still running: assume the estimated-depth decision.
    bool known = false;
    const long rec_depth =
        rounded_cardinality(c.est, dac().fc().id(), 0, &known, depth_);
    if (!known) c.g.complete_estimates = false;
    return expand_dac_body(dac(), c.est, c.g, {cond_id}, level_, level_ < rec_depth,
                           c.limits, depth_);
  }

  if (!divided()) {
    // Leaf: the nested ∆ handles this element.
    if (!children_.empty()) return children_[0]->contribute(c, {cond_id});
    return expand_expected(*node_->children()[0], c.est, c.g, {cond_id}, c.limits,
                           depth_ + 1);
  }

  if (!split_) {
    // Divide decided but split not yet started (sub-microsecond window).
    return expand_dac_body(dac(), c.est, c.g, {cond_id}, level_, true, c.limits,
                           depth_);
  }
  const int split_id = add_record(c, *split_, {cond_id});

  std::vector<int> merge_preds;
  for (const TrackerPtr& child : children_) {
    std::vector<int> t = child->contribute(c, {split_id});
    merge_preds.insert(merge_preds.end(), t.begin(), t.end());
  }
  long card;
  if (split_->done()) {
    card = split_->cardinality;
  } else {
    bool known = false;
    card = rounded_cardinality(c.est, split_->muscle_id,
                               static_cast<long>(children_.size()), &known, depth_);
    if (!known) c.g.complete_estimates = false;
  }
  const long pending = std::max<long>(0, card - static_cast<long>(children_.size()));
  for (long k = 0; k < pending; ++k) {
    std::vector<int> t = expand_expected_dac(dac(), c.est, c.g, {split_id}, level_ + 1,
                                             c.limits, depth_ + 1);
    merge_preds.insert(merge_preds.end(), t.begin(), t.end());
  }
  if (merge_preds.empty()) merge_preds = {split_id};

  if (merge_) return {add_record(c, *merge_, std::move(merge_preds))};
  return {add_pending_muscle(c.g, c.est, dac().fm(), std::move(merge_preds), depth_)};
}

}  // namespace askel
