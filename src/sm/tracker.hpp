#pragma once
// Per-instance state machines ("trackers") driven by skeleton events.
//
// The paper (§4, Figures 3 and 4) attaches a state machine to every dynamic
// skeleton instance; the machine (i) updates the t(m) / |m| estimates on
// After events and (ii) knows enough about the instance's progress to emit
// its slice of the Activity Dependency Graph: done muscle executions with
// actual times, the currently running muscle, and the expected remainder.
//
// One tracker exists per dynamic instance (per exec_id); TrackerSet routes
// events, maintains the parent/child tree, and assembles whole-run snapshots.

#include <memory>
#include <optional>
#include <vector>

#include "adg/expand.hpp"
#include "adg/snapshot.hpp"
#include "est/registry.hpp"
#include "events/event.hpp"
#include "skel/nodes.hpp"

namespace askel {

/// Record of one muscle execution observed via its Before/After events.
struct MuscleRec {
  int muscle_id = -1;
  std::string label;
  TimePoint start = 0.0;
  std::optional<TimePoint> end;
  bool cond_result = false;
  int cardinality = -1;

  bool done() const { return end.has_value(); }
};

class Tracker;
using TrackerPtr = std::shared_ptr<Tracker>;

/// Context handed to Tracker::contribute when building a snapshot.
struct SnapshotCtx {
  AdgSnapshot& g;
  const Estimates& est;
  ExpandLimits limits;
};

class Tracker {
 public:
  Tracker(const SkelNode* node, std::int64_t exec_id, std::int64_t parent_exec_id);
  virtual ~Tracker() = default;

  const SkelNode* node() const { return node_; }
  std::int64_t exec_id() const { return exec_id_; }
  std::int64_t parent_exec_id() const { return parent_exec_id_; }
  bool finished() const { return finished_; }
  const std::vector<TrackerPtr>& children() const { return children_; }

  /// Dynamic nesting depth (0 = root instance); set by TrackerSet at attach.
  /// Feeds per-depth estimation (EstimationScope::kPerDepth).
  int depth() const { return depth_; }
  void set_depth(int d) { depth_ = d; }

  /// Handle an event with ev.exec_id == exec_id(). Updates internal state
  /// and folds actuals into `reg`.
  virtual void on_event(const Event& ev, EstimateRegistry& reg) = 0;

  /// A nested instance sent its first event; attach it in arrival order.
  virtual void attach_child(TrackerPtr child) { children_.push_back(std::move(child)); }

  /// Emit this instance's activities. `preds` are the snapshot ids the
  /// instance waits on; returns the terminal activity ids its result
  /// depends on.
  virtual std::vector<int> contribute(SnapshotCtx& c, std::vector<int> preds) const = 0;

 protected:
  void mark_finished() { finished_ = true; }

  /// Emit one activity for a muscle record (done or running); running
  /// durations use the per-depth estimate of this instance's depth.
  int add_record(SnapshotCtx& c, const MuscleRec& rec, std::vector<int> preds) const;

  /// Fold a closed record's duration into the registry at this depth.
  void observe_duration_of(EstimateRegistry& reg, const MuscleRec& rec) const;

  /// Record helpers shared by concrete trackers.
  static MuscleRec open_rec(const Event& ev, const char* fallback_label);
  static void close_rec(MuscleRec& rec, const Event& ev);

  const SkelNode* node_;
  std::int64_t exec_id_;
  std::int64_t parent_exec_id_;
  int depth_ = 0;
  bool finished_ = false;
  std::vector<TrackerPtr> children_;
};

/// Create the tracker matching `node->kind()`.
TrackerPtr make_tracker(const SkelNode* node, const Event& first_event);

}  // namespace askel
