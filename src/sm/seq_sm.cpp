#include "sm/trackers.hpp"

namespace askel {

// Figure 3: seq(fe)@b(i) stores the start timestamp; seq(fe)@a(i) updates
// t(fe) = ρ(now − eti) + (1−ρ)t(fe) and moves to F.
void SeqTracker::on_event(const Event& ev, EstimateRegistry& reg) {
  if (ev.where != Where::kExecute) return;
  if (ev.when == When::kBefore) {
    const auto& seq = static_cast<const SeqNode&>(*node_);
    fe_ = open_rec(ev, seq.fe().name().c_str());
  } else if (fe_ && !fe_->done()) {
    close_rec(*fe_, ev);
    observe_duration_of(reg, *fe_);
    mark_finished();
  }
}

std::vector<int> SeqTracker::contribute(SnapshotCtx& c, std::vector<int> preds) const {
  if (!fe_) return expand_expected(*node_, c.est, c.g, preds, c.limits, depth_);
  return {add_record(c, *fe_, std::move(preds))};
}

}  // namespace askel
