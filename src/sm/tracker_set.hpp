#pragma once
// TrackerSet: routes events to per-instance trackers, maintains the dynamic
// nesting tree, and assembles whole-run AdgSnapshots on demand.
//
// Register it on the engine's EventBus (as_listener()); it then mirrors every
// execution it observes. One TrackerSet normally tracks one run at a time;
// `snapshot` works on the most recently started root instance.

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "events/event_bus.hpp"
#include "sm/trackers.hpp"

namespace askel {

class TrackerSet {
 public:
  explicit TrackerSet(EstimateRegistry& reg);

  /// Feed one event (thread-safe; normally called via the bus listener).
  void on_event(const Event& ev);

  /// Listener adapter for EventBus registration.
  EventBus::ListenerPtr as_listener();

  /// Build the ADG of the current root at observation time `now`.
  /// Returns an empty snapshot if no execution has been observed.
  AdgSnapshot snapshot(TimePoint now) const;

  /// Root tracker of the most recently started execution (null if none).
  TrackerPtr current_root() const;
  bool root_finished() const;
  std::size_t tracked_instances() const;

  /// Forget all trackers (estimates in the registry are kept).
  void reset();

  /// Expansion guard applied when building snapshots.
  ExpandLimits limits;

 private:
  mutable std::mutex mu_;
  EstimateRegistry& reg_;
  EventBus::ListenerPtr listener_;  // lazily-built shared bus adapter
  std::unordered_map<std::int64_t, TrackerPtr> by_exec_;
  std::vector<TrackerPtr> roots_;
};

}  // namespace askel
