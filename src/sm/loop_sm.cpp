#include <algorithm>

#include "sm/trackers.hpp"

namespace askel {

// ------------------------------------------------------------------ while --
//
// |fc| for While = estimated number of times the condition returns true over
// one execution (paper §4). The tracker counts observed `true` results and
// folds the count into the registry when the final `false` arrives.

void WhileTracker::on_event(const Event& ev, EstimateRegistry& reg) {
  switch (ev.where) {
    case Where::kCondition:
      if (ev.when == When::kBefore) {
        conds_.push_back(open_rec(ev, node_->muscles()[0]->name().c_str()));
      } else if (!conds_.empty() && !conds_.back().done()) {
        MuscleRec& rec = conds_.back();
        close_rec(rec, ev);
        observe_duration_of(reg, rec);
        if (ev.condition_result) {
          ++true_count_;
        } else {
          reg.observe_cardinality(rec.muscle_id, depth_,
                                  static_cast<double>(true_count_));
        }
      }
      break;
    case Where::kSkeleton:
      if (ev.when == When::kAfter) mark_finished();
      break;
    default:
      break;
  }
}

std::vector<int> WhileTracker::contribute(SnapshotCtx& c, std::vector<int> preds) const {
  if (conds_.empty())
    return expand_expected(*node_, c.est, c.g, preds, c.limits, depth_);
  const SkelNode& body = *node_->children()[0];
  const ConditionMuscle& fc = *static_cast<const ConditionMuscle*>(node_->muscles()[0]);

  std::vector<int> cur = std::move(preds);
  std::size_t child_cursor = 0;
  bool cond_running = false;
  for (const MuscleRec& rec : conds_) {
    cur = {add_record(c, rec, std::move(cur))};
    if (!rec.done()) {
      cond_running = true;
      break;
    }
    if (rec.cond_result) {
      if (child_cursor < children_.size()) {
        cur = children_[child_cursor++]->contribute(c, std::move(cur));
      } else {
        // Body queued but its first event has not arrived yet.
        cur = expand_expected(body, c.est, c.g, cur, c.limits, depth_ + 1);
      }
    }
  }
  if (finished_) return cur;

  // Expected tail: remaining = |fc| estimate minus observed `true` results.
  bool known = false;
  const long est_total =
      rounded_cardinality(c.est, fc.id(), true_count_, &known, depth_);
  if (!known) c.g.complete_estimates = false;
  const long remaining = std::max<long>(0, est_total - true_count_);

  if (cond_running) {
    // The running condition counts as the next of the `remaining` trues (if
    // any are expected); its body and the rest of the loop follow it.
    if (remaining > 0) {
      cur = expand_expected(body, c.est, c.g, cur, c.limits, depth_ + 1);
      for (long k = 1; k < remaining; ++k) {
        cur = {add_pending_muscle(c.g, c.est, fc, std::move(cur), depth_)};
        cur = expand_expected(body, c.est, c.g, cur, c.limits, depth_ + 1);
      }
      cur = {add_pending_muscle(c.g, c.est, fc, std::move(cur), depth_)};
    }
    return cur;
  }
  // Last recorded step was a completed body (or its expectation): the next
  // condition is pending, then the remaining loop turns, then the final
  // (false) condition.
  for (long k = 0; k < remaining; ++k) {
    cur = {add_pending_muscle(c.g, c.est, fc, std::move(cur), depth_)};
    cur = expand_expected(body, c.est, c.g, cur, c.limits, depth_ + 1);
  }
  cur = {add_pending_muscle(c.g, c.est, fc, std::move(cur), depth_)};
  return cur;
}

// -------------------------------------------------------------------- for --

void ForTracker::on_event(const Event& ev, EstimateRegistry&) {
  if (ev.where == Where::kSkeleton && ev.when == When::kAfter) mark_finished();
}

std::vector<int> ForTracker::contribute(SnapshotCtx& c, std::vector<int> preds) const {
  const auto& n = static_cast<const ForNode&>(*node_);
  const SkelNode& body = *node_->children()[0];
  std::vector<int> cur = std::move(preds);
  for (const TrackerPtr& child : children_) cur = child->contribute(c, std::move(cur));
  const long remaining =
      std::max<long>(0, n.iterations() - static_cast<long>(children_.size()));
  for (long k = 0; k < remaining; ++k)
    cur = expand_expected(body, c.est, c.g, cur, c.limits, depth_ + 1);
  return cur;
}

}  // namespace askel
