#include <algorithm>

#include "sm/trackers.hpp"

namespace askel {

// Figure 4: @bs stores sti; @as updates t(fs) and |fs|; children run their
// own machines; @bm stores mti; @am updates t(fm) and moves to F.

const SplitMuscle* MapLikeTracker::split_muscle() const {
  return static_cast<const SplitMuscle*>(node_->muscles()[0]);
}

const MergeMuscle* MapLikeTracker::merge_muscle() const {
  return static_cast<const MergeMuscle*>(node_->muscles()[1]);
}

void MapLikeTracker::on_event(const Event& ev, EstimateRegistry& reg) {
  switch (ev.where) {
    case Where::kSplit:
      if (ev.when == When::kBefore) {
        split_ = open_rec(ev, split_muscle()->name().c_str());
      } else if (split_ && !split_->done()) {
        close_rec(*split_, ev);
        observe_duration_of(reg, *split_);
        reg.observe_cardinality(split_->muscle_id, depth_,
                                static_cast<double>(split_->cardinality));
      }
      break;
    case Where::kMerge:
      if (ev.when == When::kBefore) {
        merge_ = open_rec(ev, merge_muscle()->name().c_str());
      } else if (merge_ && !merge_->done()) {
        close_rec(*merge_, ev);
        observe_duration_of(reg, *merge_);
      }
      break;
    case Where::kSkeleton:
      if (ev.when == When::kAfter) mark_finished();
      break;
    default:
      break;
  }
}

std::vector<int> MapLikeTracker::contribute(SnapshotCtx& c,
                                            std::vector<int> preds) const {
  if (!split_) {
    // Not even the split has started: the whole instance is expected-only.
    return expand_expected(*node_, c.est, c.g, preds, c.limits, depth_);
  }
  const int split_id = add_record(c, *split_, std::move(preds));

  std::vector<int> merge_preds;
  for (const TrackerPtr& child : children_) {
    std::vector<int> t = child->contribute(c, {split_id});
    merge_preds.insert(merge_preds.end(), t.begin(), t.end());
  }

  long card;
  if (split_->done()) {
    card = split_->cardinality;
  } else {
    bool known = false;
    card = rounded_cardinality(c.est, split_->muscle_id,
                               static_cast<long>(children_.size()), &known, depth_);
    if (!known) c.g.complete_estimates = false;
  }
  const long pending = std::max<long>(0, card - static_cast<long>(children_.size()));
  for (long k = 0; k < pending; ++k) {
    std::vector<int> t =
        expand_expected(*pending_child_node(static_cast<std::size_t>(k)), c.est, c.g,
                        {split_id}, c.limits, depth_ + 1);
    merge_preds.insert(merge_preds.end(), t.begin(), t.end());
  }
  if (merge_preds.empty()) merge_preds = {split_id};

  if (merge_) return {add_record(c, *merge_, std::move(merge_preds))};
  return {add_pending_muscle(c.g, c.est, *merge_muscle(), std::move(merge_preds),
                             depth_)};
}

}  // namespace askel
