#include "sm/trackers.hpp"

namespace askel {

void PipeTracker::on_event(const Event& ev, EstimateRegistry&) {
  if (ev.where == Where::kSkeleton && ev.when == When::kAfter) mark_finished();
}

std::vector<int> PipeTracker::contribute(SnapshotCtx& c, std::vector<int> preds) const {
  const auto stages = node_->children();
  std::vector<int> cur = std::move(preds);
  std::size_t k = 0;
  // Stages run strictly in order, so attached children are stage 0..k-1.
  for (; k < children_.size(); ++k) cur = children_[k]->contribute(c, std::move(cur));
  for (; k < stages.size(); ++k)
    cur = expand_expected(*stages[k], c.est, c.g, cur, c.limits, depth_ + 1);
  return cur;
}

}  // namespace askel
