#pragma once
// Concrete per-skeleton state machines.
//
// SeqTracker implements Figure 3, MapTracker Figure 4; the others follow the
// same pattern for the remaining skeletons. Fork and If are tracked too —
// the paper's v1.1b1 leaves them unsupported ("under construction"); we track
// Fork like Map (branch-cycled children) and If by expanding the true branch
// until the condition result is known (documented deviation in DESIGN.md).

#include "sm/tracker.hpp"

namespace askel {

/// seq(fe): I --@b--> running --@a--> F  (Figure 3).
class SeqTracker final : public Tracker {
 public:
  using Tracker::Tracker;
  void on_event(const Event& ev, EstimateRegistry& reg) override;
  std::vector<int> contribute(SnapshotCtx& c, std::vector<int> preds) const override;

 private:
  std::optional<MuscleRec> fe_;
};

/// Shared machine for map and fork (Figure 4): I --@bs--> splitting --@as-->
/// S (children) --@bm--> M --@am--> F.
class MapLikeTracker : public Tracker {
 public:
  using Tracker::Tracker;
  void on_event(const Event& ev, EstimateRegistry& reg) override;
  std::vector<int> contribute(SnapshotCtx& c, std::vector<int> preds) const override;

 protected:
  /// Static node executed by the k-th not-yet-started child.
  virtual const SkelNode* pending_child_node(std::size_t ordinal) const = 0;
  const SplitMuscle* split_muscle() const;
  const MergeMuscle* merge_muscle() const;

  std::optional<MuscleRec> split_;
  std::optional<MuscleRec> merge_;
};

class MapTracker final : public MapLikeTracker {
 public:
  using MapLikeTracker::MapLikeTracker;

 protected:
  const SkelNode* pending_child_node(std::size_t) const override {
    return node_->children()[0];
  }
};

class ForkTracker final : public MapLikeTracker {
 public:
  using MapLikeTracker::MapLikeTracker;

 protected:
  const SkelNode* pending_child_node(std::size_t ordinal) const override {
    const auto kids = node_->children();
    // Started children occupy the lowest indices; cycle like the engine does.
    return kids[(children_.size() + ordinal) % kids.size()];
  }
};

/// pipe(∆1,∆2): stages run strictly in order.
class PipeTracker final : public Tracker {
 public:
  using Tracker::Tracker;
  void on_event(const Event& ev, EstimateRegistry& reg) override;
  std::vector<int> contribute(SnapshotCtx& c, std::vector<int> preds) const override;
};

/// farm(∆): transparent wrapper around one child instance.
class FarmTracker final : public Tracker {
 public:
  using Tracker::Tracker;
  void on_event(const Event& ev, EstimateRegistry& reg) override;
  std::vector<int> contribute(SnapshotCtx& c, std::vector<int> preds) const override;
};

/// if(fc,∆t,∆f): condition then the chosen branch.
class IfTracker final : public Tracker {
 public:
  using Tracker::Tracker;
  void on_event(const Event& ev, EstimateRegistry& reg) override;
  std::vector<int> contribute(SnapshotCtx& c, std::vector<int> preds) const override;

 private:
  std::optional<MuscleRec> cond_;
};

/// while(fc,∆): alternating condition/body chain; |fc| = #true observed.
class WhileTracker final : public Tracker {
 public:
  using Tracker::Tracker;
  void on_event(const Event& ev, EstimateRegistry& reg) override;
  std::vector<int> contribute(SnapshotCtx& c, std::vector<int> preds) const override;
  long true_count() const { return true_count_; }

 private:
  std::vector<MuscleRec> conds_;
  long true_count_ = 0;
};

/// for(n,∆): n body instances in sequence.
class ForTracker final : public Tracker {
 public:
  using Tracker::Tracker;
  void on_event(const Event& ev, EstimateRegistry& reg) override;
  std::vector<int> contribute(SnapshotCtx& c, std::vector<int> preds) const override;
};

/// d&C(fc,fs,∆,fm): one tracker per recursion level; the root (level 0)
/// observes |fc| = max divide depth when it finishes.
class DacTracker final : public Tracker {
 public:
  using Tracker::Tracker;
  void on_event(const Event& ev, EstimateRegistry& reg) override;
  std::vector<int> contribute(SnapshotCtx& c, std::vector<int> preds) const override;

  void set_level(long level) { level_ = level; }
  long level() const { return level_; }
  /// 0 when this instance did not divide; else 1 + max over children.
  long divide_depth() const;
  bool divided() const { return cond_ && cond_->done() && cond_->cond_result; }
  const DacNode& dac() const { return static_cast<const DacNode&>(*node_); }

 private:
  std::optional<MuscleRec> cond_;
  std::optional<MuscleRec> split_;
  std::optional<MuscleRec> merge_;
  long level_ = 0;
};

}  // namespace askel
