// Tests for the latency-SLO service family: the seeded open-loop stream
// generator, the P² tail tracker, the decide_slo policy, the controller's
// SLO mode (including the zero-goal rejection that protects a shared
// coordinator), and the coordinated-vs-FIFO attainment smoke comparison.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "autonomic/controller.hpp"
#include "autonomic/coordinator.hpp"
#include "est/tail_tracker.hpp"
#include "workload/service.hpp"

namespace askel {
namespace {

// ------------------------------------------------------------------ stream --

ServiceStreamConfig small_stream() {
  ServiceStreamConfig cfg;
  cfg.seed = 11;
  cfg.tenants = 3;
  cfg.duration_s = 2.0;
  cfg.total_rate_hz = 300.0;
  cfg.zipf_skew = 1.0;
  return cfg;
}

TEST(ServiceStream, DeterministicForFixedSeed) {
  const ServiceStreamConfig cfg = small_stream();
  const std::vector<ServiceRequest> a = generate_service_stream(cfg);
  const std::vector<ServiceRequest> b = generate_service_stream(cfg);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_DOUBLE_EQ(a[i].work, b[i].work);
  }
}

TEST(ServiceStream, DifferentSeedsDiffer) {
  ServiceStreamConfig cfg = small_stream();
  const std::vector<ServiceRequest> a = generate_service_stream(cfg);
  cfg.seed = 12;
  const std::vector<ServiceRequest> b = generate_service_stream(cfg);
  bool differ = a.size() != b.size();
  for (std::size_t i = 0; !differ && i < a.size(); ++i) {
    differ = a[i].arrival != b[i].arrival;
  }
  EXPECT_TRUE(differ);
}

TEST(ServiceStream, ArrivalsSortedWithinHorizonWorkBounded) {
  ServiceStreamConfig cfg = small_stream();
  cfg.diurnal_amplitude = 0.5;
  cfg.bursty = true;
  const std::vector<ServiceRequest> reqs = generate_service_stream(cfg);
  ASSERT_FALSE(reqs.empty());
  double prev = 0.0;
  for (const ServiceRequest& r : reqs) {
    EXPECT_GE(r.arrival, prev);
    EXPECT_LT(r.arrival, cfg.duration_s);
    EXPECT_GT(r.work, 0.0);
    EXPECT_LE(r.work, cfg.service_cap_s);
    EXPECT_GE(r.tenant, 0);
    EXPECT_LT(r.tenant, cfg.tenants);
    prev = r.arrival;
  }
}

TEST(ServiceStream, ZipfSkewMakesTenantZeroHottest) {
  const std::vector<ServiceRequest> reqs =
      generate_service_stream(small_stream());
  std::vector<long> count(3, 0);
  for (const ServiceRequest& r : reqs) ++count[r.tenant];
  // Zipf s=1 over 3 tenants: pmf = {6/11, 3/11, 2/11}; with ~600 expected
  // arrivals the rank order is statistically safe.
  EXPECT_GT(count[0], count[1]);
  EXPECT_GT(count[1], count[2]);
}

TEST(ServiceStream, RequestCountTracksNominalRate) {
  const ServiceStreamConfig cfg = small_stream();
  const auto n =
      static_cast<double>(generate_service_stream(cfg).size());
  const double expected = cfg.total_rate_hz * cfg.duration_s;
  EXPECT_GT(n, 0.7 * expected);
  EXPECT_LT(n, 1.3 * expected);
}

TEST(ServiceStream, BurstyEnvelopePreservesExpectedVolume) {
  ServiceStreamConfig cfg = small_stream();
  const auto plain = static_cast<double>(generate_service_stream(cfg).size());
  cfg.bursty = true;
  const auto bursty = static_cast<double>(generate_service_stream(cfg).size());
  // The envelope is normalized to mean 1, so volume moves by noise, not 2x.
  EXPECT_GT(bursty, 0.6 * plain);
  EXPECT_LT(bursty, 1.6 * plain);
}

// ------------------------------------------------------------ tail tracker --

TEST(TailTracker, AttainmentCountsExactly) {
  TailTracker t(0.99, /*target=*/0.1);
  EXPECT_DOUBLE_EQ(t.attainment(), 1.0);  // idle tenant is not missing
  for (int k = 0; k < 8; ++k) t.record(0.05);
  for (int k = 0; k < 2; ++k) t.record(0.2);
  const TailSnapshot s = t.snapshot();
  EXPECT_EQ(s.observations, 10);
  EXPECT_EQ(s.met, 8);
  EXPECT_DOUBLE_EQ(t.attainment(), 0.8);
}

TEST(TailTracker, ResetForgets) {
  TailTracker t(0.99, 0.1);
  for (int k = 0; k < 10; ++k) t.record(0.5);
  t.reset();
  const TailSnapshot s = t.snapshot();
  EXPECT_EQ(s.observations, 0);
  EXPECT_DOUBLE_EQ(t.attainment(), 1.0);
}

TEST(TailTracker, TailDominatesMedianOnHeavyTail) {
  // Deterministic heavy-tailed latencies: mostly 10 ms, every 20th ~200 ms.
  TailTracker t(0.99);
  for (int k = 1; k <= 400; ++k) {
    t.record(k % 20 == 0 ? 0.2 : 0.01);
    if (k >= 10) {
      const TailSnapshot s = t.snapshot();
      EXPECT_GE(s.tail, s.median) << "at observation " << k;
    }
  }
}

// --------------------------------------------------------------- decide_slo --

TailSnapshot snap(double tail, double median, long obs) {
  TailSnapshot s;
  s.tail = tail;
  s.median = median;
  s.observations = obs;
  return s;
}

TEST(DecideSlo, RejectsDegenerateGoal) {
  const Decision d = decide_slo(snap(0.2, 0.1, 100), /*goal=*/0.0, 2, 8);
  EXPECT_EQ(d.reason, DecisionReason::kInvalidGoal);
  EXPECT_EQ(d.new_lp, 2);
}

TEST(DecideSlo, WaitsForObservations) {
  EXPECT_EQ(decide_slo(snap(0, 0, 0), 0.1, 2, 8).reason,
            DecisionReason::kEmptySnapshot);
  EXPECT_EQ(decide_slo(snap(0.2, 0.1, 5), 0.1, 2, 8).reason,
            DecisionReason::kIncompleteEstimates);
}

TEST(DecideSlo, GrowsProportionallyToTheMiss) {
  // Tail at 1.5x the goal from LP 4: proportional target is ceil(6) = 6.
  const Decision d = decide_slo(snap(0.15, 0.05, 100), 0.1, 4, 16);
  EXPECT_EQ(d.reason, DecisionReason::kSloIncrease);
  EXPECT_EQ(d.new_lp, 6);
}

TEST(DecideSlo, RampFactorCapsTheStep) {
  // Tail at 10x the goal, ramp_factor 2: one step at most doubles.
  const Decision d = decide_slo(snap(1.0, 0.5, 100), 0.1, 4, 16);
  EXPECT_EQ(d.reason, DecisionReason::kSloIncrease);
  EXPECT_EQ(d.new_lp, 8);
}

TEST(DecideSlo, CeilingHoldsAtMaxLp) {
  const Decision d = decide_slo(snap(1.0, 0.5, 100), 0.1, 8, 8);
  EXPECT_EQ(d.reason, DecisionReason::kNoChange);
  EXPECT_EQ(d.new_lp, 8);
}

TEST(DecideSlo, HalvesWhenComfortablyUnder) {
  const Decision d = decide_slo(snap(0.02, 0.01, 100), 0.1, 8, 16);
  EXPECT_EQ(d.reason, DecisionReason::kSloDecrease);
  EXPECT_EQ(d.new_lp, 4);
}

TEST(DecideSlo, HoldsInsideTheComfortBand) {
  // Tail between decrease_margin*goal and goal: no churn in either direction.
  const Decision d = decide_slo(snap(0.08, 0.04, 100), 0.1, 4, 16);
  EXPECT_EQ(d.reason, DecisionReason::kNoChange);
  EXPECT_EQ(d.new_lp, 4);
}

TEST(SloPressure, SignScaleAndClamp) {
  EXPECT_DOUBLE_EQ(slo_pressure(snap(0.2, 0.1, 10), 0.1), 1.0);   // 2x = 1.0
  EXPECT_DOUBLE_EQ(slo_pressure(snap(0.05, 0.02, 10), 0.1), -0.5);
  EXPECT_DOUBLE_EQ(slo_pressure(snap(0.2, 0.1, 0), 0.1), 0.0);    // warming
  EXPECT_DOUBLE_EQ(slo_pressure(snap(0.2, 0.1, 10), 0.0), 0.0);   // no goal
  EXPECT_DOUBLE_EQ(slo_pressure(snap(1e12, 0.1, 10), 1e-3), kMaxPressure);
}

// -------------------------------------------------------- controller (SLO) --

TEST(SloController, TailPressureGrowsTheGrant) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 8);
  EstimateRegistry reg;
  TrackerSet trackers(reg);
  ManualClock clock;
  AutonomicController ctl(pool, trackers, &clock);
  const int tenant = coord.register_tenant("svc");
  ctl.bind_coordinator(&coord, tenant);
  ASSERT_TRUE(ctl.arm_slo(/*tail_goal=*/0.05, /*max_lp=*/8));
  EXPECT_EQ(ctl.goals().kind, GoalKind::kTailLatency);

  const int before = coord.granted(tenant);
  for (int k = 0; k < 64; ++k) {
    clock.advance(0.01);
    ctl.record_latency(0.2);  // 4x the goal, every time
  }
  EXPECT_GT(coord.granted(tenant), before);
  EXPECT_GT(ctl.tail_snapshot().tail, 0.05);
  EXPECT_LT(ctl.slo_attainment(), 0.01);

  ctl.disarm();
  EXPECT_EQ(coord.granted(tenant), 0);
  coord.unregister_tenant(tenant);
}

TEST(SloController, ComfortableTailReleasesLp) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 8);
  EstimateRegistry reg;
  TrackerSet trackers(reg);
  ManualClock clock;
  AutonomicController ctl(pool, trackers, &clock);
  const int tenant = coord.register_tenant("svc");
  ctl.bind_coordinator(&coord, tenant);
  ASSERT_TRUE(ctl.arm_slo(0.05, 8));
  for (int k = 0; k < 64; ++k) {
    clock.advance(0.01);
    ctl.record_latency(0.2);
  }
  const int grown = coord.granted(tenant);
  ASSERT_GT(grown, 1);
  // The goal is re-armed fresh (new tracker), then fed comfortable latencies.
  ASSERT_TRUE(ctl.arm_slo(0.05, 8));
  for (int k = 0; k < 64; ++k) {
    clock.advance(0.01);
    ctl.record_latency(0.001);  // far under the goal
  }
  EXPECT_LT(coord.granted(tenant), grown);
  EXPECT_DOUBLE_EQ(ctl.slo_attainment(), 1.0);
  ctl.disarm();
  coord.unregister_tenant(tenant);
}

// --------------------------------------------- zero-goal rejection (bugfix) --

TEST(GoalValidation, RejectsDegenerateGoals) {
  QoSGoals g;  // defaults: kWct with wct_goal 0 — the historical footgun
  EXPECT_NE(validate_goals(g), nullptr);
  g.wct_goal = -1.0;
  EXPECT_NE(validate_goals(g), nullptr);
  g.wct_goal = std::numeric_limits<double>::infinity();
  EXPECT_NE(validate_goals(g), nullptr);
  g.wct_goal = 5.0;
  EXPECT_EQ(validate_goals(g), nullptr);

  QoSGoals slo;
  slo.kind = GoalKind::kTailLatency;
  slo.tail_goal = 0.0;
  EXPECT_NE(validate_goals(slo), nullptr);
  slo.tail_goal = 0.05;
  slo.tail_quantile = 1.0;
  EXPECT_NE(validate_goals(slo), nullptr);
  slo.tail_quantile = 0.99;
  EXPECT_EQ(validate_goals(slo), nullptr);

  QoSGoals neg = g;
  neg.max_lp = -1;
  EXPECT_NE(validate_goals(neg), nullptr);
}

TEST(ZeroGoal, ArmRejectsAndStaysDisarmed) {
  ResizableThreadPool pool(1, 4);
  EstimateRegistry reg;
  TrackerSet trackers(reg);
  ManualClock clock;
  AutonomicController ctl(pool, trackers, &clock);
  EXPECT_FALSE(ctl.arm(0.0));
  EXPECT_FALSE(ctl.armed());
  EXPECT_FALSE(ctl.arm(-3.0));
  EXPECT_FALSE(ctl.arm_slo(0.0));
  const auto actions = ctl.actions();
  ASSERT_FALSE(actions.empty());
  for (const auto& a : actions) {
    EXPECT_EQ(a.reason, DecisionReason::kInvalidGoal);
    EXPECT_EQ(a.from_lp, a.to_lp);  // nothing was actuated
  }
  // A valid arm still works after rejections.
  EXPECT_TRUE(ctl.arm(5.0));
  EXPECT_TRUE(ctl.armed());
}

TEST(ZeroGoal, RejectedTenantCannotPoisonTheCoordinator) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 8);
  EstimateRegistry reg_victim, reg_bogus;
  TrackerSet trackers_victim(reg_victim), trackers_bogus(reg_bogus);
  ManualClock clock;

  AutonomicController victim(pool, trackers_victim, &clock);
  const int vt = coord.register_tenant("victim");
  victim.bind_coordinator(&coord, vt);
  ASSERT_TRUE(victim.arm(10.0, 8));
  coord.request(vt, 8, /*pressure=*/0.5);
  ASSERT_EQ(coord.granted(vt), 8);  // sole tenant: full budget

  AutonomicController bogus(pool, trackers_bogus, &clock);
  const int bt = coord.register_tenant("zero-goal");
  bogus.bind_coordinator(&coord, bt);
  EXPECT_FALSE(bogus.arm(0.0, 8));

  // The rejected tenant never armed with the coordinator: the active set
  // excludes it and the honest tenant's water-fill share is untouched.
  const std::vector<int> active = coord.active_tenants();
  EXPECT_EQ(active, std::vector<int>{vt});
  EXPECT_EQ(coord.granted(bt), 0);
  EXPECT_EQ(coord.granted(vt), 8);
  EXPECT_EQ(coord.request(vt, 8, 0.5), 8);  // re-arbitration unchanged

  victim.disarm();
  coord.unregister_tenant(vt);
  coord.unregister_tenant(bt);
}

// ------------------------------------------------- scenario (smoke, timed) --

TEST(ServiceScenario, CoordinatedBeatsFifoBaselineUnderAggressor) {
  // Smoke-sized replay of the bench scenario: one SLO tenant (hot, weight 3)
  // plus background traffic, against a flooding aggressor. Coordinated mode
  // must hold the p99 goal strictly better than the FIFO/no-coordinator
  // baseline — the flood makes the baseline dramatically worse, so the
  // comparison is robust even on a loaded 1-core CI box.
  ServiceScenarioConfig cfg;
  cfg.stream.seed = 7;
  cfg.stream.tenants = 2;
  cfg.stream.duration_s = 1.2;
  cfg.stream.total_rate_hz = 60.0;
  cfg.stream.mean_service_s = 0.002;
  cfg.stream.service_cap_s = 0.02;
  cfg.specs = {ServiceTenantSpec{/*tail_goal_s=*/0.1, /*weight=*/3},
               ServiceTenantSpec{}};
  cfg.max_lp = 4;
  cfg.aggressor = true;
  cfg.aggressor_work_s = 0.02;

  cfg.coordinated = true;
  const ServiceScenarioResult coordinated = run_service_scenario(cfg);
  cfg.coordinated = false;
  const ServiceScenarioResult baseline = run_service_scenario(cfg);

  ASSERT_EQ(coordinated.tenants.size(), 2u);
  ASSERT_EQ(baseline.tenants.size(), 2u);
  // Identical seeds => identical schedules on both sides.
  EXPECT_EQ(coordinated.total_requests, baseline.total_requests);
  EXPECT_GT(coordinated.total_requests, 0);
  EXPECT_TRUE(coordinated.budget_held);
  EXPECT_GT(coordinated.tenants[0].peak_grant, 0);
  EXPECT_FALSE(coordinated.tenants[0].attainment_curve.empty());

  EXPECT_GT(coordinated.tenants[0].attainment,
            baseline.tenants[0].attainment);
}

}  // namespace
}  // namespace askel
