// Concurrency stress tests for the contention-free hot paths: pool churn
// under live LP resizing, EventBus add/remove/dispatch races, and registry
// observe/snapshot races. All of these must run clean under
// `cmake -DASKEL_TSAN=ON` (ThreadSanitizer) as well as plain builds.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "est/registry.hpp"
#include "events/event_bus.hpp"
#include "runtime/mpsc_queue.hpp"
#include "runtime/thread_pool.hpp"

namespace askel {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------------- pool --

TEST(PoolStress, NestedSubmissionWhileLpShrinksAndGrows) {
  ResizableThreadPool pool(4, 8);
  std::atomic<long> done{0};
  constexpr int kRoots = 64;
  constexpr int kChildren = 32;
  for (int r = 0; r < kRoots; ++r) {
    pool.submit([&pool, &done] {
      for (int c = 0; c < kChildren; ++c) {
        pool.submit([&pool, &done] {
          pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
          done.fetch_add(1, std::memory_order_relaxed);
        });
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Oscillate the LP target while the task tree is in flight: tasks parked
  // on a worker's deque when it gets parked must still be stolen and run.
  std::mt19937 rng(7);
  for (int k = 0; k < 40; ++k) {
    pool.set_target_lp(1 + static_cast<int>(rng() % 8));
    std::this_thread::sleep_for(1ms);
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), static_cast<long>(kRoots) * (1 + kChildren * 2));
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(PoolStress, ManyExternalSubmitters) {
  ResizableThreadPool pool(4, 4);
  std::atomic<long> done{0};
  std::vector<std::thread> submitters;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&pool, &done] {
      for (int k = 0; k < kPerThread; ++k) {
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(done.load(), static_cast<long>(kThreads) * kPerThread);
}

TEST(PoolStress, WorkMigratesOffParkedWorkers) {
  // A worker fans out children onto its own deque, then the pool shrinks so
  // that worker parks. The surviving worker must steal and finish the work.
  ResizableThreadPool pool(2, 2);
  std::atomic<int> done{0};
  std::atomic<bool> fanned{false};
  pool.submit([&] {
    for (int c = 0; c < 50; ++c) {
      pool.submit([&done] {
        std::this_thread::sleep_for(100us);
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    fanned.store(true);
    // Keep this worker pinned in its current task long enough for the
    // shrink below to land while children still sit on its deque.
    std::this_thread::sleep_for(20ms);
  });
  while (!fanned.load()) std::this_thread::yield();
  pool.set_target_lp(1);
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(PoolStress, RepeatedResizeUnderLoadKeepsInvariants) {
  ResizableThreadPool pool(1, 6);
  std::atomic<long> done{0};
  std::atomic<bool> stop{false};
  std::thread load([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (int k = 0; k < 100; ++k) {
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
      pool.wait_idle();
    }
  });
  for (int k = 0; k < 200; ++k) {
    const int lp = 1 + k % 6;
    EXPECT_EQ(pool.set_target_lp(lp), lp);
    EXPECT_EQ(pool.target_lp(), lp);
    EXPECT_LE(pool.spawned_workers(), pool.max_lp());
  }
  // Let at least one load batch land before stopping, so the throughput
  // assertion below is meaningful even if this thread outran the load one.
  while (done.load(std::memory_order_acquire) == 0) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  load.join();
  pool.wait_idle();
  EXPECT_GT(done.load(), 0);
}

TEST(PoolStress, ShrinkRacingSubmitNeverStrandsATask) {
  // Regression stress for the searching-token handoff: a worker woken by a
  // shrink (headed to park) must not suppress or swallow the wake-up for a
  // task submitted in that exact window — every round must drain.
  ResizableThreadPool pool(2, 2);
  std::atomic<long> done{0};
  for (int round = 0; round < 400; ++round) {
    pool.set_target_lp(1 + round % 2);
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    pool.set_target_lp(1 + (round + 1) % 2);
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();  // hangs here if a wake was lost
    ASSERT_EQ(done.load(), 2L * (round + 1));
  }
}

// -------------------------------------------------------------------- mpsc --

TEST(MpscQueueStress, MultiProducerExactCountAndPerProducerFifo) {
  // Hammer the raw queue: many producers push concurrently while one
  // consumer drains. pop() returning false is NOT "empty" — a producer may
  // be mid-link — so the consumer retries until it has seen every task.
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 4000;
  MpscTaskQueue q;
  std::vector<std::vector<int>> seen(kProducers);
  std::thread consumer([&] {
    long got = 0;
    Task t;
    while (got < static_cast<long>(kProducers) * kPerProducer) {
      if (q.pop(t)) {
        t();
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
    EXPECT_FALSE(q.maybe_nonempty());
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int k = 0; k < kPerProducer; ++k) {
        q.push([&seen, p, k] { seen[static_cast<std::size_t>(p)].push_back(k); });
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  for (int p = 0; p < kProducers; ++p) {
    const auto& s = seen[static_cast<std::size_t>(p)];
    ASSERT_EQ(s.size(), static_cast<std::size_t>(kPerProducer));
    // Each producer's pushes come back in push order (global list order is
    // a FIFO interleaving of the per-producer streams).
    for (int k = 0; k < kPerProducer; ++k) EXPECT_EQ(s[static_cast<std::size_t>(k)], k);
  }
}

TEST(MpscQueueStress, InjectionDrainUnderChurnKeepsExactAccounting) {
  // End to end through the pool: external submitters race the lock-free
  // injection path while the LP target oscillates (drain claimants park and
  // respawn). wait_idle must see every task and queued() must end exact.
  ResizableThreadPool pool(1, 4);
  std::atomic<long> done{0};
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 3000;
  std::vector<std::thread> submitters;
  for (int p = 0; p < kProducers; ++p) {
    submitters.emplace_back([&pool, &done] {
      for (int k = 0; k < kPerProducer; ++k) {
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  std::mt19937 rng(13);
  for (int k = 0; k < 60; ++k) {
    pool.set_target_lp(1 + static_cast<int>(rng() % 4));
    std::this_thread::sleep_for(500us);
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(done.load(), static_cast<long>(kProducers) * kPerProducer);
  EXPECT_EQ(pool.queued(), 0u);
}

// ---------------------------------------------------------------- eventbus --

TEST(EventBusStress, ConcurrentAddRemoveDispatch) {
  EventBus bus;
  std::atomic<long> hits{0};
  // One permanent listener counts every dispatch so we can assert exact
  // delivery; churn listeners come and go concurrently.
  bus.add_listener(std::make_shared<ObserverListener>(
      [&hits](const Event&) { hits.fetch_add(1, std::memory_order_relaxed); }));
  constexpr int kDispatchThreads = 4;
  constexpr int kDispatchesPer = 3000;
  constexpr int kChurns = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kDispatchThreads; ++t) {
    threads.emplace_back([&bus] {
      Event ev;
      for (int k = 0; k < kDispatchesPer; ++k) bus.dispatch({}, ev);
    });
  }
  threads.emplace_back([&bus] {
    for (int k = 0; k < kChurns; ++k) {
      const auto id = bus.add_listener(
          std::make_shared<ObserverListener>([](const Event&) {}));
      bus.remove_listener(id);
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(hits.load(), static_cast<long>(kDispatchThreads) * kDispatchesPer);
  EXPECT_EQ(bus.listener_count(), 1u);
}

TEST(EventBusStress, RemovalDuringDispatchIsSafeNotImmediate) {
  // RCU semantics: a dispatch that began before a removal may still deliver
  // to the removed listener once, but never crashes, and dispatches that
  // begin after the removal returns must not deliver.
  EventBus bus;
  std::atomic<long> hits{0};
  const auto id = bus.add_listener(std::make_shared<ObserverListener>(
      [&hits](const Event&) { hits.fetch_add(1, std::memory_order_relaxed); }));
  std::atomic<bool> removed{false};
  std::thread dispatcher([&] {
    Event ev;
    while (!removed.load(std::memory_order_acquire)) bus.dispatch({}, ev);
  });
  std::this_thread::sleep_for(2ms);
  bus.remove_listener(id);
  removed.store(true, std::memory_order_release);
  dispatcher.join();
  const long after_removal = hits.load();
  Event ev;
  for (int k = 0; k < 100; ++k) bus.dispatch({}, ev);
  EXPECT_EQ(hits.load(), after_removal);
}

// ---------------------------------------------------------------- registry --

TEST(RegistryStress, ConcurrentObserveAndSnapshot) {
  EstimateRegistry reg(1.0, EstimationScope::kPerDepth);  // rho=1: last wins
  constexpr int kWriters = 4;
  constexpr int kObsPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&reg, w] {
      for (int k = 0; k < kObsPerWriter; ++k) {
        reg.observe_duration(w, /*depth=*/k % 3, 1.0 * k);
        reg.observe_cardinality(w, /*depth=*/k % 3, 2.0 * k);
      }
    });
  }
  threads.emplace_back([&reg, &stop] {
    // Reader: snapshots must always be internally coherent (an entry seen
    // with t set at depth d implies the aggregate layer exists too, since
    // writers fill both under one shard lock).
    while (!stop.load(std::memory_order_acquire)) {
      const Estimates snap = reg.snapshot();
      snap.for_each([&](std::int64_t key, const Estimates::Entry& entry) {
        const int id = estimate_key_muscle(key);
        if (entry.t) {
          ASSERT_TRUE(snap.t(id).has_value())
              << "depth entry without aggregate for muscle " << id;
        }
      });
    }
  });
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_DOUBLE_EQ(*reg.t(w), 1.0 * (kObsPerWriter - 1));
  }
}

TEST(RegistryStress, CleanSnapshotIsStableAcrossThreads) {
  EstimateRegistry reg(0.5);
  for (int m = 0; m < 32; ++m) reg.observe_duration(m, 1.0 + m);
  const std::uint64_t v = reg.version();
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&reg] {
      for (int k = 0; k < 5000; ++k) {
        const Estimates snap = reg.snapshot();
        ASSERT_EQ(snap.size(), 32u);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(reg.version(), v);  // pure reads never bump the version
}

// ------------------------------------------------------------- end-to-end --

TEST(CrossLayerStress, PoolWorkersFireEventsAndObserveEstimates) {
  // The real shape of the hot path: worker tasks dispatch events whose
  // listener writes into the registry, while a controller-like thread takes
  // snapshots and resizes the pool.
  ResizableThreadPool pool(2, 6);
  EventBus bus;
  EstimateRegistry reg(0.5);
  std::atomic<long> handled{0};
  bus.add_listener(std::make_shared<ObserverListener>([&](const Event& ev) {
    reg.observe_duration(ev.muscle_id, 0.001);
    handled.fetch_add(1, std::memory_order_relaxed);
  }));
  constexpr long kTasks = 4000;
  for (long k = 0; k < kTasks; ++k) {
    pool.submit([&bus, k] {
      Event ev;
      ev.muscle_id = static_cast<int>(k % 24);
      bus.dispatch({}, ev);
    });
  }
  std::atomic<bool> stop{false};
  std::thread controller([&] {
    int lp = 2;
    while (!stop.load(std::memory_order_acquire)) {
      (void)reg.snapshot();
      lp = lp % 6 + 1;
      pool.set_target_lp(lp);
      std::this_thread::sleep_for(500us);
    }
  });
  pool.wait_idle();
  stop.store(true, std::memory_order_release);
  controller.join();
  EXPECT_EQ(handled.load(), kTasks);
  const Estimates snap = reg.snapshot();
  for (int m = 0; m < 24; ++m) {
    EXPECT_TRUE(snap.t(m).has_value()) << "muscle " << m;
  }
}

}  // namespace
}  // namespace askel
