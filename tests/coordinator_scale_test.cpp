// PR 7 scale features: the active-set index under churn (property-tested
// against a ground-truth model), hierarchical groups, and the adaptive
// weight policy with its deterministic quality grading.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "autonomic/coordinator.hpp"
#include "autonomic/policy_quality.hpp"
#include "runtime/thread_pool.hpp"

namespace askel {
namespace {

// ---------------------------------------------------------------- churn --

// Seeded register/arm/request/release/unregister churn: after every step the
// coordinator's active-set index must equal the ground-truth armed set, the
// registered counter must match the live-id model, and the budget invariant
// must hold. This is the index-maintenance contract the O(active)
// arbitration rests on — a stale entry (or a leaked one) breaks it.
TEST(CoordinatorScale, ChurnKeepsActiveIndexEqualToArmedSet) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 8);

  std::mt19937_64 rng(20260808);
  std::set<int> live;   // registered ids
  std::set<int> armed;  // subset of live

  const auto check = [&] {
    ASSERT_EQ(coord.registered_tenants(), static_cast<int>(live.size()));
    ASSERT_EQ(coord.armed_tenants(), static_cast<int>(armed.size()));
    const std::vector<int> expect(armed.begin(), armed.end());
    ASSERT_EQ(coord.active_tenants(), expect);
    ASSERT_LE(coord.total_granted(), coord.budget());
  };

  const auto pick = [&](const std::set<int>& from) {
    std::uniform_int_distribution<std::size_t> d(0, from.size() - 1);
    auto it = from.begin();
    std::advance(it, d(rng));
    return *it;
  };

  for (int step = 0; step < 3000; ++step) {
    switch (rng() % 5) {
      case 0: {  // register
        const int id = coord.register_tenant("churn");
        ASSERT_TRUE(live.insert(id).second) << "id " << id << " double-issued";
        break;
      }
      case 1: {  // arm a registered, unarmed tenant
        std::vector<int> unarmed;
        std::set_difference(live.begin(), live.end(), armed.begin(),
                            armed.end(), std::back_inserter(unarmed));
        if (unarmed.empty()) break;
        const int id = unarmed[rng() % unarmed.size()];
        coord.arm_tenant(id);
        armed.insert(id);
        break;
      }
      case 2: {  // request from an armed tenant
        if (armed.empty()) break;
        const int id = pick(armed);
        coord.request(id, 1 + static_cast<int>(rng() % 8),
                      0.25 * static_cast<double>(rng() % 5));
        break;
      }
      case 3: {  // release an armed tenant
        if (armed.empty()) break;
        const int id = pick(armed);
        coord.release(id);
        armed.erase(id);
        ASSERT_EQ(coord.granted(id), 0);
        break;
      }
      default: {  // unregister any live tenant (armed or not)
        if (live.empty()) break;
        const int id = pick(live);
        coord.unregister_tenant(id);
        live.erase(id);
        armed.erase(id);
        break;
      }
    }
    check();
  }
}

// Nonzero grants may exist only on active-set entries: after releasing
// everything, the pool-visible grant of every id ever used must be zero and
// total_granted must be zero.
TEST(CoordinatorScale, NoGrantOutlivesItsActiveEntry) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 8);
  std::vector<int> ids;
  for (int k = 0; k < 32; ++k) ids.push_back(coord.register_tenant());
  for (int id : ids) {
    coord.arm_tenant(id);
    coord.request(id, 4, 1.0);
  }
  for (int id : ids) coord.release(id);
  EXPECT_EQ(coord.total_granted(), 0);
  EXPECT_TRUE(coord.active_tenants().empty());
  for (int id : ids) {
    EXPECT_EQ(coord.granted(id), 0);
    EXPECT_EQ(pool.tenant_grant(id), 0);
  }
}

// -------------------------------------------------------------- grouped --

// With no groups assigned, GroupedArbitrationPolicy must be grant-for-grant
// identical to WeightedSharePolicy (every tenant is a singleton group
// carrying its own weight) — the regression lock that lets the grouped
// policy ship without disturbing any existing weighted behavior.
TEST(GroupedPolicy, UngroupedReducesToWeightedShare) {
  WeightedSharePolicy weighted;
  GroupedArbitrationPolicy grouped;
  std::mt19937_64 rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    const int n = 1 + static_cast<int>(rng() % 8);
    const int budget = 1 + static_cast<int>(rng() % 24);
    std::vector<TenantDemand> demands(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      TenantDemand& d = demands[static_cast<std::size_t>(i)];
      d.tenant = i + 1;
      d.desired = 1 + static_cast<int>(rng() % 12);
      d.pressure = 0.5 * static_cast<double>(rng() % 5);
      d.weight = 1 + static_cast<int>(rng() % 4);
      d.group = 0;
      d.group_weight = d.weight;
    }
    std::vector<int> gw(demands.size(), 0), gg(demands.size(), 0);
    weighted.arbitrate(budget, demands, gw);
    grouped.arbitrate(budget, demands, gg);
    ASSERT_EQ(gw, gg) << "diverged at iter " << iter << " budget " << budget;
  }
}

// Two-level split: the budget goes across groups by GROUP weight, then
// within each group by member weight. Group A (weight 3, two equal members)
// vs group B (weight 1, one member) on budget 16 => 12 / 4 across groups,
// 6+6 within A.
TEST(GroupedPolicy, SplitsAcrossGroupsByGroupWeightThenWithin) {
  GroupedArbitrationPolicy grouped;
  std::vector<TenantDemand> demands(3);
  demands[0] = {.tenant = 1, .desired = 8, .group = 1, .group_weight = 3};
  demands[1] = {.tenant = 2, .desired = 8, .group = 1, .group_weight = 3};
  demands[2] = {.tenant = 3, .desired = 8, .group = 2, .group_weight = 1};
  std::vector<int> grants(3, 0);
  grouped.arbitrate(16, demands, grants);
  EXPECT_EQ(grants[0], 6);
  EXPECT_EQ(grants[1], 6);
  EXPECT_EQ(grants[2], 4);
}

// A group capped at its aggregate desired frees the remainder for the other
// groups, exactly like a desired-capped tenant under WeightedSharePolicy.
TEST(GroupedPolicy, CappedGroupFreesBudgetForOthers) {
  GroupedArbitrationPolicy grouped;
  std::vector<TenantDemand> demands(2);
  demands[0] = {.tenant = 1, .desired = 2, .group = 1, .group_weight = 3};
  demands[1] = {.tenant = 2, .desired = 16, .group = 2, .group_weight = 1};
  std::vector<int> grants(2, 0);
  grouped.arbitrate(16, demands, grants);
  EXPECT_EQ(grants[0], 2);   // capped at desired despite weight 3
  EXPECT_EQ(grants[1], 14);  // the freed share flows over
}

// End to end through the coordinator: group assignments and group weights
// installed via the registry APIs must reach the policy (arbitrate_locked
// builds the demand rows from the active set + group table).
TEST(GroupedPolicy, CoordinatorRoutesGroupStateToPolicy) {
  ResizableThreadPool pool(1, 16);
  LpBudgetCoordinator coord(pool, 16);
  coord.set_policy(std::make_unique<GroupedArbitrationPolicy>());

  const int a = coord.register_tenant("a");
  const int b = coord.register_tenant("b");
  const int c = coord.register_tenant("c");
  coord.set_tenant_group(a, 1);
  coord.set_tenant_group(b, 1);
  coord.set_tenant_group(c, 2);
  coord.set_group_weight(1, 3);
  coord.set_group_weight(2, 1);
  ASSERT_EQ(coord.tenant_group(a), 1);
  ASSERT_EQ(coord.group_weight(1), 3);

  coord.arm_tenant(a);
  coord.arm_tenant(b);
  coord.arm_tenant(c);
  coord.request(a, 8, 0.0);
  coord.request(b, 8, 0.0);
  coord.request(c, 8, 0.0);
  EXPECT_EQ(coord.granted(a), 6);
  EXPECT_EQ(coord.granted(b), 6);
  EXPECT_EQ(coord.granted(c), 4);
  EXPECT_EQ(coord.total_granted(), 16);
}

// Group membership survives release/re-arm (like the SLA weight) and is
// reset when the id is recycled through unregister.
TEST(GroupedPolicy, GroupMembershipSurvivesReArmAndResetsOnRecycle) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 8);
  const int t = coord.register_tenant("t");
  coord.set_tenant_group(t, 5);
  coord.arm_tenant(t);
  coord.release(t);
  EXPECT_EQ(coord.tenant_group(t), 5);
  coord.unregister_tenant(t);
  const int reused = coord.register_tenant("fresh");
  ASSERT_EQ(reused, t);  // ids are recycled
  EXPECT_EQ(coord.tenant_group(reused), 0);
}

// ------------------------------------------------------------- adaptive --

// A tenant that keeps reporting pressure gains boost (up to the ceiling) and
// out-grants an equal-weight tenant under the same static inner policy; once
// the pressure clears, the boost decays back to 1.
TEST(AdaptivePolicy, BoostRisesOnSustainedMissAndDecaysOnSlack) {
  AdaptiveWeightPolicy adaptive;
  std::vector<TenantDemand> demands(2);
  demands[0] = {.tenant = 1, .desired = 8, .pressure = 1.5};
  demands[1] = {.tenant = 2, .desired = 8, .pressure = 0.0};
  std::vector<int> grants;
  for (int round = 0; round < 12; ++round) {
    grants.assign(demands.size(), 0);
    adaptive.arbitrate(8, demands, grants);
  }
  EXPECT_GT(adaptive.boost(1), 2.0);
  EXPECT_DOUBLE_EQ(adaptive.boost(2), 1.0);
  EXPECT_GT(grants[0], grants[1]);

  demands[0].pressure = 0.0;  // backlog cleared
  for (int round = 0; round < 40; ++round) {
    grants.assign(demands.size(), 0);
    adaptive.arbitrate(8, demands, grants);
  }
  EXPECT_DOUBLE_EQ(adaptive.boost(1), 1.0);
}

// Boost state for tenants that leave the demand vector is dropped — the
// table stays O(armed), and a disarm/re-arm cycle starts from base weight.
TEST(AdaptivePolicy, BoostStateIsDroppedWithTheTenant) {
  AdaptiveWeightPolicy adaptive;
  std::vector<TenantDemand> demands(1);
  demands[0] = {.tenant = 1, .desired = 8, .pressure = 2.0};
  std::vector<int> grants;
  for (int round = 0; round < 5; ++round) {
    grants.assign(demands.size(), 0);
    adaptive.arbitrate(8, demands, grants);
  }
  ASSERT_GT(adaptive.boost(1), 1.0);
  demands[0].tenant = 2;  // tenant 1 vanished from the armed set
  grants.assign(demands.size(), 0);
  adaptive.arbitrate(8, demands, grants);
  EXPECT_DOUBLE_EQ(adaptive.boost(1), 1.0);
}

// The quality harness is seeded and deterministic: two replays of the same
// trace produce identical scores, and the adaptive policy must not lose to
// its static inner policy on miss rate — the PR 4-style ranking anchor.
TEST(PolicyQuality, SeededRankingIsDeterministicAndAdaptiveBeatsStatic) {
  const std::vector<DemandRound> trace = demand_trace(42, 6, 200, 16);

  WeightedSharePolicy weighted1, weighted2;
  AdaptiveWeightPolicy adaptive1, adaptive2;
  const PolicyQuality w1 = replay_policy(weighted1, 16, trace);
  const PolicyQuality w2 = replay_policy(weighted2, 16, trace);
  const PolicyQuality a1 = replay_policy(adaptive1, 16, trace);
  const PolicyQuality a2 = replay_policy(adaptive2, 16, trace);

  EXPECT_DOUBLE_EQ(w1.miss_rate, w2.miss_rate);
  EXPECT_DOUBLE_EQ(a1.miss_rate, a2.miss_rate);
  EXPECT_DOUBLE_EQ(w1.churn, w2.churn);
  ASSERT_GT(w1.pressured_rows, 0) << "trace is uncontended — grading vacuous";
  EXPECT_LE(a1.miss_rate, w1.miss_rate);
}

}  // namespace
}  // namespace askel
