// PR 4 estimator-family regression tests: the default-EWMA path must be
// byte-identical to the pre-estimator-interface controller behavior, and the
// deterministic adaptation-quality harness (est/quality.hpp — the ranking
// backbone of bench/wct_algorithms --estimators) must rank the family
// reproducibly under a fixed seed.

#include <gtest/gtest.h>

#include <vector>

#include "autonomic/controller.hpp"
#include "est/quality.hpp"
#include "workload/paper_example.hpp"

namespace askel {
namespace {

/// Drive one controller over the deterministic paper-§4 replay (virtual
/// time) with the given registry estimator and return its applied actions.
std::vector<AutonomicController::Action> replay_actions(
    PaperExampleReplay& replay) {
  ManualClock clock(0.0);
  ResizableThreadPool pool(2, 24, &clock);  // the example runs at LP = 2
  AutonomicController ctl(pool, replay.trackers(), &clock);
  ctl.arm(/*wct_goal=*/100.0);  // the paper's closing remark: LP 3 meets 100
  for (const TimePoint t : {10.0, 25.0, 40.0, 55.0, 70.0, 85.0, 100.0, 115.0}) {
    clock.set(t);
    replay.replay_until(t);
    ctl.evaluate_now();
  }
  ctl.disarm();
  return ctl.actions();
}

void expect_identical(const std::vector<AutonomicController::Action>& a,
                      const std::vector<AutonomicController::Action>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].t, b[i].t);
    EXPECT_EQ(a[i].from_lp, b[i].from_lp);
    EXPECT_EQ(a[i].to_lp, b[i].to_lp);
    EXPECT_EQ(a[i].reason, b[i].reason);
    EXPECT_DOUBLE_EQ(a[i].best_effort_wct, b[i].best_effort_wct);
    EXPECT_DOUBLE_EQ(a[i].current_lp_wct, b[i].current_lp_wct);
  }
}

TEST(EstimatorAb, DefaultEwmaDecisionsAreByteIdenticalToLegacyPath) {
  // The legacy double-rho constructor is the pre-PR code path; a registry
  // configured through the estimator interface with kEwma must reproduce
  // every controller decision of the §4 replay bit for bit.
  PaperExampleReplay legacy(0.5);
  PaperExampleReplay via_interface(
      EstimatorConfig{.kind = EstimatorKind::kEwma, .rho = 0.5});
  const auto a = replay_actions(legacy);
  const auto b = replay_actions(via_interface);
  ASSERT_FALSE(a.empty());  // the scripted goal forces at least one action
  expect_identical(a, b);
  // And the paper's published outcome still holds: the controller raises
  // LP 2 -> 3 to meet the 100 s goal.
  EXPECT_EQ(a.front().from_lp, 2);
  EXPECT_EQ(a.front().to_lp, 3);
}

TEST(EstimatorAb, NonDefaultEstimatorsStillReachThePaperDecision) {
  // All observations in the §4 example are constant per muscle, so every
  // family member converges to the same estimates and the same LP 3
  // decision — the interface changes *how* estimates form, not the plan.
  for (const EstimatorConfig& cfg : default_estimator_family()) {
    PaperExampleReplay replay(cfg);
    const auto actions = replay_actions(replay);
    ASSERT_FALSE(actions.empty()) << to_string(cfg.kind);
    EXPECT_EQ(actions.front().to_lp, 3) << to_string(cfg.kind);
  }
}

TEST(EstimatorAb, BurstyStreamIsSeedDeterministic) {
  const std::vector<double> a = bursty_stream(42, 400);
  const std::vector<double> b = bursty_stream(42, 400);
  ASSERT_EQ(a.size(), 400u);
  EXPECT_EQ(a, b);  // exact: same seed, same stream
  const std::vector<double> c = bursty_stream(43, 400);
  EXPECT_NE(a, c);  // and the seed actually matters
}

TEST(EstimatorAb, RankingIsDeterministicUnderAFixedSeed) {
  const std::vector<double> stream = bursty_stream(42, 400);
  const auto first = rank_estimators(default_estimator_family(), stream);
  const auto second = rank_estimators(default_estimator_family(), stream);
  ASSERT_EQ(first.size(), 4u);
  ASSERT_EQ(second.size(), 4u);
  for (std::size_t k = 0; k < first.size(); ++k) {
    EXPECT_EQ(first[k].config.kind, second[k].config.kind);
    EXPECT_DOUBLE_EQ(first[k].rms_error, second[k].rms_error);
    EXPECT_DOUBLE_EQ(first[k].mean_abs_error, second[k].mean_abs_error);
    EXPECT_DOUBLE_EQ(first[k].bias, second[k].bias);
  }
}

TEST(EstimatorAb, MedianResistsOutliersBetterThanEwma) {
  // The motivation claim behind the quantile/median members: on a bursty
  // stream with an outlier tail, rank-based estimators do not chase spikes,
  // while the EWMA folds ρ·spike into its next several estimates.
  const std::vector<double> stream = bursty_stream(42, 400);
  const StreamQuality median = replay_stream(
      EstimatorConfig{.kind = EstimatorKind::kWindowMedian, .window = 16},
      stream);
  const StreamQuality ewma =
      replay_stream(EstimatorConfig{.kind = EstimatorKind::kEwma, .rho = 0.5},
                    stream);
  EXPECT_LT(median.rms_error, ewma.rms_error);
  EXPECT_LT(median.mean_abs_error, ewma.mean_abs_error);
}

TEST(EstimatorAb, P2QuantileOverProvisionsByDesign) {
  // q = 0.9 plans against the heavy end of the timing distribution: its
  // one-step-ahead bias (estimate - actual) is positive, i.e. conservative
  // over-provisioning, where the mean-seeking EWMA is near zero.
  const std::vector<double> stream = bursty_stream(42, 400);
  const StreamQuality p2 = replay_stream(
      EstimatorConfig{.kind = EstimatorKind::kP2Quantile, .quantile = 0.9},
      stream);
  EXPECT_GT(p2.bias, 0.0);
}

}  // namespace
}  // namespace askel
