// Tests for adg/: snapshot structure, the best-effort and limited-LP
// schedulers, timelines — including an exact reproduction of the paper's
// Figure 1 / Figure 2 numbers from a hand-built snapshot.

#include <gtest/gtest.h>

#include "adg/best_effort.hpp"
#include "adg/limited_lp.hpp"
#include "adg/snapshot.hpp"
#include "adg/timeline.hpp"

namespace askel {
namespace {

TEST(Snapshot, AddAssignsSequentialIds) {
  AdgSnapshot g;
  const int a = g.add(make_pending(0, "a", 1.0, {}));
  const int b = g.add(make_pending(0, "b", 1.0, {a}));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(g.size(), 2u);
}

TEST(Snapshot, RejectsForwardPredecessors) {
  AdgSnapshot g;
  EXPECT_THROW(g.add(make_pending(0, "x", 1.0, {0})), std::invalid_argument);
}

TEST(Snapshot, MissingEstimateClearsCompleteFlag) {
  AdgSnapshot g;
  g.add(make_pending(0, "x", 0.0, {}, /*has_estimate=*/false));
  EXPECT_FALSE(g.complete_estimates);
}

TEST(Snapshot, CountsByState) {
  AdgSnapshot g;
  g.now = 10.0;
  g.add(make_done(0, "d", 0.0, 5.0, {}));
  g.add(make_running(0, "r", 5.0, 3.0, {0}));
  g.add(make_pending(0, "p", 2.0, {1}));
  EXPECT_EQ(g.count(ActivityState::kDone), 1u);
  EXPECT_EQ(g.count(ActivityState::kRunning), 1u);
  EXPECT_EQ(g.count(ActivityState::kPending), 1u);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
}

TEST(Snapshot, ValidateCatchesDoneInFuture) {
  AdgSnapshot g;
  g.now = 1.0;
  g.add(make_done(0, "d", 0.0, 5.0, {}));
  EXPECT_FALSE(g.validate().empty());
}

TEST(BestEffort, ChainAddsDurations) {
  AdgSnapshot g;
  g.now = 0.0;
  const int a = g.add(make_pending(0, "a", 2.0, {}));
  const int b = g.add(make_pending(0, "b", 3.0, {a}));
  const Schedule s = best_effort(g);
  EXPECT_DOUBLE_EQ(s.entries[a].start, 0.0);
  EXPECT_DOUBLE_EQ(s.entries[a].end, 2.0);
  EXPECT_DOUBLE_EQ(s.entries[b].start, 2.0);
  EXPECT_DOUBLE_EQ(s.entries[b].end, 5.0);
  EXPECT_DOUBLE_EQ(s.wct, 5.0);
}

TEST(BestEffort, IndependentActivitiesOverlapFully) {
  AdgSnapshot g;
  g.now = 0.0;
  for (int k = 0; k < 5; ++k) g.add(make_pending(0, "x", 4.0, {}));
  EXPECT_DOUBLE_EQ(best_effort(g).wct, 4.0);
  EXPECT_EQ(optimal_lp(g), 5);
}

TEST(BestEffort, OverdueRunningActivityClampsToNow) {
  // "if ti + t(m) is in the past, tf = currentTime"
  AdgSnapshot g;
  g.now = 10.0;
  const int r = g.add(make_running(0, "r", 2.0, 3.0, {}));  // should have ended at 5
  const Schedule s = best_effort(g);
  EXPECT_DOUBLE_EQ(s.entries[r].end, 10.0);
}

TEST(BestEffort, PendingWithPastPredecessorStartsNow) {
  // "If max(preds' tf) is in the past, ti = currentTime"
  AdgSnapshot g;
  g.now = 20.0;
  const int d = g.add(make_done(0, "d", 0.0, 5.0, {}));
  const int p = g.add(make_pending(0, "p", 2.0, {d}));
  const Schedule s = best_effort(g);
  EXPECT_DOUBLE_EQ(s.entries[p].start, 20.0);
  EXPECT_DOUBLE_EQ(s.entries[p].end, 22.0);
}

TEST(LimitedLp, RejectsNonPositiveLp) {
  AdgSnapshot g;
  EXPECT_THROW(limited_lp(g, 0), std::invalid_argument);
}

TEST(LimitedLp, SingleWorkerSerializesIndependentWork) {
  AdgSnapshot g;
  g.now = 0.0;
  for (int k = 0; k < 4; ++k) g.add(make_pending(0, "x", 2.0, {}));
  EXPECT_DOUBLE_EQ(limited_lp(g, 1).wct, 8.0);
  EXPECT_DOUBLE_EQ(limited_lp(g, 2).wct, 4.0);
  EXPECT_DOUBLE_EQ(limited_lp(g, 4).wct, 2.0);
  EXPECT_DOUBLE_EQ(limited_lp(g, 99).wct, 2.0);
}

TEST(LimitedLp, RunningActivitiesOccupyWorkers) {
  AdgSnapshot g;
  g.now = 0.0;
  g.add(make_running(0, "r", 0.0, 5.0, {}));  // holds one of the two workers
  g.add(make_pending(0, "p1", 2.0, {}));
  g.add(make_pending(0, "p2", 2.0, {}));
  const Schedule s = limited_lp(g, 2);
  // p1 takes the free worker [0,2]; p2 runs after it [2,4] (the running
  // activity frees its worker only at 5).
  EXPECT_DOUBLE_EQ(s.entries[1].start, 0.0);
  EXPECT_DOUBLE_EQ(s.entries[2].start, 2.0);
  EXPECT_DOUBLE_EQ(s.wct, 5.0);
}

TEST(LimitedLp, MoreRunningThanLpIsTolerated) {
  // The controller shrank LP below the number of in-flight muscles: they all
  // finish, but only `lp` worker slots are reused afterwards.
  AdgSnapshot g;
  g.now = 0.0;
  g.add(make_running(0, "r1", 0.0, 4.0, {}));
  g.add(make_running(0, "r2", 0.0, 8.0, {}));
  g.add(make_pending(0, "p", 1.0, {}));
  const Schedule s = limited_lp(g, 1);
  // Only the earliest-finishing slot (t=4) rejoins the 1-worker pool.
  EXPECT_DOUBLE_EQ(s.entries[2].start, 4.0);
  EXPECT_DOUBLE_EQ(s.wct, 8.0);
}

TEST(LimitedLp, RespectsDependenciesAcrossWorkers) {
  AdgSnapshot g;
  g.now = 0.0;
  const int a = g.add(make_pending(0, "a", 3.0, {}));
  const int b = g.add(make_pending(0, "b", 1.0, {}));
  const int c = g.add(make_pending(0, "c", 1.0, {a}));
  const Schedule s = limited_lp(g, 2);
  EXPECT_DOUBLE_EQ(s.entries[b].end, 1.0);
  EXPECT_DOUBLE_EQ(s.entries[c].start, 3.0);  // waits for a despite a free worker
}

TEST(LimitedLp, MatchesBestEffortWhenLpIsAbundant) {
  AdgSnapshot g;
  g.now = 0.0;
  const int a = g.add(make_pending(0, "a", 2.0, {}));
  const int b = g.add(make_pending(0, "b", 5.0, {}));
  g.add(make_pending(0, "c", 1.0, {a, b}));
  EXPECT_DOUBLE_EQ(limited_lp(g, 3).wct, best_effort(g).wct);
}

TEST(Timeline, ProfileCountsOverlaps) {
  Schedule s;
  s.entries = {{0.0, 4.0}, {1.0, 3.0}, {5.0, 6.0}};
  const auto profile = concurrency_profile(s);
  EXPECT_EQ(peak_concurrency(profile), 2);
  // Level decreases back to 0 between 4 and 5.
  bool saw_zero_gap = false;
  for (const Sample& p : profile)
    if (p.t == 4.0 && p.value == 0.0) saw_zero_gap = true;
  EXPECT_TRUE(saw_zero_gap);
}

TEST(Timeline, ZeroDurationActivitiesAreInvisible) {
  Schedule s;
  s.entries = {{2.0, 2.0}, {1.0, 3.0}};
  EXPECT_EQ(peak_concurrency(concurrency_profile(s)), 1);
}

TEST(Timeline, EmptyScheduleHasZeroPeak) {
  EXPECT_EQ(peak_concurrency(concurrency_profile(Schedule{})), 0);
}

// ------------------------------------------------------------------------
// The paper's worked example (Figure 1 / Figure 2), built by hand exactly as
// the text describes: ADG of map(fs, map(fs, seq(fe), fm), fm) with
// t(fs)=10, t(fe)=15, t(fm)=5, |fs|=3, LP=2, observed at WCT 70.
// ------------------------------------------------------------------------
struct PaperFigure1 {
  AdgSnapshot g;
  int outer_split, merge1, merge2, split3;
  int fe3[3];
  int merge3, outer_merge;

  PaperFigure1() {
    g.now = 70.0;
    outer_split = g.add(make_done(0, "fs", 0, 10, {}));
    // Inner map 1: fully done at 70.
    const int s1 = g.add(make_done(0, "fs", 10, 20, {outer_split}));
    const int e1a = g.add(make_done(1, "fe", 20, 35, {s1}));
    const int e1b = g.add(make_done(1, "fe", 35, 50, {s1}));
    const int e1c = g.add(make_done(1, "fe", 50, 65, {s1}));
    merge1 = g.add(make_done(2, "fm", 65, 70, {e1a, e1b, e1c}));
    // Inner map 2: executes done, merge not started.
    const int s2 = g.add(make_done(0, "fs", 10, 20, {outer_split}));
    const int e2a = g.add(make_done(1, "fe", 20, 35, {s2}));
    const int e2b = g.add(make_done(1, "fe", 35, 50, {s2}));
    const int e2c = g.add(make_done(1, "fe", 50, 65, {s2}));
    merge2 = g.add(make_pending(2, "fm", 5, {e2a, e2b, e2c}));
    // Inner map 3: split running since 65; the rest is expectation.
    split3 = g.add(make_running(0, "fs", 65, 10, {outer_split}));
    for (int k = 0; k < 3; ++k) fe3[k] = g.add(make_pending(1, "fe", 15, {split3}));
    merge3 = g.add(make_pending(2, "fm", 5, {fe3[0], fe3[1], fe3[2]}));
    outer_merge = g.add(make_pending(2, "fm", 5, {merge1, merge2, merge3}));
  }
};

TEST(PaperExample, Figure1BestEffortTimes) {
  PaperFigure1 f;
  ASSERT_TRUE(f.g.validate().empty()) << f.g.validate();
  const Schedule s = best_effort(f.g);
  // merge2's predecessors ended at 65 (in the past) → starts now (70).
  EXPECT_DOUBLE_EQ(s.entries[f.merge2].start, 70);
  EXPECT_DOUBLE_EQ(s.entries[f.merge2].end, 75);
  // split3 runs 65..75; the three fe follow at 75..90.
  EXPECT_DOUBLE_EQ(s.entries[f.split3].end, 75);
  for (int k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(s.entries[f.fe3[k]].start, 75);
    EXPECT_DOUBLE_EQ(s.entries[f.fe3[k]].end, 90);
  }
  EXPECT_DOUBLE_EQ(s.entries[f.merge3].start, 90);
  EXPECT_DOUBLE_EQ(s.entries[f.merge3].end, 95);
  // Outer merge waits for merge3: 95..100 — best-effort WCT 100.
  EXPECT_DOUBLE_EQ(s.entries[f.outer_merge].start, 95);
  EXPECT_DOUBLE_EQ(s.wct, 100);
}

TEST(PaperExample, Figure1LimitedLp2Times) {
  PaperFigure1 f;
  const Schedule s = limited_lp(f.g, 2);
  // Figure 1 bottom boxes: merge2 70..75; fe3 at {75..90, 75..90, 90..105};
  // merge3 105..110; outer merge 110..115 — "the total WCT will be 115".
  EXPECT_DOUBLE_EQ(s.entries[f.merge2].start, 70);
  EXPECT_DOUBLE_EQ(s.entries[f.merge2].end, 75);
  std::vector<double> fe_starts = {s.entries[f.fe3[0]].start,
                                   s.entries[f.fe3[1]].start,
                                   s.entries[f.fe3[2]].start};
  std::sort(fe_starts.begin(), fe_starts.end());
  EXPECT_DOUBLE_EQ(fe_starts[0], 75);
  EXPECT_DOUBLE_EQ(fe_starts[1], 75);
  EXPECT_DOUBLE_EQ(fe_starts[2], 90);
  EXPECT_DOUBLE_EQ(s.entries[f.merge3].start, 105);
  EXPECT_DOUBLE_EQ(s.entries[f.merge3].end, 110);
  EXPECT_DOUBLE_EQ(s.entries[f.outer_merge].start, 110);
  EXPECT_DOUBLE_EQ(s.wct, 115);
}

TEST(PaperExample, Figure2OptimalLpIsThree) {
  // "a maximum requirement of 3 active threads during [75, 90); therefore
  //  the optimal LP for this example is 3 threads."
  PaperFigure1 f;
  const auto profile = concurrency_profile(best_effort(f.g));
  EXPECT_EQ(peak_concurrency(profile), 3);
  EXPECT_EQ(optimal_lp(f.g), 3);
  // The 3-thread plateau is exactly [75, 90).
  double plateau_start = -1, plateau_end = -1;
  for (std::size_t k = 0; k < profile.size(); ++k) {
    if (profile[k].value == 3.0) {
      plateau_start = profile[k].t;
      plateau_end = profile[k + 1].t;
    }
  }
  EXPECT_DOUBLE_EQ(plateau_start, 75);
  EXPECT_DOUBLE_EQ(plateau_end, 90);
}

TEST(PaperExample, Figure2LimitedLpNeverExceedsTwo) {
  PaperFigure1 f;
  const Schedule s = limited_lp(f.g, 2);
  // Count only the future (running+pending) part: the past already happened
  // at LP 2 by construction.
  Schedule future;
  for (std::size_t k = 0; k < s.entries.size(); ++k) {
    if (f.g.activities[k].state != ActivityState::kDone)
      future.entries.push_back(s.entries[k]);
  }
  EXPECT_LE(peak_concurrency(concurrency_profile(future)), 2);
}

TEST(PaperExample, Lp3MeetsWctGoal100) {
  // "If we set the WCT QoS goal to 100, Skandium will autonomically increase
  //  LP to 3 in order to achieve the goal."
  PaperFigure1 f;
  EXPECT_GT(limited_lp(f.g, 2).wct, 100.0);
  EXPECT_LE(limited_lp(f.g, 3).wct, 100.0);
}

}  // namespace
}  // namespace askel
