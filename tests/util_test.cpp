// Unit tests for util/: clocks, time series, Zipf sampler, table rendering.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "util/clock.hpp"
#include "util/csv.hpp"
#include "util/time_series.hpp"
#include "util/zipf.hpp"

namespace askel {
namespace {

TEST(ManualClock, StartsAtGivenTime) {
  ManualClock c(5.0);
  EXPECT_DOUBLE_EQ(c.now(), 5.0);
}

TEST(ManualClock, AdvanceAccumulates) {
  ManualClock c;
  c.advance(1.5);
  c.advance(2.5);
  EXPECT_DOUBLE_EQ(c.now(), 4.0);
}

TEST(ManualClock, SetJumpsForward) {
  ManualClock c(1.0);
  c.set(10.0);
  EXPECT_DOUBLE_EQ(c.now(), 10.0);
}

TEST(SteadyClock, StartsNearZeroAndIsMonotone) {
  SteadyClock c;
  const TimePoint a = c.now();
  EXPECT_GE(a, 0.0);
  EXPECT_LT(a, 1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const TimePoint b = c.now();
  EXPECT_GT(b, a);
}

TEST(SteadyClock, DefaultClockIsSingleton) {
  EXPECT_EQ(&default_clock(), &default_clock());
}

TEST(TimeSeries, RecordsInOrder) {
  TimeSeries s;
  s.record(1.0, 10.0);
  s.record(2.0, 20.0);
  const auto v = s.samples();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], (Sample{1.0, 10.0}));
  EXPECT_EQ(v[1], (Sample{2.0, 20.0}));
}

TEST(TimeSeries, MaxValue) {
  TimeSeries s;
  EXPECT_DOUBLE_EQ(s.max_value(), 0.0);
  s.record(0.0, 3.0);
  s.record(1.0, 7.0);
  s.record(2.0, 5.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 7.0);
}

TEST(TimeSeries, ValueAtStepSemantics) {
  TimeSeries s;
  s.record(1.0, 1.0);
  s.record(3.0, 3.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.5, -1.0), -1.0);  // before first sample
  EXPECT_DOUBLE_EQ(s.value_at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(2.9), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(3.0), 3.0);
  EXPECT_DOUBLE_EQ(s.value_at(100.0), 3.0);
}

TEST(TimeSeries, TimeWeightedMean) {
  TimeSeries s;
  s.record(0.0, 2.0);
  s.record(5.0, 4.0);
  // [0,5): 2, [5,10): 4 → mean over [0,10] = 3.
  EXPECT_NEAR(s.time_weighted_mean(0.0, 10.0), 3.0, 1e-12);
  // Entirely within the first step.
  EXPECT_NEAR(s.time_weighted_mean(1.0, 4.0), 2.0, 1e-12);
  // Degenerate interval.
  EXPECT_DOUBLE_EQ(s.time_weighted_mean(3.0, 3.0), 0.0);
}

TEST(TimeSeries, ClearEmpties) {
  TimeSeries s;
  s.record(0.0, 1.0);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
}

TEST(TimeSeries, ConcurrentRecordsAllLand) {
  TimeSeries s;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&s, t] {
      for (int k = 0; k < 250; ++k) s.record(t, k);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(s.size(), 1000u);
}

TEST(TimeSeries, CsvRendering) {
  const std::vector<Sample> v = {{0.0, 1.0}, {1.5, 2.0}};
  const std::string csv = to_csv(v, "t", "lp");
  EXPECT_EQ(csv, "t,lp\n0,1\n1.5,2\n");
}

TEST(Zipf, PmfSumsToOne) {
  const ZipfDistribution z(100, 1.2);
  double sum = 0.0;
  for (std::size_t k = 0; k < z.n(); ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, PmfIsDecreasingInRank) {
  const ZipfDistribution z(50, 1.0);
  for (std::size_t k = 1; k < z.n(); ++k) EXPECT_GE(z.pmf(k - 1), z.pmf(k));
}

TEST(Zipf, ZeroSkewIsUniform) {
  const ZipfDistribution z(10, 0.0);
  for (std::size_t k = 0; k < z.n(); ++k) EXPECT_NEAR(z.pmf(k), 0.1, 1e-9);
}

TEST(Zipf, SamplesInRangeAndDeterministic) {
  const ZipfDistribution z(20, 1.1);
  std::mt19937_64 a(7), b(7);
  for (int k = 0; k < 1000; ++k) {
    const std::size_t x = z(a);
    EXPECT_LT(x, 20u);
    EXPECT_EQ(x, z(b));
  }
}

TEST(Zipf, HigherSkewConcentratesOnRankZero) {
  const ZipfDistribution flat(100, 0.5);
  const ZipfDistribution steep(100, 2.0);
  EXPECT_GT(steep.pmf(0), flat.pmf(0));
}

TEST(Zipf, RejectsEmptySupport) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
}

TEST(Zipf, BoundaryDrawsStayInRange) {
  // The cumulative table is a float cumsum; the final bin is pinned to
  // exactly 1.0 AND rank() clamps past-the-end results, so a draw at (or
  // arithmetically above) 1.0 maps to the last rank instead of indexing
  // past the table.
  const ZipfDistribution z(7, 1.3);
  EXPECT_EQ(z.rank(1.0), 6u);
  EXPECT_EQ(z.rank(std::nextafter(1.0, 2.0)), 6u);
  EXPECT_EQ(z.rank(1.5), 6u);
  EXPECT_EQ(z.rank(0.0), 0u);
  for (const double u : {0.1, 0.5, 0.9, 0.999999999999}) {
    EXPECT_LT(z.rank(u), 7u);
  }
}

TEST(Zipf, BoundaryHoldsUnderAdverseParameters) {
  // Large support + strong skew piles float rounding into the cumsum; the
  // pin/clamp pair must still hold the edge for every support size.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{1000},
                              std::size_t{100000}}) {
    const ZipfDistribution z(n, 2.5);
    EXPECT_EQ(z.rank(1.0), n - 1);
    EXPECT_EQ(z.rank(std::nextafter(1.0, 2.0)), n - 1);
  }
}

TEST(Zipf, RatesSplitTotalByPmf) {
  const ZipfDistribution z(4, 1.0);
  const std::vector<double> r = z.rates(100.0);
  ASSERT_EQ(r.size(), 4u);
  double sum = 0.0;
  for (std::size_t k = 0; k < r.size(); ++k) {
    EXPECT_NEAR(r[k], 100.0 * z.pmf(k), 1e-9);
    sum += r[k];
  }
  EXPECT_NEAR(sum, 100.0, 1e-9);
  EXPECT_GT(r[0], r[3]);  // hottest rank gets the biggest share
}

TEST(Zipf, EmpiricalFrequencyTracksPmf) {
  const ZipfDistribution z(10, 1.0);
  std::mt19937_64 rng(123);
  std::vector<int> hits(10, 0);
  const int n = 20000;
  for (int k = 0; k < n; ++k) ++hits[z(rng)];
  EXPECT_NEAR(static_cast<double>(hits[0]) / n, z.pmf(0), 0.02);
  EXPECT_NEAR(static_cast<double>(hits[9]) / n, z.pmf(9), 0.02);
}

TEST(Table, TextRenderingAligns) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("a    bb"), std::string::npos);
  EXPECT_NE(text.find("333  4"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"x", "y"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Fmt, FormatsWithPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace askel
