// Tests for autonomic/coordinator: LP-budget arbitration between sharded
// per-skeleton controllers, and the single-controller equivalence guarantee.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <thread>

#include "autonomic/controller.hpp"
#include "autonomic/coordinator.hpp"
#include "runtime/fake_transport.hpp"
#include "runtime/remote_backend.hpp"
#include "workload/paper_example.hpp"

namespace askel {
namespace {

TEST(Coordinator, BudgetDefaultsToPoolMaxAndClamps) {
  ResizableThreadPool pool(1, 8);
  {
    LpBudgetCoordinator coord(pool);
    EXPECT_EQ(coord.budget(), 8);
  }
  {
    LpBudgetCoordinator coord(pool, 20);
    EXPECT_EQ(coord.budget(), 8);
  }
  LpBudgetCoordinator coord(pool, 3);
  EXPECT_EQ(coord.budget(), 3);
  EXPECT_EQ(pool.lp_limit(), 3);
}

TEST(Coordinator, BudgetIsAHardCapOnThePoolEvenForDirectSetters) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 3);
  // A caller bypassing the coordinator still cannot exceed the budget: the
  // coordinator installed it as the pool's lp_limit.
  EXPECT_EQ(pool.set_target_lp(8), 3);
  EXPECT_EQ(pool.target_lp(), 3);
}

TEST(Coordinator, LimitRestoredOnDestruction) {
  ResizableThreadPool pool(1, 8);
  { LpBudgetCoordinator coord(pool, 2); }
  EXPECT_EQ(pool.lp_limit(), 8);
  EXPECT_EQ(pool.set_target_lp(8), 8);
}

TEST(Coordinator, BudgetExhaustionWithThreeArmedControllers) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 4);
  const int t1 = coord.register_tenant("a");
  const int t2 = coord.register_tenant("b");
  const int t3 = coord.register_tenant("c");
  coord.arm_tenant(t1);
  coord.arm_tenant(t2);
  coord.arm_tenant(t3);
  coord.request(t1, 3, 0.5);
  coord.request(t2, 3, 1.5);
  coord.request(t3, 3, 1.0);
  // 9 desired into a budget of 4: everyone gets the 1-thread floor, and the
  // single leftover thread goes to the widest relative goal miss (t2).
  EXPECT_EQ(coord.granted(t1), 1);
  EXPECT_EQ(coord.granted(t2), 2);
  EXPECT_EQ(coord.granted(t3), 1);
  EXPECT_EQ(coord.total_granted(), 4);
  EXPECT_LE(coord.peak_total_granted(), 4);
  EXPECT_EQ(pool.target_lp(), 4);
}

TEST(Coordinator, HighPressureTenantPreemptsLowPressureGrant) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 4);
  const int t1 = coord.register_tenant();
  const int t2 = coord.register_tenant();
  coord.arm_tenant(t1);
  EXPECT_EQ(coord.request(t1, 4, 0.1), 4);  // alone: gets all of it
  coord.arm_tenant(t2);
  EXPECT_EQ(coord.request(t2, 4, 5.0), 3);
  // The contested LP moved to the wider miss; t1 keeps only its floor.
  EXPECT_EQ(coord.granted(t1), 1);
  EXPECT_EQ(coord.total_granted(), 4);
}

TEST(Coordinator, DisarmReleasesBudget) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 4);
  const int t1 = coord.register_tenant();
  const int t2 = coord.register_tenant();
  coord.arm_tenant(t1);
  EXPECT_EQ(coord.request(t1, 4, 1.0), 4);
  coord.arm_tenant(t2);
  EXPECT_EQ(coord.request(t2, 4, 0.5), 1);  // t1 outranks: floor only
  coord.release(t1);
  // t1's grant returned to the pool and the survivor was topped up.
  EXPECT_EQ(coord.granted(t1), 0);
  EXPECT_EQ(coord.granted(t2), 4);
  EXPECT_EQ(coord.total_granted(), 4);
  EXPECT_EQ(coord.armed_tenants(), 1);
}

TEST(Coordinator, UnregisterReleasesLikeDisarm) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 4);
  const int t1 = coord.register_tenant();
  const int t2 = coord.register_tenant();
  coord.arm_tenant(t1);
  coord.arm_tenant(t2);
  coord.request(t1, 4, 2.0);
  coord.request(t2, 4, 1.0);
  coord.unregister_tenant(t1);
  EXPECT_EQ(coord.granted(t1), 0);
  EXPECT_EQ(coord.granted(t2), 4);
  // A forgotten tenant's requests are void.
  EXPECT_EQ(coord.request(t1, 4, 9.0), 0);
  EXPECT_EQ(coord.granted(t2), 4);
}

TEST(Coordinator, MaxLpOnePoolNeverExceedsOne) {
  ResizableThreadPool pool(1, 4);
  LpBudgetCoordinator coord(pool, 1);
  const int t1 = coord.register_tenant();
  const int t2 = coord.register_tenant();
  coord.arm_tenant(t1);
  coord.arm_tenant(t2);
  coord.request(t1, 5, 2.0);
  coord.request(t2, 5, 3.0);
  // One thread total: the widest miss holds it, the other waits at zero
  // (it still progresses — pool workers are shared, not partitioned).
  EXPECT_EQ(coord.granted(t2), 1);
  EXPECT_EQ(coord.granted(t1), 0);
  EXPECT_EQ(coord.total_granted(), 1);
  EXPECT_EQ(coord.peak_total_granted(), 1);
  EXPECT_EQ(pool.target_lp(), 1);
  EXPECT_EQ(pool.set_target_lp(4), 1);  // budget cap holds at the pool too
}

TEST(Coordinator, ShrinkingBudgetReclaimsGrants) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 6);
  const int t1 = coord.register_tenant();
  coord.arm_tenant(t1);
  EXPECT_EQ(coord.request(t1, 6, 1.0), 6);
  coord.set_budget(2);
  EXPECT_EQ(coord.granted(t1), 2);
  EXPECT_EQ(pool.target_lp(), 2);
  EXPECT_EQ(pool.lp_limit(), 2);
}

TEST(Coordinator, HistoryRecordsPerTenantGrantChanges) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 4);
  const int t1 = coord.register_tenant("alpha");
  coord.arm_tenant(t1);
  coord.request(t1, 3, 0.7);
  coord.release(t1);
  const auto h = coord.history(t1);
  ASSERT_GE(h.size(), 3u);  // arm grant, top-up to 3, release to 0
  EXPECT_EQ(h.front().from_grant, 0);
  EXPECT_EQ(h.back().to_grant, 0);
  for (const auto& a : h) EXPECT_EQ(a.tenant, t1);
  // The 3-grant record carries the request context.
  bool saw_request = false;
  for (const auto& a : h) {
    if (a.to_grant == 3) {
      saw_request = true;
      EXPECT_EQ(a.requested, 3);
      EXPECT_DOUBLE_EQ(a.pressure, 0.7);
    }
  }
  EXPECT_TRUE(saw_request);
}

TEST(Coordinator, ReArmingSoloTenantInheritsPoolTarget) {
  // A solo tenant that arms again (new goal, same pattern as an
  // uncoordinated controller's re-arm) must keep planning from the pool's
  // current target, not collapse back to LP 1.
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool);
  const int t1 = coord.register_tenant();
  coord.arm_tenant(t1);
  EXPECT_EQ(coord.request(t1, 6, 1.0), 6);
  EXPECT_EQ(pool.target_lp(), 6);
  EXPECT_EQ(coord.arm_tenant(t1), 6);  // re-arm: inherit, like fresh arm
  EXPECT_EQ(pool.target_lp(), 6);
}

TEST(Coordinator, UnregisteredIdsAreRecycled) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 4);
  const int a = coord.register_tenant("a");
  coord.arm_tenant(a);
  coord.request(a, 4, 1.0);
  coord.unregister_tenant(a);
  const int b = coord.register_tenant("b");
  EXPECT_EQ(b, a);                 // slot recycled: bounded by live tenants
  EXPECT_EQ(coord.granted(b), 0);  // ...with fresh state, no inherited grant
  EXPECT_EQ(coord.armed_tenants(), 0);
  EXPECT_EQ(coord.register_tenant("c"), b + 1);  // free list drained
}

TEST(Coordinator, ShrinkingLimitRetargetsPendingProvisionedGrow) {
  ResizableThreadPool pool(1, 8);
  pool.set_provision_delay(0.05);
  EXPECT_EQ(pool.set_target_lp(8), 8);  // delayed grow: effective LP still 1
  EXPECT_EQ(pool.effective_lp(), 1);
  // Capping mid-provision must not lose the grow: the 8-thread join
  // self-cancels, and a join at the cap replaces it.
  EXPECT_EQ(pool.set_lp_limit(4), 4);
  EXPECT_EQ(pool.target_lp(), 4);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (pool.effective_lp() < 4 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(pool.effective_lp(), 4);
}

TEST(Coordinator, ShrinkingLimitLowersPendingRequest) {
  ResizableThreadPool pool(1, 8);
  EXPECT_EQ(pool.set_target_lp(8), 8);
  EXPECT_EQ(pool.set_lp_limit(3), 3);
  EXPECT_EQ(pool.target_lp(), 3);
  EXPECT_EQ(pool.effective_lp(), 3);
  // Raising the limit does not resurrect the pre-shrink target.
  EXPECT_EQ(pool.set_lp_limit(8), 8);
  EXPECT_EQ(pool.target_lp(), 3);
}

// ------------------------------------------------- arbitration policies --

TEST(Coordinator, DefaultPolicyIsDeadlinePressure) {
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 4);
  EXPECT_EQ(coord.policy_name(), "deadline-pressure");
  coord.set_policy(std::make_unique<WeightedSharePolicy>());
  EXPECT_EQ(coord.policy_name(), "weighted-share");
  coord.set_policy(nullptr);  // restores the default
  EXPECT_EQ(coord.policy_name(), "deadline-pressure");
}

TEST(Coordinator, WeightedPolicySplitsBySlaClass) {
  // Budget 8 over weights 4:2:1 (all demanding everything) water-fills to
  // grants proportional to weight: {5, 2, 1}.
  ResizableThreadPool pool(1, 16);
  LpBudgetCoordinator coord(pool, 8);
  coord.set_policy(std::make_unique<WeightedSharePolicy>());
  const int gold = coord.register_tenant("gold");
  const int silver = coord.register_tenant("silver");
  const int bronze = coord.register_tenant("bronze");
  coord.set_tenant_weight(gold, 4);
  coord.set_tenant_weight(silver, 2);
  coord.arm_tenant(gold);
  coord.arm_tenant(silver);
  coord.arm_tenant(bronze);
  coord.request(gold, 8, 1.0);
  coord.request(silver, 8, 1.0);
  coord.request(bronze, 8, 1.0);
  EXPECT_EQ(coord.granted(gold), 5);
  EXPECT_EQ(coord.granted(silver), 2);
  EXPECT_EQ(coord.granted(bronze), 1);
  EXPECT_EQ(coord.total_granted(), 8);
  // A lying bronze tenant reporting sky-high pressure moves nothing: the
  // weighted policy is not gameable through self-reported misses.
  coord.request(bronze, 8, 99.0);
  EXPECT_EQ(coord.granted(bronze), 1);
  EXPECT_EQ(coord.granted(gold), 5);
}

TEST(Coordinator, WeightedPolicyCapsAtDesiredAndRedistributes) {
  // The heavy class only wants 2 threads; its unused share flows on to the
  // lighter class instead of going idle (work conservation in arbitration).
  ResizableThreadPool pool(1, 16);
  LpBudgetCoordinator coord(pool, 8);
  coord.set_policy(std::make_unique<WeightedSharePolicy>());
  const int a = coord.register_tenant();
  const int b = coord.register_tenant();
  coord.set_tenant_weight(a, 4);
  coord.arm_tenant(a);
  coord.arm_tenant(b);
  coord.request(a, 2, 1.0);
  coord.request(b, 8, 1.0);
  EXPECT_EQ(coord.granted(a), 2);
  EXPECT_EQ(coord.granted(b), 6);
}

// --------------------------------------------- preemption-cost awareness --

TEST(Coordinator, PreemptionHoldDefersReclaimUntilWindowPasses) {
  ManualClock clock(0.0);
  ResizableThreadPool pool(1, 16, &clock);
  LpBudgetCoordinator coord(pool, 8, &clock);
  coord.set_preemption_hold(10.0);
  const int a = coord.register_tenant("ramped");
  const int b = coord.register_tenant("contender");
  coord.arm_tenant(a);
  EXPECT_EQ(coord.request(a, 6, 1.0), 6);  // a ramps to 6 at t=0
  clock.set(1.0);
  coord.arm_tenant(b);
  // b outpressures a, and raw arbitration would hand it 7 of 8. But a's
  // grant is 1 s old (< hold window): a keeps its ramp, b gets the rest.
  EXPECT_EQ(coord.request(b, 8, 5.0), 2);
  EXPECT_EQ(coord.granted(a), 6);
  EXPECT_EQ(coord.total_granted(), 8);  // budget stays hard under the hold
  // Past the window the reclaim proceeds as the policy dictates.
  clock.set(12.0);
  EXPECT_EQ(coord.request(b, 8, 5.0), 7);
  EXPECT_EQ(coord.granted(a), 1);
}

TEST(Coordinator, HoldNeverBlocksSelfRequestedDecrease) {
  ManualClock clock(0.0);
  ResizableThreadPool pool(1, 16, &clock);
  LpBudgetCoordinator coord(pool, 8, &clock);
  coord.set_preemption_hold(10.0);
  const int a = coord.register_tenant();
  coord.arm_tenant(a);
  EXPECT_EQ(coord.request(a, 6, 1.0), 6);
  clock.set(1.0);
  // The tenant's own halving decision applies immediately; the hold only
  // guards against OTHER tenants reclaiming a fresh ramp.
  EXPECT_EQ(coord.request(a, 3, -0.2), 3);
}

TEST(Coordinator, ReleaseDropsHoldProtectionImmediately) {
  // The disarm→re-arm leak regression: a released grant must return to the
  // budget at once (no hold), and its protection must not survive into a
  // later incarnation of the id.
  ManualClock clock(0.0);
  ResizableThreadPool pool(1, 16, &clock);
  LpBudgetCoordinator coord(pool, 8, &clock);
  coord.set_preemption_hold(10.0);
  const int a = coord.register_tenant();
  const int b = coord.register_tenant();
  coord.arm_tenant(a);
  EXPECT_EQ(coord.request(a, 6, 1.0), 6);
  clock.set(1.0);  // well inside the hold window
  coord.release(a);
  EXPECT_EQ(coord.granted(a), 0);  // reclaim is immediate, hold or not
  EXPECT_EQ(coord.total_granted(), 0);
  EXPECT_EQ(pool.tenant_grant(a), 0);  // the pool's dispatch weight too
  // A contender arriving right after sees the full budget — no stale
  // protection reserves the released 6.
  coord.arm_tenant(b);
  EXPECT_EQ(coord.request(b, 8, 0.1), 8);
}

/// Drive one controller over the deterministic paper-§4 replay (virtual
/// time), optionally routed through a coordinator, and return its actions.
std::vector<AutonomicController::Action> replay_actions(bool coordinated) {
  PaperExampleReplay replay(0.5);
  ManualClock clock(0.0);
  ResizableThreadPool pool(2, 24, &clock);  // the example runs at LP = 2
  std::optional<LpBudgetCoordinator> coord;
  AutonomicController ctl(pool, replay.trackers(), &clock);
  if (coordinated) {
    coord.emplace(pool, /*budget=*/0, &clock);  // budget = pool max
    ctl.bind_coordinator(&*coord, coord->register_tenant("solo"));
  }
  ctl.arm(/*wct_goal=*/100.0);  // the paper's closing remark: LP 3 meets 100
  for (const TimePoint t : {10.0, 25.0, 40.0, 55.0, 70.0, 85.0, 100.0, 115.0}) {
    clock.set(t);
    replay.replay_until(t);
    ctl.evaluate_now();
  }
  ctl.disarm();
  return ctl.actions();
}

TEST(Coordinator, SingleArmedControllerMatchesUncoordinatedByteForByte) {
  const auto plain = replay_actions(false);
  const auto sharded = replay_actions(true);
  ASSERT_FALSE(plain.empty());  // the scripted goal forces at least one action
  ASSERT_EQ(plain.size(), sharded.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain[i].t, sharded[i].t);
    EXPECT_EQ(plain[i].from_lp, sharded[i].from_lp);
    EXPECT_EQ(plain[i].to_lp, sharded[i].to_lp);
    EXPECT_EQ(plain[i].reason, sharded[i].reason);
    EXPECT_DOUBLE_EQ(plain[i].best_effort_wct, sharded[i].best_effort_wct);
    EXPECT_DOUBLE_EQ(plain[i].current_lp_wct, sharded[i].current_lp_wct);
  }
}

TEST(Coordinator, GoalPressureIsRelativeMiss) {
  Decision d;
  d.current_lp_wct = 0.0;
  EXPECT_DOUBLE_EQ(goal_pressure(d, 10.0, 0.0), 0.0);  // warming up
  d.current_lp_wct = 15.0;
  EXPECT_DOUBLE_EQ(goal_pressure(d, 10.0, 0.0), 0.5);  // late by half the window
  d.current_lp_wct = 8.0;
  EXPECT_DOUBLE_EQ(goal_pressure(d, 10.0, 0.0), -0.2);  // slack
  // Same absolute miss, tighter window => higher pressure.
  d.current_lp_wct = 15.0;
  EXPECT_GT(goal_pressure(d, 10.0, 5.0), goal_pressure(d, 10.0, 0.0));
}

// ------------------------------------------- remote provision failures --

/// Deterministic remote rig: FakeTransport + manual pump on a virtual clock.
struct RemoteRig {
  ManualClock clock;
  FakeTransportFactory factory;
  RemoteWorkerBackend backend;

  explicit RemoteRig(FakeFaultPlan plan)
      : factory(std::move(plan), &clock), backend(factory, config(&clock)) {}

  static RemoteBackendConfig config(const Clock* clock) {
    RemoteBackendConfig rc;
    rc.max_workers = 8;
    rc.manual_pump = true;
    rc.clock = clock;
    rc.name = "fake";
    return rc;
  }
};

TEST(Coordinator, ProvisionFailureReclaimsStrandedGrant) {
  // A tenant is granted LP whose remote provision fails: without the
  // reclaim, the grant would stay charged against the budget forever —
  // capacity nobody can use. The failure hook must shrink the grant back to
  // what actually exists and free the budget for a tenant that CAN
  // provision.
  FakeFaultPlan plan;
  plan.fail_next_provisions = 1;  // the first grow fails, later ones join
  RemoteRig rig(plan);
  ResizableThreadPool pool(2, 8);
  pool.set_backend(&rig.backend);
  LpBudgetCoordinator coord(pool, 8);
  const int a = coord.register_tenant("a");
  coord.arm_tenant(a);
  EXPECT_EQ(coord.granted(a), 2);  // solo tenant inherits the pool target
  EXPECT_EQ(coord.request(a, 6, 1.0), 6);
  EXPECT_EQ(pool.effective_lp(), 2);  // the grow is pending...
  rig.backend.pump();                 // ...and fails
  EXPECT_EQ(pool.target_lp(), 2);     // pool: request abandoned
  EXPECT_EQ(coord.granted(a), 2);     // coordinator: grant clawed back
  EXPECT_EQ(coord.total_granted(), 2);
  // The reclaim is in the history (auditable), not a silent decay.
  const auto history = coord.history(a);
  ASSERT_FALSE(history.empty());
  EXPECT_EQ(history.back().from_grant, 6);
  EXPECT_EQ(history.back().to_grant, 2);
  // The freed budget is really usable: after A leaves, B provisions fine.
  coord.release(a);
  coord.unregister_tenant(a);
  const int b = coord.register_tenant("b");
  coord.arm_tenant(b);
  EXPECT_EQ(coord.request(b, 4, 2.0), 4);
  rig.backend.pump();  // joins land this time
  EXPECT_EQ(pool.effective_lp(), 4);
  EXPECT_EQ(coord.granted(b), 4);
  coord.release(b);
  pool.set_backend(nullptr);
}

TEST(Coordinator, SynchronousProvisionRefusalReclaimsInline) {
  // A backend can refuse a grow SYNCHRONOUSLY (capacity cap): the failure
  // handler then runs on the coordinator's own thread, re-entering the
  // coordinator from inside arbitrate's set_target_lp. This must reclaim
  // inline — not deadlock — and the caller must observe the reclaimed
  // grant.
  FakeFaultPlan plan;
  RemoteRig rig(plan);  // max_workers = 8 in the backend config...
  ResizableThreadPool pool(2, 16);
  pool.set_backend(&rig.backend);
  rig.backend.pump();  // initial sessions join (latency 0)
  LpBudgetCoordinator coord(pool, 12);
  const int a = coord.register_tenant("a");
  coord.arm_tenant(a);
  // Desired 12 > the backend's 8-worker capacity: provision() returns
  // kFailed without ever going pending.
  const int granted = coord.request(a, 12, 1.0);
  EXPECT_EQ(granted, 2);  // reclaimed to the effective LP, inline
  EXPECT_EQ(coord.granted(a), 2);
  EXPECT_EQ(pool.target_lp(), 2);
  EXPECT_EQ(pool.provision_failures(), 1u);
  // Within capacity everything still works.
  EXPECT_EQ(coord.request(a, 6, 1.0), 6);
  rig.backend.pump();
  EXPECT_EQ(pool.effective_lp(), 6);
  coord.release(a);
  pool.set_backend(nullptr);
}

TEST(Coordinator, PermanentProvisionFailureNeverStrandsBudget) {
  FakeFaultPlan plan;
  plan.fail_next_provisions = 1000;  // provisioning never succeeds
  RemoteRig rig(plan);
  ResizableThreadPool pool(2, 8);
  pool.set_backend(&rig.backend);
  LpBudgetCoordinator coord(pool, 8);
  const int a = coord.register_tenant("a");
  coord.arm_tenant(a);
  for (int round = 0; round < 3; ++round) {
    coord.request(a, 6, 1.0);  // keeps retrying, keeps failing
    rig.backend.pump();
    EXPECT_EQ(coord.granted(a), 2) << "round " << round;
    EXPECT_EQ(coord.total_granted(), 2) << "round " << round;
    EXPECT_EQ(pool.target_lp(), 2) << "round " << round;
  }
  EXPECT_EQ(pool.provision_failures(), 3u);
  coord.release(a);
  EXPECT_EQ(coord.total_granted(), 0);  // release still returns everything
  pool.set_backend(nullptr);
}

}  // namespace
}  // namespace askel
