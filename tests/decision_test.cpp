// Tests for autonomic/decision: the pure LP policy.

#include <gtest/gtest.h>

#include "autonomic/decision.hpp"

namespace askel {
namespace {

/// n independent pending activities of duration d each, observed at now=0.
AdgSnapshot independent(int n, double d) {
  AdgSnapshot g;
  g.now = 0.0;
  for (int k = 0; k < n; ++k) g.add(make_pending(0, "x", d, {}));
  return g;
}

TEST(Decision, EmptySnapshotDoesNothing) {
  AdgSnapshot g;
  const Decision d = decide(g, 10.0, 4, 8);
  EXPECT_EQ(d.new_lp, 4);
  EXPECT_EQ(d.reason, DecisionReason::kEmptySnapshot);
}

TEST(Decision, IncompleteEstimatesBlockAdaptation) {
  AdgSnapshot g;
  g.add(make_pending(0, "x", 0.0, {}, /*has_estimate=*/false));
  const Decision d = decide(g, 10.0, 2, 8);
  EXPECT_EQ(d.new_lp, 2);
  EXPECT_EQ(d.reason, DecisionReason::kIncompleteEstimates);
}

TEST(Decision, GoalAlreadyMetKeepsLp) {
  // 4 tasks of 1s on 2 workers → 2s; goal 3s; half (1 worker) → 4s > 3.
  const AdgSnapshot g = independent(4, 1.0);
  const Decision d = decide(g, 3.0, 2, 8);
  EXPECT_EQ(d.new_lp, 2);
  EXPECT_EQ(d.reason, DecisionReason::kNoChange);
  EXPECT_DOUBLE_EQ(d.current_lp_wct, 2.0);
  EXPECT_DOUBLE_EQ(d.best_effort_wct, 1.0);
  EXPECT_EQ(d.optimal_lp, 4);
}

TEST(Decision, IncreasesToSmallestSufficientLp) {
  // 8 × 1s tasks; goal 2s → needs 4 workers exactly.
  const AdgSnapshot g = independent(8, 1.0);
  const Decision d = decide(g, 2.0, 1, 16);
  EXPECT_EQ(d.new_lp, 4);
  EXPECT_EQ(d.reason, DecisionReason::kIncreaseToGoal);
}

TEST(Decision, UnachievableGoalCoversReadyFrontier) {
  // Even with infinite LP the 10s chain misses the 1s goal. The ready
  // frontier (the chain head + 6 independent y) is 7 wide, so the first
  // allocation already covers it — serializing ready work can only hurt.
  AdgSnapshot g;
  g.now = 0.0;
  int prev = g.add(make_pending(0, "x", 5.0, {}));
  prev = g.add(make_pending(0, "x", 5.0, {prev}));
  for (int k = 0; k < 6; ++k) g.add(make_pending(0, "y", 1.0, {}));
  Decision d = decide(g, 1.0, 1, 24);
  EXPECT_EQ(d.reason, DecisionReason::kUnachievableRamp);
  EXPECT_EQ(d.new_lp, 7);  // ready width 7, also the optimal LP
  d = decide(g, 1.0, 7, 24);
  EXPECT_EQ(d.reason, DecisionReason::kNoChange);  // already at optimal
}

TEST(Decision, UnachievableGoalRampsWhenFrontierIsNarrow) {
  // A narrow head followed by a wide body: the frontier is 1, so growth is
  // multiplicative (paper Fig. 5: 1 → 3 at the first adaptation) until the
  // optimal LP is reached.
  AdgSnapshot g;
  g.now = 0.0;
  const int head = g.add(make_pending(0, "h", 1.0, {}));
  for (int k = 0; k < 10; ++k) g.add(make_pending(0, "w", 10.0, {head}));
  Decision d = decide(g, 0.5, 1, 24);
  EXPECT_EQ(d.reason, DecisionReason::kUnachievableRamp);
  EXPECT_EQ(d.new_lp, 3);  // 1 → 3
  d = decide(g, 0.5, 3, 24);
  EXPECT_EQ(d.new_lp, 9);  // 3 → 9
  d = decide(g, 0.5, 9, 24);
  EXPECT_EQ(d.new_lp, 10);  // capped at optimal
}

TEST(Decision, RampRespectsMaxLp) {
  const AdgSnapshot g = independent(100, 10.0);
  const Decision d = decide(g, 1.0, 3, 4);  // unachievable; optimal 100
  EXPECT_EQ(d.new_lp, 4);
}

TEST(Decision, RampFactorOneJumpsStraightToOptimal) {
  DecisionConfig cfg;
  cfg.ramp_factor = 1;
  const AdgSnapshot g = independent(10, 10.0);
  const Decision d = decide(g, 1.0, 1, 24, cfg);
  EXPECT_EQ(d.new_lp, 10);
  EXPECT_EQ(d.reason, DecisionReason::kUnachievableRamp);
}

TEST(Decision, SaturatedIncreaseUsesOptimalCappedByMax) {
  // 8 × 1s, goal 1.5s: best effort 1.0 fits, but no LP ≤ 5 reaches 1.5
  // (needs ⌈8/1.5⌉ → 6). With max 5 the policy saturates at min(8,5)=5.
  const AdgSnapshot g = independent(8, 1.0);
  const Decision d = decide(g, 1.5, 1, 5);
  EXPECT_EQ(d.new_lp, 5);
  EXPECT_EQ(d.reason, DecisionReason::kIncreaseSaturated);
}

TEST(Decision, DecreaseHalvesWhenGoalStillMet) {
  // 4 × 1s on 8 workers → 1s; goal 2.5s; half (4) → still 1s ≤ 2.5.
  const AdgSnapshot g = independent(4, 1.0);
  const Decision d = decide(g, 2.5, 8, 8);
  EXPECT_EQ(d.new_lp, 4);
  EXPECT_EQ(d.reason, DecisionReason::kDecreaseHalf);
}

TEST(Decision, DecreaseIsHalvingNotMinimal) {
  // Goal 10s, 2 × 1s tasks: even 1 worker meets the goal, but from LP 8 the
  // paper's algorithm only halves to 4 — it "does not reduce the LP as fast
  // as it increases it".
  const AdgSnapshot g = independent(2, 1.0);
  const Decision d = decide(g, 10.0, 8, 8);
  EXPECT_EQ(d.new_lp, 4);
}

TEST(Decision, DecreaseDisabledByConfig) {
  DecisionConfig cfg;
  cfg.allow_decrease = false;
  const AdgSnapshot g = independent(2, 1.0);
  const Decision d = decide(g, 10.0, 8, 8, cfg);
  EXPECT_EQ(d.new_lp, 8);
  EXPECT_EQ(d.reason, DecisionReason::kNoChange);
}

TEST(Decision, NeverDecreasesBelowOne) {
  const AdgSnapshot g = independent(1, 0.1);
  const Decision d = decide(g, 10.0, 1, 8);
  EXPECT_EQ(d.new_lp, 1);
  EXPECT_EQ(d.reason, DecisionReason::kNoChange);
}

TEST(Decision, HalfNotMeetingGoalKeepsCurrent) {
  // 8 × 1s on 4 workers → 2s; goal 2s met; half (2) → 4s > 2: keep 4.
  const AdgSnapshot g = independent(8, 1.0);
  const Decision d = decide(g, 2.0, 4, 8);
  EXPECT_EQ(d.new_lp, 4);
  EXPECT_EQ(d.reason, DecisionReason::kNoChange);
}

TEST(Decision, DoneActivitiesDontBlockDecisions) {
  AdgSnapshot g;
  g.now = 10.0;
  const int d0 = g.add(make_done(0, "d", 0.0, 10.0, {}));
  for (int k = 0; k < 4; ++k) g.add(make_pending(0, "p", 1.0, {d0}));
  const Decision d = decide(g, 11.0, 1, 8);  // 4s of work, 1s budget
  EXPECT_EQ(d.new_lp, 4);
  EXPECT_EQ(d.reason, DecisionReason::kIncreaseToGoal);
}

TEST(Decision, ReasonToString) {
  EXPECT_EQ(to_string(DecisionReason::kNoChange), "no-change");
  EXPECT_EQ(to_string(DecisionReason::kUnachievableRamp), "unachievable-ramp");
  EXPECT_EQ(to_string(DecisionReason::kDecreaseHalf), "decrease-half");
}

}  // namespace
}  // namespace askel
