// Multi-tenant tests: N skeletons, N controllers, one pool, one LP-budget
// coordinator. The stress cases here are part of the TSan CI job and must
// run clean under `cmake -DASKEL_TSAN=ON` as well as plain builds.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "autonomic/coordinator.hpp"
#include "workload/wordcount.hpp"

namespace askel {
namespace {

ScenarioConfig tiny_tenant_scenario(double goal_paper_seconds,
                                    ResizableThreadPool* pool,
                                    LpBudgetCoordinator* coord) {
  ScenarioConfig cfg;
  cfg.timings.scale = 0.024;
  cfg.corpus.num_tweets = 400;
  cfg.wct_goal = goal_paper_seconds;
  cfg.max_lp = 24;
  cfg.shared_pool = pool;
  cfg.coordinator = coord;
  return cfg;
}

TEST(MultiTenant, FourTenantsOneBudgetAllComplete) {
  // Four full autonomic wordcount runs — each with its own bus, trackers,
  // registry and controller — share one pool through one coordinator, with
  // staggered goals so their deadline pressures differ.
  ResizableThreadPool pool(1, 24);
  LpBudgetCoordinator coord(pool, /*budget=*/16);
  constexpr int kTenants = 4;
  const double goals[kTenants] = {9.5, 11.0, 13.0, 16.0};
  std::vector<ScenarioResult> results(kTenants);
  std::vector<std::thread> runners;
  for (int k = 0; k < kTenants; ++k) {
    runners.emplace_back([&, k] {
      const ScenarioConfig cfg = tiny_tenant_scenario(goals[k], &pool, &coord);
      results[static_cast<std::size_t>(k)] = run_wordcount_scenario(cfg);
    });
  }
  for (std::thread& t : runners) t.join();

  for (const ScenarioResult& r : results) {
    EXPECT_EQ(r.counts, r.expected);  // results stay correct under sharing
  }
  // The pool-wide cap held throughout (exact peak, not a sampled one).
  EXPECT_LE(coord.peak_total_granted(), 16);
  EXPECT_LE(pool.target_lp(), 16);
  // Every run completed => every grant was reclaimed.
  EXPECT_EQ(coord.total_granted(), 0);
  EXPECT_EQ(coord.armed_tenants(), 0);
}

TEST(MultiTenant, StaggeredArrivalsReuseReclaimedBudget) {
  // Tenants arrive one after another: each completed run's budget must be
  // available to the next (disarm/unregister reclaim), so later tenants can
  // still raise their LP.
  ResizableThreadPool pool(1, 16);
  LpBudgetCoordinator coord(pool, 8);
  for (int round = 0; round < 3; ++round) {
    const ScenarioConfig cfg = tiny_tenant_scenario(9.5, &pool, &coord);
    const ScenarioResult r = run_wordcount_scenario(cfg);
    EXPECT_EQ(r.counts, r.expected);
    EXPECT_EQ(coord.total_granted(), 0) << "round " << round;
  }
  EXPECT_LE(coord.peak_total_granted(), 8);
}

TEST(MultiTenant, CoordinatorChurnStress) {
  // Raw API churn: concurrent register/arm/request/release/unregister from
  // four threads while a monitor asserts the budget invariant. No skeleton
  // runs — this isolates coordinator/pool races for TSan.
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 6);
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (coord.total_granted() > 6) violations.fetch_add(1);
      if (pool.target_lp() > 6) violations.fetch_add(1);
      std::this_thread::yield();
    }
  });
  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      std::mt19937 rng(static_cast<unsigned>(17 * (w + 1)));
      for (int i = 0; i < kIters; ++i) {
        const int t = coord.register_tenant("churn");
        coord.arm_tenant(t);
        coord.request(t, 1 + static_cast<int>(rng() % 8),
                      static_cast<double>(rng() % 100) / 25.0);
        if (rng() % 2 == 0) coord.release(t);
        coord.unregister_tenant(t);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(coord.total_granted(), 0);
  EXPECT_LE(coord.peak_total_granted(), 6);
}

TEST(MultiTenant, PoolAccountsSubmitsPerTenant) {
  ResizableThreadPool pool(2, 4);
  LpBudgetCoordinator coord(pool);
  const int t1 = coord.register_tenant("left");
  const int t2 = coord.register_tenant("right");
  EventBus bus1, bus2;
  Engine e1(pool, bus1), e2(pool, bus2);
  e1.set_tenant(t1);
  e2.set_tenant(t2);

  auto fs = split_muscle<int, int>("fs", [](int n) {
    return std::vector<int>(static_cast<std::size_t>(n), 1);
  });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int> v) {
    return static_cast<int>(v.size());
  });
  auto skel = Map(fs, Seq(fe), fm);
  EXPECT_EQ(skel.input(6, e1).get(), 6);
  EXPECT_EQ(skel.input(3, e2).get(), 3);

  const std::uint64_t n1 = pool.tenant_submitted(t1);
  const std::uint64_t n2 = pool.tenant_submitted(t2);
  EXPECT_GT(n1, 0u);
  EXPECT_GT(n2, 0u);
  // The 6-wide map spawns more tasks than the 3-wide one.
  EXPECT_GT(n1, n2);
  // Untagged submits skip accounting entirely (free single-tenant hot path).
  pool.submit([] {});
  pool.wait_idle();
  EXPECT_EQ(pool.tenant_submitted(0), 0u);
  const std::uint64_t n1_after = pool.tenant_submitted(t1);
  EXPECT_EQ(n1_after, n1);
}

TEST(MultiTenant, DisarmRearmChurnNeverLeaksGrants) {
  // TSan-targeted: concurrent arm/request/release/re-arm churn — with the
  // preemption hold enabled and tagged tasks in flight — while a monitor
  // asserts the budget invariant. The regression this guards: a grant
  // reclaimed by release() being re-installed stale (e.g. via hold
  // protection surviving a disarm→re-arm cycle). After every release, the
  // tenant's grant must read 0 at both the coordinator and the pool.
  ResizableThreadPool pool(1, 8);
  LpBudgetCoordinator coord(pool, 6);
  coord.set_preemption_hold(0.005);  // exercise the hold path under churn
  constexpr int kThreads = 3;
  int ids[kThreads];
  for (int w = 0; w < kThreads; ++w) ids[w] = coord.register_tenant("churn");
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (coord.total_granted() > 6) violations.fetch_add(1);
      if (pool.target_lp() > 6) violations.fetch_add(1);
      std::this_thread::yield();
    }
  });
  std::atomic<int> done{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      std::mt19937 rng(static_cast<unsigned>(97 * (w + 1)));
      const int id = ids[w];
      for (int i = 0; i < 200; ++i) {
        coord.arm_tenant(id);
        coord.request(id, 1 + static_cast<int>(rng() % 8),
                      static_cast<double>(rng() % 100) / 20.0);
        for (int k = 0; k < 3; ++k) {
          pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); }, id);
        }
        coord.release(id);
        // The reclaim is immediate and fully serialized: nothing may
        // re-install this tenant's grant until WE re-arm it.
        if (coord.granted(id) != 0) violations.fetch_add(1);
        if (pool.tenant_grant(id) != 0) violations.fetch_add(1);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true, std::memory_order_release);
  monitor.join();
  pool.wait_idle();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(coord.total_granted(), 0);
  EXPECT_EQ(done.load(), kThreads * 200 * 3);
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(pool.tenant_grant(ids[w]), 0);
    EXPECT_EQ(pool.tenant_queued(ids[w]), 0);
  }
}

TEST(MultiTenant, AggressorFloodCannotStarveVictimOfItsShare) {
  // Isolation property: with grants installed, an aggressor tenant flooding
  // submits cannot push a victim below its granted share by more than one
  // task's latency per worker. Grants 1:1 on a 2-worker pool means the two
  // tenants' completion counts stay within a small factor of each other
  // while both are backlogged — under the legacy LIFO dispatch, the flood's
  // ever-newer tasks would starve the victim's earlier batch indefinitely.
  // Count-ratio based, so TSan's uniform slowdown does not affect it.
  ResizableThreadPool pool(2, 2);
  const int victim = 1, aggressor = 2;
  pool.set_tenant_grant(victim, 1);
  pool.set_tenant_grant(aggressor, 1);
  const auto spin = [] {
    unsigned acc = 1;
    for (int k = 0; k < 4000; ++k) acc = acc * 1664525u + 1013904223u;
    volatile unsigned sink = acc;
    (void)sink;
  };
  constexpr long kVictimTasks = 200;
  std::atomic<long> victim_done{0}, aggr_done{0};
  std::atomic<long> aggr_at_victim_end{-1};
  std::atomic<bool> stop_flood{false};
  std::atomic<int> flood_outstanding{0};
  std::thread flooder([&] {
    while (!stop_flood.load(std::memory_order_acquire)) {
      if (flood_outstanding.load(std::memory_order_relaxed) < 256) {
        flood_outstanding.fetch_add(1, std::memory_order_relaxed);
        pool.submit(
            [&] {
              spin();
              aggr_done.fetch_add(1, std::memory_order_relaxed);
              flood_outstanding.fetch_sub(1, std::memory_order_relaxed);
            },
            aggressor);
      } else {
        std::this_thread::yield();
      }
    }
  });
  // Let the flood establish a real backlog first: the victim's tasks must
  // arrive OLDER than a standing queue of aggressor work (the legacy LIFO
  // starvation scenario), not race an empty pool.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (pool.tenant_queued(aggressor) < 128 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  const long aggr_headstart = aggr_done.load(std::memory_order_relaxed);
  for (long i = 0; i < kVictimTasks; ++i) {
    pool.submit(
        [&] {
          spin();
          if (victim_done.fetch_add(1, std::memory_order_relaxed) + 1 ==
              kVictimTasks) {
            aggr_at_victim_end.store(aggr_done.load(std::memory_order_relaxed),
                                     std::memory_order_relaxed);
          }
        },
        victim);
  }
  while (victim_done.load() < kVictimTasks &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop_flood.store(true, std::memory_order_release);
  flooder.join();
  pool.wait_idle();
  ASSERT_EQ(victim_done.load(), kVictimTasks) << "victim starved by the flood";
  // Equal grants => roughly equal service while the victim ran. Generous 3x
  // plus the flood's queue-depth headstart; the legacy dispatch would be
  // unbounded here (the victim would not finish until the flood stopped).
  EXPECT_LE(aggr_at_victim_end.load() - aggr_headstart, kVictimTasks * 3 + 512);
}

#ifndef ASKEL_TSAN
TEST(MultiTenant, FeasibleFairShareGoalsAreMet) {
  // Wall-clock assertion (skipped under TSan's slowdown): with K=3 tenants on
  // a budget of 12, fair share is 4 threads each. Goals chosen feasible at
  // fair share must be met even with all tenants armed concurrently.
  ResizableThreadPool pool(1, 24);
  LpBudgetCoordinator coord(pool, 12);
  constexpr int kTenants = 3;
  const double goals[kTenants] = {11.0, 12.0, 13.0};  // sequential ≈ 12.5
  std::vector<ScenarioResult> results(kTenants);
  std::vector<std::thread> runners;
  for (int k = 0; k < kTenants; ++k) {
    runners.emplace_back([&, k] {
      const ScenarioConfig cfg = tiny_tenant_scenario(goals[k], &pool, &coord);
      results[static_cast<std::size_t>(k)] = run_wordcount_scenario(cfg);
    });
  }
  for (std::thread& t : runners) t.join();
  for (int k = 0; k < kTenants; ++k) {
    const ScenarioResult& r = results[static_cast<std::size_t>(k)];
    EXPECT_EQ(r.counts, r.expected);
    EXPECT_TRUE(r.goal_met) << "tenant " << k << " wct=" << r.wct
                            << " goal=" << r.goal;
  }
  EXPECT_LE(coord.peak_total_granted(), 12);
}
#endif

}  // namespace
}  // namespace askel
