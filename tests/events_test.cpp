// Unit tests for events/: event vocabulary, listeners, bus dispatch.

#include <gtest/gtest.h>

#include <thread>

#include "events/event_bus.hpp"

namespace askel {
namespace {

Event make_event(When when, Where where, std::int64_t exec = 1) {
  Event ev;
  ev.when = when;
  ev.where = where;
  ev.exec_id = exec;
  return ev;
}

TEST(EventEnums, ToString) {
  EXPECT_EQ(to_string(When::kBefore), "BEFORE");
  EXPECT_EQ(to_string(When::kAfter), "AFTER");
  EXPECT_EQ(to_string(Where::kSkeleton), "SKELETON");
  EXPECT_EQ(to_string(Where::kSplit), "SPLIT");
  EXPECT_EQ(to_string(Where::kMerge), "MERGE");
  EXPECT_EQ(to_string(Where::kCondition), "CONDITION");
  EXPECT_EQ(to_string(Where::kNested), "NESTED");
  EXPECT_EQ(to_string(Where::kExecute), "EXECUTE");
}

TEST(EventBus, DispatchWithNoListenersReturnsParam) {
  EventBus bus;
  const std::any out = bus.dispatch(std::any(42), make_event(When::kBefore, Where::kSkeleton));
  EXPECT_EQ(std::any_cast<int>(out), 42);
}

TEST(EventBus, GenericListenerSeesEventAndParam) {
  EventBus bus;
  Event seen;
  bus.add_listener(std::make_shared<GenericListener>(
      [&seen](std::any p, const Event& ev) {
        seen = ev;
        return p;
      }));
  Event ev = make_event(When::kAfter, Where::kSplit, 9);
  ev.cardinality = 3;
  bus.dispatch(std::any(1), ev);
  EXPECT_EQ(seen.when, When::kAfter);
  EXPECT_EQ(seen.where, Where::kSplit);
  EXPECT_EQ(seen.exec_id, 9);
  EXPECT_EQ(seen.cardinality, 3);
}

TEST(EventBus, ListenerCanRewritePartialSolution) {
  EventBus bus;
  bus.add_listener(std::make_shared<GenericListener>(
      [](std::any p, const Event&) { return std::any(std::any_cast<int>(p) + 1); }));
  const std::any out = bus.dispatch(std::any(1), make_event(When::kBefore, Where::kExecute));
  EXPECT_EQ(std::any_cast<int>(out), 2);
}

TEST(EventBus, ListenersChainInRegistrationOrder) {
  EventBus bus;
  bus.add_listener(std::make_shared<GenericListener>(
      [](std::any p, const Event&) { return std::any(std::any_cast<int>(p) * 2); }));
  bus.add_listener(std::make_shared<GenericListener>(
      [](std::any p, const Event&) { return std::any(std::any_cast<int>(p) + 3); }));
  const std::any out = bus.dispatch(std::any(5), make_event(When::kBefore, Where::kExecute));
  EXPECT_EQ(std::any_cast<int>(out), 13);  // (5*2)+3, not (5+3)*2
}

TEST(EventBus, FilteredListenerOnlyFires) {
  EventBus bus;
  int hits = 0;
  bus.add_listener(std::make_shared<FilteredListener>(
      When::kAfter, Where::kMerge, [&hits](std::any p, const Event&) {
        ++hits;
        return p;
      }));
  bus.dispatch({}, make_event(When::kBefore, Where::kMerge));
  bus.dispatch({}, make_event(When::kAfter, Where::kSplit));
  bus.dispatch({}, make_event(When::kAfter, Where::kMerge));
  EXPECT_EQ(hits, 1);
}

TEST(EventBus, ObserverListenerNeverTouchesParam) {
  EventBus bus;
  bus.add_listener(std::make_shared<ObserverListener>([](const Event&) {}));
  const std::any out = bus.dispatch(std::any(std::string("x")),
                                    make_event(When::kBefore, Where::kSkeleton));
  EXPECT_EQ(std::any_cast<std::string>(out), "x");
}

TEST(EventBus, RemoveListenerStopsDelivery) {
  EventBus bus;
  int hits = 0;
  const auto id = bus.add_listener(
      std::make_shared<ObserverListener>([&hits](const Event&) { ++hits; }));
  bus.dispatch({}, make_event(When::kBefore, Where::kSkeleton));
  EXPECT_TRUE(bus.remove_listener(id));
  bus.dispatch({}, make_event(When::kBefore, Where::kSkeleton));
  EXPECT_EQ(hits, 1);
  EXPECT_FALSE(bus.remove_listener(id));  // already gone
}

TEST(EventBus, ListenerCount) {
  EventBus bus;
  EXPECT_EQ(bus.listener_count(), 0u);
  const auto a = bus.add_listener(std::make_shared<ObserverListener>([](const Event&) {}));
  bus.add_listener(std::make_shared<ObserverListener>([](const Event&) {}));
  EXPECT_EQ(bus.listener_count(), 2u);
  bus.remove_listener(a);
  EXPECT_EQ(bus.listener_count(), 1u);
}

TEST(EventBus, ListenerMayRegisterAnotherDuringDispatch) {
  // Dispatch never holds the writer lock, so a listener that mutates the
  // bus from inside handle() must neither deadlock nor affect the in-flight
  // dispatch (RCU: the running dispatch keeps its snapshot).
  EventBus bus;
  int late_hits = 0;
  bus.add_listener(std::make_shared<ObserverListener>([&](const Event&) {
    bus.add_listener(std::make_shared<ObserverListener>(
        [&late_hits](const Event&) { ++late_hits; }));
  }));
  bus.dispatch({}, make_event(When::kBefore, Where::kSkeleton));
  EXPECT_EQ(late_hits, 0);  // not visible to the dispatch that added it
  EXPECT_EQ(bus.listener_count(), 2u);
  bus.dispatch({}, make_event(When::kBefore, Where::kSkeleton));
  EXPECT_EQ(late_hits, 1);  // visible to the next dispatch
}

TEST(EventBus, ConcurrentDispatchAndRegistrationIsSafe) {
  EventBus bus;
  std::atomic<long> hits{0};
  bus.add_listener(std::make_shared<ObserverListener>([&hits](const Event&) {
    hits.fetch_add(1, std::memory_order_relaxed);
  }));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bus] {
      for (int k = 0; k < 200; ++k)
        bus.dispatch({}, Event{});
    });
  }
  for (int k = 0; k < 50; ++k) {
    const auto id =
        bus.add_listener(std::make_shared<ObserverListener>([](const Event&) {}));
    bus.remove_listener(id);
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hits.load(), 800);
}

}  // namespace
}  // namespace askel
