// Tests for sm/: per-skeleton state machines (paper Figures 3 and 4), the
// tracker set, and the full virtual-time replay of the paper's §4 example.

#include <gtest/gtest.h>

#include "adg/best_effort.hpp"
#include "adg/limited_lp.hpp"
#include "adg/timeline.hpp"
#include "autonomic/decision.hpp"
#include "workload/paper_example.hpp"
#include "workload/wordcount.hpp"

namespace askel {
namespace {

// Helper to synthesize events against real nodes.
Event ev(const SkelNode* node, std::int64_t exec, std::int64_t parent, When when,
         Where where, int muscle, double t, int card = -1, bool cond = false) {
  Event e;
  e.when = when;
  e.where = where;
  e.exec_id = exec;
  e.parent_exec_id = parent;
  e.node = node;
  e.muscle_id = muscle;
  e.timestamp = t;
  e.cardinality = card;
  e.condition_result = cond;
  return e;
}

TEST(SeqSm, Figure3UpdatesDurationEstimate) {
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto skel = Seq(fe);
  const SkelNode* n = skel.node().get();
  EstimateRegistry reg(0.5);
  TrackerSet ts(reg);

  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kExecute, fe.m->id(), 10.0));
  EXPECT_FALSE(reg.t(fe.m->id()).has_value());
  ts.on_event(ev(n, 1, -1, When::kAfter, Where::kExecute, fe.m->id(), 14.0));
  EXPECT_DOUBLE_EQ(*reg.t(fe.m->id()), 4.0);
  EXPECT_TRUE(ts.root_finished());

  // Second instance blends with the EWMA: 0.5*8 + 0.5*4 = 6.
  ts.on_event(ev(n, 2, -1, When::kBefore, Where::kExecute, fe.m->id(), 20.0));
  ts.on_event(ev(n, 2, -1, When::kAfter, Where::kExecute, fe.m->id(), 28.0));
  EXPECT_DOUBLE_EQ(*reg.t(fe.m->id()), 6.0);
}

TEST(SeqSm, IndexGuardKeepsInstancesSeparate) {
  // Two interleaved seq instances (the [idx == i] guard of Figure 3): the
  // after of instance B must not close instance A's record.
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto skel = Seq(fe);
  const SkelNode* n = skel.node().get();
  EstimateRegistry reg(1.0);
  TrackerSet ts(reg);
  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kExecute, fe.m->id(), 0.0));
  ts.on_event(ev(n, 2, -1, When::kBefore, Where::kExecute, fe.m->id(), 5.0));
  ts.on_event(ev(n, 2, -1, When::kAfter, Where::kExecute, fe.m->id(), 6.0));
  EXPECT_DOUBLE_EQ(*reg.t(fe.m->id()), 1.0);  // only instance 2 closed
  ts.on_event(ev(n, 1, -1, When::kAfter, Where::kExecute, fe.m->id(), 10.0));
  EXPECT_DOUBLE_EQ(*reg.t(fe.m->id()), 10.0);
}

TEST(MapSm, Figure4UpdatesSplitCardinalityAndMergeEstimates) {
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{}; });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int>) { return 0; });
  auto skel = Map(fs, Seq(fe), fm);
  const SkelNode* n = skel.node().get();
  EstimateRegistry reg(0.5);
  TrackerSet ts(reg);

  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kSkeleton, -1, 0.0));
  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kSplit, fs.m->id(), 0.0));
  ts.on_event(ev(n, 1, -1, When::kAfter, Where::kSplit, fs.m->id(), 10.0, 3));
  EXPECT_DOUBLE_EQ(*reg.t(fs.m->id()), 10.0);
  EXPECT_DOUBLE_EQ(*reg.cardinality(fs.m->id()), 3.0);
  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kMerge, fm.m->id(), 60.0));
  ts.on_event(ev(n, 1, -1, When::kAfter, Where::kMerge, fm.m->id(), 65.0));
  EXPECT_DOUBLE_EQ(*reg.t(fm.m->id()), 5.0);
  EXPECT_FALSE(ts.root_finished());
  ts.on_event(ev(n, 1, -1, When::kAfter, Where::kSkeleton, -1, 65.0));
  EXPECT_TRUE(ts.root_finished());
}

TEST(WhileSm, CountsTrueResultsAsCardinality) {
  auto fc = condition_muscle<int>("fc", [](const int&) { return false; });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto skel = While(fc, Seq(fe));
  const SkelNode* n = skel.node().get();
  EstimateRegistry reg(0.5);
  TrackerSet ts(reg);

  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kSkeleton, -1, 0.0));
  double t = 0.0;
  for (const bool result : {true, true, true, false}) {
    ts.on_event(ev(n, 1, -1, When::kBefore, Where::kCondition, fc.m->id(), t));
    ts.on_event(
        ev(n, 1, -1, When::kAfter, Where::kCondition, fc.m->id(), t + 1, -1, result));
    t += 10;
  }
  EXPECT_DOUBLE_EQ(*reg.cardinality(fc.m->id()), 3.0);
  ts.on_event(ev(n, 1, -1, When::kAfter, Where::kSkeleton, -1, t));
  EXPECT_TRUE(ts.root_finished());
}

TEST(DacSm, RootObservesDivideDepth) {
  auto fc = condition_muscle<int>("fc", [](const int&) { return false; });
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{}; });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int>) { return 0; });
  auto skel = DaC(fc, fs, Seq(fe), fm);
  const SkelNode* n = skel.node().get();
  const SkelNode* leaf = n->children()[0];
  EstimateRegistry reg(0.5);
  TrackerSet ts(reg);

  // Root (exec 1) divides into two leaves (exec 2, 3): depth 1.
  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kSkeleton, -1, 0));
  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kCondition, fc.m->id(), 0));
  ts.on_event(ev(n, 1, -1, When::kAfter, Where::kCondition, fc.m->id(), 1, -1, true));
  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kSplit, fs.m->id(), 1));
  ts.on_event(ev(n, 1, -1, When::kAfter, Where::kSplit, fs.m->id(), 2, 2));
  for (std::int64_t child = 2; child <= 3; ++child) {
    ts.on_event(ev(n, child, 1, When::kBefore, Where::kSkeleton, -1, 2));
    ts.on_event(ev(n, child, 1, When::kBefore, Where::kCondition, fc.m->id(), 2));
    ts.on_event(
        ev(n, child, 1, When::kAfter, Where::kCondition, fc.m->id(), 3, -1, false));
    const std::int64_t seq_exec = 10 + child;
    ts.on_event(ev(leaf, seq_exec, child, When::kBefore, Where::kExecute,
                   fe.m->id(), 3));
    ts.on_event(ev(leaf, seq_exec, child, When::kAfter, Where::kExecute,
                   fe.m->id(), 4));
    ts.on_event(ev(n, child, 1, When::kAfter, Where::kSkeleton, -1, 4));
  }
  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kMerge, fm.m->id(), 5));
  ts.on_event(ev(n, 1, -1, When::kAfter, Where::kMerge, fm.m->id(), 6));
  ts.on_event(ev(n, 1, -1, When::kAfter, Where::kSkeleton, -1, 6));
  EXPECT_DOUBLE_EQ(*reg.cardinality(fc.m->id()), 1.0);  // one divide level
  EXPECT_TRUE(ts.root_finished());
}

TEST(ForkSm, TracksSplitAndMergeLikeMap) {
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{}; });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fe2 = execute_muscle<int, int>("fe2", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int>) { return 0; });
  auto skel = Fork(fs, {Seq(fe), Seq(fe2)}, fm);
  const SkelNode* n = skel.node().get();
  EstimateRegistry reg(0.5);
  TrackerSet ts(reg);

  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kSkeleton, -1, 0.0));
  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kSplit, fs.m->id(), 0.0));
  ts.on_event(ev(n, 1, -1, When::kAfter, Where::kSplit, fs.m->id(), 4.0, 4));
  EXPECT_DOUBLE_EQ(*reg.cardinality(fs.m->id()), 4.0);
  // Snapshot with no started children: 4 expected elements cycling over the
  // two branches (fe, fe2, fe, fe2) plus the pending merge.
  reg.init_duration(fe.m->id(), 1.0);
  reg.init_duration(fe2.m->id(), 2.0);
  reg.init_duration(fm.m->id(), 0.5);
  const AdgSnapshot g = ts.snapshot(4.0);
  ASSERT_TRUE(g.validate().empty()) << g.validate();
  EXPECT_EQ(g.size(), 6u);  // split + 4 elements + merge
  EXPECT_TRUE(g.complete_estimates);
  int fe_count = 0, fe2_count = 0;
  for (const Activity& a : g.activities) {
    fe_count += a.muscle_id == fe.m->id();
    fe2_count += a.muscle_id == fe2.m->id();
  }
  EXPECT_EQ(fe_count, 2);
  EXPECT_EQ(fe2_count, 2);
}

TEST(ForSm, RemainingIterationsAreExpanded) {
  auto feM = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto body = Seq(feM);
  auto skel = For(3, body);
  const SkelNode* n = skel.node().get();
  const SkelNode* seq = n->children()[0];
  EstimateRegistry reg(0.5);
  TrackerSet ts(reg);

  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kSkeleton, -1, 0.0));
  // First body instance completes: 0..2.
  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kNested, -1, 0.0));
  ts.on_event(ev(seq, 2, 1, When::kBefore, Where::kExecute, feM.m->id(), 0.0));
  ts.on_event(ev(seq, 2, 1, When::kAfter, Where::kExecute, feM.m->id(), 2.0));
  const AdgSnapshot g = ts.snapshot(2.0);
  // One done body + 2 expected bodies, chained.
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.count(ActivityState::kDone), 1u);
  EXPECT_EQ(g.count(ActivityState::kPending), 2u);
  EXPECT_EQ(g.activities[1].preds, std::vector<int>{0});
  EXPECT_EQ(g.activities[2].preds, std::vector<int>{1});
}

TEST(PipeSm, SecondStageExpandsWhileFirstRuns) {
  auto f1 = execute_muscle<int, int>("f1", [](int x) { return x; });
  auto f2 = execute_muscle<int, int>("f2", [](int x) { return x; });
  auto skel = Pipe(Seq(f1), Seq(f2));
  const SkelNode* n = skel.node().get();
  const SkelNode* s1 = n->children()[0];
  EstimateRegistry reg(0.5);
  TrackerSet ts(reg);
  reg.init_duration(f1.m->id(), 3.0);
  reg.init_duration(f2.m->id(), 4.0);

  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kSkeleton, -1, 0.0));
  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kNested, -1, 0.0));
  ts.on_event(ev(s1, 2, 1, When::kBefore, Where::kExecute, f1.m->id(), 1.0));
  const AdgSnapshot g = ts.snapshot(2.0);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g.activities[0].state, ActivityState::kRunning);
  EXPECT_EQ(g.activities[1].state, ActivityState::kPending);
  EXPECT_DOUBLE_EQ(g.activities[1].est_duration, 4.0);
  EXPECT_EQ(g.activities[1].preds, std::vector<int>{0});
}

TEST(FarmSm, UnstartedChildIsExpanded) {
  auto feM = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto skel = Farm(Seq(feM));
  const SkelNode* n = skel.node().get();
  EstimateRegistry reg(0.5);
  TrackerSet ts(reg);
  reg.init_duration(feM.m->id(), 2.5);
  ts.on_event(ev(n, 1, -1, When::kBefore, Where::kSkeleton, -1, 0.0));
  const AdgSnapshot g = ts.snapshot(0.0);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g.activities[0].state, ActivityState::kPending);
  EXPECT_DOUBLE_EQ(g.activities[0].est_duration, 2.5);
}

TEST(TrackerSet, DepthPropagatesThroughTheDynamicTree) {
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{}; });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int>) { return 0; });
  auto inner = Map(fs, Seq(fe), fm);
  auto outer = Map(fs, inner, fm);
  const SkelNode* o = outer.node().get();
  const SkelNode* i = o->children()[0];
  const SkelNode* s = i->children()[0];
  EstimateRegistry reg(0.5, EstimationScope::kPerDepth);
  TrackerSet ts(reg);
  ts.on_event(ev(o, 1, -1, When::kBefore, Where::kSkeleton, -1, 0.0));
  ts.on_event(ev(i, 2, 1, When::kBefore, Where::kSkeleton, -1, 0.0));
  ts.on_event(ev(s, 3, 2, When::kBefore, Where::kExecute, fe.m->id(), 0.0));
  ts.on_event(ev(s, 3, 2, When::kAfter, Where::kExecute, fe.m->id(), 1.0));
  // The seq sits at depth 2; its observation lands on (fe, depth 2).
  EXPECT_TRUE(reg.t(fe.m->id(), 2).has_value());
  EXPECT_DOUBLE_EQ(*reg.t(fe.m->id(), 2), 1.0);
}

TEST(TrackerSet, IgnoresEventsWithoutInstanceOrNode) {
  EstimateRegistry reg;
  TrackerSet ts(reg);
  Event e;  // exec_id -1, node nullptr
  ts.on_event(e);
  EXPECT_EQ(ts.tracked_instances(), 0u);
  EXPECT_EQ(ts.current_root(), nullptr);
  EXPECT_FALSE(ts.root_finished());
}

TEST(TrackerSet, EmptySnapshotBeforeAnyEvent) {
  EstimateRegistry reg;
  TrackerSet ts(reg);
  const AdgSnapshot g = ts.snapshot(0.0);
  EXPECT_EQ(g.size(), 0u);
}

TEST(TrackerSet, ResetForgetsTrackersButKeepsEstimates) {
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto skel = Seq(fe);
  EstimateRegistry reg(0.5);
  TrackerSet ts(reg);
  ts.on_event(ev(skel.node().get(), 1, -1, When::kBefore, Where::kExecute,
                 fe.m->id(), 0.0));
  ts.on_event(ev(skel.node().get(), 1, -1, When::kAfter, Where::kExecute,
                 fe.m->id(), 2.0));
  ts.reset();
  EXPECT_EQ(ts.tracked_instances(), 0u);
  EXPECT_DOUBLE_EQ(*reg.t(fe.m->id()), 2.0);
}

// ---------------------------------------------------------------------------
// Full replay of the paper's §4 example (Figures 1 and 2).
// ---------------------------------------------------------------------------

TEST(PaperReplay, EstimatesMatchThePaperValuesAt70) {
  PaperExampleReplay r;
  r.replay_until(70.0);
  EXPECT_DOUBLE_EQ(*r.registry().t(r.skel().fs_id), 10.0);
  EXPECT_DOUBLE_EQ(*r.registry().t(r.skel().fe_id), 15.0);
  EXPECT_DOUBLE_EQ(*r.registry().t(r.skel().fm_id), 5.0);
  EXPECT_DOUBLE_EQ(*r.registry().cardinality(r.skel().fs_id), 3.0);
}

TEST(PaperReplay, SnapshotAt70HasTheFigure1Shape) {
  PaperExampleReplay r;
  r.replay_until(70.0);
  const AdgSnapshot g = r.snapshot(70.0);
  ASSERT_TRUE(g.validate().empty()) << g.validate();
  EXPECT_TRUE(g.complete_estimates);
  // Done: outer split, 2 inner splits, 6 fe, merge1 = 10.
  EXPECT_EQ(g.count(ActivityState::kDone), 10u);
  // Running: merge2 (started at 70) and split3 (started at 65).
  EXPECT_EQ(g.count(ActivityState::kRunning), 2u);
  // Pending: 3 expected fe, merge3, outer merge.
  EXPECT_EQ(g.count(ActivityState::kPending), 5u);
}

TEST(PaperReplay, SchedulesReproduceFigure1And2Numbers) {
  PaperExampleReplay r;
  r.replay_until(70.0);
  const AdgSnapshot g = r.snapshot(70.0);
  EXPECT_DOUBLE_EQ(best_effort(g).wct, 100.0);
  EXPECT_DOUBLE_EQ(limited_lp(g, 2).wct, 115.0);
  EXPECT_EQ(optimal_lp(g), 3);
}

TEST(PaperReplay, DecisionRaisesLpTo3ForGoal100) {
  // The paper's closing sentence of §4.
  PaperExampleReplay r;
  r.replay_until(70.0);
  const AdgSnapshot g = r.snapshot(70.0);
  const Decision d = decide(g, /*goal_abs=*/100.0, /*current_lp=*/2, /*max_lp=*/24);
  EXPECT_EQ(d.new_lp, 3);
  EXPECT_EQ(d.reason, DecisionReason::kIncreaseToGoal);
  EXPECT_DOUBLE_EQ(d.best_effort_wct, 100.0);
  EXPECT_DOUBLE_EQ(d.current_lp_wct, 115.0);
  EXPECT_EQ(d.optimal_lp, 3);
}

TEST(PaperReplay, EarlySnapshotIsIncompleteUntilFirstMergeRuns) {
  // "the system has to wait until all muscles have been executed at least
  //  once" — before the first merge, t(fm) is unknown.
  PaperExampleReplay r;
  r.replay_until(30.0);
  const AdgSnapshot g = r.snapshot(30.0);
  EXPECT_FALSE(g.complete_estimates);
}

TEST(PaperReplay, SnapshotBecomesCompleteExactlyAtFirstMerge) {
  PaperExampleReplay r;
  r.replay_until(69.0);
  EXPECT_FALSE(r.snapshot(69.0).complete_estimates);  // merge1 still running
  r.replay_until(70.0);
  EXPECT_TRUE(r.snapshot(70.0).complete_estimates);
}

TEST(PaperReplay, FullReplayFinishesWithAllDoneAtWct115) {
  PaperExampleReplay r;
  r.replay_until(PaperExampleReplay::kTotalWct);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.trackers().root_finished());
  const AdgSnapshot g = r.snapshot(115.0);
  EXPECT_EQ(g.count(ActivityState::kDone), g.size());
  EXPECT_DOUBLE_EQ(best_effort(g).wct, 115.0);
  EXPECT_DOUBLE_EQ(limited_lp(g, 1).wct, 115.0);  // all past: LP irrelevant
  // 1 outer split + 3×(split + 3 fe + merge) + outer merge = 17 activities.
  EXPECT_EQ(g.size(), 17u);
}

TEST(PaperReplay, MidRunSnapshotAt40HasConsistentSchedules) {
  PaperExampleReplay r;
  r.replay_until(40.0);
  const AdgSnapshot g = r.snapshot(40.0);
  ASSERT_TRUE(g.validate().empty()) << g.validate();
  // Limited-LP(k) is never better than best effort.
  const double be = best_effort(g).wct;
  for (int k = 1; k <= 4; ++k) EXPECT_GE(limited_lp(g, k).wct, be - 1e-9);
}

TEST(PaperReplay, ControllerClosesTheLoopDeterministically) {
  // Full MAPE loop on virtual time: replay the paper's event stream into a
  // TrackerSet + AutonomicController against a ManualClock and a real pool
  // (whose LP the controller sets). With the WCT goal of 100, the first
  // actionable evaluation — at the first merge, t=70 — must raise LP 2 → 3,
  // the paper's §4 closing statement.
  PaperExampleReplay r;
  ManualClock clock(0.0);
  ResizableThreadPool pool(2, 24, &clock);
  AutonomicController controller(pool, r.trackers(), &clock, ControllerConfig{});
  controller.arm(/*goal=*/100.0);

  // Drive replay and controller together; the controller sees the same
  // After-muscle cadence the bus would deliver.
  for (const double t : {10.0, 20.0, 35.0, 50.0, 65.0, 69.0}) {
    clock.set(t);
    r.replay_until(t);
    const Decision d = controller.evaluate_now();
    // Estimates incomplete until the first merge: no action possible.
    EXPECT_EQ(d.reason, DecisionReason::kIncompleteEstimates) << "t=" << t;
    EXPECT_EQ(pool.target_lp(), 2);
  }
  clock.set(70.0);
  r.replay_until(70.0);
  const Decision d = controller.evaluate_now();
  EXPECT_EQ(d.reason, DecisionReason::kIncreaseToGoal);
  EXPECT_EQ(d.new_lp, 3);
  EXPECT_EQ(pool.target_lp(), 3);
  ASSERT_EQ(controller.actions().size(), 1u);
  EXPECT_EQ(controller.actions()[0].from_lp, 2);
  EXPECT_EQ(controller.actions()[0].to_lp, 3);
}

TEST(PaperReplay, InitializedRegistryMakesEarlySnapshotsComplete) {
  // Scenario-2 mechanics: estimates from a previous run remove the warm-up.
  // Each replay builds a fresh skeleton (fresh muscle ids), so the transfer
  // goes through name-keyed estimates — exactly what a user restarting the
  // application would persist.
  PaperExampleReplay first;
  first.replay_until(115.0);
  const NamedEstimates exported =
      export_named_estimates(first.registry(), *first.skel().outer);

  PaperExampleReplay second;
  init_named_estimates(second.registry(), *second.skel().outer, exported);
  second.replay_until(10.0);  // only the outer split has finished
  const AdgSnapshot g = second.snapshot(10.0);
  EXPECT_TRUE(g.complete_estimates);
  // With everything known up front the best-effort estimate of the whole run
  // from t=10 is 10 + 10 + 15·(critical path 3 sequential fe) + 5 + 5 = wait —
  // structure: inner split 10, fe 15 (parallel ∞), merge 5, outer merge 5.
  EXPECT_DOUBLE_EQ(best_effort(g).wct, 45.0);
}

}  // namespace
}  // namespace askel
