// Concurrency stress for the PR 7 sharded coordinator: registration churn,
// arbitration traffic and lifecycle transitions race from many threads.
// Primarily a ThreadSanitizer target (the CI tsan job runs it); the final
// invariant checks also make it a meaningful race-outcome test under the
// normal build. RUN_SERIAL: it saturates every core by design.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "autonomic/coordinator.hpp"
#include "runtime/thread_pool.hpp"

namespace askel {
namespace {

TEST(CoordinatorStress, ConcurrentRegisterArbitrateRetire) {
  ResizableThreadPool pool(1, 16);
  LpBudgetCoordinator coord(pool, 16);

  constexpr int kChurnThreads = 4;
  constexpr int kTrafficThreads = 3;
  constexpr int kOpsPerChurner = 400;

  // A stable armed population the traffic threads hammer for the whole run,
  // so arbitration constantly races the churners' register/unregister.
  std::vector<int> stable;
  for (int k = 0; k < 8; ++k) {
    const int id = coord.register_tenant("stable");
    coord.arm_tenant(id);
    stable.push_back(id);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // Churners: full lifecycle — register, set weight/group, arm, a few
  // requests, release, unregister. Ids recycle across threads through the
  // shard free lists.
  for (int t = 0; t < kChurnThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t);
      for (int op = 0; op < kOpsPerChurner; ++op) {
        const int id = coord.register_tenant("churn");
        coord.set_tenant_weight(id, 1 + static_cast<int>(rng() % 3));
        coord.set_tenant_group(id, static_cast<int>(rng() % 3));
        coord.arm_tenant(id);
        for (int r = 0; r < 3; ++r) {
          coord.request(id, 1 + static_cast<int>(rng() % 6),
                        0.5 * static_cast<double>(rng() % 4));
        }
        if (rng() % 2 == 0) coord.release(id);
        coord.unregister_tenant(id);  // releases implicitly when still armed
      }
    });
  }

  // Traffic: request/granted on the stable tenants — the hot path that must
  // never touch a registry shard.
  for (int t = 0; t < kTrafficThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(2000 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const int id = stable[rng() % stable.size()];
        coord.request(id, 1 + static_cast<int>(rng() % 8),
                      0.5 * static_cast<double>(rng() % 4));
        (void)coord.granted(id);
        (void)coord.total_granted();
      }
    });
  }

  // Reader: the introspection surface races everything else.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)coord.active_tenants();
      (void)coord.registered_tenants();
      (void)coord.history();
      std::this_thread::yield();
    }
  });

  for (int t = 0; t < kChurnThreads; ++t) threads[static_cast<std::size_t>(t)].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t t = kChurnThreads; t < threads.size(); ++t) threads[t].join();

  // Every churned tenant is gone: only the stable population remains, the
  // budget invariant held, and each stable tenant still has its entry.
  EXPECT_EQ(coord.registered_tenants(), static_cast<int>(stable.size()));
  EXPECT_EQ(coord.armed_tenants(), static_cast<int>(stable.size()));
  EXPECT_LE(coord.total_granted(), coord.budget());
  EXPECT_LE(coord.peak_total_granted(), coord.budget());
  for (int id : stable) {
    coord.release(id);
    coord.unregister_tenant(id);
  }
  EXPECT_EQ(coord.registered_tenants(), 0);
  EXPECT_EQ(coord.total_granted(), 0);
}

}  // namespace
}  // namespace askel
