// Tests for adg/expand: expected-future expansion of skeleton trees.

#include <gtest/gtest.h>

#include "adg/best_effort.hpp"
#include "adg/expand.hpp"
#include "skel/typed.hpp"

namespace askel {
namespace {

struct Muscles {
  SplitM<int, int> fs = split_muscle<int, int>("fs", [](int) {
    return std::vector<int>{};
  });
  ExecuteM<int, int> fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  MergeM<int, int> fm = merge_muscle<int, int>("fm", [](std::vector<int>) { return 0; });
  CondM<int> fc = condition_muscle<int>("fc", [](const int&) { return false; });
};

Estimates full_estimates(const Muscles& m, double card = 3.0) {
  Estimates est;
  est.set(m.fs.m->id(), {10.0, card});
  est.set(m.fe.m->id(), {15.0, std::nullopt});
  est.set(m.fm.m->id(), {5.0, std::nullopt});
  est.set(m.fc.m->id(), {1.0, 2.0});
  return est;
}

TEST(Expand, SeqIsOneActivity) {
  Muscles m;
  AdgSnapshot g;
  const auto terminals = expand_expected(*Seq(m.fe).node(), full_estimates(m), g, {});
  ASSERT_EQ(terminals.size(), 1u);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g.activities[0].est_duration, 15.0);
  EXPECT_TRUE(g.complete_estimates);
}

TEST(Expand, SeqWithoutEstimateFlagsIncomplete) {
  Muscles m;
  AdgSnapshot g;
  expand_expected(*Seq(m.fe).node(), Estimates{}, g, {});
  EXPECT_FALSE(g.complete_estimates);
  EXPECT_DOUBLE_EQ(g.activities[0].est_duration, 0.0);
}

TEST(Expand, MapUsesCardinalityEstimate) {
  Muscles m;
  AdgSnapshot g;
  const auto terminals =
      expand_expected(*Map(m.fs, Seq(m.fe), m.fm).node(), full_estimates(m, 3.0), g, {});
  // split + 3 fe + merge
  EXPECT_EQ(g.size(), 5u);
  ASSERT_EQ(terminals.size(), 1u);
  // Terminal is the merge; its preds are the three fe.
  const Activity& merge = g.activities[terminals[0]];
  EXPECT_EQ(merge.preds.size(), 3u);
  // Every fe depends on the split.
  for (const int p : merge.preds) {
    EXPECT_EQ(g.activities[p].preds, std::vector<int>{0});
  }
}

TEST(Expand, NestedMapsMatchPaperStructure) {
  Muscles m;
  AdgSnapshot g;
  auto skel = Map(m.fs, Map(m.fs, Seq(m.fe), m.fm), m.fm);
  expand_expected(*skel.node(), full_estimates(m, 3.0), g, {});
  // outer split + 3×(split + 3 fe + merge) + outer merge = 1 + 15 + 1.
  EXPECT_EQ(g.size(), 17u);
  // Best-effort from scratch: 10 + 10 + 15 + 5 + 5 = 45.
  EXPECT_DOUBLE_EQ(best_effort(g).wct, 45.0);
}

TEST(Expand, MapWithoutCardinalityFallsBackToOneAndFlags) {
  Muscles m;
  Estimates est = full_estimates(m);
  est.set(m.fs.m->id(), {10.0, std::nullopt});  // no |fs|
  AdgSnapshot g;
  expand_expected(*Map(m.fs, Seq(m.fe), m.fm).node(), est, g, {});
  EXPECT_EQ(g.size(), 3u);  // split + 1 fe + merge
  EXPECT_FALSE(g.complete_estimates);
}

TEST(Expand, PipeChainsStages) {
  Muscles m;
  AdgSnapshot g;
  auto skel = Pipe(Seq(m.fe), Seq(m.fe));
  const auto terminals = expand_expected(*skel.node(), full_estimates(m), g, {});
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.activities[1].preds, std::vector<int>{0});
  EXPECT_EQ(terminals, std::vector<int>{1});
}

TEST(Expand, FarmIsTransparent) {
  Muscles m;
  AdgSnapshot g;
  expand_expected(*Farm(Seq(m.fe)).node(), full_estimates(m), g, {});
  EXPECT_EQ(g.size(), 1u);
}

TEST(Expand, WhileUsesConditionCardinality) {
  Muscles m;
  AdgSnapshot g;
  auto skel = While(m.fc, Seq(m.fe));
  expand_expected(*skel.node(), full_estimates(m), g, {});  // |fc| = 2
  // cond, body, cond, body, final cond = 5 activities.
  EXPECT_EQ(g.size(), 5u);
  // Chain: total best effort = 1 + 15 + 1 + 15 + 1 = 33.
  EXPECT_DOUBLE_EQ(best_effort(g).wct, 33.0);
}

TEST(Expand, ForChainsNBodies) {
  Muscles m;
  AdgSnapshot g;
  expand_expected(*For(4, Seq(m.fe)).node(), full_estimates(m), g, {});
  EXPECT_EQ(g.size(), 4u);
  EXPECT_DOUBLE_EQ(best_effort(g).wct, 60.0);
}

TEST(Expand, IfExpandsConditionPlusTrueBranch) {
  Muscles m;
  auto heavy = Seq(m.fe);
  auto light = Seq(execute_muscle<int, int>("other", [](int x) { return x; }));
  AdgSnapshot g;
  expand_expected(*If(m.fc, heavy, light).node(), full_estimates(m), g, {});
  EXPECT_EQ(g.size(), 2u);  // cond + true branch (documented deviation)
  EXPECT_DOUBLE_EQ(g.activities[1].est_duration, 15.0);
}

TEST(Expand, ForkCyclesBranches) {
  Muscles m;
  auto b0 = Seq(m.fe);
  auto b1 = Seq(execute_muscle<int, int>("fe2", [](int x) { return x; }));
  AdgSnapshot g;
  Estimates est = full_estimates(m, 4.0);  // |fs| = 4 over 2 branches
  expand_expected(*Fork(m.fs, {b0, b1}, m.fm).node(), est, g, {});
  EXPECT_EQ(g.size(), 6u);  // split + 4 elements + merge
}

TEST(Expand, DacDepthZeroIsCondPlusLeaf) {
  Muscles m;
  Estimates est = full_estimates(m);
  est.set(m.fc.m->id(), {1.0, 0.0});  // recursion depth 0
  AdgSnapshot g;
  expand_expected(*DaC(m.fc, m.fs, Seq(m.fe), m.fm).node(), est, g, {});
  EXPECT_EQ(g.size(), 2u);  // cond + leaf fe
}

TEST(Expand, DacDepthTwoBranchingTwoCounts) {
  Muscles m;
  Estimates est = full_estimates(m, 2.0);  // |fs| = 2
  est.set(m.fc.m->id(), {1.0, 2.0});       // depth 2
  AdgSnapshot g;
  expand_expected(*DaC(m.fc, m.fs, Seq(m.fe), m.fm).node(), est, g, {});
  // level0: cond+split+merge, 2×level1 (cond+split+merge), 4×level2 (cond+leaf)
  // = 3 + 2*3 + 4*2 = 17.
  EXPECT_EQ(g.size(), 17u);
}

TEST(Expand, DacBodyVariantSkipsTheCondition) {
  Muscles m;
  Estimates est = full_estimates(m);
  est.set(m.fc.m->id(), {1.0, 0.0});
  AdgSnapshot g;
  const auto skel = DaC(m.fc, m.fs, Seq(m.fe), m.fm);  // keep the tree alive
  const auto& dac = static_cast<const DacNode&>(*skel.node());
  expand_dac_body(dac, est, g, {}, /*level=*/0, /*divided=*/false);
  EXPECT_EQ(g.size(), 1u);  // only the leaf
}

TEST(Expand, ExpectedDacAtDeepLevelIsLeafOnly) {
  Muscles m;
  Estimates est = full_estimates(m, 2.0);
  est.set(m.fc.m->id(), {1.0, 1.0});  // depth 1
  AdgSnapshot g;
  const auto skel = DaC(m.fc, m.fs, Seq(m.fe), m.fm);  // keep the tree alive
  const auto& dac = static_cast<const DacNode&>(*skel.node());
  // At level 1 >= depth 1: cond + leaf.
  expand_expected_dac(dac, est, g, {}, /*level=*/1);
  EXPECT_EQ(g.size(), 2u);
}

TEST(Expand, TruncationGuardStopsExplosion) {
  Muscles m;
  Estimates est;
  est.set(m.fs.m->id(), {1.0, 10.0});
  est.set(m.fe.m->id(), {1.0, std::nullopt});
  est.set(m.fm.m->id(), {1.0, std::nullopt});
  est.set(m.fc.m->id(), {1.0, 10.0});  // depth 10, branching 10 → 10^10 nodes
  AdgSnapshot g;
  ExpandLimits lim;
  lim.max_activities = 500;
  expand_expected(*DaC(m.fc, m.fs, Seq(m.fe), m.fm).node(), est, g, {}, lim);
  EXPECT_TRUE(g.truncated);
  EXPECT_LE(g.size(), 520u);  // cap plus the in-flight frame finishing up
}

TEST(Expand, RoundedCardinalityClampsNegativeToZero) {
  Estimates est;
  est.set(1, {std::nullopt, -2.0});
  bool known = false;
  EXPECT_EQ(rounded_cardinality(est, 1, 9, &known), 0);
  EXPECT_TRUE(known);
  EXPECT_EQ(rounded_cardinality(est, 2, 9, &known), 9);
  EXPECT_FALSE(known);
}

TEST(Expand, AddPendingMuscleUsesEstimate) {
  Muscles m;
  AdgSnapshot g;
  Estimates est = full_estimates(m);
  const int id = add_pending_muscle(g, est, *m.fe.m, {});
  EXPECT_DOUBLE_EQ(g.activities[id].est_duration, 15.0);
  EXPECT_TRUE(g.activities[id].has_estimate);
}

}  // namespace
}  // namespace askel
