// Wire-layer hardening suite over REAL sockets: the deadline semantics,
// peer-death behavior and payload framing of the shared fd transport
// (frame_io.hpp), plus the TCP worker host / factory pair end to end.
//
// The deadline pins are the load-bearing ones:
//   * a peer stalled MID-frame cannot wedge recv past its timeout — the
//     total wait is <= timeout + epsilon, and the desynced link is poisoned;
//   * a peer TRICKLING bytes cannot extend the wait either — every poll
//     uses the remaining time to the deadline anchored at entry, so
//     progress never re-arms the clock;
//   * a dead peer surfaces as a failed send (MSG_NOSIGNAL -> EPIPE), never
//     SIGPIPE — the process surviving these tests IS the assertion.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/frame_io.hpp"
#include "runtime/muscle_table.hpp"
#include "runtime/subprocess_backend.hpp"
#include "runtime/tcp_transport.hpp"
#include "runtime/transport.hpp"

namespace askel {
namespace {

using namespace std::chrono_literals;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// A connected AF_UNIX stream pair: [0] wrapped in FdTransport, [1] raw for
/// the test to play the (mis)behaving peer.
struct Pair {
  std::unique_ptr<FdTransport> transport;
  int peer = -1;

  Pair() {
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    transport = std::make_unique<FdTransport>(sv[0]);
    peer = sv[1];
  }
  ~Pair() {
    if (peer >= 0) ::close(peer);
  }
};

// ------------------------------------------------------ deadline honoring --

TEST(FrameIo, CleanTimeoutLeavesTheLinkAlive) {
  Pair p;
  WireFrame f;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(p.transport->recv(f, 0.05));
  EXPECT_LT(seconds_since(t0), 0.5);
  // Nothing was consumed: the stream is still in sync, the link stays up.
  EXPECT_TRUE(p.transport->alive());
}

TEST(FrameIo, StalledMidFrameHonorsTheDeadlineAndPoisonsTheLink) {
  Pair p;
  // The peer writes HALF a frame and stalls (descheduled, wedged, hostile).
  const WireFrameBytes bytes = encode_frame(
      WireFrame{WireFrameType::kComplete, 0, 1, 0, 0});
  ASSERT_EQ(::send(p.peer, bytes.data(), 10, MSG_NOSIGNAL), 10);
  WireFrame f;
  const double timeout = 0.2;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(p.transport->recv(f, timeout));
  const double waited = seconds_since(t0);
  // The satellite pin: total wait <= timeout + epsilon (generous for CI
  // load), and it genuinely waited out the deadline rather than bailing.
  EXPECT_LE(waited, timeout + 0.3);
  EXPECT_GE(waited, timeout * 0.5);
  // A timeout MID-frame means the byte stream is desynced for good.
  EXPECT_FALSE(p.transport->alive());
}

TEST(FrameIo, TricklingPeerCannotExtendTheDeadline) {
  Pair p;
  // One byte every 20 ms: under a per-read re-armed timeout a whole frame
  // (33 bytes) would take ~0.66 s and recv would never time out at all.
  // The anchored deadline must cut it off at `timeout` regardless.
  std::atomic<bool> stop{false};
  std::thread trickler([&] {
    const WireFrameBytes bytes = encode_frame(
        WireFrame{WireFrameType::kComplete, 0, 1, 0, 0});
    std::size_t at = 0;
    while (!stop.load(std::memory_order_acquire) && at < bytes.size()) {
      if (::send(p.peer, bytes.data() + at, 1, MSG_NOSIGNAL) != 1) break;
      ++at;
      std::this_thread::sleep_for(20ms);
    }
  });
  WireFrame f;
  const double timeout = 0.2;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(p.transport->recv(f, timeout));
  const double waited = seconds_since(t0);
  stop.store(true, std::memory_order_release);
  trickler.join();
  EXPECT_LE(waited, timeout + 0.3);     // progress never re-armed the clock
  EXPECT_FALSE(p.transport->alive());   // partial frame = desynced
}

// --------------------------------------------------------- peer death ------

TEST(FrameIo, DeadPeerFailsTheSendInsteadOfRaisingSigpipe) {
  Pair p;
  ::close(p.peer);
  p.peer = -1;
  // The first send may land in the kernel buffer of a half-closed pair;
  // by the second the RST/EPIPE is definitive. Surviving this loop at all
  // is the SIGPIPE regression assertion (MSG_NOSIGNAL on every send path).
  bool failed = false;
  for (int k = 0; k < 4 && !failed; ++k) {
    failed = !p.transport->send(WireFrame{WireFrameType::kHeartbeat, 0,
                                          static_cast<std::uint64_t>(k), 0, 0});
  }
  EXPECT_TRUE(failed);
  EXPECT_FALSE(p.transport->alive());
}

TEST(FrameIo, PeerCloseSurfacesAsDeadLinkOnRecv) {
  Pair p;
  ::close(p.peer);
  p.peer = -1;
  WireFrame f;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(p.transport->recv(f, 5.0));
  EXPECT_LT(seconds_since(t0), 1.0);  // EOF is immediate, not a timeout
  EXPECT_FALSE(p.transport->alive());
}

// ----------------------------------------------------------- payload I/O ---

TEST(FrameIo, NamedFramesRoundTripPayloadOverARealSocket) {
  Pair p;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251, 252};
  const WireFrame f{WireFrameType::kSubmitNamed, 3, 9, 7,
                    static_cast<std::uint64_t>(payload.size())};
  ASSERT_TRUE(p.transport->send(f, payload.data(), payload.size()));
  WireFrame got;
  std::vector<std::uint8_t> got_payload;
  ASSERT_EQ(frame_io::read_frame(p.peer, 1.0, got, &got_payload),
            frame_io::ReadResult::kFrame);
  EXPECT_EQ(got, f);
  EXPECT_EQ(got_payload, payload);
}

TEST(FrameIo, PayloadlessRecvConsumesThePayloadToKeepSync) {
  Pair p;
  const std::vector<std::uint8_t> payload = {9, 9, 9, 9};
  ASSERT_TRUE(p.transport->send(
      WireFrame{WireFrameType::kResultNamed, 0, 1, 0, payload.size()},
      payload.data(), payload.size()));
  ASSERT_TRUE(p.transport->send(
      WireFrame{WireFrameType::kComplete, 0, 2, 0, 0}));
  // Reading the named frame through the frame-only overload must discard
  // the payload bytes, leaving the NEXT frame intact on the stream.
  WireFrame f;
  ASSERT_EQ(frame_io::read_frame(p.peer, 1.0, f, nullptr),
            frame_io::ReadResult::kFrame);
  EXPECT_EQ(f.type, WireFrameType::kResultNamed);
  ASSERT_EQ(frame_io::read_frame(p.peer, 1.0, f, nullptr),
            frame_io::ReadResult::kFrame);
  EXPECT_EQ(f.type, WireFrameType::kComplete);
  EXPECT_EQ(f.seq, 2u);
}

TEST(FrameIo, OversizedAdvertisedPayloadPoisonsNeverAllocates) {
  Pair p;
  const WireFrameBytes bytes = encode_frame(
      WireFrame{WireFrameType::kSubmitNamed, 0, 1, 1, kMaxNamedPayload + 1});
  ASSERT_TRUE(frame_io::write_full(p.peer, bytes.data(), bytes.size()));
  WireFrame f;
  EXPECT_FALSE(p.transport->recv(f, 0.5));
  EXPECT_FALSE(p.transport->alive());  // hostile length = poisoned link
}

// ------------------------------------------------- host + factory, E2E -----

TEST(TcpTransport, ConnectJoinsAndServesTheLeaseProtocol) {
  TcpWorkerHost host;
  ASSERT_TRUE(host.listening());
  TcpBackendConfig cfg;
  cfg.port = host.port();
  TcpTransportFactory factory(cfg);
  TransportFactory::Connect c = factory.try_connect(0);
  ASSERT_FALSE(c.failed);
  ASSERT_NE(c.transport, nullptr);  // hello already consumed by the factory
  // Submit -> Complete, batch-transparent.
  ASSERT_TRUE(c.transport->send(
      WireFrame{WireFrameType::kSubmit, 0, 1, 0, 16}));
  WireFrame f;
  ASSERT_TRUE(c.transport->recv(f, 2.0));
  EXPECT_EQ(f.type, WireFrameType::kComplete);
  EXPECT_EQ(f.seq, 1u);
  // Heartbeat -> ack.
  ASSERT_TRUE(c.transport->send(
      WireFrame{WireFrameType::kHeartbeat, 0, 2, 0, 0}));
  ASSERT_TRUE(c.transport->recv(f, 2.0));
  EXPECT_EQ(f.type, WireFrameType::kHeartbeatAck);
  EXPECT_EQ(f.seq, 2u);
  // Retire -> retired.
  ASSERT_TRUE(c.transport->send(
      WireFrame{WireFrameType::kRetire, 0, 3, 0, 0}));
  ASSERT_TRUE(c.transport->recv(f, 2.0));
  EXPECT_EQ(f.type, WireFrameType::kRetired);
  const auto joins = factory.join_latencies_us();
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_GT(joins[0], 0.0);
  EXPECT_EQ(host.sessions_accepted(), 1u);
}

TEST(TcpTransport, ExecutesRegisteredMusclesAndAnswersProtocolErrors) {
  MuscleTable table;
  const WireMuscleId dbl = table.register_muscle(
      "double", [](const PodValue& v) {
        return PodValue::of_i64(v.as_i64() * 2);
      });
  TcpWorkerHost host(table);
  ASSERT_TRUE(host.listening());
  TcpBackendConfig cfg;
  cfg.port = host.port();
  TcpTransportFactory factory(cfg);
  TransportFactory::Connect c = factory.try_connect(0);
  ASSERT_NE(c.transport, nullptr);
  // kOk: the registered muscle really executed on the worker host.
  WireFrame reply;
  std::vector<std::uint8_t> result;
  {
    SCOPED_TRACE("ok");
    std::vector<std::uint8_t> wire_arg = encode_pod(PodValue::of_i64(21));
    ASSERT_TRUE(c.transport->send(
        WireFrame{WireFrameType::kSubmitNamed, 0, 1, dbl,
                  static_cast<std::uint64_t>(wire_arg.size())},
        wire_arg.data(), wire_arg.size()));
    ASSERT_TRUE(c.transport->recv(reply, result, 2.0));
    EXPECT_EQ(reply.type, WireFrameType::kResultNamed);
    EXPECT_EQ(reply.a, static_cast<std::uint64_t>(NamedStatus::kOk));
    PodValue out;
    ASSERT_TRUE(decode_pod(result.data(), result.size(), out));
    EXPECT_EQ(out.as_i64(), 42);
  }
  // kUnknownMuscle: a reply, not a torn link.
  {
    SCOPED_TRACE("unknown");
    std::vector<std::uint8_t> wire_arg = encode_pod(PodValue::of_void());
    ASSERT_TRUE(c.transport->send(
        WireFrame{WireFrameType::kSubmitNamed, 0, 2, 999,
                  static_cast<std::uint64_t>(wire_arg.size())},
        wire_arg.data(), wire_arg.size()));
    ASSERT_TRUE(c.transport->recv(reply, result, 2.0));
    EXPECT_EQ(reply.a, static_cast<std::uint64_t>(NamedStatus::kUnknownMuscle));
  }
  // kBadArgument: a payload that does not decode.
  {
    SCOPED_TRACE("bad-argument");
    const std::vector<std::uint8_t> garbage = {0xDE, 0xAD};
    ASSERT_TRUE(c.transport->send(
        WireFrame{WireFrameType::kSubmitNamed, 0, 3, dbl,
                  static_cast<std::uint64_t>(garbage.size())},
        garbage.data(), garbage.size()));
    ASSERT_TRUE(c.transport->recv(reply, result, 2.0));
    EXPECT_EQ(reply.a, static_cast<std::uint64_t>(NamedStatus::kBadArgument));
  }
  // The link survived every protocol error and still serves leases.
  ASSERT_TRUE(c.transport->send(WireFrame{WireFrameType::kSubmit, 0, 4, 0, 0}));
  ASSERT_TRUE(c.transport->recv(reply, 2.0));
  EXPECT_EQ(reply.type, WireFrameType::kComplete);
  EXPECT_EQ(host.named_calls(), 3u);
  EXPECT_EQ(host.named_errors(), 2u);
}

TEST(TcpTransport, ConnectToNobodyFailsWithinTheDeadline) {
  // Bind-then-close: the port is (almost surely) unserved again; loopback
  // refuses immediately, and try_connect must report failure, not hang.
  TcpBackendConfig cfg;
  {
    TcpWorkerHost ephemeral;
    ASSERT_TRUE(ephemeral.listening());
    cfg.port = ephemeral.port();
  }  // host gone: the port is closed again
  cfg.connect_timeout = 1.0;
  TcpTransportFactory factory(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const TransportFactory::Connect c = factory.try_connect(0);
  EXPECT_TRUE(c.failed);
  EXPECT_EQ(c.transport, nullptr);
  EXPECT_LT(seconds_since(t0), 2.0);
}

TEST(TcpBackend, NamedCallEndToEndThroughTheSessionMachine) {
  MuscleTable table;
  table.register_muscle("sum-bytes", [](const PodValue& v) {
    std::int64_t sum = 0;
    for (const char c : v.as_bytes()) sum += static_cast<unsigned char>(c);
    return PodValue::of_i64(sum);
  });
  TcpWorkerHost host(table);
  ASSERT_TRUE(host.listening());
  TcpBackendConfig cfg;
  cfg.port = host.port();
  cfg.max_workers = 2;
  TcpBackend backend(cfg);
  backend.bind([](int, bool) {});
  ASSERT_NE(backend.provision(0, 1), WorkerBackend::Provision::kFailed);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (backend.live_sessions() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(backend.live_sessions(), 1);
  const NamedCallResult ok =
      backend.call_named(0, 1, PodValue::of_bytes("\x01\x02\x03"));
  ASSERT_TRUE(ok.transported);
  EXPECT_EQ(ok.status, NamedStatus::kOk);
  EXPECT_EQ(ok.value.as_i64(), 6);
  const NamedCallResult unknown =
      backend.call_named(0, 42, PodValue::of_void());
  ASSERT_TRUE(unknown.transported);
  EXPECT_EQ(unknown.status, NamedStatus::kUnknownMuscle);
  const RemoteBackendStats s = backend.stats();
  EXPECT_EQ(s.named_calls, 2u);
  EXPECT_EQ(s.named_errors, 1u);
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
  EXPECT_EQ(s.losses_recovered, 0u);
}

TEST(SubprocessNamed, ForkChildAnswersUnsupportedWithoutDesyncing) {
  // The fork child has no muscle table; it must consume the argument
  // payload (stream stays in sync) and answer kUnsupported — after which
  // the ordinary lease protocol still works on the same link.
  SubprocessBackendConfig cfg;
  cfg.max_workers = 1;
  SubprocessBackend backend(cfg);
  backend.bind([](int, bool) {});
  ASSERT_NE(backend.provision(0, 1), WorkerBackend::Provision::kFailed);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (backend.live_sessions() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(backend.live_sessions(), 1);
  const NamedCallResult res =
      backend.call_named(0, 1, PodValue::of_bytes("payload to consume"));
  ASSERT_TRUE(res.transported);
  EXPECT_EQ(res.status, NamedStatus::kUnsupported);
  // The link is intact: an ordinary lease still round-trips.
  const std::uint64_t lease = backend.task_begin(0, 0);
  ASSERT_NE(lease, 0u);
  backend.task_end(0, lease);
  const RemoteBackendStats s = backend.stats();
  EXPECT_EQ(s.leases, 2u);
  EXPECT_EQ(s.completes, 2u);
  EXPECT_EQ(s.losses_recovered, 0u);
}

}  // namespace
}  // namespace askel
