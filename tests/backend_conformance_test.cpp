// Transport conformance suite: one parameterized fixture, run against every
// WorkerBackend — ThreadBackend (in-process), SubprocessBackend (real
// fork()ed worker processes over socketpairs) and RemoteWorkerBackend over a
// benign real-time FakeTransport. Future backends join the suite by adding a
// value to the INSTANTIATE list and inherit the same contract:
//
//   * every submitted task completes (plain, nested, tenant-tagged);
//   * grow/shrink converges to the requested LP;
//   * tenant accounting stays exact and retire-able;
//   * remote backends account every lease exactly once (no lost tasks) and
//     answer liveness probes.
//
// Subprocess-specific behavior (real crashes, capacity refusal) is covered
// by the non-parameterized tests at the bottom.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "runtime/fake_transport.hpp"
#include "runtime/remote_backend.hpp"
#include "runtime/subprocess_backend.hpp"
#include "runtime/tcp_transport.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/worker_backend.hpp"

namespace askel {
namespace {

using namespace std::chrono_literals;

enum class BackendKind { kThread, kSubprocess, kFakeRemote, kTcp };

std::string kind_name(const ::testing::TestParamInfo<BackendKind>& info) {
  switch (info.param) {
    case BackendKind::kThread: return "Thread";
    case BackendKind::kSubprocess: return "Subprocess";
    case BackendKind::kFakeRemote: return "FakeRemote";
    case BackendKind::kTcp: return "Tcp";
  }
  return "Unknown";
}

/// Pool + backend rig. Declaration order matters: the pool is destroyed
/// first (it cancels pending provisions against the backend), then the
/// backend, then the transport factory / worker host.
struct Rig {
  std::unique_ptr<TcpWorkerHost> host;  // kTcp: outlives the backend
  std::unique_ptr<FakeTransportFactory> factory;
  std::unique_ptr<WorkerBackend> backend;
  std::unique_ptr<ResizableThreadPool> pool;
  RemoteWorkerBackend* remote = nullptr;  // non-null for remote kinds

  Rig(BackendKind kind, int initial_lp, int max_lp) {
    pool = std::make_unique<ResizableThreadPool>(initial_lp, max_lp);
    switch (kind) {
      case BackendKind::kThread:
        break;  // the built-in default
      case BackendKind::kSubprocess: {
        SubprocessBackendConfig cfg;
        cfg.max_workers = max_lp;
        auto sub = std::make_unique<SubprocessBackend>(cfg);
        remote = sub.get();
        backend = std::move(sub);
        break;
      }
      case BackendKind::kFakeRemote: {
        FakeFaultPlan plan;
        plan.virtual_time = false;  // poll the real clock: no pumping needed
        factory = std::make_unique<FakeTransportFactory>(plan);
        RemoteBackendConfig cfg;
        cfg.max_workers = max_lp;
        cfg.name = "fake";
        auto rem = std::make_unique<RemoteWorkerBackend>(*factory, cfg);
        remote = rem.get();
        backend = std::move(rem);
        break;
      }
      case BackendKind::kTcp: {
        host = std::make_unique<TcpWorkerHost>();
        EXPECT_TRUE(host->listening());
        TcpBackendConfig cfg;
        cfg.port = host->port();
        cfg.max_workers = max_lp;
        auto tcp = std::make_unique<TcpBackend>(cfg);
        remote = tcp.get();
        backend = std::move(tcp);
        break;
      }
    }
    if (backend != nullptr) pool->set_backend(backend.get());
  }

  ~Rig() {
    pool.reset();
    backend.reset();
    factory.reset();
    host.reset();
  }

  /// Remote joins are asynchronous: poll until the effective LP converges.
  bool wait_effective(int lp, Duration timeout = 10.0) const {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout);
    while (pool->effective_lp() != lp) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(1ms);
    }
    return true;
  }
};

class BackendConformance : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BackendConformance, ReportsAnIdentity) {
  Rig rig(GetParam(), 2, 4);
  ASSERT_NE(rig.pool->backend(), nullptr);
  EXPECT_STRNE(rig.pool->backend()->name(), "");
  EXPECT_EQ(rig.pool->backend()->remote(), rig.remote != nullptr);
}

TEST_P(BackendConformance, CompletesEverySubmittedTask) {
  Rig rig(GetParam(), 2, 4);
  std::atomic<int> done{0};
  for (int k = 0; k < 300; ++k) {
    rig.pool->submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  rig.pool->wait_idle();
  EXPECT_EQ(done.load(), 300);
  if (rig.remote != nullptr) {
    // Every lease accounted exactly once; a benign transport loses none.
    const RemoteBackendStats s = rig.remote->stats();
    EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
    EXPECT_EQ(s.losses_recovered, 0u);
  }
}

TEST_P(BackendConformance, CompletesNestedSubmits) {
  Rig rig(GetParam(), 2, 4);
  std::atomic<int> done{0};
  for (int k = 0; k < 20; ++k) {
    rig.pool->submit([&] {
      for (int j = 0; j < 10; ++j) {
        rig.pool->submit(
            [&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  rig.pool->wait_idle();
  EXPECT_EQ(done.load(), 200);
}

TEST_P(BackendConformance, GrowAndShrinkConverge) {
  Rig rig(GetParam(), 1, 6);
  EXPECT_EQ(rig.pool->set_target_lp(4), 4);
  EXPECT_TRUE(rig.wait_effective(4));
  EXPECT_EQ(rig.pool->set_target_lp(2), 2);  // shrink: local, immediate
  EXPECT_EQ(rig.pool->effective_lp(), 2);
  EXPECT_EQ(rig.pool->set_target_lp(5), 5);
  EXPECT_TRUE(rig.wait_effective(5));
  EXPECT_EQ(rig.pool->provision_failures(), 0u);
}

TEST_P(BackendConformance, TenantTaggedTasksCompleteAndRetire) {
  Rig rig(GetParam(), 2, 4);
  std::atomic<int> done{0};
  for (int k = 0; k < 60; ++k) {
    rig.pool->submit([&done] { done.fetch_add(1, std::memory_order_relaxed); },
                     /*tenant=*/1 + (k % 3));
  }
  rig.pool->wait_idle();
  EXPECT_EQ(done.load(), 60);
  for (int tenant = 1; tenant <= 3; ++tenant) {
    EXPECT_EQ(rig.pool->tenant_submitted(tenant), 20u);
    EXPECT_TRUE(rig.pool->retire_tenant(tenant));
  }
  EXPECT_EQ(rig.pool->tenant_overflow_size(), 0u);
}

TEST_P(BackendConformance, RemoteSessionsAnswerLivenessProbes) {
  Rig rig(GetParam(), 2, 4);
  if (rig.remote == nullptr) GTEST_SKIP() << "liveness probes are remote-only";
  // Session 0 comes up with the attach-time provision; wait for it.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (rig.remote->live_sessions() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GE(rig.remote->live_sessions(), 1);
  EXPECT_TRUE(rig.remote->probe(0));
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendConformance,
                         ::testing::Values(BackendKind::kThread,
                                           BackendKind::kSubprocess,
                                           BackendKind::kFakeRemote,
                                           BackendKind::kTcp),
                         kind_name);

// ------------------------------------------------------ tcp-specific -------

TEST(TcpBackendCrash, PeerDeathBetweenSubmitAndCompleteOfABatchedLease) {
  // The worker host's serve loop reads the Nth Submit and closes the
  // connection WITHOUT writing its Complete: the pool holds an open batched
  // lease (one lease, K brackets) against a peer that just died inside the
  // window. The lease — exactly one — must be recovered off the EOF, every
  // task still completes (closures run in-process), and the grant is not
  // stranded: the pool re-provisions the session and converges back.
  TcpWorkerHostConfig host_cfg;
  host_cfg.crash_after_tasks = 3;
  TcpWorkerHost host(default_muscle_table(), host_cfg);
  ASSERT_TRUE(host.listening());
  TcpBackendConfig cfg;
  cfg.port = host.port();
  cfg.max_workers = 4;
  cfg.lease_batch = 2;  // batched: the dying Submit covers a whole window
  cfg.complete_timeout = 1.0;
  TcpBackend backend(cfg);
  std::atomic<int> done{0};
  {
    ResizableThreadPool pool(2, 4);
    pool.set_backend(&backend);
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (backend.live_sessions() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_EQ(backend.live_sessions(), 2);
    for (int k = 0; k < 40; ++k) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    // No stranded grant: after the crashes, growing converges again on
    // freshly accepted host sessions (the coordinator's claw-back + re-grow
    // path, driven here directly through the pool).
    EXPECT_EQ(pool.set_target_lp(4), 4);
    const auto regrow = std::chrono::steady_clock::now() + 10s;
    while (pool.effective_lp() != 4 &&
           std::chrono::steady_clock::now() < regrow) {
      std::this_thread::sleep_for(1ms);
    }
    EXPECT_EQ(pool.effective_lp(), 4);
    pool.set_backend(nullptr);
  }
  EXPECT_EQ(done.load(), 40);  // the tasks never depended on the peer
  const RemoteBackendStats s = backend.stats();
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
  EXPECT_GE(s.losses_recovered, 1u);  // the EOF mid-window was detected
  EXPECT_GE(host.sessions_accepted(), 3u);  // crashed sessions re-joined
}

// ----------------------------------------------- subprocess-specific -------

TEST(SubprocessBackend, RealWorkerCrashIsDetectedAndNoTaskIsLost) {
  SubprocessBackendConfig cfg;
  cfg.max_workers = 4;
  cfg.crash_after_tasks = 5;  // every worker process dies after 5 leases
  SubprocessBackend backend(cfg);
  std::atomic<int> done{0};
  {
    ResizableThreadPool pool(2, 4);
    pool.set_backend(&backend);
    // Leases only open on live sessions: wait for the forks to land before
    // submitting, or the tasks drain locally before any child can crash.
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (backend.live_sessions() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_EQ(backend.live_sessions(), 2);
    for (int k = 0; k < 50; ++k) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
  }
  // Every task completed even though the remote workers kept dying: the
  // closures run in-process, crashes cost only the leases.
  EXPECT_EQ(done.load(), 50);
  const RemoteBackendStats s = backend.stats();
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
  EXPECT_GE(s.losses_recovered, 1u);  // the EOFs were really detected
}

TEST(SubprocessBackend, BatchedLeaseCrashBetweenSubmitAndCompleteRecovers) {
  // The child reads the Nth Submit and _exits BEFORE writing its Complete —
  // with lease batching the open lease covers a whole window of brackets.
  // Exactly the in-flight leases are recovered; every task completes.
  SubprocessBackendConfig cfg;
  cfg.max_workers = 4;
  cfg.crash_after_tasks = 3;
  cfg.lease_batch = 2;
  SubprocessBackend backend(cfg);
  std::atomic<int> done{0};
  {
    ResizableThreadPool pool(2, 4);
    pool.set_backend(&backend);
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (backend.live_sessions() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_EQ(backend.live_sessions(), 2);
    for (int k = 0; k < 40; ++k) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(done.load(), 40);
  const RemoteBackendStats s = backend.stats();
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
  EXPECT_GE(s.losses_recovered, 1u);   // the mid-window EOFs were detected
  EXPECT_GE(s.tasks_batched, 1u);      // the batched dialect was really used
}

TEST(SubprocessBackend, ProvisionBeyondCapacityFailsWithoutWedging) {
  SubprocessBackendConfig cfg;
  cfg.max_workers = 2;
  SubprocessBackend backend(cfg);
  ResizableThreadPool pool(1, 8);
  pool.set_backend(&backend);
  EXPECT_EQ(pool.set_target_lp(8), 8);  // clamp says 8, capacity says no
  EXPECT_EQ(pool.target_lp(), 1);       // request abandoned synchronously
  EXPECT_EQ(pool.provision_failures(), 1u);
  EXPECT_EQ(pool.set_target_lp(2), 2);  // within capacity: fine
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (pool.effective_lp() != 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(pool.effective_lp(), 2);
  pool.set_backend(nullptr);
}

TEST(SubprocessBackend, JoinLatencyIsMeasured) {
  SubprocessBackendConfig cfg;
  cfg.max_workers = 2;
  SubprocessBackend backend(cfg);
  {
    ResizableThreadPool pool(2, 2);
    pool.set_backend(&backend);
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (backend.live_sessions() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
    EXPECT_EQ(backend.live_sessions(), 2);
  }
  const auto joins = backend.transport_factory().join_latencies_us();
  ASSERT_GE(joins.size(), 2u);
  for (const double us : joins) EXPECT_GT(us, 0.0);
}

}  // namespace
}  // namespace askel
