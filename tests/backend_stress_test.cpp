// TSan-target stress test for the backend seam: churn tenant
// register/submit/retire (with colliding ids, so the exact overflow side map
// is exercised) against concurrent LP resizes, on the thread backend and on
// a remote backend — and assert the overflow map stays bounded by peak live
// tenants and drains to zero.
//
// Run under ThreadSanitizer in CI (like stress_test / multi_tenant_test);
// assertions are structural, not timing-based, so TSan's slowdown is
// harmless.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "autonomic/coordinator.hpp"
#include "runtime/fake_transport.hpp"
#include "runtime/remote_backend.hpp"
#include "runtime/thread_pool.hpp"

namespace askel {
namespace {

using namespace std::chrono_literals;

// Ids chosen to collide on the pool's direct accounting slots (64 of them):
// {1, 65, 129} share slot 0, {2, 66, 130} share slot 1, ... so a third of
// the live ids overflow into the exact side map at any time.
constexpr int kIdGroups = 8;
constexpr int kCollidersPerGroup = 3;

int churn_id(int group, int collider) { return 1 + group + 64 * collider; }

void churn_backend(ResizableThreadPool& pool) {
  std::atomic<bool> stop{false};
  std::atomic<long> done{0};
  std::atomic<std::size_t> max_overflow{0};

  std::thread submitter([&] {
    int k = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const int id = churn_id(k % kIdGroups, (k / kIdGroups) % kCollidersPerGroup);
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); }, id);
      if (++k % 64 == 0) std::this_thread::sleep_for(50us);
    }
  });
  std::thread retirer([&] {
    int k = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const int id = churn_id(k % kIdGroups, (k / kIdGroups) % kCollidersPerGroup);
      pool.retire_tenant(id);  // often refused (still queued/running): fine
      const std::size_t sz = pool.tenant_overflow_size();
      std::size_t cur = max_overflow.load(std::memory_order_relaxed);
      while (sz > cur &&
             !max_overflow.compare_exchange_weak(cur, sz,
                                                 std::memory_order_relaxed)) {
      }
      ++k;
      std::this_thread::sleep_for(20us);
    }
  });
  std::thread resizer([&] {
    int lp = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      pool.set_target_lp(1 + (lp++ % 4));
      std::this_thread::sleep_for(200us);
    }
  });

  std::this_thread::sleep_for(150ms);
  stop.store(true, std::memory_order_relaxed);
  submitter.join();
  retirer.join();
  resizer.join();
  pool.wait_idle();

  EXPECT_GT(done.load(), 0);
  // Bounded while churning: never more than the overflow-capable live ids.
  EXPECT_LE(max_overflow.load(),
            static_cast<std::size_t>(kIdGroups * (kCollidersPerGroup - 1)));
  // Drained and dead: every id retires, the side map empties completely.
  for (int group = 0; group < kIdGroups; ++group) {
    for (int collider = 0; collider < kCollidersPerGroup; ++collider) {
      const int id = churn_id(group, collider);
      const auto deadline = std::chrono::steady_clock::now() + 10s;
      while (!pool.retire_tenant(id) && pool.tenant_submitted(id) != 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "tenant " << id << " never drained";
        std::this_thread::sleep_for(1ms);
      }
    }
  }
  EXPECT_EQ(pool.tenant_overflow_size(), 0u);
}

TEST(BackendStress, ThreadBackendTenantChurnKeepsOverflowBounded) {
  ResizableThreadPool pool(2, 4);
  churn_backend(pool);
}

TEST(BackendStress, RemoteBackendTenantChurnKeepsOverflowBounded) {
  FakeFaultPlan plan;
  plan.virtual_time = false;  // real-time benign transport under the churn
  FakeTransportFactory factory(plan);
  RemoteBackendConfig cfg;
  cfg.max_workers = 4;
  cfg.name = "fake";
  RemoteWorkerBackend backend(factory, cfg);
  {
    ResizableThreadPool pool(2, 4);
    pool.set_backend(&backend);
    churn_backend(pool);
  }
  const RemoteBackendStats s = backend.stats();
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
}

TEST(BackendStress, CoordinatorChurnWithRegisterUnregisterAcrossBackends) {
  // register -> arm -> request -> release -> unregister cycles from two
  // threads against a shared budget, with tagged submits in flight: the
  // coordinator's id recycling and the pool's retire path must never leak
  // or corrupt accounting.
  ResizableThreadPool pool(2, 8);
  LpBudgetCoordinator coord(pool, 6);
  std::atomic<bool> stop{false};
  std::atomic<long> done{0};
  std::vector<std::thread> tenants;
  for (int t = 0; t < 2; ++t) {
    tenants.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const int id = coord.register_tenant("churn");
        coord.arm_tenant(id);
        coord.request(id, 3, 1.0);
        for (int k = 0; k < 16; ++k) {
          pool.submit(
              [&done] { done.fetch_add(1, std::memory_order_relaxed); }, id);
        }
        coord.release(id);
        coord.unregister_tenant(id);
      }
    });
  }
  std::this_thread::sleep_for(150ms);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : tenants) t.join();
  pool.wait_idle();
  EXPECT_GT(done.load(), 0);
  EXPECT_LE(coord.total_granted(), 6);
  // Ids recycle, so the pool's tenant state is bounded by live tenants (2
  // at a time here, all retired by now modulo the last in-flight retire).
  EXPECT_LE(pool.tenant_overflow_size(), 2u);
}

}  // namespace
}  // namespace askel
