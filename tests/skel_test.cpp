// Tests for the skeleton library: every pattern of the paper's grammar,
// nesting, the event protocol (paper §3), and failure propagation.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>
#include <thread>

#include "skel/detail/join.hpp"
#include "skel/trace.hpp"
#include "skel/typed.hpp"

namespace askel {
namespace {

class SkelTest : public ::testing::Test {
 protected:
  SkelTest() : pool_(2, 8), engine_(pool_, bus_) {}

  ResizableThreadPool pool_;
  EventBus bus_;
  Engine engine_;
};

TEST_F(SkelTest, SeqComputes) {
  auto fe = execute_muscle<int, int>("sq", [](int x) { return x * x; });
  auto skel = Seq(fe);
  EXPECT_EQ(skel.input(7, engine_).get(), 49);
}

TEST_F(SkelTest, SeqDifferentTypes) {
  auto fe = execute_muscle<std::string, std::size_t>(
      "len", [](std::string s) { return s.size(); });
  EXPECT_EQ(Seq(fe).input("hello", engine_).get(), 5u);
}

TEST_F(SkelTest, MapSplitsComputesMerges) {
  auto fs = split_muscle<std::vector<int>, int>(
      "fs", [](std::vector<int> v) { return v; });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x * x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int> v) {
    return std::accumulate(v.begin(), v.end(), 0);
  });
  auto skel = Map(fs, Seq(fe), fm);
  EXPECT_EQ(skel.input({1, 2, 3, 4}, engine_).get(), 30);
}

TEST_F(SkelTest, MapPreservesElementOrder) {
  auto fs = split_muscle<int, int>("fs", [](int n) {
    std::vector<int> v(n);
    std::iota(v.begin(), v.end(), 0);
    return v;
  });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, std::vector<int>>(
      "fm", [](std::vector<int> v) { return v; });
  const std::vector<int> out = Map(fs, Seq(fe), fm).input(16, engine_).get();
  for (int k = 0; k < 16; ++k) EXPECT_EQ(out[k], k);
}

TEST_F(SkelTest, MapWithEmptySplitRunsMergeOnEmptyList) {
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{}; });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm",
                                   [](std::vector<int> v) { return (int)v.size(); });
  EXPECT_EQ(Map(fs, Seq(fe), fm).input(0, engine_).get(), 0);
}

TEST_F(SkelTest, NestedMapsListing1Shape) {
  // map(fs, map(fs, seq(fe), fm), fm) with shared fs/fm (paper Listing 1).
  auto fs = split_muscle<std::vector<int>, std::vector<int>>(
      "fs", [](std::vector<int> v) {
        const std::size_t half = v.size() / 2;
        return std::vector<std::vector<int>>{
            std::vector<int>(v.begin(), v.begin() + half),
            std::vector<int>(v.begin() + half, v.end())};
      });
  auto fe = execute_muscle<std::vector<int>, std::vector<int>>(
      "fe", [](std::vector<int> v) {
        for (int& x : v) x += 1;
        return v;
      });
  auto fm = merge_muscle<std::vector<int>, std::vector<int>>(
      "fm", [](std::vector<std::vector<int>> parts) {
        std::vector<int> out;
        for (auto& p : parts) out.insert(out.end(), p.begin(), p.end());
        return out;
      });
  auto nested = Map(fs, Seq(fe), fm);
  auto main_skel = Map(fs, nested, fm);
  const std::vector<int> out = main_skel.input({0, 1, 2, 3, 4, 5, 6, 7}, engine_).get();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST_F(SkelTest, PipeAppliesStagesInOrder) {
  auto f1 = execute_muscle<int, int>("x2", [](int x) { return x * 2; });
  auto f2 = execute_muscle<int, int>("p3", [](int x) { return x + 3; });
  EXPECT_EQ(Pipe(Seq(f1), Seq(f2)).input(10, engine_).get(), 23);
  EXPECT_EQ(Pipe(Seq(f2), Seq(f1)).input(10, engine_).get(), 26);
}

TEST_F(SkelTest, PipeOfPipes) {
  auto inc = execute_muscle<int, int>("inc", [](int x) { return x + 1; });
  auto p = Pipe(Pipe(Seq(inc), Seq(inc)), Pipe(Seq(inc), Seq(inc)));
  EXPECT_EQ(p.input(0, engine_).get(), 4);
}

TEST_F(SkelTest, FarmPassesThrough) {
  auto fe = execute_muscle<int, int>("fe", [](int x) { return -x; });
  EXPECT_EQ(Farm(Seq(fe)).input(5, engine_).get(), -5);
}

TEST_F(SkelTest, FarmHandlesManyConcurrentInputs) {
  auto fe = execute_muscle<int, int>("fe", [](int x) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return x + 100;
  });
  auto farm = Farm(Seq(fe));
  std::vector<Future<int>> futures;
  for (int k = 0; k < 32; ++k) futures.push_back(farm.input(k, engine_));
  for (int k = 0; k < 32; ++k) EXPECT_EQ(futures[k].get(), k + 100);
}

TEST_F(SkelTest, WhileIteratesUntilConditionFalse) {
  auto fc = condition_muscle<int>("lt100", [](const int& x) { return x < 100; });
  auto body = execute_muscle<int, int>("x2", [](int x) { return x * 2; });
  EXPECT_EQ(While(fc, Seq(body)).input(3, engine_).get(), 192);
}

TEST_F(SkelTest, WhileWithImmediatelyFalseConditionIsIdentity) {
  auto fc = condition_muscle<int>("never", [](const int&) { return false; });
  auto body = execute_muscle<int, int>("boom", [](int) -> int {
    throw std::runtime_error("body must not run");
  });
  EXPECT_EQ(While(fc, Seq(body)).input(42, engine_).get(), 42);
}

TEST_F(SkelTest, ForRunsExactlyNTimes) {
  auto inc = execute_muscle<int, int>("inc", [](int x) { return x + 1; });
  EXPECT_EQ(For(5, Seq(inc)).input(0, engine_).get(), 5);
}

TEST_F(SkelTest, ForZeroIterationsIsIdentity) {
  auto inc = execute_muscle<int, int>("inc", [](int x) { return x + 1; });
  EXPECT_EQ(For(0, Seq(inc)).input(9, engine_).get(), 9);
}

TEST_F(SkelTest, ForRejectsNegativeCount) {
  auto inc = execute_muscle<int, int>("inc", [](int x) { return x + 1; });
  EXPECT_THROW(For(-1, Seq(inc)), std::invalid_argument);
}

TEST_F(SkelTest, IfSelectsBranchByCondition) {
  auto fc = condition_muscle<int>("pos", [](const int& x) { return x > 0; });
  auto yes = execute_muscle<int, std::string>("yes", [](int) { return std::string("pos"); });
  auto no = execute_muscle<int, std::string>("no", [](int) { return std::string("neg"); });
  auto skel = If(fc, Seq(yes), Seq(no));
  EXPECT_EQ(skel.input(4, engine_).get(), "pos");
  EXPECT_EQ(skel.input(-4, engine_).get(), "neg");
}

TEST_F(SkelTest, ForkCyclesBranchesOverElements) {
  auto fs = split_muscle<int, int>("fs", [](int n) {
    std::vector<int> v(n, 1);
    return v;
  });
  auto dbl = execute_muscle<int, int>("dbl", [](int x) { return x * 2; });
  auto neg = execute_muscle<int, int>("neg", [](int x) { return -x; });
  auto fm = merge_muscle<int, std::vector<int>>("fm",
                                                [](std::vector<int> v) { return v; });
  auto skel = Fork(fs, {Seq(dbl), Seq(neg)}, fm);
  // 4 elements over 2 branches: dbl, neg, dbl, neg.
  EXPECT_EQ(skel.input(4, engine_).get(), (std::vector<int>{2, -1, 2, -1}));
}

TEST_F(SkelTest, ForkRejectsEmptyBranchList) {
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{1}; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int>) { return 0; });
  EXPECT_THROW(Fork(fs, std::vector<Skel<int, int>>{}, fm), std::invalid_argument);
}

TEST_F(SkelTest, DacMergesortSortsCorrectly) {
  using Vec = std::vector<int>;
  auto fc = condition_muscle<Vec>("big", [](const Vec& v) { return v.size() > 2; });
  auto fs = split_muscle<Vec, Vec>("half", [](Vec v) {
    const std::size_t half = v.size() / 2;
    return std::vector<Vec>{Vec(v.begin(), v.begin() + half),
                            Vec(v.begin() + half, v.end())};
  });
  auto leaf = execute_muscle<Vec, Vec>("sort", [](Vec v) {
    std::sort(v.begin(), v.end());
    return v;
  });
  auto fm = merge_muscle<Vec, Vec>("merge", [](std::vector<Vec> parts) {
    Vec out;
    for (Vec& p : parts) {
      Vec next(out.size() + p.size());
      std::merge(out.begin(), out.end(), p.begin(), p.end(), next.begin());
      out = std::move(next);
    }
    return out;
  });
  auto skel = DaC(fc, fs, Seq(leaf), fm);
  Vec input = {9, 3, 7, 1, 8, 2, 6, 5, 4, 0, 11, 10};
  Vec expected = input;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(skel.input(input, engine_).get(), expected);
}

TEST_F(SkelTest, DacWithEmptySplitRunsMergeOnEmptyList) {
  // Condition says divide, but the split produces zero children: the merge
  // must run inline on the empty list (no join to wait on) and the future
  // still resolves.
  auto fc = condition_muscle<int>("once", [](const int& x) { return x > 0; });
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{}; });
  auto leaf = execute_muscle<int, int>("leaf", [](int x) { return x; });
  auto fm = merge_muscle<int, int>(
      "fm", [](std::vector<int> v) { return static_cast<int>(v.size()) - 7; });
  EXPECT_EQ(DaC(fc, fs, Seq(leaf), fm).input(1, engine_).get(), -7);
}

TEST_F(SkelTest, ForkWithEmptySplitRunsMergeOnEmptyList) {
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{}; });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>(
      "fm", [](std::vector<int> v) { return static_cast<int>(v.size()) + 40; });
  EXPECT_EQ(Fork(fs, std::vector{Seq(fe)}, fm).input(5, engine_).get(), 40);
}

TEST(JoinState, RejectsEmptyFanOut) {
  // The fan-in counter narrows size_t to int and decrements to zero; n == 0
  // would start AT zero (merge never fires — or double-fires, depending on
  // the arrive order). Every caller handles the empty split inline before
  // constructing a join; the guard turns a silent hang into a loud bug.
  EXPECT_THROW(detail::JoinState(0), std::logic_error);
  const detail::JoinState ok(3);
  EXPECT_EQ(ok.remaining.load(), 3);
  EXPECT_EQ(ok.results.size(), 3u);
}

TEST_F(SkelTest, DacLeafOnlyWhenConditionImmediatelyFalse) {
  auto fc = condition_muscle<int>("never", [](const int&) { return false; });
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{0}; });
  auto leaf = execute_muscle<int, int>("leaf", [](int x) { return x + 1; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int>) { return -1; });
  EXPECT_EQ(DaC(fc, fs, Seq(leaf), fm).input(10, engine_).get(), 11);
}

// ----------------------------------------------------------- error paths --

TEST_F(SkelTest, ExecuteMuscleExceptionPropagatesToFuture) {
  auto fe = execute_muscle<int, int>("boom", [](int) -> int {
    throw std::runtime_error("kaboom");
  });
  EXPECT_THROW(Seq(fe).input(1, engine_).get(), std::runtime_error);
}

TEST_F(SkelTest, SplitMuscleExceptionPropagates) {
  auto fs = split_muscle<int, int>("boom", [](int) -> std::vector<int> {
    throw std::logic_error("split failed");
  });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int>) { return 0; });
  EXPECT_THROW(Map(fs, Seq(fe), fm).input(1, engine_).get(), std::logic_error);
}

TEST_F(SkelTest, MergeMuscleExceptionPropagates) {
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{1, 2}; });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("boom", [](std::vector<int>) -> int {
    throw std::domain_error("merge failed");
  });
  EXPECT_THROW(Map(fs, Seq(fe), fm).input(1, engine_).get(), std::domain_error);
}

TEST_F(SkelTest, ConditionMuscleExceptionPropagates) {
  auto fc = condition_muscle<int>("boom", [](const int&) -> bool {
    throw std::runtime_error("cond failed");
  });
  auto body = execute_muscle<int, int>("fe", [](int x) { return x; });
  EXPECT_THROW(While(fc, Seq(body)).input(1, engine_).get(), std::runtime_error);
}

TEST_F(SkelTest, OneFailingElementFailsTheMap) {
  auto fs = split_muscle<int, int>("fs", [](int n) {
    std::vector<int> v(n);
    std::iota(v.begin(), v.end(), 0);
    return v;
  });
  auto fe = execute_muscle<int, int>("fe", [](int x) -> int {
    if (x == 3) throw std::runtime_error("element 3");
    return x;
  });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int>) { return 0; });
  EXPECT_THROW(Map(fs, Seq(fe), fm).input(8, engine_).get(), std::runtime_error);
}

TEST_F(SkelTest, TypeMismatchSurfacesAsBadAnyCast) {
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto skel = Seq(fe);
  // Wrong input type for the muscle: the any_cast inside the wrapper throws.
  EXPECT_THROW(engine_.run(skel.node(), Any(std::string("oops")))->get(),
               std::bad_any_cast);
}

// ---------------------------------------------------------------- future --

TEST_F(SkelTest, FutureWaitForAndReady) {
  auto fe = execute_muscle<int, int>("slow", [](int x) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return x;
  });
  Future<int> fut = Seq(fe).input(1, engine_);
  EXPECT_FALSE(fut.ready());
  EXPECT_TRUE(fut.wait_for(5.0));
  EXPECT_TRUE(fut.ready());
  EXPECT_EQ(fut.get(), 1);
}

TEST_F(SkelTest, FutureWaitForTimesOut) {
  auto fe = execute_muscle<int, int>("slow", [](int x) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return x;
  });
  Future<int> fut = Seq(fe).input(1, engine_);
  EXPECT_FALSE(fut.wait_for(0.005));
  EXPECT_EQ(fut.get(), 1);
}

// ---------------------------------------------------------------- events --

struct Recorded {
  When when;
  Where where;
  std::int64_t exec_id;
  int cardinality;
  std::string trace;
  std::thread::id thread;
};

class Recorder {
 public:
  explicit Recorder(EventBus& bus) {
    bus.add_listener(std::make_shared<GenericListener>(
        [this](std::any p, const Event& ev) {
          std::lock_guard lock(mu_);
          events_.push_back(Recorded{ev.when, ev.where, ev.exec_id, ev.cardinality,
                                     to_string(ev.trace),
                                     std::this_thread::get_id()});
          return p;
        }));
  }
  std::vector<Recorded> events() const {
    std::lock_guard lock(mu_);
    return events_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Recorded> events_;
};

TEST_F(SkelTest, SeqEmitsBeforeAndAfterWithSameIndex) {
  Recorder rec(bus_);
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  Seq(fe).input(1, engine_).get();
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].when, When::kBefore);
  EXPECT_EQ(evs[0].where, Where::kExecute);
  EXPECT_EQ(evs[1].when, When::kAfter);
  EXPECT_EQ(evs[1].where, Where::kExecute);
  EXPECT_EQ(evs[0].exec_id, evs[1].exec_id);  // the paper's i correlation
  EXPECT_EQ(evs[0].trace, "seq");
}

TEST_F(SkelTest, MapEmitsTheEightPaperEvents) {
  Recorder rec(bus_);
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{1, 2}; });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int>) { return 0; });
  Map(fs, Seq(fe), fm).input(7, engine_).get();

  // Events of the *map* instance only (the nested seqs have their own ids).
  std::vector<Recorded> evs;
  for (const Recorded& e : rec.events())
    if (e.trace == "map") evs.push_back(e);
  // The paper's "Map skeleton has eight events defined" counts event KINDS;
  // the nested before/after pair fires once per element (2 here), so this
  // run emits 10 occurrences of exactly 8 kinds.
  ASSERT_EQ(evs.size(), 10u);
  std::set<std::pair<When, Where>> kinds;
  for (const Recorded& e : evs) kinds.emplace(e.when, e.where);
  EXPECT_EQ(kinds.size(), 8u);
  EXPECT_EQ(evs.front().where, Where::kSkeleton);
  EXPECT_EQ(evs.front().when, When::kBefore);
  EXPECT_EQ(evs[1].where, Where::kSplit);
  EXPECT_EQ(evs[1].when, When::kBefore);
  EXPECT_EQ(evs[2].where, Where::kSplit);
  EXPECT_EQ(evs[2].when, When::kAfter);
  EXPECT_EQ(evs[2].cardinality, 2);  // fsCard of map@as(i, fsCard)
  EXPECT_EQ(evs.back().where, Where::kSkeleton);
  EXPECT_EQ(evs.back().when, When::kAfter);
  // All events of the instance share the index i.
  for (const Recorded& e : evs) EXPECT_EQ(e.exec_id, evs[0].exec_id);
}

TEST_F(SkelTest, HandlerRunsOnSameThreadAsMuscle) {
  std::thread::id muscle_thread;
  auto fe = execute_muscle<int, int>("fe", [&muscle_thread](int x) {
    muscle_thread = std::this_thread::get_id();
    return x;
  });
  Recorder rec(bus_);
  Seq(fe).input(1, engine_).get();
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].thread, muscle_thread);  // before: next muscle's thread
  EXPECT_EQ(evs[1].thread, muscle_thread);  // after: previous muscle's thread
}

TEST_F(SkelTest, TraceShowsNestingPath) {
  Recorder rec(bus_);
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{1}; });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int>) { return 0; });
  Map(fs, Map(fs, Seq(fe), fm), fm).input(1, engine_).get();
  std::set<std::string> traces;
  for (const Recorded& e : rec.events()) traces.insert(e.trace);
  EXPECT_TRUE(traces.count("map"));
  EXPECT_TRUE(traces.count("map/map"));
  EXPECT_TRUE(traces.count("map/map/seq"));
}

TEST_F(SkelTest, ListenerCanRewriteThePartialSolution) {
  // A before-execute listener that doubles the value entering the muscle.
  bus_.add_listener(std::make_shared<FilteredListener>(
      When::kBefore, Where::kExecute,
      [](std::any p, const Event&) { return std::any(std::any_cast<int>(p) * 2); }));
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x + 1; });
  EXPECT_EQ(Seq(fe).input(10, engine_).get(), 21);  // (10*2)+1
}

TEST_F(SkelTest, WhileEmitsConditionEventsWithResults) {
  Recorder rec(bus_);
  auto fc = condition_muscle<int>("lt2", [](const int& x) { return x < 2; });
  auto inc = execute_muscle<int, int>("inc", [](int x) { return x + 1; });
  While(fc, Seq(inc)).input(0, engine_).get();
  int cond_events = 0;
  for (const Recorded& e : rec.events())
    if (e.where == Where::kCondition && e.when == When::kAfter) ++cond_events;
  EXPECT_EQ(cond_events, 3);  // true, true, false
}

TEST_F(SkelTest, TreeIntrospection) {
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{1}; });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int>) { return 0; });
  auto skel = Map(fs, Map(fs, Seq(fe), fm), fm);
  EXPECT_EQ(tree_size(*skel.node()), 3u);  // map, map, seq
  const auto muscles = tree_muscles(*skel.node());
  EXPECT_EQ(muscles.size(), 3u);  // fs, fm shared; fe
}

// Well-formedness of event streams, checked across every skeleton pattern:
// per dynamic instance, Before/After events of each Where are balanced, and
// the instance's first event is a Before.
void expect_well_formed(const std::vector<Recorded>& events) {
  std::map<std::int64_t, std::map<Where, int>> open;
  std::map<std::int64_t, bool> seen;
  for (const Recorded& e : events) {
    if (!seen[e.exec_id]) {
      EXPECT_EQ(e.when, When::kBefore) << "instance " << e.exec_id;
      seen[e.exec_id] = true;
    }
    int& depth = open[e.exec_id][e.where];
    if (e.when == When::kBefore) {
      ++depth;
    } else {
      --depth;
      EXPECT_GE(depth, 0) << "unbalanced " << to_string(e.where) << " in instance "
                          << e.exec_id;
    }
  }
  for (const auto& [exec, wheres] : open) {
    for (const auto& [where, depth] : wheres) {
      EXPECT_EQ(depth, 0) << "instance " << exec << " leaves " << to_string(where)
                          << " open";
    }
  }
}

TEST_F(SkelTest, EventStreamsAreWellFormedForEveryPattern) {
  auto fs = split_muscle<int, int>("fs", [](int) { return std::vector<int>{1, 2}; });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int>) { return 1; });
  auto lt = condition_muscle<int>("lt", [](const int& x) { return x < 2; });
  auto big = condition_muscle<int>("big", [](const int& x) { return x > 4; });
  auto inc = execute_muscle<int, int>("inc", [](int x) { return x + 1; });
  auto halve = split_muscle<int, int>("halve", [](int n) {
    return std::vector<int>{n / 2, n - n / 2};
  });

  const std::vector<std::pair<const char*, Skel<int, int>>> patterns = {
      {"seq", Seq(fe)},
      {"farm", Farm(Seq(fe))},
      {"pipe", Pipe(Seq(fe), Seq(inc))},
      {"while", While(lt, Seq(inc))},
      {"for", For(3, Seq(inc))},
      {"if", If(lt, Seq(fe), Seq(inc))},
      {"map", Map(fs, Seq(fe), fm)},
      {"fork", Fork(fs, {Seq(fe), Seq(inc)}, fm)},
      {"dac", DaC(big, halve, Seq(fe), fm)},
  };
  for (const auto& [name, skel] : patterns) {
    EventBus bus;
    Engine engine(pool_, bus);
    Recorder rec(bus);
    skel.input(7, engine).get();
    SCOPED_TRACE(name);
    const auto events = rec.events();
    EXPECT_FALSE(events.empty());
    expect_well_formed(events);
  }
}

TEST_F(SkelTest, LowLpStillCompletesDeepNesting) {
  // LP=1 must not deadlock: the engine never blocks a worker on a future.
  ResizableThreadPool pool(1, 1);
  Engine engine(pool, bus_);
  auto fs = split_muscle<int, int>("fs", [](int n) {
    return std::vector<int>(static_cast<std::size_t>(n), 1);
  });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int> v) {
    return std::accumulate(v.begin(), v.end(), 0);
  });
  auto inner = Map(fs, Seq(fe), fm);
  auto outer = Map(fs, inner, fm);
  // fs(4) → four 1s; each inner map reduces its single element to 1; the
  // outer merge sums the four partial results.
  EXPECT_EQ(outer.input(4, engine).get(), 4);
}

}  // namespace
}  // namespace askel
