// Property-based tests: invariants of the schedulers over randomized DAGs
// (seeded, deterministic) and parameterized sweeps of the estimator family.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "adg/best_effort.hpp"
#include "adg/limited_lp.hpp"
#include "adg/timeline.hpp"
#include "est/estimator.hpp"
#include "est/ewma.hpp"

namespace askel {
namespace {

/// Random pending-only DAG: each activity may depend on a few earlier ones.
AdgSnapshot random_dag(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dur(0.1, 5.0);
  std::uniform_int_distribution<int> npreds(0, 3);
  AdgSnapshot g;
  g.now = 0.0;
  for (int k = 0; k < n; ++k) {
    std::vector<int> preds;
    if (k > 0) {
      const int want = npreds(rng);
      std::uniform_int_distribution<int> pick(0, k - 1);
      for (int j = 0; j < want; ++j) preds.push_back(pick(rng));
      std::sort(preds.begin(), preds.end());
      preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    }
    g.add(make_pending(0, "x", dur(rng), std::move(preds)));
  }
  return g;
}

/// Random DAG with a mix of done / running / pending states at now=10.
AdgSnapshot random_mixed_dag(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dur(0.1, 4.0);
  AdgSnapshot g;
  g.now = 10.0;
  // A prefix of done activities (finished before now), then running, then
  // pending — which automatically keeps preds consistent with states.
  const int done = n / 3, running = n / 3;
  for (int k = 0; k < n; ++k) {
    std::vector<int> preds;
    if (k > 0) {
      std::uniform_int_distribution<int> pick(0, k - 1);
      // Done/running activities may only depend on done ones.
      const int limit = k < done + running ? std::min(k, done) : k;
      if (limit > 0) {
        std::uniform_int_distribution<int> p2(0, limit - 1);
        preds.push_back(p2(rng));
      }
    }
    if (k < done) {
      const double s = std::uniform_real_distribution<double>(0.0, 4.0)(rng);
      g.add(make_done(0, "d", s, s + dur(rng), std::move(preds)));
    } else if (k < done + running) {
      const double s = std::uniform_real_distribution<double>(6.0, 10.0)(rng);
      g.add(make_running(0, "r", s, dur(rng), std::move(preds)));
    } else {
      g.add(make_pending(0, "p", dur(rng), std::move(preds)));
    }
  }
  return g;
}

class SchedulerProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperties, LimitedLpNeverBeatsBestEffort) {
  const AdgSnapshot g = random_dag(GetParam(), 24);
  const double be = best_effort(g).wct;
  for (int k = 1; k <= 8; ++k) EXPECT_GE(limited_lp(g, k).wct + 1e-9, be);
}

TEST_P(SchedulerProperties, LimitedLpWctIsNonIncreasingInLp) {
  const AdgSnapshot g = random_dag(GetParam(), 24);
  double prev = limited_lp(g, 1).wct;
  for (int k = 2; k <= 10; ++k) {
    const double cur = limited_lp(g, k).wct;
    EXPECT_LE(cur, prev + 1e-9) << "lp=" << k;
    prev = cur;
  }
}

TEST_P(SchedulerProperties, SingleWorkerEqualsTotalWork) {
  const AdgSnapshot g = random_dag(GetParam(), 16);
  double total = 0.0;
  for (const Activity& a : g.activities) total += a.est_duration;
  EXPECT_NEAR(limited_lp(g, 1).wct, total, 1e-9);
}

TEST_P(SchedulerProperties, AbundantWorkersMatchBestEffort) {
  const AdgSnapshot g = random_dag(GetParam(), 20);
  EXPECT_NEAR(limited_lp(g, 20).wct, best_effort(g).wct, 1e-9);
}

TEST_P(SchedulerProperties, LimitedScheduleRespectsDependencies) {
  const AdgSnapshot g = random_dag(GetParam(), 24);
  const Schedule s = limited_lp(g, 3);
  for (const Activity& a : g.activities) {
    for (const int p : a.preds) {
      EXPECT_GE(s.entries[a.id].start + 1e-9, s.entries[p].end);
    }
  }
}

TEST_P(SchedulerProperties, LimitedScheduleRespectsCapacity) {
  const AdgSnapshot g = random_dag(GetParam(), 24);
  for (const int lp : {1, 2, 3, 5}) {
    const Schedule s = limited_lp(g, lp);
    EXPECT_LE(peak_concurrency(concurrency_profile(s)), lp);
  }
}

TEST_P(SchedulerProperties, BestEffortRespectsDependencies) {
  const AdgSnapshot g = random_dag(GetParam(), 24);
  const Schedule s = best_effort(g);
  for (const Activity& a : g.activities) {
    for (const int p : a.preds) {
      EXPECT_GE(s.entries[a.id].start + 1e-9, s.entries[p].end);
    }
  }
}

TEST_P(SchedulerProperties, NothingScheduledBeforeNow) {
  const AdgSnapshot g = random_mixed_dag(GetParam(), 24);
  ASSERT_TRUE(g.validate().empty()) << g.validate();
  for (const Schedule& s : {best_effort(g), limited_lp(g, 2)}) {
    for (const Activity& a : g.activities) {
      if (a.state == ActivityState::kPending) {
        EXPECT_GE(s.entries[a.id].start + 1e-9, g.now);
      }
    }
  }
}

TEST_P(SchedulerProperties, MixedStateSchedulesAreConsistent) {
  const AdgSnapshot g = random_mixed_dag(GetParam(), 24);
  const double be = best_effort(g).wct;
  double prev = limited_lp(g, 1).wct;
  EXPECT_GE(prev + 1e-9, be);
  for (int k = 2; k <= 6; ++k) {
    const double cur = limited_lp(g, k).wct;
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

TEST_P(SchedulerProperties, DoneAndRunningTimesAreFixedFacts) {
  const AdgSnapshot g = random_mixed_dag(GetParam(), 18);
  for (const Schedule& s : {best_effort(g), limited_lp(g, 4)}) {
    for (const Activity& a : g.activities) {
      if (a.state == ActivityState::kDone) {
        EXPECT_DOUBLE_EQ(s.entries[a.id].start, a.start);
        EXPECT_DOUBLE_EQ(s.entries[a.id].end, a.end);
      } else if (a.state == ActivityState::kRunning) {
        EXPECT_DOUBLE_EQ(s.entries[a.id].start, a.start);
        EXPECT_GE(s.entries[a.id].end, g.now);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperties,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// -------------------------------------------------------- Ewma properties --

class EwmaSweep : public ::testing::TestWithParam<double> {};

TEST_P(EwmaSweep, ConvergesToConstantInput) {
  const double rho = GetParam();
  Ewma e(rho);
  for (int k = 0; k < 100; ++k) e.observe(7.5);
  EXPECT_NEAR(e.value(), 7.5, 1e-9);
}

TEST_P(EwmaSweep, StaysWithinObservedHull) {
  const double rho = GetParam();
  Ewma e(rho);
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(2.0, 9.0);
  for (int k = 0; k < 50; ++k) {
    e.observe(dist(rng));
    EXPECT_GE(e.value(), 2.0);
    EXPECT_LE(e.value(), 9.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Rhos, EwmaSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

// -------------------------------------------- estimator-family properties --

/// Seeded random positive stream shared by the family invariants below.
std::vector<double> random_stream(std::uint64_t seed, int n, double lo = 0.5,
                                  double hi = 12.0) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) out.push_back(dist(rng));
  return out;
}

class EstimatorFamilySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EstimatorFamilySeeds, WindowEstimatorsDependOnlyOnTheLastWObservations) {
  // Two estimators fed DIFFERENT histories but the same last W observations
  // must agree exactly: nothing older than the window may leave a trace
  // (unlike the EWMA, whose every estimate carries the whole history).
  for (const EstimatorKind kind :
       {EstimatorKind::kWindowMean, EstimatorKind::kWindowMedian}) {
    for (const int w : {1, 4, 16}) {
      const EstimatorConfig cfg{.kind = kind, .window = w};
      const std::vector<double> history_a = random_stream(GetParam(), 60);
      const std::vector<double> history_b = random_stream(GetParam() + 1000, 7);
      const std::vector<double> suffix = random_stream(GetParam() + 2000, w);
      const auto a = make_estimator(cfg);
      const auto b = make_estimator(cfg);
      for (const double v : history_a) a->observe(v);
      for (const double v : history_b) b->observe(v);
      b->init(99.0);  // even a late seed must wash out of the window
      for (const double v : suffix) {
        a->observe(v);
        b->observe(v);
      }
      EXPECT_EQ(a->value(), b->value())
          << to_string(kind) << " W=" << w << " seed=" << GetParam();
    }
  }
}

TEST_P(EstimatorFamilySeeds, P2StaysWithinTheObservedHull) {
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const auto est =
        make_estimator(EstimatorConfig{.kind = EstimatorKind::kP2Quantile,
                                       .quantile = q});
    double lo = 1e300, hi = -1e300;
    for (const double v : random_stream(GetParam(), 300)) {
      est->observe(v);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      EXPECT_GE(est->value(), lo) << "q=" << q;
      EXPECT_LE(est->value(), hi) << "q=" << q;
    }
  }
}

TEST_P(EstimatorFamilySeeds, P2IsMonotoneInQ) {
  // Independent P² estimators over the same stream, increasing q: the
  // estimates must come out ordered (the streaming quantile keeps enough of
  // the distribution's shape that a higher quantile never reads lower).
  const std::vector<double> stream = random_stream(GetParam(), 500);
  double prev = -1e300;
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const auto est = make_estimator(
        EstimatorConfig{.kind = EstimatorKind::kP2Quantile, .quantile = q});
    for (const double v : stream) est->observe(v);
    EXPECT_GE(est->value() + 1e-9, prev) << "q=" << q << " seed=" << GetParam();
    prev = est->value();
  }
}

TEST_P(EstimatorFamilySeeds, EwmaViaInterfaceIsBitIdenticalToLegacy) {
  // The interface wrapper must not change a single bit of the paper's
  // estimator: same stream, same init, exact (==) equality at every step.
  for (const double rho : {0.0, 0.3, 0.5, 1.0}) {
    Ewma legacy(rho);
    const auto wrapped =
        make_estimator(EstimatorConfig{.kind = EstimatorKind::kEwma, .rho = rho});
    legacy.init(4.25);
    wrapped->init(4.25);
    for (const double v : random_stream(GetParam(), 200)) {
      legacy.observe(v);
      wrapped->observe(v);
      ASSERT_EQ(legacy.value(), wrapped->value()) << "rho=" << rho;
    }
    EXPECT_EQ(legacy.observations(), wrapped->observations());
  }
}

TEST_P(EstimatorFamilySeeds, WholeFamilySharesTheInterfaceContract) {
  // has_value flips on the first init/observe; a fresh clone starts empty;
  // observations() counts real observations only.
  for (const EstimatorKind kind :
       {EstimatorKind::kEwma, EstimatorKind::kWindowMean,
        EstimatorKind::kWindowMedian, EstimatorKind::kP2Quantile}) {
    const auto est = make_estimator(EstimatorConfig{.kind = kind});
    EXPECT_FALSE(est->has_value()) << to_string(kind);
    // Out-of-contract value() before any sample degrades to 0.0 (the legacy
    // Ewma's lenient behavior) on every member — no UB, no NaN.
    EXPECT_EQ(est->value(), 0.0) << to_string(kind);
    est->init(3.0);
    EXPECT_TRUE(est->has_value()) << to_string(kind);
    EXPECT_EQ(est->observations(), 0) << to_string(kind);
    EXPECT_EQ(est->value(), 3.0) << to_string(kind);
    for (const double v : random_stream(GetParam(), 50)) est->observe(v);
    EXPECT_EQ(est->observations(), 50) << to_string(kind);
    const auto fresh = est->clone_fresh();
    EXPECT_EQ(fresh->kind(), kind);
    EXPECT_FALSE(fresh->has_value()) << to_string(kind);
    EXPECT_EQ(fresh->observations(), 0) << to_string(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorFamilySeeds,
                         ::testing::Values(3, 7, 11, 19, 42));

TEST(EstimatorFamily, FactoryRejectsBadParameters) {
  EXPECT_THROW(make_estimator(EstimatorConfig{.kind = EstimatorKind::kEwma,
                                              .rho = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(make_estimator(EstimatorConfig{.kind = EstimatorKind::kWindowMean,
                                              .window = 0}),
               std::invalid_argument);
  EXPECT_THROW(make_estimator(EstimatorConfig{.kind = EstimatorKind::kP2Quantile,
                                              .quantile = 1.0}),
               std::invalid_argument);
  EXPECT_THROW(make_estimator(EstimatorConfig{.kind = EstimatorKind::kP2Quantile,
                                              .quantile = 0.0}),
               std::invalid_argument);
}

TEST(EstimatorFamily, KindNamesRoundTrip) {
  for (const EstimatorKind kind :
       {EstimatorKind::kEwma, EstimatorKind::kWindowMean,
        EstimatorKind::kWindowMedian, EstimatorKind::kP2Quantile}) {
    const auto parsed = estimator_kind_from_string(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(estimator_kind_from_string("kalman").has_value());
}

// A higher rho reacts faster to a regime change (the paper's discussion of
// choosing rho).
TEST(EwmaComparison, HigherRhoAdaptsFasterToShift) {
  Ewma slow(0.2), fast(0.8);
  for (int k = 0; k < 10; ++k) {
    slow.observe(1.0);
    fast.observe(1.0);
  }
  slow.observe(10.0);
  fast.observe(10.0);
  EXPECT_GT(fast.value(), slow.value());
}

}  // namespace
}  // namespace askel
