// Property-based tests: invariants of the schedulers over randomized DAGs
// (seeded, deterministic) and parameterized sweeps of the estimator.

#include <gtest/gtest.h>

#include <random>

#include "adg/best_effort.hpp"
#include "adg/limited_lp.hpp"
#include "adg/timeline.hpp"
#include "est/ewma.hpp"

namespace askel {
namespace {

/// Random pending-only DAG: each activity may depend on a few earlier ones.
AdgSnapshot random_dag(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dur(0.1, 5.0);
  std::uniform_int_distribution<int> npreds(0, 3);
  AdgSnapshot g;
  g.now = 0.0;
  for (int k = 0; k < n; ++k) {
    std::vector<int> preds;
    if (k > 0) {
      const int want = npreds(rng);
      std::uniform_int_distribution<int> pick(0, k - 1);
      for (int j = 0; j < want; ++j) preds.push_back(pick(rng));
      std::sort(preds.begin(), preds.end());
      preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    }
    g.add(make_pending(0, "x", dur(rng), std::move(preds)));
  }
  return g;
}

/// Random DAG with a mix of done / running / pending states at now=10.
AdgSnapshot random_mixed_dag(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dur(0.1, 4.0);
  AdgSnapshot g;
  g.now = 10.0;
  // A prefix of done activities (finished before now), then running, then
  // pending — which automatically keeps preds consistent with states.
  const int done = n / 3, running = n / 3;
  for (int k = 0; k < n; ++k) {
    std::vector<int> preds;
    if (k > 0) {
      std::uniform_int_distribution<int> pick(0, k - 1);
      // Done/running activities may only depend on done ones.
      const int limit = k < done + running ? std::min(k, done) : k;
      if (limit > 0) {
        std::uniform_int_distribution<int> p2(0, limit - 1);
        preds.push_back(p2(rng));
      }
    }
    if (k < done) {
      const double s = std::uniform_real_distribution<double>(0.0, 4.0)(rng);
      g.add(make_done(0, "d", s, s + dur(rng), std::move(preds)));
    } else if (k < done + running) {
      const double s = std::uniform_real_distribution<double>(6.0, 10.0)(rng);
      g.add(make_running(0, "r", s, dur(rng), std::move(preds)));
    } else {
      g.add(make_pending(0, "p", dur(rng), std::move(preds)));
    }
  }
  return g;
}

class SchedulerProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperties, LimitedLpNeverBeatsBestEffort) {
  const AdgSnapshot g = random_dag(GetParam(), 24);
  const double be = best_effort(g).wct;
  for (int k = 1; k <= 8; ++k) EXPECT_GE(limited_lp(g, k).wct + 1e-9, be);
}

TEST_P(SchedulerProperties, LimitedLpWctIsNonIncreasingInLp) {
  const AdgSnapshot g = random_dag(GetParam(), 24);
  double prev = limited_lp(g, 1).wct;
  for (int k = 2; k <= 10; ++k) {
    const double cur = limited_lp(g, k).wct;
    EXPECT_LE(cur, prev + 1e-9) << "lp=" << k;
    prev = cur;
  }
}

TEST_P(SchedulerProperties, SingleWorkerEqualsTotalWork) {
  const AdgSnapshot g = random_dag(GetParam(), 16);
  double total = 0.0;
  for (const Activity& a : g.activities) total += a.est_duration;
  EXPECT_NEAR(limited_lp(g, 1).wct, total, 1e-9);
}

TEST_P(SchedulerProperties, AbundantWorkersMatchBestEffort) {
  const AdgSnapshot g = random_dag(GetParam(), 20);
  EXPECT_NEAR(limited_lp(g, 20).wct, best_effort(g).wct, 1e-9);
}

TEST_P(SchedulerProperties, LimitedScheduleRespectsDependencies) {
  const AdgSnapshot g = random_dag(GetParam(), 24);
  const Schedule s = limited_lp(g, 3);
  for (const Activity& a : g.activities) {
    for (const int p : a.preds) {
      EXPECT_GE(s.entries[a.id].start + 1e-9, s.entries[p].end);
    }
  }
}

TEST_P(SchedulerProperties, LimitedScheduleRespectsCapacity) {
  const AdgSnapshot g = random_dag(GetParam(), 24);
  for (const int lp : {1, 2, 3, 5}) {
    const Schedule s = limited_lp(g, lp);
    EXPECT_LE(peak_concurrency(concurrency_profile(s)), lp);
  }
}

TEST_P(SchedulerProperties, BestEffortRespectsDependencies) {
  const AdgSnapshot g = random_dag(GetParam(), 24);
  const Schedule s = best_effort(g);
  for (const Activity& a : g.activities) {
    for (const int p : a.preds) {
      EXPECT_GE(s.entries[a.id].start + 1e-9, s.entries[p].end);
    }
  }
}

TEST_P(SchedulerProperties, NothingScheduledBeforeNow) {
  const AdgSnapshot g = random_mixed_dag(GetParam(), 24);
  ASSERT_TRUE(g.validate().empty()) << g.validate();
  for (const Schedule& s : {best_effort(g), limited_lp(g, 2)}) {
    for (const Activity& a : g.activities) {
      if (a.state == ActivityState::kPending) {
        EXPECT_GE(s.entries[a.id].start + 1e-9, g.now);
      }
    }
  }
}

TEST_P(SchedulerProperties, MixedStateSchedulesAreConsistent) {
  const AdgSnapshot g = random_mixed_dag(GetParam(), 24);
  const double be = best_effort(g).wct;
  double prev = limited_lp(g, 1).wct;
  EXPECT_GE(prev + 1e-9, be);
  for (int k = 2; k <= 6; ++k) {
    const double cur = limited_lp(g, k).wct;
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

TEST_P(SchedulerProperties, DoneAndRunningTimesAreFixedFacts) {
  const AdgSnapshot g = random_mixed_dag(GetParam(), 18);
  for (const Schedule& s : {best_effort(g), limited_lp(g, 4)}) {
    for (const Activity& a : g.activities) {
      if (a.state == ActivityState::kDone) {
        EXPECT_DOUBLE_EQ(s.entries[a.id].start, a.start);
        EXPECT_DOUBLE_EQ(s.entries[a.id].end, a.end);
      } else if (a.state == ActivityState::kRunning) {
        EXPECT_DOUBLE_EQ(s.entries[a.id].start, a.start);
        EXPECT_GE(s.entries[a.id].end, g.now);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperties,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// -------------------------------------------------------- Ewma properties --

class EwmaSweep : public ::testing::TestWithParam<double> {};

TEST_P(EwmaSweep, ConvergesToConstantInput) {
  const double rho = GetParam();
  Ewma e(rho);
  for (int k = 0; k < 100; ++k) e.observe(7.5);
  EXPECT_NEAR(e.value(), 7.5, 1e-9);
}

TEST_P(EwmaSweep, StaysWithinObservedHull) {
  const double rho = GetParam();
  Ewma e(rho);
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(2.0, 9.0);
  for (int k = 0; k < 50; ++k) {
    e.observe(dist(rng));
    EXPECT_GE(e.value(), 2.0);
    EXPECT_LE(e.value(), 9.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Rhos, EwmaSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

// A higher rho reacts faster to a regime change (the paper's discussion of
// choosing rho).
TEST(EwmaComparison, HigherRhoAdaptsFasterToShift) {
  Ewma slow(0.2), fast(0.8);
  for (int k = 0; k < 10; ++k) {
    slow.observe(1.0);
    fast.observe(1.0);
  }
  slow.observe(10.0);
  fast.observe(10.0);
  EXPECT_GT(fast.value(), slow.value());
}

}  // namespace
}  // namespace askel
