// The deterministic fault-injection suite for the remote-worker transport:
// wire framing, seeded FakeTransport replay (golden trace), and every
// injected failure mode — slow provision, failed provision, crash-on-Nth,
// dropped / duplicated / reordered completions, partitions — driven against
// the SAME RemoteWorkerBackend session machine the subprocess transport
// uses, under a ManualClock with manual pumping (no real threads, no sleeps:
// every run replays bit-identically).
//
// The invariants each fault must preserve:
//   * no lost task: leases == completes + losses_recovered, always;
//   * no double-close: duplicated/stale completions are counted + ignored;
//   * no wedged pool: a failed grow reverts target_lp to effective_lp;
//   * no stranded grant: the coordinator claws back LP that never joined.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "autonomic/controller.hpp"
#include "autonomic/coordinator.hpp"
#include "est/registry.hpp"
#include "runtime/fake_transport.hpp"
#include "runtime/remote_backend.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/transport.hpp"
#include "sm/tracker_set.hpp"
#include "util/clock.hpp"

namespace askel {
namespace {

// ---------------------------------------------------------------- framing --

TEST(WireFrame, RoundTripsEveryField) {
  const WireFrame f{WireFrameType::kSubmit, 7, 0x0123456789ABCDEFull,
                    42, 0xFFFFFFFFFFFFFFFFull};
  const WireFrameBytes bytes = encode_frame(f);
  WireFrame back;
  ASSERT_TRUE(decode_frame(bytes.data(), bytes.size(), back));
  EXPECT_EQ(back, f);
}

TEST(WireFrame, GoldenBytesAreLittleEndianAndStable) {
  // The wire format is a protocol: these bytes must never change.
  const WireFrame f{WireFrameType::kComplete, 0x01020304u, 0x1122334455667788ull,
                    1, 2};
  const WireFrameBytes b = encode_frame(f);
  const std::uint8_t expected[kWireFrameSize] = {
      29, 0, 0, 0,                               // payload length
      3,                                         // kComplete
      0x04, 0x03, 0x02, 0x01,                    // worker
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // seq
      1, 0, 0, 0, 0, 0, 0, 0,                    // a
      2, 0, 0, 0, 0, 0, 0, 0,                    // b
  };
  EXPECT_TRUE(std::equal(b.begin(), b.end(), expected));
}

TEST(WireFrame, DecodeRejectsGarbage) {
  WireFrame out;
  EXPECT_FALSE(decode_frame(nullptr, kWireFrameSize, out));
  WireFrameBytes b = encode_frame(WireFrame{});
  EXPECT_FALSE(decode_frame(b.data(), b.size() - 1, out));  // short
  b[4] = 0;                                                 // unknown type
  EXPECT_FALSE(decode_frame(b.data(), b.size(), out));
  b = encode_frame(WireFrame{});
  b[0] = 17;  // wrong length prefix
  EXPECT_FALSE(decode_frame(b.data(), b.size(), out));
}

// ----------------------------------------------------------- test harness --

struct Remote {
  ManualClock clock;
  FakeTransportFactory factory;
  RemoteWorkerBackend backend;

  explicit Remote(FakeFaultPlan plan, int max_workers = 8,
                  Duration connect_timeout = 100.0, int lease_batch = 1)
      : factory(std::move(plan), &clock),
        backend(factory,
                config(&clock, max_workers, connect_timeout, lease_batch)) {
    backend.bind([](int, bool) {});
  }

  static RemoteBackendConfig config(const Clock* clock, int max_workers,
                                    Duration connect_timeout, int lease_batch) {
    RemoteBackendConfig rc;
    rc.max_workers = max_workers;
    rc.connect_timeout = connect_timeout;
    rc.manual_pump = true;
    rc.lease_batch = lease_batch;
    rc.clock = clock;
    rc.name = "fake";
    return rc;
  }

  /// Provision workers [0, n) and pump the joins through.
  void join(int n) {
    ASSERT_NE(backend.provision(0, n), WorkerBackend::Provision::kFailed);
    backend.pump();
  }
};

// ------------------------------------------------------------ fault modes --

TEST(FakeTransport, SlowProvisionJoinsOnlyAfterLatency) {
  FakeFaultPlan plan;
  plan.provision_latency = 0.5;
  Remote r(plan);
  EXPECT_EQ(r.backend.provision(0, 2), WorkerBackend::Provision::kPending);
  r.backend.pump();
  EXPECT_EQ(r.backend.live_sessions(), 0);  // still joining
  r.clock.advance(0.4);
  r.backend.pump();
  EXPECT_EQ(r.backend.live_sessions(), 0);
  r.clock.advance(0.2);  // past the latency
  r.backend.pump();
  EXPECT_EQ(r.backend.live_sessions(), 2);
}

TEST(FakeTransport, ProvisionTimesOutWhenWorkersNeverJoin) {
  FakeFaultPlan plan;
  plan.provision_latency = 60.0;  // beyond the connect deadline
  Remote r(plan, /*max_workers=*/8, /*connect_timeout=*/1.0);
  bool ok = true;
  int target = 0;
  r.backend.bind([&](int t, bool o) {
    target = t;
    ok = o;
  });
  EXPECT_EQ(r.backend.provision(0, 2), WorkerBackend::Provision::kPending);
  r.clock.advance(2.0);  // connect_timeout passes, latency does not
  r.backend.pump();
  EXPECT_EQ(target, 2);
  EXPECT_FALSE(ok);
  EXPECT_EQ(r.backend.stats().provision_failures, 1u);
}

TEST(FakeTransport, RepeatedProvisionDoesNotSlideConnectDeadline) {
  // A coordinator re-arbitrates every few hundred ms, re-issuing the same
  // pool target. The connect deadline must anchor at the FIRST request, or
  // a stuck join never times out and the failure never surfaces.
  FakeFaultPlan plan;
  plan.provision_latency = 60.0;  // never joins within the deadline
  Remote r(plan, /*max_workers=*/8, /*connect_timeout=*/1.0);
  bool ok = true;
  r.backend.bind([&](int, bool o) { ok = o; });
  EXPECT_EQ(r.backend.provision(0, 2), WorkerBackend::Provision::kPending);
  r.backend.pump();  // join clock starts at t=0
  r.clock.advance(0.6);
  EXPECT_EQ(r.backend.provision(0, 2), WorkerBackend::Provision::kPending);
  r.clock.advance(0.6);  // t=1.2: past the ORIGINAL deadline
  r.backend.pump();
  EXPECT_FALSE(ok);  // the re-request did not buy the join more time
  EXPECT_EQ(r.backend.stats().provision_failures, 1u);
}

TEST(FakeTransport, CrashOnNthTaskRecoversLeaseAndSession) {
  FakeFaultPlan plan;
  plan.crash_worker = 0;
  plan.crash_on_nth_task = 3;
  Remote r(plan);
  r.join(1);
  for (int k = 1; k <= 2; ++k) {
    const std::uint64_t lease = r.backend.task_begin(0, 0);
    ASSERT_NE(lease, 0u);
    r.backend.task_end(0, lease);
  }
  // The third submit kills the link: its completion never comes back.
  const std::uint64_t doomed = r.backend.task_begin(0, 0);
  ASSERT_NE(doomed, 0u);
  r.backend.task_end(0, doomed);
  const RemoteBackendStats s = r.backend.stats();
  EXPECT_EQ(s.leases, 3u);
  EXPECT_EQ(s.completes, 2u);
  EXPECT_EQ(s.losses_recovered, 1u);  // the lease, never the task
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
  EXPECT_EQ(r.backend.live_sessions(), 0);       // torn down
  EXPECT_EQ(r.backend.task_begin(0, 0), 0u);     // degraded to local-only
  // Re-provisioning forks a fresh worker and the session works again.
  r.join(1);
  EXPECT_EQ(r.backend.live_sessions(), 1);
  const std::uint64_t lease = r.backend.task_begin(0, 0);
  ASSERT_NE(lease, 0u);
  r.backend.task_end(0, lease);
  EXPECT_EQ(r.backend.stats().completes, 3u);
}

TEST(FakeTransport, DroppedCompletionRecoversLeaseKeepsSession) {
  FakeFaultPlan plan;
  plan.drop_complete_every = 2;  // every 2nd completion vanishes
  Remote r(plan);
  r.join(1);
  for (int k = 0; k < 4; ++k) {
    const std::uint64_t lease = r.backend.task_begin(0, 0);
    ASSERT_NE(lease, 0u);
    r.backend.task_end(0, lease);
  }
  const RemoteBackendStats s = r.backend.stats();
  EXPECT_EQ(s.leases, 4u);
  EXPECT_EQ(s.completes, 2u);
  EXPECT_EQ(s.losses_recovered, 2u);
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
  EXPECT_EQ(r.backend.live_sessions(), 1);  // a drop is not a crash
}

TEST(FakeTransport, DuplicatedCompletionIsIgnoredNeverDoubleCloses) {
  FakeFaultPlan plan;
  plan.dup_complete_every = 1;  // every completion delivered twice
  Remote r(plan);
  r.join(1);
  for (int k = 0; k < 3; ++k) {
    const std::uint64_t lease = r.backend.task_begin(0, 0);
    ASSERT_NE(lease, 0u);
    r.backend.task_end(0, lease);
    r.clock.advance(0.001);  // the duplicate (due +1us) becomes deliverable
  }
  const RemoteBackendStats s = r.backend.stats();
  EXPECT_EQ(s.leases, 3u);
  EXPECT_EQ(s.completes, 3u);
  EXPECT_EQ(s.losses_recovered, 0u);
  EXPECT_GE(s.ignored_completes, 2u);  // the duplicates surfaced and died
}

TEST(FakeTransport, ReorderedCompletionArrivesStaleAndIsIgnored) {
  FakeFaultPlan plan;
  plan.reorder_complete_every = 2;  // every 2nd completion held back
  Remote r(plan);
  r.join(1);
  // Lease 1 completes normally.
  std::uint64_t lease = r.backend.task_begin(0, 0);
  r.backend.task_end(0, lease);
  // Lease 2's completion is held: recovered at the deadline, link intact.
  lease = r.backend.task_begin(0, 0);
  r.backend.task_end(0, lease);
  // Lease 3 releases the held frame AFTER its own: 3 completes; the stale 2
  // surfaces during lease 4 (itself held — every 2nd — and recovered).
  lease = r.backend.task_begin(0, 0);
  r.backend.task_end(0, lease);
  r.clock.advance(0.001);
  lease = r.backend.task_begin(0, 0);
  r.backend.task_end(0, lease);
  const RemoteBackendStats s = r.backend.stats();
  EXPECT_EQ(s.leases, 4u);
  EXPECT_EQ(s.completes, 2u);
  EXPECT_EQ(s.losses_recovered, 2u);
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
  EXPECT_GE(s.ignored_completes, 1u);  // the stale seq=2 delivery
}

TEST(FakeTransport, PartitionIsDetectedByProbeAndHealsOnReprovision) {
  FakeFaultPlan plan;
  plan.partitions = {{1.0, 2.0}};
  Remote r(plan);
  r.join(1);
  EXPECT_TRUE(r.backend.probe(0));  // t=0: healthy
  r.clock.set(1.5);                 // inside the blackout
  EXPECT_FALSE(r.backend.probe(0));
  EXPECT_EQ(r.backend.live_sessions(), 0);  // declared lost
  EXPECT_GE(r.backend.stats().sessions_lost, 1u);
  r.clock.set(2.5);  // partition over: the worker re-joins
  r.join(1);
  EXPECT_TRUE(r.backend.probe(0));
}

// ------------------------------------------------------- batched leases ----

TEST(FakeTransportBatch, CoalescesKBracketsIntoOneRoundTrip) {
  Remote r(FakeFaultPlan{}, /*max_workers=*/8, /*connect_timeout=*/100.0,
           /*lease_batch=*/4);
  r.join(1);
  for (int k = 0; k < 8; ++k) {
    const std::uint64_t lease = r.backend.task_begin(0, 7);
    ASSERT_NE(lease, 0u);
    r.backend.task_end(0, lease);  // 4th and 8th bracket flush
  }
  const RemoteBackendStats s = r.backend.stats();
  EXPECT_EQ(s.batch_flushes, 2u);
  EXPECT_EQ(s.tasks_batched, 8u);
  EXPECT_EQ(s.leases, 2u);  // one lease per window, not per task
  EXPECT_EQ(s.completes, 2u);
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
  // The wire saw exactly two Submits, each carrying its bracket count.
  int batched_submits = 0;
  for (const std::string& line : r.factory.trace()) {
    if (line.find("n=4") != std::string::npos) ++batched_submits;
  }
  EXPECT_EQ(batched_submits, 2);
}

TEST(FakeTransportBatch, FlushDeadlineShipsAPartialWindow) {
  Remote r(FakeFaultPlan{}, /*max_workers=*/8, /*connect_timeout=*/100.0,
           /*lease_batch=*/16);
  r.join(1);
  for (int k = 0; k < 3; ++k) {
    const std::uint64_t lease = r.backend.task_begin(0, 0);
    ASSERT_NE(lease, 0u);
    r.backend.task_end(0, lease);
  }
  EXPECT_EQ(r.backend.stats().batch_flushes, 0u);  // 3 < 16, window young
  r.clock.advance(0.05);  // past batch_flush with no further bracket
  r.backend.pump();       // manual mode: the pump flushes stale windows
  const RemoteBackendStats s = r.backend.stats();
  EXPECT_EQ(s.batch_flushes, 1u);
  EXPECT_EQ(s.tasks_batched, 3u);
  EXPECT_EQ(s.leases, 1u);
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
}

TEST(FakeTransportBatch, StaleWindowFlushesAtTheNextBracket) {
  Remote r(FakeFaultPlan{}, /*max_workers=*/8, /*connect_timeout=*/100.0,
           /*lease_batch=*/16);
  r.join(1);
  std::uint64_t lease = r.backend.task_begin(0, 0);
  r.backend.task_end(0, lease);
  r.clock.advance(0.05);  // window now older than batch_flush
  lease = r.backend.task_begin(0, 0);
  r.backend.task_end(0, lease);  // this bracket finds the window stale
  const RemoteBackendStats s = r.backend.stats();
  EXPECT_EQ(s.batch_flushes, 1u);
  EXPECT_EQ(s.tasks_batched, 2u);
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
}

TEST(FakeTransportBatch, CrashedFlushRecoversExactlyOneLease) {
  FakeFaultPlan plan;
  plan.crash_worker = 0;
  plan.crash_on_nth_task = 1;  // the first (batched) Submit kills the link
  Remote r(plan, /*max_workers=*/8, /*connect_timeout=*/100.0,
           /*lease_batch=*/2);
  r.join(1);
  std::uint64_t lease = r.backend.task_begin(0, 0);
  r.backend.task_end(0, lease);
  lease = r.backend.task_begin(0, 0);
  r.backend.task_end(0, lease);  // 2nd bracket flushes; the submit crashes
  const RemoteBackendStats s = r.backend.stats();
  EXPECT_EQ(s.leases, 1u);
  EXPECT_EQ(s.completes, 0u);
  EXPECT_EQ(s.losses_recovered, 1u);  // ONE lease covers the whole window
  EXPECT_EQ(s.tasks_batched, 2u);     // both brackets were shipped in it
  EXPECT_EQ(r.backend.live_sessions(), 0);  // torn down, reprovisionable
}

TEST(FakeTransportBatch, ReleaseWithPendingWindowDefersAndFlushesOnRetire) {
  Remote r(FakeFaultPlan{}, /*max_workers=*/8, /*connect_timeout=*/100.0,
           /*lease_batch=*/16);
  r.join(1);
  const std::uint64_t lease = r.backend.task_begin(0, 0);
  r.backend.task_end(0, lease);  // window open: 1 bracket pending
  r.backend.release(1, 0);       // must defer: a window is pending
  EXPECT_EQ(r.backend.live_sessions(), 1);
  // The next bracket honors the deferred retire; the pending window ships
  // (fire-and-forget) before the Retire frame, so the brackets are counted.
  EXPECT_EQ(r.backend.task_begin(0, 0), 0u);
  EXPECT_EQ(r.backend.live_sessions(), 0);
  const RemoteBackendStats s = r.backend.stats();
  EXPECT_GE(s.sessions_retired, 1u);
  EXPECT_EQ(s.tasks_batched, 1u);
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
}

// ------------------------------------------------------- named muscles ----

TEST(FakeTransportNamed, CallNamedRoundTripsTheCodec) {
  // The fake worker echoes the argument payload back as the result, so a
  // successful call proves the whole chain: encode -> kSubmitNamed frame ->
  // payload on the (fake) wire -> kResultNamed -> decode.
  Remote r(FakeFaultPlan{});
  r.join(1);
  const NamedCallResult res =
      r.backend.call_named(0, 7, PodValue::of_i64(-123456789));
  ASSERT_TRUE(res.transported);
  EXPECT_EQ(res.status, NamedStatus::kOk);
  EXPECT_EQ(res.value, PodValue::of_i64(-123456789));
  const RemoteBackendStats s = r.backend.stats();
  EXPECT_EQ(s.named_calls, 1u);
  EXPECT_EQ(s.named_errors, 0u);
  // A named call is a lease like any other: the invariant covers it.
  EXPECT_EQ(s.leases, 1u);
  EXPECT_EQ(s.completes, 1u);
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
}

TEST(FakeTransportNamed, CrashDuringNamedCallRecoversExactlyOneLease) {
  FakeFaultPlan plan;
  plan.crash_worker = 0;
  plan.crash_on_nth_task = 1;  // the named submit itself kills the link
  Remote r(plan);
  r.join(1);
  const NamedCallResult res =
      r.backend.call_named(0, 1, PodValue::of_u64(42));
  EXPECT_FALSE(res.transported);  // the call never resolved
  const RemoteBackendStats s = r.backend.stats();
  EXPECT_EQ(s.leases, 1u);
  EXPECT_EQ(s.completes, 0u);
  EXPECT_EQ(s.losses_recovered, 1u);
  EXPECT_EQ(r.backend.live_sessions(), 0);  // torn down, reprovisionable
}

TEST(FakeTransportNamed, PartitionedNamedCallTimesOutAndKeepsTheLink) {
  FakeFaultPlan plan;
  plan.partitions = {{1.0, 2.0}};
  Remote r(plan);
  r.join(1);
  r.clock.set(1.5);  // inside the blackout: the submit is swallowed
  const NamedCallResult res =
      r.backend.call_named(0, 1, PodValue::of_f64(3.5));
  EXPECT_FALSE(res.transported);
  const RemoteBackendStats s = r.backend.stats();
  EXPECT_EQ(s.leases, 1u);
  EXPECT_EQ(s.losses_recovered, 1u);
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
  // A swallowed frame is not a dead link: the session survives (the
  // partition is detected by the probe path, not here).
  EXPECT_EQ(r.backend.live_sessions(), 1);
}

TEST(FakeTransportNamed, CallNamedFlushesAnOpenBatchWindowFirst) {
  Remote r(FakeFaultPlan{}, /*max_workers=*/8, /*connect_timeout=*/100.0,
           /*lease_batch=*/16);
  r.join(1);
  const std::uint64_t lease = r.backend.task_begin(0, 0);
  r.backend.task_end(0, lease);  // 1 bracket pending in the window
  const NamedCallResult res =
      r.backend.call_named(0, 3, PodValue::of_bytes("abc"));
  ASSERT_TRUE(res.transported);
  EXPECT_EQ(res.status, NamedStatus::kOk);
  EXPECT_EQ(res.value.as_bytes(), "abc");
  const RemoteBackendStats s = r.backend.stats();
  // The window shipped as its own lease BEFORE the named call's: strict
  // per-session ordering, both accounted.
  EXPECT_EQ(s.batch_flushes, 1u);
  EXPECT_EQ(s.tasks_batched, 1u);
  EXPECT_EQ(s.leases, 2u);
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
}

// --------------------------------------- partition detection mid-batch ----

TEST(FakeTransportBatch, SweepDetectsPartitionWithoutBurningAFlushLease) {
  // Regression: heartbeat_sweep used to flush stale batch windows BEFORE
  // probing. On a partitioned worker the flush opened a lease into the
  // void and waited out a whole complete_timeout holding the session mutex
  // — detection was suppressed past the heartbeat cadence, and the doomed
  // window was misaccounted as a recovered loss. The sweep must probe
  // first: the partitioned session is torn down within heartbeat_timeout
  // and the stale window is dropped, never leased.
  FakeFaultPlan plan;
  plan.partitions = {{1.0, 2.0}};
  Remote r(plan, /*max_workers=*/8, /*connect_timeout=*/100.0,
           /*lease_batch=*/16);
  r.join(1);
  const std::uint64_t lease = r.backend.task_begin(0, 0);
  ASSERT_NE(lease, 0u);
  r.backend.task_end(0, lease);  // window open: 1 bracket, never flushed
  r.clock.set(1.5);  // inside the blackout; the window is long stale
  r.backend.heartbeat_sweep();
  EXPECT_EQ(r.backend.live_sessions(), 0);  // detected within one sweep
  const RemoteBackendStats s = r.backend.stats();
  EXPECT_GE(s.sessions_lost, 1u);
  // The load-bearing asserts: no lease was ever opened for the doomed
  // window (it was dropped, not flushed into the partition), so nothing
  // was recovered and the invariant holds at zero.
  EXPECT_EQ(s.leases, 0u);
  EXPECT_EQ(s.losses_recovered, 0u);
  EXPECT_EQ(s.batch_flushes, 0u);
  EXPECT_EQ(s.leases, s.completes + s.losses_recovered);
}

// ------------------------------------------- pool + coordinator integration --

TEST(FakeTransport, FailedGrowNeverWedgesThePool) {
  FakeFaultPlan plan;
  plan.fail_next_provisions = 1;
  Remote r(plan);
  ResizableThreadPool pool(1, 8);
  pool.set_backend(&r.backend);
  int handler_target = 0, handler_effective = -1;
  pool.set_provision_failure_handler([&](int target, int effective) {
    handler_target = target;
    handler_effective = effective;
  });
  EXPECT_EQ(pool.set_target_lp(4), 4);
  EXPECT_EQ(pool.effective_lp(), 1);  // join pending
  r.backend.pump();                   // the join fails
  EXPECT_EQ(pool.target_lp(), 1);     // request abandoned: no phantom pending
  EXPECT_EQ(pool.effective_lp(), 1);
  EXPECT_EQ(pool.provision_failures(), 1u);
  EXPECT_EQ(handler_target, 4);
  EXPECT_EQ(handler_effective, 1);
  // The failure is not sticky: the next grow provisions fine.
  EXPECT_EQ(pool.set_target_lp(4), 4);
  r.backend.pump();
  EXPECT_EQ(pool.effective_lp(), 4);
  EXPECT_EQ(pool.provision_failures(), 1u);
  pool.set_backend(nullptr);  // detach before the backend dies
}

TEST(FakeTransport, SlowProvisionDelaysEffectiveLpThroughThePool) {
  FakeFaultPlan plan;
  plan.provision_latency = 0.25;
  Remote r(plan);
  ResizableThreadPool pool(1, 8);
  pool.set_backend(&r.backend);
  EXPECT_EQ(pool.set_target_lp(3), 3);
  EXPECT_EQ(pool.target_lp(), 3);
  EXPECT_EQ(pool.effective_lp(), 1);
  r.backend.pump();  // the join clocks start ticking
  EXPECT_EQ(pool.effective_lp(), 1);
  r.clock.advance(0.3);
  r.backend.pump();
  EXPECT_EQ(pool.effective_lp(), 3);
  pool.set_backend(nullptr);
}

TEST(FakeTransport, ControllerSurfacesProvisionFailure) {
  FakeFaultPlan plan;
  plan.fail_next_provisions = 1;
  Remote r(plan);
  ResizableThreadPool pool(1, 8);
  pool.set_backend(&r.backend);
  EstimateRegistry reg(0.5);
  TrackerSet trackers(reg);
  AutonomicController controller(pool, trackers);
  controller.arm(/*wct_goal_seconds=*/1.0);
  EXPECT_EQ(pool.set_target_lp(4), 4);
  r.backend.pump();  // the grow fails
  controller.evaluate_now();
  const auto actions = controller.actions();
  ASSERT_FALSE(actions.empty());
  EXPECT_EQ(actions.front().reason, DecisionReason::kProvisionFailed);
  EXPECT_EQ(actions.front().from_lp, actions.front().to_lp);  // marker
  controller.disarm();
  pool.set_backend(nullptr);
}

// --------------------------------------------------- golden determinism ----

/// One fixed scripted session: joins, every completion fault, a partition
/// probe. Returns the factory trace + hash.
std::pair<std::vector<std::string>, std::uint64_t> golden_run() {
  FakeFaultPlan plan;
  plan.seed = 42;
  plan.provision_latency = 0.125;
  plan.complete_latency = 0.01;
  plan.complete_jitter = 0.005;
  plan.drop_complete_every = 5;
  plan.dup_complete_every = 3;
  plan.reorder_complete_every = 4;
  plan.crash_worker = 1;
  plan.crash_on_nth_task = 7;
  plan.partitions = {{2.0, 2.5}};
  Remote r(plan, /*max_workers=*/4);
  r.backend.provision(0, 2);
  r.backend.pump();  // join clocks start
  r.clock.advance(0.2);
  r.backend.pump();  // both workers joined
  for (int round = 0; round < 10; ++round) {
    for (int w = 0; w < 2; ++w) {
      const std::uint64_t lease =
          r.backend.task_begin(w, static_cast<std::uint64_t>(round));
      r.clock.advance(0.02);  // past service + jitter
      r.backend.task_end(w, lease);
    }
  }
  r.clock.set(2.25);  // inside the partition
  r.backend.probe(0);
  r.clock.set(3.0);
  r.backend.provision(0, 2);  // heal
  r.backend.pump();
  r.backend.probe(0);
  return {r.factory.trace(), r.factory.trace_hash()};
}

TEST(FakeTransport, SeededFaultScheduleReplaysByteIdentically) {
  const auto [trace_a, hash_a] = golden_run();
  const auto [trace_b, hash_b] = golden_run();
  ASSERT_EQ(trace_a.size(), trace_b.size());
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(hash_a, hash_b);
  EXPECT_FALSE(trace_a.empty());
}

/// The batched-lease variant of the golden session: same fault plan, K=4
/// windows, a stale-window pump flush mid-script. Pins the batched wire
/// dialect (Submit n=...) the same way the legacy dialect is pinned.
std::pair<std::vector<std::string>, std::uint64_t> golden_batched_run() {
  FakeFaultPlan plan;
  plan.seed = 42;
  plan.provision_latency = 0.125;
  plan.complete_latency = 0.01;
  plan.complete_jitter = 0.005;
  plan.drop_complete_every = 5;
  plan.dup_complete_every = 3;
  plan.reorder_complete_every = 4;
  plan.crash_worker = 1;
  plan.crash_on_nth_task = 3;
  Remote r(plan, /*max_workers=*/4, /*connect_timeout=*/100.0,
           /*lease_batch=*/4);
  r.backend.provision(0, 2);
  r.backend.pump();
  r.clock.advance(0.2);
  r.backend.pump();  // both workers joined
  for (int round = 0; round < 10; ++round) {
    for (int w = 0; w < 2; ++w) {
      const std::uint64_t lease =
          r.backend.task_begin(w, static_cast<std::uint64_t>(round));
      r.clock.advance(0.0002);  // stays inside the flush deadline
      r.backend.task_end(w, lease);
    }
  }
  r.clock.advance(0.05);  // both partial windows go stale
  r.backend.pump();       // and flush here
  return {r.factory.trace(), r.factory.trace_hash()};
}

TEST(FakeTransportBatch, SeededBatchedScheduleReplaysByteIdentically) {
  const auto [trace_a, hash_a] = golden_batched_run();
  const auto [trace_b, hash_b] = golden_batched_run();
  ASSERT_EQ(trace_a.size(), trace_b.size());
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(hash_a, hash_b);
  EXPECT_FALSE(trace_a.empty());
}

TEST(FakeTransportBatch, GoldenBatchedTraceHashIsPlatformStable) {
  const auto [trace, hash] = golden_batched_run();
  // Pinned value (same contract as the legacy hash below): re-pin via the
  // printout only on a DELIBERATE wire/trace change.
  constexpr std::uint64_t kGoldenBatchedHash = 0x6130e9d44b248a31ull;
  if (hash != kGoldenBatchedHash) {
    std::string joined;
    for (const std::string& line : trace) joined += line + "\n";
    ADD_FAILURE() << "batched golden trace hash changed: 0x" << std::hex
                  << hash << "\ntrace:\n"
                  << joined;
  }
}

TEST(FakeTransport, GoldenTraceHashIsPlatformStable) {
  // Pinned value: integer-microsecond timestamps + SplitMix64 jitter, no
  // floating-point in the trace — the hash must match on every platform.
  // If a DELIBERATE fake-transport change lands, re-pin via the printout.
  const auto [trace, hash] = golden_run();
  constexpr std::uint64_t kGoldenHash = 0xc4bc2cbb3b7f54bcull;
  if (hash != kGoldenHash) {
    std::string joined;
    for (const std::string& line : trace) joined += line + "\n";
    ADD_FAILURE() << "golden trace hash changed: 0x" << std::hex << hash
                  << "\ntrace:\n"
                  << joined;
  }
}

}  // namespace
}  // namespace askel
